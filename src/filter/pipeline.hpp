// The paper's two-stage unrelated-traffic filter (§3.2):
//   stage 1 — stream-timespan alignment with the (±2 s expanded) call
//             window;
//   stage 2 — intra-call heuristics: 3-tuple timing, TLS SNI blocklist,
//             local-IP scope, and IANA port-based exclusion.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "net/stream_table.hpp"

namespace rtcc::filter {

/// Experiment phase boundaries (§3.1.2): 60 s pre-call, 5 min call,
/// 60 s post-call, all in trace-relative seconds.
struct CallSchedule {
  double capture_start = 0.0;
  double call_start = 60.0;
  double call_end = 360.0;
  double capture_end = 420.0;
  /// §3.2.1: the call window is expanded by this slack on both sides
  /// before the enclosure test.
  double slack = 2.0;

  [[nodiscard]] double window_begin() const { return call_start - slack; }
  [[nodiscard]] double window_end() const { return call_end + slack; }
};

struct FilterConfig {
  CallSchedule schedule;
  /// Known non-RTC domains (suffix match against extracted SNI).
  std::vector<std::string> sni_blocklist;
  /// The monitored devices' own addresses; the endpoint that is not a
  /// device is the "destination side" for the 3-tuple filter, and the
  /// device pair itself is exempt from the local-IP filter (P2P media).
  std::vector<rtcc::net::IpAddr> device_ips;
  /// Transport ports of known non-RTC services (IANA registry, §3.2.2).
  std::set<std::uint16_t> excluded_ports;
};

/// The built-in port list: DNS, DHCP(v4/v6), NTP, NetBIOS, mDNS, SSDP.
[[nodiscard]] std::set<std::uint16_t> default_excluded_ports();

/// Why a stream was removed (kKept == survived into the RTC dataset).
enum class Disposition : std::uint8_t {
  kKept,
  kStage1Timespan,
  kStage2ThreeTuple,
  kStage2Sni,
  kStage2LocalIp,
  kStage2Port,
};

[[nodiscard]] std::string to_string(Disposition d);
[[nodiscard]] inline bool is_stage2(Disposition d) {
  return d == Disposition::kStage2ThreeTuple || d == Disposition::kStage2Sni ||
         d == Disposition::kStage2LocalIp || d == Disposition::kStage2Port;
}

struct StageStats {
  std::size_t streams = 0;
  std::uint64_t packets = 0;
};

/// Filtering outcome in Table 1's shape, split UDP/TCP per stage.
struct FilterReport {
  std::vector<Disposition> dispositions;  // indexed like table.streams
  StageStats stage1_udp, stage2_udp, stage1_tcp, stage2_tcp;
  StageStats rtc_udp, rtc_tcp;
  /// Indices of surviving UDP streams — the compliance-analysis input.
  std::vector<std::size_t> rtc_udp_streams;
  /// Ingestion diagnostics carried from the stream table so every
  /// downstream compliance number travels with its loss accounting.
  rtcc::net::IngestStats ingest;
};

[[nodiscard]] FilterReport run_pipeline(const rtcc::net::Trace& trace,
                                        const rtcc::net::StreamTable& table,
                                        const FilterConfig& cfg);

/// Frame indices (ascending) of every packet belonging to a kept
/// stream. Because each stage only *removes* streams and the stage-2
/// heuristics draw their evidence (3-tuples, pre-call IP pairs)
/// exclusively from removed streams, re-running the pipeline on just
/// these frames must keep every stream again — the filter is idempotent
/// over its own output. testkit::meta asserts this; note the guarantee
/// is per-frame, so it covers traces without IPv4 fragmentation (a
/// reassembled packet has no single home frame).
[[nodiscard]] std::vector<std::size_t> kept_frame_indices(
    const rtcc::net::StreamTable& table, const FilterReport& report);

// ---- Individual stages (exposed for unit tests and ablations) ----------

/// Stage 1: true when the stream's active span is fully enclosed in the
/// expanded call window.
[[nodiscard]] bool enclosed_in_window(const rtcc::net::Stream& s,
                                      const CallSchedule& schedule);

/// Stage 2a helper: remote-endpoint 3-tuples (ip, port, proto) observed
/// outside the call window (from streams stage 1 removed).
struct ThreeTuple {
  rtcc::net::IpAddr ip;
  std::uint16_t port = 0;
  rtcc::net::Transport transport = rtcc::net::Transport::kUdp;
  auto operator<=>(const ThreeTuple&) const = default;
};

[[nodiscard]] std::vector<ThreeTuple> collect_outside_tuples(
    const rtcc::net::StreamTable& table, const FilterConfig& cfg,
    const std::vector<bool>& removed_stage1);

/// Stage 2b: SNI of the stream's TLS ClientHello, if any (first packets
/// only — ClientHello is always at the front of a TCP stream). The
/// table resolves payloads of packets reassembled from IPv4 fragments.
[[nodiscard]] std::optional<std::string> stream_sni(
    const rtcc::net::Trace& trace, const rtcc::net::StreamTable& table,
    const rtcc::net::Stream& s);

/// Suffix match honoring label boundaries ("facebook.com" matches
/// "web.facebook.com" but not "notfacebook.com").
[[nodiscard]] bool sni_blocked(const std::string& sni,
                               const std::vector<std::string>& blocklist);

}  // namespace rtcc::filter
