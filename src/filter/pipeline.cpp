#include "filter/pipeline.hpp"

#include <algorithm>

namespace rtcc::filter {

using rtcc::net::IpAddr;
using rtcc::net::Stream;
using rtcc::net::StreamTable;
using rtcc::net::Trace;
using rtcc::net::Transport;

namespace {

bool is_device(const IpAddr& ip, const FilterConfig& cfg) {
  return std::find(cfg.device_ips.begin(), cfg.device_ips.end(), ip) !=
         cfg.device_ips.end();
}

void account(StageStats& stats, const Stream& s) {
  ++stats.streams;
  stats.packets += s.packets.size();
}

}  // namespace

FilterReport run_pipeline(const Trace& trace, const StreamTable& table,
                          const FilterConfig& cfg) {
  FilterReport report;
  report.ingest = table.ingest;
  report.dispositions.assign(table.streams.size(), Disposition::kKept);

  // ---- Stage 1: timespan enclosure --------------------------------------
  std::vector<bool> removed_stage1(table.streams.size(), false);
  for (std::size_t i = 0; i < table.streams.size(); ++i) {
    if (!enclosed_in_window(table.streams[i], cfg.schedule)) {
      removed_stage1[i] = true;
      report.dispositions[i] = Disposition::kStage1Timespan;
    }
  }

  // ---- Stage 2: intra-call heuristics ------------------------------------
  const auto outside_tuples = collect_outside_tuples(table, cfg, removed_stage1);
  auto tuple_outside = [&](const IpAddr& ip, std::uint16_t port,
                           Transport transport) {
    return std::binary_search(outside_tuples.begin(), outside_tuples.end(),
                              ThreeTuple{ip, port, transport});
  };

  // Local-IP filter precomputation: IP pairs of streams active before
  // the call window ("pre-call background capture", §3.2.2).
  std::vector<std::pair<IpAddr, IpAddr>> precall_pairs;
  for (std::size_t i = 0; i < table.streams.size(); ++i) {
    const Stream& s = table.streams[i];
    if (s.first_ts < cfg.schedule.window_begin())
      precall_pairs.emplace_back(s.key.a, s.key.b);
  }
  std::sort(precall_pairs.begin(), precall_pairs.end());
  precall_pairs.erase(
      std::unique(precall_pairs.begin(), precall_pairs.end()),
      precall_pairs.end());

  for (std::size_t i = 0; i < table.streams.size(); ++i) {
    if (report.dispositions[i] != Disposition::kKept) continue;
    const Stream& s = table.streams[i];

    // 2a — 3-tuple timing: remote endpoint active outside the window.
    const bool a_is_device = is_device(s.key.a, cfg);
    const bool b_is_device = is_device(s.key.b, cfg);
    if ((!a_is_device &&
         tuple_outside(s.key.a, s.key.a_port, s.key.transport)) ||
        (!b_is_device &&
         tuple_outside(s.key.b, s.key.b_port, s.key.transport))) {
      report.dispositions[i] = Disposition::kStage2ThreeTuple;
      continue;
    }

    // 2b — TLS SNI blocklist (TCP only; UDP QUIC SNI is out of scope,
    // as in the paper).
    if (s.key.transport == Transport::kTcp) {
      if (auto sni = stream_sni(trace, table, s)) {
        if (sni_blocked(*sni, cfg.sni_blocklist)) {
          report.dispositions[i] = Disposition::kStage2Sni;
          continue;
        }
      }
    }

    // 2c — local-IP scope: LAN chatter whose IP pair also appeared in
    // the pre-call capture. The monitored devices themselves always sit
    // in private ranges on Wi-Fi, so only a local-scope *remote*
    // endpoint marks LAN management traffic; the device pair itself
    // (P2P media) and device↔server flows are preserved.
    const bool remote_local = (!a_is_device && s.key.a.is_local_scope()) ||
                              (!b_is_device && s.key.b.is_local_scope());
    if (remote_local) {
      const bool seen_precall = std::binary_search(
          precall_pairs.begin(), precall_pairs.end(),
          std::make_pair(s.key.a, s.key.b));
      if (seen_precall) {
        report.dispositions[i] = Disposition::kStage2LocalIp;
        continue;
      }
    }

    // 2d — port-based exclusion (IANA non-RTC services).
    if (cfg.excluded_ports.count(s.key.a_port) > 0 ||
        cfg.excluded_ports.count(s.key.b_port) > 0) {
      report.dispositions[i] = Disposition::kStage2Port;
      continue;
    }
  }

  // ---- Accounting (Table 1 shape) ----------------------------------------
  for (std::size_t i = 0; i < table.streams.size(); ++i) {
    const Stream& s = table.streams[i];
    const bool udp = s.key.transport == Transport::kUdp;
    const Disposition d = report.dispositions[i];
    if (d == Disposition::kStage1Timespan) {
      account(udp ? report.stage1_udp : report.stage1_tcp, s);
    } else if (is_stage2(d)) {
      account(udp ? report.stage2_udp : report.stage2_tcp, s);
    } else {
      account(udp ? report.rtc_udp : report.rtc_tcp, s);
      if (udp) report.rtc_udp_streams.push_back(i);
    }
  }
  return report;
}

std::vector<std::size_t> kept_frame_indices(const StreamTable& table,
                                            const FilterReport& report) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < table.streams.size(); ++i) {
    if (report.dispositions[i] != Disposition::kKept) continue;
    for (const auto& pkt : table.streams[i].packets)
      indices.push_back(pkt.frame_index);
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  return indices;
}

}  // namespace rtcc::filter
