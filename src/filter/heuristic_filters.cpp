#include <algorithm>

#include "filter/pipeline.hpp"
#include "proto/tls/client_hello.hpp"

namespace rtcc::filter {

using rtcc::net::IpAddr;
using rtcc::net::Stream;
using rtcc::net::StreamTable;
using rtcc::net::Trace;

std::set<std::uint16_t> default_excluded_ports() {
  // §3.2.2 names DNS (53), DHCP (67/547) and SSDP (1900); we include
  // the rest of the common non-RTC LAN/service ports from the IANA
  // registry that showed up in our background model.
  return {53, 67, 68, 123, 137, 138, 139, 546, 547, 1900, 5353};
}

std::string to_string(Disposition d) {
  switch (d) {
    case Disposition::kKept:
      return "kept";
    case Disposition::kStage1Timespan:
      return "stage1:timespan";
    case Disposition::kStage2ThreeTuple:
      return "stage2:3-tuple";
    case Disposition::kStage2Sni:
      return "stage2:sni";
    case Disposition::kStage2LocalIp:
      return "stage2:local-ip";
    case Disposition::kStage2Port:
      return "stage2:port";
  }
  return "?";
}

namespace {

bool is_device(const IpAddr& ip, const FilterConfig& cfg) {
  return std::find(cfg.device_ips.begin(), cfg.device_ips.end(), ip) !=
         cfg.device_ips.end();
}

}  // namespace

std::vector<ThreeTuple> collect_outside_tuples(
    const StreamTable& table, const FilterConfig& cfg,
    const std::vector<bool>& removed_stage1) {
  // §3.2.2, 3-tuple timing filter: services like APNS keep a fixed
  // remote (ip, port, proto) while rotating source ports, so their
  // in-call streams evade stage 1. Any remote 3-tuple active outside
  // the call window taints matching in-window streams.
  std::vector<ThreeTuple> tuples;
  for (std::size_t i = 0; i < table.streams.size(); ++i) {
    if (!removed_stage1[i]) continue;
    const Stream& s = table.streams[i];
    auto add_if_remote = [&](const IpAddr& ip, std::uint16_t port) {
      if (!is_device(ip, cfg))
        tuples.push_back(ThreeTuple{ip, port, s.key.transport});
    };
    add_if_remote(s.key.a, s.key.a_port);
    add_if_remote(s.key.b, s.key.b_port);
  }
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return tuples;
}

std::optional<std::string> stream_sni(const Trace& trace,
                                      const StreamTable& table,
                                      const Stream& s) {
  // The ClientHello is within the first packets of a TCP stream; scan a
  // small prefix to keep the filter O(streams), not O(packets).
  constexpr std::size_t kMaxProbe = 8;
  const std::size_t n = std::min(s.packets.size(), kMaxProbe);
  for (std::size_t i = 0; i < n; ++i) {
    auto payload = rtcc::net::packet_payload(trace, table, s.packets[i]);
    if (payload.empty()) continue;
    if (auto sni = rtcc::proto::tls::extract_sni(payload)) return sni;
  }
  return std::nullopt;
}

bool sni_blocked(const std::string& sni,
                 const std::vector<std::string>& blocklist) {
  for (const auto& domain : blocklist) {
    if (sni == domain) return true;
    if (sni.size() > domain.size() &&
        sni.compare(sni.size() - domain.size(), domain.size(), domain) == 0 &&
        sni[sni.size() - domain.size() - 1] == '.') {
      return true;
    }
  }
  return false;
}

}  // namespace rtcc::filter
