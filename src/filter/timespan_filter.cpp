#include "filter/pipeline.hpp"

namespace rtcc::filter {

bool enclosed_in_window(const rtcc::net::Stream& s,
                        const CallSchedule& schedule) {
  // §3.2.1: streams that begin before the call starts, end after it
  // ends, or span both are unrelated; only streams fully inside the
  // expanded window survive stage 1.
  return s.first_ts >= schedule.window_begin() &&
         s.last_ts <= schedule.window_end();
}

}  // namespace rtcc::filter
