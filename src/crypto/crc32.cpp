#include "crypto/crc32.hpp"

#include <array>

namespace rtcc::crypto {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(rtcc::util::BytesView data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = kTable[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t stun_fingerprint(rtcc::util::BytesView msg_prefix) {
  return crc32(msg_prefix) ^ 0x5354554Eu;
}

}  // namespace rtcc::crypto
