#include "crypto/crc32.hpp"

#include <array>

namespace rtcc::crypto {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE 802.3

/// Slice-by-8 tables: table[0] is the classic byte table; table[k][b]
/// is the CRC contribution of byte b seen k positions earlier, so eight
/// bytes fold in one step with no inter-byte dependency chain.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k)
    for (std::uint32_t i = 0; i < 256; ++i)
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
  return t;
}

constexpr auto kT = make_tables();

}  // namespace

std::uint32_t crc32(rtcc::util::BytesView data) {
  std::uint32_t c = 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // Byte-indexed loads keep this endianness-independent; the
    // compiler fuses the first four into one 32-bit load on LE.
    c ^= std::uint32_t{p[0]} | std::uint32_t{p[1]} << 8 |
         std::uint32_t{p[2]} << 16 | std::uint32_t{p[3]} << 24;
    c = kT[7][c & 0xFF] ^ kT[6][(c >> 8) & 0xFF] ^ kT[5][(c >> 16) & 0xFF] ^
        kT[4][c >> 24] ^ kT[3][p[4]] ^ kT[2][p[5]] ^ kT[1][p[6]] ^ kT[0][p[7]];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) c = kT[0][(c ^ *p) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_bitwise(rtcc::util::BytesView data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c ^= b;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t stun_fingerprint(rtcc::util::BytesView msg_prefix) {
  return crc32(msg_prefix) ^ 0x5354554Eu;
}

}  // namespace rtcc::crypto
