// MD5 (RFC 1321) — used to derive STUN long-term credential keys
// (RFC 5389 §15.4: key = MD5(username ":" realm ":" password)).
// MD5 is broken for security; implemented for spec compatibility only.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"

namespace rtcc::crypto {

class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  static constexpr std::size_t kBlockSize = 64;

  Md5();
  void update(rtcc::util::BytesView data);
  [[nodiscard]] std::array<std::uint8_t, kDigestSize> finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

[[nodiscard]] std::array<std::uint8_t, Md5::kDigestSize> md5(
    rtcc::util::BytesView data);

/// RFC 5389 long-term credential key.
[[nodiscard]] std::array<std::uint8_t, Md5::kDigestSize> stun_long_term_key(
    std::string_view username, std::string_view realm,
    std::string_view password);

}  // namespace rtcc::crypto
