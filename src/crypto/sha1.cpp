#include "crypto/sha1.hpp"

#include <cstring>

namespace rtcc::crypto {
namespace {

std::uint32_t rotl(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

Sha1::Sha1() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
}

void Sha1::update(rtcc::util::BytesView data) {
  total_bytes_ += data.size();
  std::size_t i = 0;
  if (buffered_ > 0) {
    const std::size_t need = kBlockSize - buffered_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    i = take;
    if (buffered_ == kBlockSize) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  for (; i + kBlockSize <= data.size(); i += kBlockSize)
    process_block(data.data() + i);
  if (i < data.size()) {
    std::memcpy(buffer_.data(), data.data() + i, data.size() - i);
    buffered_ = data.size() - i;
  }
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::finalize() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(rtcc::util::BytesView{&pad, 1});
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(rtcc::util::BytesView{&zero, 1});
  std::array<std::uint8_t, 8> len{};
  for (int i = 0; i < 8; ++i)
    len[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> ((7 - i) * 8));
  update(rtcc::util::BytesView{len});

  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 5; ++i)
    rtcc::util::store_be32(out.data() + i * 4, h_[static_cast<std::size_t>(i)]);
  return out;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) w[t] = rtcc::util::load_be32(block + t * 4);
  for (int t = 16; t < 80; ++t)
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    std::uint32_t tmp = rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

std::array<std::uint8_t, Sha1::kDigestSize> sha1(rtcc::util::BytesView data) {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finalize();
}

}  // namespace rtcc::crypto
