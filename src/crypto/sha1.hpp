// SHA-1 (FIPS 180-4) — needed for STUN MESSAGE-INTEGRITY (HMAC-SHA1).
// SHA-1 is cryptographically broken for collision resistance but is
// what RFC 5389 mandates; we implement it for wire compatibility only.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace rtcc::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1();
  void update(rtcc::util::BytesView data);
  [[nodiscard]] std::array<std::uint8_t, kDigestSize> finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

[[nodiscard]] std::array<std::uint8_t, Sha1::kDigestSize> sha1(
    rtcc::util::BytesView data);

}  // namespace rtcc::crypto
