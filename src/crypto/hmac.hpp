// HMAC-SHA1 (RFC 2104) — STUN MESSAGE-INTEGRITY attribute (RFC 5389 §15.4).
#pragma once

#include <array>

#include "crypto/sha1.hpp"
#include "util/bytes.hpp"

namespace rtcc::crypto {

[[nodiscard]] std::array<std::uint8_t, Sha1::kDigestSize> hmac_sha1(
    rtcc::util::BytesView key, rtcc::util::BytesView message);

}  // namespace rtcc::crypto
