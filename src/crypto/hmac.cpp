#include "crypto/hmac.hpp"

namespace rtcc::crypto {

std::array<std::uint8_t, Sha1::kDigestSize> hmac_sha1(
    rtcc::util::BytesView key, rtcc::util::BytesView message) {
  std::array<std::uint8_t, Sha1::kBlockSize> k_block{};
  if (key.size() > Sha1::kBlockSize) {
    auto digest = sha1(key);
    std::copy(digest.begin(), digest.end(), k_block.begin());
  } else {
    std::copy(key.begin(), key.end(), k_block.begin());
  }

  std::array<std::uint8_t, Sha1::kBlockSize> ipad{};
  std::array<std::uint8_t, Sha1::kBlockSize> opad{};
  for (std::size_t i = 0; i < Sha1::kBlockSize; ++i) {
    ipad[i] = k_block[i] ^ 0x36;
    opad[i] = k_block[i] ^ 0x5C;
  }

  Sha1 inner;
  inner.update(rtcc::util::BytesView{ipad});
  inner.update(message);
  const auto inner_digest = inner.finalize();

  Sha1 outer;
  outer.update(rtcc::util::BytesView{opad});
  outer.update(rtcc::util::BytesView{inner_digest});
  return outer.finalize();
}

}  // namespace rtcc::crypto
