// CRC-32 (IEEE 802.3 polynomial, reflected) — used by the STUN
// FINGERPRINT attribute (RFC 5389 §15.5: CRC-32 of the message XORed
// with 0x5354554e).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace rtcc::crypto {

[[nodiscard]] std::uint32_t crc32(rtcc::util::BytesView data);

/// The value carried inside a STUN FINGERPRINT attribute.
[[nodiscard]] std::uint32_t stun_fingerprint(rtcc::util::BytesView msg_prefix);

}  // namespace rtcc::crypto
