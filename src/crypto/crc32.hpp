// CRC-32 (IEEE 802.3 polynomial, reflected) — used by the STUN
// FINGERPRINT attribute (RFC 5389 §15.5: CRC-32 of the message XORed
// with 0x5354554e).
//
// crc32() runs slice-by-8 (eight bytes folded per iteration through
// eight 256-entry tables built at compile time); crc32_bitwise() is the
// table-free bit-at-a-time definition, kept as the cross-check oracle.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace rtcc::crypto {

[[nodiscard]] std::uint32_t crc32(rtcc::util::BytesView data);

/// Reference implementation straight off the polynomial; identical
/// values to crc32() (enforced by tests), ~8x slower. Not for hot paths.
[[nodiscard]] std::uint32_t crc32_bitwise(rtcc::util::BytesView data);

/// The value carried inside a STUN FINGERPRINT attribute.
[[nodiscard]] std::uint32_t stun_fingerprint(rtcc::util::BytesView msg_prefix);

}  // namespace rtcc::crypto
