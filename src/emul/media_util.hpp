// Shared building blocks for the per-application traffic models.
#pragma once

#include <functional>

#include "emul/app_model.hpp"
#include "proto/rtcp/rtcp.hpp"
#include "proto/rtp/rtp.hpp"
#include "proto/stun/stun.hpp"

namespace rtcc::emul {

/// One direction of an RTP media leg.
struct RtpLeg {
  rtcc::net::IpAddr src;
  std::uint16_t sport = 0;
  rtcc::net::IpAddr dst;
  std::uint16_t dport = 0;
  std::uint32_t ssrc = 0;
  std::uint8_t payload_type = 0;
  double pps = 50.0;
  std::size_t payload_size = 160;
  std::uint32_t ts_step = 960;
  /// Decorates each packet before encoding (extensions, marker, ...).
  /// `idx` is the packet's ordinal within the leg.
  std::function<void(rtcc::proto::rtp::PacketBuilder&, rtcc::util::Rng&,
                     std::size_t idx)>
      decorate;
  /// Wraps the encoded RTP bytes (proprietary headers, ChannelData
  /// framing, ...). Identity when unset.
  std::function<rtcc::util::Bytes(rtcc::util::Bytes wire, rtcc::util::Rng&,
                                  std::size_t idx)>
      wrap;
};

/// Emits one RTP leg over [start, end); returns packets emitted.
std::size_t emit_rtp_leg(CallContext& ctx, const RtpLeg& leg, double start,
                         double end);

/// Canonical compliant RTCP compound: SR + SDES(CNAME), no trailer.
[[nodiscard]] rtcc::util::Bytes make_sr_sdes(rtcc::util::Rng& rng,
                                             std::uint32_t ssrc,
                                             std::string_view cname);

/// Compliant RR + SDES compound.
[[nodiscard]] rtcc::util::Bytes make_rr_sdes(rtcc::util::Rng& rng,
                                             std::uint32_t sender_ssrc,
                                             std::uint32_t media_ssrc,
                                             std::string_view cname);

/// Compliant feedback compound: SR or RR first (per RFC 3550 §6.1),
/// then RTPFB/PSFB with the given format.
[[nodiscard]] rtcc::util::Bytes make_feedback_compound(
    rtcc::util::Rng& rng, std::uint32_t sender_ssrc, std::uint32_t media_ssrc,
    std::uint8_t packet_type, std::uint8_t fmt, bool sr_first = false);

/// Simple in-call TLS "signaling/heartbeat" TCP stream (kept by the
/// filter; accounts for Table 1's RTC TCP column).
void emit_signaling_tcp(CallContext& ctx, const rtcc::net::IpAddr& server,
                        const std::string& sni, double period_s);

}  // namespace rtcc::emul
