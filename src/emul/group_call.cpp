#include "emul/group_call.hpp"

#include "emul/background.hpp"

namespace rtcc::emul {

GroupCall emulate_group_call(const GroupCallConfig& config) {
  SfuConfig cfg;
  cfg.participants = config.participants;
  cfg.simulcast_layers = config.simulcast_layers;
  cfg.pre_call_s = config.pre_call_s;
  cfg.call_s = config.call_s;
  cfg.post_call_s = config.post_call_s;
  cfg.media_scale = config.media_scale;
  cfg.background = config.background;
  cfg.churn = config.churn;
  cfg.layer_switches = config.layer_switches;
  cfg.seed = config.seed;

  SfuCall call = emulate_sfu_call(cfg);
  GroupCall out;
  out.trace = std::move(call.trace);
  out.truth = std::move(call.truth);
  out.schedule = call.schedule;
  out.devices = std::move(call.devices);
  out.sfu = call.sfu;
  out.audio_ssrcs = std::move(call.audio_ssrcs);
  out.video_ssrcs = std::move(call.video_ssrcs);
  out.forwarding = std::move(call.forwarding);
  return out;
}

rtcc::filter::FilterConfig group_filter_config(const GroupCall& call) {
  rtcc::filter::FilterConfig cfg;
  cfg.schedule = call.schedule;
  cfg.sni_blocklist = background_sni_blocklist();
  cfg.device_ips = call.devices;
  cfg.excluded_ports = rtcc::filter::default_excluded_ports();
  return cfg;
}

}  // namespace rtcc::emul
