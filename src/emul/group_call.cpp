#include "emul/group_call.hpp"

#include <algorithm>

#include "emul/background.hpp"
#include "emul/media_util.hpp"

namespace rtcc::emul {

using rtcc::net::IpAddr;
using rtcc::util::Bytes;
using rtcc::util::BytesView;

namespace rtcp = rtcc::proto::rtcp;
namespace stun = rtcc::proto::stun;

namespace {

/// One participant's presence interval and identity.
struct Participant {
  IpAddr device;
  std::uint16_t port = 0;
  std::uint32_t audio_ssrc = 0;
  std::uint32_t video_ssrc = 0;
  double join_ts = 0;
  double leave_ts = 0;
};

}  // namespace

GroupCall emulate_group_call(const GroupCallConfig& config) {
  const int n = std::max(3, config.participants);

  rtcc::filter::CallSchedule schedule;
  schedule.capture_start = 0.0;
  schedule.call_start = config.pre_call_s;
  schedule.call_end = config.pre_call_s + config.call_s;
  schedule.capture_end = schedule.call_end + config.post_call_s;

  // CallContext drives emission; its app/network fields are unused by
  // this generator (group calls are SFU/relay by construction).
  CallConfig cc;
  cc.pre_call_s = config.pre_call_s;
  cc.call_s = config.call_s;
  cc.post_call_s = config.post_call_s;
  cc.media_scale = config.media_scale;
  cc.seed = config.seed;

  Endpoints ep;
  ep.device_a = IpAddr::v4(192, 168, 1, 10);
  ep.device_b = IpAddr::v4(192, 168, 1, 11);
  ep.relay = IpAddr::v4(198, 51, 100, 90);
  ep.stun_server = IpAddr::v4(198, 51, 100, 91);
  ep.launch_server = IpAddr::v4(203, 0, 113, 90);

  CallContext ctx(cc, ep, schedule, config.seed * 0x9E3779B97F4A7C15ULL + 7);
  auto& rng = ctx.rng();

  const double t0 = schedule.call_start + 0.5;
  const double t1 = schedule.call_end - 0.2;

  std::vector<Participant> participants;
  std::vector<IpAddr> devices;
  for (int i = 0; i < n; ++i) {
    Participant p;
    p.device = IpAddr::v4(192, 168, 1, static_cast<std::uint8_t>(10 + i));
    p.port = ctx.ephemeral_port();
    p.audio_ssrc = rng.next_u32();
    p.video_ssrc = rng.next_u32();
    p.join_ts = t0;
    p.leave_ts = t1;
    participants.push_back(p);
    devices.push_back(p.device);
  }
  // Churn: the last participant leaves a third of the way in and
  // rejoins for the final third.
  const double churn_leave = t0 + (t1 - t0) / 3.0;
  const double churn_rejoin = t0 + 2.0 * (t1 - t0) / 3.0;

  const std::uint16_t sfu_port = 19302;

  // ---- ICE: each participant runs compliant binding checks to the SFU.
  for (const auto& p : participants) {
    for (double t = t0 + 0.5; t < t1; t += 8.0) {
      stun::TransactionId txid{};
      for (auto& b : txid) b = rng.next_u8();
      auto req = stun::MessageBuilder(stun::kBindingRequest)
                     .transaction_id(txid)
                     .attribute_str(stun::attr::kUsername, "grp:member")
                     .attribute_u32(stun::attr::kPriority, 0x7E0000FF)
                     .build();
      ctx.emit_udp(t, p.device, p.port, ep.relay, sfu_port, BytesView{req},
                   TruthKind::kRtc);
      auto resp = stun::MessageBuilder(stun::kBindingSuccess)
                      .transaction_id(txid)
                      .xor_address(stun::attr::kXorMappedAddress, p.device,
                                   p.port)
                      .build();
      ctx.emit_udp(t + 0.02, ep.relay, sfu_port, p.device, p.port,
                   BytesView{resp}, TruthKind::kRtc);
    }
  }

  // ---- Media: uplink + SFU fan-out.
  auto emit_media_interval = [&](const Participant& p, double start,
                                 double end) {
    // Uplink: this participant's own streams to the SFU.
    for (auto [ssrc, pt, pps, size] :
         {std::tuple{p.audio_ssrc, std::uint8_t{111}, 50.0,
                     std::size_t{160}},
          std::tuple{p.video_ssrc, std::uint8_t{96}, 110.0,
                     std::size_t{1000}}}) {
      RtpLeg leg;
      leg.src = p.device;
      leg.sport = p.port;
      leg.dst = ep.relay;
      leg.dport = sfu_port;
      leg.ssrc = ssrc;
      leg.payload_type = pt;
      leg.pps = pps;
      leg.payload_size = size;
      emit_rtp_leg(ctx, leg, start, end);
    }
    // Downlink: the SFU forwards every *other* participant's streams.
    // The SFU typically forwards a thinned selection (active speaker +
    // thumbnails), modeled as a reduced per-source rate.
    for (const auto& other : participants) {
      if (other.device == p.device) continue;
      RtpLeg leg;
      leg.src = ep.relay;
      leg.sport = sfu_port;
      leg.dst = p.device;
      leg.dport = p.port;
      leg.ssrc = other.audio_ssrc;
      leg.payload_type = 111;
      leg.pps = 50.0 / static_cast<double>(n - 1);
      leg.payload_size = 160;
      emit_rtp_leg(ctx, leg, start, end);
      leg.ssrc = other.video_ssrc;
      leg.payload_type = 96;
      leg.pps = 110.0 / static_cast<double>(n - 1);
      leg.payload_size = 1000;
      emit_rtp_leg(ctx, leg, start, end);
    }
    // RTCP: SR for own streams + RR with one report block per remote
    // source — the multi-party shape 1-on-1 calls never produce.
    for (double t :
         packet_times(rng, start, end, 1.0, ctx.config().media_scale)) {
      Bytes sr = make_sr_sdes(rng, p.audio_ssrc, "grp@example");
      ctx.emit_udp(t, p.device, p.port, ep.relay, sfu_port, BytesView{sr},
                   TruthKind::kRtc);

      rtcp::ReceiverReport rr;
      rr.sender_ssrc = p.audio_ssrc;
      for (const auto& other : participants) {
        if (other.device == p.device) continue;
        rtcp::ReportBlock block;
        block.ssrc = other.video_ssrc;
        block.fraction_lost = static_cast<std::uint8_t>(rng.below(8));
        block.highest_seq = rng.next_u32();
        block.jitter = static_cast<std::uint32_t>(rng.below(300));
        rr.reports.push_back(block);
      }
      rtcp::Compound c;
      c.packets.push_back(rtcp::make_receiver_report(rr));
      Bytes wire = rtcp::encode_compound(c);
      ctx.emit_udp(t + 0.2, p.device, p.port, ep.relay, sfu_port,
                   BytesView{wire}, TruthKind::kRtc);
    }
  };

  for (int i = 0; i < n; ++i) {
    const auto& p = participants[static_cast<std::size_t>(i)];
    const bool churns = config.churn && i == n - 1;
    if (!churns) {
      emit_media_interval(p, t0, t1);
      continue;
    }
    emit_media_interval(p, t0, churn_leave);
    // RTCP BYE on leave (RFC 3550 §6.6) — compliant group semantics.
    {
      rtcp::ReceiverReport rr;
      rr.sender_ssrc = p.audio_ssrc;
      rtcp::Bye bye;
      bye.ssrcs = {p.audio_ssrc, p.video_ssrc};
      bye.reason = Bytes{'l', 'e', 'a', 'v', 'i', 'n', 'g'};
      rtcp::Compound c;
      c.packets.push_back(rtcp::make_receiver_report(rr));
      c.packets.push_back(rtcp::make_bye(bye));
      Bytes wire = rtcp::encode_compound(c);
      ctx.emit_udp(churn_leave + 0.05, p.device, p.port, ep.relay, sfu_port,
                   BytesView{wire}, TruthKind::kRtc);
    }
    emit_media_interval(p, churn_rejoin, t1);
  }

  if (config.background) generate_background(ctx);

  EmulatedCall raw = ctx.take_call();
  GroupCall out;
  out.trace = std::move(raw.trace);
  out.truth = std::move(raw.truth);
  out.schedule = schedule;
  out.devices = std::move(devices);
  out.sfu = ep.relay;
  return out;
}

rtcc::filter::FilterConfig group_filter_config(const GroupCall& call) {
  rtcc::filter::FilterConfig cfg;
  cfg.schedule = call.schedule;
  cfg.sni_blocklist = background_sni_blocklist();
  cfg.device_ips = call.devices;
  cfg.excluded_ports = rtcc::filter::default_excluded_ports();
  return cfg;
}

}  // namespace rtcc::emul
