// Unrelated-traffic generator (§3.2's adversary): OS push services,
// update checks, ad/analytics TLS flows, DNS/SSDP/mDNS chatter and LAN
// discovery, spread across the pre-call/call/post-call phases so every
// filter stage has work to do.
#pragma once

#include "emul/app_model.hpp"

namespace rtcc::emul {

void generate_background(CallContext& ctx);

/// The SNI blocklist matching what generate_background emits (§3.2.2's
/// "known non-RTC domains" built from idle-phone traffic).
[[nodiscard]] std::vector<std::string> background_sni_blocklist();

}  // namespace rtcc::emul
