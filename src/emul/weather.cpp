#include "emul/weather.hpp"

#include <algorithm>

#include "net/headers.hpp"

namespace rtcc::emul {

using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::load_be16;
using rtcc::util::store_be16;

namespace {

/// True when `f` is an unfragmented Ethernet IPv4 UDP frame whose
/// stored bytes span exactly the IP datagram (the only shape the MTU
/// clamp can split without inventing bytes).
bool clampable(BytesView f, std::size_t mtu, std::size_t* ihl_out) {
  if (f.size() <= mtu) return false;
  if (f.size() < 14 + 20 || load_be16(f.data() + 12) != 0x0800) return false;
  const std::uint8_t* ip = f.data() + 14;
  if ((ip[0] >> 4) != 4) return false;
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
  const std::uint16_t total_len = load_be16(ip + 2);
  if (ihl < 20 || ip[9] != 17) return false;
  if ((load_be16(ip + 6) & 0x3FFF) != 0) return false;  // already a fragment
  if (14 + static_cast<std::size_t>(total_len) != f.size()) return false;
  if (total_len <= ihl) return false;
  *ihl_out = ihl;
  return true;
}

}  // namespace

WeatherResult apply_weather(const rtcc::net::Trace& trace,
                            const WeatherConfig& config) {
  rtcc::util::Rng rng(config.seed);
  WeatherResult out;
  out.trace = rtcc::net::Trace(trace.uses_arena());
  out.trace.set_linktype(trace.linktype());
  out.trace.ingest() = trace.ingest();

  struct Item {
    double ts;
    const rtcc::net::Frame* src;
  };
  std::vector<Item> items;
  items.reserve(trace.size());

  bool bad = false;           // Gilbert–Elliott channel state
  double burst_until = -1.0;  // jitter-burst end (original time axis)
  for (const auto& frame : trace.frames()) {
    // Evolve the GE chain once per frame, then draw the state's loss.
    if (!bad && rng.chance(config.ge_p)) {
      bad = true;
      ++out.stats.bursts;
    } else if (bad && rng.chance(config.ge_r)) {
      bad = false;
    }
    if (rng.chance(bad ? config.loss_bad : config.loss_good)) {
      ++out.stats.dropped;
      continue;
    }

    double ts = frame.ts;
    if (rng.chance(config.reorder_p)) {
      ts = std::max(0.0, ts + (rng.uniform() * 2.0 - 1.0) *
                             config.reorder_window_s);
      ++out.stats.reordered;
    }
    // Jitter bursts delay every frame whose *original* timestamp falls
    // inside the burst window — shared-queue delay, not per-packet.
    if (frame.ts < burst_until) {
      ts += rng.uniform() * config.jitter_s;
      ++out.stats.delayed;
    } else if (rng.chance(config.jitter_burst_p)) {
      burst_until = frame.ts + config.jitter_burst_s;
      ts += rng.uniform() * config.jitter_s;
      ++out.stats.delayed;
    }
    items.push_back(Item{ts, &frame});

    if (rng.chance(config.dup_p)) {
      const int copies = 1 + static_cast<int>(rng.below(
                                 static_cast<std::uint32_t>(
                                     std::max(1, config.dup_run))));
      for (int c = 1; c <= copies; ++c) {
        items.push_back(Item{ts + config.dup_gap_s * c, &frame});
        ++out.stats.duplicated;
      }
    }
  }

  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.ts < b.ts; });

  const bool clamp = config.mtu >= 14 + 20 + 8;
  std::uint16_t ident = 0;
  Bytes buf;
  out.trace.reserve(items.size());
  for (const auto& item : items) {
    const BytesView f = trace.bytes(*item.src);
    std::size_t ihl = 0;
    if (!clamp || !clampable(f, config.mtu, &ihl)) {
      out.trace.add_frame(item.ts, f).orig_len = item.src->orig_len;
      continue;
    }
    // Split the L4 bytes into MTU-sized pieces at 8-byte-aligned
    // offsets; fragments are consecutive at the same timestamp, so the
    // downstream FrameDecoder sees them back to back.
    const std::size_t l4_len = f.size() - 14 - ihl;
    std::size_t chunk = 8 * ((config.mtu - 14 - ihl) / 8);
    if (chunk == 0) chunk = 8;
    ident = static_cast<std::uint16_t>(ident + 1);
    if (ident == 0) ident = 1;
    for (std::size_t off = 0; off < l4_len; off += chunk) {
      const std::size_t len = std::min(chunk, l4_len - off);
      const bool more = off + len < l4_len;
      buf.assign(f.begin(), f.begin() + 14 + ihl);
      buf.insert(buf.end(), f.begin() + 14 + ihl + off,
                 f.begin() + 14 + ihl + off + len);
      std::uint8_t* nip = buf.data() + 14;
      store_be16(nip + 2, static_cast<std::uint16_t>(ihl + len));
      store_be16(nip + 4, ident);
      store_be16(nip + 6,
                 static_cast<std::uint16_t>((more ? 0x2000 : 0) | (off / 8)));
      store_be16(nip + 10, 0);
      store_be16(nip + 10,
                 rtcc::net::internet_checksum(BytesView{nip, ihl}));
      out.trace.add_frame(item.ts, buf);
      ++out.stats.frag_frames;
    }
    ++out.stats.frag_datagrams;
  }
  return out;
}

}  // namespace rtcc::emul
