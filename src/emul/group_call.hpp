// Group-call emulation — the paper's explicitly stated future work
// (§2: "we plan the study of group calls as future work").
//
// Thin facade over the full SFU conference model (emul/sfu.hpp): every
// participant uplinks audio plus simulcast video layers to the relay,
// whose explicit forwarder fans identical wire bytes out to subscribed
// participants. Optional churn exercises mid-call leaves/rejoins (RTCP
// BYE); layer switches move subscribers between simulcast rungs. The
// generated traffic is standards-compliant end to end, so it doubles
// as a clean baseline workload for the compliance pipeline at
// participant counts > 2.
#pragma once

#include "emul/sfu.hpp"

namespace rtcc::emul {

struct GroupCallConfig {
  int participants = 4;  // >= 3 makes it a group call
  int simulcast_layers = 2;
  double pre_call_s = 60.0;
  double call_s = 300.0;
  double post_call_s = 60.0;
  double media_scale = 0.02;
  bool background = true;
  /// One participant leaves mid-call (with an RTCP BYE) and rejoins.
  bool churn = true;
  int layer_switches = 2;
  std::uint64_t seed = 1;
};

struct GroupCall {
  rtcc::net::Trace trace;
  std::vector<TruthKind> truth;
  rtcc::filter::CallSchedule schedule;
  std::vector<rtcc::net::IpAddr> devices;
  rtcc::net::IpAddr sfu;
  std::vector<std::uint32_t> audio_ssrcs;
  std::vector<std::vector<std::uint32_t>> video_ssrcs;
  /// Exact forwarder accounting (see SfuTruth).
  SfuTruth forwarding;
};

[[nodiscard]] GroupCall emulate_group_call(const GroupCallConfig& config);

[[nodiscard]] rtcc::filter::FilterConfig group_filter_config(
    const GroupCall& call);

}  // namespace rtcc::emul
