// Group-call emulation — the paper's explicitly stated future work
// (§2: "we plan the study of group calls as future work").
//
// Models a WebRTC-style SFU conference: every participant uplinks its
// audio+video to the relay, which fans each stream out to every other
// participant. Optional churn exercises mid-call joins/leaves (RTCP
// BYE). The generated traffic is standards-compliant end to end, so it
// doubles as a clean baseline workload for the compliance pipeline at
// participant counts > 2.
#pragma once

#include "emul/app_model.hpp"

namespace rtcc::emul {

struct GroupCallConfig {
  int participants = 4;  // >= 3 makes it a group call
  double pre_call_s = 60.0;
  double call_s = 300.0;
  double post_call_s = 60.0;
  double media_scale = 0.02;
  bool background = true;
  /// One participant leaves mid-call (with an RTCP BYE) and rejoins.
  bool churn = true;
  std::uint64_t seed = 1;
};

struct GroupCall {
  rtcc::net::Trace trace;
  std::vector<TruthKind> truth;
  rtcc::filter::CallSchedule schedule;
  std::vector<rtcc::net::IpAddr> devices;
  rtcc::net::IpAddr sfu;
};

[[nodiscard]] GroupCall emulate_group_call(const GroupCallConfig& config);

[[nodiscard]] rtcc::filter::FilterConfig group_filter_config(
    const GroupCall& call);

}  // namespace rtcc::emul
