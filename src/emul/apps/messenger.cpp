#include "crypto/md5.hpp"
#include "emul/apps/apps.hpp"
#include "emul/media_util.hpp"

namespace rtcc::emul {

using rtcc::util::Bytes;
using rtcc::util::BytesView;

namespace rtp = rtcc::proto::rtp;
namespace rtcp = rtcc::proto::rtcp;
namespace stun = rtcc::proto::stun;

namespace {

stun::TransactionId random_txid(rtcc::util::Rng& rng) {
  stun::TransactionId id{};
  for (auto& b : id) b = rng.next_u8();
  return id;
}

}  // namespace

void MessengerModel::generate(CallContext& ctx) const {
  auto& rng = ctx.rng();
  const auto& ep = ctx.ep();
  const double t0 = ctx.call_start() + 0.5;
  const double t1 = ctx.call_end() - 0.2;
  const std::uint16_t sport = ctx.ephemeral_port();

  auto send_up = [&](double t, const Bytes& wire) {
    ctx.emit_udp(t, ep.device_a, sport, ep.relay, 3478, BytesView{wire},
                 TruthKind::kRtc);
  };
  auto send_down = [&](double t, const Bytes& wire) {
    ctx.emit_udp(t, ep.relay, 3478, ep.device_a, sport, BytesView{wire},
                 TruthKind::kRtc);
  };

  // ---- TURN control plane: the full, mostly-compliant dance ----
  // Allocate with long-term-credential challenge: request → 401 error
  // (0x0113) → authenticated request → success (0x0103, which Messenger
  // taints with its undefined attribute 0x4001).
  {
    const auto txid1 = random_txid(rng);
    auto req1 = stun::MessageBuilder(stun::kAllocateRequest)
                    .transaction_id(txid1)
                    .attribute_u32(stun::attr::kRequestedTransport,
                                   0x11000000)
                    .build();
    send_up(t0, req1);
    rtcc::util::ByteWriter err;
    err.u16(0).u8(4).u8(1);  // class 4, number 01 → 401
    err.str("Unauthorized");
    auto resp1 = stun::MessageBuilder(stun::kAllocateError)
                     .transaction_id(txid1)
                     .attribute(stun::attr::kErrorCode, err.view())
                     .attribute_str(stun::attr::kRealm, "fb.example")
                     .attribute_str(stun::attr::kNonce, "n0nce12345")
                     .build();
    send_down(t0 + 0.03, resp1);

    const auto txid2 = random_txid(rng);
    const auto key =
        rtcc::crypto::stun_long_term_key("msgr", "fb.example", "s3cret");
    auto req2 = stun::MessageBuilder(stun::kAllocateRequest)
                    .transaction_id(txid2)
                    .attribute_u32(stun::attr::kRequestedTransport,
                                   0x11000000)
                    .attribute_str(stun::attr::kUsername, "msgr")
                    .attribute_str(stun::attr::kRealm, "fb.example")
                    .attribute_str(stun::attr::kNonce, "n0nce12345")
                    .message_integrity(BytesView{key})
                    .build();
    send_up(t0 + 0.06, req2);
    stun::MessageBuilder ok(stun::kAllocateSuccess);
    ok.transaction_id(txid2);
    ok.xor_address(stun::attr::kXorRelayedAddress, ep.relay, 50240);
    ok.attribute_u32(stun::attr::kLifetime, 600);
    ok.attribute(0x4001, BytesView{rng.bytes(4)});
    send_down(t0 + 0.09, ok.build());
  }

  // Periodic Allocate keep-alive (the paper's criterion-5 example).
  for (double t = t0 + 15.0; t < t1; t += 15.0) {
    const auto txid = random_txid(rng);
    auto req = stun::MessageBuilder(stun::kAllocateRequest)
                   .transaction_id(txid)
                   .attribute_u32(stun::attr::kRequestedTransport,
                                  0x11000000)
                   .build();
    send_up(t, req);
    stun::MessageBuilder ok(stun::kAllocateSuccess);
    ok.transaction_id(txid);
    ok.xor_address(stun::attr::kXorRelayedAddress, ep.relay, 50240);
    ok.attribute_u32(stun::attr::kLifetime, 600);
    ok.attribute(0x4001, BytesView{rng.bytes(4)});
    send_down(t + 0.03, ok.build());
  }

  // Refresh every 60 s (0x0004/0x0104, compliant).
  for (double t = t0 + 60.0; t < t1; t += 60.0) {
    const auto txid = random_txid(rng);
    auto req = stun::MessageBuilder(stun::kRefreshRequest)
                   .transaction_id(txid)
                   .attribute_u32(stun::attr::kLifetime, 600)
                   .build();
    send_up(t, req);
    auto ok = stun::MessageBuilder(stun::kRefreshSuccess)
                  .transaction_id(txid)
                  .attribute_u32(stun::attr::kLifetime, 600)
                  .build();
    send_down(t + 0.03, ok);
  }

  // CreatePermission (0x0008/0x0108) plus one 403 error (0x0118).
  for (int i = 0; i < 4; ++i) {
    const double t = t0 + 1.0 + 70.0 * i;
    const auto txid = random_txid(rng);
    auto req = stun::MessageBuilder(stun::kCreatePermissionRequest)
                   .transaction_id(txid);
    req.xor_address(stun::attr::kXorPeerAddress, ep.device_b, 4500);
    send_up(t, req.build());
    if (i == 3) {
      rtcc::util::ByteWriter err;
      err.u16(0).u8(4).u8(3);  // 403
      err.str("Forbidden");
      auto resp = stun::MessageBuilder(stun::kCreatePermissionError)
                      .transaction_id(txid)
                      .attribute(stun::attr::kErrorCode, err.view())
                      .build();
      send_down(t + 0.03, resp);
    } else {
      auto resp = stun::MessageBuilder(stun::kCreatePermissionSuccess)
                      .transaction_id(txid)
                      .build();
      send_down(t + 0.03, resp);
    }
  }

  // ChannelBind (0x0009/0x0109) — CHANNEL-NUMBER is legal here.
  {
    const auto txid = random_txid(rng);
    stun::MessageBuilder req(stun::kChannelBindRequest);
    req.transaction_id(txid);
    req.attribute_u32(stun::attr::kChannelNumber, 0x40010000);
    req.xor_address(stun::attr::kXorPeerAddress, ep.device_b, 4500);
    send_up(t0 + 2.0, req.build());
    auto resp = stun::MessageBuilder(stun::kChannelBindSuccess)
                    .transaction_id(txid)
                    .build();
    send_down(t0 + 2.03, resp);
  }

  // Send/Data indications (0x0016/0x0017, compliant closed sets).
  for (double t : packet_times(rng, t0 + 3.0, t1, 8.0, ctx.config().media_scale)) {
    stun::MessageBuilder send_ind(stun::kSendIndication);
    send_ind.random_transaction_id(rng);
    send_ind.xor_address(stun::attr::kXorPeerAddress, ep.device_b, 4500);
    send_ind.attribute(stun::attr::kData, BytesView{rng.bytes(40)});
    send_up(t, send_ind.build());
    stun::MessageBuilder data_ind(stun::kDataIndication);
    data_ind.random_transaction_id(rng);
    data_ind.xor_address(stun::attr::kXorPeerAddress, ep.device_b, 4500);
    data_ind.attribute(stun::attr::kData, BytesView{rng.bytes(40)});
    send_down(t + 0.04, data_ind.build());
  }

  // ChannelData messages (compliant: exact fit, no padding needed).
  for (double t : packet_times(rng, t0 + 3.0, t1, 10.0, ctx.config().media_scale)) {
    stun::ChannelData cd;
    cd.channel_number = 0x4001;
    cd.data = rng.bytes(40 + rng.below(20) * 4);
    Bytes wire = stun::encode_channel_data(cd);
    send_up(t, wire);
  }

  // Binding checks: requests AND responses carry the undefined 0x4001
  // (both 0x0001 and 0x0101 are non-compliant for Messenger, Table 4).
  for (double t = t0 + 1.5; t < t1; t += 10.0) {
    const auto txid = random_txid(rng);
    auto req = stun::MessageBuilder(stun::kBindingRequest)
                   .transaction_id(txid)
                   .attribute_str(stun::attr::kUsername, "fb:caller")
                   .attribute(0x4001, BytesView{rng.bytes(4)})
                   .build();
    ctx.emit_udp(t, ep.device_a, sport, ep.device_b, sport, BytesView{req},
                 TruthKind::kRtc);
    stun::MessageBuilder resp(stun::kBindingSuccess);
    resp.transaction_id(txid);
    resp.xor_address(stun::attr::kXorMappedAddress, ep.device_a, sport);
    resp.attribute(0x4001, BytesView{rng.bytes(4)});
    auto wire = resp.build();
    ctx.emit_udp(t + 0.02, ep.device_b, sport, ep.device_a, sport,
                 BytesView{wire}, TruthKind::kRtc);
  }

  // 0x0801/0x0802 pairs at call start and six 0x0800 at termination.
  {
    double t = t0 + 0.02;
    for (int i = 0; i < 16; ++i) {
      const auto txid = random_txid(rng);
      const std::uint8_t ff = 0xFF;
      stun::MessageBuilder big(0x0801);
      big.transaction_id(txid);
      Bytes zeros(460, 0x00);
      big.attribute(0x4004, BytesView{zeros});
      big.attribute(0x4003, BytesView{&ff, 1});
      send_up(t, big.build());
      stun::MessageBuilder small(0x0802);
      small.transaction_id(txid);
      small.attribute(0x4003, BytesView{&ff, 1});
      send_down(t + 0.00005, small.build());
      t += 0.000137;
    }
    for (int i = 0; i < 6; ++i) {
      stun::MessageBuilder bye(0x0800);
      bye.random_transaction_id(rng);
      bye.attribute(0x4000, BytesView{rng.bytes(8)});
      bye.xor_address(stun::attr::kXorRelayedAddress, ep.relay, 50240);
      send_up(t1 - 0.5 + 0.07 * i, bye.build());
    }
  }

  // ---- Media: compliant RTP; RTCP-heavy (≈10% of messages) ----
  const std::uint32_t ssrc_audio_a = rng.next_u32();
  const std::uint32_t ssrc_audio_b = rng.next_u32();
  const std::uint32_t ssrc_video_a = rng.next_u32();
  const std::uint32_t ssrc_video_b = rng.next_u32();

  struct Phase {
    double start, end;
    TransmissionMode mode;
  };
  std::vector<Phase> phases;
  if (ctx.config().network == NetworkSetup::kCellular) {
    phases = {{t0, t0 + 30.0, TransmissionMode::kRelay},
              {t0 + 30.0, t1, TransmissionMode::kP2p}};
  } else {
    phases = {{t0, t1, ctx.initial_mode()}};
  }

  for (const Phase& phase : phases) {
    const MediaPath media = media_path(ctx, phase.mode, ctx.ephemeral_port(),
                                       ctx.ephemeral_port(), 3480);
    {
      RtpLeg leg;  // audio PT 101
      leg.src = media.a;
      leg.sport = media.a_port;
      leg.dst = media.b;
      leg.dport = media.b_port;
      leg.ssrc = ssrc_audio_a;
      leg.payload_type = 101;
      leg.pps = 50;
      leg.payload_size = 160;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
      leg.src = media.b;
      leg.sport = media.b_port;
      leg.dst = media.a;
      leg.dport = media.a_port;
      leg.ssrc = ssrc_audio_b;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
    }
    {
      RtpLeg leg;  // video PT 97
      leg.src = media.a;
      leg.sport = media.a_port;
      leg.dst = media.b;
      leg.dport = media.b_port;
      leg.ssrc = ssrc_video_a;
      leg.payload_type = 97;
      leg.pps = 110;
      leg.payload_size = 1000;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
      leg.src = media.b;
      leg.sport = media.b_port;
      leg.dst = media.a;
      leg.dport = media.a_port;
      leg.ssrc = ssrc_video_b;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
    }
    // Probe PTs 98 / 126 / 127.
    {
      std::uint16_t seq = rng.next_u16();
      double t = phase.start + 2.0;
      for (std::uint8_t pt : {std::uint8_t{98}, std::uint8_t{126},
                              std::uint8_t{127}}) {
        for (int i = 0; i < 8 && t < phase.end; ++i) {
          rtp::PacketBuilder b;
          b.payload_type(pt).seq(seq++).timestamp(rng.next_u32()).ssrc(
              ssrc_audio_a);
          b.payload(BytesView{rng.bytes(200)});
          auto wire = b.build();
          ctx.emit_udp(t, media.a, media.a_port, media.b, media.b_port,
                       BytesView{wire}, TruthKind::kRtc);
          t += 1.3;
        }
      }
    }
    // RTCP: heavy (types 200, 201, 205, 206 — no SDES, Table 6).
    for (double t : packet_times(rng, phase.start, phase.end, 6.0,
                                 ctx.config().media_scale)) {
      rtcp::SenderReport sr;
      sr.sender_ssrc = ssrc_audio_a;
      sr.ntp_timestamp =
          (std::uint64_t{rng.next_u32()} << 32) | rng.next_u32();
      sr.rtp_timestamp = rng.next_u32();
      sr.packet_count = rng.next_u32() % 100000;
      sr.octet_count = rng.next_u32() % 10000000;
      rtcp::Compound c;
      c.packets.push_back(rtcp::make_sender_report(sr));
      Bytes wire = rtcp::encode_compound(c);
      ctx.emit_udp(t, media.a, media.a_port, media.b, media.b_port,
                   BytesView{wire}, TruthKind::kRtc);

      Bytes fb = make_feedback_compound(
          rng, ssrc_audio_b, ssrc_video_a,
          rng.chance(0.5) ? rtcp::kRtpFeedback : rtcp::kPayloadFeedback, 1);
      ctx.emit_udp(t + 0.1, media.b, media.b_port, media.a, media.a_port,
                   BytesView{fb}, TruthKind::kRtc);
    }
  }

  emit_signaling_tcp(ctx, ep.launch_server, "edge-chat.messenger.example",
                     20.0);
}

}  // namespace rtcc::emul
