// The six application models. Behaviour inventory: DESIGN.md §5.
#pragma once

#include "emul/app_model.hpp"

namespace rtcc::emul {

/// Zoom (§5.2.1/§5.3): proprietary SFU+media header on every media
/// datagram, filler-burst bandwidth probes, occasional double-RTP
/// datagrams, legacy RFC 3489 STUN with undefined attributes, fixed
/// per-network SSRC sets, 50 compliant RTP payload types, RTCP 200/202.
class ZoomModel final : public AppModel {
 public:
  [[nodiscard]] AppId id() const override { return AppId::kZoom; }
  void generate(CallContext& ctx) const override;
};

/// FaceTime (§5.2.1/§5.2.2/§5.3): STUN/TURN+RTP+QUIC (no RTCP);
/// undefined RTP extension profiles on every RTP message; 0x6000 relay
/// header; unanswered constant-txid Binding Requests with attr 0x8007;
/// invalid ALTERNATE-SERVER family + attr 0x8008; Data Indications with
/// forbidden CHANNEL-NUMBER; padded ChannelData; 0xDEADBEEFCAFE
/// cellular connectivity checks; compliant QUIC.
class FaceTimeModel final : public AppModel {
 public:
  [[nodiscard]] AppId id() const override { return AppId::kFaceTime; }
  void generate(CallContext& ctx) const override;
};

/// WhatsApp (§5.2.1): 0x0801/0x0802 bursts, 0x0800 at call end,
/// 0x0803-0x0805 custom types, Allocate keep-alive ping-pong, undefined
/// attr 0x4001 in 0x0101/0x0103; compliant RTP (5 PTs) and RTCP.
class WhatsAppModel final : public AppModel {
 public:
  [[nodiscard]] AppId id() const override { return AppId::kWhatsApp; }
  void generate(CallContext& ctx) const override;
};

/// Messenger: richest standard TURN usage (refresh/permission/channel
/// bind + error responses + ChannelData all compliant) alongside the
/// WhatsApp-style custom types and keep-alive Allocates.
class MessengerModel final : public AppModel {
 public:
  [[nodiscard]] AppId id() const override { return AppId::kMessenger; }
  void generate(CallContext& ctx) const override;
};

/// Discord (§5.2.2/§5.2.3/§5.3): RTP+RTCP only, always relay; ID=0
/// extension elements with payloads, undefined extension profiles on
/// PT 120, proprietary 3-byte RTCP trailer with a direction byte,
/// SSRC=0 in a quarter of its transport feedback.
class DiscordModel final : public AppModel {
 public:
  [[nodiscard]] AppId id() const override { return AppId::kDiscord; }
  void generate(CallContext& ctx) const override;
};

/// Google Meet (§5.2.3): broad compliant STUN/TURN usage including the
/// extension types 0x0200/0x0300 and ChannelData-framed media; Allocate
/// keep-alive is its only STUN violation; SRTCP with the auth tag
/// missing on most relay-Wi-Fi messages; DTLS handshake datagrams show
/// up as fully proprietary.
class GoogleMeetModel final : public AppModel {
 public:
  [[nodiscard]] AppId id() const override { return AppId::kGoogleMeet; }
  void generate(CallContext& ctx) const override;
};

}  // namespace rtcc::emul
