#include <algorithm>
#include <memory>

#include "emul/apps/apps.hpp"
#include "emul/media_util.hpp"

namespace rtcc::emul {

using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

namespace rtp = rtcc::proto::rtp;
namespace stun = rtcc::proto::stun;

namespace {

// Zoom media-section types per Michel et al. and §5.3.
constexpr std::uint8_t kMediaAudio = 15;
constexpr std::uint8_t kMediaVideo = 16;
constexpr std::uint8_t kMediaRtcp = 33;
constexpr std::uint8_t kMediaWrapped = 7;

/// The 24-byte (28 with the type-7 wrapper) proprietary header every
/// Zoom media datagram carries: a 16-byte SFU section (direction byte,
/// constant per-stream media ID, counter, reserved) and an 8-byte media
/// section (type, subtype, embedded length, timestamp).
Bytes zoom_header(std::uint8_t media_type, bool to_server,
                  std::uint32_t media_id, std::uint32_t counter,
                  std::uint16_t embedded_len, bool type7) {
  ByteWriter w;
  std::uint8_t dir = to_server ? 0x00 : 0x04;
  if (type7) dir = to_server ? 0x01 : 0x05;
  w.u8(dir);
  w.u32(media_id);
  w.fill(0, 7);  // reserved
  w.u32(counter);
  if (type7) {
    w.u8(kMediaWrapped);
    w.u8(media_type);  // inner (original) type
    w.u16(embedded_len);
    w.u32(counter * 960);
    w.u8(media_type).fill(0, 3);  // inner wrapper
  } else {
    w.u8(media_type);
    w.u8(0);
    w.u16(embedded_len);
    w.u32(counter * 960);
  }
  return std::move(w).take();
}

/// Payload types Zoom was observed using (Table 5's Zoom row).
std::vector<std::uint8_t> zoom_probe_payload_types() {
  std::vector<std::uint8_t> pts = {0,  3,  4,  5,  10, 12, 13, 19, 20, 25,
                                   33, 35, 38, 41, 45, 46, 49, 59, 68, 69,
                                   74, 75, 82, 83, 89, 92, 93, 95, 123, 126,
                                   127};
  for (std::uint8_t pt = 102; pt <= 121; ++pt) pts.push_back(pt);
  return pts;  // plus the main media PTs 98/99 emitted by the legs
}

/// §5.2.2: SSRCs are fixed per network setting, never random.
std::array<std::uint32_t, 4> zoom_ssrcs(NetworkSetup n) {
  switch (n) {
    case NetworkSetup::kCellular:
      return {0x1001401, 0x1001402, 0x1000401, 0x1000402};
    case NetworkSetup::kWifiP2p:
      return {0x1000801, 0x1000802, 0x1000401, 0x1000402};
    case NetworkSetup::kWifiRelay:
      return {0x1000C01, 0x1000C02, 0x1000401, 0x1000402};
  }
  return {};
}

}  // namespace

void ZoomModel::generate(CallContext& ctx) const {
  auto& rng = ctx.rng();
  const auto& ep = ctx.ep();
  const TransmissionMode mode = ctx.initial_mode();
  const bool relayish = mode == TransmissionMode::kRelay;
  const double t0 = ctx.call_start() + 0.8;
  const double t1 = ctx.call_end() - 0.2;
  const auto ssrcs = zoom_ssrcs(ctx.config().network);

  const std::uint16_t a_audio = ctx.ephemeral_port();
  const std::uint16_t b_audio = ctx.ephemeral_port();
  const std::uint16_t a_video = ctx.ephemeral_port();
  const std::uint16_t b_video = ctx.ephemeral_port();
  const MediaPath audio = media_path(ctx, mode, a_audio, b_audio, 8801);
  const MediaPath video = media_path(ctx, mode, a_video, b_video, 8802);

  const std::uint32_t audio_media_id = rng.next_u32();
  const std::uint32_t video_media_id = rng.next_u32();

  // §5.3: 6.9% of media packets gain the extra type-7 wrapper, observed
  // under cellular and relay-Wi-Fi settings only.
  const double type7_p = relayish ? 0.069 : 0.0;

  auto wrap_media = [&](std::uint8_t media_type, std::uint32_t media_id,
                        bool to_server) {
    auto counter = std::make_shared<std::uint32_t>(rng.next_u32() % 10000);
    return [&, media_type, media_id, to_server, counter,
            type7_p](Bytes wire, rtcc::util::Rng& r, std::size_t) {
      const bool type7 = r.chance(type7_p);
      Bytes out = zoom_header(media_type, to_server, media_id, (*counter)++,
                              static_cast<std::uint16_t>(wire.size()), type7);
      out.insert(out.end(), wire.begin(), wire.end());
      return out;
    };
  };

  // ---- RTP media legs (all compliant; PTs 98/99) ----
  std::size_t rtp_count = 0;
  {
    RtpLeg leg;
    leg.src = audio.a;
    leg.sport = audio.a_port;
    leg.dst = audio.b;
    leg.dport = audio.b_port;
    leg.ssrc = ssrcs[2];
    leg.payload_type = 99;
    leg.pps = 50;
    leg.payload_size = 160;
    leg.wrap = wrap_media(kMediaAudio, audio_media_id, true);
    rtp_count += emit_rtp_leg(ctx, leg, t0, t1);

    leg.src = audio.b;
    leg.sport = audio.b_port;
    leg.dst = audio.a;
    leg.dport = audio.a_port;
    leg.ssrc = ssrcs[3];
    leg.wrap = wrap_media(kMediaAudio, audio_media_id, false);
    rtp_count += emit_rtp_leg(ctx, leg, t0, t1);
  }
  {
    RtpLeg leg;
    leg.src = video.a;
    leg.sport = video.a_port;
    leg.dst = video.b;
    leg.dport = video.b_port;
    leg.ssrc = ssrcs[0];
    leg.payload_type = 98;
    leg.pps = 110;
    leg.payload_size = 1000;
    leg.wrap = wrap_media(kMediaVideo, video_media_id, true);
    rtp_count += emit_rtp_leg(ctx, leg, t0, t1);

    leg.src = video.b;
    leg.sport = video.b_port;
    leg.dst = video.a;
    leg.dport = video.a_port;
    leg.ssrc = ssrcs[1];
    leg.wrap = wrap_media(kMediaVideo, video_media_id, false);
    rtp_count += emit_rtp_leg(ctx, leg, t0, t1);
  }

  // ---- Probe packets across the full observed payload-type set ----
  {
    auto pts = zoom_probe_payload_types();
    std::uint16_t seq = rng.next_u16();
    double t = t0 + 2.0;
    auto wrap = wrap_media(kMediaVideo, video_media_id, true);
    for (std::uint8_t pt : pts) {
      for (int i = 0; i < 4; ++i) {
        rtp::PacketBuilder b;
        b.payload_type(pt).seq(seq++).timestamp(rng.next_u32()).ssrc(ssrcs[0]);
        b.payload(BytesView{rng.bytes(120)});
        Bytes wire = wrap(b.build(), rng, 0);
        ctx.emit_udp(t, video.a, video.a_port, video.b, video.b_port,
                     BytesView{wire}, TruthKind::kRtc);
        t += 0.37;
        ++rtp_count;
      }
    }
  }

  // ---- Double-RTP datagrams (§5.3): PT 110, 7-byte payload first ----
  {
    const std::size_t doubles = std::max<std::size_t>(rtp_count / 480, 2);
    std::uint16_t seq = rng.next_u16();
    auto wrap = wrap_media(kMediaVideo, video_media_id, true);
    for (std::size_t i = 0; i < doubles; ++i) {
      const std::uint32_t ts = rng.next_u32();
      rtp::PacketBuilder first;
      first.payload_type(110).seq(seq).timestamp(ts).ssrc(ssrcs[0]);
      first.payload(BytesView{rng.bytes(7)});
      rtp::PacketBuilder second;
      second.payload_type(110)
          .seq(static_cast<std::uint16_t>(seq + 7))
          .timestamp(ts)
          .ssrc(ssrcs[0]);
      second.payload(BytesView{rng.bytes(1000)});
      seq = static_cast<std::uint16_t>(seq + 11);
      Bytes both = first.build();
      Bytes tail = second.build();
      both.insert(both.end(), tail.begin(), tail.end());
      Bytes wire = wrap(std::move(both), rng, 0);
      const double t = t0 + rng.uniform() * (t1 - t0);
      ctx.emit_udp(t, video.a, video.a_port, video.b, video.b_port,
                   BytesView{wire}, TruthKind::kRtc);
    }
  }

  // ---- RTCP (compliant SR/SDES, types 200+202), proprietary-wrapped ----
  {
    auto wrap_up = wrap_media(kMediaRtcp, audio_media_id, true);
    auto wrap_down = wrap_media(kMediaRtcp, audio_media_id, false);
    for (double t : packet_times(rng, t0, t1, 0.5, ctx.config().media_scale)) {
      Bytes c = make_sr_sdes(rng, ssrcs[2], "zoom-a@example");
      Bytes wire = wrap_up(std::move(c), rng, 0);
      ctx.emit_udp(t, audio.a, audio.a_port, audio.b, audio.b_port,
                   BytesView{wire}, TruthKind::kRtc);
    }
    for (double t : packet_times(rng, t0, t1, 0.5, ctx.config().media_scale)) {
      Bytes c = make_sr_sdes(rng, ssrcs[3], "zoom-b@example");
      Bytes wire = wrap_down(std::move(c), rng, 0);
      ctx.emit_udp(t, audio.b, audio.b_port, audio.a, audio.a_port,
                   BytesView{wire}, TruthKind::kRtc);
    }
  }

  // ---- Filler bursts (§5.3) + fully proprietary control datagrams ----
  std::size_t filler_count = 0;
  {
    const double peak = relayish ? 500.0 : 180.0;
    std::vector<double> burst_starts = {t0, t0 + 0.1};
    burst_starts.push_back(t0 + 90.0);
    burst_starts.push_back(t0 + 190.0);
    std::uint8_t fill_value = 0x01;
    for (double bs : burst_starts) {
      const double duration = 10.0 + rng.uniform() * 10.0;
      // Linear ramp 0→peak over the burst (§5.3).
      double t = bs;
      while (t < bs + duration && t < t1) {
        const double progress = (t - bs) / duration;
        const double rate =
            std::max(2.0, peak * progress * ctx.config().media_scale);
        t += 1.0 / rate;
        Bytes filler(1000, fill_value);
        ctx.emit_udp(t, video.a, video.a_port, video.b, video.b_port,
                     BytesView{filler}, TruthKind::kRtc);
        ++filler_count;
      }
      fill_value = static_cast<std::uint8_t>(fill_value % 7 + 1);
    }
  }
  {
    // Control datagrams: proprietary header + opaque body, no embedded
    // standard message. Sized so fillers are ~53% of fully-proprietary
    // volume (§5.3).
    const std::size_t control_count = filler_count * 47 / 53;
    auto wrap = wrap_media(kMediaVideo, video_media_id, true);
    for (std::size_t i = 0; i < control_count; ++i) {
      // Body starting with 0x00 can never match an RTP/STUN/QUIC
      // pattern at offset 0; random tails are below validation support.
      ByteWriter w;
      w.u8(0x00).u8(0x3F);
      w.raw(BytesView{rng.bytes(46)});
      Bytes wire = wrap(std::move(w).take(), rng, 0);
      const double t = t0 + rng.uniform() * (t1 - t0);
      ctx.emit_udp(t, video.a, video.a_port, video.b, video.b_port,
                   BytesView{wire}, TruthKind::kRtc);
    }
  }

  // ---- STUN: legacy RFC 3489 with undefined attributes (§5.2.1) ----
  // Pre-call launch-time STUN (to different infrastructure; stage 1
  // filters it, exactly as the paper describes).
  {
    const std::uint16_t sport = ctx.ephemeral_port();
    for (int i = 0; i < 3; ++i) {
      auto req = stun::MessageBuilder(stun::kBindingRequest)
                     .classic_rfc3489(rng)
                     .random_transaction_id(rng)
                     .attribute_str(0x0101, "12345678901234567890")
                     .build();
      ctx.emit_udp(ctx.schedule().capture_start + 20.0 + i, ep.device_a,
                   sport, ep.launch_server, 3478, BytesView{req},
                   TruthKind::kBackground);
    }
  }
  // Mid-call STUN occurs only in P2P Wi-Fi (§4.1.3).
  if (ctx.config().network == NetworkSetup::kWifiP2p) {
    const std::uint16_t sport = ctx.ephemeral_port();
    for (int i = 0; i < 10; ++i) {
      const double t = t0 + 25.0 * i + rng.uniform();
      auto req = stun::MessageBuilder(stun::kBindingRequest)
                     .classic_rfc3489(rng)
                     .random_transaction_id(rng)
                     .attribute_str(0x0101, "12345678901234567890")
                     .build();
      ctx.emit_udp(t, ep.device_a, sport, ep.stun_server, 3478,
                   BytesView{req}, TruthKind::kRtc);
      // Server-originated Shared Secret Request with undefined 0x0103.
      auto ssr = stun::MessageBuilder(stun::kSharedSecretRequest)
                     .classic_rfc3489(rng)
                     .random_transaction_id(rng)
                     .attribute(0x0103, BytesView{rng.bytes(8)})
                     .build();
      ctx.emit_udp(t + 0.05, ep.stun_server, 3478, ep.device_a, sport,
                   BytesView{ssr}, TruthKind::kRtc);
    }
  }

  emit_signaling_tcp(ctx, ep.launch_server, "zoomrtc.example.net", 20.0);
}

}  // namespace rtcc::emul
