#include "emul/apps/apps.hpp"
#include "emul/media_util.hpp"

namespace rtcc::emul {

using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

namespace rtp = rtcc::proto::rtp;
namespace rtcp = rtcc::proto::rtcp;

namespace {

/// §5.2.2: 4.91% of RTP messages carry a one-byte-form extension whose
/// element has ID=0 but a non-zero length; the rest use a well-formed
/// 0xBEDE extension. 2.58% of PT-120 messages instead use an undefined
/// extension profile drawn from 0x0084-0xFBD2.
void discord_decorate(rtp::PacketBuilder& b, rtcc::util::Rng& rng,
                      bool allow_undefined_profile) {
  if (allow_undefined_profile && rng.chance(0.0258)) {
    const auto profile = static_cast<std::uint16_t>(
        0x0084 + rng.below(0xFBD2 - 0x0084));
    b.raw_extension(profile, BytesView{rng.bytes(8)});
    return;
  }
  if (rng.chance(0.0491)) {
    b.one_byte_extension();
    auto payload = rng.bytes(3);
    b.malformed_id0_element(BytesView{payload});
    return;
  }
  b.one_byte_extension();
  auto audio_level = rng.bytes(1);
  b.element(1, BytesView{audio_level});
}

/// §5.2.3/§5.3: every Discord RTCP message ends with a 3-byte trailer —
/// a 2-byte monotonic counter and a direction byte (0x80 client→server,
/// 0x00 server→client). Bodies are encrypted with a proprietary scheme
/// (headers and SSRC stay in the clear).
Bytes discord_rtcp(rtcc::util::Rng& rng, std::uint8_t packet_type,
                   std::uint32_t ssrc, std::uint16_t counter,
                   bool to_server) {
  rtcp::Packet p;
  p.packet_type = packet_type;
  ByteWriter body;
  body.u32(ssrc);
  switch (packet_type) {
    case rtcp::kSenderReport:
      p.count = 0;
      body.raw(BytesView{rng.bytes(20)});  // encrypted sender info
      break;
    case rtcp::kReceiverReport:
      p.count = 0;
      break;
    case rtcp::kApp:
      p.count = 1;
      body.str("disc");
      body.raw(BytesView{rng.bytes(8)});
      break;
    case rtcp::kRtpFeedback:
      p.count = 15;  // transport-cc
      body.u32(rng.next_u32());  // media ssrc
      body.raw(BytesView{rng.bytes(12)});  // encrypted FCI
      break;
    case rtcp::kPayloadFeedback:
      p.count = 1;  // PLI
      body.u32(rng.next_u32());
      break;
    default:
      break;
  }
  p.body = std::move(body).take();
  p.length_words = static_cast<std::uint16_t>(p.body.size() / 4);

  Bytes wire = rtcp::encode_packet(p);
  wire.push_back(static_cast<std::uint8_t>(counter >> 8));
  wire.push_back(static_cast<std::uint8_t>(counter));
  wire.push_back(to_server ? 0x80 : 0x00);
  return wire;
}

}  // namespace

void DiscordModel::generate(CallContext& ctx) const {
  auto& rng = ctx.rng();
  const auto& ep = ctx.ep();
  // Discord always relays media and never uses STUN (§4.1.3).
  const MediaPath media = media_path(ctx, TransmissionMode::kRelay,
                                     ctx.ephemeral_port(),
                                     ctx.ephemeral_port(), 50001);
  const double t0 = ctx.call_start() + 0.7;
  const double t1 = ctx.call_end() - 0.2;

  const std::uint32_t audio_ssrc_a = rng.next_u32();
  const std::uint32_t audio_ssrc_b = rng.next_u32();
  const std::uint32_t video_ssrc_a = rng.next_u32();
  const std::uint32_t video_ssrc_b = rng.next_u32();

  // ---- RTP ----
  auto audio_decorate = [](rtp::PacketBuilder& b, rtcc::util::Rng& r,
                           std::size_t) { discord_decorate(b, r, true); };
  auto video_decorate = [](rtp::PacketBuilder& b, rtcc::util::Rng& r,
                           std::size_t) { discord_decorate(b, r, false); };
  {
    RtpLeg leg;  // audio: PT 120, the one with undefined profiles
    leg.src = media.a;
    leg.sport = media.a_port;
    leg.dst = media.b;
    leg.dport = media.b_port;
    leg.ssrc = audio_ssrc_a;
    leg.payload_type = 120;
    leg.pps = 50;
    leg.payload_size = 160;
    leg.decorate = audio_decorate;
    emit_rtp_leg(ctx, leg, t0, t1);
    leg.src = media.b;
    leg.sport = media.b_port;
    leg.dst = media.a;
    leg.dport = media.a_port;
    leg.ssrc = audio_ssrc_b;
    emit_rtp_leg(ctx, leg, t0, t1);
  }
  {
    RtpLeg leg;  // video: PT 101
    leg.src = media.a;
    leg.sport = media.a_port;
    leg.dst = media.b;
    leg.dport = media.b_port;
    leg.ssrc = video_ssrc_a;
    leg.payload_type = 101;
    leg.pps = 110;
    leg.payload_size = 1000;
    leg.decorate = video_decorate;
    emit_rtp_leg(ctx, leg, t0, t1);
    leg.src = media.b;
    leg.sport = media.b_port;
    leg.dst = media.a;
    leg.dport = media.a_port;
    leg.ssrc = video_ssrc_b;
    emit_rtp_leg(ctx, leg, t0, t1);
  }
  // Probe payload types 102 / 96 with the same extension habits.
  {
    std::uint16_t seq = rng.next_u16();
    double t = t0 + 4.0;
    for (std::uint8_t pt : {std::uint8_t{102}, std::uint8_t{96}}) {
      for (int i = 0; i < 30; ++i) {
        rtp::PacketBuilder b;
        b.payload_type(pt).seq(seq++).timestamp(rng.next_u32()).ssrc(
            video_ssrc_a);
        b.payload(BytesView{rng.bytes(300)});
        // Guarantee at least some ID=0 violations per probe type.
        if (i % 10 == 0) {
          b.one_byte_extension();
          auto payload = rng.bytes(2);
          b.malformed_id0_element(BytesView{payload});
        } else {
          discord_decorate(b, rng, false);
        }
        Bytes wire = b.build();
        ctx.emit_udp(t, media.a, media.a_port, media.b, media.b_port,
                     BytesView{wire}, TruthKind::kRtc);
        t += 1.7;
      }
    }
  }

  // ---- RTCP with the proprietary trailer ----
  {
    const std::uint8_t kTypes[] = {rtcp::kSenderReport, rtcp::kReceiverReport,
                                   rtcp::kApp, rtcp::kRtpFeedback,
                                   rtcp::kPayloadFeedback};
    std::uint16_t counter_up = 1, counter_down = 1;
    std::size_t rotate = 0;
    for (double t :
         packet_times(rng, t0, t1, 10.0, ctx.config().media_scale)) {
      const std::uint8_t pt = kTypes[rotate++ % 5];
      // §5.3: SSRC=0 in ~25% of transport feedback (205) messages.
      std::uint32_t ssrc = audio_ssrc_a;
      if (pt == rtcp::kRtpFeedback && rng.chance(0.25)) ssrc = 0;
      Bytes up = discord_rtcp(rng, pt, ssrc, counter_up++, true);
      ctx.emit_udp(t, media.a, media.a_port, media.b, media.b_port,
                   BytesView{up}, TruthKind::kRtc);
      const std::uint8_t down_pt = kTypes[rotate % 5];
      std::uint32_t down_ssrc = audio_ssrc_b;
      if (down_pt == rtcp::kRtpFeedback && rng.chance(0.25)) down_ssrc = 0;
      Bytes down = discord_rtcp(rng, down_pt, down_ssrc,
                                counter_down++, false);
      ctx.emit_udp(t + 0.05, media.b, media.b_port, media.a, media.a_port,
                   BytesView{down}, TruthKind::kRtc);
    }
  }

  emit_signaling_tcp(ctx, ep.launch_server, "gateway.discord.example", 30.0);
}

}  // namespace rtcc::emul
