#include <algorithm>

#include "emul/apps/apps.hpp"
#include "emul/media_util.hpp"
#include "proto/quic/quic.hpp"

namespace rtcc::emul {

using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

namespace rtp = rtcc::proto::rtp;
namespace stun = rtcc::proto::stun;
namespace quic = rtcc::proto::quic;

namespace {

/// §5.3: relay-mode proprietary header — fixed 0x6000, then a 2-byte
/// length covering the rest of the header plus the embedded message,
/// then 4-15 opaque bytes (total header 8-19 bytes).
Bytes facetime_header(rtcc::util::Rng& rng, std::size_t message_len) {
  const std::size_t extra = 4 + rng.below(12);  // header len 8..19
  ByteWriter w;
  w.u16(0x6000);
  w.u16(static_cast<std::uint16_t>(extra + message_len));
  w.raw(BytesView{rng.bytes(extra)});
  return std::move(w).take();
}

/// §5.2.2: every FaceTime RTP message attaches extensions with
/// undefined profile identifiers.
void facetime_extension(rtp::PacketBuilder& b, rtcc::util::Rng& rng) {
  static constexpr std::uint16_t kProfiles[] = {0x8001, 0x8500, 0x8D00};
  const auto profile = kProfiles[rng.below(3)];
  b.raw_extension(profile, BytesView{rng.bytes(8)});
}

/// §5.3: 36-byte fully proprietary cellular connectivity check.
Bytes deadbeef_probe(std::uint32_t counter_a, std::uint32_t counter_b) {
  ByteWriter w;
  w.raw(BytesView{std::array<std::uint8_t, 6>{0xDE, 0xAD, 0xBE, 0xEF, 0xCA,
                                              0xFE}});
  w.fill(0, 22);
  w.u32(counter_a);
  w.u32(counter_b);
  return std::move(w).take();
}

}  // namespace

void FaceTimeModel::generate(CallContext& ctx) const {
  auto& rng = ctx.rng();
  const auto& ep = ctx.ep();
  const TransmissionMode mode = ctx.initial_mode();
  const bool relay = mode == TransmissionMode::kRelay;
  const bool cellular = ctx.config().network == NetworkSetup::kCellular;
  const double t0 = ctx.call_start() + 0.6;
  const double t1 = ctx.call_end() - 0.2;

  const MediaPath media = media_path(ctx, mode, ctx.ephemeral_port(),
                                     ctx.ephemeral_port(), 3478);

  // Relay mode: 89.2% of datagrams behind the 0x6000 header; in P2P the
  // header shows up fewer than 50 times per call (§5.3).
  const double header_p = relay ? 0.892 : 0.004;
  auto wrap = [&, header_p](Bytes wire, rtcc::util::Rng& r, std::size_t) {
    if (!r.chance(header_p)) return wire;
    Bytes out = facetime_header(r, wire.size());
    out.insert(out.end(), wire.begin(), wire.end());
    return out;
  };

  // ---- RTP: all messages carry undefined extension profiles ----
  const std::uint32_t video_ssrc_a = rng.next_u32();
  const std::uint32_t video_ssrc_b = rng.next_u32();
  const std::uint32_t audio_ssrc_a = rng.next_u32();
  const std::uint32_t audio_ssrc_b = rng.next_u32();
  auto decorate = [](rtp::PacketBuilder& b, rtcc::util::Rng& r, std::size_t) {
    facetime_extension(b, r);
  };
  {
    RtpLeg leg;
    leg.src = media.a;
    leg.sport = media.a_port;
    leg.dst = media.b;
    leg.dport = media.b_port;
    leg.ssrc = video_ssrc_a;
    leg.payload_type = 100;
    leg.pps = 110;
    leg.payload_size = 1000;
    leg.decorate = decorate;
    leg.wrap = wrap;
    emit_rtp_leg(ctx, leg, t0, t1);
    leg.src = media.b;
    leg.sport = media.b_port;
    leg.dst = media.a;
    leg.dport = media.a_port;
    leg.ssrc = video_ssrc_b;
    emit_rtp_leg(ctx, leg, t0, t1);
  }
  {
    RtpLeg leg;
    leg.src = media.a;
    leg.sport = media.a_port;
    leg.dst = media.b;
    leg.dport = media.b_port;
    leg.ssrc = audio_ssrc_a;
    leg.payload_type = 104;
    leg.pps = 50;
    leg.payload_size = 160;
    leg.decorate = decorate;
    leg.wrap = wrap;
    emit_rtp_leg(ctx, leg, t0, t1);
    leg.src = media.b;
    leg.sport = media.b_port;
    leg.dst = media.a;
    leg.dport = media.a_port;
    leg.ssrc = audio_ssrc_b;
    emit_rtp_leg(ctx, leg, t0, t1);
  }
  // Probe payload types 108 / 13 / 20 (Table 5's FaceTime row).
  {
    std::uint16_t seq = rng.next_u16();
    double t = t0 + 3.0;
    for (std::uint8_t pt : {std::uint8_t{108}, std::uint8_t{13},
                            std::uint8_t{20}}) {
      for (int i = 0; i < 10; ++i) {
        rtp::PacketBuilder b;
        b.payload_type(pt).seq(seq++).timestamp(rng.next_u32()).ssrc(
            audio_ssrc_a);
        b.payload(BytesView{rng.bytes(200)});
        facetime_extension(b, rng);
        Bytes wire = wrap(b.build(), rng, 0);
        ctx.emit_udp(t, media.a, media.a_port, media.b, media.b_port,
                     BytesView{wire}, TruthKind::kRtc);
        t += 1.1;
      }
    }
  }

  // ---- STUN (§5.2.1) ----
  const std::uint16_t stun_sport = ctx.ephemeral_port();
  {
    // Repeated Binding Requests with one constant transaction ID, one
    // per second for a minute, never answered; attr 0x8007 value
    // depends on network/mode.
    stun::TransactionId fixed_txid{};
    for (auto& b : fixed_txid) b = rng.next_u8();
    std::uint32_t attr_value = 0x00000009;
    if (mode == TransmissionMode::kP2p)
      attr_value = cellular ? 0x00000005 : 0x00000000;
    for (int i = 0; i < 12; ++i) {
      auto req = stun::MessageBuilder(stun::kBindingRequest)
                     .transaction_id(fixed_txid)
                     .attribute_u32(0x8007, attr_value)
                     .build();
      ctx.emit_udp(t0 + 5.0 + i, ep.device_a, stun_sport, ep.stun_server,
                   3478, BytesView{req}, TruthKind::kRtc);
    }
    // The always-present 0x00000009 variant rides along in P2P modes.
    if (mode == TransmissionMode::kP2p) {
      stun::TransactionId txid2{};
      for (auto& b : txid2) b = rng.next_u8();
      for (int i = 0; i < 6; ++i) {
        auto req = stun::MessageBuilder(stun::kBindingRequest)
                       .transaction_id(txid2)
                       .attribute_u32(0x8007, 0x00000009)
                       .build();
        ctx.emit_udp(t0 + 90.0 + i, ep.device_a, stun_sport, ep.stun_server,
                     3478, BytesView{req}, TruthKind::kRtc);
      }
    }
  }
  {
    // Answered Binding exchanges: 29.4% of success responses carry the
    // invalid ALTERNATE-SERVER family plus undefined attr 0x8008.
    for (int i = 0; i < 10; ++i) {
      stun::TransactionId txid{};
      for (auto& b : txid) b = rng.next_u8();
      auto req = stun::MessageBuilder(stun::kBindingRequest)
                     .transaction_id(txid)
                     .attribute_u32(0x8007, 0x00000009)
                     .build();
      const double t = t0 + 20.0 + 25.0 * i;
      ctx.emit_udp(t, ep.device_a, stun_sport, ep.stun_server, 3478,
                   BytesView{req}, TruthKind::kRtc);
      stun::MessageBuilder resp(stun::kBindingSuccess);
      resp.transaction_id(txid);
      resp.xor_address(stun::attr::kXorMappedAddress, ep.device_a,
                       stun_sport);
      if (i < 3) {  // ~29.4%
        resp.address(stun::attr::kAlternateServer, ep.stun_server, 3478,
                     /*family_override=*/0x00);
        resp.attribute(0x8008, BytesView{rng.bytes(16)});
      }
      auto wire = resp.build();
      ctx.emit_udp(t + 0.04, ep.stun_server, 3478, ep.device_a, stun_sport,
                   BytesView{wire}, TruthKind::kRtc);
    }
  }

  if (relay) {
    // TURN Data Indications with the forbidden CHANNEL-NUMBER attribute
    // (constant 4-byte zero value), §5.2.1.
    for (double t : packet_times(rng, t0, t1, 5.0, ctx.config().media_scale)) {
      stun::MessageBuilder ind(stun::kDataIndication);
      ind.random_transaction_id(rng);
      ind.xor_address(stun::attr::kXorPeerAddress, ep.device_b, 4500);
      ind.attribute(stun::attr::kData, BytesView{rng.bytes(24)});
      ind.attribute_u32(stun::attr::kChannelNumber, 0x00000000);
      auto wire = ind.build();
      ctx.emit_udp(t, ep.relay, 3478, ep.device_a, stun_sport,
                   BytesView{wire}, TruthKind::kRtc);
    }
    // ChannelData padded over UDP (RFC 8656 §12.5 violation).
    for (double t : packet_times(rng, t0, t1, 6.0, ctx.config().media_scale)) {
      stun::ChannelData cd;
      cd.channel_number = 0x4001;
      cd.data = rng.bytes(21 + rng.below(40) * 2);  // odd → padding needed
      Bytes wire = stun::encode_channel_data(cd);
      while (wire.size() % 4 != 0) wire.push_back(0);
      ctx.emit_udp(t, ep.device_a, stun_sport, ep.relay, 3478,
                   BytesView{wire}, TruthKind::kRtc);
    }
  }

  // ---- QUIC (compliant; long types 0/1/2 + short headers) ----
  {
    const std::uint16_t qport = ctx.ephemeral_port();
    quic::ConnectionId client_cid{rng.bytes(8)};
    quic::ConnectionId server_cid{rng.bytes(8)};
    auto emit_quic = [&](double t, bool up, Bytes wire) {
      if (up) {
        ctx.emit_udp(t, ep.device_a, qport, ep.relay, 443, BytesView{wire},
                     TruthKind::kRtc);
      } else {
        ctx.emit_udp(t, ep.relay, 443, ep.device_a, qport, BytesView{wire},
                     TruthKind::kRtc);
      }
    };
    emit_quic(t0 + 0.1, true,
              quic::encode_long(quic::LongType::kInitial, quic::kVersion1,
                                server_cid, client_cid,
                                BytesView{rng.bytes(1100)}));
    emit_quic(t0 + 0.15, false,
              quic::encode_long(quic::LongType::kInitial, quic::kVersion1,
                                client_cid, server_cid,
                                BytesView{rng.bytes(150)}));
    emit_quic(t0 + 0.2, true,
              quic::encode_long(quic::LongType::kHandshake, quic::kVersion1,
                                server_cid, client_cid,
                                BytesView{rng.bytes(300)}));
    emit_quic(t0 + 0.22, false,
              quic::encode_long(quic::LongType::kZeroRtt, quic::kVersion1,
                                client_cid, server_cid,
                                BytesView{rng.bytes(200)}));
    for (int i = 0; i < 8; ++i) {
      emit_quic(t0 + 1.0 + 2.5 * i, i % 2 == 0,
                quic::encode_short(i % 2 == 0 ? server_cid : client_cid,
                                   BytesView{rng.bytes(120)}));
    }
  }

  // ---- Fully proprietary connectivity checks (cellular-heavy) ----
  {
    const double pps = cellular ? 20.0 : 0.12;
    std::uint32_t ca = 1, cb = 100;
    for (double t : packet_times(rng, t0, t1, pps,
                                 cellular ? ctx.config().media_scale : 1.0)) {
      Bytes wire = deadbeef_probe(ca++, cb += 2);
      ctx.emit_udp(t, media.a, media.a_port, media.b, media.b_port,
                   BytesView{wire}, TruthKind::kRtc);
    }
  }

  emit_signaling_tcp(ctx, ep.launch_server, "facetime.example.net", 25.0);
}

}  // namespace rtcc::emul
