#include "emul/apps/apps.hpp"
#include "emul/media_util.hpp"

namespace rtcc::emul {

using rtcc::util::Bytes;
using rtcc::util::BytesView;

namespace rtp = rtcc::proto::rtp;
namespace rtcp = rtcc::proto::rtcp;
namespace stun = rtcc::proto::stun;

namespace {

/// One relay/P2P phase of the call: [start, end) with the given path.
struct Phase {
  double start, end;
  TransmissionMode mode;
};

std::vector<Phase> call_phases(CallContext& ctx, double t0, double t1) {
  if (ctx.config().network == NetworkSetup::kCellular) {
    // §3.1.1: relay for the first 30 s, then P2P.
    return {{t0, t0 + 30.0, TransmissionMode::kRelay},
            {t0 + 30.0, t1, TransmissionMode::kP2p}};
  }
  return {{t0, t1, ctx.initial_mode()}};
}

}  // namespace

void WhatsAppModel::generate(CallContext& ctx) const {
  auto& rng = ctx.rng();
  const auto& ep = ctx.ep();
  const double t0 = ctx.call_start() + 0.5;
  const double t1 = ctx.call_end() - 0.2;
  const std::uint16_t stun_sport = ctx.ephemeral_port();

  // ---- STUN/TURN control plane (§5.2.1) ----
  // 0x0801/0x0802 burst before the callee joins: 16 pairs in ~2.2 ms.
  {
    double t = t0 + 0.05;
    for (int i = 0; i < 16; ++i) {
      stun::TransactionId txid{};
      for (auto& b : txid) b = rng.next_u8();
      // 0x0801: 500 bytes, attr 0x4004 = long zero run, attr 0x4003=0xFF.
      stun::MessageBuilder big(0x0801);
      big.transaction_id(txid);
      Bytes zeros(460, 0x00);
      big.attribute(0x4004, BytesView{zeros});
      const std::uint8_t ff = 0xFF;
      big.attribute(0x4003, BytesView{&ff, 1});
      auto big_wire = big.build();
      ctx.emit_udp(t, ep.device_a, stun_sport, ep.relay, 3478,
                   BytesView{big_wire}, TruthKind::kRtc);
      // 0x0802: compact 40-byte reply sharing the transaction ID.
      stun::MessageBuilder small(0x0802);
      small.transaction_id(txid);
      small.attribute(0x4003, BytesView{&ff, 1});
      small.attribute(0x4006, BytesView{rng.bytes(8)});
      auto small_wire = small.build();
      ctx.emit_udp(t + 0.00005, ep.relay, 3478, ep.device_a, stun_sport,
                   BytesView{small_wire}, TruthKind::kRtc);
      t += 0.000137;  // ≈2.2 ms for the 16 pairs
    }
  }

  // Allocate at setup + periodic Allocate keep-alive ping-pong; every
  // success response carries the undefined attribute 0x4001.
  for (double t = t0 + 0.2; t < t1; t += 15.0) {
    stun::TransactionId txid{};
    for (auto& b : txid) b = rng.next_u8();
    auto req = stun::MessageBuilder(stun::kAllocateRequest)
                   .transaction_id(txid)
                   .attribute_u32(stun::attr::kRequestedTransport,
                                  0x11000000)
                   .build();
    ctx.emit_udp(t, ep.device_a, stun_sport, ep.relay, 3478, BytesView{req},
                 TruthKind::kRtc);
    stun::MessageBuilder resp(stun::kAllocateSuccess);
    resp.transaction_id(txid);
    resp.xor_address(stun::attr::kXorRelayedAddress, ep.relay, 49152);
    resp.xor_address(stun::attr::kXorMappedAddress, ep.device_a, stun_sport);
    resp.attribute_u32(stun::attr::kLifetime, 600);
    resp.attribute(0x4001, BytesView{rng.bytes(4)});
    auto resp_wire = resp.build();
    ctx.emit_udp(t + 0.03, ep.relay, 3478, ep.device_a, stun_sport,
                 BytesView{resp_wire}, TruthKind::kRtc);
  }

  // Binding connectivity checks: requests are compliant (0x0001), but
  // every success response carries undefined attribute 0x4001 → 0x0101
  // is a non-compliant type while 0x0001 stays compliant (Table 4).
  for (double t = t0 + 1.0; t < t1; t += 10.0) {
    stun::TransactionId txid{};
    for (auto& b : txid) b = rng.next_u8();
    auto req = stun::MessageBuilder(stun::kBindingRequest)
                   .transaction_id(txid)
                   .attribute_str(stun::attr::kUsername, "wa:caller")
                   .attribute_u32(stun::attr::kPriority, 0x6E7F00FF)
                   .build();
    ctx.emit_udp(t, ep.device_a, stun_sport, ep.device_b, stun_sport,
                 BytesView{req}, TruthKind::kRtc);
    stun::MessageBuilder resp(stun::kBindingSuccess);
    resp.transaction_id(txid);
    resp.xor_address(stun::attr::kXorMappedAddress, ep.device_a, stun_sport);
    resp.attribute(0x4001, BytesView{rng.bytes(4)});
    auto resp_wire = resp.build();
    ctx.emit_udp(t + 0.02, ep.device_b, stun_sport, ep.device_a, stun_sport,
                 BytesView{resp_wire}, TruthKind::kRtc);
  }

  // A few mid-call messages of the undefined types 0x0803-0x0805.
  {
    double t = t0 + 45.0;
    for (std::uint16_t type : {std::uint16_t{0x0803}, std::uint16_t{0x0804},
                               std::uint16_t{0x0805}}) {
      for (int i = 0; i < 3; ++i) {
        auto msg = stun::MessageBuilder(type)
                       .random_transaction_id(rng)
                       .attribute(0x4002, BytesView{rng.bytes(12)})
                       .build();
        ctx.emit_udp(t, ep.device_a, stun_sport, ep.relay, 3478,
                     BytesView{msg}, TruthKind::kRtc);
        t += 20.0;
      }
    }
  }

  // Four 0x0800 messages at call termination (attr 0x4000 +
  // XOR-RELAYED-ADDRESS), sent to the TURN servers used at setup.
  for (int i = 0; i < 4; ++i) {
    stun::MessageBuilder bye(0x0800);
    bye.random_transaction_id(rng);
    bye.attribute(0x4000, BytesView{rng.bytes(8)});
    bye.xor_address(stun::attr::kXorRelayedAddress, ep.relay, 49152);
    auto wire = bye.build();
    ctx.emit_udp(t1 - 0.4 + 0.08 * i, ep.device_a, stun_sport, ep.relay,
                 3478, BytesView{wire}, TruthKind::kRtc);
  }

  // ---- Media (compliant RTP + RTCP) ----
  const std::uint32_t ssrc_audio_a = rng.next_u32();
  const std::uint32_t ssrc_audio_b = rng.next_u32();
  const std::uint32_t ssrc_video_a = rng.next_u32();
  const std::uint32_t ssrc_video_b = rng.next_u32();

  for (const Phase& phase : call_phases(ctx, t0, t1)) {
    const MediaPath media =
        media_path(ctx, phase.mode, ctx.ephemeral_port(),
                   ctx.ephemeral_port(), 3480);
    {
      RtpLeg leg;  // audio PT 120
      leg.src = media.a;
      leg.sport = media.a_port;
      leg.dst = media.b;
      leg.dport = media.b_port;
      leg.ssrc = ssrc_audio_a;
      leg.payload_type = 120;
      leg.pps = 50;
      leg.payload_size = 160;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
      leg.src = media.b;
      leg.sport = media.b_port;
      leg.dst = media.a;
      leg.dport = media.a_port;
      leg.ssrc = ssrc_audio_b;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
    }
    {
      RtpLeg leg;  // video PT 97
      leg.src = media.a;
      leg.sport = media.a_port;
      leg.dst = media.b;
      leg.dport = media.b_port;
      leg.ssrc = ssrc_video_a;
      leg.payload_type = 97;
      leg.pps = 110;
      leg.payload_size = 1000;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
      leg.src = media.b;
      leg.sport = media.b_port;
      leg.dst = media.a;
      leg.dport = media.a_port;
      leg.ssrc = ssrc_video_b;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
    }
    // Probe payload types 103 / 105 / 106 (Table 5's WhatsApp row).
    {
      std::uint16_t seq = rng.next_u16();
      double t = phase.start + 2.0;
      for (std::uint8_t pt : {std::uint8_t{103}, std::uint8_t{105},
                              std::uint8_t{106}}) {
        for (int i = 0; i < 8 && t < phase.end; ++i) {
          rtp::PacketBuilder b;
          b.payload_type(pt).seq(seq++).timestamp(rng.next_u32()).ssrc(
              ssrc_audio_a);
          b.payload(BytesView{rng.bytes(200)});
          auto wire = b.build();
          ctx.emit_udp(t, media.a, media.a_port, media.b, media.b_port,
                       BytesView{wire}, TruthKind::kRtc);
          t += 1.3;
        }
      }
    }
    // RTCP: SR+SDES compounds plus 205/206 feedback — all compliant.
    for (double t : packet_times(rng, phase.start, phase.end, 0.3,
                                 ctx.config().media_scale)) {
      Bytes c = make_sr_sdes(rng, ssrc_audio_a, "wa-a@example");
      ctx.emit_udp(t, media.a, media.a_port, media.b, media.b_port,
                   BytesView{c}, TruthKind::kRtc);
      Bytes d = make_sr_sdes(rng, ssrc_audio_b, "wa-b@example");
      ctx.emit_udp(t + 0.1, media.b, media.b_port, media.a, media.a_port,
                   BytesView{d}, TruthKind::kRtc);
    }
    for (double t : packet_times(rng, phase.start, phase.end, 0.15,
                                 ctx.config().media_scale)) {
      Bytes nack = make_feedback_compound(rng, ssrc_audio_a, ssrc_video_b,
                                          rtcp::kRtpFeedback, 1, /*sr_first=*/true);
      ctx.emit_udp(t, media.a, media.a_port, media.b, media.b_port,
                   BytesView{nack}, TruthKind::kRtc);
      Bytes pli = make_feedback_compound(rng, ssrc_audio_b, ssrc_video_a,
                                         rtcp::kPayloadFeedback, 1, /*sr_first=*/true);
      ctx.emit_udp(t + 0.2, media.b, media.b_port, media.a, media.a_port,
                   BytesView{pli}, TruthKind::kRtc);
    }
  }

  emit_signaling_tcp(ctx, ep.launch_server, "signal.whatsapp.example", 20.0);
}

}  // namespace rtcc::emul
