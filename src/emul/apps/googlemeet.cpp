#include "crypto/md5.hpp"
#include "emul/apps/apps.hpp"
#include "emul/media_util.hpp"
#include "proto/srtp/srtcp.hpp"

namespace rtcc::emul {

using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

namespace rtp = rtcc::proto::rtp;
namespace rtcp = rtcc::proto::rtcp;
namespace stun = rtcc::proto::stun;
namespace srtp = rtcc::proto::srtp;

namespace {

stun::TransactionId random_txid(rtcc::util::Rng& rng) {
  stun::TransactionId id{};
  for (auto& b : id) b = rng.next_u8();
  return id;
}

/// One SRTCP message: a single clear RTCP header (+SSRC) over an
/// encrypted body, with the RFC 3711 trailer. `with_tag` false models
/// the Google Meet relay-Wi-Fi violation (§5.2.3): only the 4-byte
/// E-flag+index, no authentication tag.
Bytes srtcp_message(rtcc::util::Rng& rng, std::uint8_t packet_type,
                    std::uint32_t ssrc, std::uint32_t index, bool with_tag) {
  rtcp::Packet p;
  p.packet_type = packet_type;
  p.count = 0;
  ByteWriter body;
  body.u32(ssrc);
  // Sized so the (encrypted) body is structurally plausible for the
  // declared type; values are opaque ciphertext.
  std::size_t extra = 8;
  if (packet_type == rtcp::kSenderReport) extra = 20;
  if (packet_type == rtcp::kRtpFeedback ||
      packet_type == rtcp::kPayloadFeedback)
    extra = 12;
  body.raw(BytesView{rng.bytes(extra)});
  p.body = std::move(body).take();
  p.length_words = static_cast<std::uint16_t>(p.body.size() / 4);

  srtp::SrtcpTrailer trailer;
  trailer.encrypted_flag = true;
  trailer.index = index;
  if (with_tag) trailer.auth_tag = rng.bytes(srtp::kDefaultAuthTagSize);
  return srtp::append_trailer(BytesView{rtcp::encode_packet(p)}, trailer);
}

/// DTLS-SRTP handshake datagram — a real protocol, but not one of the
/// five RTC protocols, so the DPI classifies it fully proprietary
/// (exactly what the paper's framework would do).
Bytes dtls_datagram(rtcc::util::Rng& rng, std::uint8_t handshake_type) {
  ByteWriter w;
  w.u8(0x16);        // handshake
  w.u16(0xFEFD);     // DTLS 1.2
  w.u16(0);          // epoch
  w.raw(BytesView{rng.bytes(6)});  // sequence number
  const auto body = rng.bytes(120);
  w.u16(static_cast<std::uint16_t>(body.size() + 1));
  w.u8(handshake_type);
  w.raw(BytesView{body});
  return std::move(w).take();
}

}  // namespace

void GoogleMeetModel::generate(CallContext& ctx) const {
  auto& rng = ctx.rng();
  const auto& ep = ctx.ep();
  const double t0 = ctx.call_start() + 0.5;
  const double t1 = ctx.call_end() - 0.2;
  const std::uint16_t sport = ctx.ephemeral_port();
  const bool relay_wifi = ctx.config().network == NetworkSetup::kWifiRelay;

  auto send_up = [&](double t, const Bytes& wire) {
    ctx.emit_udp(t, ep.device_a, sport, ep.relay, 3478, BytesView{wire},
                 TruthKind::kRtc);
  };
  auto send_down = [&](double t, const Bytes& wire) {
    ctx.emit_udp(t, ep.relay, 3478, ep.device_a, sport, BytesView{wire},
                 TruthKind::kRtc);
  };

  // ---- STUN/TURN: broad and almost fully compliant ----
  // Allocate challenge dance (0x0003 → 0x0113 → 0x0003 → 0x0103).
  {
    const auto txid1 = random_txid(rng);
    auto req1 = stun::MessageBuilder(stun::kAllocateRequest)
                    .transaction_id(txid1)
                    .attribute_u32(stun::attr::kRequestedTransport,
                                   0x11000000)
                    .build();
    send_up(t0, req1);
    ByteWriter err;
    err.u16(0).u8(4).u8(1);
    err.str("Unauthorized");
    auto resp1 = stun::MessageBuilder(stun::kAllocateError)
                     .transaction_id(txid1)
                     .attribute(stun::attr::kErrorCode, err.view())
                     .attribute_str(stun::attr::kRealm, "meet.example")
                     .attribute_str(stun::attr::kNonce, "abcdef012345")
                     .build();
    send_down(t0 + 0.03, resp1);

    const auto txid2 = random_txid(rng);
    const auto key =
        rtcc::crypto::stun_long_term_key("meet", "meet.example", "pw");
    auto req2 = stun::MessageBuilder(stun::kAllocateRequest)
                    .transaction_id(txid2)
                    .attribute_u32(stun::attr::kRequestedTransport,
                                   0x11000000)
                    .attribute_str(stun::attr::kUsername, "meet")
                    .attribute_str(stun::attr::kRealm, "meet.example")
                    .attribute_str(stun::attr::kNonce, "abcdef012345")
                    .message_integrity(BytesView{key})
                    .build();
    send_up(t0 + 0.06, req2);
    stun::MessageBuilder ok(stun::kAllocateSuccess);
    ok.transaction_id(txid2);
    ok.xor_address(stun::attr::kXorRelayedAddress, ep.relay, 51000);
    ok.xor_address(stun::attr::kXorMappedAddress, ep.device_a, sport);
    ok.attribute_u32(stun::attr::kLifetime, 600);
    send_down(t0 + 0.09, ok.build());
  }

  // Allocate keep-alive ping-pong — Google Meet's only STUN violation.
  for (double t = t0 + 20.0; t < t1; t += 20.0) {
    const auto txid = random_txid(rng);
    auto req = stun::MessageBuilder(stun::kAllocateRequest)
                   .transaction_id(txid)
                   .attribute_u32(stun::attr::kRequestedTransport,
                                  0x11000000)
                   .build();
    send_up(t, req);
    stun::MessageBuilder ok(stun::kAllocateSuccess);
    ok.transaction_id(txid);
    ok.xor_address(stun::attr::kXorRelayedAddress, ep.relay, 51000);
    ok.attribute_u32(stun::attr::kLifetime, 600);
    send_down(t + 0.03, ok.build());
  }

  // Refresh / CreatePermission / ChannelBind (all compliant).
  for (double t = t0 + 60.0; t < t1; t += 60.0) {
    const auto txid = random_txid(rng);
    auto req = stun::MessageBuilder(stun::kRefreshRequest)
                   .transaction_id(txid)
                   .attribute_u32(stun::attr::kLifetime, 600)
                   .build();
    send_up(t, req);
    auto ok = stun::MessageBuilder(stun::kRefreshSuccess)
                  .transaction_id(txid)
                  .attribute_u32(stun::attr::kLifetime, 600)
                  .build();
    send_down(t + 0.03, ok);
  }
  {
    const auto txid = random_txid(rng);
    stun::MessageBuilder req(stun::kCreatePermissionRequest);
    req.transaction_id(txid);
    req.xor_address(stun::attr::kXorPeerAddress, ep.device_b, 4500);
    send_up(t0 + 1.0, req.build());
    send_down(t0 + 1.03, stun::MessageBuilder(stun::kCreatePermissionSuccess)
                             .transaction_id(txid)
                             .build());
    const auto txid2 = random_txid(rng);
    stun::MessageBuilder bind(stun::kChannelBindRequest);
    bind.transaction_id(txid2);
    bind.attribute_u32(stun::attr::kChannelNumber, 0x40020000);
    bind.xor_address(stun::attr::kXorPeerAddress, ep.device_b, 4500);
    send_up(t0 + 1.5, bind.build());
    send_down(t0 + 1.53, stun::MessageBuilder(stun::kChannelBindSuccess)
                             .transaction_id(txid2)
                             .build());
  }

  // Send/Data indications (compliant).
  for (double t : packet_times(rng, t0 + 2.0, t1, 4.0, ctx.config().media_scale)) {
    stun::MessageBuilder send_ind(stun::kSendIndication);
    send_ind.random_transaction_id(rng);
    send_ind.xor_address(stun::attr::kXorPeerAddress, ep.device_b, 4500);
    send_ind.attribute(stun::attr::kData, BytesView{rng.bytes(36)});
    send_up(t, send_ind.build());
    stun::MessageBuilder data_ind(stun::kDataIndication);
    data_ind.random_transaction_id(rng);
    data_ind.xor_address(stun::attr::kXorPeerAddress, ep.device_b, 4500);
    data_ind.attribute(stun::attr::kData, BytesView{rng.bytes(36)});
    send_down(t + 0.04, data_ind.build());
  }

  // ICE connectivity checks with MESSAGE-INTEGRITY + FINGERPRINT.
  const auto ice_key =
      rtcc::crypto::stun_long_term_key("ice", "meet.example", "pwd");
  for (double t = t0 + 1.0; t < t1; t += 5.0) {
    const auto txid = random_txid(rng);
    auto req = stun::MessageBuilder(stun::kBindingRequest)
                   .transaction_id(txid)
                   .attribute_str(stun::attr::kUsername, "meetA:meetB")
                   .attribute_u32(stun::attr::kPriority, 0x7E0000FF)
                   .message_integrity(BytesView{ice_key})
                   .fingerprint()
                   .build();
    ctx.emit_udp(t, ep.device_a, sport, ep.device_b, sport, BytesView{req},
                 TruthKind::kRtc);
    auto resp = stun::MessageBuilder(stun::kBindingSuccess)
                    .transaction_id(txid)
                    .xor_address(stun::attr::kXorMappedAddress, ep.device_a,
                                 sport)
                    .message_integrity(BytesView{ice_key})
                    .fingerprint()
                    .build();
    ctx.emit_udp(t + 0.02, ep.device_b, sport, ep.device_a, sport,
                 BytesView{resp}, TruthKind::kRtc);
  }

  // GOOG-PING extension exchanges (types 0x0200/0x0300; the paper's
  // ground truth counts them compliant — SpecSource::kExtension).
  for (double t = t0 + 2.5; t < t1; t += 4.0) {
    const auto txid = random_txid(rng);
    auto ping = stun::MessageBuilder(0x0200).transaction_id(txid).build();
    ctx.emit_udp(t, ep.device_a, sport, ep.device_b, sport, BytesView{ping},
                 TruthKind::kRtc);
    auto pong = stun::MessageBuilder(0x0300).transaction_id(txid).build();
    ctx.emit_udp(t + 0.02, ep.device_b, sport, ep.device_a, sport,
                 BytesView{pong}, TruthKind::kRtc);
  }

  // ---- DTLS-SRTP handshake → fully-proprietary datagrams (§4.1.2) ----
  {
    const std::uint16_t dport = ctx.ephemeral_port();
    double t = t0 + 0.2;
    for (int round = 0; round < 30; ++round) {
      Bytes up = dtls_datagram(rng, round % 2 ? 11 : 1);
      ctx.emit_udp(t, ep.device_a, dport, ep.device_b, dport, BytesView{up},
                   TruthKind::kRtc);
      Bytes down = dtls_datagram(rng, round % 2 ? 14 : 2);
      ctx.emit_udp(t + 0.03, ep.device_b, dport, ep.device_a, dport,
                   BytesView{down}, TruthKind::kRtc);
      t += round < 4 ? 0.1 : 10.0;  // handshake burst, then re-keying
    }
  }

  // ---- Media ----
  const std::uint32_t ssrc_audio_a = rng.next_u32();
  const std::uint32_t ssrc_audio_b = rng.next_u32();
  const std::uint32_t ssrc_video_a = rng.next_u32();
  const std::uint32_t ssrc_video_b = rng.next_u32();

  struct Phase {
    double start, end;
    TransmissionMode mode;
  };
  std::vector<Phase> phases;
  if (ctx.config().network == NetworkSetup::kCellular) {
    phases = {{t0, t0 + 30.0, TransmissionMode::kRelay},
              {t0 + 30.0, t1, TransmissionMode::kP2p}};
  } else {
    phases = {{t0, t1, ctx.initial_mode()}};
  }

  for (const Phase& phase : phases) {
    const bool relayed = phase.mode == TransmissionMode::kRelay;
    const MediaPath media = media_path(ctx, phase.mode, ctx.ephemeral_port(),
                                       ctx.ephemeral_port(), 19305);

    // In relay mode roughly half the video rides inside TURN
    // ChannelData framing — this is what pushes Meet's STUN/TURN share
    // toward 19.8% (Table 2).
    auto channel_wrap = [relayed](Bytes wire, rtcc::util::Rng& r,
                                  std::size_t) {
      if (!relayed || !r.chance(0.65)) return wire;
      stun::ChannelData cd;
      cd.channel_number = 0x4002;
      cd.data = std::move(wire);
      return stun::encode_channel_data(cd);
    };

    {
      RtpLeg leg;  // audio PT 111 (Opus)
      leg.src = media.a;
      leg.sport = media.a_port;
      leg.dst = media.b;
      leg.dport = media.b_port;
      leg.ssrc = ssrc_audio_a;
      leg.payload_type = 111;
      leg.pps = 50;
      leg.payload_size = 160;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
      leg.src = media.b;
      leg.sport = media.b_port;
      leg.dst = media.a;
      leg.dport = media.a_port;
      leg.ssrc = ssrc_audio_b;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
    }
    {
      RtpLeg leg;  // video PT 96 (VP8), partially ChannelData-framed
      leg.src = media.a;
      leg.sport = media.a_port;
      leg.dst = media.b;
      leg.dport = media.b_port;
      leg.ssrc = ssrc_video_a;
      leg.payload_type = 96;
      leg.pps = 110;
      leg.payload_size = 1000;
      leg.wrap = channel_wrap;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
      leg.src = media.b;
      leg.sport = media.b_port;
      leg.dst = media.a;
      leg.dport = media.a_port;
      leg.ssrc = ssrc_video_b;
      emit_rtp_leg(ctx, leg, phase.start, phase.end);
    }
    // Probe PTs (Table 5's Meet row): 100,103,104,109,114,35,36,63,97.
    {
      std::uint16_t seq = rng.next_u16();
      double t = phase.start + 2.0;
      for (std::uint8_t pt : {std::uint8_t{100}, std::uint8_t{103},
                              std::uint8_t{104}, std::uint8_t{109},
                              std::uint8_t{114}, std::uint8_t{35},
                              std::uint8_t{36}, std::uint8_t{63},
                              std::uint8_t{97}}) {
        for (int i = 0; i < 6 && t < phase.end; ++i) {
          rtp::PacketBuilder b;
          b.payload_type(pt).seq(seq++).timestamp(rng.next_u32()).ssrc(
              ssrc_audio_a);
          b.payload(BytesView{rng.bytes(200)});
          auto wire = b.build();
          ctx.emit_udp(t, media.a, media.a_port, media.b, media.b_port,
                       BytesView{wire}, TruthKind::kRtc);
          t += 1.9;
        }
      }
    }

    // SRTCP: full 14-byte trailer in P2P/cellular; in relay-Wi-Fi most
    // messages miss the auth tag (§5.2.3). All of 200-207 rotate
    // through the clear first-packet slot.
    {
      const std::uint8_t kTypes[] = {200, 201, 202, 204, 205, 206, 207};
      std::uint32_t index_up = 1, index_down = 1;
      std::size_t rotate = 0;
      for (double t : packet_times(rng, phase.start, phase.end, 7.0,
                                   ctx.config().media_scale)) {
        const bool tag_up = relay_wifi ? rng.chance(0.1) : true;
        Bytes up = srtcp_message(rng, kTypes[rotate % 7], ssrc_audio_a,
                                 index_up++, tag_up);
        ctx.emit_udp(t, media.a, media.a_port, media.b, media.b_port,
                     BytesView{up}, TruthKind::kRtc);
        const bool tag_down = relay_wifi ? rng.chance(0.1) : true;
        Bytes down = srtcp_message(rng, kTypes[(rotate + 3) % 7],
                                   ssrc_audio_b, index_down++, tag_down);
        ctx.emit_udp(t + 0.06, media.b, media.b_port, media.a, media.a_port,
                     BytesView{down}, TruthKind::kRtc);
        ++rotate;
      }
    }
  }

  emit_signaling_tcp(ctx, ep.launch_server, "meetings.meet.example", 20.0);
}

}  // namespace rtcc::emul
