// N-party SFU conference emulation — the paper's group-call future
// work, grown into a real forwarding model.
//
// Every participant uplinks one audio SSRC plus `simulcast_layers`
// video SSRCs (independent encodings at increasing rate/size) to the
// SFU. The SFU runs an explicit RTP forwarder: each uplink packet is
// generated exactly once, and the forwarder re-emits the *identical
// wire bytes* to every subscribed participant — it rewrites nothing but
// the fan-out addressing, which is what real SFUs do (and what makes
// SSRC conservation across the forwarder a checkable invariant, see
// test_group_call).
//
// Subscriptions: everyone receives everyone else's audio; for video,
// each (subscriber, source) pair receives exactly one simulcast layer
// at a time, and a deterministic schedule of layer switches moves pairs
// between layers mid-call (the truth labels land in
// SfuTruth::layer_switches). Churn: with `churn` set, the last
// participant leaves a third of the way in with an RTCP BYE listing all
// of its SSRCs — uplinked exactly once, forwarded once per present
// subscriber — and rejoins for the final third.
//
// RTCP follows conference semantics: SR+SDES uplink per sender, RR
// with one report block per remote participant (the group-only shape),
// all terminated at the SFU except BYE, which is forwarded.
#pragma once

#include <map>

#include "emul/app_model.hpp"

namespace rtcc::emul {

struct SfuConfig {
  int participants = 4;    // clamped up to 3
  int simulcast_layers = 2;  // video SSRCs per participant (>= 1)
  double pre_call_s = 60.0;
  double call_s = 300.0;
  double post_call_s = 60.0;
  double media_scale = 0.02;
  bool background = true;
  /// One participant leaves mid-call (with an RTCP BYE) and rejoins.
  bool churn = true;
  /// Mid-call subscription layer switches to schedule (requires
  /// simulcast_layers > 1 to have any effect).
  int layer_switches = 2;
  std::uint64_t seed = 1;
};

/// One scheduled subscription change: at `ts`, `subscriber` moves its
/// feed of `source`'s video from simulcast layer `from_layer` to
/// `to_layer`. Ground truth for the layer-switch tests.
struct SfuLayerSwitch {
  double ts = 0.0;
  int subscriber = 0;
  int source = 0;
  int from_layer = 0;
  int to_layer = 0;
};

/// Exact forwarder accounting (ground truth; the analysis pipeline
/// never sees this). Bytes are UDP payload bytes.
struct SfuTruth {
  std::map<std::uint32_t, std::uint64_t> uplink_packets;  // RTP, per SSRC
  std::map<std::uint32_t, std::uint64_t> uplink_bytes;
  std::vector<std::uint64_t> forwarded_packets;  // RTP, per subscriber
  std::vector<std::uint64_t> forwarded_bytes;
  std::map<std::uint32_t, std::uint64_t> forwarded_by_ssrc;
  std::vector<SfuLayerSwitch> layer_switches;
  std::uint64_t uplink_byes = 0;     // BYE compounds sent to the SFU
  std::uint64_t forwarded_byes = 0;  // BYE copies fanned out
};

struct SfuCall {
  rtcc::net::Trace trace;
  std::vector<TruthKind> truth;
  rtcc::filter::CallSchedule schedule;
  std::vector<rtcc::net::IpAddr> devices;
  rtcc::net::IpAddr sfu;
  std::vector<std::uint32_t> audio_ssrcs;               // per participant
  std::vector<std::vector<std::uint32_t>> video_ssrcs;  // [participant][layer]
  SfuTruth forwarding;
};

[[nodiscard]] SfuCall emulate_sfu_call(const SfuConfig& config);

[[nodiscard]] rtcc::filter::FilterConfig sfu_filter_config(const SfuCall& call);

}  // namespace rtcc::emul
