// Network-weather layer: composable adversarial path conditions on top
// of emul/perturb's uniform drop/dup/reorder model.
//
// Where PerturbConfig models a memoryless lossy path, WeatherConfig
// models the *correlated* impairments measurement studies actually see:
//   - burst loss via a Gilbert–Elliott two-state Markov chain (good
//     state drops at loss_good, bad state at loss_bad; transitions
//     good→bad with probability ge_p and bad→good with ge_r per frame,
//     so bad-state residence — the burst length — is geometric with
//     mean 1/ge_r);
//   - duplication runs (a duplicated frame is retransmitted 1..dup_run
//     times, spaced dup_gap_s apart, the way a retry storm looks);
//   - bounded reorder windows (a reordered frame moves at most
//     reorder_window_s, so reordering is local like real queues);
//   - jitter bursts (a burst delays *every* frame for jitter_burst_s of
//     trace time by up to jitter_s — bufferbloat, not per-packet noise);
//   - MTU clamping: IPv4 UDP datagrams larger than `mtu` are split into
//     on-path fragments (8-byte aligned offsets, fresh ident, MF bits,
//     recomputed header checksums) that the PR 4 FrameDecoder
//     reassembler must reconstitute downstream.
//
// Everything is driven by one util::Rng seed: same input + same config
// is byte-identical. Linktype, per-frame orig_len and the capture-layer
// ingest ledger survive like clone_trace (the weather happened on the
// path, not in the capture stack), so weathered traces keep composing
// with the metamorphic ledger oracles.
#pragma once

#include "net/pcap.hpp"
#include "util/rng.hpp"

namespace rtcc::emul {

struct WeatherConfig {
  // -- Gilbert–Elliott burst loss ------------------------------------
  double ge_p = 0.0;        // P(good -> bad) per frame
  double ge_r = 1.0;        // P(bad -> good) per frame; mean burst 1/ge_r
  double loss_good = 0.0;   // drop probability in the good state
  double loss_bad = 0.0;    // drop probability in the bad state
  // -- duplication runs ----------------------------------------------
  double dup_p = 0.0;       // per-frame chance of a duplication run
  int dup_run = 1;          // max extra copies per run (uniform 1..run)
  double dup_gap_s = 0.0005;  // spacing between run copies
  // -- bounded reorder -----------------------------------------------
  double reorder_p = 0.0;         // per-frame chance of a local shift
  double reorder_window_s = 0.05;  // max |shift| (seconds)
  // -- jitter bursts -------------------------------------------------
  double jitter_burst_p = 0.0;  // per-frame chance a burst starts
  double jitter_burst_s = 0.5;  // burst duration (trace seconds)
  double jitter_s = 0.05;       // max added delay while inside a burst
  // -- MTU clamp + IPv4 fragmentation --------------------------------
  /// When > 0, every unfragmented Ethernet IPv4 UDP datagram whose IP
  /// total length exceeds this is fragmented on-path. Values below
  /// 14 + 20 + 8 are ignored (cannot carry a fragment).
  std::size_t mtu = 0;
  std::uint64_t seed = 1;
};

/// What the weather did (ground truth for tests; the analysis pipeline
/// never sees this).
struct WeatherStats {
  std::uint64_t dropped = 0;      // frames removed by GE loss
  std::uint64_t bursts = 0;       // good->bad transitions taken
  std::uint64_t duplicated = 0;   // extra copies emitted
  std::uint64_t reordered = 0;    // frames locally shifted
  std::uint64_t delayed = 0;      // frames delayed inside jitter bursts
  std::uint64_t frag_datagrams = 0;  // datagrams split by the MTU clamp
  std::uint64_t frag_frames = 0;     // fragment frames emitted
};

struct WeatherResult {
  rtcc::net::Trace trace;
  WeatherStats stats;
};

/// Applies the configured weather and returns frames re-sorted by their
/// (possibly shifted) timestamps. Deterministic in (trace, config).
[[nodiscard]] WeatherResult apply_weather(const rtcc::net::Trace& trace,
                                          const WeatherConfig& config);

}  // namespace rtcc::emul
