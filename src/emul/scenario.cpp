#include "emul/scenario.hpp"

#include "emul/mobility.hpp"
#include "emul/sfu.hpp"
#include "emul/weather.hpp"

namespace rtcc::emul {

namespace {

Scenario build_sfu(const ScenarioOptions& o, const char* name,
                   int participants, int layers) {
  SfuConfig cfg;
  cfg.participants = participants;
  cfg.simulcast_layers = layers;
  cfg.pre_call_s = o.pre_call_s;
  cfg.call_s = o.call_s;
  cfg.post_call_s = o.post_call_s;
  cfg.media_scale = o.media_scale;
  cfg.seed = o.seed;
  SfuCall call = emulate_sfu_call(cfg);
  Scenario s;
  s.name = name;
  s.cfg = sfu_filter_config(call);
  s.trace = std::move(call.trace);
  s.truth = std::move(call.truth);
  return s;
}

Scenario build_sfu_4p(const ScenarioOptions& o) {
  return build_sfu(o, "sfu-4p", 4, 2);
}

Scenario build_sfu_6p(const ScenarioOptions& o) {
  return build_sfu(o, "sfu-6p-simulcast3", 6, 3);
}

Scenario build_handoff(const ScenarioOptions& o) {
  HandoffConfig cfg;
  cfg.pre_call_s = o.pre_call_s;
  cfg.call_s = o.call_s;
  cfg.post_call_s = o.post_call_s;
  cfg.media_scale = o.media_scale;
  cfg.seed = o.seed;
  HandoffCall call = emulate_handoff(cfg);
  Scenario s;
  s.name = "handoff-wifi-cellular";
  s.cfg = handoff_filter_config(call);
  s.trace = std::move(call.trace);
  s.truth = std::move(call.truth);
  return s;
}

Scenario build_turn_tcp(const ScenarioOptions& o) {
  TurnTcpConfig cfg;
  cfg.pre_call_s = o.pre_call_s;
  cfg.call_s = o.call_s;
  cfg.post_call_s = o.post_call_s;
  cfg.media_scale = o.media_scale;
  cfg.seed = o.seed;
  TurnTcpCall call = emulate_turn_tcp(cfg);
  Scenario s;
  s.name = "turn-tcp-fallback";
  s.cfg = turn_tcp_filter_config(call);
  s.trace = std::move(call.trace);
  s.truth = std::move(call.truth);
  return s;
}

/// Weather scenarios: a 1-on-1 app call run through apply_weather. The
/// positional truth labels do not survive frame dropping/duplication,
/// so `truth` stays empty.
Scenario build_weather(const ScenarioOptions& o, const char* name,
                       const WeatherConfig& weather) {
  CallConfig cc;
  cc.app = AppId::kZoom;
  cc.network = NetworkSetup::kWifiP2p;
  cc.pre_call_s = o.pre_call_s;
  cc.call_s = o.call_s;
  cc.post_call_s = o.post_call_s;
  cc.media_scale = o.media_scale;
  cc.seed = o.seed;
  EmulatedCall call = emulate_call(cc);
  Scenario s;
  s.name = name;
  s.cfg = filter_config_for(call);
  WeatherConfig w = weather;
  w.seed = o.seed + 101;
  s.trace = apply_weather(call.trace, w).trace;
  return s;
}

Scenario build_weather_mtu(const ScenarioOptions& o) {
  WeatherConfig w;
  w.mtu = 640;
  return build_weather(o, "weather-mtu-frag", w);
}

Scenario build_weather_ge(const ScenarioOptions& o) {
  WeatherConfig w;
  w.ge_p = 0.05;
  w.ge_r = 0.3;
  w.loss_good = 0.001;
  w.loss_bad = 0.7;
  return build_weather(o, "weather-ge-loss", w);
}

Scenario build_weather_dup_reorder(const ScenarioOptions& o) {
  WeatherConfig w;
  w.dup_p = 0.05;
  w.dup_run = 3;
  w.reorder_p = 0.1;
  w.reorder_window_s = 0.04;
  return build_weather(o, "weather-dup-reorder", w);
}

Scenario build_weather_jitter(const ScenarioOptions& o) {
  WeatherConfig w;
  w.jitter_burst_p = 0.01;
  w.jitter_burst_s = 0.4;
  w.jitter_s = 0.05;
  return build_weather(o, "weather-jitter-burst", w);
}

}  // namespace

const std::vector<ScenarioSpec>& scenario_catalogue() {
  // The first kTier1Scenarios entries are the tier-1 slice — one per
  // scenario family so the fast lane spans SFU + mobility + weather.
  static const std::vector<ScenarioSpec> kCatalogue = {
      {"sfu-4p", "4-party SFU conference, 2 simulcast layers, churn",
       build_sfu_4p},
      {"handoff-wifi-cellular",
       "mid-call Wi-Fi to cellular migration with ICE restart",
       build_handoff},
      {"weather-mtu-frag",
       "1-on-1 call behind a 640-byte MTU clamp (on-path fragmentation)",
       build_weather_mtu},
      {"turn-tcp-fallback",
       "UDP blocked; TURN-over-TCP allocation + ChannelData media",
       build_turn_tcp},
      {"sfu-6p-simulcast3", "6-party SFU conference, 3 simulcast layers",
       build_sfu_6p},
      {"weather-ge-loss",
       "Gilbert-Elliott burst loss (mean burst ~3.3 frames)",
       build_weather_ge},
      {"weather-dup-reorder", "duplication runs + bounded reorder windows",
       build_weather_dup_reorder},
      {"weather-jitter-burst", "bufferbloat-style jitter bursts",
       build_weather_jitter},
  };
  return kCatalogue;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const auto& s : scenario_catalogue())
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace rtcc::emul
