// Mid-call mobility scenarios — the paper's network axis made dynamic.
//
// emulate_handoff: a Wi-Fi→cellular address migration mid-schedule.
// The device starts on its Wi-Fi address, runs compliant ICE binding
// keepalives and bidirectional RTP/RTCP against the relay, then at
// `handoff_frac` of the call acquires a cellular address and performs
// an ICE restart — fresh STUN transactions re-binding from the new
// 5-tuple — after which the *same SSRCs* continue on the new flow. The
// capture therefore contains two RTC UDP streams that are one logical
// call, which exercises the filter's multi-device config and the
// pipeline's per-stream independence.
//
// emulate_turn_tcp: UDP blocked at the edge. The device's STUN probes
// to the server go unanswered, so it falls back to TURN over TCP
// (RFC 8656 over a stream transport): Allocate / ChannelBind over TCP
// 443, then media as RFC 8656 §12.4 ChannelData framing padded to
// 4-byte boundaries as the TCP framing rules require (§12.5). All the
// RTC bytes ride the TCP stream, landing in the paper's "RTC TCP"
// accounting column.
#pragma once

#include "emul/app_model.hpp"

namespace rtcc::emul {

struct HandoffConfig {
  double pre_call_s = 10.0;
  double call_s = 60.0;
  double post_call_s = 10.0;
  double media_scale = 0.05;
  /// Where in the call the Wi-Fi→cellular migration happens (0..1).
  double handoff_frac = 0.5;
  bool background = true;
  std::uint64_t seed = 1;
};

struct HandoffCall {
  rtcc::net::Trace trace;
  std::vector<TruthKind> truth;
  rtcc::filter::CallSchedule schedule;
  /// Both device addresses: [0] = Wi-Fi, [1] = cellular.
  std::vector<rtcc::net::IpAddr> devices;
  rtcc::net::IpAddr relay;
  double handoff_ts = 0.0;
};

[[nodiscard]] HandoffCall emulate_handoff(const HandoffConfig& config);

[[nodiscard]] rtcc::filter::FilterConfig handoff_filter_config(
    const HandoffCall& call);

struct TurnTcpConfig {
  double pre_call_s = 10.0;
  double call_s = 60.0;
  double post_call_s = 10.0;
  double media_scale = 0.05;
  bool background = true;
  std::uint64_t seed = 1;
};

struct TurnTcpCall {
  rtcc::net::Trace trace;
  std::vector<TruthKind> truth;
  rtcc::filter::CallSchedule schedule;
  rtcc::net::IpAddr device;
  rtcc::net::IpAddr relay;
};

[[nodiscard]] TurnTcpCall emulate_turn_tcp(const TurnTcpConfig& config);

[[nodiscard]] rtcc::filter::FilterConfig turn_tcp_filter_config(
    const TurnTcpCall& call);

}  // namespace rtcc::emul
