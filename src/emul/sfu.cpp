#include "emul/sfu.hpp"

#include <algorithm>

#include "emul/background.hpp"
#include "emul/media_util.hpp"

namespace rtcc::emul {

using rtcc::net::IpAddr;
using rtcc::util::Bytes;
using rtcc::util::BytesView;

namespace rtcp = rtcc::proto::rtcp;
namespace rtp = rtcc::proto::rtp;
namespace stun = rtcc::proto::stun;

namespace {

struct Participant {
  IpAddr device;
  std::uint16_t port = 0;
  std::uint32_t audio_ssrc = 0;
  std::vector<std::uint32_t> video_ssrcs;  // one per simulcast layer
};

/// Per-layer simulcast encoding parameters: higher layers are bigger
/// and faster, like real low/mid/high simulcast rungs.
struct LayerSpec {
  double pps;
  std::size_t size;
};

LayerSpec layer_spec(int layer) {
  return LayerSpec{36.0 * (layer + 1),
                   std::size_t{400} + 300 * static_cast<std::size_t>(layer)};
}

}  // namespace

SfuCall emulate_sfu_call(const SfuConfig& config) {
  const int n = std::max(3, config.participants);
  const int layers = std::max(1, config.simulcast_layers);

  rtcc::filter::CallSchedule schedule;
  schedule.capture_start = 0.0;
  schedule.call_start = config.pre_call_s;
  schedule.call_end = config.pre_call_s + config.call_s;
  schedule.capture_end = schedule.call_end + config.post_call_s;

  CallConfig cc;
  cc.pre_call_s = config.pre_call_s;
  cc.call_s = config.call_s;
  cc.post_call_s = config.post_call_s;
  cc.media_scale = config.media_scale;
  cc.seed = config.seed;

  Endpoints ep;
  ep.device_a = IpAddr::v4(192, 168, 1, 10);
  ep.device_b = IpAddr::v4(192, 168, 1, 11);
  ep.relay = IpAddr::v4(198, 51, 100, 90);
  ep.stun_server = IpAddr::v4(198, 51, 100, 91);
  ep.launch_server = IpAddr::v4(203, 0, 113, 90);

  CallContext ctx(cc, ep, schedule, config.seed * 0x9E3779B97F4A7C15ULL + 11);
  auto& rng = ctx.rng();

  const double t0 = schedule.call_start + 0.5;
  const double t1 = schedule.call_end - 0.2;
  const std::uint16_t sfu_port = 19302;

  SfuCall out;
  out.schedule = schedule;
  out.sfu = ep.relay;
  out.forwarding.forwarded_packets.assign(static_cast<std::size_t>(n), 0);
  out.forwarding.forwarded_bytes.assign(static_cast<std::size_t>(n), 0);

  std::vector<Participant> ps;
  for (int i = 0; i < n; ++i) {
    Participant p;
    p.device = IpAddr::v4(192, 168, 1, static_cast<std::uint8_t>(10 + i));
    p.port = ctx.ephemeral_port();
    p.audio_ssrc = rng.next_u32();
    for (int l = 0; l < layers; ++l) p.video_ssrcs.push_back(rng.next_u32());
    ps.push_back(p);
    out.devices.push_back(p.device);
    out.audio_ssrcs.push_back(p.audio_ssrc);
    out.video_ssrcs.push_back(p.video_ssrcs);
  }

  // Churn: the last participant leaves a third of the way in and
  // rejoins for the final third.
  const double churn_leave = t0 + (t1 - t0) / 3.0;
  const double churn_rejoin = t0 + 2.0 * (t1 - t0) / 3.0;
  const auto present = [&](int i, double t) {
    if (!(config.churn && i == n - 1)) return t >= t0 && t < t1;
    return (t >= t0 && t < churn_leave) || (t >= churn_rejoin && t < t1);
  };
  const auto segments = [&](int i) {
    std::vector<std::pair<double, double>> segs;
    if (config.churn && i == n - 1) {
      segs.emplace_back(t0, churn_leave);
      segs.emplace_back(churn_rejoin, t1);
    } else {
      segs.emplace_back(t0, t1);
    }
    return segs;
  };

  // ---- Subscription layer-switch schedule (truth labels first, so
  // forwarding below can consult it). Churning participants are left
  // out: a switch must stay observable on both sides of its timestamp.
  const int switch_pool = config.churn ? n - 1 : n;
  std::map<std::pair<int, int>, int> current_layer;
  if (layers > 1) {
    for (int k = 0; k < config.layer_switches; ++k) {
      SfuLayerSwitch sw;
      sw.ts = t0 + (k + 1) * (t1 - t0) / (config.layer_switches + 1);
      sw.subscriber = k % switch_pool;
      sw.source = (sw.subscriber + 1 + k / switch_pool) % switch_pool;
      if (sw.source == sw.subscriber) sw.source = (sw.source + 1) % switch_pool;
      auto& cur = current_layer[{sw.subscriber, sw.source}];
      sw.from_layer = cur;
      sw.to_layer = (cur + 1) % layers;
      cur = sw.to_layer;
      out.forwarding.layer_switches.push_back(sw);
    }
  }
  const auto layer_of = [&](int subscriber, int source, double t) {
    int layer = 0;
    for (const auto& sw : out.forwarding.layer_switches)
      if (sw.subscriber == subscriber && sw.source == source && sw.ts <= t)
        layer = sw.to_layer;
    return layer;
  };

  // ---- The forwarder: one generated uplink packet, fanned out as
  // identical bytes to every subscribed, present participant.
  const double kForwardDelay = 0.004;
  const auto forward_rtp = [&](int source, double t, BytesView wire,
                               std::uint32_t ssrc, bool audio, int layer) {
    for (int s = 0; s < n; ++s) {
      if (s == source || !present(s, t)) continue;
      if (!audio && layer_of(s, source, t) != layer) continue;
      ctx.emit_udp(t + kForwardDelay, ep.relay, sfu_port, ps[s].device,
                   ps[s].port, wire, TruthKind::kRtc);
      ++out.forwarding.forwarded_packets[static_cast<std::size_t>(s)];
      out.forwarding.forwarded_bytes[static_cast<std::size_t>(s)] +=
          wire.size();
      ++out.forwarding.forwarded_by_ssrc[ssrc];
    }
  };

  // ---- ICE: each participant runs compliant binding checks to the SFU
  // while present.
  for (int i = 0; i < n; ++i) {
    for (auto [s, e] : segments(i)) {
      for (double t = s + 0.5; t < e; t += 8.0) {
        stun::TransactionId txid{};
        for (auto& b : txid) b = rng.next_u8();
        auto req = stun::MessageBuilder(stun::kBindingRequest)
                       .transaction_id(txid)
                       .attribute_str(stun::attr::kUsername, "sfu:member")
                       .attribute_u32(stun::attr::kPriority, 0x7E0000FF)
                       .build();
        ctx.emit_udp(t, ps[i].device, ps[i].port, ep.relay, sfu_port,
                     BytesView{req}, TruthKind::kRtc);
        auto resp = stun::MessageBuilder(stun::kBindingSuccess)
                        .transaction_id(txid)
                        .xor_address(stun::attr::kXorMappedAddress,
                                     ps[i].device, ps[i].port)
                        .build();
        ctx.emit_udp(t + 0.02, ep.relay, sfu_port, ps[i].device, ps[i].port,
                     BytesView{resp}, TruthKind::kRtc);
      }
    }
  }

  // ---- Media: per-source uplink legs through the forwarder.
  for (int i = 0; i < n; ++i) {
    const auto& p = ps[static_cast<std::size_t>(i)];
    struct LegDef {
      std::uint32_t ssrc;
      std::uint8_t pt;
      double pps;
      std::size_t size;
      std::uint32_t ts_step;
      bool audio;
      int layer;
    };
    std::vector<LegDef> legs;
    legs.push_back({p.audio_ssrc, 111, 50.0, 160, 960, true, 0});
    for (int l = 0; l < layers; ++l) {
      const LayerSpec spec = layer_spec(l);
      legs.push_back({p.video_ssrcs[static_cast<std::size_t>(l)], 96, spec.pps,
                      spec.size, 3000, false, l});
    }
    for (const auto& leg : legs) {
      std::uint16_t seq = rng.next_u16();
      std::uint32_t rtp_ts = rng.next_u32();
      for (auto [s, e] : segments(i)) {
        for (double t :
             packet_times(rng, s, e, leg.pps, ctx.config().media_scale)) {
          rtp_ts += leg.ts_step;
          Bytes wire = rtp::PacketBuilder()
                           .payload_type(leg.pt)
                           .seq(seq++)
                           .timestamp(rtp_ts)
                           .ssrc(leg.ssrc)
                           .payload(rng.bytes(leg.size))
                           .build();
          ctx.emit_udp(t, p.device, p.port, ep.relay, sfu_port,
                       BytesView{wire}, TruthKind::kRtc);
          ++out.forwarding.uplink_packets[leg.ssrc];
          out.forwarding.uplink_bytes[leg.ssrc] += wire.size();
          forward_rtp(i, t, BytesView{wire}, leg.ssrc, leg.audio, leg.layer);
        }
      }
    }
  }

  // ---- RTCP: conference reporting, terminated at the SFU (only BYE
  // is forwarded). SR+SDES for the own audio stream; RR carries one
  // report block per present remote — the group-only shape.
  for (int i = 0; i < n; ++i) {
    const auto& p = ps[static_cast<std::size_t>(i)];
    for (auto [s, e] : segments(i)) {
      for (double t :
           packet_times(rng, s, e, 1.0, ctx.config().media_scale)) {
        Bytes sr = make_sr_sdes(rng, p.audio_ssrc, "sfu@example");
        ctx.emit_udp(t, p.device, p.port, ep.relay, sfu_port, BytesView{sr},
                     TruthKind::kRtc);
        rtcp::ReceiverReport rr;
        rr.sender_ssrc = p.audio_ssrc;
        for (int o = 0; o < n; ++o) {
          if (o == i || !present(o, t)) continue;
          rtcp::ReportBlock block;
          block.ssrc = ps[static_cast<std::size_t>(o)]
                           .video_ssrcs[static_cast<std::size_t>(
                               layer_of(i, o, t))];
          block.fraction_lost = static_cast<std::uint8_t>(rng.below(8));
          block.highest_seq = rng.next_u32();
          block.jitter = static_cast<std::uint32_t>(rng.below(300));
          rr.reports.push_back(block);
        }
        rtcp::Compound c;
        c.packets.push_back(rtcp::make_receiver_report(rr));
        Bytes wire = rtcp::encode_compound(c);
        ctx.emit_udp(t + 0.2, p.device, p.port, ep.relay, sfu_port,
                     BytesView{wire}, TruthKind::kRtc);
      }
    }
  }

  // ---- Churn BYE: uplinked exactly once, forwarded to every present
  // subscriber as identical bytes (RFC 3550 §6.6 compound: RR first).
  if (config.churn) {
    const auto& p = ps[static_cast<std::size_t>(n - 1)];
    rtcp::ReceiverReport rr;
    rr.sender_ssrc = p.audio_ssrc;
    rtcp::Bye bye;
    bye.ssrcs.push_back(p.audio_ssrc);
    for (auto v : p.video_ssrcs) bye.ssrcs.push_back(v);
    bye.reason = Bytes{'l', 'e', 'a', 'v', 'i', 'n', 'g'};
    rtcp::Compound c;
    c.packets.push_back(rtcp::make_receiver_report(rr));
    c.packets.push_back(rtcp::make_bye(bye));
    Bytes wire = rtcp::encode_compound(c);
    const double t = churn_leave - 0.05;
    ctx.emit_udp(t, p.device, p.port, ep.relay, sfu_port, BytesView{wire},
                 TruthKind::kRtc);
    ++out.forwarding.uplink_byes;
    for (int s = 0; s < n - 1; ++s) {
      ctx.emit_udp(t + kForwardDelay, ep.relay, sfu_port,
                   ps[static_cast<std::size_t>(s)].device,
                   ps[static_cast<std::size_t>(s)].port, BytesView{wire},
                   TruthKind::kRtc);
      ++out.forwarding.forwarded_byes;
    }
  }

  if (config.background) generate_background(ctx);

  EmulatedCall raw = ctx.take_call();
  out.trace = std::move(raw.trace);
  out.truth = std::move(raw.truth);
  return out;
}

rtcc::filter::FilterConfig sfu_filter_config(const SfuCall& call) {
  rtcc::filter::FilterConfig cfg;
  cfg.schedule = call.schedule;
  cfg.sni_blocklist = background_sni_blocklist();
  cfg.device_ips = call.devices;
  cfg.excluded_ports = rtcc::filter::default_excluded_ports();
  return cfg;
}

}  // namespace rtcc::emul
