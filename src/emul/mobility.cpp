#include "emul/mobility.hpp"

#include <algorithm>

#include "emul/background.hpp"
#include "emul/media_util.hpp"

namespace rtcc::emul {

using rtcc::net::IpAddr;
using rtcc::util::Bytes;
using rtcc::util::BytesView;

namespace rtcp = rtcc::proto::rtcp;
namespace rtp = rtcc::proto::rtp;
namespace stun = rtcc::proto::stun;

namespace {

stun::TransactionId fresh_txid(rtcc::util::Rng& rng) {
  stun::TransactionId txid{};
  for (auto& b : txid) b = rng.next_u8();
  return txid;
}

/// One compliant ICE binding round trip on the given 5-tuple.
void binding_round_trip(CallContext& ctx, double t, const IpAddr& dev,
                        std::uint16_t dport, const IpAddr& relay,
                        std::uint16_t rport, std::string_view username) {
  auto& rng = ctx.rng();
  const auto txid = fresh_txid(rng);
  auto req = stun::MessageBuilder(stun::kBindingRequest)
                 .transaction_id(txid)
                 .attribute_str(stun::attr::kUsername, username)
                 .attribute_u32(stun::attr::kPriority, 0x7E0000FF)
                 .build();
  ctx.emit_udp(t, dev, dport, relay, rport, BytesView{req}, TruthKind::kRtc);
  auto resp = stun::MessageBuilder(stun::kBindingSuccess)
                  .transaction_id(txid)
                  .xor_address(stun::attr::kXorMappedAddress, dev, dport)
                  .build();
  ctx.emit_udp(t + 0.02, relay, rport, dev, dport, BytesView{resp},
               TruthKind::kRtc);
}

/// Bidirectional RTP + 1 Hz RTCP on one 5-tuple over [start, end).
/// SSRC state (seq/rtp_ts) lives in the caller so it survives handoff.
struct MediaLegState {
  std::uint32_t ssrc = 0;
  std::uint8_t pt = 0;
  double pps = 0;
  std::size_t size = 0;
  std::uint32_t ts_step = 0;
  std::uint16_t seq = 0;
  std::uint32_t rtp_ts = 0;
  bool uplink = true;  // device -> relay when true
};

void emit_media_window(CallContext& ctx, std::vector<MediaLegState>& legs,
                       double start, double end, const IpAddr& dev,
                       std::uint16_t dport, const IpAddr& relay,
                       std::uint16_t rport) {
  auto& rng = ctx.rng();
  for (auto& leg : legs) {
    for (double t :
         packet_times(rng, start, end, leg.pps, ctx.config().media_scale)) {
      leg.rtp_ts += leg.ts_step;
      Bytes wire = rtp::PacketBuilder()
                       .payload_type(leg.pt)
                       .seq(leg.seq++)
                       .timestamp(leg.rtp_ts)
                       .ssrc(leg.ssrc)
                       .payload(rng.bytes(leg.size))
                       .build();
      if (leg.uplink)
        ctx.emit_udp(t, dev, dport, relay, rport, BytesView{wire},
                     TruthKind::kRtc);
      else
        ctx.emit_udp(t, relay, rport, dev, dport, BytesView{wire},
                     TruthKind::kRtc);
    }
  }
  for (double t :
       packet_times(rng, start, end, 1.0, ctx.config().media_scale)) {
    Bytes sr = make_sr_sdes(rng, legs[0].ssrc, "mob@example");
    ctx.emit_udp(t, dev, dport, relay, rport, BytesView{sr}, TruthKind::kRtc);
    Bytes rr = make_rr_sdes(rng, legs[2].ssrc, legs[0].ssrc, "rem@example");
    ctx.emit_udp(t + 0.15, relay, rport, dev, dport, BytesView{rr},
                 TruthKind::kRtc);
  }
}

}  // namespace

HandoffCall emulate_handoff(const HandoffConfig& config) {
  rtcc::filter::CallSchedule schedule;
  schedule.capture_start = 0.0;
  schedule.call_start = config.pre_call_s;
  schedule.call_end = config.pre_call_s + config.call_s;
  schedule.capture_end = schedule.call_end + config.post_call_s;

  CallConfig cc;
  cc.pre_call_s = config.pre_call_s;
  cc.call_s = config.call_s;
  cc.post_call_s = config.post_call_s;
  cc.media_scale = config.media_scale;
  cc.seed = config.seed;

  Endpoints ep;
  ep.device_a = IpAddr::v4(192, 168, 1, 10);   // Wi-Fi address
  ep.device_b = IpAddr::v4(10, 64, 7, 10);     // cellular address
  ep.relay = IpAddr::v4(198, 51, 100, 90);
  ep.stun_server = IpAddr::v4(198, 51, 100, 91);
  ep.launch_server = IpAddr::v4(203, 0, 113, 90);

  CallContext ctx(cc, ep, schedule, config.seed * 0x9E3779B97F4A7C15ULL + 13);
  auto& rng = ctx.rng();

  const double t0 = schedule.call_start + 0.5;
  const double t1 = schedule.call_end - 0.2;
  const double frac = std::clamp(config.handoff_frac, 0.1, 0.9);
  const double t_h = t0 + frac * (t1 - t0);

  const IpAddr wifi = ep.device_a;
  const IpAddr cell = ep.device_b;
  const std::uint16_t wifi_port = ctx.ephemeral_port();
  const std::uint16_t cell_port = ctx.ephemeral_port();
  const std::uint16_t relay_port = 3478;

  // The call's media state: same SSRCs before and after the handoff.
  std::vector<MediaLegState> legs;
  legs.push_back({rng.next_u32(), 111, 50.0, 160, 960, rng.next_u16(),
                  rng.next_u32(), true});
  legs.push_back({rng.next_u32(), 96, 90.0, 900, 3000, rng.next_u16(),
                  rng.next_u32(), true});
  legs.push_back({rng.next_u32(), 111, 50.0, 160, 960, rng.next_u16(),
                  rng.next_u32(), false});
  legs.push_back({rng.next_u32(), 96, 90.0, 900, 3000, rng.next_u16(),
                  rng.next_u32(), false});

  // ---- Wi-Fi epoch: binding keepalives + media on the Wi-Fi 5-tuple.
  for (double t = t0; t < t_h; t += 8.0)
    binding_round_trip(ctx, t, wifi, wifi_port, ep.relay, relay_port,
                       "mob:wifi");
  emit_media_window(ctx, legs, t0 + 0.1, t_h, wifi, wifi_port, ep.relay,
                    relay_port);

  // ---- ICE restart: a burst of fresh transactions from the cellular
  // address re-binds the session to the new 5-tuple.
  for (int i = 0; i < 3; ++i)
    binding_round_trip(ctx, t_h + 0.05 * (i + 1), cell, cell_port, ep.relay,
                       relay_port, "mob:cell");

  // ---- Cellular epoch: the same SSRCs continue on the new flow.
  for (double t = t_h + 0.5; t < t1; t += 8.0)
    binding_round_trip(ctx, t, cell, cell_port, ep.relay, relay_port,
                       "mob:cell");
  emit_media_window(ctx, legs, t_h + 0.3, t1, cell, cell_port, ep.relay,
                    relay_port);

  if (config.background) generate_background(ctx);

  EmulatedCall raw = ctx.take_call();
  HandoffCall out;
  out.trace = std::move(raw.trace);
  out.truth = std::move(raw.truth);
  out.schedule = schedule;
  out.devices = {wifi, cell};
  out.relay = ep.relay;
  out.handoff_ts = t_h;
  return out;
}

rtcc::filter::FilterConfig handoff_filter_config(const HandoffCall& call) {
  rtcc::filter::FilterConfig cfg;
  cfg.schedule = call.schedule;
  cfg.sni_blocklist = background_sni_blocklist();
  cfg.device_ips = call.devices;
  cfg.excluded_ports = rtcc::filter::default_excluded_ports();
  return cfg;
}

TurnTcpCall emulate_turn_tcp(const TurnTcpConfig& config) {
  rtcc::filter::CallSchedule schedule;
  schedule.capture_start = 0.0;
  schedule.call_start = config.pre_call_s;
  schedule.call_end = config.pre_call_s + config.call_s;
  schedule.capture_end = schedule.call_end + config.post_call_s;

  CallConfig cc;
  cc.pre_call_s = config.pre_call_s;
  cc.call_s = config.call_s;
  cc.post_call_s = config.post_call_s;
  cc.media_scale = config.media_scale;
  cc.seed = config.seed;

  Endpoints ep;
  ep.device_a = IpAddr::v4(192, 168, 1, 10);
  ep.device_b = IpAddr::v4(192, 168, 1, 11);
  ep.relay = IpAddr::v4(198, 51, 100, 90);
  ep.stun_server = IpAddr::v4(198, 51, 100, 91);
  ep.launch_server = IpAddr::v4(203, 0, 113, 90);

  CallContext ctx(cc, ep, schedule, config.seed * 0x9E3779B97F4A7C15ULL + 17);
  auto& rng = ctx.rng();

  const double t0 = schedule.call_start + 0.5;
  const double t1 = schedule.call_end - 0.2;
  const IpAddr dev = ep.device_a;
  const std::uint16_t udp_port = ctx.ephemeral_port();
  const std::uint16_t tcp_port = ctx.ephemeral_port();
  const std::uint16_t relay_tcp = 443;

  // ---- UDP blocked: binding requests to the STUN server retransmit
  // with fresh transactions and never get an answer.
  for (int i = 0; i < 3; ++i) {
    auto req = stun::MessageBuilder(stun::kBindingRequest)
                   .transaction_id(fresh_txid(rng))
                   .attribute_str(stun::attr::kUsername, "turn:client")
                   .attribute_u32(stun::attr::kPriority, 0x7E0000FF)
                   .build();
    ctx.emit_udp(t0 + 0.5 * i, dev, udp_port, ep.stun_server, 3478,
                 BytesView{req}, TruthKind::kRtc);
  }

  const auto tcp_up = [&](double t, BytesView bytes) {
    ctx.emit_tcp(t, dev, tcp_port, ep.relay, relay_tcp, bytes,
                 TruthKind::kRtc);
  };
  const auto tcp_down = [&](double t, BytesView bytes) {
    ctx.emit_tcp(t, ep.relay, relay_tcp, dev, tcp_port, bytes,
                 TruthKind::kRtc);
  };

  // ---- TURN-over-TCP control: Allocate, then ChannelBind, then
  // periodic Refresh (RFC 8656 over a stream transport).
  const double t_alloc = t0 + 2.0;
  {
    const auto txid = fresh_txid(rng);
    tcp_up(t_alloc, stun::MessageBuilder(stun::kAllocateRequest)
                        .transaction_id(txid)
                        .attribute_u32(stun::attr::kRequestedTransport,
                                       0x11000000)  // UDP
                        .attribute_str(stun::attr::kUsername, "turn:client")
                        .build());
    tcp_down(t_alloc + 0.05,
             stun::MessageBuilder(stun::kAllocateSuccess)
                 .transaction_id(txid)
                 .xor_address(stun::attr::kXorRelayedAddress, ep.relay, 49160)
                 .xor_address(stun::attr::kXorMappedAddress, dev, tcp_port)
                 .attribute_u32(stun::attr::kLifetime, 600)
                 .build());
  }
  const std::uint16_t channel = 0x4000;
  {
    const auto txid = fresh_txid(rng);
    tcp_up(t_alloc + 0.2,
           stun::MessageBuilder(stun::kChannelBindRequest)
               .transaction_id(txid)
               .attribute_u32(stun::attr::kChannelNumber,
                              std::uint32_t{channel} << 16)
               .xor_address(stun::attr::kXorPeerAddress,
                            IpAddr::v4(203, 0, 113, 50), 40000)
               .build());
    tcp_down(t_alloc + 0.25, stun::MessageBuilder(stun::kChannelBindSuccess)
                                 .transaction_id(txid)
                                 .build());
  }
  for (double t = t_alloc + 30.0; t < t1; t += 30.0) {
    const auto txid = fresh_txid(rng);
    tcp_up(t, stun::MessageBuilder(stun::kRefreshRequest)
                  .transaction_id(txid)
                  .attribute_u32(stun::attr::kLifetime, 600)
                  .build());
    tcp_down(t + 0.05, stun::MessageBuilder(stun::kRefreshSuccess)
                           .transaction_id(txid)
                           .attribute_u32(stun::attr::kLifetime, 600)
                           .build());
  }

  // ---- Media as ChannelData over the stream: RFC 8656 §12.5 requires
  // TCP-borne ChannelData padded up to a 4-byte boundary.
  const auto channel_data = [&](BytesView rtp_wire) {
    stun::ChannelData cd;
    cd.channel_number = channel;
    cd.length = static_cast<std::uint16_t>(rtp_wire.size());
    cd.data.assign(rtp_wire.begin(), rtp_wire.end());
    Bytes framed = stun::encode_channel_data(cd);
    while (framed.size() % 4 != 0) framed.push_back(0);
    return framed;
  };
  struct Leg {
    std::uint32_t ssrc;
    std::uint8_t pt;
    double pps;
    std::size_t size;
    std::uint32_t ts_step;
    bool uplink;
  };
  for (const Leg leg : {Leg{rng.next_u32(), 111, 50.0, 160, 960, true},
                        Leg{rng.next_u32(), 96, 90.0, 900, 3000, true},
                        Leg{rng.next_u32(), 111, 50.0, 160, 960, false},
                        Leg{rng.next_u32(), 96, 90.0, 900, 3000, false}}) {
    std::uint16_t seq = rng.next_u16();
    std::uint32_t rtp_ts = rng.next_u32();
    for (double t : packet_times(rng, t_alloc + 0.5, t1, leg.pps,
                                 ctx.config().media_scale)) {
      rtp_ts += leg.ts_step;
      Bytes wire = rtp::PacketBuilder()
                       .payload_type(leg.pt)
                       .seq(seq++)
                       .timestamp(rtp_ts)
                       .ssrc(leg.ssrc)
                       .payload(rng.bytes(leg.size))
                       .build();
      Bytes framed = channel_data(BytesView{wire});
      if (leg.uplink)
        tcp_up(t, BytesView{framed});
      else
        tcp_down(t, BytesView{framed});
    }
  }

  if (config.background) generate_background(ctx);

  EmulatedCall raw = ctx.take_call();
  TurnTcpCall out;
  out.trace = std::move(raw.trace);
  out.truth = std::move(raw.truth);
  out.schedule = schedule;
  out.device = dev;
  out.relay = ep.relay;
  return out;
}

rtcc::filter::FilterConfig turn_tcp_filter_config(const TurnTcpCall& call) {
  rtcc::filter::FilterConfig cfg;
  cfg.schedule = call.schedule;
  cfg.sni_blocklist = background_sni_blocklist();
  cfg.device_ips = {call.device};
  cfg.excluded_ports = rtcc::filter::default_excluded_ports();
  return cfg;
}

}  // namespace rtcc::emul
