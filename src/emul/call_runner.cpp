#include "emul/app_model.hpp"
#include "emul/apps/apps.hpp"
#include "emul/background.hpp"

namespace rtcc::emul {

using rtcc::net::IpAddr;

namespace {

Endpoints endpoints_for(const CallConfig& config) {
  Endpoints ep;
  if (config.ipv6) {
    const auto app_octet =
        static_cast<std::uint16_t>(20 + static_cast<std::uint8_t>(config.app));
    auto v6 = [](const char* text) { return *IpAddr::parse(text); };
    ep.device_a = v6(config.network == NetworkSetup::kCellular
                         ? "fd00:ce11::10"
                         : "fd00:1a:a::10");
    ep.device_b = v6(config.network == NetworkSetup::kCellular
                         ? "fd00:ce11::11"
                         : "fd00:1a:a::11");
    ep.relay = v6(("2001:db8:1::" + std::to_string(app_octet)).c_str());
    ep.stun_server =
        v6(("2001:db8:2::" + std::to_string(app_octet)).c_str());
    ep.launch_server =
        v6(("2001:db8:3::" + std::to_string(app_octet)).c_str());
    return ep;
  }
  if (config.network == NetworkSetup::kCellular) {
    // Carrier-grade NAT style addressing; no LAN around the devices.
    ep.device_a = IpAddr::v4(10, 128, 0, 10);
    ep.device_b = IpAddr::v4(10, 128, 0, 11);
  } else {
    ep.device_a = IpAddr::v4(192, 168, 1, 10);
    ep.device_b = IpAddr::v4(192, 168, 1, 11);
  }
  // Distinct per-app infrastructure so cross-app aggregation never
  // merges streams.
  const auto app_octet = static_cast<std::uint8_t>(
      20 + static_cast<std::uint8_t>(config.app));
  ep.relay = IpAddr::v4(198, 51, 100, app_octet);
  ep.stun_server = IpAddr::v4(198, 51, 100,
                              static_cast<std::uint8_t>(app_octet + 40));
  ep.launch_server = IpAddr::v4(203, 0, 113,
                                static_cast<std::uint8_t>(app_octet + 10));
  return ep;
}

std::uint64_t mix_seed(const CallConfig& c) {
  std::uint64_t s = c.seed;
  s = s * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(c.app) + 1;
  s = s * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(c.network) + 1;
  s = s * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(c.call_index) + 1;
  return s;
}

}  // namespace

const AppModel& model_for(AppId app) {
  static const ZoomModel zoom;
  static const FaceTimeModel facetime;
  static const WhatsAppModel whatsapp;
  static const MessengerModel messenger;
  static const DiscordModel discord;
  static const GoogleMeetModel meet;
  switch (app) {
    case AppId::kZoom:
      return zoom;
    case AppId::kFaceTime:
      return facetime;
    case AppId::kWhatsApp:
      return whatsapp;
    case AppId::kMessenger:
      return messenger;
    case AppId::kDiscord:
      return discord;
    case AppId::kGoogleMeet:
      return meet;
  }
  return zoom;
}

EmulatedCall emulate_call(const CallConfig& config) {
  rtcc::filter::CallSchedule schedule;
  schedule.capture_start = 0.0;
  schedule.call_start = config.pre_call_s;
  schedule.call_end = config.pre_call_s + config.call_s;
  schedule.capture_end = schedule.call_end + config.post_call_s;

  CallContext ctx(config, endpoints_for(config), schedule, mix_seed(config));
  model_for(config.app).generate(ctx);
  if (config.background) generate_background(ctx);
  return ctx.take_call();
}

rtcc::filter::FilterConfig filter_config_for(const EmulatedCall& call) {
  rtcc::filter::FilterConfig cfg;
  cfg.schedule = call.schedule;
  cfg.sni_blocklist = background_sni_blocklist();
  cfg.device_ips = {call.endpoints.device_a, call.endpoints.device_b};
  if (call.config.ipv6) {
    // Dual-stack: the devices' IPv4 identities carry background noise.
    const bool wifi = call.config.network != NetworkSetup::kCellular;
    cfg.device_ips.push_back(wifi ? IpAddr::v4(192, 168, 1, 10)
                                  : IpAddr::v4(10, 128, 0, 10));
    cfg.device_ips.push_back(wifi ? IpAddr::v4(192, 168, 1, 11)
                                  : IpAddr::v4(10, 128, 0, 11));
  }
  cfg.excluded_ports = rtcc::filter::default_excluded_ports();
  return cfg;
}

}  // namespace rtcc::emul
