#include "emul/media_util.hpp"

#include "proto/tls/client_hello.hpp"

namespace rtcc::emul {

using rtcc::util::Bytes;
using rtcc::util::BytesView;

namespace rtp = rtcc::proto::rtp;
namespace rtcp = rtcc::proto::rtcp;

std::size_t emit_rtp_leg(CallContext& ctx, const RtpLeg& leg, double start,
                         double end) {
  auto& rng = ctx.rng();
  const auto times =
      packet_times(rng, start, end, leg.pps, ctx.config().media_scale);
  std::uint16_t seq = rng.next_u16();
  std::uint32_t ts = rng.next_u32();
  for (std::size_t i = 0; i < times.size(); ++i) {
    rtp::PacketBuilder b;
    b.payload_type(leg.payload_type)
        .seq(seq++)
        .timestamp(ts)
        .ssrc(leg.ssrc)
        .payload(BytesView{rng.bytes(leg.payload_size)});
    ts += leg.ts_step;
    if (leg.decorate) leg.decorate(b, rng, i);
    Bytes wire = b.build();
    if (leg.wrap) wire = leg.wrap(std::move(wire), rng, i);
    ctx.emit_udp(times[i], leg.src, leg.sport, leg.dst, leg.dport,
                 BytesView{wire}, TruthKind::kRtc);
  }
  return times.size();
}

Bytes make_sr_sdes(rtcc::util::Rng& rng, std::uint32_t ssrc,
                   std::string_view cname) {
  rtcp::SenderReport sr;
  sr.sender_ssrc = ssrc;
  sr.ntp_timestamp = (std::uint64_t{rng.next_u32()} << 32) | rng.next_u32();
  sr.rtp_timestamp = rng.next_u32();
  sr.packet_count = rng.next_u32() % 100000;
  sr.octet_count = rng.next_u32() % 10000000;

  rtcp::Sdes sdes;
  rtcp::SdesChunk chunk;
  chunk.ssrc = ssrc;
  rtcp::SdesItem item;
  item.type = 1;  // CNAME
  item.value.assign(cname.begin(), cname.end());
  chunk.items.push_back(std::move(item));
  sdes.chunks.push_back(std::move(chunk));

  rtcp::Compound c;
  c.packets.push_back(rtcp::make_sender_report(sr));
  c.packets.push_back(rtcp::make_sdes(sdes));
  return rtcp::encode_compound(c);
}

Bytes make_rr_sdes(rtcc::util::Rng& rng, std::uint32_t sender_ssrc,
                   std::uint32_t media_ssrc, std::string_view cname) {
  rtcp::ReceiverReport rr;
  rr.sender_ssrc = sender_ssrc;
  rtcp::ReportBlock block;
  block.ssrc = media_ssrc;
  block.fraction_lost = static_cast<std::uint8_t>(rng.below(10));
  block.cumulative_lost = static_cast<std::uint32_t>(rng.below(1000));
  block.highest_seq = rng.next_u32();
  block.jitter = static_cast<std::uint32_t>(rng.below(500));
  block.lsr = rng.next_u32();
  block.dlsr = static_cast<std::uint32_t>(rng.below(65536));
  rr.reports.push_back(block);

  rtcp::Sdes sdes;
  rtcp::SdesChunk chunk;
  chunk.ssrc = sender_ssrc;
  rtcp::SdesItem item;
  item.type = 1;
  item.value.assign(cname.begin(), cname.end());
  chunk.items.push_back(std::move(item));
  sdes.chunks.push_back(std::move(chunk));

  rtcp::Compound c;
  c.packets.push_back(rtcp::make_receiver_report(rr));
  c.packets.push_back(rtcp::make_sdes(sdes));
  return rtcp::encode_compound(c);
}

Bytes make_feedback_compound(rtcc::util::Rng& rng, std::uint32_t sender_ssrc,
                             std::uint32_t media_ssrc,
                             std::uint8_t packet_type, std::uint8_t fmt,
                             bool sr_first) {
  rtcp::Feedback fb;
  fb.sender_ssrc = sender_ssrc;
  fb.media_ssrc = media_ssrc;
  if (packet_type == rtcp::kRtpFeedback && fmt == 1) {
    // Generic NACK: one (PID, BLP) entry.
    rtcc::util::ByteWriter w;
    w.u16(rng.next_u16()).u16(0x0001);
    fb.fci = std::move(w).take();
  } else if (packet_type == rtcp::kPayloadFeedback && fmt == 1) {
    // PLI carries no FCI.
  } else if (packet_type == rtcp::kRtpFeedback && fmt == 15) {
    // transport-cc: base seq, count, ref time, fb pkt count + one chunk.
    rtcc::util::ByteWriter w;
    w.u16(rng.next_u16()).u16(1);
    w.u24(static_cast<std::uint32_t>(rng.below(1 << 24)));
    w.u8(0);
    w.u16(0x2001);  // run-length chunk
    w.u16(0);       // padding to 32-bit
    fb.fci = std::move(w).take();
  }

  rtcp::Compound c;
  if (sr_first) {
    rtcp::SenderReport sr;
    sr.sender_ssrc = sender_ssrc;
    sr.ntp_timestamp = (std::uint64_t{rng.next_u32()} << 32) | rng.next_u32();
    sr.rtp_timestamp = rng.next_u32();
    sr.packet_count = rng.next_u32() % 100000;
    sr.octet_count = rng.next_u32() % 10000000;
    c.packets.push_back(rtcp::make_sender_report(sr));
  } else {
    rtcp::ReceiverReport rr;
    rr.sender_ssrc = sender_ssrc;
    c.packets.push_back(rtcp::make_receiver_report(rr));
  }
  c.packets.push_back(rtcp::make_feedback(packet_type, fmt, fb));
  return rtcp::encode_compound(c);
}

void emit_signaling_tcp(CallContext& ctx, const rtcc::net::IpAddr& server,
                        const std::string& sni, double period_s) {
  const std::uint16_t sport = ctx.ephemeral_port();
  auto hello = rtcc::proto::tls::build_client_hello(sni);
  const double start = ctx.call_start() + 0.5;
  ctx.emit_tcp(start, ctx.ep().device_a, sport, server, 443,
               BytesView{hello}, TruthKind::kRtc);
  for (double t = start + period_s; t < ctx.call_end() - 1.0;
       t += period_s) {
    rtcc::util::ByteWriter w;
    w.u8(0x17).u16(0x0303).u16(48);
    w.raw(BytesView{ctx.rng().bytes(48)});
    Bytes hb = std::move(w).take();
    ctx.emit_tcp(t, ctx.ep().device_a, sport, server, 443, BytesView{hb},
                 TruthKind::kRtc);
  }
}

}  // namespace rtcc::emul
