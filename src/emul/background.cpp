#include "emul/background.hpp"

#include "proto/tls/client_hello.hpp"

namespace rtcc::emul {

using rtcc::net::IpAddr;
using rtcc::util::Bytes;
using rtcc::util::BytesView;

namespace {

const IpAddr kApnsServer = IpAddr::v4(17, 57, 144, 10);
const IpAddr kUpdateServer = IpAddr::v4(23, 10, 20, 5);
const IpAddr kGoogleApi = IpAddr::v4(142, 250, 68, 10);
const IpAddr kFacebookWeb = IpAddr::v4(157, 240, 22, 35);
const IpAddr kDnsServer = IpAddr::v4(8, 8, 8, 8);
const IpAddr kSsdpMulticast = IpAddr::v4(239, 255, 255, 250);
const IpAddr kMdnsMulticast = IpAddr::v4(224, 0, 0, 251);
const IpAddr kLanNeighbor = IpAddr::v4(192, 168, 1, 23);

/// Opaque TLS application-data-looking record.
Bytes tls_app_data(rtcc::util::Rng& rng, std::size_t size) {
  rtcc::util::ByteWriter w;
  w.u8(0x17).u16(0x0303);
  w.u16(static_cast<std::uint16_t>(size));
  w.raw(BytesView{rng.bytes(size)});
  return std::move(w).take();
}

Bytes dns_query(rtcc::util::Rng& rng) {
  rtcc::util::ByteWriter w;
  w.u16(rng.next_u16());  // id
  w.u16(0x0100);          // RD
  w.u16(1).u16(0).u16(0).u16(0);
  // "time.apple.com"
  for (const char* label : {"time", "apple", "com"}) {
    std::string_view s{label};
    w.u8(static_cast<std::uint8_t>(s.size()));
    w.str(s);
  }
  w.u8(0);
  w.u16(1).u16(1);  // A IN
  return std::move(w).take();
}

/// One TLS flow: ClientHello then a few data records in both directions.
void tls_flow(CallContext& ctx, const IpAddr& device, double start,
              double duration, const IpAddr& server, const std::string& sni,
              std::size_t segments) {
  const std::uint16_t sport = ctx.ephemeral_port();
  auto hello = rtcc::proto::tls::build_client_hello(sni);
  ctx.emit_tcp(start, device, sport, server, 443, BytesView{hello},
               TruthKind::kBackground);
  for (std::size_t i = 0; i < segments; ++i) {
    const double ts =
        start + duration * (static_cast<double>(i + 1) /
                            static_cast<double>(segments + 1));
    auto up = tls_app_data(ctx.rng(), 200 + ctx.rng().below(800));
    auto down = tls_app_data(ctx.rng(), 400 + ctx.rng().below(1000));
    ctx.emit_tcp(ts, device, sport, server, 443, BytesView{up},
                 TruthKind::kBackground);
    ctx.emit_tcp(ts + 0.02, server, 443, device, sport, BytesView{down},
                 TruthKind::kBackground);
  }
}

}  // namespace

std::vector<std::string> background_sni_blocklist() {
  return {"oauth2.googleapis.com", "web.facebook.com", "graph.facebook.com",
          "updates.apple.com", "metrics.icloud.com"};
}

void generate_background(CallContext& ctx) {
  const auto& sch = ctx.schedule();
  auto& rng = ctx.rng();
  const bool wifi = ctx.config().network != NetworkSetup::kCellular;
  // Background services run over IPv4 even when the call is IPv6 —
  // phones are dual-stack, and the OS chatter (APNS, DNS, SSDP) lives
  // on the v4 side in our model.
  const IpAddr device =
      ctx.ep().device_a.is_v4()
          ? ctx.ep().device_a
          : (wifi ? IpAddr::v4(192, 168, 1, 10) : IpAddr::v4(10, 128, 0, 10));

  // --- APNS-style persistent push connection -----------------------------
  // One long-lived stream spanning the whole capture (stage-1 removal)…
  {
    const std::uint16_t sport = ctx.ephemeral_port();
    for (double t = sch.capture_start + 1.0; t < sch.capture_end;
         t += 8.0 + rng.uniform() * 6.0) {
      auto keepalive = tls_app_data(rng, 32);
      ctx.emit_tcp(t, device, sport, kApnsServer, 5223, BytesView{keepalive},
                   TruthKind::kBackground);
    }
  }
  // …plus an intra-call rebind to the same remote 3-tuple after a NAT
  // rebinding (evades stage 1; caught by the 3-tuple timing filter).
  {
    const std::uint16_t sport = ctx.ephemeral_port();
    const double start = sch.call_start + 40.0;
    for (double t = start; t < start + 30.0; t += 9.0) {
      auto keepalive = tls_app_data(rng, 32);
      ctx.emit_tcp(t, device, sport, kApnsServer, 5223, BytesView{keepalive},
                   TruthKind::kBackground);
    }
  }

  // --- Pre-call OS update / login burst (stage 1) -------------------------
  tls_flow(ctx, device, sch.capture_start + 5.0, 20.0, kUpdateServer,
           "updates.apple.com", 6);

  // --- Intra-call ad/analytics flows (stage 2, SNI blocklist) ------------
  tls_flow(ctx, device, sch.call_start + 25.0, 8.0, kGoogleApi,
           "oauth2.googleapis.com", 3);
  tls_flow(ctx, device, sch.call_start + 120.0, 6.0, kFacebookWeb,
           "web.facebook.com", 2);

  // --- DNS lookups during the call (stage 2, port filter) ----------------
  for (int i = 0; i < 5; ++i) {
    const double t = sch.call_start + 10.0 + 50.0 * i + rng.uniform() * 10.0;
    auto q = dns_query(rng);
    ctx.emit_udp(t, device, ctx.ephemeral_port(), kDnsServer, 53,
                 BytesView{q}, TruthKind::kBackground);
  }

  if (wifi) {
    // --- SSDP / mDNS LAN chatter (stage 2, port filter) -------------------
    for (int i = 0; i < 4; ++i) {
      const double t = sch.call_start + 30.0 + 60.0 * i;
      const std::string ssdp =
          "M-SEARCH * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\n\r\n";
      ctx.emit_udp(t, device, ctx.ephemeral_port(), kSsdpMulticast, 1900,
                   BytesView{reinterpret_cast<const std::uint8_t*>(
                                 ssdp.data()),
                             ssdp.size()},
                   TruthKind::kBackground);
      auto mdns = rng.bytes(64);
      ctx.emit_udp(t + 1.0, device, 5353, kMdnsMulticast, 5353,
                   BytesView{mdns}, TruthKind::kBackground);
    }

    // --- LAN discovery with a neighbour (stage 2, local-IP filter) -------
    // The same IP pair is active pre-call, so the in-call stream is
    // attributable to persistent LAN management, not the call.
    auto lan_payload = [&rng] { return rng.bytes(48); };
    {
      auto p = lan_payload();
      ctx.emit_udp(sch.capture_start + 12.0, device, 7788, kLanNeighbor, 7788,
                   BytesView{p}, TruthKind::kBackground);
    }
    for (int i = 0; i < 6; ++i) {
      const double t = sch.call_start + 15.0 + 45.0 * i;
      auto p = lan_payload();
      // Different ports than the pre-call stream so neither stage 1 nor
      // the 3-tuple filter catches it — only the local-IP heuristic
      // (same local IP pair seen pre-call) can attribute it.
      ctx.emit_udp(t, device, 7789, kLanNeighbor, 7790, BytesView{p},
                   TruthKind::kBackground);
    }
  }

  // --- Post-call flows (stage 1) ------------------------------------------
  tls_flow(ctx, device, sch.call_end + 10.0, 15.0, kUpdateServer,
           "metrics.icloud.com", 3);
}

}  // namespace rtcc::emul
