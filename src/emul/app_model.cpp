#include "emul/app_model.hpp"

#include <algorithm>

namespace rtcc::emul {

using rtcc::net::IpAddr;
using rtcc::util::BytesView;

std::string to_string(AppId a) {
  switch (a) {
    case AppId::kZoom:
      return "Zoom";
    case AppId::kFaceTime:
      return "FaceTime";
    case AppId::kWhatsApp:
      return "WhatsApp";
    case AppId::kMessenger:
      return "Messenger";
    case AppId::kDiscord:
      return "Discord";
    case AppId::kGoogleMeet:
      return "Google Meet";
  }
  return "?";
}

std::string to_string(NetworkSetup n) {
  switch (n) {
    case NetworkSetup::kWifiP2p:
      return "WiFi-P2P";
    case NetworkSetup::kWifiRelay:
      return "WiFi-Relay";
    case NetworkSetup::kCellular:
      return "Cellular";
  }
  return "?";
}

std::vector<AppId> all_apps() {
  return {AppId::kZoom,      AppId::kFaceTime, AppId::kWhatsApp,
          AppId::kMessenger, AppId::kDiscord,  AppId::kGoogleMeet};
}

std::vector<NetworkSetup> all_networks() {
  return {NetworkSetup::kWifiP2p, NetworkSetup::kWifiRelay,
          NetworkSetup::kCellular};
}

CallContext::CallContext(const CallConfig& config, const Endpoints& endpoints,
                         const rtcc::filter::CallSchedule& schedule,
                         std::uint64_t seed)
    : config_(config),
      endpoints_(endpoints),
      schedule_(schedule),
      rng_(seed),
      use_arena_(rtcc::net::arena_enabled()) {}

TransmissionMode CallContext::initial_mode() const {
  switch (config_.network) {
    case NetworkSetup::kWifiP2p:
      return TransmissionMode::kP2p;
    case NetworkSetup::kWifiRelay:
      return TransmissionMode::kRelay;
    case NetworkSetup::kCellular:
      // §3.1.1: application-dependent. Zoom and Discord always relay;
      // FaceTime always P2P; the rest start on relay and switch.
      switch (config_.app) {
        case AppId::kFaceTime:
          return TransmissionMode::kP2p;
        case AppId::kZoom:
        case AppId::kDiscord:
        case AppId::kWhatsApp:
        case AppId::kMessenger:
        case AppId::kGoogleMeet:
          return TransmissionMode::kRelay;
      }
  }
  return TransmissionMode::kRelay;
}

TransmissionMode CallContext::mode_at(double ts) const {
  const TransmissionMode initial = initial_mode();
  if (config_.network != NetworkSetup::kCellular) return initial;
  const bool switches = config_.app == AppId::kWhatsApp ||
                        config_.app == AppId::kMessenger ||
                        config_.app == AppId::kGoogleMeet;
  if (switches && ts >= schedule_.call_start + 30.0)
    return TransmissionMode::kP2p;
  return initial;
}

std::uint16_t CallContext::ephemeral_port() {
  return static_cast<std::uint16_t>(20000 + rng_.below(40000));
}

void CallContext::emit(double ts, const rtcc::net::FrameSpec& spec,
                       BytesView payload, TruthKind kind) {
  if (use_arena_) {
    emissions_.push_back(
        Emission{ts, rtcc::net::build_frame_arena(arena_, ts, spec, payload),
                 kind});
  } else {
    emissions_.push_back(Emission{
        ts, rtcc::net::Frame{ts, rtcc::net::build_frame(spec, payload)},
        kind});
  }
}

void CallContext::emit_udp(double ts, const IpAddr& src, std::uint16_t sport,
                           const IpAddr& dst, std::uint16_t dport,
                           BytesView payload, TruthKind kind) {
  rtcc::net::FrameSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.src_port = sport;
  spec.dst_port = dport;
  spec.transport = rtcc::net::Transport::kUdp;
  emit(ts, spec, payload, kind);
}

void CallContext::emit_tcp(double ts, const IpAddr& src, std::uint16_t sport,
                           const IpAddr& dst, std::uint16_t dport,
                           BytesView payload, TruthKind kind) {
  rtcc::net::FrameSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.src_port = sport;
  spec.dst_port = dport;
  spec.transport = rtcc::net::Transport::kTcp;
  emit(ts, spec, payload, kind);
}

EmulatedCall CallContext::take_call() {
  std::stable_sort(
      emissions_.begin(), emissions_.end(),
      [](const Emission& a, const Emission& b) { return a.ts < b.ts; });
  EmulatedCall call;
  call.schedule = schedule_;
  call.endpoints = endpoints_;
  call.config = config_;
  call.trace = rtcc::net::Trace(use_arena_);
  if (use_arena_) call.trace.adopt_arena(std::move(arena_));
  call.trace.reserve(emissions_.size());
  call.truth.reserve(emissions_.size());
  for (auto& e : emissions_) {
    call.trace.add_frame(std::move(e.frame));
    call.truth.push_back(e.kind);
  }
  emissions_.clear();
  arena_ = rtcc::net::FrameArena();
  return call;
}

std::vector<double> packet_times(rtcc::util::Rng& rng, double start,
                                 double end, double pps, double scale) {
  std::vector<double> out;
  const double rate = pps * scale;
  if (rate <= 0 || end <= start) return out;
  double t = start + rng.exponential(1.0 / rate);
  while (t < end) {
    out.push_back(t);
    t += rng.exponential(1.0 / rate);
  }
  return out;
}

MediaPath media_path(CallContext& ctx, TransmissionMode mode,
                     std::uint16_t a_port, std::uint16_t b_port,
                     std::uint16_t relay_port) {
  MediaPath p;
  p.a = ctx.ep().device_a;
  p.a_port = a_port;
  if (mode == TransmissionMode::kP2p) {
    p.b = ctx.ep().device_b;
    p.b_port = b_port;
  } else {
    p.b = ctx.ep().relay;
    p.b_port = relay_port;
  }
  return p;
}

}  // namespace rtcc::emul
