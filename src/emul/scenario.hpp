// Scenario catalogue — every workload beyond the 6×3 app matrix, in
// one registry that the oracles iterate automatically.
//
// A Scenario is a generated trace plus the filter config that analyzes
// it; a ScenarioSpec is its catalogue entry (name, summary, builder).
// Registration here is what makes a new workload real: the metamorphic
// driver (testkit::meta) runs every catalogue entry through the
// transform × oracle grid, test_scenario_matrix pins streaming/sharded
// parity per entry, the corpus runner appends per-scenario rows to the
// compliance matrix (CorpusOptions::scenario_repeats), and
// examples/scenario_pcap writes any entry as a pcap for `rtccd` — so a
// scenario is born with oracle coverage or it doesn't exist.
//
// The first kTier1Scenarios entries are the tier-1 slice (one per
// scenario family: SFU conference, mobility, weather); the full set
// runs in the nightly/full sweeps.
#pragma once

#include <string>

#include "emul/app_model.hpp"

namespace rtcc::emul {

struct Scenario {
  std::string name;
  rtcc::net::Trace trace;
  /// Ground-truth labels per frame; empty when the generator cannot
  /// label (weather-composed scenarios drop/duplicate frames, which
  /// invalidates positional labels).
  std::vector<TruthKind> truth;
  rtcc::filter::FilterConfig cfg;
};

/// Generation knobs shared by every catalogue builder; defaults are
/// sized for tests (the corpus runner passes its experiment's scale).
struct ScenarioOptions {
  double media_scale = 0.02;
  double call_s = 45.0;
  double pre_call_s = 5.0;
  double post_call_s = 5.0;
  std::uint64_t seed = 2026;
};

struct ScenarioSpec {
  std::string name;
  std::string summary;
  Scenario (*build)(const ScenarioOptions&) = nullptr;
};

/// Catalogue entries 0..kTier1Scenarios-1 are the tier-1 slice.
inline constexpr std::size_t kTier1Scenarios = 3;

[[nodiscard]] const std::vector<ScenarioSpec>& scenario_catalogue();
[[nodiscard]] const ScenarioSpec* find_scenario(const std::string& name);

}  // namespace rtcc::emul
