#include "emul/perturb.hpp"

#include <algorithm>

namespace rtcc::emul {

rtcc::net::Trace perturb(const rtcc::net::Trace& trace,
                         const PerturbConfig& config) {
  rtcc::util::Rng rng(config.seed);
  rtcc::net::Trace out;
  out.frames.reserve(trace.frames.size());

  for (const auto& frame : trace.frames) {
    if (rng.chance(config.drop_p)) continue;

    rtcc::net::Frame copy = frame;
    if (rng.chance(config.reorder_p)) {
      const double shift =
          (rng.uniform() * 2.0 - 1.0) * config.reorder_jitter_s;
      copy.ts = std::max(0.0, copy.ts + shift);
    }
    out.frames.push_back(copy);

    if (rng.chance(config.dup_p)) {
      rtcc::net::Frame dup = copy;
      dup.ts += 0.0005;  // retransmission-style near-duplicate
      out.frames.push_back(std::move(dup));
    }
  }

  std::stable_sort(out.frames.begin(), out.frames.end(),
                   [](const rtcc::net::Frame& a, const rtcc::net::Frame& b) {
                     return a.ts < b.ts;
                   });
  return out;
}

}  // namespace rtcc::emul
