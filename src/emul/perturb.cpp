#include "emul/perturb.hpp"

#include <algorithm>

namespace rtcc::emul {

rtcc::net::Trace perturb(const rtcc::net::Trace& trace,
                         const PerturbConfig& config) {
  rtcc::util::Rng rng(config.seed);

  // Decide survivors/jitter/dups first over cheap (ts, source-frame)
  // descriptors, then copy bytes into the output trace in final order.
  struct Item {
    double ts;
    const rtcc::net::Frame* src;
  };
  std::vector<Item> items;
  items.reserve(trace.size());

  for (const auto& frame : trace.frames()) {
    if (rng.chance(config.drop_p)) continue;

    double ts = frame.ts;
    if (rng.chance(config.reorder_p)) {
      const double shift =
          (rng.uniform() * 2.0 - 1.0) * config.reorder_jitter_s;
      ts = std::max(0.0, ts + shift);
    }
    items.push_back(Item{ts, &frame});

    if (rng.chance(config.dup_p)) {
      // Retransmission-style near-duplicate.
      items.push_back(Item{ts + 0.0005, &frame});
    }
  }

  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.ts < b.ts; });

  // Like clone_trace: linktype, the capture-layer ingest ledger and
  // per-frame orig_len all survive the perturbation — a perturbed
  // capture is still the same capture to the PR 4 ledger oracles, and
  // the weather layer (emul/weather.hpp) composes on top of this.
  rtcc::net::Trace out(trace.uses_arena());
  out.set_linktype(trace.linktype());
  out.ingest() = trace.ingest();
  out.reserve(items.size());
  for (const auto& item : items)
    out.add_frame(item.ts, trace.bytes(*item.src)).orig_len =
        item.src->orig_len;
  return out;
}

rtcc::net::Trace clone_trace(const rtcc::net::Trace& trace) {
  rtcc::net::Trace out(trace.uses_arena());
  out.set_linktype(trace.linktype());
  out.ingest() = trace.ingest();
  out.reserve(trace.size());
  for (const auto& frame : trace.frames())
    out.add_frame(frame.ts, trace.bytes(frame)).orig_len = frame.orig_len;
  return out;
}

rtcc::net::Trace translate_time(const rtcc::net::Trace& trace, double dt) {
  rtcc::net::Trace out(trace.uses_arena());
  out.set_linktype(trace.linktype());
  out.ingest() = trace.ingest();
  out.reserve(trace.size());
  for (const auto& frame : trace.frames())
    out.add_frame(frame.ts + dt, trace.bytes(frame)).orig_len = frame.orig_len;
  return out;
}

}  // namespace rtcc::emul
