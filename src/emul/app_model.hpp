// Synthetic traffic models for the six RTC applications.
//
// The paper's input is live captures of real calls; offline we
// substitute deterministic per-application models that reproduce every
// wire-level behaviour §4/§5 documents (see DESIGN.md §1/§5). Each
// generated frame carries a ground-truth label that tests use to
// validate the filter and DPI — the analysis pipeline itself never
// sees the labels.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "filter/pipeline.hpp"
#include "net/pcap.hpp"
#include "util/rng.hpp"

namespace rtcc::emul {

enum class AppId : std::uint8_t {
  kZoom,
  kFaceTime,
  kWhatsApp,
  kMessenger,
  kDiscord,
  kGoogleMeet,
};

enum class NetworkSetup : std::uint8_t {
  kWifiP2p,    // Wi-Fi, UDP hole punching allowed
  kWifiRelay,  // Wi-Fi, hole punching blocked at the router
  kCellular,   // 4G; transmission mode is application-determined
};

enum class TransmissionMode : std::uint8_t { kP2p, kRelay };

[[nodiscard]] std::string to_string(AppId a);
[[nodiscard]] std::string to_string(NetworkSetup n);
[[nodiscard]] std::vector<AppId> all_apps();
[[nodiscard]] std::vector<NetworkSetup> all_networks();

struct CallConfig {
  AppId app = AppId::kZoom;
  NetworkSetup network = NetworkSetup::kWifiP2p;
  double pre_call_s = 60.0;
  double call_s = 300.0;
  double post_call_s = 60.0;
  /// Scales media packet rates; 1.0 approximates a real call's ~50 pps
  /// audio + ~120 pps video. Benches default lower to stay fast.
  double media_scale = 0.05;
  bool background = true;
  std::uint64_t seed = 1;
  /// Repeat number within an experiment; Zoom's deterministic SSRC
  /// reuse (§5.2.2) is observable across values of this field.
  int call_index = 0;
  /// Run the call over IPv6 (devices on a ULA prefix, servers on
  /// 2001:db8::/32). Background traffic stays IPv4, producing the
  /// dual-stack captures real phones generate.
  bool ipv6 = false;
};

struct Endpoints {
  rtcc::net::IpAddr device_a;
  rtcc::net::IpAddr device_b;
  rtcc::net::IpAddr relay;        // the app's TURN/SFU relay
  rtcc::net::IpAddr stun_server;  // in-call STUN server
  rtcc::net::IpAddr launch_server;  // pre-call infrastructure
};

/// Ground truth attached to each emitted frame (tests only).
enum class TruthKind : std::uint8_t { kRtc, kBackground };

/// A generated call: time-sorted frames + parallel truth labels.
struct EmulatedCall {
  rtcc::net::Trace trace;
  std::vector<TruthKind> truth;
  rtcc::filter::CallSchedule schedule;
  Endpoints endpoints;
  CallConfig config;
};

/// Emission context handed to app models and the background generator.
class CallContext {
 public:
  CallContext(const CallConfig& config, const Endpoints& endpoints,
              const rtcc::filter::CallSchedule& schedule,
              std::uint64_t seed);

  [[nodiscard]] const CallConfig& config() const { return config_; }
  [[nodiscard]] const Endpoints& ep() const { return endpoints_; }
  [[nodiscard]] const rtcc::filter::CallSchedule& schedule() const {
    return schedule_;
  }
  [[nodiscard]] rtcc::util::Rng& rng() { return rng_; }

  [[nodiscard]] double call_start() const { return schedule_.call_start; }
  [[nodiscard]] double call_end() const { return schedule_.call_end; }

  /// The mode the call starts in, per the application-dependent rules
  /// §3.1.1 reports; mode_at() additionally models the relay→P2P switch
  /// WhatsApp/Messenger/Meet perform ~30 s into cellular calls.
  [[nodiscard]] TransmissionMode initial_mode() const;
  [[nodiscard]] TransmissionMode mode_at(double ts) const;

  /// Ephemeral port draw, stable within the call.
  [[nodiscard]] std::uint16_t ephemeral_port();

  void emit_udp(double ts, const rtcc::net::IpAddr& src, std::uint16_t sport,
                const rtcc::net::IpAddr& dst, std::uint16_t dport,
                rtcc::util::BytesView payload, TruthKind kind);
  void emit_tcp(double ts, const rtcc::net::IpAddr& src, std::uint16_t sport,
                const rtcc::net::IpAddr& dst, std::uint16_t dport,
                rtcc::util::BytesView payload, TruthKind kind);

  /// Sorts emissions by timestamp and moves them out.
  [[nodiscard]] EmulatedCall take_call();

 private:
  struct Emission {
    double ts;
    rtcc::net::Frame frame;
    TruthKind kind;
  };

  void emit(double ts, const rtcc::net::FrameSpec& spec,
            rtcc::util::BytesView payload, TruthKind kind);

  CallConfig config_;
  Endpoints endpoints_;
  rtcc::filter::CallSchedule schedule_;
  rtcc::util::Rng rng_;
  /// Arena mode: frames are written straight into this arena and only
  /// their 24-byte descriptors are sorted/moved by take_call; the arena
  /// itself transfers wholesale into the call's trace. Legacy mode
  /// (RTCC_ARENA=0) keeps one owned buffer per emission instead.
  bool use_arena_;
  rtcc::net::FrameArena arena_;
  std::vector<Emission> emissions_;
};

/// One application's traffic model.
class AppModel {
 public:
  virtual ~AppModel() = default;
  [[nodiscard]] virtual AppId id() const = 0;
  /// Emits this app's RTC traffic (and app-specific pre-call traffic).
  virtual void generate(CallContext& ctx) const = 0;
};

[[nodiscard]] const AppModel& model_for(AppId app);

/// Full single-call emulation: endpoints + app model + background.
[[nodiscard]] EmulatedCall emulate_call(const CallConfig& config);

/// The filter configuration matching an emulated call (device IPs,
/// schedule, SNI blocklist, default port exclusions).
[[nodiscard]] rtcc::filter::FilterConfig filter_config_for(
    const EmulatedCall& call);

// ---- Shared helpers for app models --------------------------------------

/// Poisson-ish packet timestamps at `pps * media_scale` over [start, end).
[[nodiscard]] std::vector<double> packet_times(rtcc::util::Rng& rng,
                                               double start, double end,
                                               double pps, double scale);

/// A bidirectional media leg: A-side and B-side addresses/ports for the
/// current mode (direct A<->B, or both legs hitting the relay).
struct MediaPath {
  rtcc::net::IpAddr a;
  std::uint16_t a_port = 0;
  rtcc::net::IpAddr b;
  std::uint16_t b_port = 0;
};

/// Resolves the media path for a mode: P2P = device A <-> device B;
/// relay = device <-> relay server (the "B side" becomes the relay).
[[nodiscard]] MediaPath media_path(CallContext& ctx, TransmissionMode mode,
                                   std::uint16_t a_port,
                                   std::uint16_t b_port,
                                   std::uint16_t relay_port);

}  // namespace rtcc::emul
