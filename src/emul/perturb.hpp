// Trace perturbation for robustness / failure-injection testing: drops,
// duplicates and reorders frames the way a lossy network path would.
// The analysis pipeline's message-type verdicts must be insensitive to
// these (the DPI's continuity heuristics tolerate loss; the checker's
// context detectors key on patterns, not exact counts).
#pragma once

#include "net/pcap.hpp"
#include "util/rng.hpp"

namespace rtcc::emul {

struct PerturbConfig {
  double drop_p = 0.0;     // per-frame drop probability
  double dup_p = 0.0;      // per-frame duplication probability
  double reorder_p = 0.0;  // per-frame chance of a timestamp nudge
  /// Maximum |timestamp shift| applied to reordered frames (seconds).
  double reorder_jitter_s = 0.05;
  std::uint64_t seed = 1;
};

/// Applies the perturbation and returns the frames re-sorted by their
/// (possibly shifted) timestamps. Linktype, per-frame orig_len and the
/// capture-layer ingest ledger are preserved like clone_trace does, so
/// perturbed captures compose with the ledger oracles and the weather
/// layer (emul/weather.hpp).
[[nodiscard]] rtcc::net::Trace perturb(const rtcc::net::Trace& trace,
                                       const PerturbConfig& config);

/// Deep copy of a trace preserving linktype, per-frame orig_len and the
/// capture-layer ingest ledger (the semantics-preserving rewrites in
/// testkit::meta rely on this).
[[nodiscard]] rtcc::net::Trace clone_trace(const rtcc::net::Trace& trace);

/// Global time translation: every frame timestamp shifts by `dt`, frame
/// order and bytes unchanged. A capture's compliance verdicts are a
/// function of relative timing only, so shifting the trace together
/// with its CallSchedule must not move any analysis output (the
/// testkit::meta `time-shift` invariant).
[[nodiscard]] rtcc::net::Trace translate_time(const rtcc::net::Trace& trace,
                                              double dt);

}  // namespace rtcc::emul
