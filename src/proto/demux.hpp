// First-byte multiplexing classification per RFC 7983 (the scheme real
// RTC stacks use to share one UDP socket among STUN, DTLS, TURN
// ChannelData, RTP/RTCP and — per RFC 9443 — QUIC).
//
// The scanning DPI intentionally does NOT rely on this (proprietary
// headers break it, which is the paper's point), but it is the right
// primer for offset-zero classification and the strict baseline, and
// useful to library users building their own tooling.
#pragma once

#include <cstdint>
#include <string>

namespace rtcc::proto {

enum class DemuxClass : std::uint8_t {
  kStun,         // first byte 0..3
  kZrtp,         // 16..19
  kDtls,         // 20..63
  kTurnChannel,  // 64..79 (TURN ChannelData)
  kQuic,         // 128..191 with the long-header bit via RFC 9443 rules
  kRtpRtcp,      // 128..191
  kUnknown,
};

[[nodiscard]] std::string to_string(DemuxClass c);

/// Classifies by the first payload byte per RFC 7983 §7 (+ RFC 9443's
/// QUIC extension: in the 128..191 range, QUIC long headers set bit
/// 0x40 *and* 0x80 — i.e. 192..255 — so plain 128..191 stays RTP/RTCP).
[[nodiscard]] DemuxClass classify_first_byte(std::uint8_t b);

}  // namespace rtcc::proto
