#include "proto/quic/quic.hpp"

#include "util/hex.hpp"

namespace rtcc::proto::quic {

using rtcc::util::ByteReader;
using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

std::string ConnectionId::to_string() const {
  return rtcc::util::to_hex(BytesView{bytes});
}

std::optional<Varint> read_varint(BytesView data) {
  if (data.empty()) return std::nullopt;
  const std::size_t width = std::size_t{1} << (data[0] >> 6);
  if (data.size() < width) return std::nullopt;
  std::uint64_t v = data[0] & 0x3F;
  for (std::size_t i = 1; i < width; ++i) v = (v << 8) | data[i];
  return Varint{v, width};
}

void write_varint(ByteWriter& w, std::uint64_t value) {
  if (value < (1ULL << 6)) {
    w.u8(static_cast<std::uint8_t>(value));
  } else if (value < (1ULL << 14)) {
    w.u16(static_cast<std::uint16_t>(value | 0x4000));
  } else if (value < (1ULL << 30)) {
    w.u32(static_cast<std::uint32_t>(value | 0x80000000u));
  } else {
    w.u64(value | 0xC000000000000000ULL);
  }
}

std::optional<Header> parse(BytesView data, const ParseOptions& opts) {
  if (data.empty()) return std::nullopt;
  ByteReader r(data);
  const std::uint8_t first = r.u8();

  Header h;
  h.long_form = (first & 0x80) != 0;
  h.fixed_bit = (first & 0x40) != 0;

  if (h.long_form) {
    h.version = r.u32();
    const std::uint8_t dcid_len = r.u8();
    if (dcid_len > 20) return std::nullopt;  // RFC 9000 §17.2
    h.dcid.bytes = r.copy(dcid_len);
    const std::uint8_t scid_len = r.u8();
    if (scid_len > 20) return std::nullopt;
    h.scid.bytes = r.copy(scid_len);
    if (!r.ok()) return std::nullopt;

    if (h.version == kVersionNegotiation) {
      // Version negotiation: rest is a list of supported versions.
      if (r.remaining() % 4 != 0 || r.remaining() == 0) return std::nullopt;
      h.header_size = r.offset();
      h.payload_size = r.remaining();
      return h;
    }

    h.long_type = static_cast<LongType>((first >> 4) & 0x03);

    if (h.long_type == LongType::kRetry) {
      // Retry: token until the 16-byte integrity tag; spans the rest.
      if (r.remaining() < 16) return std::nullopt;
      h.header_size = r.offset();
      h.payload_size = r.remaining();
      return h;
    }

    if (h.long_type == LongType::kInitial) {
      auto token_len = read_varint(data.subspan(r.offset()));
      if (!token_len) return std::nullopt;
      r.skip(token_len->width);
      if (r.remaining() < token_len->value) return std::nullopt;
      r.skip(static_cast<std::size_t>(token_len->value));
    }

    auto length = read_varint(data.subspan(r.offset()));
    if (!length) return std::nullopt;
    r.skip(length->width);
    if (r.remaining() < length->value) return std::nullopt;
    h.header_size = r.offset();
    h.payload_size = static_cast<std::size_t>(length->value);
    return h;
  }

  // Short header: 1 byte + DCID (length known out-of-band) + pn + payload.
  if (r.remaining() < opts.short_dcid_len + 1) return std::nullopt;
  h.dcid.bytes = r.copy(opts.short_dcid_len);
  h.version = kVersion1;
  h.header_size = r.offset();
  h.payload_size = r.remaining();
  return h;
}

Bytes encode_long(LongType type, std::uint32_t version,
                  const ConnectionId& dcid, const ConnectionId& scid,
                  BytesView payload) {
  ByteWriter w;
  // Form=1, Fixed=1, type, 2-bit reserved/pn-length (pn len 2 => 0b01).
  w.u8(static_cast<std::uint8_t>(0xC0 |
                                 (static_cast<std::uint8_t>(type) << 4) |
                                 0x01));
  w.u32(version);
  w.u8(static_cast<std::uint8_t>(dcid.bytes.size()));
  w.raw(BytesView{dcid.bytes});
  w.u8(static_cast<std::uint8_t>(scid.bytes.size()));
  w.raw(BytesView{scid.bytes});
  if (type == LongType::kInitial) write_varint(w, 0);  // empty token
  // Length covers the 2-byte packet number + payload.
  write_varint(w, 2 + payload.size());
  w.u16(0x0001);  // packet number (unprotected in our model)
  w.raw(payload);
  return std::move(w).take();
}

Bytes encode_short(const ConnectionId& dcid, BytesView payload, bool spin) {
  ByteWriter w;
  // Form=0, Fixed=1, spin, reserved 0, key phase 0, pn length 2 (0b01).
  w.u8(static_cast<std::uint8_t>(0x40 | (spin ? 0x20 : 0x00) | 0x01));
  w.raw(BytesView{dcid.bytes});
  w.u16(0x0001);
  w.raw(payload);
  return std::move(w).take();
}

}  // namespace rtcc::proto::quic
