// QUIC v1 header codec — RFC 9000 §17 (long and short headers) plus
// §16 variable-length integers and version negotiation.
//
// Payloads are encrypted in real traffic, so the analyzer (like the
// paper's) only judges header structure: form bit, fixed bit, version,
// packet type, DCID/SCID lengths and values.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace rtcc::proto::quic {

constexpr std::uint32_t kVersion1 = 0x00000001;
constexpr std::uint32_t kVersionNegotiation = 0x00000000;

/// Long-header packet types (RFC 9000 Table 5).
enum class LongType : std::uint8_t {
  kInitial = 0,
  kZeroRtt = 1,
  kHandshake = 2,
  kRetry = 3,
};

struct ConnectionId {
  rtcc::util::Bytes bytes;

  bool operator==(const ConnectionId&) const = default;
  [[nodiscard]] std::string to_string() const;
};

struct Header {
  bool long_form = false;
  bool fixed_bit = true;  // RFC 9000 §17.2/§17.3: MUST be 1
  // Long header fields:
  LongType long_type = LongType::kInitial;
  std::uint32_t version = kVersion1;
  ConnectionId dcid;
  ConnectionId scid;  // long form only
  // Parsed extent: long form consumes through the length-prefixed
  // payload when present; short form spans the datagram remainder.
  std::size_t header_size = 0;
  std::size_t payload_size = 0;

  [[nodiscard]] std::size_t wire_size() const {
    return header_size + payload_size;
  }
};

struct ParseOptions {
  /// Short headers carry no DCID length on the wire; the parser needs
  /// the connection's DCID length learned from the long-header phase.
  std::size_t short_dcid_len = 8;
};

/// Parses one QUIC packet header at the start of `data`. Honors
/// coalesced long-header packets (the Length field bounds them); a
/// short-header packet always extends to the end of the datagram.
[[nodiscard]] std::optional<Header> parse(rtcc::util::BytesView data,
                                          const ParseOptions& opts = {});

/// Variable-length integer (RFC 9000 §16). Returns value + width.
struct Varint {
  std::uint64_t value = 0;
  std::size_t width = 0;
};
[[nodiscard]] std::optional<Varint> read_varint(rtcc::util::BytesView data);
void write_varint(rtcc::util::ByteWriter& w, std::uint64_t value);

/// Encodes a long-header packet with the given encrypted-payload bytes
/// (the Length field covers packet number + payload; we model a 2-byte
/// packet number).
[[nodiscard]] rtcc::util::Bytes encode_long(LongType type,
                                            std::uint32_t version,
                                            const ConnectionId& dcid,
                                            const ConnectionId& scid,
                                            rtcc::util::BytesView payload);

/// Encodes a short-header (1-RTT) packet.
[[nodiscard]] rtcc::util::Bytes encode_short(const ConnectionId& dcid,
                                             rtcc::util::BytesView payload,
                                             bool spin = false);

}  // namespace rtcc::proto::quic
