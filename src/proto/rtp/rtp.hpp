// RTP wire codec — RFC 3550 §5.1 fixed header, CSRC list, padding, and
// RFC 8285 general-purpose header extensions (one-byte 0xBEDE and
// two-byte 0x100x forms).
//
// Like the STUN codec, parsing is permissive: undefined payload types,
// undefined extension profiles, and rule-violating extension elements
// are all *represented* faithfully so the compliance layer can judge
// them; only structurally impossible layouts fail to parse.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "proto/common.hpp"
#include "util/bytes.hpp"

namespace rtcc::proto::rtp {

constexpr std::uint16_t kOneByteProfile = 0xBEDE;
/// RFC 8285 §4.3: two-byte form uses 0x100 in the upper 12 bits; the
/// low 4 bits are "appbits".
constexpr std::uint16_t kTwoByteProfileBase = 0x1000;

[[nodiscard]] inline bool is_two_byte_profile(std::uint16_t profile) {
  return (profile & 0xFFF0) == kTwoByteProfileBase;
}

/// One RFC 8285 extension element as it appeared on the wire.
struct ExtensionElement {
  std::uint8_t id = 0;
  rtcc::util::Bytes data;
  /// True when the wire encoding violated RFC 8285 (e.g. the Discord
  /// pattern: one-byte form with ID=0 but a non-zero length). Such
  /// elements terminate normal parsing per the RFC, so we record the
  /// violation instead of discarding the message.
  bool malformed_padding = false;
};

struct HeaderExtension {
  std::uint16_t profile = 0;
  /// Declared length in 32-bit words (not counting the 4-byte preamble).
  std::uint16_t length_words = 0;
  rtcc::util::Bytes raw;  // the extension body exactly as on the wire
  std::vector<ExtensionElement> elements;  // parsed when profile is 8285
};

struct Packet {
  std::uint8_t version = 2;
  bool padding = false;
  bool has_extension = false;
  bool marker = false;
  std::uint8_t payload_type = 0;
  std::uint16_t sequence_number = 0;
  std::uint32_t timestamp = 0;
  std::uint32_t ssrc = 0;
  std::vector<std::uint32_t> csrc;
  std::optional<HeaderExtension> extension;
  rtcc::util::Bytes payload;
  /// Payload length on the wire (excluding padding). Always set by
  /// parse(), even when ParseOptions::copy_payload is off and `payload`
  /// stays empty; PacketBuilder keeps it in sync with `payload`.
  std::uint32_t payload_len = 0;
  /// Number of padding bytes consumed (last byte value when P=1).
  std::uint8_t padding_len = 0;

  [[nodiscard]] std::size_t wire_size() const;
};

struct ParseResult {
  Packet packet;
  std::size_t consumed = 0;
};

struct ParseOptions {
  /// When off, parse() validates the full layout and records
  /// Packet::payload_len but leaves `payload` empty — the DPI engines
  /// use this to skip copying media bytes they never look at. A packet
  /// parsed this way re-encodes without its payload.
  bool copy_payload = true;
};

/// Parses an RTP packet at the start of `data`.
/// `datagram_bounded` controls the packet's extent: RTP carries no
/// length field, so normally a packet spans the rest of the datagram.
/// The DPI also calls this mid-payload where the bound is the input end.
[[nodiscard]] std::optional<ParseResult> parse(rtcc::util::BytesView data);
[[nodiscard]] std::optional<ParseResult> parse(rtcc::util::BytesView data,
                                               const ParseOptions& opts);

/// Serialises; extension elements are re-encoded per the profile form
/// (one-byte vs two-byte); `raw` is used verbatim for non-8285 profiles.
[[nodiscard]] rtcc::util::Bytes encode(const Packet& p);

/// Builder used by the emulator/tests.
class PacketBuilder {
 public:
  PacketBuilder& payload_type(std::uint8_t pt);
  PacketBuilder& marker(bool m);
  PacketBuilder& seq(std::uint16_t s);
  PacketBuilder& timestamp(std::uint32_t ts);
  PacketBuilder& ssrc(std::uint32_t ssrc);
  PacketBuilder& csrc(std::uint32_t c);
  PacketBuilder& payload(rtcc::util::BytesView data);
  PacketBuilder& payload_fill(std::uint8_t value, std::size_t size);

  /// Starts a one-byte (0xBEDE) extension block.
  PacketBuilder& one_byte_extension();
  /// Starts a two-byte extension block with the given appbits.
  PacketBuilder& two_byte_extension(std::uint8_t appbits = 0);
  /// Starts an extension block with an arbitrary (possibly undefined)
  /// profile and raw body (used to emit FaceTime/Discord patterns).
  PacketBuilder& raw_extension(std::uint16_t profile,
                               rtcc::util::BytesView body);
  /// Appends an element to the pending 8285 block. In the two-byte
  /// form, ID 0 is wire-reserved as padding: an element built with it
  /// encodes but can never re-parse.
  PacketBuilder& element(std::uint8_t id, rtcc::util::BytesView data);
  /// Appends the Discord violation: one-byte element with ID=0 and a
  /// non-zero length field carrying payload.
  PacketBuilder& malformed_id0_element(rtcc::util::BytesView data);

  [[nodiscard]] rtcc::util::Bytes build();
  [[nodiscard]] Packet build_packet();

 private:
  Packet pkt_;
  bool pending_one_byte_ = false;
  std::uint8_t appbits_ = 0;
  struct PendingElement {
    std::uint8_t id;
    rtcc::util::Bytes data;
    bool malformed_id0;
  };
  std::vector<PendingElement> pending_elements_;
};

}  // namespace rtcc::proto::rtp
