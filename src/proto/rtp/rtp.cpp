#include "proto/rtp/rtp.hpp"

namespace rtcc::proto::rtp {

using rtcc::util::ByteReader;
using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

namespace {

/// Parses the body of an RFC 8285 extension block into elements.
/// Returns false only on structural impossibility (element overruns the
/// block); rule violations are recorded on the element.
bool parse_elements(BytesView body, bool one_byte,
                    std::vector<ExtensionElement>& out) {
  std::size_t i = 0;
  while (i < body.size()) {
    const std::uint8_t first = body[i];
    if (one_byte) {
      const std::uint8_t id = first >> 4;
      const std::uint8_t len_field = first & 0x0F;
      if (id == 0) {
        // RFC 8285 §4.2: ID 0 is padding, MUST have length field 0.
        if (len_field == 0 && first == 0) {
          ++i;  // legitimate padding byte
          continue;
        }
        // Discord's violation: ID=0 with a non-zero length and payload.
        ExtensionElement e;
        e.id = 0;
        e.malformed_padding = true;
        const std::size_t dlen = std::size_t{len_field} + 1;
        if (i + 1 + dlen > body.size()) return false;
        e.data.assign(body.begin() + static_cast<std::ptrdiff_t>(i + 1),
                      body.begin() + static_cast<std::ptrdiff_t>(i + 1 + dlen));
        out.push_back(std::move(e));
        i += 1 + dlen;
        continue;
      }
      if (id == 15) {
        // §4.2: ID 15 terminates processing of the block.
        break;
      }
      const std::size_t dlen = std::size_t{len_field} + 1;
      if (i + 1 + dlen > body.size()) return false;
      ExtensionElement e;
      e.id = id;
      e.data.assign(body.begin() + static_cast<std::ptrdiff_t>(i + 1),
                    body.begin() + static_cast<std::ptrdiff_t>(i + 1 + dlen));
      out.push_back(std::move(e));
      i += 1 + dlen;
    } else {
      if (first == 0) {
        ++i;  // two-byte form padding
        continue;
      }
      if (i + 2 > body.size()) return false;
      const std::uint8_t len = body[i + 1];
      if (i + 2 + len > body.size()) return false;
      ExtensionElement e;
      e.id = first;
      e.data.assign(body.begin() + static_cast<std::ptrdiff_t>(i + 2),
                    body.begin() + static_cast<std::ptrdiff_t>(i + 2 + len));
      out.push_back(std::move(e));
      i += 2 + std::size_t{len};
    }
  }
  return true;
}

void encode_elements(ByteWriter& w, const Packet& p) {
  const auto& ext = *p.extension;
  const bool one_byte = ext.profile == kOneByteProfile;
  for (const auto& e : ext.elements) {
    if (one_byte) {
      if (e.malformed_padding) {
        // Reproduce the Discord wire pattern exactly.
        w.u8(static_cast<std::uint8_t>(e.data.size() - 1) & 0x0F);
        w.raw(BytesView{e.data});
      } else {
        w.u8(static_cast<std::uint8_t>((e.id << 4) |
                                       ((e.data.size() - 1) & 0x0F)));
        w.raw(BytesView{e.data});
      }
    } else {
      w.u8(e.id);
      w.u8(static_cast<std::uint8_t>(e.data.size()));
      w.raw(BytesView{e.data});
    }
  }
}

}  // namespace

std::size_t Packet::wire_size() const {
  std::size_t n = 12 + csrc.size() * 4;
  if (extension) n += 4 + std::size_t{extension->length_words} * 4;
  n += payload.size() + padding_len;
  return n;
}

std::optional<ParseResult> parse(BytesView data) {
  return parse(data, ParseOptions{});
}

std::optional<ParseResult> parse(BytesView data, const ParseOptions& opts) {
  if (data.size() < 12) return std::nullopt;
  ByteReader r(data);

  Packet p;
  const std::uint8_t b0 = r.u8();
  p.version = b0 >> 6;
  if (p.version != 2) return std::nullopt;  // the only deployed version
  p.padding = (b0 & 0x20) != 0;
  p.has_extension = (b0 & 0x10) != 0;
  const std::uint8_t cc = b0 & 0x0F;

  const std::uint8_t b1 = r.u8();
  p.marker = (b1 & 0x80) != 0;
  p.payload_type = b1 & 0x7F;
  p.sequence_number = r.u16();
  p.timestamp = r.u32();
  p.ssrc = r.u32();

  for (std::uint8_t i = 0; i < cc; ++i) p.csrc.push_back(r.u32());
  if (!r.ok()) return std::nullopt;

  if (p.has_extension) {
    if (r.remaining() < 4) return std::nullopt;
    HeaderExtension ext;
    ext.profile = r.u16();
    ext.length_words = r.u16();
    const std::size_t body_len = std::size_t{ext.length_words} * 4;
    if (r.remaining() < body_len) return std::nullopt;
    auto body = r.bytes(body_len);
    ext.raw.assign(body.begin(), body.end());
    if (ext.profile == kOneByteProfile) {
      if (!parse_elements(body, /*one_byte=*/true, ext.elements))
        return std::nullopt;
    } else if (is_two_byte_profile(ext.profile)) {
      if (!parse_elements(body, /*one_byte=*/false, ext.elements))
        return std::nullopt;
    }
    p.extension = std::move(ext);
  }

  // The remainder of the bounded input is payload (+ optional padding).
  std::size_t rest = r.remaining();
  if (p.padding) {
    if (rest == 0) return std::nullopt;
    const std::uint8_t pad = data[data.size() - 1];
    // RFC 3550 §5.1: padding count includes itself and must fit.
    if (pad == 0 || pad > rest) return std::nullopt;
    p.padding_len = pad;
    rest -= pad;
  }
  auto payload = r.bytes(rest);
  p.payload_len = static_cast<std::uint32_t>(rest);
  if (opts.copy_payload) p.payload.assign(payload.begin(), payload.end());

  return ParseResult{std::move(p), data.size()};
}

Bytes encode(const Packet& p) {
  ByteWriter w(p.wire_size());
  std::uint8_t b0 = static_cast<std::uint8_t>(p.version << 6);
  if (p.padding) b0 |= 0x20;
  const bool has_ext = p.extension.has_value();
  if (has_ext) b0 |= 0x10;
  b0 |= static_cast<std::uint8_t>(p.csrc.size() & 0x0F);
  w.u8(b0);
  w.u8(static_cast<std::uint8_t>((p.marker ? 0x80 : 0x00) |
                                 (p.payload_type & 0x7F)));
  w.u16(p.sequence_number);
  w.u32(p.timestamp);
  w.u32(p.ssrc);
  for (std::uint32_t c : p.csrc) w.u32(c);

  if (has_ext) {
    const auto& ext = *p.extension;
    w.u16(ext.profile);
    if (!ext.elements.empty() && (ext.profile == kOneByteProfile ||
                                  is_two_byte_profile(ext.profile))) {
      ByteWriter body;
      Packet tmp = p;  // encode_elements reads via p.extension
      encode_elements(body, tmp);
      const std::size_t padded = (body.size() + 3) & ~std::size_t{3};
      w.u16(static_cast<std::uint16_t>(padded / 4));
      w.raw(body.view());
      w.fill(0, padded - body.size());
    } else {
      const std::size_t padded = (ext.raw.size() + 3) & ~std::size_t{3};
      w.u16(static_cast<std::uint16_t>(padded / 4));
      w.raw(BytesView{ext.raw});
      w.fill(0, padded - ext.raw.size());
    }
  }

  w.raw(BytesView{p.payload});
  if (p.padding && p.padding_len > 0) {
    w.fill(0, std::size_t{p.padding_len} - 1);
    w.u8(p.padding_len);
  }
  return std::move(w).take();
}

PacketBuilder& PacketBuilder::payload_type(std::uint8_t pt) {
  pkt_.payload_type = pt & 0x7F;
  return *this;
}

PacketBuilder& PacketBuilder::marker(bool m) {
  pkt_.marker = m;
  return *this;
}

PacketBuilder& PacketBuilder::seq(std::uint16_t s) {
  pkt_.sequence_number = s;
  return *this;
}

PacketBuilder& PacketBuilder::timestamp(std::uint32_t ts) {
  pkt_.timestamp = ts;
  return *this;
}

PacketBuilder& PacketBuilder::ssrc(std::uint32_t ssrc) {
  pkt_.ssrc = ssrc;
  return *this;
}

PacketBuilder& PacketBuilder::csrc(std::uint32_t c) {
  pkt_.csrc.push_back(c);
  return *this;
}

PacketBuilder& PacketBuilder::payload(BytesView data) {
  pkt_.payload.assign(data.begin(), data.end());
  pkt_.payload_len = static_cast<std::uint32_t>(data.size());
  return *this;
}

PacketBuilder& PacketBuilder::payload_fill(std::uint8_t value,
                                           std::size_t size) {
  pkt_.payload.assign(size, value);
  pkt_.payload_len = static_cast<std::uint32_t>(size);
  return *this;
}

PacketBuilder& PacketBuilder::one_byte_extension() {
  pkt_.extension = HeaderExtension{};
  pkt_.extension->profile = kOneByteProfile;
  pending_one_byte_ = true;
  return *this;
}

PacketBuilder& PacketBuilder::two_byte_extension(std::uint8_t appbits) {
  pkt_.extension = HeaderExtension{};
  pkt_.extension->profile =
      static_cast<std::uint16_t>(kTwoByteProfileBase | (appbits & 0x0F));
  pending_one_byte_ = false;
  appbits_ = appbits;
  return *this;
}

PacketBuilder& PacketBuilder::raw_extension(std::uint16_t profile,
                                            BytesView body) {
  pkt_.extension = HeaderExtension{};
  pkt_.extension->profile = profile;
  pkt_.extension->raw.assign(body.begin(), body.end());
  return *this;
}

PacketBuilder& PacketBuilder::element(std::uint8_t id, BytesView data) {
  pending_elements_.push_back(
      {id, Bytes(data.begin(), data.end()), /*malformed_id0=*/false});
  return *this;
}

PacketBuilder& PacketBuilder::malformed_id0_element(BytesView data) {
  pending_elements_.push_back(
      {0, Bytes(data.begin(), data.end()), /*malformed_id0=*/true});
  return *this;
}

Packet PacketBuilder::build_packet() {
  Packet out = pkt_;
  if (out.extension) {
    for (auto& pe : pending_elements_) {
      ExtensionElement e;
      e.id = pe.id;
      e.data = pe.data;
      e.malformed_padding = pe.malformed_id0;
      out.extension->elements.push_back(std::move(e));
    }
    // Compute length_words from an encode pass for consistency.
    Bytes wire = encode(out);
    auto parsed = parse(BytesView{wire});
    if (parsed) return std::move(parsed->packet);
  }
  return out;
}

Bytes PacketBuilder::build() {
  Packet out = pkt_;
  if (out.extension) {
    for (auto& pe : pending_elements_) {
      ExtensionElement e;
      e.id = pe.id;
      e.data = pe.data;
      e.malformed_padding = pe.malformed_id0;
      out.extension->elements.push_back(std::move(e));
    }
  }
  return encode(out);
}

}  // namespace rtcc::proto::rtp
