// Shared protocol taxonomy for the DPI and compliance layers.
#pragma once

#include <cstdint>
#include <string>

namespace rtcc::proto {

/// The RTC media-transmission protocols the paper analyses (§2.1).
/// STUN and TURN share one wire format and are analysed jointly (§2.1),
/// so they are a single enumerator, as in the paper's tables.
enum class Protocol : std::uint8_t {
  kStunTurn,
  kRtp,
  kRtcp,
  kQuic,
};

[[nodiscard]] std::string to_string(Protocol p);

/// Where a message/attribute type is defined. `kExtension` covers types
/// the paper counts as defined but which appear only in vendor
/// extensions (e.g. Google Meet's 0x0200/0x0300) — see DESIGN.md §1.
enum class SpecSource : std::uint8_t {
  kRfc3489,   // classic STUN
  kRfc5389,   // STUN revision (magic cookie)
  kRfc8489,   // current STUN
  kRfc8656,   // TURN
  kRfc8445,   // ICE attributes
  kRfc5780,   // NAT behaviour discovery attributes
  kRfc3550,   // RTP/RTCP
  kRfc8285,   // RTP header extensions
  kRfc4585,   // RTCP feedback (RTPFB/PSFB)
  kRfc3611,   // RTCP XR
  kRfc9000,   // QUIC v1
  kExtension, // published vendor extension (counted compliant by paper)
  kUndefined, // no known specification
};

[[nodiscard]] std::string to_string(SpecSource s);
[[nodiscard]] inline bool is_defined(SpecSource s) {
  return s != SpecSource::kUndefined;
}

}  // namespace rtcc::proto
