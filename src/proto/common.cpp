#include "proto/common.hpp"

namespace rtcc::proto {

std::string to_string(Protocol p) {
  switch (p) {
    case Protocol::kStunTurn:
      return "STUN/TURN";
    case Protocol::kRtp:
      return "RTP";
    case Protocol::kRtcp:
      return "RTCP";
    case Protocol::kQuic:
      return "QUIC";
  }
  return "?";
}

std::string to_string(SpecSource s) {
  switch (s) {
    case SpecSource::kRfc3489:
      return "RFC 3489";
    case SpecSource::kRfc5389:
      return "RFC 5389";
    case SpecSource::kRfc8489:
      return "RFC 8489";
    case SpecSource::kRfc8656:
      return "RFC 8656";
    case SpecSource::kRfc8445:
      return "RFC 8445";
    case SpecSource::kRfc5780:
      return "RFC 5780";
    case SpecSource::kRfc3550:
      return "RFC 3550";
    case SpecSource::kRfc8285:
      return "RFC 8285";
    case SpecSource::kRfc4585:
      return "RFC 4585";
    case SpecSource::kRfc3611:
      return "RFC 3611";
    case SpecSource::kRfc9000:
      return "RFC 9000";
    case SpecSource::kExtension:
      return "extension";
    case SpecSource::kUndefined:
      return "undefined";
  }
  return "?";
}

}  // namespace rtcc::proto
