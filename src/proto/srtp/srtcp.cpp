#include "proto/srtp/srtcp.hpp"

namespace rtcc::proto::srtp {

using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

Bytes append_trailer(BytesView rtcp, const SrtcpTrailer& trailer) {
  ByteWriter w(rtcp.size() + trailer.wire_size());
  w.raw(rtcp);
  const std::uint32_t word = (trailer.encrypted_flag ? 0x80000000u : 0u) |
                             (trailer.index & 0x7FFFFFFFu);
  w.u32(word);
  w.raw(BytesView{trailer.auth_tag});
  return std::move(w).take();
}

std::optional<SrtcpTrailer> parse_trailer(BytesView trailer_bytes) {
  if (trailer_bytes.size() < 4) return std::nullopt;
  SrtcpTrailer t;
  const std::uint32_t word = rtcc::util::load_be32(trailer_bytes.data());
  t.encrypted_flag = (word & 0x80000000u) != 0;
  t.index = word & 0x7FFFFFFFu;
  t.auth_tag.assign(trailer_bytes.begin() + 4, trailer_bytes.end());
  return t;
}

}  // namespace rtcc::proto::srtp
