// SRTCP framing per RFC 3711 §3.4: an SRTCP message is the (first,
// cleartext) RTCP header + encrypted body, followed by a mandatory
// trailer: 1-bit E flag + 31-bit SRTCP index, an optional MKI, and a
// REQUIRED authentication tag (10 bytes for the default transforms).
//
// Google Meet's non-compliance (§5.2.3) is precisely a missing auth
// tag: a 4-byte trailer with only E+index. This codec frames/deframes
// both shapes so the compliance rule can detect the violation.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace rtcc::proto::srtp {

constexpr std::size_t kDefaultAuthTagSize = 10;

struct SrtcpTrailer {
  bool encrypted_flag = false;  // E bit
  std::uint32_t index = 0;      // 31-bit SRTCP index
  rtcc::util::Bytes auth_tag;   // empty == the Meet violation

  [[nodiscard]] std::size_t wire_size() const { return 4 + auth_tag.size(); }
};

/// Appends an SRTCP trailer to an encoded RTCP compound.
[[nodiscard]] rtcc::util::Bytes append_trailer(rtcc::util::BytesView rtcp,
                                               const SrtcpTrailer& trailer);

/// Interprets the last `trailer_size` bytes of an SRTCP message as the
/// trailer. The analyzer infers trailer_size per stream (14 vs 4) from
/// observed message deltas, mirroring the paper's methodology.
[[nodiscard]] std::optional<SrtcpTrailer> parse_trailer(
    rtcc::util::BytesView trailer_bytes);

}  // namespace rtcc::proto::srtp
