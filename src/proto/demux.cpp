#include "proto/demux.hpp"

namespace rtcc::proto {

std::string to_string(DemuxClass c) {
  switch (c) {
    case DemuxClass::kStun:
      return "STUN";
    case DemuxClass::kZrtp:
      return "ZRTP";
    case DemuxClass::kDtls:
      return "DTLS";
    case DemuxClass::kTurnChannel:
      return "TURN-ChannelData";
    case DemuxClass::kQuic:
      return "QUIC";
    case DemuxClass::kRtpRtcp:
      return "RTP/RTCP";
    case DemuxClass::kUnknown:
      return "unknown";
  }
  return "?";
}

DemuxClass classify_first_byte(std::uint8_t b) {
  if (b <= 3) return DemuxClass::kStun;
  if (b >= 16 && b <= 19) return DemuxClass::kZrtp;
  if (b >= 20 && b <= 63) return DemuxClass::kDtls;
  if (b >= 64 && b <= 79) return DemuxClass::kTurnChannel;
  if (b >= 128 && b <= 191) return DemuxClass::kRtpRtcp;
  if (b >= 192) return DemuxClass::kQuic;  // long header: 0b11......
  return DemuxClass::kUnknown;
}

}  // namespace rtcc::proto
