// Decoders for the two reverse-engineered proprietary headers the paper
// documents (§5.3): Zoom's SFU+media framing (after Michel et al.,
// IMC'22) and FaceTime's 0x6000 relay envelope. These are *not* RFC
// protocols — they are the vendor formats the compliance study exposed,
// decoded here so tooling can look inside the envelopes the scanning
// DPI reports as "proprietary header" bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace rtcc::proto::vendor {

/// Zoom media-section types (§5.3): 15 = audio RTP, 16 = video RTP,
/// 33-35 = RTCP, 7 = wrapper around one of the former.
enum class ZoomMediaType : std::uint8_t {
  kAudio = 15,
  kVideo = 16,
  kRtcp33 = 33,
  kRtcp34 = 34,
  kRtcp35 = 35,
  kWrapped = 7,
};

[[nodiscard]] bool zoom_media_type_known(std::uint8_t value);

struct ZoomHeader {
  /// 0x00 client→server / 0x04 server→client; 0x01/0x05 under type 7.
  std::uint8_t direction = 0;
  /// Constant per transport stream within a call (the "media ID").
  std::uint32_t media_id = 0;
  std::uint32_t counter = 0;
  std::uint8_t media_type = 0;  // outer type (7 when wrapped)
  std::uint8_t inner_type = 0;  // meaningful when media_type == 7
  std::uint16_t embedded_length = 0;
  std::size_t header_size = 0;  // 24, or 28 with the type-7 wrapper

  [[nodiscard]] bool to_server() const {
    return direction == 0x00 || direction == 0x01;
  }
  [[nodiscard]] bool wrapped() const { return media_type == 7; }
  /// The media type that describes the embedded payload (inner type
  /// for wrapped headers, outer otherwise).
  [[nodiscard]] std::uint8_t effective_type() const {
    return wrapped() ? inner_type : media_type;
  }
};

/// Parses a Zoom proprietary header at the start of a UDP payload.
/// Rejects payloads whose direction byte, media type, or embedded
/// length are inconsistent with the documented format.
[[nodiscard]] std::optional<ZoomHeader> parse_zoom_header(
    rtcc::util::BytesView payload);

struct FaceTimeHeader {
  /// Declared length: opaque extra bytes + the embedded message.
  std::uint16_t declared_length = 0;
  std::size_t header_size = 0;  // 8..19 bytes in observed traffic
  std::size_t message_size = 0;  // bytes of embedded standard message
};

/// Parses a FaceTime 0x6000 relay envelope: fixed 2-byte magic, 2-byte
/// length, then opaque bytes; the embedded message fills the remainder.
/// `message_offset_hint` is where a DPI found the embedded message
/// (header_size is derived from it; pass 0 to require the declared
/// length to exactly cover the rest of the payload).
[[nodiscard]] std::optional<FaceTimeHeader> parse_facetime_header(
    rtcc::util::BytesView payload, std::size_t message_offset_hint = 0);

[[nodiscard]] std::string describe(const ZoomHeader& h);

}  // namespace rtcc::proto::vendor
