#include "proto/vendor/vendor_headers.hpp"

#include "util/hex.hpp"

namespace rtcc::proto::vendor {

using rtcc::util::ByteReader;
using rtcc::util::BytesView;

bool zoom_media_type_known(std::uint8_t value) {
  switch (static_cast<ZoomMediaType>(value)) {
    case ZoomMediaType::kAudio:
    case ZoomMediaType::kVideo:
    case ZoomMediaType::kRtcp33:
    case ZoomMediaType::kRtcp34:
    case ZoomMediaType::kRtcp35:
    case ZoomMediaType::kWrapped:
      return true;
  }
  return false;
}

std::optional<ZoomHeader> parse_zoom_header(BytesView payload) {
  // SFU section: direction(1) media_id(4) reserved(7) counter(4);
  // media section: type(1) subtype(1) embedded_len(2) timestamp(4)
  // [+ 4-byte inner wrapper under type 7].
  if (payload.size() < 24) return std::nullopt;
  ByteReader r(payload);
  ZoomHeader h;
  h.direction = r.u8();
  if (h.direction != 0x00 && h.direction != 0x04 && h.direction != 0x01 &&
      h.direction != 0x05)
    return std::nullopt;
  h.media_id = r.u32();
  r.skip(7);  // reserved
  h.counter = r.u32();
  h.media_type = r.u8();
  if (!zoom_media_type_known(h.media_type)) return std::nullopt;
  const std::uint8_t subtype = r.u8();
  h.embedded_length = r.u16();
  r.skip(4);  // timestamp
  if (h.media_type == 7) {
    if (payload.size() < 28) return std::nullopt;
    h.inner_type = subtype;
    r.skip(4);  // inner wrapper
    if (!zoom_media_type_known(h.inner_type) || h.inner_type == 7)
      return std::nullopt;
    // §5.3: under the type-7 wrapper the direction byte moves to
    // 0x01/0x05.
    if (h.direction != 0x01 && h.direction != 0x05) return std::nullopt;
    h.header_size = 28;
  } else {
    if (h.direction != 0x00 && h.direction != 0x04) return std::nullopt;
    h.inner_type = h.media_type;
    h.header_size = 24;
  }
  if (!r.ok()) return std::nullopt;
  // The embedded length must exactly cover the remaining payload.
  if (h.header_size + std::size_t{h.embedded_length} != payload.size())
    return std::nullopt;
  return h;
}

std::optional<FaceTimeHeader> parse_facetime_header(
    BytesView payload, std::size_t message_offset_hint) {
  if (payload.size() < 8) return std::nullopt;
  if (rtcc::util::load_be16(payload.data()) != 0x6000) return std::nullopt;
  FaceTimeHeader h;
  h.declared_length = rtcc::util::load_be16(payload.data() + 2);
  // Declared length covers the opaque extra bytes plus the embedded
  // message, i.e. everything after the 4 fixed bytes.
  if (4 + std::size_t{h.declared_length} != payload.size())
    return std::nullopt;
  if (message_offset_hint > 0) {
    if (message_offset_hint < 8 || message_offset_hint > payload.size())
      return std::nullopt;
    h.header_size = message_offset_hint;
  } else {
    h.header_size = 8;  // minimum envelope; extras unknown without DPI
  }
  h.message_size = payload.size() - h.header_size;
  return h;
}

std::string describe(const ZoomHeader& h) {
  std::string out = h.to_server() ? "client->server " : "server->client ";
  out += "media-id " + rtcc::util::hex_u32(h.media_id);
  out += " type " + std::to_string(h.effective_type());
  if (h.wrapped()) out += " (type-7 wrapped)";
  out += " embedded " + std::to_string(h.embedded_length) + "B";
  return out;
}

}  // namespace rtcc::proto::vendor
