#include "proto/rtcp/rtcp.hpp"

namespace rtcc::proto::rtcp {

using rtcc::util::ByteReader;
using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

bool is_rtcp_packet_type(std::uint8_t pt) {
  // RFC 5761 §4: RTCP packet types occupy 192..223 (64 values around
  // the 200-207 block are reserved for RTCP to keep RTP/RTCP
  // demultiplexing unambiguous).
  return pt >= 192 && pt <= 223;
}

std::optional<std::uint32_t> Packet::ssrc() const {
  if (body.size() < 4) return std::nullopt;
  return rtcc::util::load_be32(body.data());
}

std::size_t Compound::parsed_size() const {
  std::size_t n = 0;
  for (const auto& p : packets) n += p.wire_size();
  return n;
}

std::optional<Packet> parse_packet(BytesView data) {
  if (data.size() < 4) return std::nullopt;
  ByteReader r(data);
  const std::uint8_t b0 = r.u8();
  Packet p;
  p.version = b0 >> 6;
  if (p.version != 2) return std::nullopt;
  p.padding = (b0 & 0x20) != 0;
  p.count = b0 & 0x1F;
  p.packet_type = r.u8();
  if (!is_rtcp_packet_type(p.packet_type)) return std::nullopt;
  p.length_words = r.u16();
  const std::size_t body_len = std::size_t{p.length_words} * 4;
  if (data.size() < 4 + body_len) return std::nullopt;
  p.body = r.copy(body_len);
  return p;
}

std::optional<Compound> parse_compound(BytesView data,
                                       const ParseOptions& opts) {
  Compound out;
  std::size_t pos = 0;
  while (pos + 4 <= data.size()) {
    auto pkt = parse_packet(data.subspan(pos));
    if (!pkt) break;
    pos += pkt->wire_size();
    out.packets.push_back(std::move(*pkt));
  }
  if (out.packets.empty()) return std::nullopt;
  const std::size_t rest = data.size() - pos;
  if (rest > 0) {
    if (!opts.allow_trailing || rest > opts.max_trailing)
      return std::nullopt;
    out.trailing.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                        data.end());
  }
  return out;
}

Bytes encode_packet(const Packet& p) {
  ByteWriter w(p.wire_size());
  std::uint8_t b0 = static_cast<std::uint8_t>(p.version << 6);
  if (p.padding) b0 |= 0x20;
  b0 |= p.count & 0x1F;
  w.u8(b0);
  w.u8(p.packet_type);
  w.u16(static_cast<std::uint16_t>(p.body.size() / 4));
  w.raw(BytesView{p.body});
  return std::move(w).take();
}

Bytes encode_compound(const Compound& c) {
  ByteWriter w;
  for (const auto& p : c.packets) w.raw(BytesView{encode_packet(p)});
  w.raw(BytesView{c.trailing});
  return std::move(w).take();
}

namespace {

ReportBlock read_report_block(ByteReader& r) {
  ReportBlock b;
  b.ssrc = r.u32();
  b.fraction_lost = r.u8();
  b.cumulative_lost = r.u24();
  b.highest_seq = r.u32();
  b.jitter = r.u32();
  b.lsr = r.u32();
  b.dlsr = r.u32();
  return b;
}

void write_report_block(ByteWriter& w, const ReportBlock& b) {
  w.u32(b.ssrc);
  w.u8(b.fraction_lost);
  w.u24(b.cumulative_lost);
  w.u32(b.highest_seq);
  w.u32(b.jitter);
  w.u32(b.lsr);
  w.u32(b.dlsr);
}

}  // namespace

bool xr_block_type_defined(std::uint8_t block_type) {
  return block_type >= 1 && block_type <= 7;  // RFC 3611 §4
}

std::optional<Xr> decode_xr(const Packet& p) {
  if (p.packet_type != kExtendedReport || p.body.size() < 4)
    return std::nullopt;
  ByteReader r(BytesView{p.body});
  Xr out;
  out.ssrc = r.u32();
  while (r.remaining() >= 4) {
    XrBlock b;
    b.block_type = r.u8();
    b.type_specific = r.u8();
    const std::uint16_t words = r.u16();
    b.body = r.copy(std::size_t{words} * 4);
    if (!r.ok()) return std::nullopt;  // block overruns the packet
    out.blocks.push_back(std::move(b));
  }
  if (r.remaining() != 0) return std::nullopt;  // dangling bytes
  return out;
}

Packet make_xr(const Xr& xr) {
  ByteWriter w;
  w.u32(xr.ssrc);
  for (const auto& b : xr.blocks) {
    w.u8(b.block_type);
    w.u8(b.type_specific);
    const std::size_t padded = (b.body.size() + 3) & ~std::size_t{3};
    w.u16(static_cast<std::uint16_t>(padded / 4));
    w.raw(BytesView{b.body});
    w.fill(0, padded - b.body.size());
  }
  Packet p;
  p.packet_type = kExtendedReport;
  p.count = 0;
  p.body = std::move(w).take();
  p.length_words = static_cast<std::uint16_t>(p.body.size() / 4);
  return p;
}

std::optional<SenderReport> decode_sender_report(const Packet& p) {
  if (p.packet_type != kSenderReport) return std::nullopt;
  if (p.body.size() < 24 + std::size_t{p.count} * 24) return std::nullopt;
  ByteReader r(BytesView{p.body});
  SenderReport sr;
  sr.sender_ssrc = r.u32();
  sr.ntp_timestamp = r.u64();
  sr.rtp_timestamp = r.u32();
  sr.packet_count = r.u32();
  sr.octet_count = r.u32();
  for (std::uint8_t i = 0; i < p.count; ++i)
    sr.reports.push_back(read_report_block(r));
  if (!r.ok()) return std::nullopt;
  return sr;
}

std::optional<ReceiverReport> decode_receiver_report(const Packet& p) {
  if (p.packet_type != kReceiverReport) return std::nullopt;
  if (p.body.size() < 4 + std::size_t{p.count} * 24) return std::nullopt;
  ByteReader r(BytesView{p.body});
  ReceiverReport rr;
  rr.sender_ssrc = r.u32();
  for (std::uint8_t i = 0; i < p.count; ++i)
    rr.reports.push_back(read_report_block(r));
  if (!r.ok()) return std::nullopt;
  return rr;
}

std::optional<Sdes> decode_sdes(const Packet& p) {
  if (p.packet_type != kSdes) return std::nullopt;
  ByteReader r(BytesView{p.body});
  Sdes out;
  for (std::uint8_t c = 0; c < p.count; ++c) {
    SdesChunk chunk;
    chunk.ssrc = r.u32();
    // Items until a zero terminator, then pad to 32-bit boundary.
    while (r.ok()) {
      const std::uint8_t type = r.u8();
      if (type == 0) break;
      const std::uint8_t len = r.u8();
      SdesItem item;
      item.type = type;
      item.value = r.copy(len);
      chunk.items.push_back(std::move(item));
    }
    while (r.ok() && (r.offset() % 4) != 0) r.skip(1);
    if (!r.ok()) return std::nullopt;
    out.chunks.push_back(std::move(chunk));
  }
  return out;
}

std::optional<Bye> decode_bye(const Packet& p) {
  if (p.packet_type != kBye) return std::nullopt;
  if (p.body.size() < std::size_t{p.count} * 4) return std::nullopt;
  ByteReader r(BytesView{p.body});
  Bye out;
  for (std::uint8_t i = 0; i < p.count; ++i) out.ssrcs.push_back(r.u32());
  if (r.remaining() > 0) {
    const std::uint8_t len = r.u8();
    out.reason = r.copy(len);
  }
  if (!r.ok()) return std::nullopt;
  return out;
}

std::optional<App> decode_app(const Packet& p) {
  if (p.packet_type != kApp || p.body.size() < 8) return std::nullopt;
  ByteReader r(BytesView{p.body});
  App out;
  out.ssrc = r.u32();
  auto name = r.bytes(4);
  for (std::size_t i = 0; i < 4; ++i)
    out.name[i] = static_cast<char>(name[i]);
  out.data = r.copy(r.remaining());
  return out;
}

std::optional<Feedback> decode_feedback(const Packet& p) {
  if ((p.packet_type != kRtpFeedback && p.packet_type != kPayloadFeedback) ||
      p.body.size() < 8)
    return std::nullopt;
  ByteReader r(BytesView{p.body});
  Feedback out;
  out.sender_ssrc = r.u32();
  out.media_ssrc = r.u32();
  out.fci = r.copy(r.remaining());
  return out;
}

Packet make_sender_report(const SenderReport& sr) {
  ByteWriter w;
  w.u32(sr.sender_ssrc);
  w.u64(sr.ntp_timestamp);
  w.u32(sr.rtp_timestamp);
  w.u32(sr.packet_count);
  w.u32(sr.octet_count);
  for (const auto& b : sr.reports) write_report_block(w, b);
  Packet p;
  p.packet_type = kSenderReport;
  p.count = static_cast<std::uint8_t>(sr.reports.size());
  p.body = std::move(w).take();
  p.length_words = static_cast<std::uint16_t>(p.body.size() / 4);
  return p;
}

Packet make_receiver_report(const ReceiverReport& rr) {
  ByteWriter w;
  w.u32(rr.sender_ssrc);
  for (const auto& b : rr.reports) write_report_block(w, b);
  Packet p;
  p.packet_type = kReceiverReport;
  p.count = static_cast<std::uint8_t>(rr.reports.size());
  p.body = std::move(w).take();
  p.length_words = static_cast<std::uint16_t>(p.body.size() / 4);
  return p;
}

Packet make_sdes(const Sdes& sdes) {
  ByteWriter w;
  for (const auto& chunk : sdes.chunks) {
    w.u32(chunk.ssrc);
    for (const auto& item : chunk.items) {
      w.u8(item.type);
      w.u8(static_cast<std::uint8_t>(item.value.size()));
      w.raw(BytesView{item.value});
    }
    w.u8(0);  // terminator
    while (w.size() % 4 != 0) w.u8(0);
  }
  Packet p;
  p.packet_type = kSdes;
  p.count = static_cast<std::uint8_t>(sdes.chunks.size());
  p.body = std::move(w).take();
  p.length_words = static_cast<std::uint16_t>(p.body.size() / 4);
  return p;
}

Packet make_bye(const Bye& bye) {
  ByteWriter w;
  for (std::uint32_t s : bye.ssrcs) w.u32(s);
  if (!bye.reason.empty()) {
    w.u8(static_cast<std::uint8_t>(bye.reason.size()));
    w.raw(BytesView{bye.reason});
    while (w.size() % 4 != 0) w.u8(0);
  }
  Packet p;
  p.packet_type = kBye;
  p.count = static_cast<std::uint8_t>(bye.ssrcs.size());
  p.body = std::move(w).take();
  p.length_words = static_cast<std::uint16_t>(p.body.size() / 4);
  return p;
}

Packet make_app(const App& app, std::uint8_t subtype) {
  ByteWriter w;
  w.u32(app.ssrc);
  for (char c : app.name) w.u8(static_cast<std::uint8_t>(c));
  w.raw(BytesView{app.data});
  while (w.size() % 4 != 0) w.u8(0);
  Packet p;
  p.packet_type = kApp;
  p.count = subtype & 0x1F;
  p.body = std::move(w).take();
  p.length_words = static_cast<std::uint16_t>(p.body.size() / 4);
  return p;
}

Packet make_feedback(std::uint8_t packet_type, std::uint8_t fmt,
                     const Feedback& fb) {
  ByteWriter w;
  w.u32(fb.sender_ssrc);
  w.u32(fb.media_ssrc);
  w.raw(BytesView{fb.fci});
  while (w.size() % 4 != 0) w.u8(0);
  Packet p;
  p.packet_type = packet_type;
  p.count = fmt & 0x1F;
  p.body = std::move(w).take();
  p.length_words = static_cast<std::uint16_t>(p.body.size() / 4);
  return p;
}

std::string packet_type_name(std::uint8_t pt) {
  switch (pt) {
    case kSenderReport:
      return "SR";
    case kReceiverReport:
      return "RR";
    case kSdes:
      return "SDES";
    case kBye:
      return "BYE";
    case kApp:
      return "APP";
    case kRtpFeedback:
      return "RTPFB";
    case kPayloadFeedback:
      return "PSFB";
    case kExtendedReport:
      return "XR";
    default:
      return is_rtcp_packet_type(pt) ? "RTCP-" + std::to_string(pt)
                                     : "(not RTCP)";
  }
}

}  // namespace rtcc::proto::rtcp
