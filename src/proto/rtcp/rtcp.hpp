// RTCP wire codec — RFC 3550 §6 packet formats (SR/RR/SDES/BYE/APP),
// RFC 4585 feedback (RTPFB/PSFB) and RFC 3611 XR, plus compound-packet
// parsing. Trailing bytes after the last well-formed packet (SRTCP
// trailers, Discord's proprietary 3-byte trailer) are surfaced to the
// caller rather than rejected — the compliance layer decides what they
// mean.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proto/common.hpp"
#include "util/bytes.hpp"

namespace rtcc::proto::rtcp {

// Packet types (RFC 3550 §12.1, RFC 4585, RFC 3611).
constexpr std::uint8_t kSenderReport = 200;
constexpr std::uint8_t kReceiverReport = 201;
constexpr std::uint8_t kSdes = 202;
constexpr std::uint8_t kBye = 203;
constexpr std::uint8_t kApp = 204;
constexpr std::uint8_t kRtpFeedback = 205;    // RTPFB (NACK, TWCC, ...)
constexpr std::uint8_t kPayloadFeedback = 206;  // PSFB (PLI, FIR, REMB, ...)
constexpr std::uint8_t kExtendedReport = 207;   // XR

/// True for the RTCP packet-type range per RFC 5761 §4 demultiplexing.
[[nodiscard]] bool is_rtcp_packet_type(std::uint8_t pt);

/// One RTCP packet: common header + raw body. `count` is the 5-bit
/// RC/SC/FMT field whose meaning depends on the packet type.
struct Packet {
  std::uint8_t version = 2;
  bool padding = false;
  std::uint8_t count = 0;
  std::uint8_t packet_type = 0;
  std::uint16_t length_words = 0;  // as declared (size/4 - 1)
  rtcc::util::Bytes body;          // everything after the 4-byte header

  [[nodiscard]] std::size_t wire_size() const {
    return 4 + std::size_t{length_words} * 4;
  }
  /// Sender/packet SSRC (first body word); nullopt for bodies < 4 bytes.
  [[nodiscard]] std::optional<std::uint32_t> ssrc() const;
};

/// A compound datagram: one or more packets plus unattributed trailing
/// bytes (SRTCP auth portions, proprietary trailers, ...).
struct Compound {
  std::vector<Packet> packets;
  rtcc::util::Bytes trailing;

  [[nodiscard]] std::size_t parsed_size() const;
};

struct ParseOptions {
  /// Stop at the first non-RTCP-looking byte run and report it as
  /// trailing (default). When false, any leftover fails the parse.
  bool allow_trailing = true;
  /// Maximum trailing length tolerated before the candidate is
  /// considered a false positive (SRTCP trailer is <= 14 bytes; the
  /// validators tighten this based on stream context).
  std::size_t max_trailing = SIZE_MAX;
};

[[nodiscard]] std::optional<Compound> parse_compound(
    rtcc::util::BytesView data, const ParseOptions& opts = {});

/// Parses exactly one packet at the start of `data` (bytes beyond the
/// declared length are ignored). Fails on version != 2, non-RTCP packet
/// type, or a declared length overrunning the input.
[[nodiscard]] std::optional<Packet> parse_packet(rtcc::util::BytesView data);

[[nodiscard]] rtcc::util::Bytes encode_packet(const Packet& p);
[[nodiscard]] rtcc::util::Bytes encode_compound(const Compound& c);

// ---- Typed views over Packet bodies -------------------------------------

struct ReportBlock {
  std::uint32_t ssrc = 0;
  std::uint8_t fraction_lost = 0;
  std::uint32_t cumulative_lost = 0;  // 24-bit signed on the wire
  std::uint32_t highest_seq = 0;
  std::uint32_t jitter = 0;
  std::uint32_t lsr = 0;
  std::uint32_t dlsr = 0;
};

struct SenderReport {
  std::uint32_t sender_ssrc = 0;
  std::uint64_t ntp_timestamp = 0;
  std::uint32_t rtp_timestamp = 0;
  std::uint32_t packet_count = 0;
  std::uint32_t octet_count = 0;
  std::vector<ReportBlock> reports;
};

struct ReceiverReport {
  std::uint32_t sender_ssrc = 0;
  std::vector<ReportBlock> reports;
};

struct SdesItem {
  std::uint8_t type = 0;  // 1=CNAME ... 8=PRIV
  rtcc::util::Bytes value;
};

struct SdesChunk {
  std::uint32_t ssrc = 0;
  std::vector<SdesItem> items;
};

struct Sdes {
  std::vector<SdesChunk> chunks;
};

struct Bye {
  std::vector<std::uint32_t> ssrcs;
  rtcc::util::Bytes reason;
};

struct App {
  std::uint32_t ssrc = 0;
  std::array<char, 4> name{};
  rtcc::util::Bytes data;
};

struct Feedback {  // RTPFB / PSFB common layout (RFC 4585 §6.1)
  std::uint32_t sender_ssrc = 0;
  std::uint32_t media_ssrc = 0;
  rtcc::util::Bytes fci;
};

/// RTCP XR (RFC 3611): extended report blocks. Block types 1-7 are the
/// RFC-defined set (loss RLE, duplicate RLE, timestamps, receiver
/// reference time, DLRR, statistics summary, VoIP metrics).
struct XrBlock {
  std::uint8_t block_type = 0;
  std::uint8_t type_specific = 0;
  rtcc::util::Bytes body;
};

struct Xr {
  std::uint32_t ssrc = 0;
  std::vector<XrBlock> blocks;
};

[[nodiscard]] bool xr_block_type_defined(std::uint8_t block_type);
[[nodiscard]] std::optional<Xr> decode_xr(const Packet& p);
[[nodiscard]] Packet make_xr(const Xr& xr);

[[nodiscard]] std::optional<SenderReport> decode_sender_report(
    const Packet& p);
[[nodiscard]] std::optional<ReceiverReport> decode_receiver_report(
    const Packet& p);
[[nodiscard]] std::optional<Sdes> decode_sdes(const Packet& p);
[[nodiscard]] std::optional<Bye> decode_bye(const Packet& p);
[[nodiscard]] std::optional<App> decode_app(const Packet& p);
[[nodiscard]] std::optional<Feedback> decode_feedback(const Packet& p);

// ---- Builders ------------------------------------------------------------

[[nodiscard]] Packet make_sender_report(const SenderReport& sr);
[[nodiscard]] Packet make_receiver_report(const ReceiverReport& rr);
[[nodiscard]] Packet make_sdes(const Sdes& sdes);
[[nodiscard]] Packet make_bye(const Bye& bye);
[[nodiscard]] Packet make_app(const App& app, std::uint8_t subtype);
/// fmt: e.g. 1=NACK / 15=TWCC for RTPFB; 1=PLI / 4=FIR / 15=REMB for PSFB.
[[nodiscard]] Packet make_feedback(std::uint8_t packet_type, std::uint8_t fmt,
                                   const Feedback& fb);

[[nodiscard]] std::string packet_type_name(std::uint8_t pt);

}  // namespace rtcc::proto::rtcp
