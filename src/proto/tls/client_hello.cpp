#include "proto/tls/client_hello.hpp"

namespace rtcc::proto::tls {

using rtcc::util::ByteReader;
using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

namespace {
constexpr std::uint8_t kRecordHandshake = 0x16;
constexpr std::uint8_t kHandshakeClientHello = 0x01;
constexpr std::uint16_t kExtServerName = 0x0000;
}  // namespace

bool looks_like_tls_handshake(BytesView data) {
  // record type 0x16, version major 3, minor 1..4 (TLS 1.0 - 1.3 compat).
  return data.size() >= 5 && data[0] == kRecordHandshake && data[1] == 3 &&
         data[2] >= 1 && data[2] <= 4;
}

std::optional<std::string> extract_sni(BytesView data) {
  if (!looks_like_tls_handshake(data)) return std::nullopt;
  ByteReader r(data);
  r.skip(1 + 2);  // record type + version
  const std::uint16_t record_len = r.u16();
  if (r.remaining() < record_len) return std::nullopt;

  if (r.peek_u8() != kHandshakeClientHello) return std::nullopt;
  r.skip(1);
  const std::uint32_t hs_len = r.u24();
  if (r.remaining() < hs_len) return std::nullopt;

  r.skip(2);   // client version
  r.skip(32);  // random
  const std::uint8_t session_id_len = r.u8();
  r.skip(session_id_len);
  const std::uint16_t cipher_len = r.u16();
  r.skip(cipher_len);
  const std::uint8_t compression_len = r.u8();
  r.skip(compression_len);
  if (!r.ok() || r.remaining() < 2) return std::nullopt;

  std::uint16_t ext_total = r.u16();
  while (r.ok() && ext_total >= 4) {
    const std::uint16_t ext_type = r.u16();
    const std::uint16_t ext_len = r.u16();
    ext_total = static_cast<std::uint16_t>(ext_total - 4);
    if (ext_len > ext_total || r.remaining() < ext_len) return std::nullopt;
    if (ext_type == kExtServerName) {
      ByteReader e(r.bytes(ext_len));
      const std::uint16_t list_len = e.u16();
      (void)list_len;
      const std::uint8_t name_type = e.u8();
      const std::uint16_t name_len = e.u16();
      if (!e.ok() || name_type != 0) return std::nullopt;
      auto name = e.bytes(name_len);
      if (!e.ok()) return std::nullopt;
      return std::string(name.begin(), name.end());
    }
    r.skip(ext_len);
    ext_total = static_cast<std::uint16_t>(ext_total - ext_len);
  }
  return std::nullopt;
}

Bytes build_client_hello(std::string_view sni) {
  // Extension block: server_name only.
  ByteWriter sni_ext;
  sni_ext.u16(static_cast<std::uint16_t>(sni.size() + 3));  // list length
  sni_ext.u8(0);                                            // host_name
  sni_ext.u16(static_cast<std::uint16_t>(sni.size()));
  sni_ext.str(sni);

  ByteWriter exts;
  exts.u16(kExtServerName);
  exts.u16(static_cast<std::uint16_t>(sni_ext.size()));
  exts.raw(sni_ext.view());

  ByteWriter body;
  body.u16(0x0303);  // TLS 1.2 legacy version
  body.fill(0xAB, 32);  // "random" (deterministic for reproducibility)
  body.u8(0);           // empty session id
  body.u16(2);          // one cipher suite
  body.u16(0x1301);     // TLS_AES_128_GCM_SHA256
  body.u8(1);           // one compression method
  body.u8(0);           // null compression
  body.u16(static_cast<std::uint16_t>(exts.size()));
  body.raw(exts.view());

  ByteWriter hs;
  hs.u8(kHandshakeClientHello);
  hs.u24(static_cast<std::uint32_t>(body.size()));
  hs.raw(body.view());

  ByteWriter record;
  record.u8(kRecordHandshake);
  record.u16(0x0301);
  record.u16(static_cast<std::uint16_t>(hs.size()));
  record.raw(hs.view());
  return std::move(record).take();
}

}  // namespace rtcc::proto::tls
