// Minimal TLS parser: just enough to pull the SNI host name out of a
// ClientHello, which is all the stage-2 "TLS SNI-based filtering"
// (§3.2.2) needs. Handles the TLS record layer, handshake framing, and
// the server_name (0) extension.
#pragma once

#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace rtcc::proto::tls {

/// Returns the (first) host_name entry of the server_name extension, or
/// nullopt when `data` is not a ClientHello or carries no SNI.
[[nodiscard]] std::optional<std::string> extract_sni(
    rtcc::util::BytesView data);

/// True when `data` starts with a TLS handshake record (the cheap
/// pre-check the filter uses before attempting full SNI extraction).
[[nodiscard]] bool looks_like_tls_handshake(rtcc::util::BytesView data);

/// Builds a syntactically valid ClientHello (record + handshake +
/// extensions) advertising `sni` — the emulator uses this to synthesise
/// background HTTPS flows the SNI filter must catch.
[[nodiscard]] rtcc::util::Bytes build_client_hello(std::string_view sni);

}  // namespace rtcc::proto::tls
