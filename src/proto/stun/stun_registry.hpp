// Specification registry for STUN/TURN: which message types and
// attribute types are defined (and by which RFC), plus the structural
// constraints on each attribute's value. This is the ground truth the
// five-criterion compliance checker consults for criteria 1, 3 and 4.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proto/common.hpp"
#include "proto/stun/stun.hpp"

namespace rtcc::proto::stun {

struct MessageTypeInfo {
  std::uint16_t type = 0;
  std::string name;
  SpecSource source = SpecSource::kUndefined;
};

/// Looks up a full 16-bit message type (method+class combined).
/// Undefined combinations (e.g. WhatsApp's 0x0800) return a record with
/// source == kUndefined.
[[nodiscard]] MessageTypeInfo lookup_message_type(std::uint16_t type);

/// Value-shape constraint for a defined attribute.
struct AttributeInfo {
  std::uint16_t type = 0;
  std::string name;
  SpecSource source = SpecSource::kUndefined;
  /// Exact value length in bytes, if the spec fixes one (-1 otherwise).
  int fixed_length = -1;
  /// Bounds when the length is variable (-1 = unbounded).
  int min_length = -1;
  int max_length = -1;
  /// True for MAPPED-ADDRESS-family attributes (family/port/addr shape).
  bool is_address = false;
  /// True for the XOR'd address variants.
  bool is_xor_address = false;
  /// True if the attribute is comprehension-optional (type >= 0x8000);
  /// receivers ignore unknown optional attributes, but an *undefined*
  /// type still fails criterion 3 per the paper's model.
  [[nodiscard]] bool comprehension_optional() const { return type >= 0x8000; }
};

[[nodiscard]] AttributeInfo lookup_attribute(std::uint16_t type);

/// Attribute-set rules per message type (criterion 4/5 support):
/// e.g. RFC 8656 §11.6 Data Indication carries exactly
/// XOR-PEER-ADDRESS + DATA; ICE PRIORITY appears only in Binding
/// *requests* (RFC 8445 §7.1.1).
struct AttributeUsageRule {
  std::uint16_t attr_type = 0;
  /// Message types where the attribute is permitted. Empty = anywhere.
  std::vector<std::uint16_t> allowed_in;
};

/// Returns nullptr if the attribute has no placement restriction.
[[nodiscard]] const AttributeUsageRule* lookup_usage_rule(
    std::uint16_t attr_type);

/// For message types with a closed attribute set (Data/Send Indication),
/// returns the exhaustive allowed list; nullopt if the set is open.
[[nodiscard]] std::optional<std::vector<std::uint16_t>> closed_attribute_set(
    std::uint16_t message_type);

/// Human-readable message-type label used by report tables
/// ("0x0001 Binding Request", "0x0800 (undefined)").
[[nodiscard]] std::string describe_message_type(std::uint16_t type);

}  // namespace rtcc::proto::stun
