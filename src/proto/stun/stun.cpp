#include "proto/stun/stun.hpp"

#include <algorithm>

#include "crypto/crc32.hpp"
#include "crypto/hmac.hpp"

namespace rtcc::proto::stun {

using rtcc::util::ByteReader;
using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

std::uint16_t make_type(std::uint16_t method, Class cls) {
  // RFC 5389 §6: M11..M0 interleaved with C1 (bit 8) and C0 (bit 4).
  const std::uint16_t m = method;
  const auto c = static_cast<std::uint16_t>(cls);
  return static_cast<std::uint16_t>(((m & 0xF80) << 2) | ((m & 0x070) << 1) |
                                    (m & 0x00F) | ((c & 0x2) << 7) |
                                    ((c & 0x1) << 4));
}

std::uint16_t method_of(std::uint16_t type) {
  return static_cast<std::uint16_t>(((type >> 2) & 0xF80) |
                                    ((type >> 1) & 0x070) | (type & 0x00F));
}

Class class_of(std::uint16_t type) {
  return static_cast<Class>(((type >> 7) & 0x2) | ((type >> 4) & 0x1));
}

const Attribute* Message::find(std::uint16_t attr_type) const {
  for (const auto& a : attributes)
    if (a.type == attr_type) return &a;
  return nullptr;
}

std::size_t Message::count(std::uint16_t attr_type) const {
  return static_cast<std::size_t>(std::count_if(
      attributes.begin(), attributes.end(),
      [attr_type](const Attribute& a) { return a.type == attr_type; }));
}

std::optional<ParseResult> parse(BytesView data, const ParseOptions& opts) {
  if (data.size() < kHeaderSize) return std::nullopt;

  ByteReader r(data);
  const std::uint16_t type = r.u16();
  // RFC 5389 §6: the two most significant bits of every STUN message
  // are zeroes — this is also the primary demultiplexing signal.
  if (type & 0xC000) return std::nullopt;

  const std::uint16_t length = r.u16();
  if (opts.require_length_multiple_of_4 && (length % 4) != 0)
    return std::nullopt;
  const std::uint32_t cookie = r.u32();
  if (opts.require_magic_cookie && cookie != kMagicCookie) return std::nullopt;

  if (data.size() < kHeaderSize + std::size_t{length}) return std::nullopt;

  Message msg;
  msg.type = type;
  msg.length = length;
  msg.cookie = cookie;
  auto txid = r.bytes(12);
  std::copy(txid.begin(), txid.end(), msg.transaction_id.begin());

  // Attribute TLV walk, confined to the declared length.
  std::size_t remaining = length;
  while (remaining > 0) {
    if (remaining < 4) return std::nullopt;  // dangling TL bytes
    Attribute a;
    a.type = r.u16();
    const std::uint16_t vlen = r.u16();
    const std::size_t padded = (std::size_t{vlen} + 3) & ~std::size_t{3};
    if (padded + 4 > remaining) return std::nullopt;  // overruns message
    a.value = r.copy(vlen);
    r.skip(padded - vlen);
    remaining -= 4 + padded;
    msg.attributes.push_back(std::move(a));
  }
  if (!r.ok()) return std::nullopt;

  return ParseResult{std::move(msg), kHeaderSize + std::size_t{length}};
}

std::optional<ChannelData> parse_channel_data(BytesView data) {
  if (data.size() < 4) return std::nullopt;
  ByteReader r(data);
  ChannelData cd;
  cd.channel_number = r.u16();
  // RFC 8656 §12: channel numbers are in [0x4000, 0x4FFF].
  if (cd.channel_number < 0x4000 || cd.channel_number > 0x4FFF)
    return std::nullopt;
  cd.length = r.u16();
  if (data.size() < 4 + std::size_t{cd.length}) return std::nullopt;
  cd.data = r.copy(cd.length);
  return cd;
}

Bytes encode_channel_data(const ChannelData& cd) {
  ByteWriter w(4 + cd.data.size());
  w.u16(cd.channel_number);
  w.u16(static_cast<std::uint16_t>(cd.data.size()));
  w.raw(BytesView{cd.data});
  return std::move(w).take();
}

MessageBuilder::MessageBuilder(std::uint16_t type) {
  msg_.type = type;
  msg_.cookie = kMagicCookie;
}

MessageBuilder& MessageBuilder::transaction_id(const TransactionId& id) {
  msg_.transaction_id = id;
  return *this;
}

MessageBuilder& MessageBuilder::random_transaction_id(rtcc::util::Rng& rng) {
  for (auto& b : msg_.transaction_id) b = rng.next_u8();
  return *this;
}

MessageBuilder& MessageBuilder::classic_rfc3489(rtcc::util::Rng& rng) {
  msg_.cookie = rng.next_u32();
  // Avoid accidentally matching the modern cookie.
  if (msg_.cookie == kMagicCookie) msg_.cookie ^= 1;
  return *this;
}

MessageBuilder& MessageBuilder::attribute(std::uint16_t type, BytesView value) {
  msg_.attributes.push_back(
      Attribute{type, Bytes(value.begin(), value.end())});
  return *this;
}

MessageBuilder& MessageBuilder::attribute_u32(std::uint16_t type,
                                              std::uint32_t value) {
  ByteWriter w(4);
  w.u32(value);
  return attribute(type, w.view());
}

MessageBuilder& MessageBuilder::attribute_str(std::uint16_t type,
                                              std::string_view value) {
  return attribute(
      type, BytesView{reinterpret_cast<const std::uint8_t*>(value.data()),
                      value.size()});
}

MessageBuilder& MessageBuilder::xor_address(std::uint16_t type,
                                            const rtcc::net::IpAddr& ip,
                                            std::uint16_t port) {
  ByteWriter w;
  w.u8(0);
  w.u8(ip.is_v4() ? 0x01 : 0x02);
  w.u16(static_cast<std::uint16_t>(port ^ (kMagicCookie >> 16)));
  if (ip.is_v4()) {
    w.u32(ip.v4_value() ^ kMagicCookie);
  } else {
    // v6 addresses XOR with cookie || txid.
    std::array<std::uint8_t, 16> mask{};
    rtcc::util::store_be32(mask.data(), kMagicCookie);
    std::copy(msg_.transaction_id.begin(), msg_.transaction_id.end(),
              mask.begin() + 4);
    const auto& b = ip.v6_bytes();
    for (std::size_t i = 0; i < 16; ++i)
      w.u8(static_cast<std::uint8_t>(b[i] ^ mask[i]));
  }
  return attribute(type, w.view());
}

MessageBuilder& MessageBuilder::address(std::uint16_t type,
                                        const rtcc::net::IpAddr& ip,
                                        std::uint16_t port,
                                        int family_override) {
  ByteWriter w;
  w.u8(0);
  const std::uint8_t family =
      family_override >= 0 ? static_cast<std::uint8_t>(family_override)
                           : (ip.is_v4() ? 0x01 : 0x02);
  w.u8(family);
  w.u16(port);
  if (ip.is_v4()) {
    w.u32(ip.v4_value());
  } else {
    w.raw(BytesView{ip.v6_bytes()});
  }
  return attribute(type, w.view());
}

namespace {

void encode_into(ByteWriter& w, const Message& msg) {
  std::size_t attr_len = 0;
  for (const auto& a : msg.attributes)
    attr_len += 4 + ((a.value.size() + 3) & ~std::size_t{3});

  w.u16(msg.type);
  w.u16(static_cast<std::uint16_t>(attr_len));
  w.u32(msg.cookie);
  w.raw(BytesView{msg.transaction_id});
  for (const auto& a : msg.attributes) {
    w.u16(a.type);
    w.u16(static_cast<std::uint16_t>(a.value.size()));
    w.raw(BytesView{a.value});
    w.fill(0, ((a.value.size() + 3) & ~std::size_t{3}) - a.value.size());
  }
}

}  // namespace

MessageBuilder& MessageBuilder::message_integrity(BytesView key) {
  // RFC 5389 §15.4: HMAC over the message up to (not including) the
  // MESSAGE-INTEGRITY attribute, with the header length field set as if
  // the message ended right after MESSAGE-INTEGRITY.
  ByteWriter w;
  encode_into(w, msg_);
  Bytes prefix = std::move(w).take();
  const std::size_t new_len = (prefix.size() - kHeaderSize) + 24;
  rtcc::util::store_be16(prefix.data() + 2,
                         static_cast<std::uint16_t>(new_len));
  const auto mac = rtcc::crypto::hmac_sha1(key, BytesView{prefix});
  return attribute(attr::kMessageIntegrity, BytesView{mac});
}

MessageBuilder& MessageBuilder::fingerprint() {
  // RFC 5389 §15.5: CRC-32 over the message up to FINGERPRINT with the
  // length field covering FINGERPRINT itself, XORed with 0x5354554e.
  ByteWriter w;
  encode_into(w, msg_);
  Bytes prefix = std::move(w).take();
  const std::size_t new_len = (prefix.size() - kHeaderSize) + 8;
  rtcc::util::store_be16(prefix.data() + 2,
                         static_cast<std::uint16_t>(new_len));
  return attribute_u32(attr::kFingerprint,
                       rtcc::crypto::stun_fingerprint(BytesView{prefix}));
}

Bytes MessageBuilder::build() const {
  ByteWriter w;
  encode_into(w, msg_);
  return std::move(w).take();
}

Message MessageBuilder::build_message() const {
  Message out = msg_;
  std::size_t attr_len = 0;
  for (const auto& a : out.attributes)
    attr_len += 4 + ((a.value.size() + 3) & ~std::size_t{3});
  out.length = static_cast<std::uint16_t>(attr_len);
  return out;
}

std::optional<XorAddress> decode_xor_address(BytesView value,
                                             const TransactionId& txid) {
  if (value.size() != 8 && value.size() != 20) return std::nullopt;
  ByteReader r(value);
  r.skip(1);
  XorAddress out;
  out.family = r.u8();
  out.port = static_cast<std::uint16_t>(r.u16() ^ (kMagicCookie >> 16));
  if (value.size() == 8) {
    out.ip = rtcc::net::IpAddr::v4(r.u32() ^ kMagicCookie);
  } else {
    std::array<std::uint8_t, 16> mask{};
    rtcc::util::store_be32(mask.data(), kMagicCookie);
    std::copy(txid.begin(), txid.end(), mask.begin() + 4);
    std::array<std::uint8_t, 16> bytes{};
    for (std::size_t i = 0; i < 16; ++i)
      bytes[i] = static_cast<std::uint8_t>(r.u8() ^ mask[i]);
    out.ip = rtcc::net::IpAddr::v6(bytes);
  }
  if (!r.ok()) return std::nullopt;
  return out;
}

}  // namespace rtcc::proto::stun
