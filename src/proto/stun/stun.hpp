// STUN/TURN wire codec — RFC 3489 (classic), RFC 5389/8489 (STUN),
// RFC 8656 (TURN), including TURN ChannelData framing.
//
// The parser is deliberately permissive: it accepts undefined message
// types and attributes (that is the entire point of this study — we
// must *extract* non-compliant messages in order to judge them). All
// structural strictness lives in the DPI validators and the compliance
// rulebook, not here.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "proto/common.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace rtcc::proto::stun {

constexpr std::uint32_t kMagicCookie = 0x2112A442;
constexpr std::size_t kHeaderSize = 20;

/// STUN message classes (the C1/C0 bits of the message type).
enum class Class : std::uint8_t {
  kRequest = 0b00,
  kIndication = 0b01,
  kSuccessResponse = 0b10,
  kErrorResponse = 0b11,
};

/// Splits/combines the 14-bit method and 2-bit class per RFC 5389 §6.
[[nodiscard]] std::uint16_t make_type(std::uint16_t method, Class cls);
[[nodiscard]] std::uint16_t method_of(std::uint16_t type);
[[nodiscard]] Class class_of(std::uint16_t type);

// Methods (RFC 5389 / 8656 / 3489).
constexpr std::uint16_t kMethodBinding = 0x001;
constexpr std::uint16_t kMethodSharedSecret = 0x002;  // RFC 3489 only
constexpr std::uint16_t kMethodAllocate = 0x003;
constexpr std::uint16_t kMethodRefresh = 0x004;
constexpr std::uint16_t kMethodSend = 0x006;
constexpr std::uint16_t kMethodData = 0x007;
constexpr std::uint16_t kMethodCreatePermission = 0x008;
constexpr std::uint16_t kMethodChannelBind = 0x009;

// Frequently referenced message types (method+class combined).
constexpr std::uint16_t kBindingRequest = 0x0001;
constexpr std::uint16_t kBindingIndication = 0x0011;
constexpr std::uint16_t kBindingSuccess = 0x0101;
constexpr std::uint16_t kBindingError = 0x0111;
constexpr std::uint16_t kSharedSecretRequest = 0x0002;
constexpr std::uint16_t kAllocateRequest = 0x0003;
constexpr std::uint16_t kAllocateSuccess = 0x0103;
constexpr std::uint16_t kAllocateError = 0x0113;
constexpr std::uint16_t kRefreshRequest = 0x0004;
constexpr std::uint16_t kRefreshSuccess = 0x0104;
constexpr std::uint16_t kSendIndication = 0x0016;
constexpr std::uint16_t kDataIndication = 0x0017;
constexpr std::uint16_t kCreatePermissionRequest = 0x0008;
constexpr std::uint16_t kCreatePermissionSuccess = 0x0108;
constexpr std::uint16_t kCreatePermissionError = 0x0118;
constexpr std::uint16_t kChannelBindRequest = 0x0009;
constexpr std::uint16_t kChannelBindSuccess = 0x0109;

// Attribute types referenced throughout the compliance rulebook.
namespace attr {
constexpr std::uint16_t kMappedAddress = 0x0001;
constexpr std::uint16_t kResponseAddress = 0x0002;   // RFC 3489
constexpr std::uint16_t kChangeRequest = 0x0003;     // RFC 3489 / 5780
constexpr std::uint16_t kSourceAddress = 0x0004;     // RFC 3489
constexpr std::uint16_t kChangedAddress = 0x0005;    // RFC 3489
constexpr std::uint16_t kUsername = 0x0006;
constexpr std::uint16_t kPassword = 0x0007;          // RFC 3489
constexpr std::uint16_t kMessageIntegrity = 0x0008;
constexpr std::uint16_t kErrorCode = 0x0009;
constexpr std::uint16_t kUnknownAttributes = 0x000A;
constexpr std::uint16_t kReflectedFrom = 0x000B;     // RFC 3489
constexpr std::uint16_t kChannelNumber = 0x000C;     // TURN
constexpr std::uint16_t kLifetime = 0x000D;          // TURN
constexpr std::uint16_t kXorPeerAddress = 0x0012;    // TURN
constexpr std::uint16_t kData = 0x0013;              // TURN
constexpr std::uint16_t kRealm = 0x0014;
constexpr std::uint16_t kNonce = 0x0015;
constexpr std::uint16_t kXorRelayedAddress = 0x0016;  // TURN
constexpr std::uint16_t kRequestedAddressFamily = 0x0017;
constexpr std::uint16_t kEvenPort = 0x0018;          // TURN
constexpr std::uint16_t kRequestedTransport = 0x0019;  // TURN
constexpr std::uint16_t kDontFragment = 0x001A;      // TURN
constexpr std::uint16_t kMessageIntegritySha256 = 0x001C;
constexpr std::uint16_t kPasswordAlgorithm = 0x001D;
constexpr std::uint16_t kUserhash = 0x001E;
constexpr std::uint16_t kXorMappedAddress = 0x0020;
constexpr std::uint16_t kReservationToken = 0x0022;  // TURN
constexpr std::uint16_t kPriority = 0x0024;          // ICE
constexpr std::uint16_t kUseCandidate = 0x0025;      // ICE
constexpr std::uint16_t kResponsePort = 0x0026;      // RFC 5780
constexpr std::uint16_t kPadding = 0x0027;           // RFC 5780
constexpr std::uint16_t kPasswordAlgorithms = 0x8002;
constexpr std::uint16_t kAlternateDomain = 0x8003;
constexpr std::uint16_t kSoftware = 0x8022;
constexpr std::uint16_t kAlternateServer = 0x8023;
constexpr std::uint16_t kFingerprint = 0x8028;
constexpr std::uint16_t kIceControlled = 0x8029;
constexpr std::uint16_t kIceControlling = 0x802A;
constexpr std::uint16_t kResponseOrigin = 0x802B;    // RFC 5780
constexpr std::uint16_t kOtherAddress = 0x802C;      // RFC 5780
}  // namespace attr

using TransactionId = std::array<std::uint8_t, 12>;

struct Attribute {
  std::uint16_t type = 0;
  rtcc::util::Bytes value;
};

struct Message {
  std::uint16_t type = 0;
  /// Declared length of the attribute section in bytes.
  std::uint16_t length = 0;
  /// The 4 bytes where RFC 5389+ puts the magic cookie. For RFC 3489
  /// messages these are simply the first third of the 128-bit txid.
  std::uint32_t cookie = 0;
  TransactionId transaction_id{};
  std::vector<Attribute> attributes;

  [[nodiscard]] bool has_magic_cookie() const { return cookie == kMagicCookie; }
  [[nodiscard]] std::uint16_t method() const { return method_of(type); }
  [[nodiscard]] Class cls() const { return class_of(type); }
  [[nodiscard]] const Attribute* find(std::uint16_t attr_type) const;
  [[nodiscard]] std::size_t count(std::uint16_t attr_type) const;
  /// Total wire size (header + declared attribute length).
  [[nodiscard]] std::size_t wire_size() const { return kHeaderSize + length; }
};

struct ParseResult {
  Message message;
  /// Bytes actually consumed from the input (== message.wire_size()).
  std::size_t consumed = 0;
};

struct ParseOptions {
  /// RFC 5389+ requires the magic cookie; with this false the parser
  /// also accepts RFC 3489 classic STUN (cookie bytes become txid).
  bool require_magic_cookie = false;
  /// RFC 5389 §6 requires length % 4 == 0; RFC 3489 does not state it
  /// but all defined attributes pad to 4, so we keep it configurable.
  bool require_length_multiple_of_4 = true;
};

/// Parses one STUN message from the start of `data`. Trailing bytes
/// after the declared length are left unconsumed (the DPI uses this to
/// continue scanning). Fails when: input shorter than header, top two
/// bits of the type are set, declared length exceeds available bytes,
/// or attribute TLV walk overruns the declared length.
[[nodiscard]] std::optional<ParseResult> parse(rtcc::util::BytesView data,
                                               const ParseOptions& opts = {});

/// TURN ChannelData (RFC 8656 §12.4): 2-byte channel number in
/// [0x4000,0x4FFF], 2-byte length, then data.
struct ChannelData {
  std::uint16_t channel_number = 0;
  std::uint16_t length = 0;
  rtcc::util::Bytes data;

  [[nodiscard]] std::size_t wire_size() const { return 4 + length; }
};

[[nodiscard]] std::optional<ChannelData> parse_channel_data(
    rtcc::util::BytesView data);
[[nodiscard]] rtcc::util::Bytes encode_channel_data(const ChannelData& cd);

/// Fluent builder for STUN messages (used by the emulator and tests).
class MessageBuilder {
 public:
  explicit MessageBuilder(std::uint16_t type);

  MessageBuilder& transaction_id(const TransactionId& id);
  MessageBuilder& random_transaction_id(rtcc::util::Rng& rng);
  /// Switches to RFC 3489 classic framing: the cookie field carries
  /// random txid bytes instead of 0x2112A442.
  MessageBuilder& classic_rfc3489(rtcc::util::Rng& rng);

  MessageBuilder& attribute(std::uint16_t type, rtcc::util::BytesView value);
  MessageBuilder& attribute_u32(std::uint16_t type, std::uint32_t value);
  MessageBuilder& attribute_str(std::uint16_t type, std::string_view value);
  /// XOR-MAPPED-ADDRESS / XOR-PEER-ADDRESS / XOR-RELAYED-ADDRESS coding.
  MessageBuilder& xor_address(std::uint16_t type, const rtcc::net::IpAddr& ip,
                              std::uint16_t port);
  /// Plain MAPPED-ADDRESS / ALTERNATE-SERVER style address attribute.
  /// `family_override` lets tests emit the invalid family FaceTime uses.
  MessageBuilder& address(std::uint16_t type, const rtcc::net::IpAddr& ip,
                          std::uint16_t port, int family_override = -1);
  /// Appends MESSAGE-INTEGRITY computed with HMAC-SHA1 over the message
  /// so far (with length pre-adjusted per RFC 5389 §15.4).
  MessageBuilder& message_integrity(rtcc::util::BytesView key);
  /// Appends FINGERPRINT (must be last).
  MessageBuilder& fingerprint();

  [[nodiscard]] rtcc::util::Bytes build() const;
  [[nodiscard]] Message build_message() const;

 private:
  Message msg_;
};

/// Decodes an XOR'd address attribute value back to (ip, port).
struct XorAddress {
  rtcc::net::IpAddr ip;
  std::uint16_t port = 0;
  std::uint8_t family = 0;
};
[[nodiscard]] std::optional<XorAddress> decode_xor_address(
    rtcc::util::BytesView value, const TransactionId& txid);

}  // namespace rtcc::proto::stun
