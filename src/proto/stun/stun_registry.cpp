#include "proto/stun/stun_registry.hpp"

#include <unordered_map>

#include "util/hex.hpp"

namespace rtcc::proto::stun {
namespace {

struct MethodEntry {
  const char* name;
  SpecSource source;
  // Which classes the spec defines for this method (bitmask by Class).
  std::uint8_t classes;
};

constexpr std::uint8_t kReq = 1 << 0;
constexpr std::uint8_t kInd = 1 << 1;
constexpr std::uint8_t kSucc = 1 << 2;
constexpr std::uint8_t kErr = 1 << 3;

const std::unordered_map<std::uint16_t, MethodEntry>& methods() {
  static const std::unordered_map<std::uint16_t, MethodEntry> kMethods = {
      {kMethodBinding,
       {"Binding", SpecSource::kRfc8489, kReq | kInd | kSucc | kErr}},
      // Shared Secret exists only in classic STUN and has no indication.
      {kMethodSharedSecret,
       {"Shared Secret", SpecSource::kRfc3489, kReq | kSucc | kErr}},
      {kMethodAllocate,
       {"Allocate", SpecSource::kRfc8656, kReq | kSucc | kErr}},
      {kMethodRefresh, {"Refresh", SpecSource::kRfc8656, kReq | kSucc | kErr}},
      {kMethodSend, {"Send", SpecSource::kRfc8656, kInd}},
      {kMethodData, {"Data", SpecSource::kRfc8656, kInd}},
      {kMethodCreatePermission,
       {"CreatePermission", SpecSource::kRfc8656, kReq | kSucc | kErr}},
      {kMethodChannelBind,
       {"ChannelBind", SpecSource::kRfc8656, kReq | kSucc | kErr}},
      // Extension-defined method types the paper's ground truth counts
      // as compliant for Google Meet (see DESIGN.md §1). We model them
      // as vendor-published extension methods: GOOG-PING / GOOG-DATA.
      {0x080, {"GOOG-PING", SpecSource::kExtension, kReq | kSucc}},
      {0x0C0, {"GOOG-DATA", SpecSource::kExtension, kReq | kSucc}},
  };
  return kMethods;
}

std::uint8_t class_bit(Class c) {
  switch (c) {
    case Class::kRequest:
      return kReq;
    case Class::kIndication:
      return kInd;
    case Class::kSuccessResponse:
      return kSucc;
    case Class::kErrorResponse:
      return kErr;
  }
  return 0;
}

const char* class_name(Class c) {
  switch (c) {
    case Class::kRequest:
      return "Request";
    case Class::kIndication:
      return "Indication";
    case Class::kSuccessResponse:
      return "Success Response";
    case Class::kErrorResponse:
      return "Error Response";
  }
  return "?";
}

AttributeInfo make_attr(std::uint16_t type, const char* name, SpecSource src) {
  AttributeInfo a;
  a.type = type;
  a.name = name;
  a.source = src;
  return a;
}

AttributeInfo fixed(std::uint16_t type, const char* name, SpecSource src,
                    int len) {
  AttributeInfo a = make_attr(type, name, src);
  a.fixed_length = len;
  return a;
}

AttributeInfo ranged(std::uint16_t type, const char* name, SpecSource src,
                     int min_len, int max_len) {
  AttributeInfo a = make_attr(type, name, src);
  a.min_length = min_len;
  a.max_length = max_len;
  return a;
}

AttributeInfo address_attr(std::uint16_t type, const char* name,
                           SpecSource src, bool xored) {
  AttributeInfo a = make_attr(type, name, src);
  a.is_address = true;
  a.is_xor_address = xored;
  a.min_length = 8;
  a.max_length = 20;
  return a;
}

const std::unordered_map<std::uint16_t, AttributeInfo>& attributes() {
  using S = SpecSource;
  static const std::unordered_map<std::uint16_t, AttributeInfo> kAttrs = [] {
    std::unordered_map<std::uint16_t, AttributeInfo> m;
    auto add = [&m](AttributeInfo a) { m.emplace(a.type, std::move(a)); };
    add(address_attr(attr::kMappedAddress, "MAPPED-ADDRESS", S::kRfc8489,
                     false));
    add(address_attr(attr::kResponseAddress, "RESPONSE-ADDRESS", S::kRfc3489,
                     false));
    add(fixed(attr::kChangeRequest, "CHANGE-REQUEST", S::kRfc5780, 4));
    add(address_attr(attr::kSourceAddress, "SOURCE-ADDRESS", S::kRfc3489,
                     false));
    add(address_attr(attr::kChangedAddress, "CHANGED-ADDRESS", S::kRfc3489,
                     false));
    add(ranged(attr::kUsername, "USERNAME", S::kRfc8489, 1, 513));
    add(ranged(attr::kPassword, "PASSWORD", S::kRfc3489, 1, 767));
    add(fixed(attr::kMessageIntegrity, "MESSAGE-INTEGRITY", S::kRfc8489, 20));
    add(ranged(attr::kErrorCode, "ERROR-CODE", S::kRfc8489, 4, 763));
    add(ranged(attr::kUnknownAttributes, "UNKNOWN-ATTRIBUTES", S::kRfc8489, 0,
               -1));
    add(address_attr(attr::kReflectedFrom, "REFLECTED-FROM", S::kRfc3489,
                     false));
    add(fixed(attr::kChannelNumber, "CHANNEL-NUMBER", S::kRfc8656, 4));
    add(fixed(attr::kLifetime, "LIFETIME", S::kRfc8656, 4));
    add(address_attr(attr::kXorPeerAddress, "XOR-PEER-ADDRESS", S::kRfc8656,
                     true));
    add(ranged(attr::kData, "DATA", S::kRfc8656, 0, -1));
    add(ranged(attr::kRealm, "REALM", S::kRfc8489, 1, 763));
    add(ranged(attr::kNonce, "NONCE", S::kRfc8489, 1, 763));
    add(address_attr(attr::kXorRelayedAddress, "XOR-RELAYED-ADDRESS",
                     S::kRfc8656, true));
    add(fixed(attr::kRequestedAddressFamily, "REQUESTED-ADDRESS-FAMILY",
              S::kRfc8656, 4));
    add(fixed(attr::kEvenPort, "EVEN-PORT", S::kRfc8656, 1));
    add(fixed(attr::kRequestedTransport, "REQUESTED-TRANSPORT", S::kRfc8656,
              4));
    add(fixed(attr::kDontFragment, "DONT-FRAGMENT", S::kRfc8656, 0));
    add(ranged(attr::kMessageIntegritySha256, "MESSAGE-INTEGRITY-SHA256",
               S::kRfc8489, 16, 32));
    add(fixed(attr::kPasswordAlgorithm, "PASSWORD-ALGORITHM", S::kRfc8489, 4));
    add(ranged(attr::kUserhash, "USERHASH", S::kRfc8489, 32, 32));
    add(address_attr(attr::kXorMappedAddress, "XOR-MAPPED-ADDRESS",
                     S::kRfc8489, true));
    add(fixed(attr::kReservationToken, "RESERVATION-TOKEN", S::kRfc8656, 8));
    add(fixed(attr::kPriority, "PRIORITY", S::kRfc8445, 4));
    add(fixed(attr::kUseCandidate, "USE-CANDIDATE", S::kRfc8445, 0));
    add(fixed(attr::kResponsePort, "RESPONSE-PORT", S::kRfc5780, 4));
    add(ranged(attr::kPadding, "PADDING", S::kRfc5780, 0, -1));
    add(ranged(attr::kPasswordAlgorithms, "PASSWORD-ALGORITHMS", S::kRfc8489,
               0, -1));
    add(ranged(attr::kAlternateDomain, "ALTERNATE-DOMAIN", S::kRfc8489, 1,
               255));
    add(ranged(attr::kSoftware, "SOFTWARE", S::kRfc8489, 0, 763));
    add(address_attr(attr::kAlternateServer, "ALTERNATE-SERVER", S::kRfc8489,
                     false));
    add(fixed(attr::kFingerprint, "FINGERPRINT", S::kRfc8489, 4));
    add(fixed(attr::kIceControlled, "ICE-CONTROLLED", S::kRfc8445, 8));
    add(fixed(attr::kIceControlling, "ICE-CONTROLLING", S::kRfc8445, 8));
    add(address_attr(attr::kResponseOrigin, "RESPONSE-ORIGIN", S::kRfc5780,
                     false));
    add(address_attr(attr::kOtherAddress, "OTHER-ADDRESS", S::kRfc5780,
                     false));
    // TURN RFC 8656 additions.
    add(fixed(0x8000, "ADDITIONAL-ADDRESS-FAMILY", S::kRfc8656, 4));
    add(ranged(0x8001, "ADDRESS-ERROR-CODE", S::kRfc8656, 4, 763));
    add(fixed(0x8004, "ICMP", S::kRfc8656, 8));
    // Vendor extension attributes counted as published (e.g. libwebrtc's
    // GOOG-NETWORK-INFO), used by the Google Meet model.
    add(fixed(0xC057, "GOOG-NETWORK-INFO", S::kExtension, 4));
    return m;
  }();
  return kAttrs;
}

}  // namespace

MessageTypeInfo lookup_message_type(std::uint16_t type) {
  MessageTypeInfo info;
  info.type = type;
  // Top two bits set can never be STUN; callers shouldn't pass those,
  // but be defensive.
  if (type & 0xC000) {
    info.name = "(not a STUN type)";
    return info;
  }
  const std::uint16_t method = method_of(type);
  const Class cls = class_of(type);
  auto it = methods().find(method);
  if (it == methods().end() || !(it->second.classes & class_bit(cls))) {
    info.name = "(undefined)";
    return info;
  }
  info.name = std::string(it->second.name) + " " + class_name(cls);
  info.source = it->second.source;
  return info;
}

AttributeInfo lookup_attribute(std::uint16_t type) {
  auto it = attributes().find(type);
  if (it != attributes().end()) return it->second;
  AttributeInfo info;
  info.type = type;
  info.name = "(undefined)";
  return info;
}

const AttributeUsageRule* lookup_usage_rule(std::uint16_t attr_type) {
  // RFC 8445 §7.1/§7.2: ICE connectivity-check attributes appear only in
  // Binding requests. RFC 8656 §11.1/§12.6: CHANNEL-NUMBER appears only
  // in ChannelBind requests; RESERVATION-TOKEN in Allocate exchanges.
  static const std::vector<AttributeUsageRule> kRules = {
      {attr::kPriority, {kBindingRequest}},
      {attr::kUseCandidate, {kBindingRequest}},
      {attr::kIceControlled, {kBindingRequest}},
      {attr::kIceControlling, {kBindingRequest}},
      {attr::kChannelNumber, {kChannelBindRequest}},
      {attr::kReservationToken, {kAllocateRequest, kAllocateSuccess}},
      {attr::kRequestedTransport, {kAllocateRequest}},
      {attr::kEvenPort, {kAllocateRequest}},
      {attr::kXorRelayedAddress, {kAllocateSuccess}},
  };
  for (const auto& r : kRules)
    if (r.attr_type == attr_type) return &r;
  return nullptr;
}

std::optional<std::vector<std::uint16_t>> closed_attribute_set(
    std::uint16_t message_type) {
  // RFC 8656 §11.6: a Data indication contains XOR-PEER-ADDRESS and
  // DATA (we additionally tolerate ICMP per §11.6 para 3). §11.4: Send
  // indication carries XOR-PEER-ADDRESS, DATA and optionally
  // DONT-FRAGMENT.
  if (message_type == kDataIndication)
    return std::vector<std::uint16_t>{attr::kXorPeerAddress, attr::kData,
                                      0x8004 /* ICMP */};
  if (message_type == kSendIndication)
    return std::vector<std::uint16_t>{attr::kXorPeerAddress, attr::kData,
                                      attr::kDontFragment};
  return std::nullopt;
}

std::string describe_message_type(std::uint16_t type) {
  const MessageTypeInfo info = lookup_message_type(type);
  return rtcc::util::hex_u16(type) + " " + info.name;
}

}  // namespace rtcc::proto::stun
