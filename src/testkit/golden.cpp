#include "testkit/golden.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "emul/app_model.hpp"
#include "report/json_export.hpp"
#include "report/metrics.hpp"

namespace rtcc::testkit {

namespace {

std::string first_difference(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  std::size_t line = 1;
  for (std::size_t k = 0; k < i; ++k)
    if (a[k] == '\n') ++line;
  std::ostringstream out;
  out << "first difference at byte " << i << " (line " << line << "); sizes "
      << a.size() << " vs " << b.size();
  return out.str();
}

}  // namespace

std::string compute_golden_json(const GoldenOptions& opts) {
  std::map<std::string, std::string> cells;
  std::uint64_t cell_seed = opts.seed;
  for (const auto app : rtcc::emul::all_apps()) {
    for (const auto network : rtcc::emul::all_networks()) {
      rtcc::emul::CallConfig cfg;
      cfg.app = app;
      cfg.network = network;
      cfg.pre_call_s = opts.pre_call_s;
      cfg.call_s = opts.call_s;
      cfg.post_call_s = opts.post_call_s;
      cfg.media_scale = opts.media_scale;
      cfg.background = opts.background;
      cfg.seed = cell_seed++;
      const auto call = rtcc::emul::emulate_call(cfg);
      const auto analysis = rtcc::report::analyze_call(call);
      cells[to_string(app) + "|" + to_string(network)] =
          rtcc::report::to_json(analysis);
    }
  }
  std::ostringstream out;
  out << "{\n";
  bool first = true;
  for (const auto& [key, json] : cells) {
    if (!first) out << ",\n";
    first = false;
    out << "\"" << key << "\": " << json;
  }
  out << "\n}\n";
  return out.str();
}

std::optional<std::string> check_golden(const std::string& path,
                                        const GoldenOptions& opts) {
  const std::string run1 = compute_golden_json(opts);
  const std::string run2 = compute_golden_json(opts);
  if (run1 != run2)
    return "golden determinism violation: two consecutive computations "
           "differ (" +
           first_difference(run1, run2) + ")";
  std::ifstream in(path, std::ios::binary);
  if (!in) return "cannot open golden snapshot " + path;
  std::ostringstream file;
  file << in.rdbuf();
  if (file.str() != run1)
    return "golden snapshot mismatch vs " + path + ": " +
           first_difference(file.str(), run1) +
           " (refresh intentionally with --update-golden)";
  return std::nullopt;
}

std::optional<std::string> update_golden(const std::string& path,
                                         const GoldenOptions& opts) {
  const std::string run1 = compute_golden_json(opts);
  const std::string run2 = compute_golden_json(opts);
  if (run1 != run2)
    return "golden determinism violation: two consecutive computations "
           "differ (" +
           first_difference(run1, run2) + ")";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return "cannot write golden snapshot " + path;
  out << run1;
  if (!out) return "write failed for " + path;
  return std::nullopt;
}

std::string compute_report_golden(const ReportGoldenOptions& opts) {
  rtcc::report::AppResults results;
  std::uint64_t cell_seed = opts.seed;
  for (const auto app : {rtcc::emul::AppId::kZoom, rtcc::emul::AppId::kFaceTime,
                         rtcc::emul::AppId::kDiscord}) {
    rtcc::emul::CallConfig cfg;
    cfg.app = app;
    cfg.pre_call_s = opts.pre_call_s;
    cfg.call_s = opts.call_s;
    cfg.post_call_s = opts.post_call_s;
    cfg.media_scale = opts.media_scale;
    cfg.seed = cell_seed++;
    results[app] =
        rtcc::report::analyze_call(rtcc::emul::emulate_call(cfg));
  }
  std::ostringstream out;
  out << rtcc::report::to_json(results) << "\n";
  out << "---- table1 ----\n" << rtcc::report::render_table1(results);
  out << "---- table3 ----\n" << rtcc::report::render_table3(results);
  return out.str();
}

std::optional<std::string> check_report_golden(const std::string& path,
                                               const ReportGoldenOptions& opts) {
  const std::string run1 = compute_report_golden(opts);
  const std::string run2 = compute_report_golden(opts);
  if (run1 != run2)
    return "report golden determinism violation: two consecutive "
           "computations differ (" +
           first_difference(run1, run2) + ")";
  std::ifstream in(path, std::ios::binary);
  if (!in) return "cannot open report golden snapshot " + path;
  std::ostringstream file;
  file << in.rdbuf();
  if (file.str() != run1)
    return "report golden mismatch vs " + path + ": " +
           first_difference(file.str(), run1) +
           " (refresh intentionally with --update-report-golden)";
  return std::nullopt;
}

std::optional<std::string> update_report_golden(
    const std::string& path, const ReportGoldenOptions& opts) {
  const std::string run1 = compute_report_golden(opts);
  const std::string run2 = compute_report_golden(opts);
  if (run1 != run2)
    return "report golden determinism violation: two consecutive "
           "computations differ (" +
           first_difference(run1, run2) + ")";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return "cannot write report golden snapshot " + path;
  out << run1;
  if (!out) return "write failed for " + path;
  return std::nullopt;
}

}  // namespace rtcc::testkit
