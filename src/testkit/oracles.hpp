// Differential and invariant oracles for the fuzz driver.
//
// Each oracle returns std::nullopt when the invariant holds and a
// human-readable violation description otherwise; memory errors are the
// sanitizers' jurisdiction (the driver runs under ASan+UBSan in CI).
//
// The oracle list (DESIGN.md "testkit"):
//   1. parser_sweep          — every parser survives arbitrary bytes and
//                              keeps its structural invariants.
//   2. check_anchor_parity   — SIMD anchor scan vs an independent scalar
//                              reference re-implementation.
//   3. check_scan_equivalence— anchored ScanningDpi vs the naive
//                              all-offsets oracle, byte-identical.
//   4. check_arena_parity    — arena-backed vs legacy traces build and
//                              serialize identically; pcap decode agrees.
//   5. check_pcap_roundtrip  — encode→decode→encode is a fixed point.
//   6. check_strict_subset   — on clean seed streams, every datagram the
//                              strict DPI accepts is classified standard
//                              with the same message by the scanner.
//   7. check_checker_idempotence — the compliance checker is a pure
//                              function of the stream: re-running it
//                              (and re-calling check()) changes nothing.
//   8. check_frame_decode    — decode_frame under every linktype is
//                              deterministic, keeps payload views inside
//                              the frame, and books every attempt into
//                              exactly one IngestStats outcome counter.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "testkit/seeds.hpp"
#include "util/bytes.hpp"

namespace rtcc::testkit {

/// Feeds `data` to every wire parser (proto/*, net, vendor) and checks
/// cheap structural invariants on whatever parses. Crash/UB detection
/// is delegated to the sanitizers.
[[nodiscard]] std::optional<std::string> parser_sweep(
    rtcc::util::BytesView data);

[[nodiscard]] std::optional<std::string> check_anchor_parity(
    rtcc::util::BytesView payload);

[[nodiscard]] std::optional<std::string> check_scan_equivalence(
    const std::vector<rtcc::util::Bytes>& datagrams);

[[nodiscard]] std::optional<std::string> check_arena_parity(
    const std::vector<rtcc::util::Bytes>& payloads);

[[nodiscard]] std::optional<std::string> check_pcap_roundtrip(
    const std::vector<rtcc::util::Bytes>& payloads);

[[nodiscard]] std::optional<std::string> check_strict_subset(
    const SeedStream& stream);

[[nodiscard]] std::optional<std::string> check_checker_idempotence(
    const std::vector<rtcc::util::Bytes>& datagrams);

/// Runs decode_frame over `frame` under every declared linktype plus an
/// undeclared one, twice each, checking determinism, payload bounds,
/// and the IngestStats accounting identity (each attempt lands in
/// exactly one outcome counter). Also drives a stateful FrameDecoder
/// over the frame and re-checks the identity after finish().
[[nodiscard]] std::optional<std::string> check_frame_decode(
    rtcc::util::BytesView frame);

/// Batched (vector) extraction vs the per-datagram path: analyses must
/// be byte-identical for any stream, at any batch size. Runs the full
/// scanner once per distinct size in {1, default} plus `extra_size`
/// when non-zero (the driver passes boundary-straddling sizes).
[[nodiscard]] std::optional<std::string> check_batch_parity(
    const std::vector<rtcc::util::Bytes>& datagrams,
    std::size_t extra_size = 0);

/// Every *supported* SIMD level against the scalar path: identical
/// compliance signatures datagram-for-datagram. Unsupported levels are
/// skipped (never a failure) so the oracle is portable.
[[nodiscard]] std::optional<std::string> check_simd_parity(
    const std::vector<rtcc::util::Bytes>& datagrams);

/// Flow-sharded analyze_trace vs the unsharded path: the datagrams are
/// spread across several bidirectional flows and analyzed at shard
/// counts {1, 2, 3, 8}; the merged report and every per-stream partial
/// must be byte-identical (after dropping the knob-dependent "shards"
/// diagnostic) at every count. The live equivalence oracle behind
/// RTCC_SHARDS (DESIGN.md §7).
[[nodiscard]] std::optional<std::string> check_shard_parity(
    const std::vector<rtcc::util::Bytes>& datagrams);

/// Streaming analyze_trace vs the batch path: the same multi-flow trace
/// analyzed (a) one-pass in memory at unbounded budgets, (b) through the
/// chunked pcap reader at read granularities {1, 7, 256, 4096}, and
/// (c) under tight flow-table budgets that force mid-capture eviction.
/// (a) and (b) must be byte-identical to batch (after dropping the
/// knob-dependent "flows"/"shards" diagnostics); (c) must be
/// byte-identical when no flow was split and must satisfy the volume /
/// stage-bucket / flow-ledger conservation identities when one was.
/// The live equivalence oracle behind RTCC_STREAM (DESIGN.md §6c).
[[nodiscard]] std::optional<std::string> check_stream_parity(
    const std::vector<rtcc::util::Bytes>& datagrams);

/// Every oracle that accepts arbitrary (possibly mutated) single
/// buffers, in a fixed order. Used by the driver and corpus replay.
[[nodiscard]] std::optional<std::string> run_buffer_oracles(
    rtcc::util::BytesView data);

/// Every oracle that accepts arbitrary (possibly mutated) datagram
/// streams, in a fixed order.
[[nodiscard]] std::optional<std::string> run_stream_oracles(
    const std::vector<rtcc::util::Bytes>& datagrams);

}  // namespace rtcc::testkit
