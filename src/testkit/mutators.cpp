#include "testkit/mutators.hpp"

#include <algorithm>

#include "proto/stun/stun.hpp"
#include "util/bytes.hpp"

namespace rtcc::testkit {

using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::load_be16;
using rtcc::util::Rng;
using rtcc::util::store_be16;

namespace {

Bytes to_bytes(BytesView v) { return Bytes(v.begin(), v.end()); }

Bytes flip_bits(BytesView seed, Rng& rng, std::size_t max_flips) {
  Bytes out = to_bytes(seed);
  if (out.empty()) return out;
  const std::size_t flips = 1 + rng.below(max_flips);
  for (std::size_t i = 0; i < flips; ++i)
    out[rng.below(out.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
  return out;
}

Bytes truncate(BytesView seed, Rng& rng) {
  if (seed.empty()) return {};
  return to_bytes(seed.subspan(0, rng.below(seed.size())));
}

Bytes prefix(BytesView seed, Rng& rng) {
  // Proprietary-header shape: a handful of leading unknown bytes ahead
  // of the (possibly still valid) standard message.
  Bytes out = rng.bytes(1 + rng.below(24));
  out.insert(out.end(), seed.begin(), seed.end());
  return out;
}

Bytes splice(BytesView a, BytesView b, Rng& rng) {
  if (a.empty()) return to_bytes(b);
  if (b.empty()) return flip_bits(a, rng, 4);
  const std::size_t cut_a = rng.below(a.size() + 1);
  const std::size_t cut_b = rng.below(b.size() + 1);
  Bytes out(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(cut_a));
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(cut_b),
             b.end());
  return out;
}

/// Locates STUN attribute TLVs in a wire message: returns {offset,
/// padded_size} pairs within the attribute section. Walks the *actual*
/// bytes rather than trusting the declared header length, so it also
/// works on seeds whose length fields were already mutated.
std::vector<std::pair<std::size_t, std::size_t>> stun_tlvs(BytesView wire) {
  namespace stun = rtcc::proto::stun;
  std::vector<std::pair<std::size_t, std::size_t>> tlvs;
  if (wire.size() < stun::kHeaderSize) return tlvs;
  std::size_t pos = stun::kHeaderSize;
  while (pos + 4 <= wire.size()) {
    const std::uint16_t len = load_be16(wire.data() + pos + 2);
    const std::size_t padded = 4 + ((std::size_t{len} + 3) & ~std::size_t{3});
    if (pos + padded > wire.size()) break;
    tlvs.emplace_back(pos, padded);
    pos += padded;
  }
  return tlvs;
}

Bytes mutate_stun_tlv(BytesView seed, Rng& rng) {
  const auto tlvs = stun_tlvs(seed);
  if (tlvs.empty()) return flip_bits(seed, rng, 4);
  Bytes out = to_bytes(seed);
  const auto [off, size] = tlvs[rng.below(tlvs.size())];
  switch (rng.below(4)) {
    case 0: {  // duplicate the TLV at the section end (length not fixed up)
      Bytes dup(out.begin() + static_cast<std::ptrdiff_t>(off),
                out.begin() + static_cast<std::ptrdiff_t>(off + size));
      out.insert(out.end(), dup.begin(), dup.end());
      break;
    }
    case 1: {  // delete the TLV; optionally re-fix the declared length
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(off),
                out.begin() + static_cast<std::ptrdiff_t>(off + size));
      if (rng.chance(0.5) && out.size() >= 20) {
        const std::uint16_t declared = load_be16(out.data() + 2);
        if (declared >= size)
          store_be16(out.data() + 2,
                     static_cast<std::uint16_t>(declared - size));
      }
      break;
    }
    case 2: {  // swap two TLVs (order violations: FINGERPRINT not last)
      const auto [off2, size2] = tlvs[rng.below(tlvs.size())];
      if (off != off2 && size == size2) {
        for (std::size_t i = 0; i < size; ++i)
          std::swap(out[off + i], out[off2 + i]);
      } else {
        out[off] ^= 0x80;  // fall back to corrupting the attribute type
      }
      break;
    }
    default:  // cut mid-TLV
      out.resize(off + 1 + rng.below(std::max<std::size_t>(size, 2)));
      break;
  }
  return out;
}

Bytes mutate_stun_length(BytesView seed, Rng& rng) {
  Bytes out = to_bytes(seed);
  if (out.size() < 20) return flip_bits(seed, rng, 2);
  if (rng.chance(0.5)) {
    // Lie in the header's message length: off-by-small, non-multiple of
    // 4, or far beyond the buffer.
    const std::uint16_t declared = load_be16(out.data() + 2);
    const std::uint16_t lie = static_cast<std::uint16_t>(
        rng.chance(0.5) ? declared + 1 + rng.below(7)
                        : rng.next_u16());
    store_be16(out.data() + 2, lie);
  } else {
    // Lie in one attribute's value length.
    const auto tlvs = stun_tlvs(seed);
    if (tlvs.empty()) return flip_bits(seed, rng, 2);
    const auto [off, size] = tlvs[rng.below(tlvs.size())];
    (void)size;
    const std::uint16_t len = load_be16(out.data() + off + 2);
    store_be16(out.data() + off + 2,
               static_cast<std::uint16_t>(
                   rng.chance(0.5) ? len + 1 + rng.below(5)
                                   : rng.next_u16()));
  }
  return out;
}

Bytes mutate_rtp_extension(BytesView seed, Rng& rng) {
  Bytes out = to_bytes(seed);
  if (out.size() < 12 || (out[0] >> 6) != 2) return flip_bits(seed, rng, 3);
  const std::size_t cc = out[0] & 0x0F;
  const bool has_ext = (out[0] & 0x10) != 0;
  const std::size_t ext_off = 12 + cc * 4;
  switch (rng.below(has_ext && ext_off + 4 <= out.size() ? 5 : 3)) {
    case 0:  // flip the X bit without touching the extension bytes
      out[0] ^= 0x10;
      break;
    case 1:  // corrupt the CSRC count (header suddenly claims more words)
      out[0] = static_cast<std::uint8_t>((out[0] & 0xF0) |
                                         (1 + rng.below(15)));
      break;
    case 2:  // padding lie: set P and write an oversized/zero pad count
      out[0] |= 0x20;
      out.back() = static_cast<std::uint8_t>(
          rng.chance(0.5) ? 0 : 200 + rng.below(56));
      break;
    case 3: {  // corrupt the extension profile or declared word length
      if (rng.chance(0.5)) {
        store_be16(out.data() + ext_off, rng.next_u16());
      } else {
        store_be16(out.data() + ext_off + 2,
                   static_cast<std::uint16_t>(rng.below(0x100)));
      }
      break;
    }
    default: {  // corrupt element ID/length nibbles inside the block
      const std::uint16_t words = load_be16(out.data() + ext_off + 2);
      const std::size_t body = ext_off + 4;
      const std::size_t body_len =
          std::min(out.size() - body, std::size_t{words} * 4);
      if (body_len > 0)
        out[body + rng.below(body_len)] ^=
            static_cast<std::uint8_t>(0x0F << (rng.chance(0.5) ? 4 : 0));
      else
        out[0] ^= 0x10;
      break;
    }
  }
  return out;
}

/// Splits an RTCP compound at its declared packet boundaries. Like
/// stun_tlvs, walks actual bytes so it tolerates pre-damaged compounds.
std::vector<std::pair<std::size_t, std::size_t>> rtcp_packets(
    BytesView wire) {
  std::vector<std::pair<std::size_t, std::size_t>> pkts;
  std::size_t pos = 0;
  while (pos + 4 <= wire.size()) {
    if ((wire[pos] >> 6) != 2) break;
    const std::size_t len =
        4 + std::size_t{load_be16(wire.data() + pos + 2)} * 4;
    if (pos + len > wire.size()) break;
    pkts.emplace_back(pos, len);
    pos += len;
  }
  return pkts;
}

Bytes mutate_rtcp_reshuffle(BytesView seed, Rng& rng) {
  const auto pkts = rtcp_packets(seed);
  if (pkts.size() < 1) return flip_bits(seed, rng, 3);
  const std::size_t compound_end = pkts.back().first + pkts.back().second;
  std::vector<Bytes> parts;
  parts.reserve(pkts.size());
  for (const auto& [off, len] : pkts)
    parts.push_back(to_bytes(seed.subspan(off, len)));
  const Bytes tail = to_bytes(seed.subspan(compound_end));

  switch (rng.below(5)) {
    case 0:  // reorder (SR/RR-first rule violations)
      if (parts.size() >= 2) {
        const std::size_t i = rng.below(parts.size());
        const std::size_t j = rng.below(parts.size());
        std::swap(parts[i], parts[j]);
      } else {
        parts[0] = flip_bits(BytesView{parts[0]}, rng, 2);
      }
      break;
    case 1:  // duplicate one packet
      parts.push_back(parts[rng.below(parts.size())]);
      break;
    case 2:  // drop one packet
      parts.erase(parts.begin() +
                  static_cast<std::ptrdiff_t>(rng.below(parts.size())));
      break;
    case 3: {  // lie in one packet's length_words
      Bytes& p = parts[rng.below(parts.size())];
      store_be16(p.data() + 2,
                 static_cast<std::uint16_t>(
                     rng.chance(0.5) ? load_be16(p.data() + 2) + 1
                                     : rng.next_u16()));
      break;
    }
    default: {  // corrupt count/padding bits of one header
      Bytes& p = parts[rng.below(parts.size())];
      p[0] = static_cast<std::uint8_t>(0x80 | (rng.chance(0.3) ? 0x20 : 0) |
                                       rng.below(32));
      break;
    }
  }

  Bytes out;
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  out.insert(out.end(), tail.begin(), tail.end());
  if (rng.chance(0.2)) {  // grow/replace the trailing bytes (SRTCP-ish)
    const Bytes extra = rng.bytes(rng.below(40));
    out.insert(out.end(), extra.begin(), extra.end());
  }
  return out;
}

Bytes mutate_quic_header(BytesView seed, Rng& rng) {
  Bytes out = to_bytes(seed);
  if (out.empty()) return rng.bytes(8);
  const bool long_form = (out[0] & 0x80) != 0;
  switch (rng.below(long_form && out.size() >= 7 ? 5 : 2)) {
    case 0:  // first byte: form/fixed/type/reserved/pn-length bits
      out[0] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 1:  // arbitrary flip further in (covers short-header DCIDs)
      out[rng.below(out.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 2:  // version bytes (incl. the all-zero negotiation pattern)
      out[1 + rng.below(4)] =
          static_cast<std::uint8_t>(rng.chance(0.3) ? 0 : rng.next_u8());
      break;
    case 3:  // DCID length byte: oversized or zero
      out[5] = static_cast<std::uint8_t>(rng.chance(0.5) ? rng.next_u8()
                                                         : 21 + rng.below(235));
      break;
    default: {  // SCID length byte (when the DCID fits)
      const std::size_t dcid_len = out[5];
      const std::size_t scid_at = 6 + dcid_len;
      if (scid_at < out.size())
        out[scid_at] = rng.next_u8();
      else
        out[out.size() - 1] ^= 0xFF;
      break;
    }
  }
  return out;
}

Bytes mutate_vendor_header(BytesView seed, Rng& rng) {
  Bytes out = to_bytes(seed);
  if (out.size() < 4) return flip_bits(seed, rng, 2);
  const bool facetime = out.size() >= 2 && out[0] == 0x60 && out[1] == 0x00;
  if (facetime) {
    switch (rng.below(3)) {
      case 0:  // declared length lies
        store_be16(out.data() + 2, rng.next_u16());
        break;
      case 1:  // damage the magic
        out[rng.below(2)] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        break;
      default:  // cut inside the opaque extra bytes
        out.resize(4 + rng.below(std::max<std::size_t>(out.size() - 4, 1)));
        break;
    }
    return out;
  }
  // Zoom 24/28-byte header: direction, media type, embedded length.
  switch (rng.below(out.size() >= 24 ? 4 : 2)) {
    case 0:
      out[0] = rng.next_u8();  // direction byte
      break;
    case 1:
      out[rng.below(out.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 2:
      out[16] = rng.next_u8();  // media type
      break;
    default:
      store_be16(out.data() + 18, rng.next_u16());  // embedded length
      break;
  }
  return out;
}

Bytes mutate_frame_header(BytesView seed, Rng& rng) {
  Bytes out = to_bytes(seed);
  // Ethernet + IPv4 header is 34 bytes; anything shorter has no frame
  // structure worth aiming at.
  if (out.size() < 34) return flip_bits(seed, rng, 4);
  switch (rng.below(5)) {
    case 0: {  // ethertype flips: IP versions, VLAN TPIDs, non-IP, junk
      static constexpr std::uint16_t kTypes[] = {0x0800, 0x86DD, 0x8100,
                                                 0x88A8, 0x9100, 0x0806};
      store_be16(out.data() + 12,
                 rng.chance(0.8) ? kTypes[rng.below(std::size(kTypes))]
                                 : rng.next_u16());
      break;
    }
    case 1:  // IPv4 flags/fragment-offset randomization (MF, DF, offset)
      store_be16(out.data() + 14 + 6,
                 static_cast<std::uint16_t>(
                     rng.next_u16() & (rng.chance(0.5) ? 0x3FFF : 0xFFFF)));
      break;
    case 2: {  // insert a VLAN tag between the MACs and the ethertype
      std::uint8_t tag[4] = {0x81, 0x00, rng.next_u8(), rng.next_u8()};
      if (rng.chance(0.3)) {
        tag[0] = 0x88;
        tag[1] = 0xA8;
      }
      out.insert(out.begin() + 12, tag, tag + 4);
      break;
    }
    case 3:  // IP identification flip (reassembly keying)
      store_be16(out.data() + 14 + 4, rng.next_u16());
      break;
    default:  // IHL nibble or total-length lies
      if (rng.chance(0.5))
        out[14] = static_cast<std::uint8_t>(0x40 | rng.below(16));
      else
        store_be16(out.data() + 14 + 2, rng.next_u16());
      break;
  }
  return out;
}

}  // namespace

std::string to_string(MutatorFamily f) {
  switch (f) {
    case MutatorFamily::kStunTlvSplice:
      return "stun-tlv-splice";
    case MutatorFamily::kStunLengthLie:
      return "stun-length-lie";
    case MutatorFamily::kRtpExtension:
      return "rtp-extension";
    case MutatorFamily::kRtcpReshuffle:
      return "rtcp-reshuffle";
    case MutatorFamily::kQuicHeaderFlip:
      return "quic-header-flip";
    case MutatorFamily::kVendorHeaderFlip:
      return "vendor-header-flip";
    case MutatorFamily::kFrameHeaderFlip:
      return "frame-header-flip";
    case MutatorFamily::kGenericBitFlip:
      return "generic-bit-flip";
    case MutatorFamily::kGenericTruncate:
      return "generic-truncate";
    case MutatorFamily::kGenericPrefix:
      return "generic-prefix";
    case MutatorFamily::kGenericSplice:
      return "generic-splice";
  }
  return "?";
}

const std::vector<MutatorFamily>& all_mutator_families() {
  static const std::vector<MutatorFamily> kAll = {
      MutatorFamily::kStunTlvSplice, MutatorFamily::kStunLengthLie,
      MutatorFamily::kRtpExtension,  MutatorFamily::kRtcpReshuffle,
      MutatorFamily::kQuicHeaderFlip, MutatorFamily::kVendorHeaderFlip,
      MutatorFamily::kFrameHeaderFlip,
      MutatorFamily::kGenericBitFlip, MutatorFamily::kGenericTruncate,
      MutatorFamily::kGenericPrefix,  MutatorFamily::kGenericSplice,
  };
  return kAll;
}

Bytes mutate(MutatorFamily family, BytesView seed, BytesView other,
             Rng& rng) {
  switch (family) {
    case MutatorFamily::kStunTlvSplice:
      return mutate_stun_tlv(seed, rng);
    case MutatorFamily::kStunLengthLie:
      return mutate_stun_length(seed, rng);
    case MutatorFamily::kRtpExtension:
      return mutate_rtp_extension(seed, rng);
    case MutatorFamily::kRtcpReshuffle:
      return mutate_rtcp_reshuffle(seed, rng);
    case MutatorFamily::kQuicHeaderFlip:
      return mutate_quic_header(seed, rng);
    case MutatorFamily::kVendorHeaderFlip:
      return mutate_vendor_header(seed, rng);
    case MutatorFamily::kFrameHeaderFlip:
      return mutate_frame_header(seed, rng);
    case MutatorFamily::kGenericBitFlip:
      return flip_bits(seed, rng, 8);
    case MutatorFamily::kGenericTruncate:
      return truncate(seed, rng);
    case MutatorFamily::kGenericPrefix:
      return prefix(seed, rng);
    case MutatorFamily::kGenericSplice:
      return splice(seed, other, rng);
  }
  return to_bytes(seed);
}

const std::vector<std::size_t>& batch_boundary_counts() {
  // 0/1 exercise the empty batch and the fused per-datagram path;
  // 255/256/257 straddle the default vector size (partial final
  // vector, exact fit, one-packet spill); 4095 is one short of the
  // kMaxAnchorBlocks * 64 staging ceiling on a single payload and, as
  // a datagram count, 16 vectors with a one-short final vector.
  static const std::vector<std::size_t> kCounts = {0, 1, 255, 256, 257, 4095};
  return kCounts;
}

std::vector<Bytes> mutate_batch_boundary(const std::vector<Bytes>& seed,
                                         std::size_t count, Rng& rng) {
  std::vector<Bytes> out;
  if (seed.empty() || count == 0) return out;
  out.reserve(count);
  const std::size_t start = rng.below(seed.size());
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(seed[(start + i) % seed.size()]);
  return out;
}

const std::vector<std::size_t>& stream_chunk_sizes() {
  // The sizes the stream-parity oracle's chunked-reader sweep actually
  // reads at (beyond the degenerate 1/7), so shaped record boundaries
  // land exactly on real read boundaries.
  static const std::vector<std::size_t> kSizes = {256, 4096};
  return kSizes;
}

std::vector<Bytes> mutate_stream_chunk_boundary(
    const std::vector<Bytes>& seed, std::size_t chunk_bytes, Rng& rng) {
  // Encoded size of one oracle frame before its UDP payload: 16-byte
  // pcap record header + 14 Ethernet + 20 IPv4 + 8 UDP. Must match
  // net::build_frame over oracle-style IPv4 specs.
  constexpr std::size_t kRecordOverhead = 16 + 14 + 20 + 8;
  constexpr std::size_t kGlobalHeader = 24;
  std::vector<Bytes> out;
  if (seed.empty() || chunk_bytes < 2) return out;
  static constexpr std::size_t kDeltas[] = {0, 1, 2};  // end at b-1, b, b+1
  const std::size_t start = rng.below(seed.size());
  std::size_t cum = kGlobalHeader;
  for (std::size_t i = 0; i < 9; ++i) {
    const Bytes& src = seed[(start + i) % seed.size()];
    // Aim the record end at the next read boundary that leaves room for
    // the fixed headers, offset by -1 / 0 / +1 bytes in turn.
    const std::size_t boundary =
        ((cum + kRecordOverhead) / chunk_bytes + 1) * chunk_bytes;
    const std::size_t len =
        boundary - 1 + kDeltas[i % 3] - cum - kRecordOverhead;
    Bytes d(len);
    for (std::size_t j = 0; j < len; ++j)
      d[j] = src.empty() ? rng.next_u8() : src[j % src.size()];
    cum += kRecordOverhead + d.size();
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace rtcc::testkit
