// Deterministic structure-aware fuzz driver.
//
// One iteration = pick a seed family and a mutator family (both cycle
// so the cross product gets even coverage), build a well-formed seed,
// mutate it, and run the buffer oracles. Every `stream_stride`-th
// iteration additionally builds a whole seed stream, mutates a few of
// its datagrams, and runs the heavier stream oracles (differential DPI,
// arena/pcap parity, checker idempotence) plus the strict-subset oracle
// on the clean stream.
//
// Everything is a pure function of DriverOptions::seed, so any finding
// reproduces from its (seed, iteration) pair; findings are additionally
// minimized (greedy datagram drop + per-datagram chunk removal) and can
// be saved as hex corpus files for check-in as regression tests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace rtcc::testkit {

struct DriverOptions {
  std::uint64_t seed = 1;
  std::uint64_t iters = 2000;
  /// Run the stream-level oracles every Nth iteration (they cost ~two
  /// orders of magnitude more than the buffer oracles).
  std::uint64_t stream_stride = 25;
  /// Datagrams per fuzzed stream. Must satisfy the stream validators'
  /// support thresholds (>= 4 keeps every family comfortably valid).
  std::size_t stream_len = 6;
  /// Stop collecting (but keep iterating) after this many distinct
  /// findings; duplicates of an already-seen violation are not re-kept.
  std::size_t max_findings = 8;
  /// When non-empty, minimized findings are saved here as .hex files.
  std::string corpus_dir;
};

/// One oracle violation with its minimized reproducer.
struct FuzzFinding {
  std::string description;
  std::string mutator;
  std::string seed_family;
  std::uint64_t iteration = 0;
  std::vector<rtcc::util::Bytes> datagrams;
};

struct DriverStats {
  std::uint64_t iterations = 0;
  std::uint64_t buffer_checks = 0;
  std::uint64_t stream_checks = 0;
  std::uint64_t strict_subset_checks = 0;
  std::map<std::string, std::uint64_t> mutations_per_family;
  std::vector<FuzzFinding> findings;
};

[[nodiscard]] DriverStats run_fuzz_driver(const DriverOptions& opts);

/// Corpus files: '#'-prefixed comment lines, then one lowercase-hex
/// datagram per line.
[[nodiscard]] std::optional<std::vector<rtcc::util::Bytes>> load_corpus_file(
    const std::string& path, std::string* error = nullptr);
[[nodiscard]] bool save_corpus_file(const std::string& path,
                                    const FuzzFinding& finding);
/// Deterministic corpus file name for a finding (content-hashed).
[[nodiscard]] std::string corpus_file_name(const FuzzFinding& finding);
/// All *.hex files under `dir`, sorted by name (empty if unreadable).
[[nodiscard]] std::vector<std::string> list_corpus_files(
    const std::string& dir);

/// Replays one corpus entry through the buffer oracles (per datagram)
/// and the stream oracles (whole entry). nullopt = all oracles hold.
[[nodiscard]] std::optional<std::string> replay_corpus_entry(
    const std::vector<rtcc::util::Bytes>& datagrams);

}  // namespace rtcc::testkit
