// Golden-corpus conformance snapshots.
//
// The full 6-app × 3-network matrix is emulated and analyzed at a small
// fixed scale and every CallAnalysis is serialized to JSON. The result
// is a pure function of the code: any behavioural change in the
// emulator, filter, DPI or checker shows up as a byte-level diff
// against the checked-in snapshot, and intentional changes are absorbed
// with `fuzz_driver --update-golden`.
//
// Determinism is asserted directly: every check computes the matrix
// twice and fails on any difference between the two runs before ever
// comparing against the file.
#pragma once

#include <optional>
#include <string>

namespace rtcc::testkit {

struct GoldenOptions {
  double media_scale = 0.01;
  double call_s = 45.0;
  double pre_call_s = 5.0;
  double post_call_s = 5.0;
  bool background = true;
  std::uint64_t seed = 2026;
};

/// JSON object keyed "app|network" (sorted), one CallAnalysis each.
[[nodiscard]] std::string compute_golden_json(const GoldenOptions& opts = {});

/// Computes the matrix twice, asserts the two runs are byte-identical,
/// then compares against the snapshot at `path`. nullopt = match.
[[nodiscard]] std::optional<std::string> check_golden(
    const std::string& path, const GoldenOptions& opts = {});

/// Rewrites the snapshot (still asserting two-run determinism first).
/// Returns an error description on failure.
[[nodiscard]] std::optional<std::string> update_golden(
    const std::string& path, const GoldenOptions& opts = {});

// ---- report-surface golden ----------------------------------------------
//
// The matrix golden above pins the *numbers*; this second snapshot pins
// the *rendering surface*: the AppResults JSON schema (report/
// json_export) and the ASCII table renderers, over a small fixed
// experiment. Any schema change — a renamed key, reordered field,
// altered table layout — diffs here even when every number is
// unchanged. Refresh intentionally with `fuzz_driver
// --update-report-golden`.

struct ReportGoldenOptions {
  double media_scale = 0.01;
  double call_s = 30.0;
  double pre_call_s = 5.0;
  double post_call_s = 5.0;
  std::uint64_t seed = 77;
};

/// AppResults JSON for a 3-app slice, followed by rendered Tables 1
/// and 3 (section markers between the parts).
[[nodiscard]] std::string compute_report_golden(
    const ReportGoldenOptions& opts = {});

/// Computes twice (determinism), then compares against `path`.
[[nodiscard]] std::optional<std::string> check_report_golden(
    const std::string& path, const ReportGoldenOptions& opts = {});

[[nodiscard]] std::optional<std::string> update_report_golden(
    const std::string& path, const ReportGoldenOptions& opts = {});

}  // namespace rtcc::testkit
