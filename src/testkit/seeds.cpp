#include "testkit/seeds.hpp"

#include <algorithm>

#include "emul/app_model.hpp"
#include "net/stream_table.hpp"
#include "proto/quic/quic.hpp"
#include "proto/rtcp/rtcp.hpp"
#include "proto/rtp/rtp.hpp"
#include "proto/stun/stun.hpp"

namespace rtcc::testkit {

using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;
using rtcc::util::Rng;
using rtcc::util::store_be16;

namespace stun = rtcc::proto::stun;
namespace rtp = rtcc::proto::rtp;
namespace rtcp = rtcc::proto::rtcp;
namespace quic = rtcc::proto::quic;

std::string to_string(SeedFamily f) {
  switch (f) {
    case SeedFamily::kStun:
      return "stun";
    case SeedFamily::kChannelData:
      return "channel-data";
    case SeedFamily::kRtp:
      return "rtp";
    case SeedFamily::kRtcp:
      return "rtcp";
    case SeedFamily::kQuic:
      return "quic";
    case SeedFamily::kVendorZoom:
      return "vendor-zoom";
    case SeedFamily::kVendorFaceTime:
      return "vendor-facetime";
    case SeedFamily::kEmulated:
      return "emulated";
    case SeedFamily::kFrame:
      return "frame";
  }
  return "?";
}

const std::vector<SeedFamily>& all_seed_families() {
  static const std::vector<SeedFamily> kAll = {
      SeedFamily::kStun,       SeedFamily::kChannelData,
      SeedFamily::kRtp,        SeedFamily::kRtcp,
      SeedFamily::kQuic,       SeedFamily::kVendorZoom,
      SeedFamily::kVendorFaceTime, SeedFamily::kEmulated,
      SeedFamily::kFrame,
  };
  return kAll;
}

namespace {

Bytes make_stun_seed(Rng& rng) {
  static constexpr std::uint16_t kTypes[] = {
      stun::kBindingRequest,   stun::kBindingSuccess,
      stun::kBindingIndication, stun::kAllocateRequest,
      stun::kAllocateSuccess,  stun::kRefreshRequest,
      stun::kSendIndication,   stun::kCreatePermissionRequest,
      stun::kChannelBindRequest,
  };
  stun::MessageBuilder b(kTypes[rng.below(std::size(kTypes))]);
  b.random_transaction_id(rng);
  if (rng.chance(0.5)) b.attribute_str(stun::attr::kUsername, "fuzz:seed");
  if (rng.chance(0.4))
    b.attribute_u32(stun::attr::kPriority, rng.next_u32());
  if (rng.chance(0.4)) {
    const auto ip = rtcc::net::IpAddr::v4(rng.next_u32());
    b.xor_address(stun::attr::kXorMappedAddress, ip, rng.next_u16());
  }
  if (rng.chance(0.3)) b.attribute_str(stun::attr::kSoftware, "rtcc/测试");
  if (rng.chance(0.3))
    b.attribute_u32(stun::attr::kLifetime, 600);
  if (rng.chance(0.5)) b.fingerprint();
  return b.build();
}

Bytes make_channel_data_seed(Rng& rng, std::uint16_t channel) {
  stun::ChannelData cd;
  cd.channel_number = channel;
  cd.data = rng.bytes(8 + rng.below(64));
  cd.length = static_cast<std::uint16_t>(cd.data.size());
  return stun::encode_channel_data(cd);
}

Bytes make_rtp_seed(Rng& rng, std::uint32_t ssrc, std::uint16_t seq) {
  rtp::PacketBuilder b;
  b.payload_type(static_cast<std::uint8_t>(rng.chance(0.5) ? 0 : 8))
      .marker(rng.chance(0.1))
      .seq(seq)
      .timestamp(seq * 160u)
      .ssrc(ssrc);
  if (rng.chance(0.3)) {
    b.one_byte_extension();
    const Bytes ext = rng.bytes(1 + rng.below(4));
    b.element(static_cast<std::uint8_t>(1 + rng.below(14)), BytesView{ext});
  } else if (rng.chance(0.2)) {
    b.two_byte_extension(static_cast<std::uint8_t>(rng.below(16)));
    const Bytes ext = rng.bytes(rng.below(6));
    // ID 0 is wire-reserved as padding in the two-byte form: an element
    // encoded with it can never re-parse (the fuzz harness caught this
    // as a strict-subset violation; see tests/corpus).
    b.element(static_cast<std::uint8_t>(1 + rng.below(255)), BytesView{ext});
  }
  b.payload_fill(static_cast<std::uint8_t>(rng.next_u8()),
                 20 + rng.below(80));
  return b.build();
}

Bytes make_rtcp_seed(Rng& rng, std::uint32_t ssrc) {
  rtcp::Compound c;
  rtcp::SenderReport sr;
  sr.sender_ssrc = ssrc;
  sr.ntp_timestamp = rng.next_u64();
  sr.rtp_timestamp = rng.next_u32();
  sr.packet_count = rng.next_u32() & 0xFFFF;
  sr.octet_count = rng.next_u32() & 0xFFFFF;
  if (rng.chance(0.6)) {
    rtcp::ReportBlock rb;
    rb.ssrc = rng.next_u32();
    rb.highest_seq = rng.next_u32() & 0xFFFF;
    sr.reports.push_back(rb);
  }
  c.packets.push_back(rtcp::make_sender_report(sr));
  if (rng.chance(0.7)) {
    rtcp::Sdes sdes;
    rtcp::SdesChunk chunk;
    chunk.ssrc = ssrc;
    rtcp::SdesItem item;
    item.type = 1;  // CNAME
    const Bytes name = rng.bytes(4 + rng.below(12));
    item.value = name;
    chunk.items.push_back(item);
    sdes.chunks.push_back(chunk);
    c.packets.push_back(rtcp::make_sdes(sdes));
  }
  if (rng.chance(0.3)) {
    rtcp::Feedback fb;
    fb.sender_ssrc = ssrc;
    fb.media_ssrc = rng.next_u32();
    fb.fci = rng.bytes(4);
    c.packets.push_back(rtcp::make_feedback(
        rtcp::kRtpFeedback, static_cast<std::uint8_t>(1), fb));
  }
  return rtcp::encode_compound(c);
}

Bytes make_quic_seed(Rng& rng, bool long_form) {
  quic::ConnectionId dcid{rng.bytes(8)};
  quic::ConnectionId scid{rng.bytes(8)};
  const Bytes payload = rng.bytes(20 + rng.below(100));
  if (long_form) {
    static constexpr quic::LongType kTypes[] = {
        quic::LongType::kInitial, quic::LongType::kZeroRtt,
        quic::LongType::kHandshake};
    return quic::encode_long(kTypes[rng.below(std::size(kTypes))],
                             quic::kVersion1, dcid, scid,
                             BytesView{payload});
  }
  return quic::encode_short(dcid, BytesView{payload}, rng.chance(0.5));
}

/// Zoom SFU+media framing (§5.3, proto/vendor/vendor_headers.cpp):
/// direction(1) media_id(4) reserved(7) counter(4) type(1) subtype(1)
/// embedded_len(2) timestamp(4) [+4 inner wrapper], then the embedded
/// standard message.
Bytes make_zoom_seed(Rng& rng) {
  const bool wrapped = rng.chance(0.3);
  const Bytes inner = make_rtp_seed(rng, rng.next_u32(), rng.next_u16());
  ByteWriter w;
  w.u8(wrapped ? (rng.chance(0.5) ? 0x01 : 0x05)
               : (rng.chance(0.5) ? 0x00 : 0x04));
  w.u32(rng.next_u32());  // media_id
  w.fill(0, 7);           // reserved
  w.u32(rng.next_u32());  // counter
  if (wrapped) {
    w.u8(7);
    w.u8(rng.chance(0.5) ? 15 : 16);  // inner type
  } else {
    w.u8(rng.chance(0.5) ? 15 : 16);
    w.u8(0);  // subtype
  }
  w.u16(static_cast<std::uint16_t>(inner.size()));
  w.u32(rng.next_u32());        // timestamp
  if (wrapped) w.fill(0, 4);    // inner wrapper
  w.raw(BytesView{inner});
  return std::move(w).take();
}

/// One IPv4 fragment (first or non-first) of the UDP datagram carried
/// in the Ethernet frame `eth` — the wire image whose leading payload
/// bytes must NOT be read as a UDP header.
Bytes make_fragment_frame(const Bytes& eth, Rng& rng) {
  if (eth.size() < 42) return eth;     // want 14 L2 + 20 IP + 8+ L4
  const std::size_t l4_size = eth.size() - 34;
  const std::size_t max_units = (l4_size - 1) / 8;
  if (max_units == 0) return eth;
  const std::size_t cut = 8 * (1 + rng.below(max_units));
  const bool first = rng.chance(0.5);
  const std::size_t off = first ? 0 : cut;
  const std::size_t end = first ? cut : l4_size;
  Bytes out(eth.begin(), eth.begin() + 34);  // L2 + IP header
  out.insert(out.end(), eth.begin() + 34 + static_cast<std::ptrdiff_t>(off),
             eth.begin() + 34 + static_cast<std::ptrdiff_t>(end));
  std::uint8_t* ip = out.data() + 14;
  store_be16(ip + 2, static_cast<std::uint16_t>(20 + (end - off)));
  store_be16(ip + 4, rng.next_u16());  // IP identification
  const bool more = end < l4_size;
  store_be16(ip + 6,
             static_cast<std::uint16_t>((more ? 0x2000u : 0u) | (off / 8)));
  store_be16(ip + 10, 0);
  store_be16(ip + 10, rtcc::net::internet_checksum(BytesView{ip, 20}));
  return out;
}

/// Full L2 frames for the frame-decode oracle: the same message wrapped
/// the ways real captures wrap it (VLAN/QinQ tags, Linux cooked v1/v2,
/// raw IP, an IPv4 fragment) instead of only clean Ethernet.
Bytes make_frame_seed(Rng& rng) {
  rtcc::net::FrameSpec spec;
  spec.src = rtcc::net::IpAddr::v4(0xC0000200u + 1 + rng.below(120));
  spec.dst = rtcc::net::IpAddr::v4(0xC0000200u + 1 + rng.below(120));
  spec.src_port = static_cast<std::uint16_t>(1024 + rng.below(60000));
  spec.dst_port = static_cast<std::uint16_t>(1024 + rng.below(60000));
  const Bytes payload =
      rng.chance(0.5) ? make_stun_seed(rng)
                      : make_rtp_seed(rng, rng.next_u32(), rng.next_u16());
  const Bytes eth = rtcc::net::build_frame(spec, BytesView{payload});

  switch (rng.below(7)) {
    case 0:
      return eth;
    case 1: {  // 802.1Q tag between the MACs and the ethertype
      Bytes out(eth.begin(), eth.begin() + 12);
      const std::uint8_t tag[4] = {0x81, 0x00, rng.next_u8(), rng.next_u8()};
      out.insert(out.end(), tag, tag + 4);
      out.insert(out.end(), eth.begin() + 12, eth.end());
      return out;
    }
    case 2: {  // QinQ: 802.1ad service tag + 802.1Q customer tag
      Bytes out(eth.begin(), eth.begin() + 12);
      const std::uint8_t tags[8] = {0x88, 0xA8, rng.next_u8(), rng.next_u8(),
                                    0x81, 0x00, rng.next_u8(), rng.next_u8()};
      out.insert(out.end(), tags, tags + 8);
      out.insert(out.end(), eth.begin() + 12, eth.end());
      return out;
    }
    case 3: {  // Linux cooked v1 (`tcpdump -i any`)
      ByteWriter w;
      w.u16(0);        // packet type: unicast to us
      w.u16(1);        // ARPHRD_ETHER
      w.u16(6);        // link address length
      w.fill(0x02, 6); // link address
      w.fill(0, 2);    // padding
      w.u16(0x0800);   // protocol
      w.raw(BytesView{eth}.subspan(14));
      return std::move(w).take();
    }
    case 4: {  // Linux cooked v2
      ByteWriter w;
      w.u16(0x0800);   // protocol (first in v2)
      w.u16(0);        // reserved
      w.u32(2);        // ifindex
      w.u16(1);        // ARPHRD_ETHER
      w.u8(0);         // packet type
      w.u8(6);         // link address length
      w.fill(0x02, 6); // link address
      w.fill(0, 2);    // padding
      w.raw(BytesView{eth}.subspan(14));
      return std::move(w).take();
    }
    case 5:  // bare IP (LINKTYPE_RAW, rvictl-style)
      return Bytes(eth.begin() + 14, eth.end());
    default:
      return make_fragment_frame(eth, rng);
  }
}

/// FaceTime 0x6000 relay envelope: magic(2) declared_len(2) opaque
/// extra bytes, then an embedded STUN message filling the remainder.
Bytes make_facetime_seed(Rng& rng) {
  const Bytes inner = make_stun_seed(rng);
  const std::size_t extra = 4 + rng.below(12);
  ByteWriter w;
  w.u16(0x6000);
  w.u16(static_cast<std::uint16_t>(extra + inner.size()));
  w.raw(BytesView{rng.bytes(extra)});
  w.raw(BytesView{inner});
  return std::move(w).take();
}

}  // namespace

Bytes make_seed(SeedFamily family, Rng& rng) {
  switch (family) {
    case SeedFamily::kStun:
      return make_stun_seed(rng);
    case SeedFamily::kChannelData:
      return make_channel_data_seed(
          rng, static_cast<std::uint16_t>(0x4000 + rng.below(0x1000)));
    case SeedFamily::kRtp:
      return make_rtp_seed(rng, rng.next_u32(), rng.next_u16());
    case SeedFamily::kRtcp:
      return make_rtcp_seed(rng, rng.next_u32());
    case SeedFamily::kQuic:
      return make_quic_seed(rng, rng.chance(0.7));
    case SeedFamily::kVendorZoom:
      return make_zoom_seed(rng);
    case SeedFamily::kVendorFaceTime:
      return make_facetime_seed(rng);
    case SeedFamily::kEmulated: {
      const auto& pool = emulator_seed_pool();
      return pool.empty() ? make_stun_seed(rng)
                          : pool[rng.below(pool.size())];
    }
    case SeedFamily::kFrame:
      return make_frame_seed(rng);
  }
  return {};
}

SeedStream make_seed_stream(SeedFamily family, Rng& rng, std::size_t n) {
  SeedStream s;
  s.family = family;
  s.datagrams.reserve(n);
  switch (family) {
    case SeedFamily::kChannelData: {
      // Real TURN channels repeat stream-wide (the scanning validator
      // requires support >= 2); emit every datagram on one channel.
      const auto channel =
          static_cast<std::uint16_t>(0x4000 + rng.below(0x1000));
      for (std::size_t i = 0; i < n; ++i)
        s.datagrams.push_back(make_channel_data_seed(rng, channel));
      break;
    }
    case SeedFamily::kRtp: {
      // Sequential numbers on one SSRC so the continuity validator
      // accepts the stream (min_ssrc_support plus adjacent gaps).
      const std::uint32_t ssrc = rng.next_u32();
      const std::uint16_t base = rng.next_u16();
      for (std::size_t i = 0; i < n; ++i)
        s.datagrams.push_back(make_rtp_seed(
            rng, ssrc, static_cast<std::uint16_t>(base + i)));
      break;
    }
    case SeedFamily::kRtcp: {
      // Repeated sender SSRC (rtcp_ssrc_support >= 2).
      const std::uint32_t ssrc = rng.next_u32();
      for (std::size_t i = 0; i < n; ++i)
        s.datagrams.push_back(make_rtcp_seed(rng, ssrc));
      break;
    }
    case SeedFamily::kQuic:
      // Long-header handshake first (quic_long_support >= 2), then
      // short-header 1-RTT traffic.
      for (std::size_t i = 0; i < n; ++i)
        s.datagrams.push_back(make_quic_seed(rng, i < 2 || i + 1 == n));
      break;
    default:
      for (std::size_t i = 0; i < n; ++i)
        s.datagrams.push_back(make_seed(family, rng));
      break;
  }
  return s;
}

const std::vector<Bytes>& emulator_seed_pool() {
  static const std::vector<Bytes> kPool = [] {
    std::vector<Bytes> pool;
    for (const auto app : rtcc::emul::all_apps()) {
      rtcc::emul::CallConfig cfg;
      cfg.app = app;
      cfg.network = rtcc::emul::NetworkSetup::kWifiRelay;
      cfg.media_scale = 0.01;
      cfg.call_s = 20.0;
      cfg.pre_call_s = 10.0;
      cfg.post_call_s = 5.0;
      cfg.background = false;
      cfg.seed = 0x5eed + static_cast<std::uint64_t>(app);
      const auto call = rtcc::emul::emulate_call(cfg);
      const auto table = rtcc::net::group_streams(call.trace);
      std::size_t taken = 0;
      for (const auto& stream : table.streams) {
        if (stream.key.transport != rtcc::net::Transport::kUdp) continue;
        for (const auto& pkt : stream.packets) {
          if (taken >= 48) break;  // ~48 payloads per app is plenty
          const auto payload = rtcc::net::packet_payload(call.trace, pkt);
          if (payload.size() < 8) continue;
          pool.emplace_back(payload.begin(), payload.end());
          ++taken;
        }
      }
    }
    return pool;
  }();
  return kPool;
}

}  // namespace rtcc::testkit
