#include "testkit/oracles.hpp"

#include <algorithm>
#include <sstream>

#include "compliance/checker.hpp"
#include "dpi/anchor_scan.hpp"
#include "dpi/scanning_dpi.hpp"
#include "dpi/strict_dpi.hpp"
#include "dpi/simd_dispatch.hpp"
#include "net/arena.hpp"
#include "net/headers.hpp"
#include "net/packet_batch.hpp"
#include "net/pcap.hpp"
#include "proto/demux.hpp"
#include "proto/quic/quic.hpp"
#include "proto/rtcp/rtcp.hpp"
#include "proto/rtp/rtp.hpp"
#include "proto/stun/stun.hpp"
#include "proto/tls/client_hello.hpp"
#include "proto/vendor/vendor_headers.hpp"
#include "report/json_export.hpp"
#include "report/metrics.hpp"
#include "stream/chunk_reader.hpp"
#include "stream/engine.hpp"
#include "stream/stream_mode.hpp"

namespace rtcc::testkit {

namespace {

using rtcc::util::Bytes;
using rtcc::util::BytesView;

/// Exact dyadic timestamps (multiples of 1/64 s) survive the pcap
/// µs quantisation bit-for-bit, so encode→decode→encode comparisons
/// never trip over timestamp rounding.
double ts_for(std::size_t i) { return static_cast<double>(i) * 0.015625; }

std::vector<rtcc::dpi::StreamDatagram> as_stream(
    const std::vector<Bytes>& datagrams, bool alternate_dir) {
  std::vector<rtcc::dpi::StreamDatagram> out;
  out.reserve(datagrams.size());
  for (std::size_t i = 0; i < datagrams.size(); ++i)
    out.push_back({BytesView{datagrams[i]}, ts_for(i),
                   alternate_dir ? static_cast<int>(i & 1) : 0});
  return out;
}

std::optional<std::string> compare_analyses(
    const std::vector<rtcc::dpi::DatagramAnalysis>& a,
    const std::vector<rtcc::dpi::DatagramAnalysis>& b, const char* a_name,
    const char* b_name) {
  std::ostringstream err;
  if (a.size() != b.size()) {
    err << a_name << " produced " << a.size() << " analyses, " << b_name
        << " produced " << b.size();
    return err.str();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    const auto fail = [&](const char* what) {
      err << "datagram " << i << ": " << a_name << " vs " << b_name
          << " disagree on " << what;
      return err.str();
    };
    if (x.klass != y.klass) return fail("class");
    if (x.proprietary_header_len != y.proprietary_header_len)
      return fail("proprietary_header_len");
    if (x.payload_len != y.payload_len) return fail("payload_len");
    if (x.candidates != y.candidates) return fail("candidates");
    if (x.messages.size() != y.messages.size()) return fail("message count");
    for (std::size_t m = 0; m < x.messages.size(); ++m) {
      const auto& mx = x.messages[m];
      const auto& my = y.messages[m];
      if (mx.kind != my.kind) return fail("message kind");
      if (mx.offset != my.offset) return fail("message offset");
      if (mx.length != my.length) return fail("message length");
      if (mx.type_label() != my.type_label()) return fail("message type label");
      if (mx.raw != my.raw) return fail("message raw bytes");
    }
  }
  return std::nullopt;
}

/// Independent scalar re-implementation of the anchor conditions in
/// dpi/anchor_scan.hpp (the tail-loop rules applied at every offset).
/// Deliberately written against the *documented* conditions, not the
/// SIMD code, so it can catch both scalar and vector-path regressions.
void reference_anchor_scan(BytesView payload, const rtcc::dpi::ScanOptions& opts,
                           std::vector<rtcc::dpi::AnchorHit>& out) {
  namespace anchor = rtcc::dpi::anchor;
  namespace stun = rtcc::proto::stun;
  namespace quic = rtcc::proto::quic;
  const std::size_t n = payload.size();
  const std::size_t limit = std::min(opts.max_offset + 1, n);
  const std::uint8_t* p = payload.data();
  for (std::size_t i = 0; i < limit; ++i) {
    const std::uint8_t b0 = p[i];
    const std::size_t rem = n - i;
    std::uint8_t mask = 0;
    switch (b0 >> 6) {
      case 2: {
        const std::uint8_t pt = rem >= 2 ? p[i + 1] : 0;
        const bool rtcp_pt = pt >= 200 && pt <= 207;
        // Full RTP header fit, incl. the extension words when present
        // (independently restated from dpi::rtp_header_fits).
        std::size_t need = 12 + 4 * (b0 & 0x0F);
        bool fits = need <= rem;
        if (fits && (b0 & 0x10) != 0) {
          need += 4;
          fits = need <= rem &&
                 need + 4 * std::size_t{rtcc::util::load_be16(
                                p + i + need - 2)} <=
                     rem;
        }
        if (opts.scan_rtp && !rtcp_pt && fits) mask |= anchor::kRtp;
        else if (opts.scan_rtcp && rtcp_pt && rem >= 8) mask |= anchor::kRtcp;
        break;
      }
      case 0:
        if (opts.scan_stun && rem >= stun::kHeaderSize) {
          const bool modern =
              rtcc::util::load_be32(p + i + 4) == stun::kMagicCookie;
          const bool classic_fit =
              stun::kHeaderSize +
                  std::size_t{rtcc::util::load_be16(p + i + 2)} ==
              rem;
          if (modern || classic_fit) mask |= anchor::kStun;
        }
        break;
      case 1:
        if (opts.scan_stun && b0 <= 0x4F && rem >= 4 &&
            4 + std::size_t{rtcc::util::load_be16(p + i + 2)} <= rem)
          mask |= anchor::kChannelData;
        if (opts.scan_quic && i == 0) mask |= anchor::kQuicShort;
        break;
      default:  // 3
        if (opts.scan_quic && rem >= 5 &&
            rtcc::util::load_be32(p + i + 1) == quic::kVersion1)
          mask |= anchor::kQuicLong;
        break;
    }
    if (mask) out.push_back({static_cast<std::uint32_t>(i), mask});
  }
}

net::FrameSpec oracle_frame_spec() {
  net::FrameSpec spec;
  spec.src = net::IpAddr::v4(10, 0, 0, 1);
  spec.dst = net::IpAddr::v4(10, 0, 0, 2);
  spec.src_port = 40000;
  spec.dst_port = 3478;
  spec.transport = net::Transport::kUdp;
  return spec;
}

/// UDP payload length field is 16-bit; anything bigger cannot be framed.
constexpr std::size_t kMaxFramePayload = 60000;

std::optional<std::string> compare_traces(const net::Trace& a,
                                          const net::Trace& b,
                                          const char* a_name,
                                          const char* b_name) {
  std::ostringstream err;
  if (a.size() != b.size()) {
    err << a_name << " has " << a.size() << " frames, " << b_name << " has "
        << b.size();
    return err.str();
  }
  if (a.total_bytes() != b.total_bytes()) {
    err << a_name << " total_bytes " << a.total_bytes() << " != " << b_name
        << " total_bytes " << b.total_bytes();
    return err.str();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.frames()[i].ts != b.frames()[i].ts) {
      err << "frame " << i << " ts differs between " << a_name << " and "
          << b_name;
      return err.str();
    }
    const BytesView va = a.frame_bytes(i);
    const BytesView vb = b.frame_bytes(i);
    if (va.size() != vb.size() ||
        !std::equal(va.begin(), va.end(), vb.begin())) {
      err << "frame " << i << " bytes differ between " << a_name << " and "
          << b_name;
      return err.str();
    }
  }
  return std::nullopt;
}

std::vector<compliance::CheckedMessage> run_checker(
    const std::vector<rtcc::dpi::StreamDatagram>& stream,
    const std::vector<rtcc::dpi::DatagramAnalysis>& analyses, int passes) {
  compliance::StreamComplianceChecker checker;
  for (std::size_t i = 0; i < analyses.size(); ++i)
    for (const auto& msg : analyses[i].messages)
      checker.observe(msg, stream[i].dir, stream[i].ts);
  checker.finalize();
  std::vector<compliance::CheckedMessage> out;
  for (int pass = 0; pass < passes; ++pass) {
    out.clear();
    for (std::size_t i = 0; i < analyses.size(); ++i)
      for (const auto& msg : analyses[i].messages) {
        auto checked = checker.check(msg, stream[i].dir, stream[i].ts);
        out.insert(out.end(), checked.begin(), checked.end());
      }
  }
  return out;
}

std::optional<std::string> compare_checked(
    const std::vector<compliance::CheckedMessage>& a,
    const std::vector<compliance::CheckedMessage>& b, const char* what) {
  std::ostringstream err;
  if (a.size() != b.size()) {
    err << what << ": " << a.size() << " vs " << b.size()
        << " checked messages";
    return err.str();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    const auto fail = [&](const char* field) {
      err << what << ": checked message " << i << " differs on " << field;
      return err.str();
    };
    if (x.protocol != y.protocol) return fail("protocol");
    if (x.type_label != y.type_label) return fail("type_label");
    if (x.ts != y.ts) return fail("ts");
    if (x.dir != y.dir) return fail("dir");
    if (x.verdict.compliant != y.verdict.compliant) return fail("compliant");
    if (x.verdict.violations.size() != y.verdict.violations.size())
      return fail("violation count");
    for (std::size_t v = 0; v < x.verdict.violations.size(); ++v) {
      if (x.verdict.violations[v].criterion != y.verdict.violations[v].criterion)
        return fail("violation criterion");
      if (x.verdict.violations[v].detail != y.verdict.violations[v].detail)
        return fail("violation detail");
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> parser_sweep(BytesView data) {
  namespace stun = rtcc::proto::stun;
  namespace rtp = rtcc::proto::rtp;
  namespace rtcp = rtcc::proto::rtcp;
  namespace quic = rtcc::proto::quic;
  namespace tls = rtcc::proto::tls;
  namespace vendor = rtcc::proto::vendor;
  std::ostringstream err;

  if (auto r = stun::parse(data)) {
    if (r->consumed > data.size()) return "stun: consumed > input size";
    if (r->consumed != r->message.wire_size())
      return "stun: consumed != wire_size()";
  }
  {
    stun::ParseOptions strict_opts;
    strict_opts.require_magic_cookie = true;
    if (auto r = stun::parse(data, strict_opts)) {
      if (!r->message.has_magic_cookie())
        return "stun: require_magic_cookie accepted a cookieless message";
    }
  }
  if (auto cd = stun::parse_channel_data(data)) {
    if (cd->wire_size() > data.size())
      return "channel_data: wire_size > input size";
    if (cd->data.size() != cd->length)
      return "channel_data: data.size() != declared length";
    if (cd->channel_number < 0x4000 || cd->channel_number > 0x4FFF)
      return "channel_data: channel number outside RFC 8656 range";
  }

  if (auto r = rtp::parse(data)) {
    if (r->consumed > data.size()) return "rtp: consumed > input size";
    if (r->packet.padding_len > data.size())
      return "rtp: padding_len > input size";
    // Re-encoding any accepted packet must be well-defined (crash/UB
    // detection is the sanitizers' job).
    (void)rtp::encode(r->packet);
  }

  if (auto c = rtcp::parse_compound(data)) {
    if (c->parsed_size() > data.size())
      return "rtcp: parsed_size > input size";
    if (c->packets.empty()) return "rtcp: empty compound accepted";
    for (const auto& p : c->packets) {
      if (p.version != 2) return "rtcp: accepted version != 2";
      if (!rtcp::is_rtcp_packet_type(p.packet_type))
        return "rtcp: accepted non-RTCP packet type";
      if (p.body.size() != std::size_t{p.length_words} * 4)
        return "rtcp: body size != declared length";
      // Typed decoders must survive any accepted packet.
      (void)rtcp::decode_sender_report(p);
      (void)rtcp::decode_receiver_report(p);
      (void)rtcp::decode_sdes(p);
      (void)rtcp::decode_bye(p);
      (void)rtcp::decode_app(p);
      (void)rtcp::decode_feedback(p);
      (void)rtcp::decode_xr(p);
    }
  }
  {
    rtcp::ParseOptions exact;
    exact.allow_trailing = false;
    if (auto c = rtcp::parse_compound(data, exact)) {
      if (!c->trailing.empty())
        return "rtcp: allow_trailing=false returned trailing bytes";
      if (c->parsed_size() != data.size())
        return "rtcp: allow_trailing=false accepted a non-exact fit";
    }
  }

  if (auto h = quic::parse(data)) {
    if (h->wire_size() > data.size()) return "quic: wire_size > input size";
    if (!h->long_form && h->wire_size() != data.size())
      return "quic: short header does not span the datagram";
  }
  if (auto v = quic::read_varint(data)) {
    if (v->width != 1 && v->width != 2 && v->width != 4 && v->width != 8)
      return "quic: varint width not in {1,2,4,8}";
    if (v->width > data.size()) return "quic: varint width > input size";
  }

  (void)tls::looks_like_tls_handshake(data);
  (void)tls::extract_sni(data);
  if (!data.empty())
    (void)rtcc::proto::to_string(rtcc::proto::classify_first_byte(data[0]));

  if (auto z = vendor::parse_zoom_header(data)) {
    if (z->header_size != 24 && z->header_size != 28)
      return "zoom: header_size not 24/28";
    if (z->header_size + z->embedded_length != data.size())
      return "zoom: embedded_length does not cover the remainder";
  }
  if (auto f = vendor::parse_facetime_header(data)) {
    if (f->header_size > data.size())
      return "facetime: header_size > input size";
    if (f->header_size < 8 || f->header_size > 19)
      return "facetime: header_size outside 8..19";
  }

  if (auto d = net::decode_frame(data)) {
    const std::uint8_t* lo = data.data();
    const std::uint8_t* hi = data.data() + data.size();
    if (!d->payload.empty() &&
        (d->payload.data() < lo || d->payload.data() + d->payload.size() > hi))
      return "decode_frame: payload view escapes the frame";
  }

  // Fail-soft pcap decode: whatever survives the magic check must keep
  // the capture-layer accounting honest.
  if (auto t = net::decode_pcap(data)) {
    const net::IngestStats& in = t->ingest();
    if (in.frames_seen != t->size())
      return "pcap: ingest.frames_seen != decoded frame count";
    if (in.torn_tail > 1)
      return "pcap: more than one torn-tail event in a single file";
    if (in.bad_usec > in.frames_seen || in.snaplen_clipped > in.frames_seen)
      return "pcap: per-record loss counters exceed frames_seen";
  }
  return std::nullopt;
}

std::optional<std::string> check_anchor_parity(BytesView payload) {
  const rtcc::dpi::ScanOptions opts;
  std::vector<rtcc::dpi::AnchorHit> simd;
  std::vector<rtcc::dpi::AnchorHit> ref;
  rtcc::dpi::scan_anchors(payload, opts, simd);
  reference_anchor_scan(payload, opts, ref);
  if (simd.size() != ref.size()) {
    std::ostringstream err;
    err << "anchor parity: scan_anchors found " << simd.size()
        << " hits, scalar reference found " << ref.size() << " (payload "
        << payload.size() << " bytes)";
    return err.str();
  }
  for (std::size_t i = 0; i < simd.size(); ++i) {
    if (simd[i].offset != ref[i].offset || simd[i].mask != ref[i].mask) {
      std::ostringstream err;
      err << "anchor parity: hit " << i << " differs: scan_anchors offset "
          << simd[i].offset << " mask " << int{simd[i].mask}
          << " vs reference offset " << ref[i].offset << " mask "
          << int{ref[i].mask};
      return err.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_scan_equivalence(
    const std::vector<Bytes>& datagrams) {
  const auto stream = as_stream(datagrams, /*alternate_dir=*/true);
  rtcc::dpi::ScanOptions anchored;
  anchored.use_anchor_prefilter = true;
  rtcc::dpi::ScanOptions naive;
  naive.use_anchor_prefilter = false;
  const auto a = rtcc::dpi::ScanningDpi(anchored).analyze_stream(stream);
  const auto b = rtcc::dpi::ScanningDpi(naive).analyze_stream(stream);
  return compare_analyses(a, b, "anchored", "naive");
}

std::optional<std::string> check_arena_parity(
    const std::vector<Bytes>& payloads) {
  const net::FrameSpec spec = oracle_frame_spec();

  net::Trace arena_trace(/*use_arena=*/true);
  net::Trace legacy_trace(/*use_arena=*/false);
  std::size_t kept = 0;
  for (const auto& payload : payloads) {
    if (payload.size() > kMaxFramePayload) continue;
    const double ts = ts_for(kept++);
    // The arena trace is built through the in-place arena writer, the
    // legacy one through the temporary-vector builder — this doubles as
    // the build_frame / build_frame_arena byte-parity check.
    arena_trace.add_frame(
        net::build_frame_arena(arena_trace.arena(), ts, spec, payload));
    legacy_trace.add_frame(ts, net::build_frame(spec, payload));
  }
  if (auto err = compare_traces(arena_trace, legacy_trace, "arena", "legacy"))
    return "arena parity: " + *err;

  const Bytes enc_arena = net::encode_pcap(arena_trace);
  const Bytes enc_legacy = net::encode_pcap(legacy_trace);
  if (enc_arena != enc_legacy)
    return "arena parity: encode_pcap bytes differ between modes";

  std::optional<net::Trace> dec_arena;
  std::optional<net::Trace> dec_legacy;
  {
    net::ArenaModeGuard guard(true);
    dec_arena = net::decode_pcap(enc_arena);
  }
  {
    net::ArenaModeGuard guard(false);
    dec_legacy = net::decode_pcap(enc_arena);
  }
  if (!dec_arena || !dec_legacy)
    return "arena parity: decode_pcap failed on encoder output";
  if (auto err = compare_traces(*dec_arena, *dec_legacy, "arena-decode",
                                "legacy-decode"))
    return "arena parity: " + *err;
  return std::nullopt;
}

std::optional<std::string> check_pcap_roundtrip(
    const std::vector<Bytes>& payloads) {
  const net::FrameSpec spec = oracle_frame_spec();
  net::Trace trace;
  std::size_t kept = 0;
  for (const auto& payload : payloads) {
    if (payload.size() > kMaxFramePayload) continue;
    trace.add_frame(ts_for(kept++), net::build_frame(spec, payload));
  }

  const Bytes e1 = net::encode_pcap(trace);
  std::string error;
  const auto d1 = net::decode_pcap(e1, &error);
  if (!d1) return "pcap roundtrip: decode_pcap rejected encoder output: " + error;
  if (auto err = compare_traces(trace, *d1, "original", "decoded"))
    return "pcap roundtrip: " + *err;
  const Bytes e2 = net::encode_pcap(*d1);
  if (e2 != e1) return "pcap roundtrip: encode(decode(x)) != x";

  // Capture-layer ingest accounting on a clean synthetic file: every
  // record intact, nothing torn, clipped, or clamped.
  const net::IngestStats& in = d1->ingest();
  if (in.frames_seen != d1->size())
    return "pcap roundtrip: ingest.frames_seen != decoded frame count";
  if (in.torn_tail != 0 || in.snaplen_clipped != 0 || in.bad_usec != 0)
    return "pcap roundtrip: loss counters nonzero on a clean capture";
  if (d1->linktype() != trace.linktype())
    return "pcap roundtrip: linktype not preserved";

  const auto dz = net::decode_pcap_zero_copy(e1);
  if (!dz) return "pcap roundtrip: zero-copy decode rejected encoder output";
  if (auto err = compare_traces(*d1, *dz, "decoded", "zero-copy"))
    return "pcap roundtrip: " + *err;
  if (!(dz->ingest() == in))
    return "pcap roundtrip: zero-copy ingest stats differ from copying decode";
  return std::nullopt;
}

std::optional<std::string> check_strict_subset(const SeedStream& stream) {
  switch (stream.family) {
    case SeedFamily::kStun:
    case SeedFamily::kChannelData:
    case SeedFamily::kRtp:
    case SeedFamily::kRtcp:
    case SeedFamily::kQuic:
      break;
    default:
      // Vendor / emulated streams carry no cross-datagram support
      // guarantees, so the subset relation is not a sound oracle there.
      return std::nullopt;
  }
  const auto datagrams = as_stream(stream.datagrams, /*alternate_dir=*/false);
  const auto strict = rtcc::dpi::StrictDpi().analyze_stream(datagrams);
  const auto scan = rtcc::dpi::ScanningDpi().analyze_stream(datagrams);
  std::ostringstream err;
  for (std::size_t i = 0; i < datagrams.size(); ++i) {
    // Seed-stream construction guarantees every datagram satisfies the
    // scanner's stream-level validators.
    if (scan[i].klass != rtcc::dpi::DatagramClass::kStandard) {
      err << "strict subset: " << to_string(stream.family) << " seed datagram "
          << i << " not standard under the scanning DPI ("
          << rtcc::dpi::to_string(scan[i].klass) << ")";
      return err.str();
    }
    if (strict[i].klass != rtcc::dpi::DatagramClass::kStandard) continue;
    if (strict[i].messages.empty() || scan[i].messages.empty()) {
      err << "strict subset: datagram " << i
          << " standard but message list empty";
      return err.str();
    }
    const auto& sm = strict[i].messages.front();
    const auto& cm = scan[i].messages.front();
    if (sm.offset != 0 || cm.offset != 0) {
      err << "strict subset: datagram " << i << " first message not at offset 0";
      return err.str();
    }
    if (sm.kind != cm.kind) {
      err << "strict subset: datagram " << i << " kind mismatch: strict "
          << rtcc::dpi::to_string(sm.kind) << " vs scanning "
          << rtcc::dpi::to_string(cm.kind);
      return err.str();
    }
    if (sm.type_label() != cm.type_label()) {
      err << "strict subset: datagram " << i << " type label mismatch: strict "
          << sm.type_label() << " vs scanning " << cm.type_label();
      return err.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_checker_idempotence(
    const std::vector<Bytes>& datagrams) {
  const auto stream = as_stream(datagrams, /*alternate_dir=*/true);
  const auto analyses = rtcc::dpi::ScanningDpi().analyze_stream(stream);
  const auto first = run_checker(stream, analyses, /*passes=*/1);
  const auto repeated = run_checker(stream, analyses, /*passes=*/2);
  if (auto err = compare_checked(first, repeated,
                                 "checker idempotence (re-check)"))
    return err;
  const auto rebuilt = run_checker(stream, analyses, /*passes=*/1);
  return compare_checked(first, rebuilt, "checker idempotence (re-run)");
}

std::optional<std::string> check_frame_decode(BytesView frame) {
  // Every declared linktype plus one nobody declares (DLT_USER0).
  static constexpr std::uint32_t kLinktypes[] = {
      net::kLinkNull,     net::kLinkEthernet, net::kLinkRaw,
      net::kLinkLinuxSll, net::kLinkSll2,     147};
  std::ostringstream err;
  for (const std::uint32_t lt : kLinktypes) {
    const std::string name = net::linktype_name(lt);
    const auto fail = [&](const char* what) {
      err << "frame decode (" << name << "): " << what;
      return err.str();
    };

    net::IngestStats s1;
    net::IngestStats s2;
    const auto a = net::decode_frame(frame, lt, &s1);
    const auto b = net::decode_frame(frame, lt, &s2);
    if (a.has_value() != b.has_value())
      return fail("decode_frame is non-deterministic");
    if (!(s1 == s2)) return fail("stats differ between identical calls");
    if (a) {
      if (a->src != b->src || a->dst != b->dst ||
          a->src_port != b->src_port || a->dst_port != b->dst_port ||
          a->transport != b->transport || a->is_v6 != b->is_v6 ||
          a->payload.size() != b->payload.size())
        return fail("decoded fields differ between identical calls");
      if (a->reassembled)
        return fail("stateless decode claimed a reassembled payload");
      const std::uint8_t* lo = frame.data();
      const std::uint8_t* hi = frame.data() + frame.size();
      if (!a->payload.empty() &&
          (a->payload.data() < lo ||
           a->payload.data() + a->payload.size() > hi))
        return fail("payload view escapes the frame");
    }

    // Exactly one outcome counter per call, and none of the capture- or
    // reassembly-layer counters from the stateless path.
    const std::uint64_t outcomes = s1.frames_decoded + s1.fragments_seen +
                                   s1.non_ip + s1.undecodable +
                                   s1.clipped_undecodable +
                                   s1.unsupported_linktype;
    if (outcomes != 1) {
      err << "frame decode (" << name << "): " << outcomes
          << " outcome counters booked for one call";
      return err.str();
    }
    if (s1.frames_decoded != (a ? 1u : 0u))
      return fail("frames_decoded disagrees with the returned value");
    if (s1.frames_seen != 0 || s1.torn_tail != 0 || s1.snaplen_clipped != 0 ||
        s1.bad_usec != 0 || s1.fragments_reassembled != 0 ||
        s1.fragments_expired != 0)
      return fail("stateless decode touched capture/reassembly counters");
    if (!net::linktype_supported(lt) && s1.unsupported_linktype != 1)
      return fail("unsupported linktype not counted as such");

    // The stateful decoder must agree on a single frame: one fragment
    // can never complete a datagram (a lone MF=0/offset=0 piece is not
    // a fragment at all), so reassembly cannot change the outcome.
    net::FrameDecoder decoder(lt);
    const auto d = decoder.decode(frame);
    decoder.finish();
    const net::IngestStats& ds = decoder.stats();
    if (d.has_value() != a.has_value())
      return fail("FrameDecoder disagrees with stateless decode_frame");
    if (ds.fragments_reassembled != 0)
      return fail("FrameDecoder reassembled a datagram from one fragment");
    const std::uint64_t booked =
        (ds.frames_decoded - ds.fragments_reassembled) + ds.fragments_seen +
        ds.non_ip + ds.undecodable + ds.clipped_undecodable +
        ds.unsupported_linktype;
    if (booked != 1) {
      err << "frame decode (" << name << "): FrameDecoder booked " << booked
          << " outcomes for one frame";
      return err.str();
    }
    if (ds.fragments_seen != ds.fragments_expired)
      return fail("fragment not expired by finish()");
    if (ds.vlan_stripped != s1.vlan_stripped)
      return fail("vlan_stripped disagrees between decode paths");
  }
  return std::nullopt;
}

std::optional<std::string> run_buffer_oracles(BytesView data) {
  if (auto err = parser_sweep(data)) return "parser_sweep: " + *err;
  if (auto err = check_anchor_parity(data)) return err;
  if (auto err = check_frame_decode(data)) return err;
  return std::nullopt;
}

std::optional<std::string> check_batch_parity(
    const std::vector<Bytes>& datagrams, std::size_t extra_size) {
  const auto stream = as_stream(datagrams, /*alternate_dir=*/true);
  const rtcc::dpi::ScanningDpi dpi;
  std::vector<std::size_t> sizes = {1, rtcc::net::kDefaultBatchSize};
  if (extra_size != 0) sizes.push_back(extra_size);
  std::optional<std::vector<rtcc::dpi::DatagramAnalysis>> base;
  std::size_t base_size = 0;
  for (const std::size_t size : sizes) {
    const rtcc::net::BatchModeGuard guard(size);
    auto got = dpi.analyze_stream(stream);
    if (!base) {
      base = std::move(got);
      base_size = size;
      continue;
    }
    const std::string a_name = "batch=" + std::to_string(base_size);
    const std::string b_name = "batch=" + std::to_string(size);
    if (auto err = compare_analyses(*base, got, a_name.c_str(),
                                    b_name.c_str()))
      return "batch parity: " + *err;
  }
  return std::nullopt;
}

std::optional<std::string> check_simd_parity(
    const std::vector<Bytes>& datagrams) {
  const auto stream = as_stream(datagrams, /*alternate_dir=*/true);
  const rtcc::dpi::ScanningDpi dpi;
  std::optional<std::vector<rtcc::dpi::DatagramAnalysis>> scalar;
  for (const auto level :
       {rtcc::dpi::SimdLevel::kScalar, rtcc::dpi::SimdLevel::kSse2,
        rtcc::dpi::SimdLevel::kAvx2, rtcc::dpi::SimdLevel::kNeon}) {
    if (!rtcc::dpi::simd_level_supported(level)) continue;
    const rtcc::dpi::SimdModeGuard guard(level);
    auto got = dpi.analyze_stream(stream);
    if (!scalar) {
      scalar = std::move(got);
      continue;
    }
    if (auto err = compare_analyses(*scalar, got, "scalar",
                                    rtcc::dpi::to_string(level).c_str()))
      return "simd parity: " + *err;
  }
  return std::nullopt;
}

namespace {

/// Spreads the datagrams round-robin over several bidirectional flows
/// (distinct port pairs; direction flips each lap) so flow-routed
/// execution modes (shards, the streaming flow table) see a populated
/// multi-flow working set. Empty when nothing frameable survives.
net::Trace multi_flow_trace(const std::vector<Bytes>& datagrams) {
  constexpr std::size_t kFlows = 8;
  const net::FrameSpec base = oracle_frame_spec();
  net::Trace trace;
  std::size_t kept = 0;
  for (const auto& payload : datagrams) {
    if (payload.size() > kMaxFramePayload) continue;
    const std::size_t flow = kept % kFlows;
    net::FrameSpec spec = base;
    spec.src_port = static_cast<std::uint16_t>(40000 + flow);
    spec.dst_port = static_cast<std::uint16_t>(20000 + flow);
    if ((kept / kFlows) % 2 == 1) {
      std::swap(spec.src, spec.dst);
      std::swap(spec.src_port, spec.dst_port);
    }
    trace.add_frame(ts_for(kept++), net::build_frame(spec, payload));
  }
  return trace;
}

/// A schedule window enclosing every oracle timestamp, no port/SNI
/// exclusions: the filter keeps all flows, so every execution mode's
/// hot path sees every stream.
rtcc::filter::FilterConfig keep_all_filter_config() {
  rtcc::filter::FilterConfig fcfg;
  fcfg.schedule.call_start = 0.0;
  fcfg.schedule.call_end = 1e6;
  fcfg.schedule.capture_end = 1e6 + 60.0;
  return fcfg;
}

/// Report JSON with the knob-dependent diagnostics ("shards", "flows")
/// dropped — the slice that must be execution-mode-invariant.
std::string mode_invariant_json(rtcc::report::CallAnalysis a) {
  a.shards.clear();
  a.flows = {};
  return rtcc::report::to_json(a);
}

}  // namespace

std::optional<std::string> check_shard_parity(
    const std::vector<Bytes>& datagrams) {
  // Below two datagrams there is nothing to route: skip the (thread-
  // spawning) sweep so tiny fuzz inputs stay cheap.
  if (datagrams.size() < 2) return std::nullopt;

  const net::Trace trace = multi_flow_trace(datagrams);
  if (trace.size() == 0) return std::nullopt;
  const rtcc::filter::FilterConfig fcfg = keep_all_filter_config();
  const auto& strip = mode_invariant_json;

  rtcc::report::AnalysisOptions opts;
  opts.shards = 1;
  std::vector<rtcc::report::CallAnalysis> ref_parts;
  const auto ref = rtcc::report::analyze_trace(trace, fcfg, opts, &ref_parts);
  const std::string ref_json = strip(ref);

  for (const std::size_t count : {std::size_t{2}, std::size_t{3},
                                  std::size_t{8}}) {
    opts.shards = count;
    std::vector<rtcc::report::CallAnalysis> parts;
    const auto got = rtcc::report::analyze_trace(trace, fcfg, opts, &parts);
    std::ostringstream err;
    if (strip(got) != ref_json) {
      err << "shard parity: merged report at " << count
          << " shards differs from the unsharded path";
      return err.str();
    }
    if (parts.size() != ref_parts.size()) {
      err << "shard parity: " << count << " shards produced " << parts.size()
          << " per-stream partials, unsharded produced " << ref_parts.size();
      return err.str();
    }
    for (std::size_t si = 0; si < parts.size(); ++si) {
      if (strip(parts[si]) != strip(ref_parts[si])) {
        err << "shard parity: stream " << si << " partial at " << count
            << " shards differs from the unsharded path";
        return err.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_stream_parity(
    const std::vector<Bytes>& datagrams) {
  if (datagrams.size() < 2) return std::nullopt;

  const net::Trace trace = multi_flow_trace(datagrams);
  if (trace.size() == 0) return std::nullopt;
  const rtcc::filter::FilterConfig fcfg = keep_all_filter_config();
  const auto& strip = mode_invariant_json;

  rtcc::report::AnalysisOptions opts;
  opts.shards = 1;

  // Batch reference with the knob pinned off, so the oracle stays the
  // authority when the whole suite runs under RTCC_STREAM=1.
  rtcc::report::CallAnalysis ref;
  std::vector<rtcc::report::CallAnalysis> ref_parts;
  std::string ref_json;
  {
    const rtcc::stream::StreamModeGuard off(false);
    ref = rtcc::report::analyze_trace(trace, fcfg, opts, &ref_parts);
    ref_json = strip(ref);
  }

  // 1. In-memory streaming at the default unbounded budgets: no flow
  // can split, so merged report and per-stream partials must be
  // byte-identical to batch.
  {
    std::vector<rtcc::report::CallAnalysis> parts;
    const auto got = rtcc::stream::analyze_trace_streaming(
        trace, fcfg, opts, rtcc::stream::StreamOptions{}, &parts);
    if (got.flows.flows_rekeyed != 0)
      return "stream parity: unbounded budgets split a flow";
    if (strip(got) != ref_json)
      return "stream parity: unbounded streaming merged report differs "
             "from batch";
    if (parts.size() != ref_parts.size()) {
      std::ostringstream err;
      err << "stream parity: streaming produced " << parts.size()
          << " per-stream partials, batch produced " << ref_parts.size();
      return err.str();
    }
    for (std::size_t si = 0; si < parts.size(); ++si)
      if (strip(parts[si]) != strip(ref_parts[si])) {
        std::ostringstream err;
        err << "stream parity: stream " << si
            << " partial differs from batch";
        return err.str();
      }
  }

  // 2. Chunked-reader sweep over the encoded capture: the read
  // granularity must be invisible. 1 splits every header byte-by-byte,
  // 7 lands mid record header, 256/4096 straddle payloads.
  {
    const Bytes pcap = net::encode_pcap(trace);
    std::string error;
    const auto decoded = net::decode_pcap(BytesView{pcap}, &error);
    if (!decoded)
      return "stream parity: decode_pcap rejected encoder output: " + error;
    std::string file_ref_json;
    {
      const rtcc::stream::StreamModeGuard off(false);
      file_ref_json = strip(rtcc::report::analyze_trace(*decoded, fcfg, opts));
    }
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{7}, std::size_t{256},
          std::size_t{4096}}) {
      rtcc::stream::MemoryChunkSource source(BytesView{pcap});
      rtcc::stream::StreamingAnalyzer engine(net::kLinkEthernet, fcfg, opts,
                                             rtcc::stream::StreamOptions{});
      if (!rtcc::stream::stream_pcap(source, engine, chunk, &error)) {
        std::ostringstream err;
        err << "stream parity: chunked reader failed at chunk=" << chunk
            << ": " << error;
        return err.str();
      }
      if (strip(engine.finish()) != file_ref_json) {
        std::ostringstream err;
        err << "stream parity: chunk=" << chunk
            << " report differs from the whole-file batch decode";
        return err.str();
      }
    }
  }

  // 3. Eviction-budget sweep: tight budgets force mid-capture
  // finalization. Without a split the output must still be exact; with
  // splits (an evicted key re-touched) byte-identity is forfeit by
  // design and the conservation identities take over.
  const rtcc::stream::StreamOptions budget_sweep[] = {
      {.max_flows = 1, .idle_timeout_s = 0.0},
      {.max_flows = 3, .idle_timeout_s = 0.25},
  };
  for (const auto& sopts : budget_sweep) {
    const auto got =
        rtcc::stream::analyze_trace_streaming(trace, fcfg, opts, sopts);
    const rtcc::report::FlowStats& fs = got.flows;
    std::ostringstream err;
    if (fs.flows_rekeyed == 0) {
      if (strip(got) != ref_json) {
        err << "stream parity: budgets (flows=" << sopts.max_flows
            << ", idle=" << sopts.idle_timeout_s
            << ") caused no split but changed the report";
        return err.str();
      }
      continue;
    }
    // Every packet and byte still counted exactly once...
    if (got.raw_bytes != ref.raw_bytes ||
        got.raw_udp_datagrams != ref.raw_udp_datagrams ||
        got.raw_tcp_segments != ref.raw_tcp_segments) {
      err << "stream parity: split run lost raw volume (bytes "
          << ref.raw_bytes << " -> " << got.raw_bytes << ", datagrams "
          << ref.raw_udp_datagrams << " -> " << got.raw_udp_datagrams << ")";
      return err.str();
    }
    // ...every packet in exactly one filter bucket...
    const auto stage_packets = [](const rtcc::report::CallAnalysis& a,
                                  bool udp) {
      return udp ? a.stage1_udp.packets + a.stage2_udp.packets +
                       a.rtc_udp.packets
                 : a.stage1_tcp.packets + a.stage2_tcp.packets +
                       a.rtc_tcp.packets;
    };
    if (stage_packets(got, true) != stage_packets(ref, true) ||
        stage_packets(got, false) != stage_packets(ref, false)) {
      err << "stream parity: split run dropped packets from the stage "
             "accounting";
      return err.str();
    }
    // ...and the flow ledger explains exactly where the extra streams
    // came from: records = distinct keys + splits.
    const std::uint64_t got_streams =
        got.raw_udp_streams + got.raw_tcp_streams;
    const std::uint64_t ref_streams =
        ref.raw_udp_streams + ref.raw_tcp_streams;
    if (fs.flows_seen != got_streams ||
        got_streams != ref_streams + fs.flows_rekeyed) {
      err << "stream parity: flow ledger inconsistent (" << got_streams
          << " streams, " << fs.flows_seen << " seen, " << ref_streams
          << " distinct keys + " << fs.flows_rekeyed << " rekeys)";
      return err.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> run_stream_oracles(
    const std::vector<Bytes>& datagrams) {
  if (auto err = check_scan_equivalence(datagrams))
    return "scan equivalence: " + *err;
  if (auto err = check_batch_parity(datagrams)) return err;
  if (auto err = check_simd_parity(datagrams)) return err;
  if (auto err = check_arena_parity(datagrams)) return err;
  if (auto err = check_pcap_roundtrip(datagrams)) return err;
  if (auto err = check_checker_idempotence(datagrams)) return err;
  if (auto err = check_shard_parity(datagrams)) return err;
  if (auto err = check_stream_parity(datagrams)) return err;
  return std::nullopt;
}

}  // namespace rtcc::testkit
