// Seed-corpus generation for the structure-aware fuzzer.
//
// Every mutation starts from a *well-formed* wire message so the
// mutators can damage specific structures (a TLV boundary, an extension
// length, a compound packet header) instead of relying on random bytes
// to stumble into deep parser paths. Seeds come from two sources:
//   * per-protocol builders (deterministic from the Rng) that cover the
//     codec surface including the vendor formats, and
//   * payloads harvested from a tiny emulated call per app, so the
//     fuzzer also starts from the exact byte patterns the six app
//     models emit (Zoom SFU framing, FaceTime envelopes, ...).
//
// make_seed_stream additionally constructs whole *streams* whose
// stream-level validation preconditions hold (RTP sequence continuity,
// repeated TURN channels, repeated RTCP sender SSRCs, a QUIC
// long-header handshake) — the inputs on which the strict-vs-scanning
// subset oracle is sound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace rtcc::testkit {

enum class SeedFamily : std::uint8_t {
  kStun,
  kChannelData,
  kRtp,
  kRtcp,
  kQuic,
  kVendorZoom,
  kVendorFaceTime,
  kEmulated,  // harvested from the app models
  kFrame,     // full L2 frames: Ethernet / VLAN / QinQ / SLL / SLL2 /
              // raw-IP / single IPv4 fragments (frame-decode oracle)
};

[[nodiscard]] std::string to_string(SeedFamily f);
[[nodiscard]] const std::vector<SeedFamily>& all_seed_families();

/// One deterministic well-formed wire message of the given family.
[[nodiscard]] rtcc::util::Bytes make_seed(SeedFamily family,
                                          rtcc::util::Rng& rng);

/// A clean single-stream sequence of `n` datagrams of one family, with
/// enough cross-datagram support to satisfy the scanning DPI's
/// stream-level validators (and the strict DPI's per-datagram rules).
struct SeedStream {
  SeedFamily family = SeedFamily::kStun;
  std::vector<rtcc::util::Bytes> datagrams;
};

[[nodiscard]] SeedStream make_seed_stream(SeedFamily family,
                                          rtcc::util::Rng& rng,
                                          std::size_t n);

/// UDP payloads harvested once from a tiny emulated call per app
/// (deterministic; cached for the process lifetime). Capped to a few
/// hundred distinct payloads to keep seed picks cheap.
[[nodiscard]] const std::vector<rtcc::util::Bytes>& emulator_seed_pool();

}  // namespace rtcc::testkit
