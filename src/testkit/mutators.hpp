// Structure-aware wire-format mutators.
//
// Each mutator understands just enough of its format to damage a
// *specific* structural invariant (a TLV boundary, a declared length, a
// compound-packet header) rather than hoping random bit flips land
// there. Mutated buffers are frequently still parseable — that is the
// point: the interesting bugs live where a parser accepts a damaged
// structure and a downstream layer trusts its fields.
//
// All mutators are total: on inputs too short or too damaged to carry
// their structure they fall back to generic byte-level mutations, so a
// driver can pipe any seed through any family.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace rtcc::testkit {

enum class MutatorFamily : std::uint8_t {
  kStunTlvSplice,    // reorder / duplicate / delete / cut STUN attributes
  kStunLengthLie,    // header or attribute length fields vs actual bytes
  kRtpExtension,     // RFC 8285 extension block + header-flag corruption
  kRtcpReshuffle,    // compound-packet reorder / dup / drop / length lies
  kQuicHeaderFlip,   // long-header field flips: version, CID lens, varints
  kVendorHeaderFlip, // Zoom / FaceTime envelope field flips
  kFrameHeaderFlip,  // L2/L3 damage: ethertype/TPID flips, VLAN tag
                     // insertion, IPv4 flags/frag-offset and id flips
  kGenericBitFlip,   // 1-8 random bit flips anywhere
  kGenericTruncate,  // random prefix of the seed
  kGenericPrefix,    // random proprietary-header-style prefix bytes
  kGenericSplice,    // head of one seed + tail of another
};

[[nodiscard]] std::string to_string(MutatorFamily f);
[[nodiscard]] const std::vector<MutatorFamily>& all_mutator_families();

/// Applies one mutation of `family` to `seed`. `other` feeds the splice
/// family (pass any second seed; ignored elsewhere). Deterministic in
/// `rng`; never returns the seed unchanged except on empty input.
[[nodiscard]] rtcc::util::Bytes mutate(MutatorFamily family,
                                       rtcc::util::BytesView seed,
                                       rtcc::util::BytesView other,
                                       rtcc::util::Rng& rng);

/// Datagram counts straddling the vector-pipeline batch edges (empty
/// stream, single datagram, default-batch-size ± 1 and the staging
/// buffer's offset ceiling). The batch-boundary mutator cycles these.
[[nodiscard]] const std::vector<std::size_t>& batch_boundary_counts();

/// Stream-level mutator: tiles / truncates `seed` to exactly `count`
/// datagrams (rotating the start so repeats differ across calls), so
/// the batch and SIMD parity oracles hit full-, partial- and zero-sized
/// final vectors. An empty seed yields an empty stream for any count.
[[nodiscard]] std::vector<rtcc::util::Bytes> mutate_batch_boundary(
    const std::vector<rtcc::util::Bytes>& seed, std::size_t count,
    rtcc::util::Rng& rng);

/// Chunked-reader read granularities the stream_chunk_boundary mutator
/// targets (a subset of the stream-parity oracle's sweep).
[[nodiscard]] const std::vector<std::size_t>& stream_chunk_sizes();

/// Stream-level mutator for the chunked pcap reader: emits datagrams
/// sized so that, once framed and pcap-encoded by the stream-parity
/// oracle, successive records end one byte before, exactly at, and one
/// byte after multiples of `chunk_bytes` — every record-header and
/// payload straddle the reader's carry-over path must handle. Payload
/// bytes tile the seed datagrams so protocol structure survives where
/// the resize allows. An empty seed yields an empty stream.
[[nodiscard]] std::vector<rtcc::util::Bytes> mutate_stream_chunk_boundary(
    const std::vector<rtcc::util::Bytes>& seed, std::size_t chunk_bytes,
    rtcc::util::Rng& rng);

}  // namespace rtcc::testkit
