// Metamorphic conformance layer (DESIGN.md §5e).
//
// A semantics-preserving transform rewrites a capture at the byte /
// encapsulation / capture-artifact level without changing what the
// monitored endpoints said on the wire: re-encapsulating Ethernet as
// 802.1Q, QinQ, Linux cooked (SLL/SLL2), BSD loopback or raw IP;
// re-emitting the trace through the pcap writer in any of its header
// dialects (µs/ns magic, either byte order) or as two concatenated
// chunks; translating all timestamps (together with the CallSchedule);
// fragmenting large IPv4 UDP datagrams (the inverse of FrameDecoder
// reassembly); and renumbering addresses/ports consistently across the
// call. Since none of these change payload bytes, relative timing or
// datagram order, the whole analysis pipeline — stream grouping,
// two-stage filter, scanning DPI, five-criterion compliance checker —
// must produce the *same verdicts*, and every invariant oracle here
// asserts some slice of that:
//
//   * verdict invariance — compliance_signature() (everything in a
//     CallAnalysis that is a pure function of payload bytes + relative
//     timing, per RTC stream and merged) is byte-identical,
//   * ingest-ledger predictability — IngestStats may change, but only
//     exactly as the transform predicts (Ledger + counts),
//   * filter idempotence / purity — re-running the pipeline on only the
//     kept frames keeps everything again, and re-running it on the same
//     input reproduces the same dispositions,
//   * emulator scale monotonicity — scaling media rates moves volumes
//     up without moving per-type compliance verdicts,
//   * merge order insensitivity — merge() over per-call analyses is
//     order-independent (the property run_experiment's fixed merge
//     order relies on),
//   * streaming/batch equivalence — the one-pass streaming engine
//     (RTCC_STREAM) reproduces the batch compliance signature on every
//     base case and every transformed trace.
//
// run_meta_driver() pushes the golden 6×3 matrix and the fuzz seed
// corpus through every single transform and through composed chains,
// dedups violations per (transform, oracle), greedily minimizes
// corpus-case reproducers, and emits a deterministic text report (the
// double-run determinism check compares two of these byte-for-byte).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "emul/app_model.hpp"
#include "report/metrics.hpp"

namespace rtcc::testkit::meta {

/// How a transform's IngestStats ledger relates to its input's.
enum class Ledger : std::uint8_t {
  kIdentity,   // ledger must be field-for-field identical
  kCapture,    // + a clean pcap record walk: frames_seen += trace size
  kVlan,       // + vlan_stripped += `tagged` (one per tagged frame)
  kFragment,   // + fragments_seen/_reassembled += frag counts
  kUnchecked,  // composed chains: verdict oracle only
};

[[nodiscard]] std::string to_string(Ledger l);

struct TransformResult {
  rtcc::net::Trace trace;
  rtcc::filter::FilterConfig cfg;  // adjusted when the transform must
                                   // (time-shift moves the schedule,
                                   // renumber maps device_ips)
  Ledger ledger = Ledger::kIdentity;
  std::uint64_t tagged = 0;          // kVlan: frames that gained tags
  std::uint64_t frag_frames = 0;     // kFragment: fragment frames emitted
  std::uint64_t frag_datagrams = 0;  // kFragment: datagrams split
  /// False when the input's shape is out of the transform's domain
  /// (non-Ethernet linktype, non-IP frames, an address map that would
  /// reorder endpoints...). The driver skips, never fails, these.
  bool applicable = true;
};

using TransformFn = std::function<TransformResult(
    const rtcc::net::Trace&, const rtcc::filter::FilterConfig&)>;

struct Transform {
  std::string name;
  TransformFn apply;
};

/// The transform catalogue, fixed order: vlan, qinq, sll, sll2, null,
/// rawip, pcap-us, pcap-ns, pcap-swapped, pcap-rechunk, time-shift,
/// fragment, renumber.
[[nodiscard]] const std::vector<Transform>& transform_catalogue();
[[nodiscard]] const Transform* find_transform(const std::string& name);

/// Composed chains exercised by the driver (each step's output feeds
/// the next; a chain is skipped if any step reports inapplicable).
[[nodiscard]] const std::vector<std::vector<std::string>>& default_chains();

/// Serializes the transform-invariant slice of an analysis: everything
/// except raw_bytes (frame-byte-level, changes with encapsulation) and
/// ingest (covered by the ledger oracle instead). Includes each
/// surviving RTC stream's partial analysis, so a verdict that moved
/// between streams cannot cancel out in the aggregate.
[[nodiscard]] std::string compliance_signature(
    const rtcc::report::CallAnalysis& merged,
    const std::vector<rtcc::report::CallAnalysis>& per_stream);

struct AnalyzedCase {
  rtcc::report::CallAnalysis merged;
  std::string signature;
};

/// analyze_trace + compliance_signature in one call.
[[nodiscard]] AnalyzedCase analyze_case(const rtcc::net::Trace& trace,
                                        const rtcc::filter::FilterConfig& cfg);

// ---- Invariant oracles (nullopt = holds) --------------------------------

/// (a) Classification + all five compliance criteria bit-identical.
[[nodiscard]] std::optional<std::string> check_verdict_invariance(
    const AnalyzedCase& base, const AnalyzedCase& transformed,
    const std::string& transform_name);

/// (b) IngestStats changed exactly as the transform predicted.
[[nodiscard]] std::optional<std::string> check_ingest_ledger(
    const rtcc::report::CallAnalysis& base,
    const rtcc::report::CallAnalysis& transformed,
    const TransformResult& meta, std::uint64_t transformed_frames);

/// (c) Filter idempotence + purity: the pipeline keeps its own kept
/// output wholesale, and reproduces identical dispositions when re-run
/// on the same input. Sound on traces without IPv4 fragments (a
/// reassembled datagram has no single home frame), so the driver runs
/// it on base cases only.
[[nodiscard]] std::optional<std::string> check_filter_idempotence(
    const rtcc::net::Trace& trace, const rtcc::filter::FilterConfig& cfg);

/// (d) Emulator scale sweep: multiplying media_scale by `factor` > 1
/// must not shrink any volume (RTC datagrams, DPI messages), must keep
/// the observed protocol set identical, and must keep per-type
/// compliance verdicts (compliant vs not) stable for types observed on
/// both sides.
[[nodiscard]] std::optional<std::string> check_scale_monotonicity(
    const rtcc::emul::CallConfig& cfg, double factor);

/// (e) merge() is order-insensitive: forward, reverse and a rotated
/// order over per-call analyses serialize identically.
[[nodiscard]] std::optional<std::string> check_merge_order_insensitivity(
    const std::vector<rtcc::report::CallAnalysis>& parts);

/// (f) Streaming/batch equivalence on the same input: re-analyzes the
/// trace with RTCC_STREAM forced on and requires the compliance
/// signature to match `base` (normally the batch analysis — the driver
/// pins streaming off; under an ambient RTCC_STREAM=1 run this
/// degenerates to streaming double-run determinism, still an
/// invariant). Runs against the base cases *and* every transformed
/// trace, so the one-pass engine is held to the batch verdicts across
/// the whole transform catalogue.
[[nodiscard]] std::optional<std::string> check_stream_invariance(
    const AnalyzedCase& base, const rtcc::net::Trace& trace,
    const rtcc::filter::FilterConfig& cfg, const std::string& case_name);

// ---- Driver --------------------------------------------------------------

struct MetaOptions {
  std::uint64_t seed = 2026;
  /// false: a 4-cell matrix slice, single transforms, 2 chains — the
  /// tier-1 budget. true: the full 6×3 golden matrix, every transform,
  /// every chain, plus the corpus sweep and the scale sweep on every
  /// app (the `slow` ctest tier).
  bool full = false;
  double media_scale = 0.01;
  double call_s = 45.0;
  double pre_call_s = 5.0;
  double post_call_s = 5.0;
  /// When non-empty, minimized corpus-case violations are saved here
  /// as .hex files (same format as the fuzz corpus).
  std::string corpus_dir;
};

struct MetaViolation {
  std::string case_name;
  std::string transform;  // single name or "a+b+c" chain
  std::string oracle;
  std::string detail;
  /// Minimized reproducer for corpus-backed cases (empty for matrix
  /// cells, which reproduce from the cell seed).
  std::vector<rtcc::util::Bytes> datagrams;
};

struct MetaStats {
  std::uint64_t cases = 0;
  std::uint64_t transform_runs = 0;
  std::uint64_t chain_runs = 0;
  std::uint64_t oracle_checks = 0;
  std::uint64_t skipped = 0;  // inapplicable transform/case pairs
  std::vector<MetaViolation> violations;
  /// Deterministic text summary (counts + one line per violation); two
  /// runs with equal options must produce equal reports byte-for-byte.
  std::string report;
};

[[nodiscard]] MetaStats run_meta_driver(const MetaOptions& opts);

// ---- Corpus-case plumbing (exposed for tests) ---------------------------

/// Wraps UDP payloads as an in-window Ethernet capture: one synthetic
/// bidirectional flow, dyadic timestamps (exact in both µs and ns pcap
/// encodings) inside the call window of corpus_filter_config().
[[nodiscard]] rtcc::net::Trace trace_from_datagrams(
    const std::vector<rtcc::util::Bytes>& datagrams);
[[nodiscard]] rtcc::filter::FilterConfig corpus_filter_config();

}  // namespace rtcc::testkit::meta
