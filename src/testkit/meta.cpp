#include "testkit/meta.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "emul/perturb.hpp"
#include "emul/scenario.hpp"
#include "net/stream_table.hpp"
#include "stream/stream_mode.hpp"
#include "proto/common.hpp"
#include "report/json_export.hpp"
#include "testkit/driver.hpp"
#include "testkit/seeds.hpp"
#include "util/rng.hpp"

namespace rtcc::testkit::meta {

using rtcc::filter::FilterConfig;
using rtcc::net::IpAddr;
using rtcc::net::Trace;
using rtcc::report::CallAnalysis;
using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::load_be16;
using rtcc::util::store_be16;

namespace {

// Seconds added by the time-shift transform. A power of two: exact as a
// double, exact in both µs and ns pcap sub-second fields.
constexpr double kTimeShiftS = 4096.0;

std::string first_line_diff(const std::string& a, const std::string& b) {
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  std::size_t line = 1;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return "identical";
    if (!ga) la.clear();
    if (!gb) lb.clear();
    if (la != lb) {
      auto clip = [](std::string s) {
        if (s.size() > 160) s = s.substr(0, 157) + "...";
        return s;
      };
      std::ostringstream out;
      out << "line " << line << ": base '" << clip(la) << "' vs transformed '"
          << clip(lb) << "'";
      return out.str();
    }
    ++line;
  }
}

TransformResult inapplicable(const FilterConfig& cfg) {
  TransformResult r;
  r.cfg = cfg;
  r.applicable = false;
  return r;
}

Trace empty_like(const Trace& t, std::uint32_t linktype) {
  Trace out(t.uses_arena());
  out.set_linktype(linktype);
  out.ingest() = t.ingest();
  out.reserve(t.size());
  return out;
}

// ---- L2 re-encapsulation -------------------------------------------------

/// 802.1Q (or 802.1ad QinQ) tag insertion after the Ethernet MACs. Only
/// untagged frames qualify, so `tagged` counts exactly one decoder
/// strip event per frame (vlan_stripped increments once per frame no
/// matter how deep the tag stack is).
TransformResult add_vlan_tags(const Trace& t, const FilterConfig& cfg,
                              bool qinq) {
  if (t.linktype() != rtcc::net::kLinkEthernet) return inapplicable(cfg);
  TransformResult r;
  r.cfg = cfg;
  r.ledger = Ledger::kVlan;
  Trace out = empty_like(t, rtcc::net::kLinkEthernet);
  Bytes buf;
  for (const auto& frame : t.frames()) {
    const BytesView f = t.bytes(frame);
    if (f.size() < 14) return inapplicable(cfg);
    const std::uint16_t et = load_be16(f.data() + 12);
    if (et == 0x8100 || et == 0x88A8 || et == 0x9100) return inapplicable(cfg);
    buf.assign(f.begin(), f.begin() + 12);
    if (qinq) {
      buf.insert(buf.end(), {0x88, 0xA8, 0x00, 0x14});  // S-tag, VID 20
    }
    buf.insert(buf.end(), {0x81, 0x00, 0x00, 0x64});  // C-tag, VID 100
    buf.insert(buf.end(), f.begin() + 12, f.end());
    auto& nf = out.add_frame(frame.ts, buf);
    if (frame.orig_len != 0) nf.orig_len = frame.orig_len + (qinq ? 8u : 4u);
    ++r.tagged;
  }
  r.trace = std::move(out);
  return r;
}

/// Ethernet → Linux cooked capture (SLL v1 or v2). Works on tagged
/// frames too: the cooked protocol field carries whatever ethertype
/// (or TPID) the Ethernet header carried and the decoder's VLAN strip
/// loop runs identically after the cooked header.
TransformResult to_cooked(const Trace& t, const FilterConfig& cfg, bool v2) {
  if (t.linktype() != rtcc::net::kLinkEthernet) return inapplicable(cfg);
  TransformResult r;
  r.cfg = cfg;
  Trace out =
      empty_like(t, v2 ? rtcc::net::kLinkSll2 : rtcc::net::kLinkLinuxSll);
  Bytes buf;
  for (const auto& frame : t.frames()) {
    const BytesView f = t.bytes(frame);
    if (f.size() < 14) return inapplicable(cfg);
    buf.clear();
    if (v2) {
      // SLL2: proto, reserved, ifindex, ARPHRD, pkttype, addr len, addr.
      buf.push_back(f[12]);
      buf.push_back(f[13]);
      buf.insert(buf.end(), {0x00, 0x00, 0x00, 0x00, 0x00, 0x02});
      buf.insert(buf.end(), {0x00, 0x01, 0x00, 0x06});
      buf.insert(buf.end(), f.begin() + 6, f.begin() + 12);  // src MAC
      buf.insert(buf.end(), {0x00, 0x00});
    } else {
      // SLL v1: pkttype, ARPHRD, addr len, addr(8), proto.
      buf.insert(buf.end(), {0x00, 0x00, 0x00, 0x01, 0x00, 0x06});
      buf.insert(buf.end(), f.begin() + 6, f.begin() + 12);
      buf.insert(buf.end(), {0x00, 0x00});
      buf.push_back(f[12]);
      buf.push_back(f[13]);
    }
    buf.insert(buf.end(), f.begin() + 14, f.end());
    auto& nf = out.add_frame(frame.ts, buf);
    if (frame.orig_len != 0)
      nf.orig_len = frame.orig_len + (v2 ? 6u : 2u);
    (void)nf;
  }
  r.trace = std::move(out);
  return r;
}

/// Ethernet → BSD loopback (NULL, 4-byte AF) or raw IP. Requires plain
/// untagged IP frames — the L2 header is dropped entirely.
TransformResult strip_l2(const Trace& t, const FilterConfig& cfg,
                         bool null_link) {
  if (t.linktype() != rtcc::net::kLinkEthernet) return inapplicable(cfg);
  TransformResult r;
  r.cfg = cfg;
  Trace out =
      empty_like(t, null_link ? rtcc::net::kLinkNull : rtcc::net::kLinkRaw);
  Bytes buf;
  for (const auto& frame : t.frames()) {
    const BytesView f = t.bytes(frame);
    if (f.size() < 14) return inapplicable(cfg);
    const std::uint16_t et = load_be16(f.data() + 12);
    if (et != 0x0800 && et != 0x86DD) return inapplicable(cfg);
    buf.clear();
    if (null_link) {
      // AF in the capturing host's byte order; write little-endian the
      // way an x86 BSD would (the decoder accepts either).
      buf.insert(buf.end(),
                 {et == 0x0800 ? std::uint8_t{2} : std::uint8_t{10}, 0, 0, 0});
    }
    buf.insert(buf.end(), f.begin() + 14, f.end());
    auto& nf = out.add_frame(frame.ts, buf);
    if (frame.orig_len != 0 && frame.orig_len >= 14)
      nf.orig_len = frame.orig_len - 14 + (null_link ? 4u : 0u);
  }
  r.trace = std::move(out);
  return r;
}

// ---- pcap capture-artifact rewrites -------------------------------------

TransformResult pcap_roundtrip(const Trace& t, const FilterConfig& cfg,
                               const rtcc::net::PcapEncodeOptions& opts) {
  TransformResult r;
  r.cfg = cfg;
  r.ledger = Ledger::kCapture;
  const Bytes bytes = rtcc::net::encode_pcap_ex(t, opts);
  auto decoded = rtcc::net::decode_pcap(BytesView{bytes});
  // A failed decode is a real finding, not an out-of-domain input:
  // return an empty trace and let the verdict oracle scream.
  if (decoded) r.trace = std::move(*decoded);
  return r;
}

/// Splits the capture into two pcap files and re-ingests both — the
/// "rotated capture" artifact (tcpdump -C). Frame order, timestamps and
/// the linktype survive; the record walk count covers both chunks.
TransformResult pcap_rechunk(const Trace& t, const FilterConfig& cfg) {
  TransformResult r;
  r.cfg = cfg;
  r.ledger = Ledger::kCapture;
  const std::size_t mid = t.size() / 2;
  Trace head = empty_like(t, t.linktype());
  head.ingest() = rtcc::net::IngestStats{};
  Trace tail = empty_like(t, t.linktype());
  tail.ingest() = rtcc::net::IngestStats{};
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto& f = t.frames()[i];
    auto& nf = (i < mid ? head : tail).add_frame(f.ts, t.bytes(f));
    nf.orig_len = f.orig_len;
  }
  const Bytes enc_head = rtcc::net::encode_pcap(head);
  const Bytes enc_tail = rtcc::net::encode_pcap(tail);
  auto dec_head = rtcc::net::decode_pcap(BytesView{enc_head});
  auto dec_tail = rtcc::net::decode_pcap(BytesView{enc_tail});
  if (!dec_head || !dec_tail) return r;  // empty trace -> verdict oracle
  Trace out = std::move(*dec_head);
  for (const auto& f : dec_tail->frames()) {
    auto& nf = out.add_frame(f.ts, dec_tail->bytes(f));
    nf.orig_len = f.orig_len;
  }
  out.ingest().merge(dec_tail->ingest());
  // Carry the base trace's pre-existing ledger like a single-file
  // round trip would (synthetic bases contribute zeroes).
  out.ingest().merge(t.ingest());
  r.trace = std::move(out);
  return r;
}

// ---- time translation ----------------------------------------------------

TransformResult shift_time(const Trace& t, const FilterConfig& cfg) {
  TransformResult r;
  r.cfg = cfg;
  r.cfg.schedule.capture_start += kTimeShiftS;
  r.cfg.schedule.call_start += kTimeShiftS;
  r.cfg.schedule.call_end += kTimeShiftS;
  r.cfg.schedule.capture_end += kTimeShiftS;
  r.trace = rtcc::emul::translate_time(t, kTimeShiftS);
  return r;
}

// ---- IPv4 fragmentation --------------------------------------------------

/// Splits every large unfragmented IPv4 UDP datagram into two
/// fragments (offsets 8-byte aligned, DF cleared, fresh ident, header
/// checksum recomputed) — the exact inverse of FrameDecoder reassembly.
TransformResult fragment_udp(const Trace& t, const FilterConfig& cfg) {
  if (t.linktype() != rtcc::net::kLinkEthernet) return inapplicable(cfg);
  TransformResult r;
  r.cfg = cfg;
  r.ledger = Ledger::kFragment;
  Trace out = empty_like(t, rtcc::net::kLinkEthernet);
  std::uint16_t ident = 0;
  Bytes buf;
  for (const auto& frame : t.frames()) {
    const BytesView f = t.bytes(frame);
    bool split = false;
    if (f.size() >= 14 + 20 && load_be16(f.data() + 12) == 0x0800) {
      const std::uint8_t* ip = f.data() + 14;
      const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
      const std::uint16_t total_len = load_be16(ip + 2);
      const std::uint16_t flags_frag = load_be16(ip + 6);
      const bool is_fragment = (flags_frag & 0x3FFF) != 0;
      const std::size_t l4_len =
          total_len >= ihl ? total_len - ihl : 0;
      if ((ip[0] >> 4) == 4 && ihl >= 20 && !is_fragment && ip[9] == 17 &&
          14 + static_cast<std::size_t>(total_len) == f.size() &&
          l4_len >= 24) {
        // First piece: ~half the L4 bytes, rounded up to a fragment
        // boundary; always leaves a non-empty second piece.
        std::size_t first = 8 * ((l4_len / 2 + 7) / 8);
        if (first >= l4_len) first = l4_len - 8;
        ident = static_cast<std::uint16_t>(ident + 1);
        if (ident == 0) ident = 1;
        const std::size_t pieces[2][2] = {{0, first},
                                          {first, l4_len - first}};
        for (const auto& piece : pieces) {
          const std::size_t off = piece[0];
          const std::size_t len = piece[1];
          const bool more = off + len < l4_len;
          buf.assign(f.begin(), f.begin() + 14 + ihl);
          buf.insert(buf.end(), f.begin() + 14 + ihl + off,
                     f.begin() + 14 + ihl + off + len);
          std::uint8_t* nip = buf.data() + 14;
          store_be16(nip + 2, static_cast<std::uint16_t>(ihl + len));
          store_be16(nip + 4, ident);
          store_be16(nip + 6,
                     static_cast<std::uint16_t>((more ? 0x2000 : 0) |
                                                (off / 8)));
          store_be16(nip + 10, 0);
          store_be16(nip + 10, rtcc::net::internet_checksum(
                                   BytesView{nip, ihl}));
          out.add_frame(frame.ts, buf);
          ++r.frag_frames;
        }
        ++r.frag_datagrams;
        split = true;
      }
    }
    if (!split) {
      auto& nf = out.add_frame(frame.ts, f);
      nf.orig_len = frame.orig_len;
    }
  }
  r.trace = std::move(out);
  return r;
}

// ---- address / port renumbering -----------------------------------------

IpAddr renumber_ip(const IpAddr& ip) {
  if (ip.is_v4()) {
    const std::uint32_t v = ip.v4_value();
    if ((v & 0xFF) <= 248) return IpAddr::v4(v + 3);
    return ip;
  }
  auto bytes = ip.v6_bytes();
  if (bytes[15] <= 248) bytes[15] = static_cast<std::uint8_t>(bytes[15] + 3);
  return IpAddr::v6(bytes);
}

std::uint16_t renumber_port(std::uint16_t p) {
  if (p >= 20000 && p <= 65524) return static_cast<std::uint16_t>(p + 11);
  return p;
}

/// Rewrites every frame with consistently renumbered addresses and
/// ports. The map must preserve everything the pipeline keys on:
/// endpoint (ip, port) ordering (canonical flow direction), bare IP
/// ordering (pre-call pair identity), local-scope membership, device
/// identity (cfg.device_ips is mapped alongside) and excluded-port
/// membership — each property is verified against the observed
/// endpoint set and the transform bows out if any would flip.
TransformResult renumber(const Trace& t, const FilterConfig& cfg) {
  if (t.linktype() != rtcc::net::kLinkEthernet) return inapplicable(cfg);
  std::vector<rtcc::net::Decoded> decoded;
  decoded.reserve(t.size());
  std::set<std::pair<IpAddr, std::uint16_t>> endpoints;
  std::set<IpAddr> ips;
  for (const auto& frame : t.frames()) {
    auto d = rtcc::net::decode_frame(t.bytes(frame), t.linktype());
    if (!d) return inapplicable(cfg);  // fragments / non-IP frames
    endpoints.insert({d->src, d->src_port});
    endpoints.insert({d->dst, d->dst_port});
    ips.insert(d->src);
    ips.insert(d->dst);
    decoded.push_back(*d);
  }
  for (const auto& ip : cfg.device_ips) ips.insert(ip);

  // Order preservation: <=> on sorted observed sets must survive the
  // map (std::set iterates in sorted order, so adjacent pairs suffice).
  std::optional<std::pair<IpAddr, std::uint16_t>> prev_ep;
  for (const auto& ep : endpoints) {
    const auto mapped =
        std::make_pair(renumber_ip(ep.first), renumber_port(ep.second));
    if (prev_ep && !(*prev_ep < mapped)) return inapplicable(cfg);
    prev_ep = mapped;
  }
  std::optional<IpAddr> prev_ip;
  for (const auto& ip : ips) {
    const IpAddr mapped = renumber_ip(ip);
    if (mapped.is_local_scope() != ip.is_local_scope())
      return inapplicable(cfg);
    if (prev_ip && !(*prev_ip < mapped)) return inapplicable(cfg);
    prev_ip = mapped;
  }
  for (const auto& ep : endpoints) {
    if (cfg.excluded_ports.count(ep.second) !=
        cfg.excluded_ports.count(renumber_port(ep.second)))
      return inapplicable(cfg);
  }

  TransformResult r;
  r.cfg = cfg;
  for (auto& ip : r.cfg.device_ips) ip = renumber_ip(ip);
  Trace out = empty_like(t, rtcc::net::kLinkEthernet);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto& d = decoded[i];
    rtcc::net::FrameSpec spec;
    spec.src = renumber_ip(d.src);
    spec.dst = renumber_ip(d.dst);
    spec.src_port = renumber_port(d.src_port);
    spec.dst_port = renumber_port(d.dst_port);
    spec.transport = d.transport;
    out.add_frame(t.frames()[i].ts, rtcc::net::build_frame(spec, d.payload));
  }
  r.trace = std::move(out);
  return r;
}

}  // namespace

std::string to_string(Ledger l) {
  switch (l) {
    case Ledger::kIdentity: return "identity";
    case Ledger::kCapture: return "capture";
    case Ledger::kVlan: return "vlan";
    case Ledger::kFragment: return "fragment";
    case Ledger::kUnchecked: return "unchecked";
  }
  return "?";
}

const std::vector<Transform>& transform_catalogue() {
  static const std::vector<Transform> kCatalogue = {
      {"vlan",
       [](const Trace& t, const FilterConfig& c) {
         return add_vlan_tags(t, c, false);
       }},
      {"qinq",
       [](const Trace& t, const FilterConfig& c) {
         return add_vlan_tags(t, c, true);
       }},
      {"sll",
       [](const Trace& t, const FilterConfig& c) {
         return to_cooked(t, c, false);
       }},
      {"sll2",
       [](const Trace& t, const FilterConfig& c) {
         return to_cooked(t, c, true);
       }},
      {"null",
       [](const Trace& t, const FilterConfig& c) {
         return strip_l2(t, c, true);
       }},
      {"rawip",
       [](const Trace& t, const FilterConfig& c) {
         return strip_l2(t, c, false);
       }},
      {"pcap-us",
       [](const Trace& t, const FilterConfig& c) {
         return pcap_roundtrip(t, c, {});
       }},
      {"pcap-ns",
       [](const Trace& t, const FilterConfig& c) {
         return pcap_roundtrip(t, c, {.nanosecond = true});
       }},
      {"pcap-swapped",
       [](const Trace& t, const FilterConfig& c) {
         return pcap_roundtrip(t, c, {.swapped = true});
       }},
      {"pcap-rechunk", pcap_rechunk},
      {"time-shift", shift_time},
      {"fragment", fragment_udp},
      {"renumber", renumber},
  };
  return kCatalogue;
}

const Transform* find_transform(const std::string& name) {
  for (const auto& t : transform_catalogue())
    if (t.name == name) return &t;
  return nullptr;
}

const std::vector<std::vector<std::string>>& default_chains() {
  static const std::vector<std::vector<std::string>> kChains = {
      {"time-shift", "vlan", "pcap-ns"},
      {"renumber", "fragment", "qinq"},
      {"fragment", "sll"},
      {"vlan", "sll2", "pcap-swapped"},
      {"renumber", "time-shift", "rawip", "pcap-rechunk"},
      {"pcap-us", "qinq", "pcap-rechunk"},
  };
  return kChains;
}

namespace {

void signature_one(std::ostream& out, const CallAnalysis& a) {
  const auto stage = [&](const char* k, const rtcc::filter::StageStats& s) {
    out << k << "=" << s.streams << "/" << s.packets << ";";
  };
  out << "udp=" << a.raw_udp_streams << "/" << a.raw_udp_datagrams
      << ";tcp=" << a.raw_tcp_streams << "/" << a.raw_tcp_segments << ";";
  stage("s1u", a.stage1_udp);
  stage("s2u", a.stage2_udp);
  stage("s1t", a.stage1_tcp);
  stage("s2t", a.stage2_tcp);
  stage("rtcu", a.rtc_udp);
  stage("rtct", a.rtc_tcp);
  out << "class=" << a.dgram_standard << "/" << a.dgram_prop_header << "/"
      << a.dgram_fully_prop << ";dpi=" << a.dpi_candidates << "/"
      << a.dpi_messages << ";";
  for (const auto& [proto, ps] : a.protocols) {
    out << rtcc::proto::to_string(proto) << "{" << ps.messages << "/"
        << ps.compliant;
    for (const auto& [label, ts] : ps.types) {
      out << ";" << label << "=" << ts.total << "/" << ts.compliant;
      for (const auto& [crit, n] : ts.criterion_failures)
        out << "," << crit << ":" << n;
    }
    out << "}";
  }
}

std::string format_ingest(const rtcc::net::IngestStats& s) {
  std::ostringstream out;
  out << "seen=" << s.frames_seen << " torn=" << s.torn_tail
      << " clipped=" << s.snaplen_clipped << " bad_usec=" << s.bad_usec
      << " decoded=" << s.frames_decoded << " vlan=" << s.vlan_stripped
      << " frag_seen=" << s.fragments_seen
      << " frag_reasm=" << s.fragments_reassembled
      << " frag_exp=" << s.fragments_expired << " non_ip=" << s.non_ip
      << " clip_undec=" << s.clipped_undecodable << " undec=" << s.undecodable
      << " unsupported=" << s.unsupported_linktype;
  return out.str();
}

}  // namespace

std::string compliance_signature(
    const CallAnalysis& merged, const std::vector<CallAnalysis>& per_stream) {
  std::ostringstream out;
  out << "merged:";
  signature_one(out, merged);
  out << "\n";
  for (std::size_t i = 0; i < per_stream.size(); ++i) {
    out << "stream[" << i << "]:";
    signature_one(out, per_stream[i]);
    out << "\n";
  }
  return out.str();
}

AnalyzedCase analyze_case(const Trace& trace, const FilterConfig& cfg) {
  AnalyzedCase out;
  std::vector<CallAnalysis> per_stream;
  out.merged = rtcc::report::analyze_trace(trace, cfg, {}, &per_stream);
  out.signature = compliance_signature(out.merged, per_stream);
  return out;
}

std::optional<std::string> check_verdict_invariance(
    const AnalyzedCase& base, const AnalyzedCase& transformed,
    const std::string& transform_name) {
  if (base.signature == transformed.signature) return std::nullopt;
  return "verdicts not invariant under '" + transform_name +
         "': " + first_line_diff(base.signature, transformed.signature);
}

std::optional<std::string> check_ingest_ledger(
    const CallAnalysis& base, const CallAnalysis& transformed,
    const TransformResult& meta, std::uint64_t transformed_frames) {
  if (meta.ledger == Ledger::kUnchecked) return std::nullopt;
  rtcc::net::IngestStats predicted = base.ingest;
  switch (meta.ledger) {
    case Ledger::kIdentity:
      break;
    case Ledger::kCapture:
      predicted.frames_seen += transformed_frames;
      break;
    case Ledger::kVlan:
      predicted.vlan_stripped += meta.tagged;
      break;
    case Ledger::kFragment:
      predicted.fragments_seen += meta.frag_frames;
      predicted.fragments_reassembled += meta.frag_datagrams;
      break;
    case Ledger::kUnchecked:
      break;
  }
  if (transformed.ingest == predicted) return std::nullopt;
  return "ingest ledger not " + to_string(meta.ledger) +
         "-predictable: expected {" + format_ingest(predicted) + "} got {" +
         format_ingest(transformed.ingest) + "}";
}

std::optional<std::string> check_filter_idempotence(const Trace& trace,
                                                    const FilterConfig& cfg) {
  const auto table = rtcc::net::group_streams(trace);
  // The kept-frames guarantee is per-frame; reassembled datagrams have
  // no single home frame, so fragmented inputs are out of scope.
  if (table.ingest.fragments_reassembled > 0 ||
      table.ingest.fragments_seen > 0)
    return std::nullopt;
  const auto rep1 = rtcc::filter::run_pipeline(trace, table, cfg);
  const auto rep2 = rtcc::filter::run_pipeline(trace, table, cfg);
  if (rep1.dispositions != rep2.dispositions)
    return std::string("filter purity violation: two runs on the same table "
                       "produced different dispositions");

  const auto kept = rtcc::filter::kept_frame_indices(table, rep1);
  Trace sub(trace.uses_arena());
  sub.set_linktype(trace.linktype());
  sub.reserve(kept.size());
  for (const std::size_t i : kept) {
    const auto& f = trace.frames()[i];
    auto& nf = sub.add_frame(f.ts, trace.bytes(f));
    nf.orig_len = f.orig_len;
  }
  const auto sub_table = rtcc::net::group_streams(sub);
  const auto sub_rep = rtcc::filter::run_pipeline(sub, sub_table, cfg);
  std::size_t re_removed = 0;
  for (const auto d : sub_rep.dispositions)
    if (d != rtcc::filter::Disposition::kKept) ++re_removed;
  if (re_removed != 0) {
    std::ostringstream out;
    out << "filter not idempotent: re-running on its own kept output "
           "removed "
        << re_removed << " of " << sub_rep.dispositions.size() << " streams";
    return out.str();
  }
  if (sub_rep.rtc_udp.streams != rep1.rtc_udp.streams ||
      sub_rep.rtc_udp.packets != rep1.rtc_udp.packets ||
      sub_rep.rtc_tcp.streams != rep1.rtc_tcp.streams ||
      sub_rep.rtc_tcp.packets != rep1.rtc_tcp.packets) {
    std::ostringstream out;
    out << "filter not idempotent: kept totals moved (udp "
        << rep1.rtc_udp.streams << "/" << rep1.rtc_udp.packets << " -> "
        << sub_rep.rtc_udp.streams << "/" << sub_rep.rtc_udp.packets
        << ", tcp " << rep1.rtc_tcp.streams << "/" << rep1.rtc_tcp.packets
        << " -> " << sub_rep.rtc_tcp.streams << "/"
        << sub_rep.rtc_tcp.packets << ")";
    return out.str();
  }
  return std::nullopt;
}

std::optional<std::string> check_scale_monotonicity(
    const rtcc::emul::CallConfig& cfg, double factor) {
  const auto run = [&](double scale) {
    rtcc::emul::CallConfig c = cfg;
    c.media_scale = scale;
    const auto call = rtcc::emul::emulate_call(c);
    return rtcc::report::analyze_trace(call.trace,
                                       rtcc::emul::filter_config_for(call));
  };
  const CallAnalysis lo = run(cfg.media_scale);
  const CallAnalysis hi = run(cfg.media_scale * factor);
  std::ostringstream out;
  if (hi.rtc_udp.packets < lo.rtc_udp.packets ||
      hi.dpi_messages < lo.dpi_messages ||
      hi.total_messages() < lo.total_messages()) {
    out << "scale x" << factor << " shrank volume: rtc_udp "
        << lo.rtc_udp.packets << " -> " << hi.rtc_udp.packets
        << ", dpi_messages " << lo.dpi_messages << " -> " << hi.dpi_messages
        << ", messages " << lo.total_messages() << " -> "
        << hi.total_messages();
    return out.str();
  }
  for (const auto& [proto, lo_stats] : lo.protocols) {
    const auto it = hi.protocols.find(proto);
    if (it == hi.protocols.end()) {
      // Protocols hovering at the scanning DPI's stream-support minima
      // legitimately flicker with scale (e.g. Zoom emits ~2 RTCP
      // compounds per small call; one fewer and rtcp_ssrc_support
      // rejects the lot). Presence is only an invariant once the
      // protocol comfortably clears those thresholds.
      if (lo_stats.messages < 4) continue;
      out << "scale x" << factor << " lost protocol "
          << rtcc::proto::to_string(proto);
      return out.str();
    }
    // A type's compliance verdict is a property of the app model, not
    // of how many instances were sampled: it must not flip with scale.
    for (const auto& [label, lo_type] : lo_stats.types) {
      const auto tit = it->second.types.find(label);
      if (tit == it->second.types.end()) continue;
      if (lo_type.type_compliant() != tit->second.type_compliant()) {
        out << "scale x" << factor << " flipped "
            << rtcc::proto::to_string(proto) << "/" << label << " from "
            << (lo_type.type_compliant() ? "compliant" : "non-compliant")
            << " to "
            << (tit->second.type_compliant() ? "compliant" : "non-compliant");
        return out.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_stream_invariance(
    const AnalyzedCase& base, const Trace& trace, const FilterConfig& cfg,
    const std::string& case_name) {
  const rtcc::stream::StreamModeGuard stream_on(true);
  const AnalyzedCase streamed = analyze_case(trace, cfg);
  if (base.signature == streamed.signature) return std::nullopt;
  return "streaming verdicts differ from batch on '" + case_name +
         "': " + first_line_diff(base.signature, streamed.signature);
}

std::optional<std::string> check_merge_order_insensitivity(
    const std::vector<CallAnalysis>& parts) {
  if (parts.size() < 2) return std::nullopt;
  const auto merged_json = [&](const std::vector<std::size_t>& order) {
    CallAnalysis acc;
    for (const std::size_t i : order) rtcc::report::merge(acc, parts[i]);
    return rtcc::report::to_json(acc);
  };
  std::vector<std::size_t> fwd(parts.size());
  for (std::size_t i = 0; i < fwd.size(); ++i) fwd[i] = i;
  std::vector<std::size_t> rev(fwd.rbegin(), fwd.rend());
  std::vector<std::size_t> rot(fwd.begin() + 1, fwd.end());
  rot.push_back(0);
  const std::string a = merged_json(fwd);
  if (const std::string b = merged_json(rev); a != b)
    return "merge() is order-sensitive (forward vs reverse): " +
           first_line_diff(a, b);
  if (const std::string b = merged_json(rot); a != b)
    return "merge() is order-sensitive (forward vs rotated): " +
           first_line_diff(a, b);
  return std::nullopt;
}

// ---- corpus plumbing -----------------------------------------------------

FilterConfig corpus_filter_config() {
  FilterConfig cfg;
  cfg.schedule.capture_start = 0.0;
  cfg.schedule.call_start = 10.0;
  cfg.schedule.call_end = 40.0;
  cfg.schedule.capture_end = 50.0;
  cfg.device_ips = {IpAddr::v4(192, 168, 1, 10)};
  cfg.excluded_ports = rtcc::filter::default_excluded_ports();
  return cfg;
}

Trace trace_from_datagrams(const std::vector<Bytes>& datagrams) {
  Trace out;
  const IpAddr device = IpAddr::v4(192, 168, 1, 10);
  const IpAddr remote = IpAddr::v4(203, 0, 113, 7);
  for (std::size_t i = 0; i < datagrams.size(); ++i) {
    rtcc::net::FrameSpec spec;
    const bool out_dir = i % 2 == 0;
    spec.src = out_dir ? device : remote;
    spec.dst = out_dir ? remote : device;
    spec.src_port = out_dir ? 40000 : 3478;
    spec.dst_port = out_dir ? 3478 : 40000;
    // Dyadic timestamps inside the call window: exact as doubles and in
    // both µs and ns pcap sub-second encodings.
    const double ts = 12.0 + static_cast<double>(i) / 64.0;
    out.add_frame(ts, rtcc::net::build_frame(spec, BytesView{datagrams[i]}));
  }
  return out;
}

// ---- driver --------------------------------------------------------------

namespace {

struct MetaCase {
  std::string name;
  Trace trace;
  FilterConfig cfg;
  std::vector<Bytes> datagrams;  // non-empty only for corpus cases
};

std::string chain_name(const std::vector<std::string>& steps) {
  std::string out;
  for (const auto& s : steps) {
    if (!out.empty()) out += "+";
    out += s;
  }
  return out;
}

/// Applies a chain of catalogue transforms; nullopt when any step is
/// out of its domain. The ledger degrades to kUnchecked as soon as a
/// second prediction would have to compose with the first.
std::optional<TransformResult> apply_chain(
    const Trace& base, const FilterConfig& cfg,
    const std::vector<std::string>& steps) {
  Trace cur = rtcc::emul::clone_trace(base);
  FilterConfig ccfg = cfg;
  for (const auto& step : steps) {
    const Transform* t = find_transform(step);
    if (t == nullptr) return std::nullopt;
    TransformResult r = t->apply(cur, ccfg);
    if (!r.applicable) return std::nullopt;
    cur = std::move(r.trace);
    ccfg = std::move(r.cfg);
  }
  TransformResult out;
  out.trace = std::move(cur);
  out.cfg = std::move(ccfg);
  out.ledger = steps.size() == 1 ? out.ledger : Ledger::kUnchecked;
  return out;
}

/// Re-checks one (transform-or-chain, oracle) pair on a rebuilt corpus
/// case — the predicate the greedy minimizer shrinks against.
bool corpus_violates(const std::vector<Bytes>& datagrams,
                     const std::vector<std::string>& steps,
                     const std::string& oracle) {
  if (datagrams.empty()) return false;
  const Trace trace = trace_from_datagrams(datagrams);
  const FilterConfig cfg = corpus_filter_config();
  if (oracle == "filter-idempotence")
    return check_filter_idempotence(trace, cfg).has_value();
  const AnalyzedCase base = analyze_case(trace, cfg);
  if (steps.size() == 1) {
    const Transform* t = find_transform(steps[0]);
    if (t == nullptr) return false;
    TransformResult r = t->apply(trace, cfg);
    if (!r.applicable) return false;
    const AnalyzedCase ta = analyze_case(r.trace, r.cfg);
    if (oracle == "verdict")
      return check_verdict_invariance(base, ta, steps[0]).has_value();
    return check_ingest_ledger(base.merged, ta.merged, r, r.trace.size())
        .has_value();
  }
  auto r = apply_chain(trace, cfg, steps);
  if (!r) return false;
  const AnalyzedCase ta = analyze_case(r->trace, r->cfg);
  return check_verdict_invariance(base, ta, chain_name(steps)).has_value();
}

std::vector<Bytes> minimize_corpus_case(const std::vector<Bytes>& datagrams,
                                        const std::vector<std::string>& steps,
                                        const std::string& oracle) {
  std::vector<Bytes> cur = datagrams;
  bool shrunk = true;
  while (shrunk && cur.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      std::vector<Bytes> candidate;
      candidate.reserve(cur.size() - 1);
      for (std::size_t k = 0; k < cur.size(); ++k)
        if (k != i) candidate.push_back(cur[k]);
      if (corpus_violates(candidate, steps, oracle)) {
        cur = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return cur;
}

}  // namespace

MetaStats run_meta_driver(const MetaOptions& opts) {
  MetaStats st;
  std::set<std::pair<std::string, std::string>> seen_violations;

  const auto record = [&](const std::string& case_name,
                          const std::string& transform,
                          const std::string& oracle, const std::string& detail,
                          const std::vector<Bytes>& datagrams,
                          const std::vector<std::string>& steps) {
    if (!seen_violations.insert({transform, oracle}).second) return;
    MetaViolation v;
    v.case_name = case_name;
    v.transform = transform;
    v.oracle = oracle;
    v.detail = detail;
    if (!datagrams.empty())
      v.datagrams = minimize_corpus_case(datagrams, steps, oracle);
    st.violations.push_back(std::move(v));
  };

  // ---- build the case list (fixed, deterministic order) -----------------
  std::vector<MetaCase> cases;
  {
    std::vector<rtcc::emul::AppId> apps;
    std::vector<rtcc::emul::NetworkSetup> networks;
    if (opts.full) {
      apps = rtcc::emul::all_apps();
      networks = rtcc::emul::all_networks();
    } else {
      apps = {rtcc::emul::AppId::kZoom, rtcc::emul::AppId::kWhatsApp};
      networks = {rtcc::emul::NetworkSetup::kWifiP2p,
                  rtcc::emul::NetworkSetup::kCellular};
    }
    std::uint64_t cell_seed = opts.seed;
    for (const auto app : apps) {
      for (const auto network : networks) {
        rtcc::emul::CallConfig cfg;
        cfg.app = app;
        cfg.network = network;
        cfg.pre_call_s = opts.pre_call_s;
        cfg.call_s = opts.call_s;
        cfg.post_call_s = opts.post_call_s;
        cfg.media_scale = opts.media_scale;
        cfg.seed = cell_seed++;
        auto call = rtcc::emul::emulate_call(cfg);
        MetaCase c;
        c.name = to_string(app) + "|" + to_string(network);
        c.cfg = rtcc::emul::filter_config_for(call);
        c.trace = std::move(call.trace);
        cases.push_back(std::move(c));
      }
    }

    std::vector<SeedFamily> families;
    if (opts.full) {
      for (const auto f : all_seed_families())
        if (f != SeedFamily::kFrame)  // L2 frames, not UDP payloads
          families.push_back(f);
    } else {
      families = {SeedFamily::kStun, SeedFamily::kRtp, SeedFamily::kRtcp};
    }
    rtcc::util::Rng rng(opts.seed);
    for (const auto family : families) {
      const auto stream = make_seed_stream(family, rng, 8);
      MetaCase c;
      c.name = "corpus:" + to_string(family);
      c.cfg = corpus_filter_config();
      c.trace = trace_from_datagrams(stream.datagrams);
      c.datagrams = stream.datagrams;
      cases.push_back(std::move(c));
    }

    // Scenario catalogue: every entry is born with metamorphic
    // coverage. Tier-1 runs the catalogue's tier-1 slice (one per
    // scenario family); full sweeps run them all.
    const auto& specs = rtcc::emul::scenario_catalogue();
    const std::size_t n_scenarios =
        opts.full ? specs.size()
                  : std::min(rtcc::emul::kTier1Scenarios, specs.size());
    rtcc::emul::ScenarioOptions sopts;
    sopts.media_scale = opts.media_scale;
    sopts.call_s = opts.call_s;
    sopts.pre_call_s = opts.pre_call_s;
    sopts.post_call_s = opts.post_call_s;
    for (std::size_t i = 0; i < n_scenarios; ++i) {
      sopts.seed = opts.seed + 500 + i;
      auto scen = specs[i].build(sopts);
      MetaCase c;
      c.name = "scenario:" + scen.name;
      c.cfg = scen.cfg;
      c.trace = std::move(scen.trace);
      cases.push_back(std::move(c));
    }
  }

  const auto& chains = default_chains();
  const std::size_t n_chains = opts.full ? chains.size() : 2;

  // ---- transforms + oracles ---------------------------------------------
  for (const auto& c : cases) {
    ++st.cases;
    const AnalyzedCase base = analyze_case(c.trace, c.cfg);

    ++st.oracle_checks;
    if (auto err = check_filter_idempotence(c.trace, c.cfg))
      record(c.name, "(none)", "filter-idempotence", *err, c.datagrams, {});

    ++st.oracle_checks;
    if (auto err = check_stream_invariance(base, c.trace, c.cfg, c.name))
      record(c.name, "(none)", "stream", *err, c.datagrams, {});

    for (const auto& t : transform_catalogue()) {
      TransformResult r = t.apply(c.trace, c.cfg);
      if (!r.applicable) {
        ++st.skipped;
        continue;
      }
      ++st.transform_runs;
      const AnalyzedCase ta = analyze_case(r.trace, r.cfg);
      ++st.oracle_checks;
      if (auto err = check_verdict_invariance(base, ta, t.name))
        record(c.name, t.name, "verdict", *err, c.datagrams, {t.name});
      ++st.oracle_checks;
      if (auto err = check_ingest_ledger(base.merged, ta.merged, r,
                                         r.trace.size()))
        record(c.name, t.name, "ledger", *err, c.datagrams, {t.name});
      // The one-pass engine must reproduce the transformed trace's own
      // verdicts too — 13 transforms x the streaming engine.
      ++st.oracle_checks;
      if (auto err = check_stream_invariance(ta, r.trace, r.cfg, t.name))
        record(c.name, t.name, "stream", *err, c.datagrams, {t.name});
    }

    for (std::size_t ci = 0; ci < n_chains; ++ci) {
      auto r = apply_chain(c.trace, c.cfg, chains[ci]);
      if (!r) {
        ++st.skipped;
        continue;
      }
      ++st.chain_runs;
      const std::string name = chain_name(chains[ci]);
      const AnalyzedCase ta = analyze_case(r->trace, r->cfg);
      ++st.oracle_checks;
      if (auto err = check_verdict_invariance(base, ta, name))
        record(c.name, name, "verdict", *err, c.datagrams, chains[ci]);
      ++st.oracle_checks;
      if (auto err = check_stream_invariance(ta, r->trace, r->cfg, name))
        record(c.name, name, "stream", *err, c.datagrams, chains[ci]);
    }
  }

  // ---- emulator scale sweep ---------------------------------------------
  {
    std::vector<rtcc::emul::AppId> sweep_apps;
    if (opts.full)
      sweep_apps = rtcc::emul::all_apps();
    else
      sweep_apps = {rtcc::emul::AppId::kZoom};
    std::uint64_t sweep_seed = opts.seed + 1000;
    for (const auto app : sweep_apps) {
      rtcc::emul::CallConfig cfg;
      cfg.app = app;
      cfg.network = rtcc::emul::NetworkSetup::kWifiP2p;
      cfg.pre_call_s = opts.pre_call_s;
      cfg.call_s = opts.call_s;
      cfg.post_call_s = opts.post_call_s;
      cfg.media_scale = opts.media_scale;
      cfg.seed = sweep_seed++;
      ++st.oracle_checks;
      if (auto err = check_scale_monotonicity(cfg, 2.0))
        record("scale:" + to_string(app), "(scale x2)", "scale-monotonic",
               *err, {}, {});
    }
  }

  // ---- merge order ------------------------------------------------------
  {
    std::vector<CallAnalysis> parts;
    std::uint64_t cell_seed = opts.seed + 2000;
    const int n_parts = opts.full ? 4 : 3;
    for (int i = 0; i < n_parts; ++i) {
      rtcc::emul::CallConfig cfg;
      cfg.app = rtcc::emul::AppId::kDiscord;
      cfg.pre_call_s = opts.pre_call_s;
      cfg.call_s = opts.call_s;
      cfg.post_call_s = opts.post_call_s;
      cfg.media_scale = opts.media_scale;
      cfg.seed = cell_seed++;
      cfg.call_index = i;
      parts.push_back(rtcc::report::analyze_call(rtcc::emul::emulate_call(cfg)));
    }
    ++st.oracle_checks;
    if (auto err = check_merge_order_insensitivity(parts))
      record("merge-order", "(merge)", "merge-order", *err, {}, {});
  }

  // ---- corpus save + report ---------------------------------------------
  if (!opts.corpus_dir.empty()) {
    for (const auto& v : st.violations) {
      if (v.datagrams.empty()) continue;
      FuzzFinding f;
      f.description = "meta " + v.oracle + " under " + v.transform;
      f.mutator = "meta:" + v.transform;
      f.seed_family = v.case_name;
      f.datagrams = v.datagrams;
      (void)save_corpus_file(opts.corpus_dir + "/" + corpus_file_name(f), f);
    }
  }

  std::ostringstream rep;
  rep << "meta-driver mode=" << (opts.full ? "full" : "tier1")
      << " seed=" << opts.seed << "\n";
  rep << "cases=" << st.cases << " transform_runs=" << st.transform_runs
      << " chain_runs=" << st.chain_runs
      << " oracle_checks=" << st.oracle_checks << " skipped=" << st.skipped
      << " violations=" << st.violations.size() << "\n";
  for (const auto& v : st.violations)
    rep << "violation case=" << v.case_name << " transform=" << v.transform
        << " oracle=" << v.oracle << ": " << v.detail << "\n";
  rep << (st.violations.empty() ? "OK" : "FAIL") << "\n";
  st.report = rep.str();
  return st;
}

}  // namespace rtcc::testkit::meta
