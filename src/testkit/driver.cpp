#include "testkit/driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>

#include "testkit/mutators.hpp"
#include "testkit/oracles.hpp"
#include "testkit/seeds.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace rtcc::testkit {

namespace {

using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::Rng;

using StreamOracle =
    std::function<std::optional<std::string>(const std::vector<Bytes>&)>;

std::uint64_t fnv1a64(const std::vector<Bytes>& datagrams) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&](std::uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ull;
  };
  for (const auto& d : datagrams) {
    for (const std::uint8_t b : d) mix(b);
    mix(0xFF);  // datagram separator so [ab],[c] != [a],[bc]
  }
  return h;
}

/// Greedy minimization: drop whole datagrams, then remove ever-smaller
/// chunks from each survivor, keeping any step that still violates the
/// oracle. Work is capped so a pathological reproducer cannot stall the
/// driver — the cap only costs minimization quality, never soundness.
std::vector<Bytes> minimize(std::vector<Bytes> datagrams,
                            const StreamOracle& violates_fn) {
  std::size_t evals = 0;
  constexpr std::size_t kMaxEvals = 3000;
  const auto violates = [&](const std::vector<Bytes>& trial) {
    ++evals;
    return violates_fn(trial).has_value();
  };

  bool dropped = true;
  while (dropped && datagrams.size() > 1 && evals < kMaxEvals) {
    dropped = false;
    for (std::size_t i = 0; i < datagrams.size() && evals < kMaxEvals; ++i) {
      std::vector<Bytes> trial = datagrams;
      trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
      if (violates(trial)) {
        datagrams = std::move(trial);
        dropped = true;
        break;
      }
    }
  }

  for (std::size_t d = 0; d < datagrams.size(); ++d) {
    for (std::size_t chunk = std::max<std::size_t>(datagrams[d].size() / 2, 1);
         chunk >= 1 && evals < kMaxEvals; chunk /= 2) {
      std::size_t pos = 0;
      while (pos + chunk <= datagrams[d].size() && evals < kMaxEvals) {
        std::vector<Bytes> trial = datagrams;
        trial[d].erase(trial[d].begin() + static_cast<std::ptrdiff_t>(pos),
                       trial[d].begin() +
                           static_cast<std::ptrdiff_t>(pos + chunk));
        if (violates(trial))
          datagrams = std::move(trial);
        else
          pos += chunk;
      }
      if (chunk == 1) break;
    }
  }
  return datagrams;
}

void record_finding(DriverStats& stats, const DriverOptions& opts,
                    std::set<std::string>& seen, std::uint64_t iteration,
                    const std::string& mutator, SeedFamily family,
                    std::vector<Bytes> datagrams, const StreamOracle& oracle,
                    bool shrink) {
  auto violation = oracle(datagrams);
  if (!violation) return;  // raced away during shrinking upstream
  if (!seen.insert(*violation).second) return;
  if (stats.findings.size() >= opts.max_findings) return;

  FuzzFinding f;
  if (shrink) {
    f.datagrams = minimize(std::move(datagrams), oracle);
    // Re-run on the minimized form: shrinking may surface a different
    // (earlier-firing) oracle; the saved description must match the
    // reproducer we keep.
    if (auto min_violation = oracle(f.datagrams)) violation = min_violation;
  } else {
    // Oracles with stream-level preconditions (strict subset asserts
    // over well-formed seed streams) stay unshrunk: removing bytes or
    // datagrams breaks the precondition, so every trial "violates" and
    // minimization would happily shrink the reproducer to nothing.
    f.datagrams = std::move(datagrams);
  }
  f.description = *violation;
  f.mutator = mutator;
  f.seed_family = to_string(family);
  f.iteration = iteration;
  if (!opts.corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.corpus_dir, ec);
    (void)save_corpus_file(
        (std::filesystem::path(opts.corpus_dir) / corpus_file_name(f))
            .string(),
        f);
  }
  stats.findings.push_back(std::move(f));
}

}  // namespace

DriverStats run_fuzz_driver(const DriverOptions& opts) {
  DriverStats stats;
  std::set<std::string> seen;
  Rng root(opts.seed);
  const auto& seed_families = all_seed_families();
  const auto& mutator_families = all_mutator_families();

  const StreamOracle buffer_oracle = [](const std::vector<Bytes>& dgs) {
    for (const auto& d : dgs)
      if (auto err = run_buffer_oracles(BytesView{d})) return err;
    return std::optional<std::string>{};
  };
  const StreamOracle stream_oracle = [&](const std::vector<Bytes>& dgs) {
    return run_stream_oracles(dgs);
  };

  for (std::uint64_t i = 0; i < opts.iters; ++i) {
    Rng rng = root.fork(i);
    // Cycle both family axes so the cross product is covered evenly;
    // everything below is deterministic in (opts.seed, i).
    const MutatorFamily mf =
        mutator_families[i % mutator_families.size()];
    const SeedFamily sf =
        seed_families[(i / mutator_families.size()) % seed_families.size()];
    ++stats.mutations_per_family[to_string(mf)];

    const Bytes seed = make_seed(sf, rng);
    const Bytes other = make_seed(
        seed_families[rng.below(seed_families.size())], rng);
    const Bytes mutated = mutate(mf, BytesView{seed}, BytesView{other}, rng);

    ++stats.buffer_checks;
    if (auto err = run_buffer_oracles(BytesView{mutated}))
      record_finding(stats, opts, seen, i, to_string(mf), sf, {mutated},
                     buffer_oracle, /*shrink=*/true);

    if (opts.stream_stride != 0 && i % opts.stream_stride == 0) {
      SeedStream stream = make_seed_stream(sf, rng, opts.stream_len);

      ++stats.strict_subset_checks;
      if (auto err = check_strict_subset(stream)) {
        const StreamOracle subset_oracle =
            [&stream](const std::vector<Bytes>& dgs) {
              SeedStream trial;
              trial.family = stream.family;
              trial.datagrams = dgs;
              return check_strict_subset(trial);
            };
        // The stream is clean at this point — no mutator is involved.
        record_finding(stats, opts, seen, i, "none (clean seed stream)", sf,
                       stream.datagrams, subset_oracle, /*shrink=*/false);
      }

      // Mutate a few datagrams in place and run the heavy differential
      // oracles on the damaged stream.
      const std::size_t hits = 1 + rng.below(3);
      for (std::size_t h = 0; h < hits && !stream.datagrams.empty(); ++h) {
        const std::size_t victim = rng.below(stream.datagrams.size());
        const MutatorFamily smf =
            mutator_families[rng.below(mutator_families.size())];
        ++stats.mutations_per_family[to_string(smf)];
        stream.datagrams[victim] =
            mutate(smf, BytesView{stream.datagrams[victim]},
                   BytesView{seed}, rng);
      }
      ++stats.stream_checks;
      if (auto err = run_stream_oracles(stream.datagrams))
        record_finding(stats, opts, seen, i, to_string(mf), sf,
                       stream.datagrams, stream_oracle, /*shrink=*/true);

      // Batch-boundary shaping: tile the (already mutated) stream to a
      // datagram count at the vector-size edges and assert the batch
      // and SIMD parity oracles right at the boundary — full, exactly
      // filled and one-over final vectors all extract identically. The
      // SIMD sweep is skipped on the largest counts to keep the
      // sanitized CI budget affordable; batch parity always runs.
      const auto& counts = batch_boundary_counts();
      const std::size_t count =
          counts[(i / opts.stream_stride) % counts.size()];
      const auto shaped = mutate_batch_boundary(stream.datagrams, count, rng);
      ++stats.mutations_per_family["batch_boundary"];
      const StreamOracle boundary_oracle = [](const std::vector<Bytes>& dgs) {
        if (auto err = check_batch_parity(dgs)) return err;
        if (dgs.size() <= 512)
          if (auto err = check_simd_parity(dgs)) return err;
        return std::optional<std::string>{};
      };
      ++stats.stream_checks;
      if (auto err = boundary_oracle(shaped))
        record_finding(stats, opts, seen, i, "batch_boundary", sf, shaped,
                       boundary_oracle, /*shrink=*/true);

      // Chunk-boundary shaping: resize the stream's datagrams so their
      // pcap-encoded records end one byte before / exactly at / one
      // byte past the chunked reader's read boundaries, then assert
      // streaming/batch parity (whose internal sweep reads at exactly
      // these granularities) right on the straddle.
      const auto& csizes = stream_chunk_sizes();
      const std::size_t chunk =
          csizes[(i / opts.stream_stride) % csizes.size()];
      const auto cshaped =
          mutate_stream_chunk_boundary(stream.datagrams, chunk, rng);
      ++stats.mutations_per_family["stream_chunk_boundary"];
      const StreamOracle chunk_oracle = [](const std::vector<Bytes>& dgs) {
        return check_stream_parity(dgs);
      };
      ++stats.stream_checks;
      if (auto err = chunk_oracle(cshaped))
        record_finding(stats, opts, seen, i, "stream_chunk_boundary", sf,
                       cshaped, chunk_oracle, /*shrink=*/true);
    }
    ++stats.iterations;
  }
  return stats;
}

std::optional<std::vector<Bytes>> load_corpus_file(const std::string& path,
                                                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::vector<Bytes> out;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    auto bytes = rtcc::util::from_hex(line);
    if (!bytes) {
      if (error) *error = "bad hex line in " + path + ": " + line;
      return std::nullopt;
    }
    out.push_back(std::move(*bytes));
  }
  return out;
}

bool save_corpus_file(const std::string& path, const FuzzFinding& finding) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# rtcc testkit regression corpus entry\n";
  out << "# oracle: " << finding.description << "\n";
  out << "# mutator: " << finding.mutator
      << "  seed-family: " << finding.seed_family
      << "  iteration: " << finding.iteration << "\n";
  for (const auto& d : finding.datagrams)
    out << rtcc::util::to_hex(BytesView{d}) << "\n";
  return static_cast<bool>(out);
}

std::string corpus_file_name(const FuzzFinding& finding) {
  std::ostringstream name;
  name << "min-" << std::hex << fnv1a64(finding.datagrams) << ".hex";
  return name.str();
}

std::vector<std::string> list_corpus_files(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".hex")
      out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::string> replay_corpus_entry(
    const std::vector<Bytes>& datagrams) {
  for (std::size_t i = 0; i < datagrams.size(); ++i)
    if (auto err = run_buffer_oracles(BytesView{datagrams[i]})) {
      std::ostringstream msg;
      msg << "datagram " << i << ": " << *err;
      return msg.str();
    }
  return run_stream_oracles(datagrams);
}

}  // namespace rtcc::testkit
