#include "dpi/scanning_dpi.hpp"

#include <algorithm>
#include <unordered_map>

#include "dpi/anchor_scan.hpp"
#include "proto/stun/stun_registry.hpp"

namespace rtcc::dpi {

using rtcc::util::BytesView;

namespace {

// The emit helpers run once per anchored offset — ~25% of all scanned
// bytes on encrypted payloads — so a real call (argument spills plus
// materialising the optional sniff result) costs more than the sniff
// itself. Force-inline them into both extraction loops.
#if defined(__GNUC__) || defined(__clang__)
#define RTCC_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define RTCC_ALWAYS_INLINE inline
#endif

/// Demux-node unroll width: descriptors emitted per loop iteration.
/// Compile-time tunable (-DRTCC_DEMUX_UNROLL=2|4) for the ablation
/// sweep in EXPERIMENTS.md; the {2,4} x prefetch sweep showed no
/// significant separation, so 2 stays as the default. The
/// constant-trip inner loops below fully unroll at either width.
#ifndef RTCC_DEMUX_UNROLL
#define RTCC_DEMUX_UNROLL 2
#endif
constexpr std::size_t kDemuxUnroll = RTCC_DEMUX_UNROLL;
static_assert(kDemuxUnroll == 2 || kDemuxUnroll == 4,
              "demux unroll width must be 2 or 4");

namespace stun = rtcc::proto::stun;
namespace rtp = rtcc::proto::rtp;
namespace rtcp = rtcc::proto::rtcp;
namespace quic = rtcc::proto::quic;

/// Lightweight candidate: just what validation and the cover walk need;
/// the full (allocating) parse happens once per *accepted* candidate.
/// RTP's header pattern matches ~25% of random offsets, so on a relay
/// media stream this array is by far the scan's largest data structure
/// — it is kept to 20 bytes by folding the per-protocol sniff details
/// (STUN txid, RTCP PT, RTP seq) into the support tables at emission
/// time instead of carrying them per candidate.
struct Candidate {
  static constexpr std::uint8_t kValidated = 0x01;
  static constexpr std::uint8_t kQuicLong = 0x02;

  std::uint32_t datagram = 0;
  std::uint32_t offset = 0;
  std::uint32_t length = 0;  // wire extent (RTP: to end of datagram)
  std::uint32_t ssrc = 0;    // RTP / RTCP first-packet SSRC
  std::uint16_t channel = 0;  // ChannelData
  MessageKind kind = MessageKind::kRtp;
  std::uint8_t flags = 0;

  [[nodiscard]] bool validated() const { return flags & kValidated; }
  [[nodiscard]] bool quic_long() const { return flags & kQuicLong; }
};

struct TxidHash {
  std::size_t operator()(const stun::TransactionId& id) const {
    std::uint64_t h = 14695981039346656037ULL;  // FNV-1a
    for (const std::uint8_t b : id) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Everything the extraction nodes append to: the candidate list plus
/// the stream-level support tables (Algorithm 1's validation inputs).
/// The tables are filled *at emission* — the old separate walk over the
/// candidate array to build them re-read tens of MB per relay stream.
/// The RTP table is the big one — the scan yields one noise candidate
/// per ~25% of offsets with mostly-unique fake SSRCs — and is kept
/// flat: (ssrc, seq) packed into one u64, sorted once, then walked
/// group-by-group. A map of per-SSRC vectors here costs an allocation
/// per noise SSRC and dominates validation time. The small tables
/// (STUN txids, channels, RTCP SSRCs) stay hashed.
struct ScanState {
  std::vector<Candidate> candidates;
  std::vector<std::uint64_t> rtp_pairs;  // ssrc << 16 | seq
  std::unordered_map<stun::TransactionId, int, TxidHash> stun_txids;
  std::unordered_map<std::uint16_t, int> channel_support;
  std::unordered_map<std::uint32_t, int> rtcp_ssrc_support;
  int quic_long_support = 0;

  /// Ready the state for a fresh analyze_batch call while keeping the
  /// vectors' capacity and the hash tables' buckets warm.
  void reset() {
    candidates.clear();
    rtp_pairs.clear();
    stun_txids.clear();
    channel_support.clear();
    rtcp_ssrc_support.clear();
    quic_long_support = 0;
  }
};

struct RtpSniff {
  std::size_t header_size = 0;
  std::uint8_t payload_type = 0;
  std::uint16_t seq = 0;
  std::uint32_t ssrc = 0;
};

/// Header-only RTP check: version 2, CSRC/extension fit in the bound.
RTCC_ALWAYS_INLINE std::optional<RtpSniff> sniff_rtp(BytesView d) {
  if (d.size() < 12) return std::nullopt;
  if ((d[0] >> 6) != 2) return std::nullopt;
  const std::size_t cc = d[0] & 0x0F;
  const bool ext = (d[0] & 0x10) != 0;
  std::size_t hdr = 12 + cc * 4;
  if (d.size() < hdr) return std::nullopt;
  if (ext) {
    if (d.size() < hdr + 4) return std::nullopt;
    const std::uint16_t words = rtcc::util::load_be16(d.data() + hdr + 2);
    hdr += 4 + std::size_t{words} * 4;
    if (d.size() < hdr) return std::nullopt;
  }
  if (d[0] & 0x20) {  // padding byte must fit
    const std::uint8_t pad = d[d.size() - 1];
    if (pad == 0 || hdr + pad > d.size()) return std::nullopt;
  }
  RtpSniff s;
  s.header_size = hdr;
  s.payload_type = d[1] & 0x7F;
  s.seq = rtcc::util::load_be16(d.data() + 2);
  s.ssrc = rtcc::util::load_be32(d.data() + 8);
  return s;
}

/// Header-only RTCP compound check.
struct RtcpSniff {
  std::size_t parsed = 0;    // bytes covered by well-formed packets
  std::size_t trailing = 0;  // leftover within the datagram
  std::uint8_t first_pt = 0;
  std::uint32_t first_ssrc = 0;
  std::size_t packets = 0;
};

RTCC_ALWAYS_INLINE std::optional<RtcpSniff> sniff_rtcp(BytesView d, std::size_t max_trailing) {
  if (d.size() < 8) return std::nullopt;
  RtcpSniff s;
  std::size_t pos = 0;
  while (pos + 4 <= d.size()) {
    const std::uint8_t b0 = d[pos];
    if ((b0 >> 6) != 2) break;
    const std::uint8_t pt = d[pos + 1];
    // Restrict to the assigned 200-207 block: the full 192-223 range
    // admits too many false positives when scanning mid-payload.
    if (pt < 200 || pt > 207) break;
    const std::size_t len =
        4 + std::size_t{rtcc::util::load_be16(d.data() + pos + 2)} * 4;
    if (pos + len > d.size()) break;
    if (s.packets == 0) {
      s.first_pt = pt;
      if (len >= 8) s.first_ssrc = rtcc::util::load_be32(d.data() + pos + 4);
    }
    ++s.packets;
    pos += len;
  }
  if (s.packets == 0) return std::nullopt;
  s.parsed = pos;
  s.trailing = d.size() - pos;
  if (s.trailing > max_trailing) return std::nullopt;
  return s;
}

std::uint16_t seq_distance(std::uint16_t a, std::uint16_t b) {
  const std::uint16_t d1 = static_cast<std::uint16_t>(a - b);
  const std::uint16_t d2 = static_cast<std::uint16_t>(b - a);
  return std::min(d1, d2);
}

/// Groups packed (ssrc << 16 | seq) keys by SSRC, ascending. There is
/// roughly one key per case-2 anchor — ~10^5 for a relay media stream —
/// so comparison sorting them costs more than the whole validation
/// walk; two 16-bit LSD counting passes over the SSRC field are
/// near-linear instead. Sequence numbers inside a group stay in
/// emission order: the continuity walk sorts the few groups that clear
/// the support gate (real streams) and never reads seq order inside
/// noise groups, so the third radix pass the full 48-bit sort needed is
/// pure waste.
void group_rtp_pairs_by_ssrc(std::vector<std::uint64_t>& v) {
  if (v.size() < 2048) {
    std::sort(v.begin(), v.end());
    return;
  }
  // The scratch is thread_local: a fresh ~1.6 MB allocation per call
  // costs more in page faults than the sort itself on large streams.
  static thread_local std::vector<std::uint64_t> tmp;
  static thread_local std::vector<std::uint32_t> pos;
  tmp.resize(v.size());
  pos.resize(1 << 16);
  for (int pass = 1; pass < 3; ++pass) {
    const int shift = pass * 16;
    std::fill(pos.begin(), pos.end(), 0);
    for (const std::uint64_t x : v) ++pos[(x >> shift) & 0xFFFF];
    std::uint32_t running = 0;
    for (std::uint32_t& c : pos) {
      const std::uint32_t n = c;
      c = running;
      running += n;
    }
    for (const std::uint64_t x : v) tmp[pos[(x >> shift) & 0xFFFF]++] = x;
    v.swap(tmp);
  }
}

// ---- Candidate emission, one helper per protocol ----
//
// Each helper re-checks its full structural conditions, so it emits the
// same candidate whether invoked at every offset (naive oracle) or only
// at anchored offsets (prefilter): the anchors in anchor_scan.cpp are
// necessary conditions of these checks, never a replacement for them.

RTCC_ALWAYS_INLINE void emit_stun(BytesView at, std::uint32_t di, std::uint32_t off,
               ScanState& st) {
  if (at.size() < stun::kHeaderSize || (at[0] & 0xC0) != 0) return;
  const std::uint32_t cookie = rtcc::util::load_be32(at.data() + 4);
  const std::uint16_t dlen = rtcc::util::load_be16(at.data() + 2);
  const bool modern = cookie == stun::kMagicCookie;
  // Classic (RFC 3489) STUN has no cookie; to keep false positives
  // manageable we require a defined method and an exact datagram-tail
  // fit, which real classic stacks satisfy.
  const bool classic_fit =
      !modern &&
      stun::lookup_message_type(rtcc::util::load_be16(at.data())).source !=
          proto::SpecSource::kUndefined &&
      stun::kHeaderSize + std::size_t{dlen} == at.size();
  if (!modern && !classic_fit) return;
  stun::ParseOptions po;
  po.require_magic_cookie = modern;
  if (auto parsed = stun::parse(at, po)) {
    Candidate& c = st.candidates.emplace_back();
    c.kind = MessageKind::kStun;
    c.datagram = di;
    c.offset = off;
    c.length = static_cast<std::uint32_t>(parsed->consumed);
    ++st.stun_txids[parsed->message.transaction_id];
  }
}

RTCC_ALWAYS_INLINE void emit_channel_data(BytesView at, std::uint32_t di, std::uint32_t off,
                       ScanState& st) {
  // TURN ChannelData: first byte 0x40-0x4F.
  if (at.size() < 4 || at[0] < 0x40 || at[0] > 0x4F) return;
  const std::uint16_t clen = rtcc::util::load_be16(at.data() + 2);
  if (4 + std::size_t{clen} > at.size()) return;
  Candidate& c = st.candidates.emplace_back();
  c.kind = MessageKind::kChannelData;
  c.datagram = di;
  c.offset = off;
  // Extent includes trailing padding up to the 4-byte boundary only
  // when it reaches the datagram end (the FaceTime pattern); otherwise
  // exactly 4+len.
  std::size_t extent = 4 + std::size_t{clen};
  const std::size_t padded = (extent + 3) & ~std::size_t{3};
  if (padded == at.size()) extent = padded;
  c.length = static_cast<std::uint32_t>(extent);
  c.channel = rtcc::util::load_be16(at.data());
  ++st.channel_support[c.channel];
}

RTCC_ALWAYS_INLINE void emit_rtcp(BytesView at, std::uint32_t di, std::uint32_t off,
               std::size_t max_trailing, ScanState& st) {
  if (auto s = sniff_rtcp(at, max_trailing)) {
    Candidate& c = st.candidates.emplace_back();
    c.kind = MessageKind::kRtcp;
    c.datagram = di;
    c.offset = off;
    c.length = static_cast<std::uint32_t>(s->parsed + s->trailing);
    c.ssrc = s->first_ssrc;
    ++st.rtcp_ssrc_support[c.ssrc];
  }
}

RTCC_ALWAYS_INLINE void emit_quic(BytesView at, std::uint32_t di, std::uint32_t off,
               ScanState& st) {
  if (at.empty()) return;
  const std::uint8_t b0 = at[0];
  if ((b0 & 0xC0) == 0xC0) {  // long form + fixed bit
    if (auto h = quic::parse(at)) {
      // Only QUIC v1 long headers are scanned for: admitting the
      // all-zero version-negotiation pattern would match zero runs
      // inside opaque payloads.
      if (h->version == quic::kVersion1) {
        Candidate& c = st.candidates.emplace_back();
        c.kind = MessageKind::kQuic;
        c.datagram = di;
        c.offset = off;
        c.length = static_cast<std::uint32_t>(h->wire_size());
        c.flags = Candidate::kQuicLong;
        ++st.quic_long_support;
      }
    }
  } else if ((b0 & 0xC0) == 0x40 && off == 0) {
    // Short header: only meaningful at offset 0 and only if the stream
    // establishes a connection (checked in validation).
    Candidate& c = st.candidates.emplace_back();
    c.kind = MessageKind::kQuic;
    c.datagram = di;
    c.offset = 0;
    c.length = static_cast<std::uint32_t>(at.size());
  }
}

RTCC_ALWAYS_INLINE void emit_rtp(BytesView at, std::uint32_t di, std::uint32_t off,
              ScanState& st) {
  if (auto s = sniff_rtp(at)) {
    // Skip byte patterns that are really RTCP (PT 72-79 with the marker
    // bit corresponds to RTCP types 200-207).
    const std::uint8_t pt_byte = at[1];
    if (pt_byte >= 0xC8 && pt_byte <= 0xCF) return;
    Candidate& c = st.candidates.emplace_back();
    c.kind = MessageKind::kRtp;
    c.datagram = di;
    c.offset = off;
    c.length = static_cast<std::uint32_t>(at.size());
    c.ssrc = s->ssrc;
    st.rtp_pairs.push_back(std::uint64_t{s->ssrc} << 16 | s->seq);
  }
}

/// One anchored offset: run the sniffs the anchor mask selects, in the
/// fixed per-offset protocol order (STUN, ChannelData, RTCP, QUIC, RTP)
/// that the naive oracle loop uses — the candidate list is identical,
/// not merely equal as a set.
RTCC_ALWAYS_INLINE void emit_at(BytesView payload, std::uint32_t di,
                                std::uint32_t off, std::uint8_t mask,
                                const ScanOptions& opts, ScanState& st) {
  const BytesView at = payload.subspan(off);
  if (mask == anchor::kRtp) {  // ~25% of offsets: keep it lean
    emit_rtp(at, di, off, st);
    return;
  }
  if (mask & anchor::kStun) emit_stun(at, di, off, st);
  if (mask & anchor::kChannelData) emit_channel_data(at, di, off, st);
  if (mask & anchor::kRtcp) emit_rtcp(at, di, off, opts.max_rtcp_trailing, st);
  if (mask & (anchor::kQuicLong | anchor::kQuicShort))
    emit_quic(at, di, off, st);
  if (mask & anchor::kRtp) emit_rtp(at, di, off, st);
}

/// Naive oracle extraction for one datagram: every protocol sniff at
/// every offset 0..k.
void extract_naive(BytesView payload, std::uint32_t di,
                   const ScanOptions& opts, ScanState& st) {
  const std::size_t limit = std::min(opts.max_offset + 1, payload.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const BytesView at = payload.subspan(i);
    const auto off = static_cast<std::uint32_t>(i);
    if (opts.scan_stun) {
      emit_stun(at, di, off, st);
      emit_channel_data(at, di, off, st);
    }
    if (opts.scan_rtcp) emit_rtcp(at, di, off, opts.max_rtcp_trailing, st);
    if (opts.scan_quic) emit_quic(at, di, off, st);
    if (opts.scan_rtp) emit_rtp(at, di, off, st);
  }
}

/// Per-chunk scratch for the node graph, reused across chunks (and,
/// being thread_local at the call site, across calls) so the
/// steady-state inner loops are allocation-free.
struct BatchScratch {
  std::vector<std::uint32_t> scannable;   // demux output: packet indices
  std::vector<AnchorMasks> masks;         // prefilter output, whole chunk
  std::vector<std::uint32_t> mask_begin;  // per scannable packet, +1 end
};

}  // namespace

ScanningDpi::ScanningDpi(ScanOptions options) : options_(options) {}

std::vector<DatagramAnalysis> ScanningDpi::analyze_stream(
    const std::vector<StreamDatagram>& datagrams) const {
  rtcc::net::PacketBatch batch;
  batch.reserve(datagrams.size());
  for (const auto& d : datagrams) batch.push(d.payload, d.ts, d.dir);
  return analyze_batch(batch);
}

std::vector<DatagramAnalysis> ScanningDpi::analyze_batch(
    const rtcc::net::PacketBatch& packets, PipelineCounters* counters) const {
  namespace net = rtcc::net;
  const std::size_t n_packets = packets.size();
  // Extraction state is thread_local: the candidate and pair buffers
  // reach a few MB on relay media streams, and re-growing (and
  // re-faulting) them every call costs more than the scan of a small
  // stream. Reset keeps capacity and hash-table buckets warm.
  static thread_local ScanState scan_state;
  ScanState& st = scan_state;
  st.reset();
  if (st.candidates.capacity() < n_packets * 2)
    st.candidates.reserve(n_packets * 2);
  if (st.rtp_pairs.capacity() < n_packets * 2)
    st.rtp_pairs.reserve(n_packets * 2);

  // ---- Step 1: candidate extraction (Algorithm 1, lines 5-13) ----
  const std::size_t bsz = net::batch_size();
  if (!options_.use_anchor_prefilter) {
    // Oracle path: every protocol sniff at every offset 0..k.
    for (std::size_t di = 0; di < n_packets; ++di)
      extract_naive(packets.payload(di), static_cast<std::uint32_t>(di),
                    options_, st);
  } else if (bsz <= 1) {
    // Legacy one-datagram-at-a-time path (the batch-parity oracle):
    // anchor scan and sniffs fused per datagram, no staging.
    for (std::size_t di = 0; di < n_packets; ++di) {
      const BytesView payload = packets.payload(di);
      const auto d32 = static_cast<std::uint32_t>(di);
      for_each_anchor(payload, options_,
                      [&](std::uint32_t off, std::uint8_t mask) {
                        emit_at(payload, d32, off, mask, options_, st);
                      });
    }
  } else {
    // Node graph: demux → prefilter → scan, one fixed-size vector at a
    // time. Each node runs its loop over the whole chunk before the
    // next starts, so its code, tables and branch history stay hot for
    // bsz packets instead of being evicted every datagram.
    static thread_local BatchScratch batch_scratch;
    BatchScratch& scratch = batch_scratch;
    scratch.scannable.reserve(bsz);
    scratch.mask_begin.reserve(bsz + 1);
    const AnchorBlockFn kernel = anchor_block_fn();
    for (std::size_t base = 0; base < n_packets; base += bsz) {
      const std::size_t end = std::min(n_packets, base + bsz);

      // Demux node: drop empty payloads (nothing to scan), prefetch
      // upcoming payload heads. Unrolled loop: kDemuxUnroll descriptors
      // per iteration keeps the loads' latencies overlapped. The width
      // is a compile-time ablation knob (-DRTCC_DEMUX_UNROLL=2|4, see
      // EXPERIMENTS.md); the emitted descriptor order is identical at
      // every width, so analyses stay byte-identical across the sweep.
      scratch.scannable.clear();
      std::size_t di = base;
      for (; di + kDemuxUnroll <= end; di += kDemuxUnroll) {
        for (std::size_t u = 0; u < kDemuxUnroll; ++u)
          if (di + u + net::kPrefetchAhead < end)
            net::prefetch(packets.data[di + u + net::kPrefetchAhead]);
        for (std::size_t u = 0; u < kDemuxUnroll; ++u)
          if (packets.len[di + u] != 0)
            scratch.scannable.push_back(static_cast<std::uint32_t>(di + u));
      }
      for (; di < end; ++di)
        if (packets.len[di] != 0)
          scratch.scannable.push_back(static_cast<std::uint32_t>(di));
      if (counters != nullptr) {
        ++counters->demux.vectors;
        counters->demux.packets += end - base;
        counters->demux.suspended += (end - base) - scratch.scannable.size();
      }

      // Prefilter node: the pure SIMD pass. One kernel call per payload
      // writes the per-family hot-lane masks for its whole scan region
      // into the chunk's mask buffer (32 bytes per 64 offsets — far
      // less traffic than an expanded hit list at media-payload hit
      // rates, and L1-resident at the default batch size). At the
      // scalar level there is no kernel and the node is a pass-through;
      // the scan node then runs the fused per-offset loop itself.
      scratch.masks.clear();
      scratch.mask_begin.clear();
      if (kernel != nullptr) {
        for (std::size_t si = 0; si < scratch.scannable.size(); ++si) {
          if (si + net::kPrefetchAhead < scratch.scannable.size())
            net::prefetch(
                packets.data[scratch.scannable[si + net::kPrefetchAhead]]);
          scratch.mask_begin.push_back(
              static_cast<std::uint32_t>(scratch.masks.size()));
          stage_anchor_masks(packets.payload(scratch.scannable[si]), options_,
                             kernel, scratch.masks);
        }
        scratch.mask_begin.push_back(
            static_cast<std::uint32_t>(scratch.masks.size()));
      }
      if (counters != nullptr) {
        ++counters->prefilter.vectors;
        counters->prefilter.packets += scratch.scannable.size();
        // Suspended = hot lanes staged for the scan node to re-test.
        std::uint64_t lanes = 0;
        for (const AnchorMasks& m : scratch.masks)
          lanes += static_cast<std::uint64_t>(__builtin_popcountll(m.any()));
        counters->prefilter.suspended += lanes;
      }

      // Scan node: walk the staged masks (applying the exact anchor
      // rules the approximate stun lanes still need) and run the full
      // protocol sniffs at each anchored offset.
      const std::size_t before = st.candidates.size();
      for (std::size_t si = 0; si < scratch.scannable.size(); ++si) {
        const std::uint32_t d32 = scratch.scannable[si];
        const BytesView payload = packets.payload(d32);
        const auto emit = [&](std::uint32_t off, std::uint8_t mask) {
          emit_at(payload, d32, off, mask, options_, st);
        };
        if (kernel != nullptr)
          for_each_anchor_staged(payload, options_,
                                 scratch.masks.data() + scratch.mask_begin[si],
                                 emit);
        else
          for_each_anchor(payload, options_, emit);
      }
      if (counters != nullptr) {
        ++counters->scan.vectors;
        counters->scan.packets += scratch.scannable.size();
        counters->scan.suspended += st.candidates.size() - before;
      }
    }
  }

  std::vector<Candidate>& candidates = st.candidates;

  // ---- Step 2: protocol-specific validation (lines 14-19) ----
  // The support tables were built at emission (ScanState); what remains
  // is the stream-level RTP continuity analysis and the per-candidate
  // accept/reject flags.

  // Grouping the packed pairs by SSRC gives the support counts; each
  // qualifying group's sequence numbers are sorted on demand below.
  group_rtp_pairs_by_ssrc(st.rtp_pairs);
  std::vector<std::uint64_t>& rtp_pairs = st.rtp_pairs;

  // Per-SSRC support (for overlap dominance) and validated SSRCs
  // (support + sequence-number continuity), ascending, probed with
  // binary search in the loops below.
  std::vector<std::uint32_t> rtp_ssrcs, rtp_support, valid_rtp_ssrcs;
  rtp_ssrcs.reserve(rtp_pairs.size());
  rtp_support.reserve(rtp_pairs.size());
  for (std::size_t lo = 0; lo < rtp_pairs.size();) {
    const auto ssrc = static_cast<std::uint32_t>(rtp_pairs[lo] >> 16);
    std::size_t hi = lo + 1;
    while (hi < rtp_pairs.size() && (rtp_pairs[hi] >> 16) == ssrc) ++hi;
    const std::size_t support = hi - lo;
    rtp_ssrcs.push_back(ssrc);
    rtp_support.push_back(static_cast<std::uint32_t>(support));
    if (support >= options_.min_ssrc_support) {
      // Equal-SSRC keys order by their low 16 bits, i.e. by seq.
      std::sort(rtp_pairs.begin() + static_cast<std::ptrdiff_t>(lo),
                rtp_pairs.begin() + static_cast<std::ptrdiff_t>(hi));
      // Continuity: a healthy stream's sorted sequence numbers are
      // mostly adjacent; scanning noise produces uniformly random ones.
      // Constant proprietary-header bytes produce the opposite artifact
      // — the same fake (ssrc, seq) repeated verbatim — so genuine
      // streams must also show the sequence number actually advancing.
      std::size_t close = 0, distinct = 1;
      for (std::size_t i = lo + 1; i < hi; ++i) {
        const auto seq = static_cast<std::uint16_t>(rtp_pairs[i]);
        const auto prev = static_cast<std::uint16_t>(rtp_pairs[i - 1]);
        // A zero gap is a duplicate, not adjacency: constant header
        // bytes masquerading as RTP repeat the same few (ssrc, seq)
        // pairs, and duplicates must not count as continuity evidence.
        const std::uint16_t gap = seq_distance(seq, prev);
        if (gap >= 1 && gap <= 16) ++close;
        if (seq != prev) ++distinct;
      }
      const bool advancing = distinct >= std::max<std::size_t>(2, support / 4);
      if (advancing && close * 2 >= support - 1)
        valid_rtp_ssrcs.push_back(ssrc);
    }
    lo = hi;
  }
  const auto ssrc_valid = [&valid_rtp_ssrcs](std::uint32_t ssrc) {
    return std::binary_search(valid_rtp_ssrcs.begin(), valid_rtp_ssrcs.end(),
                              ssrc);
  };

  // Per-candidate accept/reject, applied inside the per-datagram range
  // walk below (fused with the filter: the candidate array exceeds L2
  // on relay-scale batches, so a separate flag pass would stream the
  // whole array through the cache twice).
  const auto validate_candidate = [&](Candidate& c) {
    if (!options_.validate) {
      c.flags |= Candidate::kValidated;
      return;
    }
    switch (c.kind) {
      case MessageKind::kStun:
        // Magic-cookie messages and exact-fit classic messages are
        // structurally sound. Transaction pairing raises confidence but
        // unanswered requests must still be extracted — they are the
        // non-compliance evidence (e.g. FaceTime §5.2.1).
        c.flags |= Candidate::kValidated;
        break;
      case MessageKind::kChannelData: {
        // A genuine ChannelData message extends to the datagram end
        // (optionally via padding), and real TURN channels repeat the
        // same channel number stream-wide; requiring both keeps random
        // byte runs inside media payloads from matching.
        const std::size_t remaining = packets.len[c.datagram] - c.offset;
        if (std::size_t{c.length} == remaining &&
            st.channel_support[c.channel] >= 2)
          c.flags |= Candidate::kValidated;
        break;
      }
      case MessageKind::kRtp:
        if (ssrc_valid(c.ssrc)) c.flags |= Candidate::kValidated;
        break;
      case MessageKind::kRtcp: {
        // Cross-validate against known RTP streams, or require repeated
        // appearances of the same sender SSRC within this stream
        // (covers RTCP-only streams and Discord's SSRC=0 usage).
        const std::size_t remaining = packets.len[c.datagram] - c.offset;
        const bool extent_ok = std::size_t{c.length} == remaining;
        if (extent_ok &&
            (ssrc_valid(c.ssrc) || st.rtcp_ssrc_support[c.ssrc] >= 2))
          c.flags |= Candidate::kValidated;
        break;
      }
      case MessageKind::kQuic:
        // Long headers validate on version+structure; short headers
        // require the stream to have completed a long-header handshake.
        if (c.quic_long() || st.quic_long_support >= 2)
          c.flags |= Candidate::kValidated;
        break;
    }
  };

  // ---- Overlap resolution + full parse of accepted candidates ----
  // Both extraction paths emit candidates in (datagram, offset,
  // kind-rank) order — ascending offsets, and per offset the fixed
  // STUN, ChannelData, RTCP, QUIC, RTP sequence — so the per-datagram
  // groups below are contiguous ranges of `candidates`, already in the
  // order the cover walk needs; no per-datagram sort or bucket vectors.
  std::vector<DatagramAnalysis> out(n_packets);
  std::vector<Candidate*> cands;  // scratch, reused across datagrams
  std::size_t range_begin = 0;

  for (std::size_t di = 0; di < n_packets; ++di) {
    auto& anal = out[di];
    anal.payload_len = packets.len[di];
    std::size_t range_end = range_begin;
    while (range_end < candidates.size() &&
           candidates[range_end].datagram == di)
      ++range_end;
    anal.candidates = range_end - range_begin;
    cands.clear();
    for (std::size_t i = range_begin; i < range_end; ++i) {
      validate_candidate(candidates[i]);
      if (candidates[i].validated()) cands.push_back(&candidates[i]);
    }
    range_begin = range_end;

    // Overlap dominance: misaligned RTP candidates can slip past the
    // SSRC-support gate when their fake SSRC bytes partially coincide
    // with a real stream's (e.g. the off-by-one alignment that blends a
    // timestamp byte with three real SSRC bytes). A candidate whose
    // SSRC has a small fraction of the support of an overlapping RTP
    // candidate is noise and must not shadow the genuine message.
    auto support_of = [&](const Candidate* c) -> std::size_t {
      const auto it =
          std::lower_bound(rtp_ssrcs.begin(), rtp_ssrcs.end(), c->ssrc);
      if (it == rtp_ssrcs.end() || *it != c->ssrc) return 0;
      return rtp_support[static_cast<std::size_t>(it - rtp_ssrcs.begin())];
    };
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      Candidate* c = cands[ci];
      if (c->kind != MessageKind::kRtp) continue;
      for (std::size_t cj = 0; cj < cands.size(); ++cj) {
        const Candidate* n = cands[cj];
        if (ci == cj || n->kind != MessageKind::kRtp) continue;
        // Two RTP candidates in one datagram always overlap: each spans
        // the datagram remainder (RTP carries no length field).
        if (support_of(n) > 4 * support_of(c)) {
          c->flags &= static_cast<std::uint8_t>(~Candidate::kValidated);
          break;
        }
      }
    }
    std::erase_if(cands, [](const Candidate* c) { return !c->validated(); });

    std::size_t covered_until = 0;
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      Candidate* c = cands[ci];
      if (c->offset < covered_until) continue;  // overlaps accepted msg

      std::size_t extent = c->length;
      if (c->kind == MessageKind::kRtp) {
        // RTP has no length field: by default it spans the datagram
        // remainder, but a later validated RTP candidate with the same
        // SSRC splits it (the Zoom two-RTP-messages-per-datagram
        // pattern, §5.3). Other candidate kinds never truncate RTP —
        // they are overwhelmingly scan noise inside the media payload.
        extent = anal.payload_len - c->offset;
        for (std::size_t cj = ci + 1; cj < cands.size(); ++cj) {
          const Candidate* n = cands[cj];
          if (n->kind == MessageKind::kRtp && n->ssrc == c->ssrc &&
              n->offset > c->offset + 12) {
            extent = n->offset - c->offset;
            break;
          }
        }
      }

      const BytesView view = packets.payload(di).subspan(c->offset, extent);
      ExtractedMessage msg;
      msg.kind = c->kind;
      msg.offset = c->offset;
      msg.length = extent;
      bool ok = false;
      switch (c->kind) {
        case MessageKind::kStun: {
          stun::ParseOptions po;
          po.require_magic_cookie = false;
          if (auto p = stun::parse(view, po)) {
            msg.stun = std::move(p->message);
            msg.raw.assign(view.begin(),
                           view.begin() + static_cast<std::ptrdiff_t>(
                                              p->consumed));
            ok = true;
          }
          break;
        }
        case MessageKind::kChannelData:
          if (auto p = stun::parse_channel_data(view)) {
            msg.channel_data = std::move(*p);
            ok = true;
          }
          break;
        case MessageKind::kRtp:
          // Media bytes are opaque to the compliance layer; record the
          // length but skip copying them (~1 KiB per extracted packet).
          if (auto p = rtp::parse(view, rtp::ParseOptions{false})) {
            msg.rtp = std::move(p->packet);
            ok = true;
          }
          break;
        case MessageKind::kRtcp: {
          rtcp::ParseOptions po;
          po.max_trailing = options_.max_rtcp_trailing;
          if (auto p = rtcp::parse_compound(view, po)) {
            msg.rtcp = std::move(*p);
            ok = true;
          }
          break;
        }
        case MessageKind::kQuic: {
          quic::ParseOptions po;
          if (auto p = quic::parse(view, po)) {
            msg.quic = std::move(*p);
            ok = true;
          }
          break;
        }
      }
      if (!ok) continue;
      covered_until = c->offset + extent;
      anal.messages.push_back(std::move(msg));
    }

    if (anal.messages.empty()) {
      anal.klass = DatagramClass::kFullyProprietary;
    } else if (anal.messages.front().offset > 0) {
      anal.klass = DatagramClass::kProprietaryHeader;
      anal.proprietary_header_len = anal.messages.front().offset;
    } else {
      anal.klass = DatagramClass::kStandard;
    }
  }
  return out;
}

}  // namespace rtcc::dpi
