#include "dpi/scanning_dpi.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "proto/stun/stun_registry.hpp"

namespace rtcc::dpi {

using rtcc::util::BytesView;

namespace {

namespace stun = rtcc::proto::stun;
namespace rtp = rtcc::proto::rtp;
namespace rtcp = rtcc::proto::rtcp;
namespace quic = rtcc::proto::quic;

/// Lightweight candidate: header fields only; the full (allocating)
/// parse happens once per *accepted* candidate, keeping the scan cheap
/// even though RTP's header pattern matches ~25% of random offsets.
struct Candidate {
  MessageKind kind = MessageKind::kRtp;
  std::uint32_t datagram = 0;
  std::uint32_t offset = 0;
  std::uint32_t length = 0;  // wire extent (RTP: to end of datagram)
  bool validated = false;

  // Sniffed fields used by validation:
  std::uint32_t ssrc = 0;         // RTP / RTCP first-packet SSRC
  std::uint16_t seq = 0;          // RTP
  std::uint8_t payload_type = 0;  // RTP PT / RTCP first packet type
  std::uint16_t stun_type = 0;
  bool stun_classic = false;
  stun::TransactionId txid{};
  std::uint16_t channel = 0;  // ChannelData
  bool quic_long = false;
};

struct RtpSniff {
  std::size_t header_size = 0;
  std::uint8_t payload_type = 0;
  std::uint16_t seq = 0;
  std::uint32_t ssrc = 0;
};

/// Header-only RTP check: version 2, CSRC/extension fit in the bound.
std::optional<RtpSniff> sniff_rtp(BytesView d) {
  if (d.size() < 12) return std::nullopt;
  if ((d[0] >> 6) != 2) return std::nullopt;
  const std::size_t cc = d[0] & 0x0F;
  const bool ext = (d[0] & 0x10) != 0;
  std::size_t hdr = 12 + cc * 4;
  if (d.size() < hdr) return std::nullopt;
  if (ext) {
    if (d.size() < hdr + 4) return std::nullopt;
    const std::uint16_t words = rtcc::util::load_be16(d.data() + hdr + 2);
    hdr += 4 + std::size_t{words} * 4;
    if (d.size() < hdr) return std::nullopt;
  }
  if (d[0] & 0x20) {  // padding byte must fit
    const std::uint8_t pad = d[d.size() - 1];
    if (pad == 0 || hdr + pad > d.size()) return std::nullopt;
  }
  RtpSniff s;
  s.header_size = hdr;
  s.payload_type = d[1] & 0x7F;
  s.seq = rtcc::util::load_be16(d.data() + 2);
  s.ssrc = rtcc::util::load_be32(d.data() + 8);
  return s;
}

/// Header-only RTCP compound check.
struct RtcpSniff {
  std::size_t parsed = 0;    // bytes covered by well-formed packets
  std::size_t trailing = 0;  // leftover within the datagram
  std::uint8_t first_pt = 0;
  std::uint32_t first_ssrc = 0;
  std::size_t packets = 0;
};

std::optional<RtcpSniff> sniff_rtcp(BytesView d, std::size_t max_trailing) {
  if (d.size() < 8) return std::nullopt;
  RtcpSniff s;
  std::size_t pos = 0;
  while (pos + 4 <= d.size()) {
    const std::uint8_t b0 = d[pos];
    if ((b0 >> 6) != 2) break;
    const std::uint8_t pt = d[pos + 1];
    // Restrict to the assigned 200-207 block: the full 192-223 range
    // admits too many false positives when scanning mid-payload.
    if (pt < 200 || pt > 207) break;
    const std::size_t len =
        4 + std::size_t{rtcc::util::load_be16(d.data() + pos + 2)} * 4;
    if (pos + len > d.size()) break;
    if (s.packets == 0) {
      s.first_pt = pt;
      if (len >= 8) s.first_ssrc = rtcc::util::load_be32(d.data() + pos + 4);
    }
    ++s.packets;
    pos += len;
  }
  if (s.packets == 0) return std::nullopt;
  s.parsed = pos;
  s.trailing = d.size() - pos;
  if (s.trailing > max_trailing) return std::nullopt;
  return s;
}

std::uint16_t seq_distance(std::uint16_t a, std::uint16_t b) {
  const std::uint16_t d1 = static_cast<std::uint16_t>(a - b);
  const std::uint16_t d2 = static_cast<std::uint16_t>(b - a);
  return std::min(d1, d2);
}

struct TxidKey {
  stun::TransactionId id;
  bool operator<(const TxidKey& o) const { return id < o.id; }
};

}  // namespace

ScanningDpi::ScanningDpi(ScanOptions options) : options_(options) {}

std::vector<DatagramAnalysis> ScanningDpi::analyze_stream(
    const std::vector<StreamDatagram>& datagrams) const {
  std::vector<Candidate> candidates;
  candidates.reserve(datagrams.size() * 2);

  // ---- Step 1: candidate extraction (Algorithm 1, lines 5-13) ----
  for (std::size_t di = 0; di < datagrams.size(); ++di) {
    const BytesView payload = datagrams[di].payload;
    const std::size_t limit = std::min(options_.max_offset + 1, payload.size());
    for (std::size_t i = 0; i < limit; ++i) {
      const BytesView at = payload.subspan(i);

      if (options_.scan_stun && at.size() >= stun::kHeaderSize &&
          (at[0] & 0xC0) == 0) {
        const std::uint32_t cookie = rtcc::util::load_be32(at.data() + 4);
        const std::uint16_t dlen = rtcc::util::load_be16(at.data() + 2);
        const bool modern = cookie == stun::kMagicCookie;
        // Classic (RFC 3489) STUN has no cookie; to keep false
        // positives manageable we require a defined method and an
        // exact datagram-tail fit, which real classic stacks satisfy.
        const bool classic_fit =
            !modern &&
            stun::lookup_message_type(rtcc::util::load_be16(at.data()))
                    .source != proto::SpecSource::kUndefined &&
            stun::kHeaderSize + std::size_t{dlen} == at.size();
        if (modern || classic_fit) {
          stun::ParseOptions po;
          po.require_magic_cookie = modern;
          if (auto parsed = stun::parse(at, po)) {
            Candidate c;
            c.kind = MessageKind::kStun;
            c.datagram = static_cast<std::uint32_t>(di);
            c.offset = static_cast<std::uint32_t>(i);
            c.length = static_cast<std::uint32_t>(parsed->consumed);
            c.stun_type = parsed->message.type;
            c.stun_classic = !modern;
            c.txid = parsed->message.transaction_id;
            candidates.push_back(c);
          }
        }
      }

      // TURN ChannelData: first byte 0x40-0x4F.
      if (options_.scan_stun && at.size() >= 4 && at[0] >= 0x40 &&
          at[0] <= 0x4F) {
        const std::uint16_t clen = rtcc::util::load_be16(at.data() + 2);
        if (4 + std::size_t{clen} <= at.size()) {
          Candidate c;
          c.kind = MessageKind::kChannelData;
          c.datagram = static_cast<std::uint32_t>(di);
          c.offset = static_cast<std::uint32_t>(i);
          // Extent includes trailing padding up to the 4-byte boundary
          // only when it reaches the datagram end (the FaceTime
          // pattern); otherwise exactly 4+len.
          std::size_t extent = 4 + std::size_t{clen};
          const std::size_t padded = (extent + 3) & ~std::size_t{3};
          if (padded == at.size()) extent = padded;
          c.length = static_cast<std::uint32_t>(extent);
          c.channel = rtcc::util::load_be16(at.data());
          candidates.push_back(c);
        }
      }

      if (options_.scan_rtcp) {
        if (auto s = sniff_rtcp(at, options_.max_rtcp_trailing)) {
          Candidate c;
          c.kind = MessageKind::kRtcp;
          c.datagram = static_cast<std::uint32_t>(di);
          c.offset = static_cast<std::uint32_t>(i);
          c.length = static_cast<std::uint32_t>(s->parsed + s->trailing);
          c.payload_type = s->first_pt;
          c.ssrc = s->first_ssrc;
          candidates.push_back(c);
        }
      }

      if (options_.scan_quic && !at.empty()) {
        const std::uint8_t b0 = at[0];
        if ((b0 & 0xC0) == 0xC0) {  // long form + fixed bit
          if (auto h = quic::parse(at)) {
            // Only QUIC v1 long headers are scanned for: admitting the
            // all-zero version-negotiation pattern would match zero
            // runs inside opaque payloads.
            if (h->version == quic::kVersion1) {
              Candidate c;
              c.kind = MessageKind::kQuic;
              c.datagram = static_cast<std::uint32_t>(di);
              c.offset = static_cast<std::uint32_t>(i);
              c.length = static_cast<std::uint32_t>(h->wire_size());
              c.quic_long = true;
              candidates.push_back(c);
            }
          }
        } else if ((b0 & 0xC0) == 0x40 && i == 0) {
          // Short header: only meaningful at offset 0 and only if the
          // stream establishes a connection (checked in validation).
          Candidate c;
          c.kind = MessageKind::kQuic;
          c.datagram = static_cast<std::uint32_t>(di);
          c.offset = 0;
          c.length = static_cast<std::uint32_t>(at.size());
          c.quic_long = false;
          candidates.push_back(c);
        }
      }

      if (options_.scan_rtp) {
        if (auto s = sniff_rtp(at)) {
          // Skip byte patterns that are really RTCP (PT 72-79 with the
          // marker bit corresponds to RTCP types 200-207).
          const std::uint8_t pt_byte = at[1];
          if (!(pt_byte >= 0xC8 && pt_byte <= 0xCF)) {
            Candidate c;
            c.kind = MessageKind::kRtp;
            c.datagram = static_cast<std::uint32_t>(di);
            c.offset = static_cast<std::uint32_t>(i);
            c.length = static_cast<std::uint32_t>(at.size());
            c.ssrc = s->ssrc;
            c.seq = s->seq;
            c.payload_type = s->payload_type;
            candidates.push_back(c);
          }
        }
      }
    }
  }

  // ---- Step 2: protocol-specific validation (lines 14-19) ----
  std::unordered_map<std::uint32_t, std::vector<std::uint16_t>> rtp_seqs;
  std::map<TxidKey, int> stun_txids;
  std::unordered_map<std::uint16_t, int> channel_support;
  std::unordered_map<std::uint32_t, int> rtcp_ssrc_support;
  int quic_long_support = 0;

  for (const auto& c : candidates) {
    switch (c.kind) {
      case MessageKind::kRtp:
        rtp_seqs[c.ssrc].push_back(c.seq);
        break;
      case MessageKind::kStun:
        ++stun_txids[TxidKey{c.txid}];
        break;
      case MessageKind::kChannelData:
        ++channel_support[c.channel];
        break;
      case MessageKind::kRtcp:
        ++rtcp_ssrc_support[c.ssrc];
        break;
      case MessageKind::kQuic:
        if (c.quic_long) ++quic_long_support;
        break;
    }
  }

  // Validated RTP SSRCs (support + sequence-number continuity).
  //
  std::set<std::uint32_t> valid_rtp_ssrcs;
  for (auto& [ssrc, seqs] : rtp_seqs) {
    if (seqs.size() < options_.min_ssrc_support) continue;
    // Continuity: a healthy stream's sorted sequence numbers are mostly
    // adjacent; scanning noise produces uniformly random ones. Constant
    // proprietary-header bytes produce the opposite artifact — the same
    // fake (ssrc, seq) repeated verbatim — so genuine streams must also
    // show the sequence number actually advancing.
    auto sorted = seqs;
    std::sort(sorted.begin(), sorted.end());
    std::size_t close = 0, distinct = 1;
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      // A zero gap is a duplicate, not adjacency: constant header bytes
      // masquerading as RTP repeat the same few (ssrc, seq) pairs, and
      // duplicates must not count as continuity evidence.
      const std::uint16_t gap = seq_distance(sorted[i], sorted[i - 1]);
      if (gap >= 1 && gap <= 16) ++close;
      if (sorted[i] != sorted[i - 1]) ++distinct;
    }
    const bool advancing =
        distinct >= std::max<std::size_t>(2, sorted.size() / 4);
    if (advancing && close * 2 >= sorted.size() - 1)
      valid_rtp_ssrcs.insert(ssrc);
  }

  for (auto& c : candidates) {
    if (!options_.validate) {
      c.validated = true;
      continue;
    }
    switch (c.kind) {
      case MessageKind::kStun:
        // Magic-cookie messages and exact-fit classic messages are
        // structurally sound. Transaction pairing raises confidence but
        // unanswered requests must still be extracted — they are the
        // non-compliance evidence (e.g. FaceTime §5.2.1).
        c.validated = true;
        break;
      case MessageKind::kChannelData: {
        // A genuine ChannelData message extends to the datagram end
        // (optionally via padding), and real TURN channels repeat the
        // same channel number stream-wide; requiring both keeps random
        // byte runs inside media payloads from matching.
        const std::size_t remaining =
            datagrams[c.datagram].payload.size() - c.offset;
        c.validated = std::size_t{c.length} == remaining &&
                      channel_support[c.channel] >= 2;
        break;
      }
      case MessageKind::kRtp:
        c.validated = valid_rtp_ssrcs.count(c.ssrc) > 0;
        break;
      case MessageKind::kRtcp: {
        // Cross-validate against known RTP streams, or require repeated
        // appearances of the same sender SSRC within this stream
        // (covers RTCP-only streams and Discord's SSRC=0 usage).
        const std::size_t remaining =
            datagrams[c.datagram].payload.size() - c.offset;
        const bool extent_ok = std::size_t{c.length} == remaining;
        c.validated = extent_ok && (valid_rtp_ssrcs.count(c.ssrc) > 0 ||
                                    rtcp_ssrc_support[c.ssrc] >= 2);
        break;
      }
      case MessageKind::kQuic:
        // Long headers validate on version+structure; short headers
        // require the stream to have completed a long-header handshake.
        c.validated = c.quic_long || quic_long_support >= 2;
        break;
    }
  }

  // ---- Overlap resolution + full parse of accepted candidates ----
  std::vector<DatagramAnalysis> out(datagrams.size());
  std::vector<std::vector<Candidate*>> per_datagram(datagrams.size());
  for (auto& c : candidates) {
    ++out[c.datagram].candidates;
    if (c.validated) per_datagram[c.datagram].push_back(&c);
  }

  auto kind_rank = [](MessageKind k) {
    switch (k) {
      case MessageKind::kStun:
        return 0;
      case MessageKind::kChannelData:
        return 1;
      case MessageKind::kRtcp:
        return 2;
      case MessageKind::kQuic:
        return 3;
      case MessageKind::kRtp:
        return 4;
    }
    return 5;
  };

  for (std::size_t di = 0; di < datagrams.size(); ++di) {
    auto& anal = out[di];
    anal.payload_len = datagrams[di].payload.size();
    auto& cands = per_datagram[di];
    std::sort(cands.begin(), cands.end(),
              [&](const Candidate* a, const Candidate* b) {
                if (a->offset != b->offset) return a->offset < b->offset;
                return kind_rank(a->kind) < kind_rank(b->kind);
              });

    // Overlap dominance: misaligned RTP candidates can slip past the
    // SSRC-support gate when their fake SSRC bytes partially coincide
    // with a real stream's (e.g. the off-by-one alignment that blends a
    // timestamp byte with three real SSRC bytes). A candidate whose
    // SSRC has a small fraction of the support of an overlapping RTP
    // candidate is noise and must not shadow the genuine message.
    auto support_of = [&](const Candidate* c) -> std::size_t {
      auto it = rtp_seqs.find(c->ssrc);
      return it == rtp_seqs.end() ? 0 : it->second.size();
    };
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      Candidate* c = cands[ci];
      if (c->kind != MessageKind::kRtp) continue;
      for (std::size_t cj = 0; cj < cands.size(); ++cj) {
        const Candidate* n = cands[cj];
        if (ci == cj || n->kind != MessageKind::kRtp) continue;
        // Two RTP candidates in one datagram always overlap: each spans
        // the datagram remainder (RTP carries no length field).
        if (support_of(n) > 4 * support_of(c)) {
          c->validated = false;
          break;
        }
      }
    }
    std::erase_if(cands, [](const Candidate* c) { return !c->validated; });

    std::size_t covered_until = 0;
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      Candidate* c = cands[ci];
      if (c->offset < covered_until) continue;  // overlaps accepted msg

      std::size_t extent = c->length;
      if (c->kind == MessageKind::kRtp) {
        // RTP has no length field: by default it spans the datagram
        // remainder, but a later validated RTP candidate with the same
        // SSRC splits it (the Zoom two-RTP-messages-per-datagram
        // pattern, §5.3). Other candidate kinds never truncate RTP —
        // they are overwhelmingly scan noise inside the media payload.
        extent = anal.payload_len - c->offset;
        for (std::size_t cj = ci + 1; cj < cands.size(); ++cj) {
          const Candidate* n = cands[cj];
          if (n->kind == MessageKind::kRtp && n->ssrc == c->ssrc &&
              n->offset > c->offset + 12) {
            extent = n->offset - c->offset;
            break;
          }
        }
      }

      const BytesView view = datagrams[di].payload.subspan(c->offset, extent);
      ExtractedMessage msg;
      msg.kind = c->kind;
      msg.offset = c->offset;
      msg.length = extent;
      bool ok = false;
      switch (c->kind) {
        case MessageKind::kStun: {
          stun::ParseOptions po;
          po.require_magic_cookie = false;
          if (auto p = stun::parse(view, po)) {
            msg.stun = std::move(p->message);
            msg.raw.assign(view.begin(),
                           view.begin() + static_cast<std::ptrdiff_t>(
                                              p->consumed));
            ok = true;
          }
          break;
        }
        case MessageKind::kChannelData:
          if (auto p = stun::parse_channel_data(view)) {
            msg.channel_data = std::move(*p);
            ok = true;
          }
          break;
        case MessageKind::kRtp:
          if (auto p = rtp::parse(view)) {
            msg.rtp = std::move(p->packet);
            ok = true;
          }
          break;
        case MessageKind::kRtcp: {
          rtcp::ParseOptions po;
          po.max_trailing = options_.max_rtcp_trailing;
          if (auto p = rtcp::parse_compound(view, po)) {
            msg.rtcp = std::move(*p);
            ok = true;
          }
          break;
        }
        case MessageKind::kQuic: {
          quic::ParseOptions po;
          if (auto p = quic::parse(view, po)) {
            msg.quic = std::move(*p);
            ok = true;
          }
          break;
        }
      }
      if (!ok) continue;
      covered_until = c->offset + extent;
      anal.messages.push_back(std::move(msg));
    }

    if (anal.messages.empty()) {
      anal.klass = DatagramClass::kFullyProprietary;
    } else if (anal.messages.front().offset > 0) {
      anal.klass = DatagramClass::kProprietaryHeader;
      anal.proprietary_header_len = anal.messages.front().offset;
    } else {
      anal.klass = DatagramClass::kStandard;
    }
  }
  return out;
}

}  // namespace rtcc::dpi
