#include "dpi/scanning_dpi.hpp"

#include <algorithm>
#include <unordered_map>

#include "dpi/anchor_scan.hpp"
#include "proto/stun/stun_registry.hpp"

namespace rtcc::dpi {

using rtcc::util::BytesView;

namespace {

// The emit helpers run once per anchored offset — ~25% of all scanned
// bytes on encrypted payloads — so a real call (argument spills plus
// materialising the optional sniff result) costs more than the sniff
// itself. Force-inline them into both extraction loops.
#if defined(__GNUC__) || defined(__clang__)
#define RTCC_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define RTCC_ALWAYS_INLINE inline
#endif

namespace stun = rtcc::proto::stun;
namespace rtp = rtcc::proto::rtp;
namespace rtcp = rtcc::proto::rtcp;
namespace quic = rtcc::proto::quic;

/// Lightweight candidate: header fields only; the full (allocating)
/// parse happens once per *accepted* candidate, keeping the scan cheap
/// even though RTP's header pattern matches ~25% of random offsets.
struct Candidate {
  MessageKind kind = MessageKind::kRtp;
  std::uint32_t datagram = 0;
  std::uint32_t offset = 0;
  std::uint32_t length = 0;  // wire extent (RTP: to end of datagram)
  bool validated = false;

  // Sniffed fields used by validation:
  std::uint32_t ssrc = 0;         // RTP / RTCP first-packet SSRC
  std::uint16_t seq = 0;          // RTP
  std::uint8_t payload_type = 0;  // RTP PT / RTCP first packet type
  std::uint16_t stun_type = 0;
  bool stun_classic = false;
  stun::TransactionId txid{};
  std::uint16_t channel = 0;  // ChannelData
  bool quic_long = false;
};

struct RtpSniff {
  std::size_t header_size = 0;
  std::uint8_t payload_type = 0;
  std::uint16_t seq = 0;
  std::uint32_t ssrc = 0;
};

/// Header-only RTP check: version 2, CSRC/extension fit in the bound.
RTCC_ALWAYS_INLINE std::optional<RtpSniff> sniff_rtp(BytesView d) {
  if (d.size() < 12) return std::nullopt;
  if ((d[0] >> 6) != 2) return std::nullopt;
  const std::size_t cc = d[0] & 0x0F;
  const bool ext = (d[0] & 0x10) != 0;
  std::size_t hdr = 12 + cc * 4;
  if (d.size() < hdr) return std::nullopt;
  if (ext) {
    if (d.size() < hdr + 4) return std::nullopt;
    const std::uint16_t words = rtcc::util::load_be16(d.data() + hdr + 2);
    hdr += 4 + std::size_t{words} * 4;
    if (d.size() < hdr) return std::nullopt;
  }
  if (d[0] & 0x20) {  // padding byte must fit
    const std::uint8_t pad = d[d.size() - 1];
    if (pad == 0 || hdr + pad > d.size()) return std::nullopt;
  }
  RtpSniff s;
  s.header_size = hdr;
  s.payload_type = d[1] & 0x7F;
  s.seq = rtcc::util::load_be16(d.data() + 2);
  s.ssrc = rtcc::util::load_be32(d.data() + 8);
  return s;
}

/// Header-only RTCP compound check.
struct RtcpSniff {
  std::size_t parsed = 0;    // bytes covered by well-formed packets
  std::size_t trailing = 0;  // leftover within the datagram
  std::uint8_t first_pt = 0;
  std::uint32_t first_ssrc = 0;
  std::size_t packets = 0;
};

RTCC_ALWAYS_INLINE std::optional<RtcpSniff> sniff_rtcp(BytesView d, std::size_t max_trailing) {
  if (d.size() < 8) return std::nullopt;
  RtcpSniff s;
  std::size_t pos = 0;
  while (pos + 4 <= d.size()) {
    const std::uint8_t b0 = d[pos];
    if ((b0 >> 6) != 2) break;
    const std::uint8_t pt = d[pos + 1];
    // Restrict to the assigned 200-207 block: the full 192-223 range
    // admits too many false positives when scanning mid-payload.
    if (pt < 200 || pt > 207) break;
    const std::size_t len =
        4 + std::size_t{rtcc::util::load_be16(d.data() + pos + 2)} * 4;
    if (pos + len > d.size()) break;
    if (s.packets == 0) {
      s.first_pt = pt;
      if (len >= 8) s.first_ssrc = rtcc::util::load_be32(d.data() + pos + 4);
    }
    ++s.packets;
    pos += len;
  }
  if (s.packets == 0) return std::nullopt;
  s.parsed = pos;
  s.trailing = d.size() - pos;
  if (s.trailing > max_trailing) return std::nullopt;
  return s;
}

std::uint16_t seq_distance(std::uint16_t a, std::uint16_t b) {
  const std::uint16_t d1 = static_cast<std::uint16_t>(a - b);
  const std::uint16_t d2 = static_cast<std::uint16_t>(b - a);
  return std::min(d1, d2);
}

/// Sorts packed (ssrc << 16 | seq) keys. The keys are 48-bit and there
/// is roughly one per case-2 anchor — ~10^5 for a relay media stream —
/// so comparison sorting them costs more than the whole validation
/// walk; three 16-bit LSD counting passes are near-linear instead.
void sort_rtp_pairs(std::vector<std::uint64_t>& v) {
  if (v.size() < 2048) {
    std::sort(v.begin(), v.end());
    return;
  }
  std::vector<std::uint64_t> tmp(v.size());
  std::vector<std::uint32_t> pos(1 << 16);
  for (int pass = 0; pass < 3; ++pass) {
    const int shift = pass * 16;
    std::fill(pos.begin(), pos.end(), 0);
    for (const std::uint64_t x : v) ++pos[(x >> shift) & 0xFFFF];
    std::uint32_t running = 0;
    for (std::uint32_t& c : pos) {
      const std::uint32_t n = c;
      c = running;
      running += n;
    }
    for (const std::uint64_t x : v) tmp[pos[(x >> shift) & 0xFFFF]++] = x;
    v.swap(tmp);
  }
}

struct TxidHash {
  std::size_t operator()(const stun::TransactionId& id) const {
    std::uint64_t h = 14695981039346656037ULL;  // FNV-1a
    for (const std::uint8_t b : id) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

// ---- Candidate emission, one helper per protocol ----
//
// Each helper re-checks its full structural conditions, so it emits the
// same candidate whether invoked at every offset (naive oracle) or only
// at anchored offsets (prefilter): the anchors in anchor_scan.cpp are
// necessary conditions of these checks, never a replacement for them.

RTCC_ALWAYS_INLINE void emit_stun(BytesView at, std::uint32_t di, std::uint32_t off,
               std::vector<Candidate>& out) {
  if (at.size() < stun::kHeaderSize || (at[0] & 0xC0) != 0) return;
  const std::uint32_t cookie = rtcc::util::load_be32(at.data() + 4);
  const std::uint16_t dlen = rtcc::util::load_be16(at.data() + 2);
  const bool modern = cookie == stun::kMagicCookie;
  // Classic (RFC 3489) STUN has no cookie; to keep false positives
  // manageable we require a defined method and an exact datagram-tail
  // fit, which real classic stacks satisfy.
  const bool classic_fit =
      !modern &&
      stun::lookup_message_type(rtcc::util::load_be16(at.data())).source !=
          proto::SpecSource::kUndefined &&
      stun::kHeaderSize + std::size_t{dlen} == at.size();
  if (!modern && !classic_fit) return;
  stun::ParseOptions po;
  po.require_magic_cookie = modern;
  if (auto parsed = stun::parse(at, po)) {
    Candidate& c = out.emplace_back();
    c.kind = MessageKind::kStun;
    c.datagram = di;
    c.offset = off;
    c.length = static_cast<std::uint32_t>(parsed->consumed);
    c.stun_type = parsed->message.type;
    c.stun_classic = !modern;
    c.txid = parsed->message.transaction_id;
  }
}

RTCC_ALWAYS_INLINE void emit_channel_data(BytesView at, std::uint32_t di, std::uint32_t off,
                       std::vector<Candidate>& out) {
  // TURN ChannelData: first byte 0x40-0x4F.
  if (at.size() < 4 || at[0] < 0x40 || at[0] > 0x4F) return;
  const std::uint16_t clen = rtcc::util::load_be16(at.data() + 2);
  if (4 + std::size_t{clen} > at.size()) return;
  Candidate& c = out.emplace_back();
  c.kind = MessageKind::kChannelData;
  c.datagram = di;
  c.offset = off;
  // Extent includes trailing padding up to the 4-byte boundary only
  // when it reaches the datagram end (the FaceTime pattern); otherwise
  // exactly 4+len.
  std::size_t extent = 4 + std::size_t{clen};
  const std::size_t padded = (extent + 3) & ~std::size_t{3};
  if (padded == at.size()) extent = padded;
  c.length = static_cast<std::uint32_t>(extent);
  c.channel = rtcc::util::load_be16(at.data());
}

RTCC_ALWAYS_INLINE void emit_rtcp(BytesView at, std::uint32_t di, std::uint32_t off,
               std::size_t max_trailing, std::vector<Candidate>& out) {
  if (auto s = sniff_rtcp(at, max_trailing)) {
    Candidate& c = out.emplace_back();
    c.kind = MessageKind::kRtcp;
    c.datagram = di;
    c.offset = off;
    c.length = static_cast<std::uint32_t>(s->parsed + s->trailing);
    c.payload_type = s->first_pt;
    c.ssrc = s->first_ssrc;
  }
}

RTCC_ALWAYS_INLINE void emit_quic(BytesView at, std::uint32_t di, std::uint32_t off,
               std::vector<Candidate>& out) {
  if (at.empty()) return;
  const std::uint8_t b0 = at[0];
  if ((b0 & 0xC0) == 0xC0) {  // long form + fixed bit
    if (auto h = quic::parse(at)) {
      // Only QUIC v1 long headers are scanned for: admitting the
      // all-zero version-negotiation pattern would match zero runs
      // inside opaque payloads.
      if (h->version == quic::kVersion1) {
        Candidate& c = out.emplace_back();
        c.kind = MessageKind::kQuic;
        c.datagram = di;
        c.offset = off;
        c.length = static_cast<std::uint32_t>(h->wire_size());
        c.quic_long = true;
      }
    }
  } else if ((b0 & 0xC0) == 0x40 && off == 0) {
    // Short header: only meaningful at offset 0 and only if the stream
    // establishes a connection (checked in validation).
    Candidate& c = out.emplace_back();
    c.kind = MessageKind::kQuic;
    c.datagram = di;
    c.offset = 0;
    c.length = static_cast<std::uint32_t>(at.size());
    c.quic_long = false;
  }
}

RTCC_ALWAYS_INLINE void emit_rtp(BytesView at, std::uint32_t di, std::uint32_t off,
              std::vector<Candidate>& out) {
  if (auto s = sniff_rtp(at)) {
    // Skip byte patterns that are really RTCP (PT 72-79 with the marker
    // bit corresponds to RTCP types 200-207).
    const std::uint8_t pt_byte = at[1];
    if (pt_byte >= 0xC8 && pt_byte <= 0xCF) return;
    Candidate& c = out.emplace_back();
    c.kind = MessageKind::kRtp;
    c.datagram = di;
    c.offset = off;
    c.length = static_cast<std::uint32_t>(at.size());
    c.ssrc = s->ssrc;
    c.seq = s->seq;
    c.payload_type = s->payload_type;
  }
}

}  // namespace

ScanningDpi::ScanningDpi(ScanOptions options) : options_(options) {}

std::vector<DatagramAnalysis> ScanningDpi::analyze_stream(
    const std::vector<StreamDatagram>& datagrams) const {
  std::vector<Candidate> candidates;
  candidates.reserve(datagrams.size() * 2);

  // ---- Step 1: candidate extraction (Algorithm 1, lines 5-13) ----
  if (options_.use_anchor_prefilter) {
    // Fast path: one cheap pass per datagram (anchor_scan.hpp) finds
    // the offsets whose byte anchors match and the full sniffs run
    // right there, fused into the scan. Per-offset protocol order
    // (STUN, ChannelData, RTCP, QUIC, RTP) matches the oracle loop so
    // the candidate list is identical, not merely equal as a set.
    for (std::size_t di = 0; di < datagrams.size(); ++di) {
      const BytesView payload = datagrams[di].payload;
      const auto d32 = static_cast<std::uint32_t>(di);
      for_each_anchor(
          payload, options_, [&](std::uint32_t off, std::uint8_t mask) {
            const BytesView at = payload.subspan(off);
            if (mask == anchor::kRtp) {  // ~25% of offsets: keep it lean
              emit_rtp(at, d32, off, candidates);
              return;
            }
            if (mask & anchor::kStun) emit_stun(at, d32, off, candidates);
            if (mask & anchor::kChannelData)
              emit_channel_data(at, d32, off, candidates);
            if (mask & anchor::kRtcp)
              emit_rtcp(at, d32, off, options_.max_rtcp_trailing, candidates);
            if (mask & (anchor::kQuicLong | anchor::kQuicShort))
              emit_quic(at, d32, off, candidates);
            if (mask & anchor::kRtp) emit_rtp(at, d32, off, candidates);
          });
    }
  } else {
    // Oracle path: every protocol sniff at every offset 0..k.
    for (std::size_t di = 0; di < datagrams.size(); ++di) {
      const BytesView payload = datagrams[di].payload;
      const std::size_t limit =
          std::min(options_.max_offset + 1, payload.size());
      const auto d32 = static_cast<std::uint32_t>(di);
      for (std::size_t i = 0; i < limit; ++i) {
        const BytesView at = payload.subspan(i);
        const auto off = static_cast<std::uint32_t>(i);
        if (options_.scan_stun) {
          emit_stun(at, d32, off, candidates);
          emit_channel_data(at, d32, off, candidates);
        }
        if (options_.scan_rtcp)
          emit_rtcp(at, d32, off, options_.max_rtcp_trailing, candidates);
        if (options_.scan_quic) emit_quic(at, d32, off, candidates);
        if (options_.scan_rtp) emit_rtp(at, d32, off, candidates);
      }
    }
  }

  // ---- Step 2: protocol-specific validation (lines 14-19) ----
  // These tables sit in the per-stream hot loop. The RTP table is the
  // big one — the scan yields one noise candidate per ~25% of offsets,
  // so it holds one entry per candidate with mostly-unique fake SSRCs —
  // and is kept flat: (ssrc, seq) packed into one u64, sorted once,
  // then walked group-by-group. A map of per-SSRC vectors here costs an
  // allocation per noise SSRC and dominates validation time. The small
  // tables (STUN txids, channels, RTCP SSRCs) stay hashed.
  std::vector<std::uint64_t> rtp_pairs;  // ssrc << 16 | seq
  rtp_pairs.reserve(candidates.size());
  std::unordered_map<stun::TransactionId, int, TxidHash> stun_txids;
  std::unordered_map<std::uint16_t, int> channel_support;
  std::unordered_map<std::uint32_t, int> rtcp_ssrc_support;
  int quic_long_support = 0;

  for (const auto& c : candidates) {
    switch (c.kind) {
      case MessageKind::kRtp:
        rtp_pairs.push_back(std::uint64_t{c.ssrc} << 16 | c.seq);
        break;
      case MessageKind::kStun:
        ++stun_txids[c.txid];
        break;
      case MessageKind::kChannelData:
        ++channel_support[c.channel];
        break;
      case MessageKind::kRtcp:
        ++rtcp_ssrc_support[c.ssrc];
        break;
      case MessageKind::kQuic:
        if (c.quic_long) ++quic_long_support;
        break;
    }
  }

  // Sorting the packed pairs groups each SSRC's sequence numbers in
  // ascending order, exactly what the continuity check needs.
  sort_rtp_pairs(rtp_pairs);

  // Per-SSRC support (for overlap dominance) and validated SSRCs
  // (support + sequence-number continuity), ascending, probed with
  // binary search in the loops below.
  std::vector<std::uint32_t> rtp_ssrcs, rtp_support, valid_rtp_ssrcs;
  rtp_ssrcs.reserve(rtp_pairs.size());
  rtp_support.reserve(rtp_pairs.size());
  for (std::size_t lo = 0; lo < rtp_pairs.size();) {
    const auto ssrc = static_cast<std::uint32_t>(rtp_pairs[lo] >> 16);
    std::size_t hi = lo + 1;
    while (hi < rtp_pairs.size() && (rtp_pairs[hi] >> 16) == ssrc) ++hi;
    const std::size_t support = hi - lo;
    rtp_ssrcs.push_back(ssrc);
    rtp_support.push_back(static_cast<std::uint32_t>(support));
    if (support >= options_.min_ssrc_support) {
      // Continuity: a healthy stream's sorted sequence numbers are
      // mostly adjacent; scanning noise produces uniformly random ones.
      // Constant proprietary-header bytes produce the opposite artifact
      // — the same fake (ssrc, seq) repeated verbatim — so genuine
      // streams must also show the sequence number actually advancing.
      std::size_t close = 0, distinct = 1;
      for (std::size_t i = lo + 1; i < hi; ++i) {
        const auto seq = static_cast<std::uint16_t>(rtp_pairs[i]);
        const auto prev = static_cast<std::uint16_t>(rtp_pairs[i - 1]);
        // A zero gap is a duplicate, not adjacency: constant header
        // bytes masquerading as RTP repeat the same few (ssrc, seq)
        // pairs, and duplicates must not count as continuity evidence.
        const std::uint16_t gap = seq_distance(seq, prev);
        if (gap >= 1 && gap <= 16) ++close;
        if (seq != prev) ++distinct;
      }
      const bool advancing = distinct >= std::max<std::size_t>(2, support / 4);
      if (advancing && close * 2 >= support - 1)
        valid_rtp_ssrcs.push_back(ssrc);
    }
    lo = hi;
  }
  const auto ssrc_valid = [&valid_rtp_ssrcs](std::uint32_t ssrc) {
    return std::binary_search(valid_rtp_ssrcs.begin(), valid_rtp_ssrcs.end(),
                              ssrc);
  };

  for (auto& c : candidates) {
    if (!options_.validate) {
      c.validated = true;
      continue;
    }
    switch (c.kind) {
      case MessageKind::kStun:
        // Magic-cookie messages and exact-fit classic messages are
        // structurally sound. Transaction pairing raises confidence but
        // unanswered requests must still be extracted — they are the
        // non-compliance evidence (e.g. FaceTime §5.2.1).
        c.validated = true;
        break;
      case MessageKind::kChannelData: {
        // A genuine ChannelData message extends to the datagram end
        // (optionally via padding), and real TURN channels repeat the
        // same channel number stream-wide; requiring both keeps random
        // byte runs inside media payloads from matching.
        const std::size_t remaining =
            datagrams[c.datagram].payload.size() - c.offset;
        c.validated = std::size_t{c.length} == remaining &&
                      channel_support[c.channel] >= 2;
        break;
      }
      case MessageKind::kRtp:
        c.validated = ssrc_valid(c.ssrc);
        break;
      case MessageKind::kRtcp: {
        // Cross-validate against known RTP streams, or require repeated
        // appearances of the same sender SSRC within this stream
        // (covers RTCP-only streams and Discord's SSRC=0 usage).
        const std::size_t remaining =
            datagrams[c.datagram].payload.size() - c.offset;
        const bool extent_ok = std::size_t{c.length} == remaining;
        c.validated = extent_ok && (ssrc_valid(c.ssrc) ||
                                    rtcp_ssrc_support[c.ssrc] >= 2);
        break;
      }
      case MessageKind::kQuic:
        // Long headers validate on version+structure; short headers
        // require the stream to have completed a long-header handshake.
        c.validated = c.quic_long || quic_long_support >= 2;
        break;
    }
  }

  // ---- Overlap resolution + full parse of accepted candidates ----
  // Both extraction paths emit candidates in (datagram, offset,
  // kind-rank) order — ascending offsets, and per offset the fixed
  // STUN, ChannelData, RTCP, QUIC, RTP sequence — so the per-datagram
  // groups below are contiguous ranges of `candidates`, already in the
  // order the cover walk needs; no per-datagram sort or bucket vectors.
  std::vector<DatagramAnalysis> out(datagrams.size());
  std::vector<Candidate*> cands;  // scratch, reused across datagrams
  std::size_t range_begin = 0;

  for (std::size_t di = 0; di < datagrams.size(); ++di) {
    auto& anal = out[di];
    anal.payload_len = datagrams[di].payload.size();
    std::size_t range_end = range_begin;
    while (range_end < candidates.size() &&
           candidates[range_end].datagram == di)
      ++range_end;
    anal.candidates = range_end - range_begin;
    cands.clear();
    for (std::size_t i = range_begin; i < range_end; ++i)
      if (candidates[i].validated) cands.push_back(&candidates[i]);
    range_begin = range_end;

    // Overlap dominance: misaligned RTP candidates can slip past the
    // SSRC-support gate when their fake SSRC bytes partially coincide
    // with a real stream's (e.g. the off-by-one alignment that blends a
    // timestamp byte with three real SSRC bytes). A candidate whose
    // SSRC has a small fraction of the support of an overlapping RTP
    // candidate is noise and must not shadow the genuine message.
    auto support_of = [&](const Candidate* c) -> std::size_t {
      const auto it =
          std::lower_bound(rtp_ssrcs.begin(), rtp_ssrcs.end(), c->ssrc);
      if (it == rtp_ssrcs.end() || *it != c->ssrc) return 0;
      return rtp_support[static_cast<std::size_t>(it - rtp_ssrcs.begin())];
    };
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      Candidate* c = cands[ci];
      if (c->kind != MessageKind::kRtp) continue;
      for (std::size_t cj = 0; cj < cands.size(); ++cj) {
        const Candidate* n = cands[cj];
        if (ci == cj || n->kind != MessageKind::kRtp) continue;
        // Two RTP candidates in one datagram always overlap: each spans
        // the datagram remainder (RTP carries no length field).
        if (support_of(n) > 4 * support_of(c)) {
          c->validated = false;
          break;
        }
      }
    }
    std::erase_if(cands, [](const Candidate* c) { return !c->validated; });

    std::size_t covered_until = 0;
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      Candidate* c = cands[ci];
      if (c->offset < covered_until) continue;  // overlaps accepted msg

      std::size_t extent = c->length;
      if (c->kind == MessageKind::kRtp) {
        // RTP has no length field: by default it spans the datagram
        // remainder, but a later validated RTP candidate with the same
        // SSRC splits it (the Zoom two-RTP-messages-per-datagram
        // pattern, §5.3). Other candidate kinds never truncate RTP —
        // they are overwhelmingly scan noise inside the media payload.
        extent = anal.payload_len - c->offset;
        for (std::size_t cj = ci + 1; cj < cands.size(); ++cj) {
          const Candidate* n = cands[cj];
          if (n->kind == MessageKind::kRtp && n->ssrc == c->ssrc &&
              n->offset > c->offset + 12) {
            extent = n->offset - c->offset;
            break;
          }
        }
      }

      const BytesView view = datagrams[di].payload.subspan(c->offset, extent);
      ExtractedMessage msg;
      msg.kind = c->kind;
      msg.offset = c->offset;
      msg.length = extent;
      bool ok = false;
      switch (c->kind) {
        case MessageKind::kStun: {
          stun::ParseOptions po;
          po.require_magic_cookie = false;
          if (auto p = stun::parse(view, po)) {
            msg.stun = std::move(p->message);
            msg.raw.assign(view.begin(),
                           view.begin() + static_cast<std::ptrdiff_t>(
                                              p->consumed));
            ok = true;
          }
          break;
        }
        case MessageKind::kChannelData:
          if (auto p = stun::parse_channel_data(view)) {
            msg.channel_data = std::move(*p);
            ok = true;
          }
          break;
        case MessageKind::kRtp:
          if (auto p = rtp::parse(view)) {
            msg.rtp = std::move(p->packet);
            ok = true;
          }
          break;
        case MessageKind::kRtcp: {
          rtcp::ParseOptions po;
          po.max_trailing = options_.max_rtcp_trailing;
          if (auto p = rtcp::parse_compound(view, po)) {
            msg.rtcp = std::move(*p);
            ok = true;
          }
          break;
        }
        case MessageKind::kQuic: {
          quic::ParseOptions po;
          if (auto p = quic::parse(view, po)) {
            msg.quic = std::move(*p);
            ok = true;
          }
          break;
        }
      }
      if (!ok) continue;
      covered_until = c->offset + extent;
      anal.messages.push_back(std::move(msg));
    }

    if (anal.messages.empty()) {
      anal.klass = DatagramClass::kFullyProprietary;
    } else if (anal.messages.front().offset > 0) {
      anal.klass = DatagramClass::kProprietaryHeader;
      anal.proprietary_header_len = anal.messages.front().offset;
    } else {
      anal.klass = DatagramClass::kStandard;
    }
  }
  return out;
}

}  // namespace rtcc::dpi
