// Per-node counters for the vector packet-processing graph
// (DESIGN.md §6): decode → demux → anchor prefilter → scanning DPI →
// compliance.
//
// Counter semantics follow the VPP convention — vectors is the number
// of times the node ran over a (possibly partial) batch, packets the
// number of descriptors it processed, and suspended the packets the
// node parked instead of handing downstream in full:
//   decode     suspended = datagrams resolved through reassembly
//   demux      suspended = empty-payload datagrams dropped from scan
//   prefilter  suspended = anchored offsets staged for the scan node
//   scan       suspended = candidates parked for stream validation
//   compliance suspended = messages observed, awaiting finalize()
// packets/vectors therefore also expose the achieved average vector
// occupancy (packets / vectors), the main VPP health metric.
//
// The counters are *diagnostic*, not part of the compliance verdict:
// vectors depends on RTCC_BATCH, so the metamorphic / batch-parity
// signatures exclude them (testkit::meta::compliance_signature), while
// the report JSON surfaces them under "nodes".
#pragma once

#include <cstdint>

namespace rtcc::dpi {

struct NodeCounters {
  std::uint64_t vectors = 0;
  std::uint64_t packets = 0;
  std::uint64_t suspended = 0;

  void merge(const NodeCounters& o) {
    vectors += o.vectors;
    packets += o.packets;
    suspended += o.suspended;
  }

  [[nodiscard]] bool any() const {
    return vectors != 0 || packets != 0 || suspended != 0;
  }
};

struct PipelineCounters {
  NodeCounters decode;
  NodeCounters demux;
  NodeCounters prefilter;
  NodeCounters scan;
  NodeCounters compliance;

  void merge(const PipelineCounters& o) {
    decode.merge(o.decode);
    demux.merge(o.demux);
    prefilter.merge(o.prefilter);
    scan.merge(o.scan);
    compliance.merge(o.compliance);
  }

  [[nodiscard]] bool any() const {
    return decode.any() || demux.any() || prefilter.any() || scan.any() ||
           compliance.any();
  }
};

}  // namespace rtcc::dpi
