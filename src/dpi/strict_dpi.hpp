// Peafowl-style strict baseline DPI (§4.1 motivation): matches protocol
// headers at offset zero only, with strict field-value restrictions
// (e.g. the ~30 "valid" RTP payload types Peafowl hardcodes, STUN magic
// cookie required). Used by the ablation bench to show what fraction of
// real RTC messages a conventional DPI misses.
#pragma once

#include <vector>

#include "dpi/message.hpp"
#include "dpi/scanning_dpi.hpp"

namespace rtcc::dpi {

struct StrictOptions {
  /// Accept only RTP payload types in the Peafowl-style static list
  /// (RFC 3551 assigned types). Dynamic types 96-127 are rejected —
  /// this is exactly the restriction the paper removed.
  bool restrict_rtp_payload_types = true;
};

class StrictDpi {
 public:
  explicit StrictDpi(StrictOptions options = {});

  /// Same result shape as ScanningDpi so the ablation can diff them.
  [[nodiscard]] std::vector<DatagramAnalysis> analyze_stream(
      const std::vector<StreamDatagram>& datagrams) const;

 private:
  StrictOptions options_;
};

}  // namespace rtcc::dpi
