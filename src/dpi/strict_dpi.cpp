#include "dpi/strict_dpi.hpp"

#include <set>

#include "proto/stun/stun_registry.hpp"

namespace rtcc::dpi {

using rtcc::util::BytesView;

namespace {

namespace stun = rtcc::proto::stun;
namespace rtp = rtcc::proto::rtp;
namespace rtcp = rtcc::proto::rtcp;
namespace quic = rtcc::proto::quic;

/// RFC 3551 statically assigned payload types — the fixed list a
/// Peafowl-style RTP inspector accepts.
const std::set<std::uint8_t>& static_payload_types() {
  static const std::set<std::uint8_t> kTypes = {
      0,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15, 16,
      17, 18, 25, 26, 28, 31, 32, 33, 34};
  return kTypes;
}

}  // namespace

StrictDpi::StrictDpi(StrictOptions options) : options_(options) {}

std::vector<DatagramAnalysis> StrictDpi::analyze_stream(
    const std::vector<StreamDatagram>& datagrams) const {
  std::vector<DatagramAnalysis> out(datagrams.size());
  for (std::size_t di = 0; di < datagrams.size(); ++di) {
    auto& anal = out[di];
    const BytesView payload = datagrams[di].payload;
    anal.payload_len = payload.size();
    anal.klass = DatagramClass::kFullyProprietary;
    if (payload.empty()) continue;

    ExtractedMessage msg;
    msg.offset = 0;
    bool matched = false;

    // STUN: offset zero, magic cookie mandatory, message type defined.
    {
      stun::ParseOptions po;
      po.require_magic_cookie = true;
      if (auto p = stun::parse(payload, po)) {
        if (stun::lookup_message_type(p->message.type).source !=
            proto::SpecSource::kUndefined) {
          msg.kind = MessageKind::kStun;
          msg.length = p->consumed;
          msg.stun = std::move(p->message);
          matched = true;
        }
      }
    }

    if (!matched) {
      if (auto cd = stun::parse_channel_data(payload)) {
        if (cd->wire_size() == payload.size()) {
          msg.kind = MessageKind::kChannelData;
          msg.length = cd->wire_size();
          msg.channel_data = std::move(*cd);
          matched = true;
        }
      }
    }

    // RTCP before RTP (the 200-207 types overlap RTP's PT space).
    if (!matched) {
      rtcp::ParseOptions po;
      po.allow_trailing = false;  // strict: the compound must fit exactly
      if (auto c = rtcp::parse_compound(payload, po)) {
        msg.kind = MessageKind::kRtcp;
        msg.length = c->parsed_size();
        msg.rtcp = std::move(*c);
        matched = true;
      }
    }

    if (!matched) {
      if (auto p = rtp::parse(payload, rtp::ParseOptions{false})) {
        const bool pt_ok =
            !options_.restrict_rtp_payload_types ||
            static_payload_types().count(p->packet.payload_type) > 0;
        // Strict DPI also refuses undefined extension profiles.
        const bool ext_ok =
            !p->packet.extension ||
            p->packet.extension->profile == rtp::kOneByteProfile ||
            rtp::is_two_byte_profile(p->packet.extension->profile);
        if (pt_ok && ext_ok) {
          msg.kind = MessageKind::kRtp;
          msg.length = payload.size();
          msg.rtp = std::move(p->packet);
          matched = true;
        }
      }
    }

    if (!matched && (payload[0] & 0xC0) == 0xC0) {
      if (auto h = quic::parse(payload)) {
        if (h->version == quic::kVersion1) {
          msg.kind = MessageKind::kQuic;
          msg.length = h->wire_size();
          msg.quic = std::move(*h);
          matched = true;
        }
      }
    }

    if (matched) {
      anal.candidates = 1;
      anal.klass = DatagramClass::kStandard;
      anal.messages.push_back(std::move(msg));
    }
  }
  return out;
}

}  // namespace rtcc::dpi
