#include "dpi/anchor_scan.hpp"

namespace rtcc::dpi {

void scan_anchors(rtcc::util::BytesView payload, const ScanOptions& opts,
                  std::vector<AnchorHit>& out) {
  for_each_anchor(payload, opts,
                  [&out](std::uint32_t offset, std::uint8_t mask) {
                    out.push_back({offset, mask});
                  });
}

}  // namespace rtcc::dpi
