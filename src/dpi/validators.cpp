// Implementations for the shared message model (dpi/message.hpp).
#include "dpi/message.hpp"

#include "util/hex.hpp"

namespace rtcc::dpi {

proto::Protocol protocol_of(MessageKind k) {
  switch (k) {
    case MessageKind::kStun:
    case MessageKind::kChannelData:
      return proto::Protocol::kStunTurn;
    case MessageKind::kRtp:
      return proto::Protocol::kRtp;
    case MessageKind::kRtcp:
      return proto::Protocol::kRtcp;
    case MessageKind::kQuic:
      return proto::Protocol::kQuic;
  }
  return proto::Protocol::kStunTurn;
}

std::string to_string(MessageKind k) {
  switch (k) {
    case MessageKind::kStun:
      return "STUN";
    case MessageKind::kChannelData:
      return "ChannelData";
    case MessageKind::kRtp:
      return "RTP";
    case MessageKind::kRtcp:
      return "RTCP";
    case MessageKind::kQuic:
      return "QUIC";
  }
  return "?";
}

std::string to_string(DatagramClass c) {
  switch (c) {
    case DatagramClass::kStandard:
      return "standard";
    case DatagramClass::kProprietaryHeader:
      return "proprietary-header";
    case DatagramClass::kFullyProprietary:
      return "fully-proprietary";
  }
  return "?";
}

std::string ExtractedMessage::type_label() const {
  switch (kind) {
    case MessageKind::kStun:
      return stun ? rtcc::util::hex_u16(stun->type) : "STUN?";
    case MessageKind::kChannelData:
      return "ChannelData";
    case MessageKind::kRtp:
      return rtp ? std::to_string(rtp->payload_type) : "RTP?";
    case MessageKind::kRtcp:
      // Compound datagrams are expanded per contained packet by the
      // metrics layer; the label here names the first packet.
      return rtcp && !rtcp->packets.empty()
                 ? std::to_string(rtcp->packets.front().packet_type)
                 : "RTCP?";
    case MessageKind::kQuic:
      if (!quic) return "QUIC?";
      if (!quic->long_form) return "short";
      return "long-" +
             std::to_string(static_cast<int>(quic->long_type));
  }
  return "?";
}

}  // namespace rtcc::dpi
