// Single-pass anchor prefilter for the scanning DPI (Algorithm 1).
//
// The naive candidate-extraction loop attempts every protocol sniff at
// every offset 0..k, even though almost all offsets can be rejected
// from one or two bytes. This scanner walks each datagram once and
// reports, per offset, which protocols' cheap byte anchors match:
//
//   STUN        top two bits 00 + (magic cookie 0x2112A442 at offset+4
//               OR classic-STUN exact tail-fit length at offset+2)
//   ChannelData first byte 0x40-0x4F (TURN channel range)
//   RTP/RTCP    version bits 10; the PT byte splits the two (RTCP owns
//               the assigned 200-207 block, RTP everything else)
//   QUIC long   form+fixed bits 11 + version 1 at offset+1
//   QUIC short  form+fixed bits 01 at offset 0
//
// Every anchor is a *necessary* condition of the corresponding full
// sniff in ScanningDpi::analyze_stream, so running the sniffs only at
// anchored offsets produces a byte-identical candidate set (enforced by
// the equivalence sweep in tests/test_determinism.cpp).
//
// On SSE2 targets (any x86-64) the per-offset tests are evaluated 16
// offsets at a time and only flagged lanes fall back to the scalar
// test; the vector tests are the same necessary conditions, never a
// replacement, so the scalar/vector paths are interchangeable.
#pragma once

#include <cstdint>
#include <vector>

#include "dpi/scanning_dpi.hpp"
#include "proto/quic/quic.hpp"
#include "proto/stun/stun.hpp"
#include "util/bytes.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace rtcc::dpi {

namespace anchor {
constexpr std::uint8_t kStun = 0x01;
constexpr std::uint8_t kChannelData = 0x02;
constexpr std::uint8_t kRtcp = 0x04;
constexpr std::uint8_t kQuicLong = 0x08;
constexpr std::uint8_t kQuicShort = 0x10;
constexpr std::uint8_t kRtp = 0x20;
}  // namespace anchor

/// One anchored offset and the protocols whose anchors matched there.
struct AnchorHit {
  std::uint32_t offset = 0;
  std::uint8_t mask = 0;
};

/// Visitor form of the scan: invokes fn(offset, mask) for each anchored
/// offset of `payload`, in increasing offset order, scanning offsets
/// [0, min(max_offset + 1, payload.size())). Honours the per-protocol
/// scan_* switches in `opts`. The hot path in ScanningDpi uses this
/// directly — on media payloads a sizeable fraction of offsets anchor
/// as RTP, so materialising a hit list would cost more than the sniffs
/// it saves.
template <typename Fn>
void for_each_anchor(rtcc::util::BytesView payload, const ScanOptions& opts,
                     Fn&& fn) {
  namespace stun = rtcc::proto::stun;
  namespace quic = rtcc::proto::quic;

  const std::size_t n = payload.size();
  const std::size_t limit = std::min(opts.max_offset + 1, n);
  const std::uint8_t* p = payload.data();
  const bool scan_stun = opts.scan_stun;
  const bool scan_rtp = opts.scan_rtp;
  const bool scan_rtcp = opts.scan_rtcp;
  const bool scan_quic = opts.scan_quic;

  // Main region: every per-protocol remainder bound holds whenever at
  // least kHeaderSize (20, the largest bound) bytes remain, so the body
  // below carries no length checks; the short tail loop at the end
  // repeats the tests with the bounds restored.
  const std::size_t fast_end =
      std::min(limit, n >= stun::kHeaderSize ? n - stun::kHeaderSize + 1
                                             : std::size_t{0});

  const auto scan_at = [&](std::size_t i) {
    const std::uint8_t b0 = p[i];
    const unsigned cls = b0 >> 6;
    if (cls == 2) {  // RTP/RTCP version 2; the PT byte splits the two.
      const std::uint8_t pt = p[i + 1];
      const bool rtcp_pt = pt >= 200 && pt <= 207;
      if (scan_rtp && !rtcp_pt)
        fn(static_cast<std::uint32_t>(i), anchor::kRtp);
      else if (scan_rtcp && rtcp_pt)
        fn(static_cast<std::uint32_t>(i), anchor::kRtcp);
    } else if (cls == 0) {  // STUN: top two bits clear.
      if (scan_stun) {
        const bool modern =
            rtcc::util::load_be32(p + i + 4) == stun::kMagicCookie;
        // Classic (RFC 3489) STUN has no cookie; its anchor is the
        // exact datagram-tail fit of the length field (the registry
        // method check stays in the sniff stage).
        const bool classic_fit =
            stun::kHeaderSize + std::size_t{rtcc::util::load_be16(p + i + 2)} ==
            n - i;
        if (modern || classic_fit)
          fn(static_cast<std::uint32_t>(i), anchor::kStun);
      }
    } else if (cls == 1) {  // ChannelData prefix / QUIC short at 0.
      std::uint8_t mask = 0;
      if (scan_stun && b0 <= 0x4F) mask |= anchor::kChannelData;
      if (scan_quic && i == 0) mask |= anchor::kQuicShort;
      if (mask) fn(static_cast<std::uint32_t>(i), mask);
    } else {  // QUIC long form + fixed bit; only v1 is scanned for.
      if (scan_quic && rtcc::util::load_be32(p + i + 1) == quic::kVersion1)
        fn(static_cast<std::uint32_t>(i), anchor::kQuicLong);
    }
  };

  std::size_t i = 0;
#if defined(__SSE2__)
  // Vector pre-pass: evaluate the anchor conditions for 16 offsets at
  // once and run the scalar test only on flagged lanes. Each vector
  // test is a necessary condition of the scalar one (the STUN cookie is
  // narrowed to its first byte, the classic tail-fit sum may wrap the
  // 16-bit lane), so false positives are re-rejected by scan_at and
  // false negatives cannot occur.
  if (i < fast_end) {
    scan_at(i);  // offset 0 separately: the QUIC short anchor lives there
    ++i;
  }
  if (i + 16 <= fast_end) {
    const __m128i vzero = _mm_setzero_si128();
    const __m128i vtop = _mm_set1_epi8(static_cast<char>(0xC0));
    const __m128i v80 = _mm_set1_epi8(static_cast<char>(0x80));
    const __m128i vf0 = _mm_set1_epi8(static_cast<char>(0xF0));
    const __m128i v40 = _mm_set1_epi8(0x40);
    const __m128i vcookie0 =
        _mm_set1_epi8(static_cast<char>(stun::kMagicCookie >> 24));
    const __m128i v01 = _mm_set1_epi8(1);
    const __m128i vall = _mm_cmpeq_epi8(vzero, vzero);
    const __m128i gate_rtp = (scan_rtp || scan_rtcp) ? vall : vzero;
    const __m128i gate_stun = scan_stun ? vall : vzero;
    const __m128i gate_quic = scan_quic ? vall : vzero;
    const __m128i vramp = _mm_set_epi16(7, 6, 5, 4, 3, 2, 1, 0);
    const __m128i vtail_target =
        _mm_set1_epi16(static_cast<short>(n - stun::kHeaderSize));
    for (; i + 16 <= fast_end; i += 16) {
      const auto load = [&](std::size_t at) {
        return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + at));
      };
      const __m128i a = load(i);
      const __m128i b1 = load(i + 1);
      const __m128i b2 = load(i + 2);
      const __m128i b3 = load(i + 3);
      const __m128i b4 = load(i + 4);
      const __m128i top = _mm_and_si128(a, vtop);
      // RTP/RTCP (version bits 10): always worth a scalar look.
      __m128i hot = _mm_and_si128(_mm_cmpeq_epi8(top, v80), gate_rtp);
      // ChannelData: first byte 0x40-0x4F exactly.
      hot = _mm_or_si128(
          hot, _mm_and_si128(_mm_cmpeq_epi8(_mm_and_si128(a, vf0), v40),
                             gate_stun));
      {  // STUN: cookie first byte, or classic tail-fit
         // (kHeaderSize + be16(p+i+2) == n - i  <=>  be16 + i == n - 20).
        const __m128i cls0 = _mm_cmpeq_epi8(top, vzero);
        const __m128i cookie = _mm_cmpeq_epi8(b4, vcookie0);
        const __m128i be_lo = _mm_unpacklo_epi8(b3, b2);
        const __m128i be_hi = _mm_unpackhi_epi8(b3, b2);
        const __m128i base = _mm_set1_epi16(static_cast<short>(i));
        const __m128i idx_lo = _mm_add_epi16(base, vramp);
        const __m128i idx_hi =
            _mm_add_epi16(idx_lo, _mm_set1_epi16(8));
        const __m128i tf_lo = _mm_cmpeq_epi16(_mm_add_epi16(be_lo, idx_lo),
                                              vtail_target);
        const __m128i tf_hi = _mm_cmpeq_epi16(_mm_add_epi16(be_hi, idx_hi),
                                              vtail_target);
        const __m128i tailfit = _mm_packs_epi16(tf_lo, tf_hi);
        hot = _mm_or_si128(
            hot, _mm_and_si128(
                     _mm_and_si128(cls0, _mm_or_si128(cookie, tailfit)),
                     gate_stun));
      }
      {  // QUIC v1 long header: form+fixed bits 11, version 00 00 00 01.
        const __m128i cls3 = _mm_cmpeq_epi8(top, vtop);
        const __m128i ver = _mm_and_si128(
            _mm_and_si128(_mm_cmpeq_epi8(b1, vzero),
                          _mm_cmpeq_epi8(b2, vzero)),
            _mm_and_si128(_mm_cmpeq_epi8(b3, vzero),
                          _mm_cmpeq_epi8(b4, v01)));
        hot = _mm_or_si128(hot,
                           _mm_and_si128(_mm_and_si128(cls3, ver), gate_quic));
      }
      unsigned bits =
          static_cast<unsigned>(_mm_movemask_epi8(hot));
      while (bits) {
        const unsigned k = static_cast<unsigned>(__builtin_ctz(bits));
        bits &= bits - 1;
        scan_at(i + k);
      }
    }
  }
#endif
  for (; i < fast_end; ++i) scan_at(i);

  // Tail: fewer than kHeaderSize bytes remain; re-instate the bounds.
  for (; i < limit; ++i) {
    const std::uint8_t b0 = p[i];
    const std::size_t rem = n - i;
    switch (b0 >> 6) {
      case 2: {
        const std::uint8_t pt = rem >= 2 ? p[i + 1] : 0;
        const bool rtcp_pt = pt >= 200 && pt <= 207;
        if (scan_rtp && !rtcp_pt && rem >= 12)
          fn(static_cast<std::uint32_t>(i), anchor::kRtp);
        else if (scan_rtcp && rtcp_pt && rem >= 8)
          fn(static_cast<std::uint32_t>(i), anchor::kRtcp);
        break;
      }
      case 0:
        if (scan_stun && rem >= stun::kHeaderSize) {
          const bool modern =
              rtcc::util::load_be32(p + i + 4) == stun::kMagicCookie;
          const bool classic_fit =
              stun::kHeaderSize +
                  std::size_t{rtcc::util::load_be16(p + i + 2)} ==
              rem;
          if (modern || classic_fit)
            fn(static_cast<std::uint32_t>(i), anchor::kStun);
        }
        break;
      case 1: {
        std::uint8_t mask = 0;
        if (scan_stun && b0 <= 0x4F && rem >= 4) mask |= anchor::kChannelData;
        if (scan_quic && i == 0) mask |= anchor::kQuicShort;
        if (mask) fn(static_cast<std::uint32_t>(i), mask);
        break;
      }
      case 3:
        if (scan_quic && rem >= 5 &&
            rtcc::util::load_be32(p + i + 1) == quic::kVersion1)
          fn(static_cast<std::uint32_t>(i), anchor::kQuicLong);
        break;
    }
  }
}

/// Appends hits for `payload` to `out` in increasing offset order.
/// `out` is not cleared so callers can reuse one buffer across
/// datagrams. Thin wrapper over for_each_anchor, kept for callers that
/// want the hit list itself.
void scan_anchors(rtcc::util::BytesView payload, const ScanOptions& opts,
                  std::vector<AnchorHit>& out);

}  // namespace rtcc::dpi
