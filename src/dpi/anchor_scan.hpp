// Single-pass anchor prefilter for the scanning DPI (Algorithm 1).
//
// The naive candidate-extraction loop attempts every protocol sniff at
// every offset 0..k, even though almost all offsets can be rejected
// from one or two bytes. This scanner walks each datagram once and
// reports, per offset, which protocols' cheap byte anchors match:
//
//   STUN        top two bits 00 + (magic cookie 0x2112A442 at offset+4
//               OR classic-STUN exact tail-fit length at offset+2)
//   ChannelData first byte 0x40-0x4F (TURN channel range) + the 4-byte
//               header and 16-bit length fit the datagram remainder
//   RTP/RTCP    version bits 10; the PT byte splits the two (RTCP owns
//               the assigned 200-207 block, RTP everything else); RTP
//               additionally requires its full header — 12 + 4*CSRC,
//               plus, when the extension bit is set, the 4-byte
//               extension header and its 32-bit-word length field — to
//               fit the remainder
//   QUIC long   form+fixed bits 11 + version 1 at offset+1
//   QUIC short  form+fixed bits 01 at offset 0
//
// The two length fits are anchors in their own right: on encrypted
// payloads they reject the majority of byte-class matches (a random
// 16-bit length rarely fits the remainder), and they vectorise as
// 16-bit compares against an offset ramp, so the SIMD kernels resolve
// them without any scalar work.
//
// Every anchor is a *necessary* condition of the corresponding full
// sniff in ScanningDpi::analyze_stream, so running the sniffs only at
// anchored offsets produces a byte-identical candidate set (enforced by
// the equivalence sweep in tests/test_determinism.cpp).
//
// The per-offset tests are additionally evaluated 64 offsets at a time
// by a runtime-dispatched SIMD kernel (dpi/simd_dispatch.hpp — scalar /
// SSE2 / AVX2 / NEON, selected by cpuid and the RTCC_SIMD knob); only
// flagged lanes fall back to the scalar test. The vector tests are the
// same necessary conditions, never a replacement, so every level is
// interchangeable and yields byte-identical anchors.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dpi/scanning_dpi.hpp"
#include "dpi/simd_dispatch.hpp"
#include "proto/quic/quic.hpp"
#include "proto/stun/stun.hpp"
#include "util/bytes.hpp"

namespace rtcc::dpi {

namespace anchor {
constexpr std::uint8_t kStun = 0x01;
constexpr std::uint8_t kChannelData = 0x02;
constexpr std::uint8_t kRtcp = 0x04;
constexpr std::uint8_t kQuicLong = 0x08;
constexpr std::uint8_t kQuicShort = 0x10;
constexpr std::uint8_t kRtp = 0x20;
}  // namespace anchor

/// One anchored offset and the protocols whose anchors matched there.
struct AnchorHit {
  std::uint32_t offset = 0;
  std::uint8_t mask = 0;
};

/// Scan-region geometry shared by the fused walk (for_each_anchor) and
/// the staged prefilter/scan node pair: both must agree byte-for-byte
/// on which offsets the kernel covers and which fall to scalar code.
struct AnchorPlan {
  std::size_t limit = 0;     ///< scan end (exclusive): min(k + 1, n)
  std::size_t fast_end = 0;  ///< bound-check-free end: >= 20 bytes remain
  std::size_t blocks = 0;    ///< 64-offset kernel blocks, starting at offset 1
};

/// Kernel eligibility bound: the kernels evaluate the RTP header fit
/// and ChannelData length fit with 16-bit saturating adds, which is
/// exact whenever offset + 76 (the largest RTP header need) cannot
/// exceed 65535. Payloads beyond this — larger than any UDP datagram —
/// take the scalar loop so every level stays byte-identical.
constexpr std::size_t kMaxKernelPayload = 0xFFFF - 56;

[[nodiscard]] inline AnchorPlan anchor_plan(std::size_t n,
                                            const ScanOptions& opts) {
  AnchorPlan pl;
  pl.limit = std::min(opts.max_offset + 1, n);
  pl.fast_end = std::min(
      pl.limit, n >= rtcc::proto::stun::kHeaderSize
                    ? n - rtcc::proto::stun::kHeaderSize + 1
                    : std::size_t{0});
  // Offset 0 is always handled by scalar code (the QUIC short anchor
  // lives there), so kernel blocks start at offset 1.
  pl.blocks = pl.fast_end > 1 && n <= kMaxKernelPayload
                  ? (pl.fast_end - 1) / 64
                  : 0;
  return pl;
}

[[nodiscard]] inline unsigned anchor_gates(const ScanOptions& opts) {
  unsigned gates = 0;
  if (opts.scan_rtp) gates |= gate::kRtp;
  if (opts.scan_rtcp) gates |= gate::kRtcp;
  if (opts.scan_stun) gates |= gate::kStun;
  if (opts.scan_quic) gates |= gate::kQuic;
  return gates;
}

/// Exact RTP header fit — the length half of the RTP anchor: the fixed
/// header and CSRC list, plus (when the extension bit is set) the
/// 4-byte extension header and its 32-bit-word length, must fit the
/// datagram remainder. These are precisely sniff_rtp's structural
/// length checks, so the anchor stays a necessary condition while
/// rejecting the bulk of byte-class matches on encrypted payloads (a
/// random 16-bit word count almost never fits). The extension length
/// read is guarded by the fit of the extension header itself.
[[nodiscard]] inline bool rtp_header_fits(const std::uint8_t* p,
                                          std::size_t i, std::size_t n) {
  const std::uint8_t b0 = p[i];
  std::size_t need = 12 + 4 * (b0 & 0x0F);
  const std::size_t rem = n - i;
  if ((b0 & 0x10) != 0) {
    need += 4;
    if (need > rem) return false;
    need += 4 * std::size_t{rtcc::util::load_be16(p + i + need - 2)};
  }
  return need <= rem;
}

/// Walks one 64-offset block's kernel masks in ascending offset order,
/// invoking fn(offset, anchor-mask) for each hot lane. The family masks
/// are disjoint (first-byte class, plus the PT-byte RTP/RTCP split done
/// in the kernel), so each hot lane belongs to exactly one family and
/// the walker classifies without re-reading payload bytes. The kernels
/// already applied the per-protocol scan gates and the cheap length
/// preconditions; only stun lanes (approximate in the kernel) re-run
/// the exact cookie/tail-fit test here.
template <typename Fn>
inline void walk_anchor_masks(const std::uint8_t* p, std::size_t n,
                              std::size_t base, const AnchorMasks& m,
                              Fn&& fn) {
  namespace stun = rtcc::proto::stun;
  std::uint64_t bits = m.any();
  while (bits) {
    const unsigned k = static_cast<unsigned>(__builtin_ctzll(bits));
    bits &= bits - 1;
    const std::size_t i = base + k;
    const std::uint64_t bit = std::uint64_t{1} << k;
    if (m.rtp & bit) {
      fn(static_cast<std::uint32_t>(i), anchor::kRtp);
    } else if (m.rtcp & bit) {
      fn(static_cast<std::uint32_t>(i), anchor::kRtcp);
    } else if (m.stun & bit) {  // approximate: re-run the exact test.
      const bool modern =
          rtcc::util::load_be32(p + i + 4) == stun::kMagicCookie;
      const bool classic_fit =
          stun::kHeaderSize + std::size_t{rtcc::util::load_be16(p + i + 2)} ==
          n - i;
      if (modern || classic_fit)
        fn(static_cast<std::uint32_t>(i), anchor::kStun);
    } else if (m.channel_data & bit) {
      fn(static_cast<std::uint32_t>(i), anchor::kChannelData);
    } else {  // long form + fixed bit + version 1.
      fn(static_cast<std::uint32_t>(i), anchor::kQuicLong);
    }
  }
}

/// Visitor form of the scan: invokes fn(offset, mask) for each anchored
/// offset of `payload`, in increasing offset order, scanning offsets
/// [0, min(max_offset + 1, payload.size())). Honours the per-protocol
/// scan_* switches in `opts`. The hot path in ScanningDpi uses this
/// directly — on media payloads a sizeable fraction of offsets anchor
/// as RTP, so materialising a hit list would cost more than the sniffs
/// it saves.
template <typename Fn>
void for_each_anchor_impl(rtcc::util::BytesView payload,
                          const ScanOptions& opts,
                          const AnchorMasks* staged, Fn&& fn) {
  namespace stun = rtcc::proto::stun;
  namespace quic = rtcc::proto::quic;

  const std::size_t n = payload.size();
  const std::uint8_t* p = payload.data();
  const bool scan_stun = opts.scan_stun;
  const bool scan_rtp = opts.scan_rtp;
  const bool scan_rtcp = opts.scan_rtcp;
  const bool scan_quic = opts.scan_quic;

  // Main region: every per-protocol remainder bound holds whenever at
  // least kHeaderSize (20, the largest bound) bytes remain, so the body
  // below carries no length checks; the short tail loop at the end
  // repeats the tests with the bounds restored.
  const AnchorPlan pl = anchor_plan(n, opts);
  const std::size_t limit = pl.limit;
  const std::size_t fast_end = pl.fast_end;

  const auto scan_at = [&](std::size_t i) {
    const std::uint8_t b0 = p[i];
    const unsigned cls = b0 >> 6;
    if (cls == 2) {  // RTP/RTCP version 2; the PT byte splits the two.
      const std::uint8_t pt = p[i + 1];
      const bool rtcp_pt = pt >= 200 && pt <= 207;
      if (scan_rtp && !rtcp_pt && rtp_header_fits(p, i, n))
        fn(static_cast<std::uint32_t>(i), anchor::kRtp);
      else if (scan_rtcp && rtcp_pt)
        fn(static_cast<std::uint32_t>(i), anchor::kRtcp);
    } else if (cls == 0) {  // STUN: top two bits clear.
      if (scan_stun) {
        const bool modern =
            rtcc::util::load_be32(p + i + 4) == stun::kMagicCookie;
        // Classic (RFC 3489) STUN has no cookie; its anchor is the
        // exact datagram-tail fit of the length field (the registry
        // method check stays in the sniff stage).
        const bool classic_fit =
            stun::kHeaderSize + std::size_t{rtcc::util::load_be16(p + i + 2)} ==
            n - i;
        if (modern || classic_fit)
          fn(static_cast<std::uint32_t>(i), anchor::kStun);
      }
    } else if (cls == 1) {  // ChannelData prefix / QUIC short at 0.
      std::uint8_t mask = 0;
      if (scan_stun && b0 <= 0x4F &&
          4 + std::size_t{rtcc::util::load_be16(p + i + 2)} <= n - i)
        mask |= anchor::kChannelData;
      if (scan_quic && i == 0) mask |= anchor::kQuicShort;
      if (mask) fn(static_cast<std::uint32_t>(i), mask);
    } else {  // QUIC long form + fixed bit; only v1 is scanned for.
      if (scan_quic && rtcc::util::load_be32(p + i + 1) == quic::kVersion1)
        fn(static_cast<std::uint32_t>(i), anchor::kQuicLong);
    }
  };

  std::size_t i = 0;
  // Vector pre-pass: the dispatched kernel evaluates the anchor
  // conditions for 64 offsets at a time, split per protocol family, and
  // only flagged lanes reach scalar code (walk_anchor_masks). When the
  // caller staged the kernel's masks earlier (the batched prefilter
  // node), they are replayed here instead of re-running the kernel.
  // At the scalar level (no kernel, nothing staged) the plain
  // per-offset loop below covers everything.
  if (pl.blocks != 0) {
    const AnchorBlockFn kernel = staged != nullptr ? nullptr : anchor_block_fn();
    if (staged != nullptr || kernel != nullptr) {
      scan_at(i);  // offset 0 separately: the QUIC short anchor lives there
      ++i;
      if (staged != nullptr) {
        for (std::size_t b = 0; b < pl.blocks; ++b, i += 64)
          walk_anchor_masks(p, n, i, staged[b], fn);
      } else {
        const unsigned gates = anchor_gates(opts);
        AnchorMasks masks[kMaxAnchorBlocks];
        std::size_t b = 0;
        while (b < pl.blocks) {
          const std::size_t nb = std::min(pl.blocks - b, kMaxAnchorBlocks);
          kernel(p, i, nb, n, gates, masks);
          for (std::size_t j = 0; j < nb; ++j, i += 64)
            walk_anchor_masks(p, n, i, masks[j], fn);
          b += nb;
        }
      }
    }
  }
  for (; i < fast_end; ++i) scan_at(i);

  // Tail: fewer than kHeaderSize bytes remain; re-instate the bounds.
  for (; i < limit; ++i) {
    const std::uint8_t b0 = p[i];
    const std::size_t rem = n - i;
    switch (b0 >> 6) {
      case 2: {
        const std::uint8_t pt = rem >= 2 ? p[i + 1] : 0;
        const bool rtcp_pt = pt >= 200 && pt <= 207;
        if (scan_rtp && !rtcp_pt && rtp_header_fits(p, i, n))
          fn(static_cast<std::uint32_t>(i), anchor::kRtp);
        else if (scan_rtcp && rtcp_pt && rem >= 8)
          fn(static_cast<std::uint32_t>(i), anchor::kRtcp);
        break;
      }
      case 0:
        if (scan_stun && rem >= stun::kHeaderSize) {
          const bool modern =
              rtcc::util::load_be32(p + i + 4) == stun::kMagicCookie;
          const bool classic_fit =
              stun::kHeaderSize +
                  std::size_t{rtcc::util::load_be16(p + i + 2)} ==
              rem;
          if (modern || classic_fit)
            fn(static_cast<std::uint32_t>(i), anchor::kStun);
        }
        break;
      case 1: {
        std::uint8_t mask = 0;
        if (scan_stun && b0 <= 0x4F && rem >= 4 &&
            4 + std::size_t{rtcc::util::load_be16(p + i + 2)} <= rem)
          mask |= anchor::kChannelData;
        if (scan_quic && i == 0) mask |= anchor::kQuicShort;
        if (mask) fn(static_cast<std::uint32_t>(i), mask);
        break;
      }
      case 3:
        if (scan_quic && rem >= 5 &&
            rtcc::util::load_be32(p + i + 1) == quic::kVersion1)
          fn(static_cast<std::uint32_t>(i), anchor::kQuicLong);
        break;
    }
  }
}

template <typename Fn>
void for_each_anchor(rtcc::util::BytesView payload, const ScanOptions& opts,
                     Fn&& fn) {
  for_each_anchor_impl(payload, opts, nullptr, std::forward<Fn>(fn));
}

/// Scan-node replay: identical to for_each_anchor, but consumes the
/// mask sets previously staged by stage_anchor_masks for this payload
/// (same ScanOptions) instead of re-running the kernel. `staged` must
/// point at anchor_plan(payload.size(), opts).blocks entries; it is
/// not dereferenced when that plan has no kernel blocks.
template <typename Fn>
void for_each_anchor_staged(rtcc::util::BytesView payload,
                            const ScanOptions& opts,
                            const AnchorMasks* staged, Fn&& fn) {
  for_each_anchor_impl(payload, opts, staged, std::forward<Fn>(fn));
}

/// Prefilter-node kernel pass: runs only the vector kernel over
/// `payload`, appending anchor_plan(...).blocks mask sets to `out`
/// (not cleared — callers accumulate a whole batch into one buffer).
/// Returns the number of mask sets appended. `kernel` must be
/// non-null; at the scalar level callers skip staging and use
/// for_each_anchor directly.
inline std::size_t stage_anchor_masks(rtcc::util::BytesView payload,
                                      const ScanOptions& opts,
                                      AnchorBlockFn kernel,
                                      std::vector<AnchorMasks>& out) {
  const std::size_t n = payload.size();
  const AnchorPlan pl = anchor_plan(n, opts);
  if (pl.blocks == 0) return 0;
  const unsigned gates = anchor_gates(opts);
  const std::size_t start = out.size();
  out.resize(start + pl.blocks);
  const std::uint8_t* p = payload.data();
  std::size_t i = 1, b = 0;
  while (b < pl.blocks) {
    const std::size_t nb = std::min(pl.blocks - b, kMaxAnchorBlocks);
    kernel(p, i, nb, n, gates, out.data() + start + b);
    b += nb;
    i += nb * 64;
  }
  return pl.blocks;
}

/// Appends hits for `payload` to `out` in increasing offset order.
/// `out` is not cleared so callers can reuse one buffer across
/// datagrams. Thin wrapper over for_each_anchor, kept for callers that
/// want the hit list itself.
void scan_anchors(rtcc::util::BytesView payload, const ScanOptions& opts,
                  std::vector<AnchorHit>& out);

}  // namespace rtcc::dpi
