#include "dpi/simd_dispatch.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "proto/quic/quic.hpp"
#include "proto/stun/stun.hpp"
#include "util/env_knob.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define RTCC_X86 1
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define RTCC_NEON 1
#endif

#if defined(__GNUC__) || defined(__clang__)
#define RTCC_KERNEL_INLINE inline __attribute__((always_inline))
#else
#define RTCC_KERNEL_INLINE inline
#endif

namespace rtcc::dpi {

namespace {

namespace stun = rtcc::proto::stun;
namespace quic = rtcc::proto::quic;

// ---- Kernels -------------------------------------------------------------
//
// Each kernel evaluates, for runs of 64 consecutive offsets, necessary
// conditions of the downstream protocol sniffs, split per family:
//   rtp           top bits 10, PT byte outside the RTCP 200-207 block,
//                 and the full RTP header fit: 12 + 4*CSRC, plus — when
//                 the extension bit is set — the 4-byte extension
//                 header and its 32-bit-word length, <= n - offset (the
//                 extension part is refined per hot lane by
//                 refine_rtp_ext; its length field sits at a
//                 CSRC-dependent offset no vector load can reach)
//   rtcp          top bits 10, PT byte 200-207
//   channel_data  first byte 0x40-0x4F and 4 + be16(len) <= n - offset
//   stun          top bits 00 + (cookie first byte OR tail-fit sum mod
//                 2^16) — approximate: lanes can be false-positive and
//                 are re-tested by the exact scalar rules, never
//                 false-negative
//   quic          top bits 11 + version 00 00 00 01
//
// The length fits matter as much as the byte classes: on encrypted
// payloads most byte-class matches are rejected by the sniffs' first
// length check, and evaluating that rejection here (16-bit saturating
// adds against the offset ramp) keeps those lanes out of the scalar
// emit path entirely. The 16-bit offset math is valid whenever the
// payload fits 16 bits; for larger payloads the fit masks degrade to
// all-ones (filter off, sniffs still reject) by clamping the compare
// bounds to 65535.
//
// One kernel call covers up to kMaxAnchorBlocks blocks: the vector
// constants below are materialised once per call, not once per block.

/// Per-step family masks before widening to the 64-bit block masks.
struct StepMasks {
  std::uint64_t rtp, rtcp, stun, channel_data, quic;
};

/// Compare bound for the 16-bit fit checks: saturating-add lane sums
/// are <= 65535, so clamping the bound there turns the filter into a
/// pass-through for payloads too large for 16-bit offset math.
inline std::uint16_t fit_bound(std::size_t v) {
  return static_cast<std::uint16_t>(std::min<std::size_t>(v, 0xFFFF));
}

/// Exact scalar refinement of a block's RTP mask: lanes with the
/// extension bit set must additionally fit the 4-byte extension header
/// plus its 32-bit-word length field — the second half of the RTP
/// anchor's header-fit condition, whose variable-offset length read
/// does not vectorise. On encrypted payloads a random 16-bit word count
/// rarely fits the remainder, so this rejects roughly half the
/// remaining RTP lanes. It runs per *hot* lane (not per offset) and the
/// vector fit already guaranteed 12 + 4*CSRC + 4 <= n - i for ext
/// lanes, so the length field read is in bounds.
RTCC_KERNEL_INLINE std::uint64_t refine_rtp_ext(const std::uint8_t* p,
                                                std::size_t base,
                                                std::size_t n,
                                                std::uint64_t rtp) {
  std::uint64_t bits = rtp;
  while (bits != 0) {
    const unsigned k = static_cast<unsigned>(__builtin_ctzll(bits));
    bits &= bits - 1;
    const std::size_t i = base + k;
    const std::uint8_t b0 = p[i];
    if ((b0 & 0x10) == 0) continue;
    const std::size_t hdr = 12 + 4 * (b0 & 0x0F);
    const std::size_t words =
        (std::size_t{p[i + hdr + 2]} << 8) | p[i + hdr + 3];
    if (hdr + 4 + 4 * words > n - i) rtp &= ~(std::uint64_t{1} << k);
  }
  return rtp;
}

#if defined(RTCC_X86)

/// Per-call constants, built once and kept in registers across blocks.
struct Sse2Consts {
  __m128i vzero, vtop, v80, vf0, v40, v0f, v10, vf8, vc8, v12, vcookie0, v01;
  __m128i gate_rtp, gate_rtcp, gate_stun, gate_quic;
  __m128i vramp, v8, vtail_target, vn, vn4;
};

RTCC_KERNEL_INLINE Sse2Consts sse2_consts(std::size_t n, unsigned gates) {
  Sse2Consts k;
  k.vzero = _mm_setzero_si128();
  k.vtop = _mm_set1_epi8(static_cast<char>(0xC0));
  k.v80 = _mm_set1_epi8(static_cast<char>(0x80));
  k.vf0 = _mm_set1_epi8(static_cast<char>(0xF0));
  k.v40 = _mm_set1_epi8(0x40);
  k.v0f = _mm_set1_epi8(0x0F);
  k.v10 = _mm_set1_epi8(0x10);
  k.vf8 = _mm_set1_epi8(static_cast<char>(0xF8));
  k.vc8 = _mm_set1_epi8(static_cast<char>(0xC8));
  k.v12 = _mm_set1_epi8(12);
  k.vcookie0 = _mm_set1_epi8(static_cast<char>(stun::kMagicCookie >> 24));
  k.v01 = _mm_set1_epi8(1);
  const __m128i vall = _mm_cmpeq_epi8(k.vzero, k.vzero);
  k.gate_rtp = (gates & gate::kRtp) ? vall : k.vzero;
  k.gate_rtcp = (gates & gate::kRtcp) ? vall : k.vzero;
  k.gate_stun = (gates & gate::kStun) ? vall : k.vzero;
  k.gate_quic = (gates & gate::kQuic) ? vall : k.vzero;
  k.vramp = _mm_set_epi16(7, 6, 5, 4, 3, 2, 1, 0);
  k.v8 = _mm_set1_epi16(8);
  k.vtail_target =
      _mm_set1_epi16(static_cast<short>(n - stun::kHeaderSize));
  k.vn = _mm_set1_epi16(static_cast<short>(fit_bound(n)));
  k.vn4 = _mm_set1_epi16(static_cast<short>(fit_bound(n - 4)));
  return k;
}

/// x <= bound, unsigned 16-bit, SSE2-only (no unsigned compare):
/// saturating x - bound == 0.
RTCC_KERNEL_INLINE __m128i sse2_le_u16(__m128i x, __m128i bound) {
  return _mm_cmpeq_epi16(_mm_subs_epu16(x, bound), _mm_setzero_si128());
}

/// One 16-lane SSE2 step; `at` is the absolute offset of lane 0.
RTCC_KERNEL_INLINE StepMasks sse2_step(const Sse2Consts& k,
                                       const std::uint8_t* p,
                                       std::size_t at) {
  const auto load = [&](std::size_t o) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + o));
  };
  const auto mask = [](__m128i v) {
    return static_cast<std::uint64_t>(
        static_cast<unsigned>(_mm_movemask_epi8(v)));
  };
  const __m128i a = load(at);
  const __m128i b1 = load(at + 1);
  const __m128i b2 = load(at + 2);
  const __m128i b3 = load(at + 3);
  const __m128i b4 = load(at + 4);
  const __m128i top = _mm_and_si128(a, k.vtop);
  // Per-lane absolute offsets as 16-bit lanes, shared by every fit
  // check below. unpacklo/hi and packs operate low-half/high-half, so
  // idx_lo covers lanes 0-7 and idx_hi lanes 8-15.
  const __m128i base = _mm_set1_epi16(static_cast<short>(at));
  const __m128i idx_lo = _mm_add_epi16(base, k.vramp);
  const __m128i idx_hi = _mm_add_epi16(idx_lo, k.v8);
  // be16(p + at + 2) per lane — the STUN/ChannelData length field.
  const __m128i be_lo = _mm_unpacklo_epi8(b3, b2);
  const __m128i be_hi = _mm_unpackhi_epi8(b3, b2);
  StepMasks m;
  {  // RTP/RTCP (version bits 10), split by the PT byte; RTP lanes must
     // also fit the 12 + 4*CSRC (+4 ext) header in the remainder.
    const __m128i cls2 = _mm_cmpeq_epi8(top, k.v80);
    const __m128i rtcp_pt = _mm_cmpeq_epi8(_mm_and_si128(b1, k.vf8), k.vc8);
    // need = 12 + 4*(a & 0x0F) + ((a & 0x10) ? 4 : 0), per byte. The
    // 16-bit shifts cannot bleed across bytes: inputs are masked to
    // <= 0x10 so shifted values stay within their byte.
    const __m128i cc4 = _mm_slli_epi16(_mm_and_si128(a, k.v0f), 2);
    const __m128i ext4 = _mm_srli_epi16(_mm_and_si128(a, k.v10), 2);
    const __m128i need = _mm_add_epi8(k.v12, _mm_add_epi8(cc4, ext4));
    const __m128i fit_lo = sse2_le_u16(
        _mm_adds_epu16(_mm_unpacklo_epi8(need, k.vzero), idx_lo), k.vn);
    const __m128i fit_hi = sse2_le_u16(
        _mm_adds_epu16(_mm_unpackhi_epi8(need, k.vzero), idx_hi), k.vn);
    const __m128i fit = _mm_packs_epi16(fit_lo, fit_hi);
    m.rtp = mask(_mm_and_si128(
        _mm_andnot_si128(rtcp_pt, _mm_and_si128(cls2, fit)), k.gate_rtp));
    m.rtcp =
        mask(_mm_and_si128(_mm_and_si128(cls2, rtcp_pt), k.gate_rtcp));
  }
  {  // ChannelData: first byte 0x40-0x4F and 4 + be16 length fits the
     // remainder (be16 + at <= n - 4, saturating).
    const __m128i chan =
        _mm_cmpeq_epi8(_mm_and_si128(a, k.vf0), k.v40);
    const __m128i cfit_lo = sse2_le_u16(_mm_adds_epu16(be_lo, idx_lo), k.vn4);
    const __m128i cfit_hi = sse2_le_u16(_mm_adds_epu16(be_hi, idx_hi), k.vn4);
    const __m128i cfit = _mm_packs_epi16(cfit_lo, cfit_hi);
    m.channel_data =
        mask(_mm_and_si128(_mm_and_si128(chan, cfit), k.gate_stun));
  }
  {  // STUN: cookie first byte, or classic tail-fit
     // (kHeaderSize + be16(p+at+2) == n - at  <=>  be16 + at == n - 20).
    const __m128i cls0 = _mm_cmpeq_epi8(top, k.vzero);
    const __m128i cookie = _mm_cmpeq_epi8(b4, k.vcookie0);
    const __m128i tf_lo =
        _mm_cmpeq_epi16(_mm_add_epi16(be_lo, idx_lo), k.vtail_target);
    const __m128i tf_hi =
        _mm_cmpeq_epi16(_mm_add_epi16(be_hi, idx_hi), k.vtail_target);
    const __m128i tailfit = _mm_packs_epi16(tf_lo, tf_hi);
    m.stun = mask(_mm_and_si128(
        _mm_and_si128(cls0, _mm_or_si128(cookie, tailfit)), k.gate_stun));
  }
  {  // QUIC v1 long header: form+fixed bits 11, version 00 00 00 01.
    const __m128i cls3 = _mm_cmpeq_epi8(top, k.vtop);
    const __m128i ver = _mm_and_si128(
        _mm_and_si128(_mm_cmpeq_epi8(b1, k.vzero), _mm_cmpeq_epi8(b2, k.vzero)),
        _mm_and_si128(_mm_cmpeq_epi8(b3, k.vzero), _mm_cmpeq_epi8(b4, k.v01)));
    m.quic = mask(_mm_and_si128(_mm_and_si128(cls3, ver), k.gate_quic));
  }
  return m;
}

void anchor_blocks_sse2(const std::uint8_t* p, std::size_t i,
                        std::size_t n_blocks, std::size_t n, unsigned gates,
                        AnchorMasks* masks) {
  const Sse2Consts k = sse2_consts(n, gates);
  for (std::size_t b = 0; b < n_blocks; ++b, i += 64) {
    // Quad loop: four independent 16-lane steps per 64-offset block
    // keep the load/compare chains of adjacent groups in flight.
    const StepMasks m0 = sse2_step(k, p, i);
    const StepMasks m1 = sse2_step(k, p, i + 16);
    const StepMasks m2 = sse2_step(k, p, i + 32);
    const StepMasks m3 = sse2_step(k, p, i + 48);
    const std::uint64_t rtp =
        m0.rtp | (m1.rtp << 16) | (m2.rtp << 32) | (m3.rtp << 48);
    masks[b].rtp = rtp != 0 ? refine_rtp_ext(p, i, n, rtp) : 0;
    masks[b].rtcp =
        m0.rtcp | (m1.rtcp << 16) | (m2.rtcp << 32) | (m3.rtcp << 48);
    masks[b].stun =
        m0.stun | (m1.stun << 16) | (m2.stun << 32) | (m3.stun << 48);
    masks[b].channel_data = m0.channel_data | (m1.channel_data << 16) |
                            (m2.channel_data << 32) | (m3.channel_data << 48);
    masks[b].quic =
        m0.quic | (m1.quic << 16) | (m2.quic << 32) | (m3.quic << 48);
  }
}

#if defined(__GNUC__) || defined(__clang__)
#define RTCC_HAVE_AVX2_KERNEL 1

// The AVX2 variant is compiled via the per-function target attribute so
// the rest of the binary stays baseline-ISA. Helpers must carry the
// same attribute (and can then be inlined into the kernel).

struct Avx2Consts {
  __m256i vzero, vtop, v80, vf0, v40, v0f, v10, vf8, vc8, v12, vcookie0, v01;
  __m256i gate_rtp, gate_rtcp, gate_stun, gate_quic;
  __m256i vramp_lo, vtail_target, vn, vn4, v8;
};

__attribute__((target("avx2"), always_inline)) inline Avx2Consts avx2_consts(
    std::size_t n, unsigned gates) {
  Avx2Consts k;
  k.vzero = _mm256_setzero_si256();
  k.vtop = _mm256_set1_epi8(static_cast<char>(0xC0));
  k.v80 = _mm256_set1_epi8(static_cast<char>(0x80));
  k.vf0 = _mm256_set1_epi8(static_cast<char>(0xF0));
  k.v40 = _mm256_set1_epi8(0x40);
  k.v0f = _mm256_set1_epi8(0x0F);
  k.v10 = _mm256_set1_epi8(0x10);
  k.vf8 = _mm256_set1_epi8(static_cast<char>(0xF8));
  k.vc8 = _mm256_set1_epi8(static_cast<char>(0xC8));
  k.v12 = _mm256_set1_epi8(12);
  k.vcookie0 = _mm256_set1_epi8(static_cast<char>(stun::kMagicCookie >> 24));
  k.v01 = _mm256_set1_epi8(1);
  const __m256i vall = _mm256_cmpeq_epi8(k.vzero, k.vzero);
  k.gate_rtp = (gates & gate::kRtp) ? vall : k.vzero;
  k.gate_rtcp = (gates & gate::kRtcp) ? vall : k.vzero;
  k.gate_stun = (gates & gate::kStun) ? vall : k.vzero;
  k.gate_quic = (gates & gate::kQuic) ? vall : k.vzero;
  // unpacklo/hi and packs operate per 128-bit lane, so the 16-bit index
  // ramps carry the lane split: low halves cover offsets {0-7, 16-23},
  // high halves {8-15, 24-31}; packs then reassembles byte order.
  k.vramp_lo =
      _mm256_set_epi16(23, 22, 21, 20, 19, 18, 17, 16, 7, 6, 5, 4, 3, 2, 1, 0);
  k.vtail_target =
      _mm256_set1_epi16(static_cast<short>(n - stun::kHeaderSize));
  k.vn = _mm256_set1_epi16(static_cast<short>(fit_bound(n)));
  k.vn4 = _mm256_set1_epi16(static_cast<short>(fit_bound(n - 4)));
  k.v8 = _mm256_set1_epi16(8);
  return k;
}

__attribute__((target("avx2"), always_inline)) inline __m256i avx2_le_u16(
    __m256i x, __m256i bound) {
  return _mm256_cmpeq_epi16(_mm256_subs_epu16(x, bound),
                            _mm256_setzero_si256());
}

// Lambdas do not inherit the enclosing function's target attribute, so
// the movemask helper is a standalone attributed function.
__attribute__((target("avx2"), always_inline)) inline std::uint64_t
avx2_movemask(__m256i v) {
  return static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(_mm256_movemask_epi8(v)));
}

/// One 32-lane AVX2 step.
__attribute__((target("avx2"), always_inline)) inline StepMasks avx2_step(
    const Avx2Consts& k, const std::uint8_t* p, std::size_t at) {
  const __m256i a =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + at));
  const __m256i b1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + at + 1));
  const __m256i b2 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + at + 2));
  const __m256i b3 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + at + 3));
  const __m256i b4 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + at + 4));
  const __m256i top = _mm256_and_si256(a, k.vtop);
  const auto mask = avx2_movemask;
  // Shared 16-bit offset ramps and be16 length lanes (see the SSE2
  // kernel for the lane-split layout packs/unpack impose).
  const __m256i base = _mm256_set1_epi16(static_cast<short>(at));
  const __m256i idx_lo = _mm256_add_epi16(base, k.vramp_lo);
  const __m256i idx_hi = _mm256_add_epi16(idx_lo, k.v8);
  const __m256i be_lo = _mm256_unpacklo_epi8(b3, b2);
  const __m256i be_hi = _mm256_unpackhi_epi8(b3, b2);
  StepMasks m;
  {  // RTP/RTCP split by PT byte; RTP lanes must fit the header.
    const __m256i cls2 = _mm256_cmpeq_epi8(top, k.v80);
    const __m256i rtcp_pt =
        _mm256_cmpeq_epi8(_mm256_and_si256(b1, k.vf8), k.vc8);
    const __m256i cc4 = _mm256_slli_epi16(_mm256_and_si256(a, k.v0f), 2);
    const __m256i ext4 = _mm256_srli_epi16(_mm256_and_si256(a, k.v10), 2);
    const __m256i need = _mm256_add_epi8(k.v12, _mm256_add_epi8(cc4, ext4));
    const __m256i fit_lo = avx2_le_u16(
        _mm256_adds_epu16(_mm256_unpacklo_epi8(need, k.vzero), idx_lo), k.vn);
    const __m256i fit_hi = avx2_le_u16(
        _mm256_adds_epu16(_mm256_unpackhi_epi8(need, k.vzero), idx_hi), k.vn);
    const __m256i fit = _mm256_packs_epi16(fit_lo, fit_hi);
    m.rtp = mask(_mm256_and_si256(
        _mm256_andnot_si256(rtcp_pt, _mm256_and_si256(cls2, fit)),
        k.gate_rtp));
    m.rtcp = mask(
        _mm256_and_si256(_mm256_and_si256(cls2, rtcp_pt), k.gate_rtcp));
  }
  {  // ChannelData: byte range and 4 + be16 length tail fit.
    const __m256i chan =
        _mm256_cmpeq_epi8(_mm256_and_si256(a, k.vf0), k.v40);
    const __m256i cfit_lo =
        avx2_le_u16(_mm256_adds_epu16(be_lo, idx_lo), k.vn4);
    const __m256i cfit_hi =
        avx2_le_u16(_mm256_adds_epu16(be_hi, idx_hi), k.vn4);
    const __m256i cfit = _mm256_packs_epi16(cfit_lo, cfit_hi);
    m.channel_data =
        mask(_mm256_and_si256(_mm256_and_si256(chan, cfit), k.gate_stun));
  }
  {
    const __m256i cls0 = _mm256_cmpeq_epi8(top, k.vzero);
    const __m256i cookie = _mm256_cmpeq_epi8(b4, k.vcookie0);
    const __m256i tf_lo =
        _mm256_cmpeq_epi16(_mm256_add_epi16(be_lo, idx_lo), k.vtail_target);
    const __m256i tf_hi =
        _mm256_cmpeq_epi16(_mm256_add_epi16(be_hi, idx_hi), k.vtail_target);
    const __m256i tailfit = _mm256_packs_epi16(tf_lo, tf_hi);
    m.stun = mask(_mm256_and_si256(
        _mm256_and_si256(cls0, _mm256_or_si256(cookie, tailfit)),
        k.gate_stun));
  }
  {
    const __m256i cls3 = _mm256_cmpeq_epi8(top, k.vtop);
    const __m256i ver = _mm256_and_si256(
        _mm256_and_si256(_mm256_cmpeq_epi8(b1, k.vzero),
                         _mm256_cmpeq_epi8(b2, k.vzero)),
        _mm256_and_si256(_mm256_cmpeq_epi8(b3, k.vzero),
                         _mm256_cmpeq_epi8(b4, k.v01)));
    m.quic = mask(_mm256_and_si256(_mm256_and_si256(cls3, ver), k.gate_quic));
  }
  return m;
}

__attribute__((target("avx2"))) void anchor_blocks_avx2(
    const std::uint8_t* p, std::size_t i, std::size_t n_blocks, std::size_t n,
    unsigned gates, AnchorMasks* masks) {
  const Avx2Consts k = avx2_consts(n, gates);
  for (std::size_t b = 0; b < n_blocks; ++b, i += 64) {
    // Dual loop: two 32-lane steps per block.
    const StepMasks m0 = avx2_step(k, p, i);
    const StepMasks m1 = avx2_step(k, p, i + 32);
    const std::uint64_t rtp = m0.rtp | (m1.rtp << 32);
    masks[b].rtp = rtp != 0 ? refine_rtp_ext(p, i, n, rtp) : 0;
    masks[b].rtcp = m0.rtcp | (m1.rtcp << 32);
    masks[b].stun = m0.stun | (m1.stun << 32);
    masks[b].channel_data = m0.channel_data | (m1.channel_data << 32);
    masks[b].quic = m0.quic | (m1.quic << 32);
  }
}
#endif  // GNUC/clang
#endif  // RTCC_X86

#if defined(RTCC_NEON)

RTCC_KERNEL_INLINE std::uint64_t neon_movemask(uint8x16_t m) {
  const uint8x16_t bits = {1, 2, 4, 8, 16, 32, 64, 128,
                           1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t masked = vandq_u8(m, bits);
  return static_cast<std::uint64_t>(
      vaddv_u8(vget_low_u8(masked)) |
      (static_cast<unsigned>(vaddv_u8(vget_high_u8(masked))) << 8));
}

struct NeonConsts {
  uint8x16_t vzero, gate_rtp, gate_rtcp, gate_stun, gate_quic;
  uint16x8_t ramp, target, vn, vn4;
};

RTCC_KERNEL_INLINE NeonConsts neon_consts(std::size_t n, unsigned gates) {
  NeonConsts k;
  k.vzero = vdupq_n_u8(0);
  const uint8x16_t vall = vdupq_n_u8(0xFF);
  k.gate_rtp = (gates & gate::kRtp) ? vall : k.vzero;
  k.gate_rtcp = (gates & gate::kRtcp) ? vall : k.vzero;
  k.gate_stun = (gates & gate::kStun) ? vall : k.vzero;
  k.gate_quic = (gates & gate::kQuic) ? vall : k.vzero;
  k.ramp = uint16x8_t{0, 1, 2, 3, 4, 5, 6, 7};
  k.target = vdupq_n_u16(static_cast<std::uint16_t>(n - stun::kHeaderSize));
  k.vn = vdupq_n_u16(fit_bound(n));
  k.vn4 = vdupq_n_u16(fit_bound(n - 4));
  return k;
}

RTCC_KERNEL_INLINE StepMasks neon_step(const NeonConsts& k,
                                       const std::uint8_t* p,
                                       std::size_t at) {
  const uint8x16_t a = vld1q_u8(p + at);
  const uint8x16_t b1 = vld1q_u8(p + at + 1);
  const uint8x16_t b2 = vld1q_u8(p + at + 2);
  const uint8x16_t b3 = vld1q_u8(p + at + 3);
  const uint8x16_t b4 = vld1q_u8(p + at + 4);
  const uint8x16_t top = vandq_u8(a, vdupq_n_u8(0xC0));
  // Shared per-lane offsets and be16 length lanes: zip(b3, b2) yields
  // little-endian 16-bit lanes equal to be16(p+at+2k).
  const uint16x8_t base = vdupq_n_u16(static_cast<std::uint16_t>(at));
  const uint16x8_t idx_lo = vaddq_u16(base, k.ramp);
  const uint16x8_t idx_hi = vaddq_u16(idx_lo, vdupq_n_u16(8));
  const uint16x8_t be_lo = vreinterpretq_u16_u8(vzip1q_u8(b3, b2));
  const uint16x8_t be_hi = vreinterpretq_u16_u8(vzip2q_u8(b3, b2));
  StepMasks m;
  {  // RTP/RTCP split by PT byte; RTP lanes must fit the header.
    const uint8x16_t cls2 = vceqq_u8(top, vdupq_n_u8(0x80));
    const uint8x16_t rtcp_pt =
        vceqq_u8(vandq_u8(b1, vdupq_n_u8(0xF8)), vdupq_n_u8(0xC8));
    const uint8x16_t cc4 = vshlq_n_u8(vandq_u8(a, vdupq_n_u8(0x0F)), 2);
    const uint8x16_t ext4 = vshrq_n_u8(vandq_u8(a, vdupq_n_u8(0x10)), 2);
    const uint8x16_t need = vaddq_u8(vdupq_n_u8(12), vaddq_u8(cc4, ext4));
    const uint16x8_t fit_lo = vcleq_u16(
        vqaddq_u16(vmovl_u8(vget_low_u8(need)), idx_lo), k.vn);
    const uint16x8_t fit_hi = vcleq_u16(
        vqaddq_u16(vmovl_u8(vget_high_u8(need)), idx_hi), k.vn);
    const uint8x16_t fit = vcombine_u8(vmovn_u16(fit_lo), vmovn_u16(fit_hi));
    m.rtp = neon_movemask(vandq_u8(
        vbicq_u8(vandq_u8(cls2, fit), rtcp_pt), k.gate_rtp));
    m.rtcp = neon_movemask(vandq_u8(vandq_u8(cls2, rtcp_pt), k.gate_rtcp));
  }
  {  // ChannelData: byte range and 4 + be16 length tail fit.
    const uint8x16_t chan =
        vceqq_u8(vandq_u8(a, vdupq_n_u8(0xF0)), vdupq_n_u8(0x40));
    const uint16x8_t cfit_lo = vcleq_u16(vqaddq_u16(be_lo, idx_lo), k.vn4);
    const uint16x8_t cfit_hi = vcleq_u16(vqaddq_u16(be_hi, idx_hi), k.vn4);
    const uint8x16_t cfit =
        vcombine_u8(vmovn_u16(cfit_lo), vmovn_u16(cfit_hi));
    m.channel_data =
        neon_movemask(vandq_u8(vandq_u8(chan, cfit), k.gate_stun));
  }
  {
    const uint8x16_t cls0 = vceqq_u8(top, k.vzero);
    const uint8x16_t cookie =
        vceqq_u8(b4, vdupq_n_u8(stun::kMagicCookie >> 24));
    const uint16x8_t tf_lo = vceqq_u16(vaddq_u16(be_lo, idx_lo), k.target);
    const uint16x8_t tf_hi = vceqq_u16(vaddq_u16(be_hi, idx_hi), k.target);
    const uint8x16_t tailfit =
        vcombine_u8(vmovn_u16(tf_lo), vmovn_u16(tf_hi));
    m.stun = neon_movemask(vandq_u8(
        vandq_u8(cls0, vorrq_u8(cookie, tailfit)), k.gate_stun));
  }
  {
    const uint8x16_t cls3 = vceqq_u8(top, vdupq_n_u8(0xC0));
    const uint8x16_t ver =
        vandq_u8(vandq_u8(vceqq_u8(b1, k.vzero), vceqq_u8(b2, k.vzero)),
                 vandq_u8(vceqq_u8(b3, k.vzero), vceqq_u8(b4, vdupq_n_u8(1))));
    m.quic = neon_movemask(vandq_u8(vandq_u8(cls3, ver), k.gate_quic));
  }
  return m;
}

void anchor_blocks_neon(const std::uint8_t* p, std::size_t i,
                        std::size_t n_blocks, std::size_t n, unsigned gates,
                        AnchorMasks* masks) {
  const NeonConsts k = neon_consts(n, gates);
  for (std::size_t b = 0; b < n_blocks; ++b, i += 64) {
    const StepMasks m0 = neon_step(k, p, i);
    const StepMasks m1 = neon_step(k, p, i + 16);
    const StepMasks m2 = neon_step(k, p, i + 32);
    const StepMasks m3 = neon_step(k, p, i + 48);
    const std::uint64_t rtp =
        m0.rtp | (m1.rtp << 16) | (m2.rtp << 32) | (m3.rtp << 48);
    masks[b].rtp = rtp != 0 ? refine_rtp_ext(p, i, n, rtp) : 0;
    masks[b].rtcp =
        m0.rtcp | (m1.rtcp << 16) | (m2.rtcp << 32) | (m3.rtcp << 48);
    masks[b].stun =
        m0.stun | (m1.stun << 16) | (m2.stun << 32) | (m3.stun << 48);
    masks[b].channel_data = m0.channel_data | (m1.channel_data << 16) |
                            (m2.channel_data << 32) | (m3.channel_data << 48);
    masks[b].quic =
        m0.quic | (m1.quic << 16) | (m2.quic << 32) | (m3.quic << 48);
  }
}

#endif  // RTCC_NEON

// ---- Selection -----------------------------------------------------------

SimdLevel probe_detected() {
#if defined(RTCC_X86) && (defined(__GNUC__) || defined(__clang__))
#if defined(RTCC_HAVE_AVX2_KERNEL)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kSse2;
#elif defined(RTCC_NEON)
  return SimdLevel::kNeon;
#else
  return SimdLevel::kScalar;
#endif
}

std::atomic<SimdLevel>& level_flag() {
  static std::atomic<SimdLevel> level{[] {
    if (const char* env = std::getenv("RTCC_SIMD")) {
      const auto parsed = parse_simd_level(env);
      if (parsed && simd_level_supported(*parsed)) return *parsed;
      if (std::string_view{env} != "auto")
        rtcc::util::warn_bad_knob(
            "RTCC_SIMD", env,
            parsed ? "level not supported on this CPU"
                   : "want scalar/sse2/avx2/neon/auto");
    }
    return detected_simd_level();
  }()};
  return level;
}

}  // namespace

std::string to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "?";
}

std::optional<SimdLevel> parse_simd_level(std::string_view s) {
  std::string lower(s.size(), '\0');
  for (std::size_t i = 0; i < s.size(); ++i)
    lower[i] = static_cast<char>(
        s[i] >= 'A' && s[i] <= 'Z' ? s[i] - 'A' + 'a' : s[i]);
  if (lower == "scalar") return SimdLevel::kScalar;
  if (lower == "sse2") return SimdLevel::kSse2;
  if (lower == "avx2") return SimdLevel::kAvx2;
  if (lower == "neon") return SimdLevel::kNeon;
  return std::nullopt;
}

SimdLevel detected_simd_level() {
  static const SimdLevel detected = probe_detected();
  return detected;
}

bool simd_level_supported(SimdLevel level) {
  if (level == SimdLevel::kScalar) return true;
  const SimdLevel best = detected_simd_level();
  if (level == best) return true;
  // On x86 every AVX2 machine also runs the SSE2 kernel; NEON and x86
  // levels are mutually exclusive.
  return level == SimdLevel::kSse2 && best == SimdLevel::kAvx2;
}

SimdLevel simd_level() {
  return level_flag().load(std::memory_order_relaxed);
}

SimdLevel set_simd_level(SimdLevel level) {
  const SimdLevel applied =
      simd_level_supported(level) ? level : detected_simd_level();
  level_flag().store(applied, std::memory_order_relaxed);
  return applied;
}

AnchorBlockFn anchor_block_fn(SimdLevel level) {
  if (!simd_level_supported(level)) return nullptr;
  switch (level) {
    case SimdLevel::kScalar:
      return nullptr;
#if defined(RTCC_X86)
    case SimdLevel::kSse2:
      return &anchor_blocks_sse2;
#if defined(RTCC_HAVE_AVX2_KERNEL)
    case SimdLevel::kAvx2:
      return &anchor_blocks_avx2;
#endif
#endif
#if defined(RTCC_NEON)
    case SimdLevel::kNeon:
      return &anchor_blocks_neon;
#endif
    default:
      return nullptr;
  }
}

AnchorBlockFn anchor_block_fn() { return anchor_block_fn(simd_level()); }

}  // namespace rtcc::dpi
