// The paper's custom two-stage DPI (Algorithm 1, §4.1): offset-shifting
// candidate extraction followed by protocol-specific, stream-contextual
// validation.
//
// Works on one UDP stream at a time because the validation heuristics
// are stream-level (RTP sequence continuity, STUN transaction pairing,
// RTCP SSRC cross-validation against RTP, QUIC DCID consistency).
//
// Candidate extraction runs as a vector-processing node graph
// (DESIGN.md §6): packets flow through demux → anchor prefilter → scan
// in fixed-size batches (net::batch_size(), RTCC_BATCH knob), each node
// looping over the whole vector before the next starts. Batch size 1
// selects the legacy fused one-datagram-at-a-time loop, kept as the
// equivalence oracle — every path emits a byte-identical candidate
// list, so validation and classification cannot diverge.
#pragma once

#include <vector>

#include "dpi/message.hpp"
#include "dpi/pipeline_stats.hpp"
#include "net/packet_batch.hpp"

namespace rtcc::dpi {

struct ScanOptions {
  /// Maximum candidate-extraction offset k (§4.1.1; the paper found
  /// k = 200 reproduces full-payload extraction on their dataset).
  std::size_t max_offset = 200;
  /// Which protocols to scan for. Defaults to all.
  bool scan_stun = true;
  bool scan_rtp = true;
  bool scan_rtcp = true;
  bool scan_quic = true;
  /// Disable stage-2 validation entirely (ablation: candidates become
  /// the output, false positives included).
  bool validate = true;
  /// RTP validation: minimum messages sharing an SSRC in a stream for
  /// that SSRC to be considered a genuine RTP stream.
  std::size_t min_ssrc_support = 3;
  /// RTCP trailing bytes tolerated after the last compound packet
  /// (covers SRTCP trailers and small proprietary trailers).
  std::size_t max_rtcp_trailing = 32;
  /// Single-pass byte-anchor prefilter (anchor_scan.hpp): run the full
  /// protocol sniffs only at offsets whose cheap anchors match, instead
  /// of at every offset 0..k. Off = the naive loop, kept as the oracle;
  /// both produce byte-identical output (tests/test_determinism.cpp).
  bool use_anchor_prefilter = true;
};

/// One datagram handed to the DPI: payload bytes plus stream-relative
/// metadata used by validation.
struct StreamDatagram {
  rtcc::util::BytesView payload;
  double ts = 0.0;
  /// Direction within the bidirectional stream (0 = A→B, 1 = B→A);
  /// transaction pairing and counters are per-direction.
  int dir = 0;
};

class ScanningDpi {
 public:
  explicit ScanningDpi(ScanOptions options = {});

  /// Runs Algorithm 1 over one UDP stream: candidate extraction per
  /// datagram, then stream-level validation, then per-datagram overlap
  /// resolution and proprietary classification. Results are index-
  /// aligned with `datagrams`.
  [[nodiscard]] std::vector<DatagramAnalysis> analyze_stream(
      const std::vector<StreamDatagram>& datagrams) const;

  /// Same analysis over a descriptor batch (the pipeline hot path —
  /// analyze_stream converts and delegates here). Extraction runs the
  /// demux → prefilter → scan node graph in net::batch_size() chunks;
  /// when `counters` is non-null each node adds its vectors / packets /
  /// suspended tallies. Results are index-aligned with `packets`.
  [[nodiscard]] std::vector<DatagramAnalysis> analyze_batch(
      const rtcc::net::PacketBatch& packets,
      PipelineCounters* counters = nullptr) const;

  [[nodiscard]] const ScanOptions& options() const { return options_; }

 private:
  ScanOptions options_;
};

}  // namespace rtcc::dpi
