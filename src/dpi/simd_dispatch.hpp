// Runtime-dispatched SIMD kernels for the anchor prefilter.
//
// PR 1 compiled the anchor scan against whatever vector ISA the build
// target guaranteed (`#if defined(__SSE2__)`), which pins every binary
// to the lowest common denominator and makes the wider-vector paths
// untestable on the machine that has them. This layer replaces the
// compile-time switch with a cpuid-selected function pointer:
//
//   * the *kernel* contract is a pure hot-lane mask: given a payload
//     pointer and a 64-offset block, return a bit per offset whose
//     cheap anchor conditions *may* hold (a necessary condition, never
//     a replacement — flagged offsets are re-tested by the exact scalar
//     rules, so every level yields byte-identical anchors);
//   * levels: scalar (no kernel; the plain per-offset loop), SSE2
//     (4 x 16-lane quad loop), AVX2 (2 x 32-lane dual loop, compiled
//     via the `target("avx2")` function attribute so no global -mavx2
//     is needed), NEON on AArch64 builds;
//   * selection: highest level the CPU supports, overridable by the
//     `RTCC_SIMD` env knob (scalar|sse2|avx2|neon|auto) and at runtime
//     by set_simd_level / SimdModeGuard (tests, benches, oracles).
//
// The testkit's SIMD-parity oracle runs the full DPI under every
// *supported* level and asserts identical compliance signatures;
// tests/test_simd_dispatch.cpp pins the selection logic itself.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rtcc::dpi {

enum class SimdLevel : std::uint8_t { kScalar = 0, kSse2, kAvx2, kNeon };

[[nodiscard]] std::string to_string(SimdLevel level);
/// "scalar" / "sse2" / "avx2" / "neon" (case-insensitive). nullopt for
/// anything else, including "auto".
[[nodiscard]] std::optional<SimdLevel> parse_simd_level(std::string_view s);

/// Best level this CPU supports, probed once (cpuid / target macros).
[[nodiscard]] SimdLevel detected_simd_level();
[[nodiscard]] bool simd_level_supported(SimdLevel level);

/// Current level. Initialised once from RTCC_SIMD (unset / "auto" /
/// unparseable / unsupported -> detected_simd_level()).
[[nodiscard]] SimdLevel simd_level();

/// Runtime override. Requests for unsupported levels fall back to
/// detected_simd_level(); returns the level actually applied.
SimdLevel set_simd_level(SimdLevel level);

/// RAII level flip used by tests, oracles and A/B benchmarks.
class SimdModeGuard {
 public:
  explicit SimdModeGuard(SimdLevel level) : prev_(simd_level()) {
    set_simd_level(level);
  }
  ~SimdModeGuard() { set_simd_level(prev_); }
  SimdModeGuard(const SimdModeGuard&) = delete;
  SimdModeGuard& operator=(const SimdModeGuard&) = delete;

 private:
  SimdLevel prev_;
};

namespace gate {
constexpr unsigned kRtp = 0x1;
constexpr unsigned kStun = 0x2;  // covers ChannelData
constexpr unsigned kQuic = 0x4;
constexpr unsigned kRtcp = 0x8;
}  // namespace gate

/// Max 64-offset blocks per kernel call; callers size their mask array
/// to this (2 KiB on the stack, covering 4096 offsets — 20x the default
/// max_offset, so nearly every datagram is one call).
constexpr std::size_t kMaxAnchorBlocks = 64;

/// Hot-lane masks for one 64-offset block, split per protocol family.
/// The families key off the first byte's top two bits (RTP and RTCP,
/// which share class 10, are further split by the PT byte), so at most
/// one mask has any given bit set — the walker classifies each hot
/// offset without re-reading payload bytes. The kernels additionally
/// fold the cheap *length* preconditions of the downstream sniffs into
/// the masks — RTP's header fit (12 + 4*CSRC + extension) and
/// ChannelData's 4 + length tail bound — which rejects the bulk of the
/// would-be emits on encrypted payloads before any scalar code runs.
/// `rtp`, `rtcp`, `channel_data` and `quic` lanes are necessary
/// conditions matching the scalar anchor tests at every lane; `stun` is
/// approximate (cookie narrowed to its first byte, classic tail-fit sum
/// mod 2^16) and flagged lanes must be re-tested with the exact scalar
/// rules.
struct AnchorMasks {
  std::uint64_t rtp = 0;
  std::uint64_t rtcp = 0;
  std::uint64_t stun = 0;
  std::uint64_t channel_data = 0;
  std::uint64_t quic = 0;

  [[nodiscard]] std::uint64_t any() const {
    return rtp | rtcp | stun | channel_data | quic;
  }
};

/// Per-family hot-lane masks for `n_blocks` consecutive 64-offset
/// blocks starting at offset `i` of `p`: masks[b].family bit k refers
/// to offset i + 64*b + k. Families the caller's `gates` exclude come
/// back all-zero. One call covers a whole region so the kernel hoists
/// its vector constants out of the block loop — per-block indirect
/// calls were measurably slower than the old fully-inlined scan.
/// Preconditions (caller-enforced): n_blocks <= kMaxAnchorBlocks, and
/// i + 64*n_blocks <= fast_end where fast_end guarantees at least
/// stun::kHeaderSize (20) readable bytes past every offset — kernels
/// load up to 67 bytes past the last block's base.
using AnchorBlockFn = void (*)(const std::uint8_t* p, std::size_t i,
                               std::size_t n_blocks, std::size_t n,
                               unsigned gates, AnchorMasks* masks);

/// Kernel for `level`; nullptr for kScalar (callers run the plain loop)
/// and for levels this build/CPU cannot execute.
[[nodiscard]] AnchorBlockFn anchor_block_fn(SimdLevel level);
/// Kernel for the current simd_level().
[[nodiscard]] AnchorBlockFn anchor_block_fn();

}  // namespace rtcc::dpi
