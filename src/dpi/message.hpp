// Extracted-message representation shared by the DPI engines and the
// compliance checker.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proto/common.hpp"
#include "proto/quic/quic.hpp"
#include "proto/rtcp/rtcp.hpp"
#include "proto/rtp/rtp.hpp"
#include "proto/stun/stun.hpp"
#include "util/bytes.hpp"

namespace rtcc::dpi {

/// Finer-grained than Protocol: ChannelData shares STUN's table slot in
/// the paper but has its own wire format and compliance rules.
enum class MessageKind : std::uint8_t {
  kStun,
  kChannelData,
  kRtp,
  kRtcp,
  kQuic,
};

[[nodiscard]] proto::Protocol protocol_of(MessageKind k);
[[nodiscard]] std::string to_string(MessageKind k);

/// One validated protocol message found inside a UDP datagram.
/// Exactly one of the typed payloads is populated, per `kind`.
struct ExtractedMessage {
  MessageKind kind = MessageKind::kStun;
  std::size_t offset = 0;  // byte offset within the UDP payload
  std::size_t length = 0;  // bytes this message owns

  std::optional<proto::stun::Message> stun;
  std::optional<proto::stun::ChannelData> channel_data;
  std::optional<proto::rtp::Packet> rtp;
  std::optional<proto::rtcp::Compound> rtcp;
  std::optional<proto::quic::Header> quic;

  /// Raw wire bytes of the message — kept for STUN only, where
  /// compliance needs to recompute FINGERPRINT CRCs over the exact
  /// bytes (empty for other kinds to avoid duplicating media payloads).
  rtcc::util::Bytes raw;

  /// Stable label for the message-type-based metric (§5.1):
  /// STUN → 16-bit message type ("0x0001") or "ChannelData";
  /// RTP → payload type ("100"); RTCP → packet type of each contained
  /// packet (expanded by the caller); QUIC → long type / "short".
  [[nodiscard]] std::string type_label() const;
};

/// Classification of one whole datagram (Figure 3).
enum class DatagramClass : std::uint8_t {
  kStandard,            // standard messages from offset 0
  kProprietaryHeader,   // standard message(s) behind leading unknown bytes
  kFullyProprietary,    // no standard message found anywhere
};

[[nodiscard]] std::string to_string(DatagramClass c);

struct DatagramAnalysis {
  DatagramClass klass = DatagramClass::kFullyProprietary;
  /// Length of the unknown prefix when klass == kProprietaryHeader.
  std::size_t proprietary_header_len = 0;
  std::size_t payload_len = 0;
  std::vector<ExtractedMessage> messages;
  /// Candidates seen before protocol-specific validation (ablation data).
  std::size_t candidates = 0;
};

}  // namespace rtcc::dpi
