// Streaming call-corpus pipeline.
//
// run_experiment (metrics.hpp) materializes one CallAnalysis per call
// and lets each call's multi-megabyte trace die inside its task — but
// it offers no visibility into, or bound on, how many traces are alive
// at once. run_corpus makes that bound explicit: calls are generated →
// grouped → filtered → DPI-analyzed on the shared work-stealing pool
// with at most `max_live_traces` traces in memory simultaneously
// (a condition-variable gate admits new generations as finished calls
// release their slot), and the result carries the memory/throughput
// counters the paper-scale 90-call corpus is judged on: peak
// concurrently-live trace bytes, process peak RSS, and end-to-end
// MB/s. Aggregates are merged app-major, so the per-app analyses are
// bit-identical to run_experiment over the same matrix.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "report/metrics.hpp"

namespace rtcc::report {

struct CorpusOptions {
  /// The call matrix, analysis options, and exec mode. kSerial runs
  /// the whole pipeline on the calling thread (the gate degenerates to
  /// max_live_traces = 1); kWave is treated as kPooled here.
  ExperimentConfig experiment;
  /// Upper bound on traces alive at once. 0 = 2x the pool's worker
  /// count (workers stay busy while the next generation is admitted)
  /// — the default keeps peak memory O(workers), not O(calls).
  std::size_t max_live_traces = 0;
  /// Scenario-catalogue sweep appended after the app matrix: every
  /// emul::scenario_catalogue() entry is generated and analyzed this
  /// many times (seed-varied per repeat) under the same live-trace
  /// gate. 0 = none. Results merge per scenario name into
  /// CorpusResult::per_scenario — the compliance-matrix rows the
  /// app-major map doesn't cover, and the corpus bench's second scale
  /// axis (RTCC_SCENARIOS / BM_ScenarioScaling).
  int scenario_repeats = 0;
};

/// Per-call footprint row, in deterministic app-major matrix order.
struct CorpusCallStats {
  rtcc::emul::AppId app{};
  rtcc::emul::NetworkSetup network{};
  int repeat = 0;
  std::uint64_t trace_bytes = 0;
  std::uint64_t frames = 0;
};

/// Per-scenario footprint row, scenario-major then repeat order.
struct CorpusScenarioStats {
  std::string name;
  int repeat = 0;
  std::uint64_t trace_bytes = 0;
  std::uint64_t frames = 0;
};

struct CorpusResult {
  std::map<rtcc::emul::AppId, CallAnalysis> per_app;
  std::vector<CorpusCallStats> calls;
  /// Merged analysis per scenario-catalogue row (empty unless
  /// CorpusOptions::scenario_repeats > 0).
  std::map<std::string, CallAnalysis> per_scenario;
  std::vector<CorpusScenarioStats> scenario_calls;

  std::uint64_t total_trace_bytes = 0;
  /// Max over time of the summed sizes of concurrently-live traces —
  /// the quantity the streaming gate bounds. For a healthy run this is
  /// far below total_trace_bytes and independent of call count.
  std::uint64_t peak_live_trace_bytes = 0;
  std::size_t peak_live_traces = 0;
  /// Process high-water RSS after the run (VmHWM; 0 if unavailable).
  /// Includes everything the process ever touched, so it is an upper
  /// bound, not a per-run delta.
  std::uint64_t peak_rss_bytes = 0;
  double wall_s = 0.0;

  [[nodiscard]] double mb_per_s() const {
    return wall_s > 0.0
               ? static_cast<double>(total_trace_bytes) / 1e6 / wall_s
               : 0.0;
  }
};

[[nodiscard]] CorpusResult run_corpus(const CorpusOptions& opts = {});

/// experiment_config_from_env() wrapped for corpus runs: same RTCC_*
/// knobs, but repeats defaults to 5 (6 apps x 3 networks x 5 = the
/// paper's 90 calls) unless RTCC_REPEATS overrides it, RTCC_MAX_LIVE
/// bounds max_live_traces, and RTCC_SCENARIOS sets scenario_repeats.
[[nodiscard]] CorpusOptions corpus_options_from_env();

/// Current process peak RSS in bytes (Linux VmHWM, getrusage
/// fallback); 0 when neither source is available.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace rtcc::report
