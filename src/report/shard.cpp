#include "report/shard.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <unordered_map>

#include "net/flow_hash.hpp"
#include "util/env_knob.hpp"
#include "util/spsc_ring.hpp"

namespace rtcc::report {

namespace {

std::size_t clamp_shards(std::size_t n) {
  return n > kMaxShards ? kMaxShards : n;
}

std::atomic<std::size_t>& shard_flag() {
  static std::atomic<std::size_t> count{[]() -> std::size_t {
    if (const char* env = std::getenv("RTCC_SHARDS")) {
      if (std::strcmp(env, "auto") != 0) {
        // Strict parse: "4x", "-2", or garbage falls back to auto with
        // a one-line warning instead of silently running unsharded.
        // Values above kMaxShards clamp (documented ceiling).
        const auto v = rtcc::util::parse_knob_ll(env);
        if (v && *v >= 1) return clamp_shards(static_cast<std::size_t>(*v));
        rtcc::util::warn_bad_knob("RTCC_SHARDS", env,
                                  "want 'auto' or an integer >= 1");
      }
    }
    return kAutoShards;
  }()};
  return count;
}

}  // namespace

std::size_t configured_shard_count() {
  return shard_flag().load(std::memory_order_relaxed);
}

std::size_t shard_count() {
  const std::size_t configured = configured_shard_count();
  if (configured != kAutoShards) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return clamp_shards(hw != 0 ? hw : 1);
}

std::size_t set_shard_count(std::size_t count) {
  shard_flag().store(clamp_shards(count), std::memory_order_relaxed);
  return shard_count();
}

/// One worker's world: its ring, its thread, and the first exception it
/// hit. Heap-allocated so the vector of shards never relocates a live
/// ring.
struct ShardedPipeline::Shard {
  explicit Shard(std::size_t depth) : ring(depth) {}
  rtcc::util::SpscRing<WorkItem> ring;
  std::thread thread;
  std::exception_ptr error;
};

ShardedPipeline::ShardedPipeline(const Options& opts) : opts_(opts) {
  const std::size_t n = clamp_shards(std::max<std::size_t>(1, opts.shards));
  const std::size_t depth = std::max<std::size_t>(2, opts.ring_depth);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Shard>(depth));
  for (std::size_t i = 0; i < n; ++i)
    workers_[i]->thread =
        std::thread([this, i] { worker(*workers_[i], i); });
}

ShardedPipeline::~ShardedPipeline() {
  // Swallow worker exceptions on the destructor path (the caller
  // already gave up on the result, likely during unwind).
  try {
    finish();
  } catch (...) {
  }
}

std::size_t ShardedPipeline::submit_stream(
    const rtcc::net::Trace& trace, const rtcc::net::StreamTable& table,
    const rtcc::net::Stream& stream, CallAnalysis* partial,
    std::shared_ptr<const void> keepalive) {
  const std::size_t target = rtcc::net::shard_of(stream.key, workers_.size());
  auto& ring = workers_[target]->ring;
  const std::size_t bsz = rtcc::net::batch_size();
  const std::size_t n = stream.packets.size();
  const std::uint64_t slot = next_slot_++;

  if (n == 0) {
    // Degenerate stream: one empty last chunk so the shard still fills
    // the partial (and releases the keepalive). Matches the unsharded
    // path, whose chunk loop books nothing for an empty stream.
    WorkItem item;
    item.slot = slot;
    item.last = true;
    item.partial = partial;
    item.keepalive = std::move(keepalive);
    ring.push(std::move(item));
    return target;
  }

  for (std::size_t base = 0; base < n; base += bsz) {
    const std::size_t end = std::min(n, base + bsz);
    WorkItem item;
    item.slot = slot;
    item.batch.reserve(end - base);
    // Decode counters land in *partial from the producer thread; the
    // shard reads the partial only after popping the last chunk, and
    // the ring's release/acquire pair orders these bookings before it.
    detail::decode_stream_chunk(trace, table, stream, base, end, item.batch,
                                *partial);
    item.last = end == n;
    if (item.last) {
      item.partial = partial;
      item.keepalive = std::move(keepalive);
    }
    ring.push(std::move(item));
  }
  return target;
}

std::size_t ShardedPipeline::submit_batch(
    const rtcc::net::FlowKey& key, const rtcc::net::PacketBatch& batch,
    CallAnalysis* partial, std::shared_ptr<const void> keepalive) {
  const std::size_t target = rtcc::net::shard_of(key, workers_.size());
  auto& ring = workers_[target]->ring;
  const std::size_t bsz = rtcc::net::batch_size();
  const std::size_t n = batch.size();
  const std::uint64_t slot = next_slot_++;

  if (n == 0) {
    WorkItem item;
    item.slot = slot;
    item.last = true;
    item.partial = partial;
    item.keepalive = std::move(keepalive);
    ring.push(std::move(item));
    return target;
  }

  for (std::size_t base = 0; base < n; base += bsz) {
    const std::size_t end = std::min(n, base + bsz);
    WorkItem item;
    item.slot = slot;
    item.batch.reserve(end - base);
    for (std::size_t i = base; i < end; ++i)
      item.batch.push(batch.payload(i), batch.ts[i], batch.dir[i]);
    item.last = end == n;
    if (item.last) {
      item.partial = partial;
      item.keepalive = std::move(keepalive);
    }
    ring.push(std::move(item));
  }
  return target;
}

void ShardedPipeline::worker(Shard& shard, std::size_t shard_index) {
  // Private flow table: stream slot -> accumulated whole-stream batch.
  // DPI validation (SSRC continuity, support tables) and the two-phase
  // compliance checker are stream-stateful, so a stream is analyzed
  // only once its last chunk arrives — by the exact same core as the
  // unsharded path, which is what makes output shard-count-invariant.
  struct PendingStream {
    rtcc::net::PacketBatch batch;
    std::uint64_t vectors = 0;
    std::uint64_t payload_bytes = 0;
  };
  const rtcc::dpi::ScanningDpi engine(opts_.scan);
  std::unordered_map<std::uint64_t, PendingStream> pending;

  WorkItem item;
  try {
    while (shard.ring.pop(item)) {
      PendingStream& p = pending[item.slot];
      ++p.vectors;
      const std::size_t n = item.batch.size();
      p.batch.reserve(p.batch.size() + n);
      for (std::size_t i = 0; i < n; ++i) {
        p.batch.push(item.batch.payload(i), item.batch.ts[i],
                     item.batch.dir[i]);
        p.payload_bytes += item.batch.len[i];
      }
      if (!item.last) continue;

      CallAnalysis& part = *item.partial;
      detail::analyze_stream_batch(engine, opts_.compliance, p.batch, part);
      part.shards.resize(workers_.size());
      ShardStat& row = part.shards[shard_index];
      row.streams += 1;
      row.handoff_vectors += p.vectors;
      row.datagrams += p.batch.size();
      row.payload_bytes += p.payload_bytes;
      row.messages += part.dpi_messages;
      pending.erase(item.slot);
      // Reset the item *after* the analysis: its keepalive may pin the
      // trace bytes the batch views point into.
      item = WorkItem{};
    }
  } catch (...) {
    shard.error = std::current_exception();
    // Keep draining so the producer can't wedge on a full ring; the
    // dropped items' keepalives are released as they're overwritten.
    while (shard.ring.pop(item)) item = WorkItem{};
  }
}

void ShardedPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& w : workers_) w->ring.close();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  for (auto& w : workers_)
    if (w->error) std::rethrow_exception(w->error);
}

}  // namespace rtcc::report
