// Renderers producing the paper's tables (1-6) from merged analyses.
#pragma once

#include <map>
#include <string>

#include "report/metrics.hpp"

namespace rtcc::report {

using AppResults = std::map<rtcc::emul::AppId, CallAnalysis>;

/// Table 1: traffic traces and filtering progress per application.
[[nodiscard]] std::string render_table1(const AppResults& results);

/// Table 2: message distribution by protocol (+ fully proprietary).
[[nodiscard]] std::string render_table2(const AppResults& results);

/// Table 3: compliance ratio by message type (apps × protocols matrix,
/// plus the per-protocol aggregate bottom row).
[[nodiscard]] std::string render_table3(const AppResults& results);

/// Tables 4/5/6: observed STUN/TURN / RTP / RTCP types, compliant vs
/// non-compliant per application.
[[nodiscard]] std::string render_table4(const AppResults& results);
[[nodiscard]] std::string render_table5(const AppResults& results);
[[nodiscard]] std::string render_table6(const AppResults& results);

}  // namespace rtcc::report
