#include "report/json_export.hpp"

#include "util/json.hpp"

namespace rtcc::report {

using rtcc::util::JsonWriter;

namespace {

void write_stage(JsonWriter& w, const char* name,
                 const rtcc::filter::StageStats& s) {
  w.key(name).begin_object();
  w.key("streams").value(static_cast<std::uint64_t>(s.streams));
  w.key("packets").value(s.packets);
  w.end_object();
}

void write_node(JsonWriter& w, const char* name,
                const rtcc::dpi::NodeCounters& n) {
  w.key(name).begin_object();
  w.key("vectors").value(n.vectors);
  w.key("packets").value(n.packets);
  w.key("suspended").value(n.suspended);
  w.end_object();
}

void write_analysis(JsonWriter& w, const CallAnalysis& a) {
  w.begin_object();

  w.key("traffic").begin_object();
  w.key("raw_bytes").value(a.raw_bytes);
  w.key("raw_udp_streams").value(a.raw_udp_streams);
  w.key("raw_udp_datagrams").value(a.raw_udp_datagrams);
  w.key("raw_tcp_streams").value(a.raw_tcp_streams);
  w.key("raw_tcp_segments").value(a.raw_tcp_segments);
  write_stage(w, "stage1_udp", a.stage1_udp);
  write_stage(w, "stage2_udp", a.stage2_udp);
  write_stage(w, "stage1_tcp", a.stage1_tcp);
  write_stage(w, "stage2_tcp", a.stage2_tcp);
  write_stage(w, "rtc_udp", a.rtc_udp);
  write_stage(w, "rtc_tcp", a.rtc_tcp);
  w.end_object();

  w.key("datagram_classes").begin_object();
  w.key("standard").value(a.dgram_standard);
  w.key("proprietary_header").value(a.dgram_prop_header);
  w.key("fully_proprietary").value(a.dgram_fully_prop);
  w.end_object();

  w.key("dpi").begin_object();
  w.key("candidates").value(a.dpi_candidates);
  w.key("messages").value(a.dpi_messages);
  w.end_object();

  // Vector-pipeline diagnostics (DESIGN.md §6). Omitted while all-zero
  // (e.g. analyses predating the node graph merged from JSON).
  if (a.nodes.any()) {
    w.key("nodes").begin_object();
    write_node(w, "decode", a.nodes.decode);
    write_node(w, "demux", a.nodes.demux);
    write_node(w, "prefilter", a.nodes.prefilter);
    write_node(w, "scan", a.nodes.scan);
    write_node(w, "compliance", a.nodes.compliance);
    w.end_object();
  }

  // Flow-sharding diagnostics (DESIGN.md §7): one row per shard
  // worker. Present only when the sharded path ran — the split depends
  // on RTCC_SHARDS, so (like "nodes") parity signatures exclude it and
  // goldens, produced with shards pinned to 1, never contain it.
  if (!a.shards.empty()) {
    w.key("shards").begin_array();
    for (const auto& s : a.shards) {
      w.begin_object();
      w.key("streams").value(s.streams);
      w.key("handoff_vectors").value(s.handoff_vectors);
      w.key("datagrams").value(s.datagrams);
      w.key("payload_bytes").value(s.payload_bytes);
      w.key("messages").value(s.messages);
      w.end_object();
    }
    w.end_array();
  }

  // Streaming-engine flow-table diagnostics (DESIGN.md §6c): present
  // only on the RTCC_STREAM path. Knob-dependent like "nodes" and
  // "shards", so parity signatures strip it and goldens (produced with
  // streaming pinned off) never contain it.
  if (a.flows.any()) {
    w.key("flows").begin_object();
    w.key("flows_seen").value(a.flows.flows_seen);
    w.key("flows_live").value(a.flows.flows_live);
    w.key("evictions").value(a.flows.evictions);
    w.key("finalized").value(a.flows.finalized);
    w.key("flows_rekeyed").value(a.flows.flows_rekeyed);
    w.key("live_peak_bytes").value(a.flows.live_peak_bytes);
    w.end_object();
  }

  // Emitted only for real captures (the synthetic corpus never sets
  // capture-layer counters), keeping the golden matrix byte-identical.
  if (a.ingest.from_capture()) {
    const auto& in = a.ingest;
    w.key("ingest").begin_object();
    w.key("frames_seen").value(in.frames_seen);
    w.key("frames_decoded").value(in.frames_decoded);
    w.key("torn_tail").value(in.torn_tail);
    w.key("snaplen_clipped").value(in.snaplen_clipped);
    w.key("bad_usec").value(in.bad_usec);
    w.key("vlan_stripped").value(in.vlan_stripped);
    w.key("fragments_seen").value(in.fragments_seen);
    w.key("fragments_reassembled").value(in.fragments_reassembled);
    w.key("fragments_expired").value(in.fragments_expired);
    w.key("non_ip").value(in.non_ip);
    w.key("clipped_undecodable").value(in.clipped_undecodable);
    w.key("undecodable").value(in.undecodable);
    w.key("unsupported_linktype").value(in.unsupported_linktype);
    w.key("loss_events").value(in.loss_events());
    w.end_object();
  }

  w.key("protocols").begin_object();
  for (const auto& [proto_id, stats] : a.protocols) {
    w.key(rtcc::proto::to_string(proto_id)).begin_object();
    w.key("messages").value(stats.messages);
    w.key("compliant_messages").value(stats.compliant);
    w.key("types").begin_object();
    for (const auto& [label, t] : stats.types) {
      w.key(label).begin_object();
      w.key("total").value(t.total);
      w.key("compliant").value(t.compliant);
      w.key("type_compliant").value(t.type_compliant());
      if (!t.criterion_failures.empty()) {
        w.key("criterion_failures").begin_object();
        for (const auto& [criterion, count] : t.criterion_failures)
          w.key(criterion).value(count);
        w.end_object();
      }
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();

  w.end_object();
}

}  // namespace

std::string to_json(const CallAnalysis& analysis) {
  JsonWriter w;
  write_analysis(w, analysis);
  return std::move(w).str();
}

std::string to_json(const AppResults& results) {
  JsonWriter w;
  w.begin_object();
  for (const auto& [app, analysis] : results) {
    w.key(rtcc::emul::to_string(app));
    write_analysis(w, analysis);
  }
  w.end_object();
  return std::move(w).str();
}

std::string to_json(const std::vector<Finding>& findings) {
  JsonWriter w;
  w.begin_array();
  for (const auto& f : findings) {
    w.begin_object();
    w.key("id").value(f.id);
    w.key("summary").value(f.summary);
    w.key("stats").begin_object();
    for (const auto& [key, value] : f.stats) w.key(key).value(value);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  return std::move(w).str();
}

}  // namespace rtcc::report
