#include "report/metrics.hpp"

#include <cstdlib>
#include <future>
#include <limits>
#include <thread>

#include "net/flow_hash.hpp"
#include "report/shard.hpp"
#include "stream/engine.hpp"
#include "util/env_knob.hpp"
#include "util/thread_pool.hpp"

namespace rtcc::report {

using rtcc::compliance::CheckedMessage;
using rtcc::compliance::StreamComplianceChecker;
using rtcc::dpi::DatagramAnalysis;
using rtcc::dpi::ScanningDpi;
using rtcc::dpi::StreamDatagram;

std::size_t ProtocolStats::compliant_types() const {
  std::size_t n = 0;
  for (const auto& [label, stats] : types)
    if (stats.type_compliant()) ++n;
  return n;
}

std::uint64_t CallAnalysis::total_messages() const {
  std::uint64_t n = 0;
  for (const auto& [proto, stats] : protocols) n += stats.messages;
  return n;
}

std::uint64_t CallAnalysis::total_compliant() const {
  std::uint64_t n = 0;
  for (const auto& [proto, stats] : protocols) n += stats.compliant;
  return n;
}

std::uint64_t CallAnalysis::distribution_total() const {
  return total_messages() + dgram_fully_prop;
}

namespace detail {

TracePrelude analyze_trace_prelude(const rtcc::net::Trace& trace,
                                   const rtcc::filter::FilterConfig& fcfg) {
  TracePrelude pre;
  CallAnalysis& out = pre.base;
  out.raw_bytes = trace.total_bytes();

  pre.table = rtcc::net::group_streams(trace);
  out.raw_udp_streams = pre.table.udp_stream_count();
  out.raw_udp_datagrams = pre.table.udp_datagram_count();
  out.raw_tcp_streams = pre.table.tcp_stream_count();
  out.raw_tcp_segments = pre.table.tcp_segment_count();

  pre.report = rtcc::filter::run_pipeline(trace, pre.table, fcfg);
  out.ingest = pre.report.ingest;
  out.stage1_udp = pre.report.stage1_udp;
  out.stage2_udp = pre.report.stage2_udp;
  out.stage1_tcp = pre.report.stage1_tcp;
  out.stage2_tcp = pre.report.stage2_tcp;
  out.rtc_udp = pre.report.rtc_udp;
  out.rtc_tcp = pre.report.rtc_tcp;
  return pre;
}

void decode_stream_chunk(const rtcc::net::Trace& trace,
                         const rtcc::net::StreamTable& table,
                         const rtcc::net::Stream& stream, std::size_t base,
                         std::size_t end, rtcc::net::PacketBatch& batch,
                         CallAnalysis& part) {
  namespace net = rtcc::net;
  // Decode node: resolve each stream packet's descriptor (arena view
  // or reassembled buffer) into the SoA batch, one vector at a time.
  // Dual loop — two descriptors per iteration keep the payload-
  // resolution loads overlapped — plus a descriptor prefetch a few
  // packets ahead. suspended counts reassembled datagrams (their
  // bytes come from the table, not a home frame).
  const auto decode_one = [&](const net::StreamPacket& pkt) {
    batch.push(net::packet_payload(trace, table, pkt), pkt.ts,
               pkt.dir == net::Direction::kAtoB ? 0 : 1);
    if (pkt.reasm >= 0) ++part.nodes.decode.suspended;
  };
  std::size_t i = base;
  for (; i + 2 <= end; i += 2) {
    if (i + net::kPrefetchAhead < end)
      net::prefetch(&stream.packets[i + net::kPrefetchAhead]);
    decode_one(stream.packets[i]);
    decode_one(stream.packets[i + 1]);
  }
  for (; i < end; ++i) decode_one(stream.packets[i]);
  ++part.nodes.decode.vectors;
  part.nodes.decode.packets += end - base;
}

void analyze_stream_batch(const rtcc::dpi::ScanningDpi& dpi,
                          const rtcc::compliance::ComplianceConfig& ccfg,
                          const rtcc::net::PacketBatch& batch,
                          CallAnalysis& part) {
  const std::size_t bsz = rtcc::net::batch_size();
  const auto analyses = dpi.analyze_batch(batch, &part.nodes);

  // Compliance node, phase 1: observe every extracted message to
  // build the stream context. suspended counts the observed messages
  // parked until finalize().
  StreamComplianceChecker checker(ccfg);
  for (std::size_t i = 0; i < analyses.size(); ++i) {
    part.dpi_candidates += analyses[i].candidates;
    for (const auto& msg : analyses[i].messages) {
      checker.observe(msg, batch.dir[i], batch.ts[i]);
      ++part.nodes.compliance.suspended;
    }
  }
  checker.finalize();

  // Compliance node, phase 2: verdicts per vector, with one reused
  // CheckedMessage buffer (check_into) so the loop is allocation-free
  // in steady state.
  std::vector<CheckedMessage> checked;
  for (std::size_t base = 0; base < analyses.size(); base += bsz) {
    const std::size_t end = std::min(analyses.size(), base + bsz);
    ++part.nodes.compliance.vectors;
    part.nodes.compliance.packets += end - base;
    for (std::size_t i = base; i < end; ++i) {
      const auto& anal = analyses[i];
      switch (anal.klass) {
        case rtcc::dpi::DatagramClass::kStandard:
          ++part.dgram_standard;
          break;
        case rtcc::dpi::DatagramClass::kProprietaryHeader:
          ++part.dgram_prop_header;
          break;
        case rtcc::dpi::DatagramClass::kFullyProprietary:
          ++part.dgram_fully_prop;
          break;
      }
      for (const auto& msg : anal.messages) {
        ++part.dpi_messages;
        checked.clear();
        checker.check_into(msg, batch.dir[i], batch.ts[i], checked);
        for (const auto& cm : checked) {
          auto& pstats = part.protocols[cm.protocol];
          ++pstats.messages;
          auto& tstats = pstats.types[cm.type_label];
          ++tstats.total;
          if (cm.verdict.compliant) {
            ++pstats.compliant;
            ++tstats.compliant;
          } else if (const auto* v = cm.verdict.first()) {
            ++tstats.criterion_failures[rtcc::compliance::to_string(
                v->criterion)];
          }
        }
      }
    }
  }
}

}  // namespace detail

namespace {

/// Shard count an analysis actually runs with: the per-call override,
/// else the global RTCC_SHARDS knob; forced to 1 (unsharded) when
/// parallelism is off entirely (RTCC_PARALLEL=0 means fully serial).
std::size_t effective_shards(const AnalysisOptions& opts) {
  if (!opts.parallel_streams) return 1;
  return opts.shards != 0 ? opts.shards : shard_count();
}

}  // namespace

CallAnalysis analyze_trace(const rtcc::net::Trace& trace,
                           const rtcc::filter::FilterConfig& fcfg,
                           const AnalysisOptions& opts,
                           std::vector<CallAnalysis>* per_stream) {
  // RTCC_STREAM=1 routes through the one-pass engine (DESIGN.md §6c);
  // the batch path below stays live as its equivalence oracle, like
  // RTCC_ARENA=0 / RTCC_BATCH=1 / RTCC_SHARDS=1.
  if (rtcc::stream::stream_enabled())
    return rtcc::stream::analyze_trace_streaming(
        trace, fcfg, opts, rtcc::stream::stream_options_from_env(),
        per_stream);
  auto pre = detail::analyze_trace_prelude(trace, fcfg);
  CallAnalysis out = std::move(pre.base);
  const auto& table = pre.table;

  // Streams are independent (all validation heuristics and compliance
  // context are stream-scoped), so each one fills its own partial.
  // Partials merge in a fixed order — stream order below, shard order
  // on the sharded path — and merge() is order-insensitive, so output
  // is identical across the serial loop, the pool, and every shard
  // count.
  const auto& rtc_streams = pre.report.rtc_udp_streams;
  std::vector<CallAnalysis> partials(rtc_streams.size());
  const std::size_t nshards = effective_shards(opts);

  if (nshards > 1 && !rtc_streams.empty()) {
    // Flow-sharded path (DESIGN.md §7): this thread is the producer,
    // decoding each stream into chunks and routing whole streams to
    // shard workers by symmetric 5-tuple hash.
    ShardedPipeline::Options popts;
    popts.shards = nshards;
    popts.scan = opts.scan;
    popts.compliance = opts.compliance;
    ShardedPipeline pipe(popts);
    std::vector<std::size_t> routed(rtc_streams.size());
    for (std::size_t si = 0; si < rtc_streams.size(); ++si)
      routed[si] = pipe.submit_stream(trace, table,
                                      table.streams[rtc_streams[si]],
                                      &partials[si]);
    pipe.finish();
    for (std::size_t s = 0; s < pipe.shards(); ++s)
      for (std::size_t si = 0; si < rtc_streams.size(); ++si)
        if (routed[si] == s) merge(out, partials[si]);
  } else {
    const ScanningDpi dpi(opts.scan);
    const auto analyze_one_stream = [&](std::size_t si) {
      const auto& stream = table.streams[rtc_streams[si]];
      CallAnalysis& part = partials[si];
      const std::size_t bsz = rtcc::net::batch_size();
      const std::size_t n = stream.packets.size();
      rtcc::net::PacketBatch batch;
      batch.reserve(n);
      for (std::size_t base = 0; base < n; base += bsz)
        detail::decode_stream_chunk(trace, table, stream, base,
                                    std::min(n, base + bsz), batch, part);
      detail::analyze_stream_batch(dpi, opts.compliance, batch, part);
    };

    if (opts.parallel_streams && rtc_streams.size() > 1) {
      rtcc::util::ThreadPool::shared().parallel_for(rtc_streams.size(),
                                                    analyze_one_stream);
    } else {
      for (std::size_t si = 0; si < rtc_streams.size(); ++si)
        analyze_one_stream(si);
    }
    for (const auto& part : partials) merge(out, part);
  }
  if (per_stream != nullptr) *per_stream = std::move(partials);
  return out;
}

CallAnalysis analyze_call(const rtcc::emul::EmulatedCall& call,
                          const AnalysisOptions& opts) {
  return analyze_trace(call.trace, rtcc::emul::filter_config_for(call), opts);
}

namespace {

void merge_stage(rtcc::filter::StageStats& into,
                 const rtcc::filter::StageStats& from) {
  into.streams += from.streams;
  into.packets += from.packets;
}

}  // namespace

void merge(CallAnalysis& into, const CallAnalysis& from) {
  into.raw_bytes += from.raw_bytes;
  into.raw_udp_streams += from.raw_udp_streams;
  into.raw_udp_datagrams += from.raw_udp_datagrams;
  into.raw_tcp_streams += from.raw_tcp_streams;
  into.raw_tcp_segments += from.raw_tcp_segments;
  merge_stage(into.stage1_udp, from.stage1_udp);
  merge_stage(into.stage2_udp, from.stage2_udp);
  merge_stage(into.stage1_tcp, from.stage1_tcp);
  merge_stage(into.stage2_tcp, from.stage2_tcp);
  merge_stage(into.rtc_udp, from.rtc_udp);
  merge_stage(into.rtc_tcp, from.rtc_tcp);
  into.dgram_standard += from.dgram_standard;
  into.dgram_prop_header += from.dgram_prop_header;
  into.dgram_fully_prop += from.dgram_fully_prop;
  into.dpi_candidates += from.dpi_candidates;
  into.dpi_messages += from.dpi_messages;
  into.nodes.merge(from.nodes);
  if (!from.shards.empty()) {
    if (into.shards.size() < from.shards.size())
      into.shards.resize(from.shards.size());
    for (std::size_t s = 0; s < from.shards.size(); ++s)
      into.shards[s].merge(from.shards[s]);
  }
  into.flows.merge(from.flows);
  into.ingest.merge(from.ingest);
  for (const auto& [proto, pstats] : from.protocols) {
    auto& dst = into.protocols[proto];
    dst.messages += pstats.messages;
    dst.compliant += pstats.compliant;
    for (const auto& [label, tstats] : pstats.types) {
      auto& t = dst.types[label];
      t.total += tstats.total;
      t.compliant += tstats.compliant;
      for (const auto& [criterion, count] : tstats.criterion_failures)
        t.criterion_failures[criterion] += count;
    }
  }
}

std::map<rtcc::emul::AppId, CallAnalysis> run_experiment(
    const ExperimentConfig& cfg) {
  // Enumerate the full call matrix up front so the parallel path can
  // dispatch one task per call while keeping a deterministic merge
  // order (app-major, then network, then repeat).
  struct Job {
    rtcc::emul::AppId app;
    rtcc::emul::CallConfig call_cfg;
  };
  std::vector<Job> jobs;
  for (auto app : cfg.apps) {
    for (auto network : cfg.networks) {
      for (int repeat = 0; repeat < cfg.repeats; ++repeat) {
        rtcc::emul::CallConfig call_cfg;
        call_cfg.app = app;
        call_cfg.network = network;
        call_cfg.media_scale = cfg.media_scale;
        call_cfg.call_s = cfg.call_s;
        call_cfg.background = cfg.background;
        call_cfg.seed = cfg.seed;
        call_cfg.call_index = repeat;
        jobs.push_back(Job{app, call_cfg});
      }
    }
  }

  auto run_one = [&cfg](const rtcc::emul::CallConfig& call_cfg) {
    const auto call = rtcc::emul::emulate_call(call_cfg);
    return analyze_call(call, cfg.analysis);
  };

  std::vector<CallAnalysis> results(jobs.size());
  switch (jobs.size() > 1 ? cfg.exec : ExecMode::kSerial) {
    case ExecMode::kSerial:
      for (std::size_t i = 0; i < jobs.size(); ++i)
        results[i] = run_one(jobs[i].call_cfg);
      break;
    case ExecMode::kWave: {
      // Legacy dispatch, kept as the benchmark baseline: core-count
      // waves of std::async with a barrier per wave, so one slow call
      // (relay-mode Zoom with filler bursts) idles the rest of its
      // wave.
      const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
      for (std::size_t base = 0; base < jobs.size(); base += hw) {
        const std::size_t end = std::min(jobs.size(), base + hw);
        std::vector<std::future<CallAnalysis>> futures;
        for (std::size_t i = base; i < end; ++i)
          futures.push_back(
              std::async(std::launch::async, run_one, jobs[i].call_cfg));
        for (std::size_t i = base; i < end; ++i)
          results[i] = futures[i - base].get();
      }
      break;
    }
    case ExecMode::kPooled:
      // Persistent work-stealing pool: the pool is bounded by the core
      // count (each call allocates a multi-megabyte trace, so unbounded
      // async would oversubscribe CPU and memory), and a finished
      // worker immediately steals the next undone call.
      rtcc::util::ThreadPool::shared().parallel_for(
          jobs.size(),
          [&](std::size_t i) { results[i] = run_one(jobs[i].call_cfg); });
      break;
  }

  std::map<rtcc::emul::AppId, CallAnalysis> out;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    merge(out[jobs[i].app], results[i]);
  return out;
}

std::string to_string(ExecMode m) {
  switch (m) {
    case ExecMode::kSerial:
      return "serial";
    case ExecMode::kWave:
      return "wave";
    case ExecMode::kPooled:
      return "pooled";
  }
  return "?";
}

ExperimentConfig experiment_config_from_env() {
  ExperimentConfig cfg;
  cfg.media_scale = rtcc::util::env_knob_double("RTCC_SCALE",
                                                cfg.media_scale, 1e-6, 1e3);
  cfg.repeats = static_cast<int>(
      rtcc::util::env_knob_ll("RTCC_REPEATS", cfg.repeats, 1, 1000000));
  cfg.seed = static_cast<std::uint64_t>(rtcc::util::env_knob_ll(
      "RTCC_SEED", static_cast<long long>(cfg.seed), 0,
      std::numeric_limits<long long>::max()));
  // RTCC_PARALLEL=0/false/off forces fully serial execution (calls,
  // per-call streams, and flow sharding); results are identical either
  // way — the knob only changes dispatch. A value outside the boolean
  // grammar warns and keeps the pooled default (it used to silently
  // parse as 0 and go serial).
  if (!rtcc::util::env_knob_bool("RTCC_PARALLEL", true)) {
    cfg.exec = ExecMode::kSerial;
    cfg.analysis.parallel_streams = false;
  }
  return cfg;
}

}  // namespace rtcc::report
