// Flow-sharded execution mode for the analysis hot path (DESIGN.md §7).
//
// The paper's per-stream analysis is embarrassingly parallel at the
// flow level: every compliance verdict is computed per 5-tuple stream.
// ShardedPipeline exploits that the way RSS NICs and VPP-class stacks
// do — a symmetric 5-tuple hash (net/flow_hash.hpp) routes each stream
// to one of N shard workers over a bounded SPSC ring
// (util/spsc_ring.hpp), and each shard owns private state: its pending
// flow table, its ScanningDpi engine and scan scratch, its compliance
// checkers. The hot path crosses threads exactly once (the ring) and
// takes no locks and touches no shared atomics beyond the two ring
// indices.
//
// Determinism: per-stream partials are computed by the exact same
// per-stream core as the unsharded path (report::detail), batching is
// per-stream (so node counters cannot see the shard count), and
// partials merge in fixed shard order via the existing merge() — whose
// order-insensitivity PR 5's merge-order oracle pins. Output is
// therefore bit-identical for every shard count; RTCC_SHARDS=1 keeps
// the unsharded path alive as the equivalence oracle, the same pattern
// as RTCC_ARENA=0 and RTCC_BATCH=1.
#pragma once

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "report/metrics.hpp"

namespace rtcc::report {

/// Hard ceiling on shard workers (memory per shard is one ring plus
/// pending batches; 64 is far above any plausible core count here).
inline constexpr std::size_t kMaxShards = 64;

/// Sentinel for "resolve from the machine": stored when RTCC_SHARDS is
/// unset or "auto".
inline constexpr std::size_t kAutoShards = 0;

/// Effective shard count: the configured value, or (when auto) the
/// hardware concurrency clamped to [1, kMaxShards]. Always >= 1.
[[nodiscard]] std::size_t shard_count();

/// Raw configured value; kAutoShards (0) means auto. Guards save this,
/// not the resolved count, so auto stays auto across a guard.
[[nodiscard]] std::size_t configured_shard_count();

/// Sets the knob (0 = auto) and returns the resolved effective count.
/// Values above kMaxShards clamp.
std::size_t set_shard_count(std::size_t count);

/// RAII pin for tests/benches, mirroring net::BatchModeGuard.
class ShardModeGuard {
 public:
  explicit ShardModeGuard(std::size_t count)
      : previous_(configured_shard_count()) {
    set_shard_count(count);
  }
  ~ShardModeGuard() { set_shard_count(previous_); }
  ShardModeGuard(const ShardModeGuard&) = delete;
  ShardModeGuard& operator=(const ShardModeGuard&) = delete;

 private:
  std::size_t previous_;
};

/// N shard workers behind per-shard SPSC rings. Single-producer: one
/// thread (the caller) decodes streams into PacketBatch chunks and
/// submits them; whole streams are routed by flow hash, so a shard
/// sees every chunk of each stream it owns, accumulates them in its
/// private pending table, and runs DPI + compliance when the last
/// chunk arrives. The pipeline is reusable across many traces (the
/// sharded corpus keeps one alive for the whole run).
class ShardedPipeline {
 public:
  struct Options {
    std::size_t shards = 2;
    /// Ring slots per shard (rounded up to a power of two). Sized so a
    /// burst of chunks for one shard doesn't stall the producer, while
    /// bounding in-flight memory to O(shards * depth * batch_size).
    std::size_t ring_depth = 64;
    rtcc::dpi::ScanOptions scan;
    rtcc::compliance::ComplianceConfig compliance;
  };

  explicit ShardedPipeline(const Options& opts);
  ~ShardedPipeline();
  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Decodes `stream` into batch-sized chunks and hands them to the
  /// owning shard, which fills `*partial` (and its own row of
  /// partial->shards) once the last chunk lands. `partial` must stay
  /// valid and untouched until finish(); `keepalive` (optional) is
  /// released by the shard after the stream is analyzed — the sharded
  /// corpus uses it to pin the trace + stream table and free its
  /// live-trace slot. Returns the shard index the stream was routed
  /// to, which callers use to merge partials in fixed shard order.
  /// Producer thread only.
  std::size_t submit_stream(const rtcc::net::Trace& trace,
                            const rtcc::net::StreamTable& table,
                            const rtcc::net::Stream& stream,
                            CallAnalysis* partial,
                            std::shared_ptr<const void> keepalive = {});

  /// Pre-decoded variant for the streaming engine: hands a whole-flow
  /// batch (already resolved payload descriptors, decode counters
  /// already booked into `*partial` by the caller) to the shard owning
  /// `key`, chunked by batch_size() so the shard's handoff accounting
  /// is byte-identical to submit_stream's. `keepalive` must pin the
  /// payload bytes the batch views. Producer thread only.
  std::size_t submit_batch(const rtcc::net::FlowKey& key,
                           const rtcc::net::PacketBatch& batch,
                           CallAnalysis* partial,
                           std::shared_ptr<const void> keepalive = {});

  /// Closes every ring, joins the workers, and rethrows the first
  /// worker exception, if any. Idempotent; called by the destructor
  /// (which swallows exceptions) if the caller didn't.
  void finish();

  [[nodiscard]] std::size_t shards() const { return workers_.size(); }

 private:
  struct WorkItem {
    std::uint64_t slot = 0;  // stream id: ties chunks together
    rtcc::net::PacketBatch batch;
    bool last = false;
    CallAnalysis* partial = nullptr;            // set on the last chunk
    std::shared_ptr<const void> keepalive;      // set on the last chunk
  };

  struct Shard;

  void worker(Shard& shard, std::size_t shard_index);

  Options opts_;
  std::vector<std::unique_ptr<Shard>> workers_;
  std::uint64_t next_slot_ = 0;
  bool finished_ = false;
};

}  // namespace rtcc::report
