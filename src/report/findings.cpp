#include "report/findings.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "proto/srtp/srtcp.hpp"
#include "util/hex.hpp"

namespace rtcc::report {

using rtcc::dpi::DatagramAnalysis;
using rtcc::dpi::DatagramClass;
using rtcc::dpi::MessageKind;
using rtcc::dpi::StreamDatagram;
using rtcc::util::BytesView;

namespace {

std::string fmt(const char* format, double a, double b = 0, double c = 0) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), format, a, b, c);
  return buf;
}

bool all_bytes_equal(BytesView v) {
  if (v.empty()) return false;
  for (std::uint8_t b : v)
    if (b != v[0]) return false;
  return true;
}

}  // namespace

std::vector<StreamAnalysis> analyze_rtc_streams(
    const rtcc::net::Trace& trace, const rtcc::net::StreamTable& table,
    const rtcc::filter::FilterReport& filter_report,
    const rtcc::dpi::ScanOptions& scan) {
  std::vector<StreamAnalysis> out;
  const rtcc::dpi::ScanningDpi dpi(scan);
  for (std::size_t stream_idx : filter_report.rtc_udp_streams) {
    const auto& stream = table.streams[stream_idx];
    StreamAnalysis sa;
    sa.stream_index = stream_idx;
    sa.datagrams.reserve(stream.packets.size());
    for (const auto& pkt : stream.packets) {
      StreamDatagram d;
      d.payload = rtcc::net::packet_payload(trace, table, pkt);
      d.ts = pkt.ts;
      d.dir = pkt.dir == rtcc::net::Direction::kAtoB ? 0 : 1;
      sa.datagrams.push_back(d);
    }
    sa.analyses = dpi.analyze_stream(sa.datagrams);
    out.push_back(std::move(sa));
  }
  return out;
}

std::vector<Finding> detect_findings(const rtcc::net::Trace& trace,
                                     const rtcc::filter::FilterConfig& fcfg,
                                     const AnalysisOptions& opts) {
  std::vector<Finding> findings;
  const auto table = rtcc::net::group_streams(trace);
  const auto filter_report = rtcc::filter::run_pipeline(trace, table, fcfg);
  const auto streams =
      analyze_rtc_streams(trace, table, filter_report, opts.scan);

  // ---- filler-messages (Zoom §5.3) ---------------------------------------
  {
    std::uint64_t filler = 0, fully_prop = 0;
    double first_ts = 0, last_ts = 0;
    double peak_rate = 0;
    for (const auto& sa : streams) {
      std::vector<double> filler_ts;
      for (std::size_t i = 0; i < sa.analyses.size(); ++i) {
        if (sa.analyses[i].klass != DatagramClass::kFullyProprietary)
          continue;
        ++fully_prop;
        const BytesView payload = sa.datagrams[i].payload;
        if (payload.size() >= 900 && all_bytes_equal(payload)) {
          ++filler;
          filler_ts.push_back(sa.datagrams[i].ts);
          if (filler == 1) first_ts = sa.datagrams[i].ts;
          last_ts = sa.datagrams[i].ts;
        }
      }
      // Peak rate over 1-second windows within this stream.
      std::sort(filler_ts.begin(), filler_ts.end());
      for (std::size_t i = 0; i < filler_ts.size(); ++i) {
        std::size_t j = i;
        while (j < filler_ts.size() && filler_ts[j] < filler_ts[i] + 1.0)
          ++j;
        peak_rate = std::max(peak_rate, static_cast<double>(j - i));
      }
    }
    if (filler >= 20) {
      Finding f;
      f.id = "filler-messages";
      f.summary = fmt(
          "%.0f fully-proprietary datagrams of >=900 identical bytes "
          "(%.1f%% of fully-proprietary volume, peak %.0f pkt/s) — "
          "bandwidth-probe filler traffic",
          static_cast<double>(filler),
          100.0 * static_cast<double>(filler) /
              static_cast<double>(fully_prop),
          peak_rate);
      f.stats["count"] = static_cast<double>(filler);
      f.stats["share_of_fully_proprietary"] =
          static_cast<double>(filler) / static_cast<double>(fully_prop);
      f.stats["peak_rate_pps"] = peak_rate;
      f.stats["span_s"] = last_ts - first_ts;
      findings.push_back(std::move(f));
    }
  }

  // ---- double-rtp (Zoom §5.3) ---------------------------------------------
  {
    std::uint64_t doubles = 0, rtp_datagrams = 0;
    double first_payload = -1;
    bool same_ts = true;
    for (const auto& sa : streams) {
      for (const auto& anal : sa.analyses) {
        std::vector<const rtcc::dpi::ExtractedMessage*> rtps;
        for (const auto& m : anal.messages)
          if (m.kind == MessageKind::kRtp) rtps.push_back(&m);
        if (!rtps.empty()) ++rtp_datagrams;
        if (rtps.size() >= 2 &&
            rtps[0]->rtp->ssrc == rtps[1]->rtp->ssrc) {
          ++doubles;
          if (first_payload < 0)
            first_payload =
                static_cast<double>(rtps[0]->rtp->payload_len);
          if (rtps[0]->rtp->timestamp != rtps[1]->rtp->timestamp)
            same_ts = false;
        }
      }
    }
    if (doubles > 0) {
      Finding f;
      f.id = "double-rtp";
      f.summary = fmt(
          "%.0f datagrams carry two RTP messages with one SSRC "
          "(%.2f%% of RTP datagrams); leading message payload is "
          "%.0f bytes",
          static_cast<double>(doubles),
          100.0 * static_cast<double>(doubles) /
              static_cast<double>(rtp_datagrams),
          first_payload);
      f.stats["count"] = static_cast<double>(doubles);
      f.stats["share_of_rtp_datagrams"] =
          static_cast<double>(doubles) / static_cast<double>(rtp_datagrams);
      f.stats["first_payload_bytes"] = first_payload;
      f.stats["same_timestamp"] = same_ts ? 1.0 : 0.0;
      findings.push_back(std::move(f));
    }
  }

  // ---- constant-prefix-probes (FaceTime §5.3) -----------------------------
  {
    // Fixed-size fully-proprietary datagrams sharing a >=4-byte prefix.
    std::map<std::pair<std::size_t, std::uint32_t>, std::vector<double>>
        groups;
    for (const auto& sa : streams) {
      for (std::size_t i = 0; i < sa.analyses.size(); ++i) {
        if (sa.analyses[i].klass != DatagramClass::kFullyProprietary)
          continue;
        const BytesView payload = sa.datagrams[i].payload;
        if (payload.size() < 8 || payload.size() > 128) continue;
        if (all_bytes_equal(payload)) continue;  // that's filler
        const std::uint32_t prefix = rtcc::util::load_be32(payload.data());
        groups[{payload.size(), prefix}].push_back(sa.datagrams[i].ts);
      }
    }
    for (auto& [key, ts] : groups) {
      if (ts.size() < 30) continue;
      std::sort(ts.begin(), ts.end());
      const double span = ts.back() - ts.front();
      if (span <= 1.0) continue;
      const double rate = static_cast<double>(ts.size()) / span;
      // Even intervals: coefficient of variation of gaps below 1.5.
      double mean_gap = span / static_cast<double>(ts.size() - 1);
      double var = 0;
      for (std::size_t i = 1; i < ts.size(); ++i) {
        const double g = ts[i] - ts[i - 1] - mean_gap;
        var += g * g;
      }
      var /= static_cast<double>(ts.size() - 1);
      const double cv = std::sqrt(var) / mean_gap;
      Finding f;
      f.id = "constant-prefix-probes";
      f.summary =
          fmt("%.0f fixed-size fully-proprietary datagrams (%.0f bytes) "
              "at a steady %.1f pkt/s — proprietary connectivity checks",
              static_cast<double>(ts.size()),
              static_cast<double>(key.first), rate) +
          " [prefix " + rtcc::util::hex_u32(key.second) + "]";
      f.stats["count"] = static_cast<double>(ts.size());
      f.stats["size_bytes"] = static_cast<double>(key.first);
      f.stats["rate_pps"] = rate;
      f.stats["interval_cv"] = cv;
      findings.push_back(std::move(f));
    }
  }

  // ---- proprietary-header-envelope (Zoom/FaceTime §5.3) -------------------
  {
    // Characterizes the byte envelope in front of embedded standard
    // messages: length range and which leading byte positions are
    // constant (the paper reverse-engineers Zoom's direction byte and
    // media-ID and FaceTime's fixed 0x6000 this way).
    std::uint64_t wrapped = 0, total = 0;
    std::size_t min_len = SIZE_MAX, max_len = 0;
    std::array<std::set<std::uint8_t>, 4> leading;  // values at bytes 0-3
    for (const auto& sa : streams) {
      for (std::size_t i = 0; i < sa.analyses.size(); ++i) {
        ++total;
        const auto& anal = sa.analyses[i];
        if (anal.klass != DatagramClass::kProprietaryHeader) continue;
        ++wrapped;
        min_len = std::min(min_len, anal.proprietary_header_len);
        max_len = std::max(max_len, anal.proprietary_header_len);
        const BytesView payload = sa.datagrams[i].payload;
        for (std::size_t b = 0; b < 4 && b < payload.size(); ++b)
          leading[b].insert(payload[b]);
      }
    }
    if (wrapped >= 50) {
      std::size_t constant_positions = 0;
      for (const auto& values : leading)
        if (values.size() <= 2) ++constant_positions;  // per-direction pairs
      Finding f;
      f.id = "proprietary-header-envelope";
      f.summary = fmt(
          "%.0f datagrams (%.1f%%) prepend a proprietary header of "
          "%.0f", static_cast<double>(wrapped),
          100.0 * static_cast<double>(wrapped) /
              static_cast<double>(total),
          static_cast<double>(min_len)) +
          fmt("-%.0f bytes; %.0f of the first 4 byte positions are "
              "(near-)constant — structured vendor framing",
              static_cast<double>(max_len),
              static_cast<double>(constant_positions));
      f.stats["wrapped"] = static_cast<double>(wrapped);
      f.stats["share"] =
          static_cast<double>(wrapped) / static_cast<double>(total);
      f.stats["min_header_len"] = static_cast<double>(min_len);
      f.stats["max_header_len"] = static_cast<double>(max_len);
      f.stats["constant_leading_positions"] =
          static_cast<double>(constant_positions);
      findings.push_back(std::move(f));
    }
  }

  // ---- rtcp-zero-ssrc (Discord §5.3) --------------------------------------
  {
    std::map<std::uint8_t, std::pair<std::uint64_t, std::uint64_t>> per_type;
    for (const auto& sa : streams) {
      for (const auto& anal : sa.analyses) {
        for (const auto& m : anal.messages) {
          if (m.kind != MessageKind::kRtcp) continue;
          for (const auto& pkt : m.rtcp->packets) {
            auto& [zero, total] = per_type[pkt.packet_type];
            ++total;
            if (pkt.ssrc() == 0u) ++zero;
          }
        }
      }
    }
    for (const auto& [type, counts] : per_type) {
      const auto [zero, total] = counts;
      if (zero == 0 || total < 20) continue;
      const double share = static_cast<double>(zero) /
                           static_cast<double>(total);
      if (share < 0.05) continue;
      Finding f;
      f.id = "rtcp-zero-ssrc";
      f.summary = fmt(
          "sender SSRC is zero in %.1f%% of RTCP type-%.0f messages",
          100.0 * share, static_cast<double>(type));
      f.stats["packet_type"] = static_cast<double>(type);
      f.stats["share"] = share;
      f.stats["count"] = static_cast<double>(zero);
      findings.push_back(std::move(f));
    }
  }

  // ---- rtcp-direction-byte (Discord §5.2.3) --------------------------------
  {
    // Last trailing byte takes exactly one value per direction.
    std::array<std::set<std::uint8_t>, 2> last_bytes;
    std::uint64_t trailed = 0;
    for (const auto& sa : streams) {
      for (std::size_t i = 0; i < sa.analyses.size(); ++i) {
        for (const auto& m : sa.analyses[i].messages) {
          if (m.kind != MessageKind::kRtcp || m.rtcp->trailing.empty())
            continue;
          // SRTCP trailers are not direction flags; skip plausible ones.
          if (m.rtcp->trailing.size() >= 4) continue;
          ++trailed;
          last_bytes[static_cast<std::size_t>(sa.datagrams[i].dir)].insert(
              m.rtcp->trailing.back());
        }
      }
    }
    if (trailed >= 20 && last_bytes[0].size() == 1 &&
        last_bytes[1].size() == 1 &&
        *last_bytes[0].begin() != *last_bytes[1].begin()) {
      Finding f;
      f.id = "rtcp-direction-byte";
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "final trailing byte of %llu RTCP messages perfectly "
                    "encodes packet direction (0x%02X one way, 0x%02X the "
                    "other) — a proprietary direction flag",
                    static_cast<unsigned long long>(trailed),
                    *last_bytes[0].begin(), *last_bytes[1].begin());
      f.summary = buf;
      f.stats["count"] = static_cast<double>(trailed);
      f.stats["value_dir0"] = *last_bytes[0].begin();
      f.stats["value_dir1"] = *last_bytes[1].begin();
      findings.push_back(std::move(f));
    }
  }

  // ---- srtcp-missing-auth-tag (Google Meet §5.2.3) -------------------------
  {
    std::uint64_t srtcp = 0, tagless = 0;
    for (const auto& sa : streams) {
      for (const auto& anal : sa.analyses) {
        for (const auto& m : anal.messages) {
          if (m.kind != MessageKind::kRtcp || m.rtcp->trailing.empty())
            continue;
          auto trailer = rtcc::proto::srtp::parse_trailer(
              BytesView{m.rtcp->trailing});
          if (!trailer || !trailer->encrypted_flag) continue;
          ++srtcp;
          if (trailer->auth_tag.size() <
              rtcc::proto::srtp::kDefaultAuthTagSize)
            ++tagless;
        }
      }
    }
    if (srtcp >= 20 && tagless > 0) {
      Finding f;
      f.id = "srtcp-missing-auth-tag";
      f.summary = fmt(
          "%.1f%% of %.0f SRTCP messages end without the mandatory "
          "authentication tag (RFC 3711 §3.4)",
          100.0 * static_cast<double>(tagless) /
              static_cast<double>(srtcp),
          static_cast<double>(srtcp));
      f.stats["share"] =
          static_cast<double>(tagless) / static_cast<double>(srtcp);
      f.stats["srtcp_messages"] = static_cast<double>(srtcp);
      findings.push_back(std::move(f));
    }
  }

  // ---- repeated-unanswered-stun (FaceTime §5.2.1) --------------------------
  {
    std::uint64_t trains = 0;
    std::uint64_t longest = 0;
    for (const auto& sa : streams) {
      rtcc::compliance::StreamComplianceChecker checker(opts.compliance);
      std::map<rtcc::compliance::TxidKey, std::uint64_t> counts;
      for (std::size_t i = 0; i < sa.analyses.size(); ++i) {
        for (const auto& m : sa.analyses[i].messages) {
          checker.observe(m, sa.datagrams[i].dir, sa.datagrams[i].ts);
          if (m.kind == MessageKind::kStun && m.stun &&
              m.stun->cls() == rtcc::proto::stun::Class::kRequest) {
            ++counts[rtcc::compliance::TxidKey{m.stun->transaction_id}];
          }
        }
      }
      checker.finalize();
      for (const auto& txid : checker.context().repeated_unanswered) {
        ++trains;
        longest = std::max(longest, counts[txid]);
      }
    }
    if (trains > 0) {
      Finding f;
      f.id = "repeated-unanswered-stun";
      f.summary = fmt(
          "%.0f constant-transaction-ID request trains never receive a "
          "response (longest: %.0f retransmissions) — requests "
          "repurposed for something other than binding",
          static_cast<double>(trains), static_cast<double>(longest));
      f.stats["trains"] = static_cast<double>(trains);
      f.stats["longest_train"] = static_cast<double>(longest);
      findings.push_back(std::move(f));
    }
  }

  return findings;
}

std::vector<Finding> detect_findings(const rtcc::emul::EmulatedCall& call,
                                     const AnalysisOptions& opts) {
  return detect_findings(call.trace, rtcc::emul::filter_config_for(call),
                         opts);
}

std::set<std::uint32_t> call_rtp_ssrcs(const rtcc::emul::EmulatedCall& call,
                                       const AnalysisOptions& opts) {
  std::set<std::uint32_t> out;
  const auto table = rtcc::net::group_streams(call.trace);
  const auto filter_report = rtcc::filter::run_pipeline(
      call.trace, table, rtcc::emul::filter_config_for(call));
  for (const auto& sa :
       analyze_rtc_streams(call.trace, table, filter_report, opts.scan)) {
    for (const auto& anal : sa.analyses)
      for (const auto& m : anal.messages)
        if (m.kind == MessageKind::kRtp) out.insert(m.rtp->ssrc);
  }
  return out;
}

std::optional<Finding> detect_ssrc_reuse(
    const std::vector<std::set<std::uint32_t>>& per_call_ssrcs) {
  if (per_call_ssrcs.size() < 2) return std::nullopt;
  // Intersection across all calls; random 32-bit SSRCs essentially
  // never repeat across independent calls.
  std::set<std::uint32_t> common = per_call_ssrcs.front();
  for (const auto& s : per_call_ssrcs) {
    std::set<std::uint32_t> next;
    std::set_intersection(common.begin(), common.end(), s.begin(), s.end(),
                          std::inserter(next, next.begin()));
    common = std::move(next);
  }
  if (common.empty()) return std::nullopt;
  Finding f;
  f.id = "deterministic-ssrc";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%zu RTP SSRC value(s) recur verbatim across %zu "
                "independent calls — SSRCs are assigned "
                "deterministically, not randomly (RFC 3550 §8)",
                common.size(), per_call_ssrcs.size());
  f.summary = buf;
  f.stats["recurring_ssrcs"] = static_cast<double>(common.size());
  f.stats["calls"] = static_cast<double>(per_call_ssrcs.size());
  return f;
}

}  // namespace rtcc::report
