#include "report/corpus.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/thread_pool.hpp"

#ifdef __unix__
#include <sys/resource.h>
#endif

namespace rtcc::report {
namespace {

/// Counting gate bounding live traces. acquire() blocks until a slot
/// is free; the byte counters ride along under the same mutex so the
/// recorded peak is exact, not sampled.
class TraceGate {
 public:
  explicit TraceGate(std::size_t slots) : free_(slots) {}

  void acquire() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return free_ > 0; });
    --free_;
    ++live_;
    peak_live_ = std::max(peak_live_, live_);
  }

  void add_bytes(std::uint64_t n) {
    std::lock_guard lock(mutex_);
    live_bytes_ += n;
    peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  }

  void release(std::uint64_t bytes) {
    {
      std::lock_guard lock(mutex_);
      live_bytes_ -= bytes;
      --live_;
      ++free_;
    }
    cv_.notify_one();
  }

  [[nodiscard]] std::uint64_t peak_bytes() const { return peak_bytes_; }
  [[nodiscard]] std::size_t peak_live() const { return peak_live_; }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t free_;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::uint64_t live_bytes_ = 0;
  std::uint64_t peak_bytes_ = 0;
};

}  // namespace

std::uint64_t peak_rss_bytes() {
#ifdef __linux__
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::uint64_t kib = 0;
    bool found = false;
    while (std::fgets(line, sizeof line, f)) {
      if (std::sscanf(line, "VmHWM: %llu kB",
                      reinterpret_cast<unsigned long long*>(&kib)) == 1) {
        found = true;
        break;
      }
    }
    std::fclose(f);
    if (found) return kib * 1024;
  }
#endif
#ifdef __unix__
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    // ru_maxrss is KiB on Linux, bytes on macOS.
#ifdef __APPLE__
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

CorpusResult run_corpus(const CorpusOptions& opts) {
  const auto& cfg = opts.experiment;

  // Same enumeration as run_experiment: app-major, then network, then
  // repeat — slot i of every result vector belongs to job i, so the
  // merge order (and thus the aggregates) is independent of scheduling.
  struct Job {
    rtcc::emul::AppId app;
    rtcc::emul::NetworkSetup network;
    int repeat;
    rtcc::emul::CallConfig call_cfg;
  };
  std::vector<Job> jobs;
  for (auto app : cfg.apps) {
    for (auto network : cfg.networks) {
      for (int repeat = 0; repeat < cfg.repeats; ++repeat) {
        rtcc::emul::CallConfig call_cfg;
        call_cfg.app = app;
        call_cfg.network = network;
        call_cfg.media_scale = cfg.media_scale;
        call_cfg.call_s = cfg.call_s;
        call_cfg.background = cfg.background;
        call_cfg.seed = cfg.seed;
        call_cfg.call_index = repeat;
        jobs.push_back(Job{app, network, repeat, call_cfg});
      }
    }
  }

  const bool serial = cfg.exec == ExecMode::kSerial || jobs.size() <= 1;
  auto& pool = rtcc::util::ThreadPool::shared();
  std::size_t slots = opts.max_live_traces;
  if (slots == 0) slots = serial ? 1 : std::size_t{2} * pool.worker_count();
  TraceGate gate(slots);

  std::vector<CallAnalysis> analyses(jobs.size());
  std::vector<CorpusCallStats> stats(jobs.size());

  const auto started = std::chrono::steady_clock::now();
  const auto run_one = [&](std::size_t i) {
    const Job& job = jobs[i];
    gate.acquire();
    std::uint64_t bytes = 0;
    {
      // Trace lifetime is this block: generated, counted, analyzed,
      // destroyed — never parked in a corpus-wide container.
      const auto call = rtcc::emul::emulate_call(job.call_cfg);
      bytes = call.trace.total_bytes();
      gate.add_bytes(bytes);
      analyses[i] = analyze_call(call, cfg.analysis);
      stats[i] = CorpusCallStats{job.app, job.network, job.repeat, bytes,
                                 call.trace.size()};
    }
    gate.release(bytes);
  };

  if (serial) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
  } else {
    pool.parallel_for(jobs.size(), run_one);
  }

  CorpusResult out;
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             started)
                   .count();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    merge(out.per_app[jobs[i].app], analyses[i]);
    out.total_trace_bytes += stats[i].trace_bytes;
  }
  out.calls = std::move(stats);
  out.peak_live_trace_bytes = gate.peak_bytes();
  out.peak_live_traces = gate.peak_live();
  out.peak_rss_bytes = peak_rss_bytes();
  return out;
}

CorpusOptions corpus_options_from_env() {
  CorpusOptions opts;
  opts.experiment = experiment_config_from_env();
  if (std::getenv("RTCC_REPEATS") == nullptr) opts.experiment.repeats = 5;
  if (const char* live = std::getenv("RTCC_MAX_LIVE"))
    opts.max_live_traces =
        static_cast<std::size_t>(std::max(1, std::atoi(live)));
  return opts;
}

}  // namespace rtcc::report
