#include "report/corpus.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <mutex>

#include "emul/scenario.hpp"
#include "report/shard.hpp"
#include "util/env_knob.hpp"
#include "util/thread_pool.hpp"

#ifdef __unix__
#include <sys/resource.h>
#endif

namespace rtcc::report {
namespace {

/// Counting gate bounding live traces. acquire() blocks until a slot
/// is free; the byte counters ride along under the same mutex so the
/// recorded peak is exact, not sampled.
class TraceGate {
 public:
  explicit TraceGate(std::size_t slots) : free_(slots) {}

  void acquire() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return free_ > 0; });
    --free_;
    ++live_;
    peak_live_ = std::max(peak_live_, live_);
  }

  void add_bytes(std::uint64_t n) {
    std::lock_guard lock(mutex_);
    live_bytes_ += n;
    peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  }

  void release(std::uint64_t bytes) {
    {
      std::lock_guard lock(mutex_);
      live_bytes_ -= bytes;
      --live_;
      ++free_;
    }
    cv_.notify_one();
  }

  [[nodiscard]] std::uint64_t peak_bytes() const { return peak_bytes_; }
  [[nodiscard]] std::size_t peak_live() const { return peak_live_; }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t free_;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::uint64_t live_bytes_ = 0;
  std::uint64_t peak_bytes_ = 0;
};

}  // namespace

std::uint64_t peak_rss_bytes() {
#ifdef __linux__
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::uint64_t kib = 0;
    bool found = false;
    while (std::fgets(line, sizeof line, f)) {
      if (std::sscanf(line, "VmHWM: %llu kB",
                      reinterpret_cast<unsigned long long*>(&kib)) == 1) {
        found = true;
        break;
      }
    }
    std::fclose(f);
    if (found) return kib * 1024;
  }
#endif
#ifdef __unix__
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    // ru_maxrss is KiB on Linux, bytes on macOS.
#ifdef __APPLE__
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

CorpusResult run_corpus(const CorpusOptions& opts) {
  const auto& cfg = opts.experiment;

  // Same enumeration as run_experiment: app-major, then network, then
  // repeat — slot i of every result vector belongs to job i, so the
  // merge order (and thus the aggregates) is independent of scheduling.
  struct Job {
    rtcc::emul::AppId app;
    rtcc::emul::NetworkSetup network;
    int repeat;
    rtcc::emul::CallConfig call_cfg;
  };
  std::vector<Job> jobs;
  for (auto app : cfg.apps) {
    for (auto network : cfg.networks) {
      for (int repeat = 0; repeat < cfg.repeats; ++repeat) {
        rtcc::emul::CallConfig call_cfg;
        call_cfg.app = app;
        call_cfg.network = network;
        call_cfg.media_scale = cfg.media_scale;
        call_cfg.call_s = cfg.call_s;
        call_cfg.background = cfg.background;
        call_cfg.seed = cfg.seed;
        call_cfg.call_index = repeat;
        jobs.push_back(Job{app, network, repeat, call_cfg});
      }
    }
  }

  const bool serial = cfg.exec == ExecMode::kSerial || jobs.size() <= 1;
  auto& pool = rtcc::util::ThreadPool::shared();
  std::size_t slots = opts.max_live_traces;
  if (slots == 0) slots = serial ? 1 : std::size_t{2} * pool.worker_count();
  TraceGate gate(slots);

  const std::size_t nshards =
      cfg.analysis.parallel_streams
          ? (cfg.analysis.shards != 0 ? cfg.analysis.shards : shard_count())
          : 1;

  std::vector<CallAnalysis> analyses(jobs.size());
  std::vector<CorpusCallStats> stats(jobs.size());

  const auto started = std::chrono::steady_clock::now();

  if (!serial && nshards > 1) {
    // Flow-sharded corpus (DESIGN.md §7): one persistent ShardedPipeline
    // spans the whole run. Generation overlaps analysis through a
    // bounded std::async window; this thread is the single producer —
    // it groups + filters each call (the only stages that need the
    // whole trace) and routes every RTC UDP stream to its shard. A
    // call's trace and stream table live in a lease that the last
    // shard to finish one of its streams releases, so the live-trace
    // gate bounds memory exactly as on the pooled path.
    struct CallLease {
      std::shared_ptr<const rtcc::emul::EmulatedCall> call;
      rtcc::net::StreamTable table;
      rtcc::filter::FilterReport report;
      TraceGate* gate = nullptr;
      std::uint64_t bytes = 0;
      ~CallLease() { gate->release(bytes); }
    };
    struct ShardedJobOut {
      CallAnalysis base;
      std::vector<CallAnalysis> partials;  // sized once; shards write in
      std::vector<std::size_t> routed;     // shard index per partial
    };
    struct Generated {
      std::shared_ptr<const rtcc::emul::EmulatedCall> call;
      std::uint64_t bytes = 0;
    };

    ShardedPipeline::Options popts;
    popts.shards = nshards;
    popts.scan = cfg.analysis.scan;
    popts.compliance = cfg.analysis.compliance;
    ShardedPipeline pipe(popts);

    std::vector<ShardedJobOut> outs(jobs.size());
    std::deque<std::future<Generated>> window;
    std::size_t next = 0;  // next job to pump out of the window

    const auto pump_one = [&] {
      const std::size_t i = next++;
      Generated gen = window.front().get();
      window.pop_front();
      const Job& job = jobs[i];
      stats[i] = CorpusCallStats{job.app, job.network, job.repeat, gen.bytes,
                                 gen.call->trace.size()};
      auto pre = detail::analyze_trace_prelude(
          gen.call->trace, rtcc::emul::filter_config_for(*gen.call));
      ShardedJobOut& out = outs[i];
      out.base = std::move(pre.base);
      auto lease = std::make_shared<CallLease>();
      lease->call = std::move(gen.call);
      lease->table = std::move(pre.table);
      lease->report = std::move(pre.report);
      lease->gate = &gate;
      lease->bytes = gen.bytes;
      const auto& rtc_streams = lease->report.rtc_udp_streams;
      out.partials.resize(rtc_streams.size());
      out.routed.resize(rtc_streams.size());
      for (std::size_t si = 0; si < rtc_streams.size(); ++si)
        out.routed[si] = pipe.submit_stream(
            lease->call->trace, lease->table,
            lease->table.streams[rtc_streams[si]], &out.partials[si], lease);
      // Dropping our lease ref here: the gate slot now frees when the
      // last shard finishes one of this call's streams (immediately,
      // for a call with no RTC UDP streams).
    };

    for (std::size_t i = 0; i < jobs.size(); ++i) {
      // Pump before acquiring: the window's pending generations hold
      // gate slots, so draining first keeps acquire() free to wait on
      // shard progress alone — no producer/window deadlock.
      while (window.size() >= slots) pump_one();
      gate.acquire();
      window.push_back(std::async(
          std::launch::async, [&gate, call_cfg = jobs[i].call_cfg] {
            Generated gen;
            gen.call = std::make_shared<const rtcc::emul::EmulatedCall>(
                rtcc::emul::emulate_call(call_cfg));
            gen.bytes = gen.call->trace.total_bytes();
            gate.add_bytes(gen.bytes);
            return gen;
          }));
    }
    while (next < jobs.size()) pump_one();
    pipe.finish();

    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ShardedJobOut& out = outs[i];
      analyses[i] = std::move(out.base);
      // Fixed shard-order merge, same as the sharded analyze_trace.
      for (std::size_t s = 0; s < pipe.shards(); ++s)
        for (std::size_t si = 0; si < out.partials.size(); ++si)
          if (out.routed[si] == s) merge(analyses[i], out.partials[si]);
    }
  } else {
    const auto run_one = [&](std::size_t i) {
      const Job& job = jobs[i];
      gate.acquire();
      std::uint64_t bytes = 0;
      {
        // Trace lifetime is this block: generated, counted, analyzed,
        // destroyed — never parked in a corpus-wide container.
        const auto call = rtcc::emul::emulate_call(job.call_cfg);
        bytes = call.trace.total_bytes();
        gate.add_bytes(bytes);
        // On the pooled path per-call analysis runs unsharded: the
        // pool already keeps every core busy with whole calls, and
        // nesting a pipeline per pool worker would oversubscribe. The
        // serial path (one job, or kSerial) keeps per-trace sharding.
        auto analysis_opts = cfg.analysis;
        if (!serial) analysis_opts.shards = 1;
        analyses[i] = analyze_call(call, analysis_opts);
        stats[i] = CorpusCallStats{job.app, job.network, job.repeat, bytes,
                                   call.trace.size()};
      }
      gate.release(bytes);
    };

    if (serial) {
      for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
    } else {
      pool.parallel_for(jobs.size(), run_one);
    }
  }

  // ---- Scenario-catalogue phase: the compliance-matrix rows beyond
  // the app matrix. Runs under the same live-trace gate; each analysis
  // is unsharded on the pooled path for the same oversubscription
  // reason as run_one, and results merge scenario-major below, so
  // aggregates are independent of scheduling.
  const auto& specs = rtcc::emul::scenario_catalogue();
  const std::size_t sreps =
      static_cast<std::size_t>(std::max(0, opts.scenario_repeats));
  std::vector<CallAnalysis> s_analyses(specs.size() * sreps);
  std::vector<CorpusScenarioStats> s_stats(specs.size() * sreps);
  if (sreps > 0) {
    const auto run_scenario = [&](std::size_t j) {
      const std::size_t si = j / sreps;
      const int repeat = static_cast<int>(j % sreps);
      gate.acquire();
      std::uint64_t bytes = 0;
      {
        rtcc::emul::ScenarioOptions sopts;
        sopts.media_scale = cfg.media_scale;
        sopts.call_s = cfg.call_s;
        sopts.seed = cfg.seed + 9000 + static_cast<std::uint64_t>(repeat);
        auto scen = specs[si].build(sopts);
        bytes = scen.trace.total_bytes();
        gate.add_bytes(bytes);
        auto analysis_opts = cfg.analysis;
        if (!serial) analysis_opts.shards = 1;
        s_analyses[j] = analyze_trace(scen.trace, scen.cfg, analysis_opts);
        s_stats[j] = CorpusScenarioStats{specs[si].name, repeat, bytes,
                                         scen.trace.size()};
      }
      gate.release(bytes);
    };
    if (serial) {
      for (std::size_t j = 0; j < s_analyses.size(); ++j) run_scenario(j);
    } else {
      pool.parallel_for(s_analyses.size(), run_scenario);
    }
  }

  CorpusResult out;
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             started)
                   .count();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    merge(out.per_app[jobs[i].app], analyses[i]);
    out.total_trace_bytes += stats[i].trace_bytes;
  }
  out.calls = std::move(stats);
  for (std::size_t j = 0; j < s_analyses.size(); ++j) {
    merge(out.per_scenario[s_stats[j].name], s_analyses[j]);
    out.total_trace_bytes += s_stats[j].trace_bytes;
  }
  out.scenario_calls = std::move(s_stats);
  out.peak_live_trace_bytes = gate.peak_bytes();
  out.peak_live_traces = gate.peak_live();
  out.peak_rss_bytes = peak_rss_bytes();
  return out;
}

CorpusOptions corpus_options_from_env() {
  CorpusOptions opts;
  opts.experiment = experiment_config_from_env();
  if (std::getenv("RTCC_REPEATS") == nullptr) opts.experiment.repeats = 5;
  opts.max_live_traces = static_cast<std::size_t>(rtcc::util::env_knob_ll(
      "RTCC_MAX_LIVE", static_cast<long long>(opts.max_live_traces), 1,
      1000000000));
  opts.scenario_repeats = static_cast<int>(
      rtcc::util::env_knob_ll("RTCC_SCENARIOS", 0, 0, 1000000));
  return opts;
}

}  // namespace rtcc::report
