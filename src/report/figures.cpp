#include "report/figures.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace rtcc::report {

using rtcc::proto::Protocol;
using rtcc::util::format_pct;
using rtcc::util::pad_right;

std::string bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto filled = static_cast<std::size_t>(fraction * width + 0.5);
  std::string out(filled, '#');
  out.append(width - filled, '.');
  return out;
}

std::string render_figure3(const AppResults& results) {
  std::ostringstream os;
  os << "Figure 3: breakdown of datagrams — standard vs proprietary\n";
  for (const auto& [app, a] : results) {
    const double total = static_cast<double>(
        a.dgram_standard + a.dgram_prop_header + a.dgram_fully_prop);
    if (total == 0) continue;
    const double std_f = static_cast<double>(a.dgram_standard) / total;
    const double hdr_f = static_cast<double>(a.dgram_prop_header) / total;
    const double full_f = static_cast<double>(a.dgram_fully_prop) / total;
    os << pad_right(to_string(app), 13) << "standard " << bar(std_f, 30)
       << " " << format_pct(std_f, 1) << "\n";
    os << pad_right("", 13) << "prop-hdr " << bar(hdr_f, 30) << " "
       << format_pct(hdr_f, 1) << "\n";
    os << pad_right("", 13) << "fully-pr " << bar(full_f, 30) << " "
       << format_pct(full_f, 1) << "\n";
  }
  return std::move(os).str();
}

namespace {

struct Ratio {
  std::uint64_t num = 0;
  std::uint64_t den = 0;
  [[nodiscard]] double value() const {
    return den ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
  }
};

void render_ratios(std::ostringstream& os,
                   const std::vector<std::pair<std::string, Ratio>>& rows) {
  for (const auto& [name, ratio] : rows) {
    if (ratio.den == 0) continue;
    os << pad_right(name, 13) << bar(ratio.value()) << " "
       << format_pct(ratio.value(), 1) << "\n";
  }
}

}  // namespace

std::string render_figure4(const AppResults& results) {
  std::ostringstream os;
  os << "Figure 4: compliance ratio by traffic volume\n";
  os << "-- per application --\n";
  std::vector<std::pair<std::string, Ratio>> apps;
  std::map<Protocol, Ratio> by_proto;
  for (const auto& [app, a] : results) {
    Ratio r{a.total_compliant(), a.total_messages()};
    apps.emplace_back(to_string(app), r);
    for (const auto& [proto, stats] : a.protocols) {
      by_proto[proto].num += stats.compliant;
      by_proto[proto].den += stats.messages;
    }
  }
  render_ratios(os, apps);
  os << "-- per protocol --\n";
  std::vector<std::pair<std::string, Ratio>> protos;
  for (const auto& [proto, r] : by_proto)
    protos.emplace_back(to_string(proto), r);
  render_ratios(os, protos);
  return std::move(os).str();
}

std::string render_figure5(const AppResults& results) {
  std::ostringstream os;
  os << "Figure 5: compliance ratio by message type\n";
  os << "-- per application --\n";
  std::vector<std::pair<std::string, Ratio>> apps;
  std::map<Protocol, Ratio> by_proto;
  for (const auto& [app, a] : results) {
    Ratio r;
    for (const auto& [proto, stats] : a.protocols) {
      r.num += stats.compliant_types();
      r.den += stats.total_types();
      by_proto[proto].num += stats.compliant_types();
      by_proto[proto].den += stats.total_types();
    }
    apps.emplace_back(to_string(app), r);
  }
  render_ratios(os, apps);
  os << "-- per protocol --\n";
  std::vector<std::pair<std::string, Ratio>> protos;
  for (const auto& [proto, r] : by_proto)
    protos.emplace_back(to_string(proto), r);
  render_ratios(os, protos);
  return std::move(os).str();
}

}  // namespace rtcc::report
