#include "report/tables.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace rtcc::report {

using rtcc::emul::AppId;
using rtcc::proto::Protocol;
using rtcc::util::format_pct;
using rtcc::util::human_count;
using rtcc::util::human_megabytes;
using rtcc::util::pad_left;
using rtcc::util::pad_right;

namespace {

std::string strms_dgrams(std::uint64_t streams, std::uint64_t packets) {
  return std::to_string(streams) + " | " + human_count(packets);
}

const ProtocolStats* find_protocol(const CallAnalysis& a, Protocol p) {
  auto it = a.protocols.find(p);
  return it == a.protocols.end() ? nullptr : &it->second;
}

/// Sort type labels numerically where possible ("96" < "103"), keeping
/// hex labels and names in lexical order after numbers.
std::vector<std::string> sorted_labels(
    const std::map<std::string, TypeStats>& types, bool compliant) {
  std::vector<std::string> out;
  for (const auto& [label, stats] : types)
    if (stats.type_compliant() == compliant) out.push_back(label);
  std::sort(out.begin(), out.end(), [](const std::string& a,
                                       const std::string& b) {
    const bool na = !a.empty() && (std::isdigit(a[0]) != 0);
    const bool nb = !b.empty() && (std::isdigit(b[0]) != 0);
    if (na && nb) return std::stol(a) < std::stol(b);
    if (na != nb) return na;
    return a < b;
  });
  return out;
}

std::string join_labels(const std::vector<std::string>& labels) {
  if (labels.empty()) return "-";
  return rtcc::util::join(labels, ", ");
}

std::string type_table(const AppResults& results, Protocol protocol,
                       const std::string& title) {
  std::ostringstream os;
  os << title << "\n";
  os << pad_right("Application", 13) << "| Compliant Types | Non-compliant "
     << "Types\n";
  os << std::string(78, '-') << "\n";
  for (const auto& [app, analysis] : results) {
    const auto* stats = find_protocol(analysis, protocol);
    os << pad_right(to_string(app), 13) << "| ";
    if (!stats || stats->types.empty()) {
      os << "N/A | N/A\n";
      continue;
    }
    os << join_labels(sorted_labels(stats->types, true)) << " | "
       << join_labels(sorted_labels(stats->types, false)) << "\n";
  }
  return std::move(os).str();
}

}  // namespace

std::string render_table1(const AppResults& results) {
  std::ostringstream os;
  os << "Table 1: traffic traces and filtering progress (streams | "
        "packets)\n";
  os << pad_right("Application", 13) << pad_right("Volume", 12)
     << pad_right("Raw UDP", 16) << pad_right("Raw TCP", 16)
     << pad_right("S1 UDP", 14) << pad_right("S2 UDP", 14)
     << pad_right("S1 TCP", 14) << pad_right("S2 TCP", 14)
     << pad_right("RTC UDP", 16) << "RTC TCP\n";
  os << std::string(132, '-') << "\n";
  for (const auto& [app, a] : results) {
    os << pad_right(to_string(app), 13)
       << pad_right(human_megabytes(a.raw_bytes), 12)
       << pad_right(strms_dgrams(a.raw_udp_streams, a.raw_udp_datagrams), 16)
       << pad_right(strms_dgrams(a.raw_tcp_streams, a.raw_tcp_segments), 16)
       << pad_right(strms_dgrams(a.stage1_udp.streams, a.stage1_udp.packets),
                    14)
       << pad_right(strms_dgrams(a.stage2_udp.streams, a.stage2_udp.packets),
                    14)
       << pad_right(strms_dgrams(a.stage1_tcp.streams, a.stage1_tcp.packets),
                    14)
       << pad_right(strms_dgrams(a.stage2_tcp.streams, a.stage2_tcp.packets),
                    14)
       << pad_right(strms_dgrams(a.rtc_udp.streams, a.rtc_udp.packets), 16)
       << strms_dgrams(a.rtc_tcp.streams, a.rtc_tcp.packets) << "\n";
  }
  return std::move(os).str();
}

std::string render_table2(const AppResults& results) {
  std::ostringstream os;
  os << "Table 2: message distribution by protocol and application\n";
  os << pad_right("Application", 13) << pad_left("STUN/TURN", 11)
     << pad_left("RTP", 9) << pad_left("RTCP", 9) << pad_left("QUIC", 9)
     << pad_left("Fully Proprietary", 19) << "\n";
  os << std::string(70, '-') << "\n";
  for (const auto& [app, a] : results) {
    const double total = static_cast<double>(a.distribution_total());
    auto cell = [&](Protocol p) -> std::string {
      const auto* stats = find_protocol(a, p);
      if (!stats || stats->messages == 0) return "N/A";
      return format_pct(static_cast<double>(stats->messages) / total, 1);
    };
    os << pad_right(to_string(app), 13)
       << pad_left(cell(Protocol::kStunTurn), 11)
       << pad_left(cell(Protocol::kRtp), 9)
       << pad_left(cell(Protocol::kRtcp), 9)
       << pad_left(cell(Protocol::kQuic), 9)
       << pad_left(format_pct(
                       static_cast<double>(a.dgram_fully_prop) / total, 1),
                   19)
       << "\n";
  }
  return std::move(os).str();
}

std::string render_table3(const AppResults& results) {
  std::ostringstream os;
  os << "Table 3: protocol compliance ratio by message type\n";
  os << pad_right("Application", 13) << pad_left("STUN/TURN", 11)
     << pad_left("RTP", 9) << pad_left("RTCP", 9) << pad_left("QUIC", 9)
     << pad_left("All Protocols", 15) << "\n";
  os << std::string(66, '-') << "\n";

  std::map<Protocol, std::pair<std::size_t, std::size_t>> bottom;
  for (const auto& [app, a] : results) {
    std::size_t all_compliant = 0, all_total = 0;
    auto cell = [&](Protocol p) -> std::string {
      const auto* stats = find_protocol(a, p);
      if (!stats || stats->types.empty()) return "N/A";
      const std::size_t c = stats->compliant_types();
      const std::size_t t = stats->total_types();
      all_compliant += c;
      all_total += t;
      bottom[p].first += c;
      bottom[p].second += t;
      return std::to_string(c) + "/" + std::to_string(t);
    };
    const std::string stun = cell(Protocol::kStunTurn);
    const std::string rtp = cell(Protocol::kRtp);
    const std::string rtcp = cell(Protocol::kRtcp);
    const std::string quic = cell(Protocol::kQuic);
    os << pad_right(to_string(app), 13) << pad_left(stun, 11)
       << pad_left(rtp, 9) << pad_left(rtcp, 9) << pad_left(quic, 9)
       << pad_left(std::to_string(all_compliant) + "/" +
                       std::to_string(all_total),
                   15)
       << "\n";
  }
  os << pad_right("All Apps", 13);
  for (Protocol p : {Protocol::kStunTurn, Protocol::kRtp, Protocol::kRtcp,
                     Protocol::kQuic}) {
    const auto [c, t] = bottom[p];
    os << pad_left(t ? std::to_string(c) + "/" + std::to_string(t)
                     : std::string("N/A"),
                   p == Protocol::kStunTurn ? 11 : 9);
  }
  os << "\n";
  return std::move(os).str();
}

std::string render_table4(const AppResults& results) {
  return type_table(results, Protocol::kStunTurn,
                    "Table 4: observed STUN/TURN message types");
}

std::string render_table5(const AppResults& results) {
  return type_table(results, Protocol::kRtp,
                    "Table 5: observed RTP message (payload) types");
}

std::string render_table6(const AppResults& results) {
  return type_table(results, Protocol::kRtcp,
                    "Table 6: observed RTCP message types");
}

}  // namespace rtcc::report
