// End-to-end analysis orchestration and the paper's two compliance
// metrics (§5.1): volume-based (per message) and message-type-based
// (a type is compliant only if every observed instance is).
#pragma once

#include <map>
#include <string>

#include "compliance/checker.hpp"
#include "dpi/scanning_dpi.hpp"
#include "emul/app_model.hpp"
#include "filter/pipeline.hpp"
#include "net/packet_batch.hpp"
#include "net/stream_table.hpp"

namespace rtcc::report {

struct AnalysisOptions {
  rtcc::dpi::ScanOptions scan;
  rtcc::compliance::ComplianceConfig compliance;
  /// Analyze a call's RTC UDP streams concurrently on the shared
  /// thread pool. Per-stream partial results merge in stream order, so
  /// output is identical to the serial loop. false also disables flow
  /// sharding (RTCC_PARALLEL=0 means fully serial).
  bool parallel_streams = true;
  /// Flow-shard worker count for this analysis. 0 defers to the global
  /// RTCC_SHARDS knob (report/shard.hpp); 1 forces the unsharded path;
  /// N > 1 routes streams to N shard workers by symmetric 5-tuple hash.
  /// Output is bit-identical for every value (DESIGN.md §7).
  std::size_t shards = 0;
};

/// Stats for one (protocol, message-type-label) cell of Tables 3-6.
struct TypeStats {
  std::uint64_t total = 0;
  std::uint64_t compliant = 0;
  /// First-failing-criterion histogram ("3:attribute-type-validity"→n).
  std::map<std::string, std::uint64_t> criterion_failures;

  [[nodiscard]] bool type_compliant() const { return compliant == total; }
};

struct ProtocolStats {
  std::uint64_t messages = 0;
  std::uint64_t compliant = 0;
  std::map<std::string, TypeStats> types;

  [[nodiscard]] std::size_t compliant_types() const;
  [[nodiscard]] std::size_t total_types() const { return types.size(); }
};

/// Per-shard work accounting for the flow-sharded pipeline
/// (report/shard.hpp). Diagnostic, like PipelineCounters: the split
/// depends on RTCC_SHARDS, so equivalence signatures and the parity
/// oracles exclude it (the report JSON surfaces it under "shards").
struct ShardStat {
  std::uint64_t streams = 0;        // streams routed to this shard
  std::uint64_t handoff_vectors = 0;  // ring items received
  std::uint64_t datagrams = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t messages = 0;  // DPI messages extracted on this shard

  void merge(const ShardStat& from) {
    streams += from.streams;
    handoff_vectors += from.handoff_vectors;
    datagrams += from.datagrams;
    payload_bytes += from.payload_bytes;
    messages += from.messages;
  }
};

/// Flow-table accounting from the streaming engine (stream/engine.hpp).
/// Diagnostic, like ShardStat: populated only on the RTCC_STREAM path,
/// so equivalence signatures and the stream-parity oracle exclude it
/// (the report JSON surfaces it under "flows"). Peaks take max() on
/// merge — summing concurrent-flow peaks across calls would fabricate
/// a moment that never existed.
struct FlowStats {
  std::uint64_t flows_seen = 0;      // flow records created
  std::uint64_t flows_live = 0;      // peak concurrently-live flows
  std::uint64_t evictions = 0;       // idle + LRU retirements before EOF
  std::uint64_t finalized = 0;       // per-flow analyses run
  std::uint64_t flows_rekeyed = 0;   // packets re-opening an evicted key
  std::uint64_t live_peak_bytes = 0; // peak buffered payload + reader bytes

  [[nodiscard]] bool any() const {
    return (flows_seen | flows_live | evictions | finalized | flows_rekeyed |
            live_peak_bytes) != 0;
  }

  void merge(const FlowStats& from) {
    flows_seen += from.flows_seen;
    flows_live = flows_live > from.flows_live ? flows_live : from.flows_live;
    evictions += from.evictions;
    finalized += from.finalized;
    flows_rekeyed += from.flows_rekeyed;
    live_peak_bytes = live_peak_bytes > from.live_peak_bytes
                          ? live_peak_bytes
                          : from.live_peak_bytes;
  }
};

/// Everything one call (or a merged experiment) contributes to the
/// paper's tables and figures.
struct CallAnalysis {
  // --- Table 1 ---
  std::uint64_t raw_bytes = 0;
  std::uint64_t raw_udp_streams = 0, raw_udp_datagrams = 0;
  std::uint64_t raw_tcp_streams = 0, raw_tcp_segments = 0;
  rtcc::filter::StageStats stage1_udp, stage2_udp, stage1_tcp, stage2_tcp;
  rtcc::filter::StageStats rtc_udp, rtc_tcp;

  // --- Figure 3 (RTC UDP datagram classes) ---
  std::uint64_t dgram_standard = 0;
  std::uint64_t dgram_prop_header = 0;
  std::uint64_t dgram_fully_prop = 0;

  // --- Tables 2-6 / Figures 4-5 ---
  std::map<rtcc::proto::Protocol, ProtocolStats> protocols;

  // --- DPI ablation data ---
  std::uint64_t dpi_candidates = 0;
  std::uint64_t dpi_messages = 0;

  // --- Vector-pipeline diagnostics (DESIGN.md §6) ---
  // Per-node vectors/packets/suspended tallies from the batched
  // decode → demux → prefilter → scan → compliance graph. Diagnostic
  // only: vectors depends on RTCC_BATCH, so equivalence signatures
  // exclude these (the report JSON surfaces them under "nodes").
  rtcc::dpi::PipelineCounters nodes;

  // --- Flow-sharding diagnostics (DESIGN.md §7) ---
  // One row per shard worker, filled only by the sharded path. Each
  // per-stream partial carries a full-width vector with only its own
  // shard's row populated, so merge() aggregates per-shard totals at
  // every level. Empty on the unsharded path.
  std::vector<ShardStat> shards;

  // --- Streaming-engine diagnostics (DESIGN.md §6c) ---
  // Flow-table counters from the one-pass engine; all-zero on the
  // batch path. Knob-dependent (RTCC_STREAM + eviction budgets), so
  // signatures exclude it like `nodes` and `shards`.
  FlowStats flows;

  // --- Ingestion diagnostics (all-zero for synthetic traces) ---
  rtcc::net::IngestStats ingest;

  [[nodiscard]] std::uint64_t total_messages() const;
  [[nodiscard]] std::uint64_t total_compliant() const;
  /// Units for Table 2: messages plus fully-proprietary datagrams.
  [[nodiscard]] std::uint64_t distribution_total() const;
};

/// Full pipeline on one emulated call: stream grouping → two-stage
/// filter → scanning DPI per RTC UDP stream → five-criterion checker.
[[nodiscard]] CallAnalysis analyze_call(const rtcc::emul::EmulatedCall& call,
                                        const AnalysisOptions& opts = {});

/// Same pipeline but on an arbitrary trace + externally supplied filter
/// config (for analyzing pcaps from disk).
///
/// When `per_stream` is non-null it receives one partial CallAnalysis
/// per surviving RTC UDP stream, in stream-table order — the per-stream
/// datagram classes and per-message compliance verdicts before any
/// merging. The metamorphic oracles (testkit::meta) compare these
/// stream-by-stream across semantics-preserving trace rewrites, which
/// is strictly stronger than comparing the merged aggregate.
[[nodiscard]] CallAnalysis analyze_trace(
    const rtcc::net::Trace& trace, const rtcc::filter::FilterConfig& fcfg,
    const AnalysisOptions& opts = {},
    std::vector<CallAnalysis>* per_stream = nullptr);

void merge(CallAnalysis& into, const CallAnalysis& from);

/// How run_experiment dispatches the per-call tasks. All three produce
/// bit-identical results (fixed app-major merge order); they differ
/// only in wall-clock. kWave is kept as the ablation baseline for the
/// pool benchmarks.
enum class ExecMode : std::uint8_t {
  kSerial,  // one call at a time on the calling thread
  kWave,    // core-count-sized std::async waves with a barrier per wave
  kPooled,  // persistent work-stealing pool (util/thread_pool.hpp)
};

[[nodiscard]] std::string to_string(ExecMode m);

/// The paper's experiment matrix: apps × network configs × repeats.
struct ExperimentConfig {
  std::vector<rtcc::emul::AppId> apps = rtcc::emul::all_apps();
  std::vector<rtcc::emul::NetworkSetup> networks = rtcc::emul::all_networks();
  int repeats = 2;
  double media_scale = 0.02;
  double call_s = 300.0;
  bool background = true;
  std::uint64_t seed = 42;
  /// Emulate+analyze calls concurrently (one task per call). Results
  /// are merged in a fixed order, so every mode produces identical
  /// aggregates.
  ExecMode exec = ExecMode::kPooled;
  AnalysisOptions analysis;
};

[[nodiscard]] std::map<rtcc::emul::AppId, CallAnalysis> run_experiment(
    const ExperimentConfig& cfg);

/// Reads the RTCC_* env vars (RTCC_SCALE, RTCC_REPEATS, RTCC_SEED,
/// RTCC_PARALLEL; see EXPERIMENTS.md) so benches can be sped up or made
/// more faithful without recompiling.
[[nodiscard]] ExperimentConfig experiment_config_from_env();

namespace detail {

/// The single-threaded front of analyze_trace: grouping + two-stage
/// filter, which must see the whole trace (stage 2 draws cross-stream
/// evidence from removed streams), before the per-stream hot path
/// fans out. Shared by the pooled path and the sharded corpus producer.
struct TracePrelude {
  CallAnalysis base;               // stage stats + ingest, no stream work
  rtcc::net::StreamTable table;    // owns reassembled payload buffers
  rtcc::filter::FilterReport report;
};

[[nodiscard]] TracePrelude analyze_trace_prelude(
    const rtcc::net::Trace& trace, const rtcc::filter::FilterConfig& fcfg);

/// Decode node over one batch-sized chunk of a stream: resolves packet
/// descriptors [base, end) into the SoA batch and books the decode
/// counters into `part`. Identical code on the pooled and sharded
/// paths, so node counters are shard-invariant.
void decode_stream_chunk(const rtcc::net::Trace& trace,
                         const rtcc::net::StreamTable& table,
                         const rtcc::net::Stream& stream, std::size_t base,
                         std::size_t end, rtcc::net::PacketBatch& batch,
                         CallAnalysis& part);

/// DPI + compliance over one fully-assembled stream batch (the stream-
/// stateful core: SSRC continuity, support tables, and the two-phase
/// checker all need the whole stream). Fills `part` in place.
void analyze_stream_batch(const rtcc::dpi::ScanningDpi& dpi,
                          const rtcc::compliance::ComplianceConfig& ccfg,
                          const rtcc::net::PacketBatch& batch,
                          CallAnalysis& part);

}  // namespace detail

}  // namespace rtcc::report
