// JSON export of analysis results and findings — the machine-readable
// companion to the ASCII tables, for downstream tooling (the paper
// releases its dataset + framework; this is the interchange surface).
#pragma once

#include "report/findings.hpp"
#include "report/metrics.hpp"
#include "report/tables.hpp"

namespace rtcc::report {

/// One CallAnalysis as a JSON object: filtering stats, datagram
/// classes, and per-protocol / per-type compliance with criterion
/// failure histograms.
[[nodiscard]] std::string to_json(const CallAnalysis& analysis);

/// A full experiment (app → analysis) as a JSON object keyed by app.
[[nodiscard]] std::string to_json(const AppResults& results);

/// Findings as a JSON array.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

}  // namespace rtcc::report
