// Behavioural-findings detectors — the paper's §5.2.2/§5.3
// "application-specific network behaviors" made systematic. Each
// detector is app-agnostic: it scans any analyzed call and reports
// when a pattern is present, exactly as a passive measurement tool
// must (the paper did this by manual inspection; we encode the
// signatures).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "report/metrics.hpp"

namespace rtcc::report {

struct Finding {
  /// Stable identifier, e.g. "filler-messages", "double-rtp".
  std::string id;
  /// One-sentence human-readable description with the key numbers.
  std::string summary;
  /// Machine-readable evidence (counts, shares, rates).
  std::map<std::string, double> stats;
};

/// Per-stream pipeline intermediate shared by metrics and findings.
/// `datagrams` holds views into `trace` — keep the trace alive.
struct StreamAnalysis {
  std::size_t stream_index = 0;
  std::vector<rtcc::dpi::StreamDatagram> datagrams;
  std::vector<rtcc::dpi::DatagramAnalysis> analyses;
};

[[nodiscard]] std::vector<StreamAnalysis> analyze_rtc_streams(
    const rtcc::net::Trace& trace, const rtcc::net::StreamTable& table,
    const rtcc::filter::FilterReport& filter_report,
    const rtcc::dpi::ScanOptions& scan = {});

/// Runs every single-call detector. Detectors (paper reference):
///  - "filler-messages"           Zoom's 1000-identical-byte bandwidth
///                                probes in bursts (§5.3)
///  - "double-rtp"                two RTP messages per datagram, same
///                                SSRC and timestamp (§5.3)
///  - "constant-prefix-probes"    fixed-size fully-proprietary
///                                datagrams with a constant prefix at a
///                                steady rate (FaceTime 0xDEADBEEFCAFE,
///                                §5.3)
///  - "rtcp-zero-ssrc"            SSRC=0 in RTCP feedback (Discord,
///                                §5.3)
///  - "rtcp-direction-byte"       trailing byte perfectly correlated
///                                with packet direction (Discord,
///                                §5.2.3)
///  - "srtcp-missing-auth-tag"    share of SRTCP messages without an
///                                auth tag (Google Meet, §5.2.3)
///  - "repeated-unanswered-stun"  constant-txid request trains
///                                (FaceTime, §5.2.1)
[[nodiscard]] std::vector<Finding> detect_findings(
    const rtcc::net::Trace& trace, const rtcc::filter::FilterConfig& fcfg,
    const AnalysisOptions& opts = {});

/// Convenience overload for emulated calls.
[[nodiscard]] std::vector<Finding> detect_findings(
    const rtcc::emul::EmulatedCall& call, const AnalysisOptions& opts = {});

/// Cross-call detector for §5.2.2's Zoom SSRC determinism: given the
/// RTP SSRC sets of repeated calls under one network setting, reports
/// when the sets repeat verbatim (random SSRCs collide with negligible
/// probability).
[[nodiscard]] std::optional<Finding> detect_ssrc_reuse(
    const std::vector<std::set<std::uint32_t>>& per_call_ssrcs);

/// Extracts the RTP SSRC set of one call (helper for detect_ssrc_reuse).
[[nodiscard]] std::set<std::uint32_t> call_rtp_ssrcs(
    const rtcc::emul::EmulatedCall& call, const AnalysisOptions& opts = {});

}  // namespace rtcc::report
