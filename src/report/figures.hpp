// ASCII renderers for the paper's data figures (3, 4, 5).
#pragma once

#include "report/tables.hpp"

namespace rtcc::report {

/// Figure 3: per-app breakdown of RTC datagrams into standard /
/// proprietary-header / fully-proprietary.
[[nodiscard]] std::string render_figure3(const AppResults& results);

/// Figure 4: compliance ratio by traffic volume — one bar per app and
/// one per protocol (aggregated across apps).
[[nodiscard]] std::string render_figure4(const AppResults& results);

/// Figure 5: compliance ratio by message type, same two groupings.
[[nodiscard]] std::string render_figure5(const AppResults& results);

/// Shared helper: a unit-interval ASCII bar.
[[nodiscard]] std::string bar(double fraction, std::size_t width = 40);

}  // namespace rtcc::report
