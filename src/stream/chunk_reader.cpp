#include "stream/chunk_reader.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

namespace rtcc::stream {

namespace {

// pcap magics, duplicated from net/pcap.cpp's anonymous namespace (the
// values are the file format, not an implementation detail).
constexpr std::uint32_t kMagicNative = 0xA1B2C3D4;    // microseconds
constexpr std::uint32_t kMagicSwapped = 0xD4C3B2A1;
constexpr std::uint32_t kMagicNativeNs = 0xA1B23C4D;  // nanoseconds
constexpr std::uint32_t kMagicSwappedNs = 0x4D3CB2A1;

std::uint32_t load32(const std::uint8_t* p, bool swap) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  if (swap) v = __builtin_bswap32(v);
  return v;
}

void set_error(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
}

/// Recycled parse window over a ChunkSource: one buffer, compacted
/// (tail slid to the front) before each refill so it never grows past
/// max(chunk_bytes, largest record header + payload).
class RecordBuffer {
 public:
  RecordBuffer(ChunkSource& source, std::size_t chunk_bytes)
      : source_(source), chunk_bytes_(std::max<std::size_t>(1, chunk_bytes)) {}

  /// Ensures at least `need` unconsumed bytes are available, reading in
  /// chunk_bytes granules. Returns false when the source ends first.
  bool fill(std::size_t need) {
    if (avail() >= need) return true;
    compact();
    if (buf_.size() < std::max(need, chunk_bytes_))
      buf_.resize(std::max(need, chunk_bytes_));
    while (avail() < need) {
      const std::size_t room = buf_.size() - filled_;
      const std::size_t got =
          source_.read(buf_.data() + filled_, std::min(room, chunk_bytes_));
      if (got == 0) return false;
      filled_ += got;
    }
    return true;
  }

  [[nodiscard]] const std::uint8_t* head() const { return buf_.data() + pos_; }
  [[nodiscard]] std::size_t avail() const { return filled_ - pos_; }
  void consume(std::size_t n) { pos_ += n; }
  /// Current working-set footprint, reported into the live peak.
  [[nodiscard]] std::size_t footprint() const { return buf_.size(); }

 private:
  void compact() {
    if (pos_ == 0) return;
    std::memmove(buf_.data(), buf_.data() + pos_, avail());
    filled_ -= pos_;
    pos_ = 0;
  }

  ChunkSource& source_;
  std::size_t chunk_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t filled_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace

bool stream_pcap(ChunkSource& source, StreamingAnalyzer& engine,
                 std::size_t chunk_bytes, std::string* error) {
  RecordBuffer buf(source, chunk_bytes);
  rtcc::net::IngestStats& stats = engine.capture_stats();

  if (!buf.fill(24)) {
    set_error(error, "pcap: file shorter than global header");
    return false;
  }
  std::uint32_t magic;
  std::memcpy(&magic, buf.head(), 4);
  bool swap = false;
  bool nanos = false;
  if (magic == kMagicNative) {
  } else if (magic == kMagicSwapped) {
    swap = true;
  } else if (magic == kMagicNativeNs) {
    nanos = true;
  } else if (magic == kMagicSwappedNs) {
    swap = true;
    nanos = true;
  } else {
    set_error(error, "pcap: bad magic number");
    return false;
  }
  engine.set_linktype(load32(buf.head() + 20, swap));
  buf.consume(24);

  const std::uint32_t unit = nanos ? 1000000000u : 1000000u;
  const double scale = nanos ? 1e-9 : 1e-6;
  for (;;) {
    if (!buf.fill(16)) {
      if (buf.avail() > 0) ++stats.torn_tail;  // record header cut mid-bytes
      break;
    }
    const std::uint32_t sec = load32(buf.head(), swap);
    std::uint32_t sub = load32(buf.head() + 4, swap);
    const std::uint32_t incl = load32(buf.head() + 8, swap);
    const std::uint32_t orig = load32(buf.head() + 12, swap);
    // A length claim beyond any real capture record (snaplen tops out
    // at 256 KiB) cannot complete; concluding torn-tail now avoids
    // letting one corrupt header demand a multi-GiB buffer. The
    // whole-file walk reaches the same verdict from `incl > size`.
    if (incl > (std::uint32_t{1} << 30)) {
      ++stats.torn_tail;
      break;
    }
    if (!buf.fill(std::size_t{16} + incl)) {
      ++stats.torn_tail;  // record payload cut mid-bytes
      break;
    }
    ++stats.frames_seen;
    if (sub >= unit) {
      sub = unit - 1;  // clamp to the last representable tick
      ++stats.bad_usec;
    }
    if (orig > incl) ++stats.snaplen_clipped;
    const double ts =
        static_cast<double>(sec) + static_cast<double>(sub) * scale;
    engine.note_external_live(buf.footprint());
    engine.push_frame({buf.head() + 16, incl}, ts, orig);
    buf.consume(std::size_t{16} + incl);
  }
  engine.note_external_live(0);  // the recycled buffer dies with the walk
  return true;
}

std::optional<rtcc::report::CallAnalysis> analyze_pcap_streaming(
    const std::string& path, const rtcc::filter::FilterConfig& fcfg,
    const rtcc::report::AnalysisOptions& opts, const StreamOptions& sopts,
    std::string* error,
    std::vector<rtcc::report::CallAnalysis>* per_stream) {
  FileChunkSource source(path);
  if (!source.ok()) {
    set_error(error, "pcap: cannot open file");
    return std::nullopt;
  }
  StreamingAnalyzer engine(rtcc::net::kLinkEthernet, fcfg, opts, sopts);
  if (!stream_pcap(source, engine, sopts.chunk_bytes, error))
    return std::nullopt;
  return engine.finish(per_stream);
}

}  // namespace rtcc::stream
