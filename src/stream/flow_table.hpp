// Bounded flow table for the streaming engine (DESIGN.md §6c).
//
// The streaming inversion keeps memory proportional to *active* flows,
// not capture size, so the table is the engine's working-set boundary:
// every datagram touches exactly one FlowRecord, records sit on an
// intrusive LRU list in touch order, and two budgets retire flows
// before end-of-capture — an idle timeout (trace-clock seconds since
// the last touch) and an LRU capacity cap. Retiring a flow hands it to
// the engine's eviction callback, which finalizes it (runs the batch
// analysis core over its buffered payloads) and releases the heavy
// state; the lightweight metadata (key, span, counts, SNI) is retained
// for the whole capture because the two-stage filter's dispositions
// need cross-flow evidence that is only complete at finish().
//
// A packet arriving for an already-retired key re-opens the flow as a
// *new* record (a split): the ledger counts it in flows_rekeyed, and
// the parity oracle downgrades from byte-identity to conservation
// identities when any split occurred. With the default unbounded
// budgets no split is possible and streaming == batch exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/stream_table.hpp"
#include "report/metrics.hpp"

namespace rtcc::stream {

/// Why a flow left the live set.
enum class EvictReason : std::uint8_t {
  kIdle,   // idle_timeout_s elapsed since the flow's last touch
  kLru,    // capacity pressure: least-recently-touched beyond max_flows
  kDrain,  // end of capture
};

/// One buffered datagram's metadata; payload bytes are concatenated in
/// the owning FlowPayload in arrival order, so offsets are running sums
/// of `len`.
struct FlowPacket {
  double ts = 0.0;
  std::uint32_t len = 0;
  std::uint8_t dir = 0;  // 0 = A->B, 1 = B->A (PacketBatch convention)
  bool reasm = false;    // payload came from IPv4 reassembly
};

/// Heavy per-flow state: the payload copies the batch analysis core
/// needs at finalization (DPI's cover walk re-parses raw bytes, so they
/// must survive until the flow is analyzed). Held by shared_ptr so the
/// sharded path can pin it past eviction while the table moves on.
struct FlowPayload {
  std::vector<std::uint8_t> bytes;  // concatenated datagram payloads
  std::vector<FlowPacket> packets;

  [[nodiscard]] std::uint64_t footprint() const {
    return bytes.size() + packets.size() * sizeof(FlowPacket);
  }
};

struct FlowRecord {
  static constexpr std::size_t kNil = ~std::size_t{0};

  rtcc::net::FlowKey key;
  std::uint64_t ordinal = 0;  // creation order == stream-table order
  double first_ts = 0.0;      // min packet ts (pcap ts are not monotonic)
  double last_ts = 0.0;       // max packet ts
  double last_active = 0.0;   // monotonic clock at last touch (idle expiry)
  std::uint64_t packet_count = 0;
  bool condemned = false;  // online keep/drop verdict: can never be kept
  bool retired = false;    // left the live set (evicted or drained)
  std::uint8_t sni_probed = 0;      // TCP packets probed for a ClientHello
  std::optional<std::string> sni;   // first SNI seen in the probe window
  std::shared_ptr<FlowPayload> payload;  // null once condemned/finalized
  std::unique_ptr<rtcc::report::CallAnalysis> partial;  // after analysis
  /// Sharded analysis handoff: the worker publishes (release) when
  /// *partial is fully written; epoch emission loads (acquire) before
  /// reading it. Null = partial is written synchronously, ready as soon
  /// as it exists.
  std::shared_ptr<std::atomic<bool>> analysis_ready;

  // Intrusive LRU links: indices into FlowTable's record deque.
  std::size_t lru_prev = kNil;
  std::size_t lru_next = kNil;

  [[nodiscard]] bool udp() const {
    return key.transport == rtcc::net::Transport::kUdp;
  }
};

/// Live-flow index + retained record log. Records never move (deque)
/// and are never discarded — ordinal order is the stream-table order
/// the batch path would have produced, which the engine's finish()
/// replays for disposition accounting and partial merging.
class FlowTable {
 public:
  struct Budgets {
    std::size_t max_flows = 0;   // 0 = unbounded
    double idle_timeout_s = 0.0; // 0 = never
  };

  /// Eviction callback: finalize the record (the record is already
  /// marked retired and unlinked when called).
  using EvictFn = std::function<void(FlowRecord&, EvictReason)>;

  explicit FlowTable(const Budgets& budgets) : budgets_(budgets) {}

  struct Touched {
    FlowRecord& rec;
    bool created = false;  // includes re-keyed re-creations
  };

  /// Looks up the live record for `key`, creating one if the key is
  /// unknown — or known but retired, which is a split: the old record
  /// stays frozen in the log, a fresh record takes over the key, and
  /// flows_rekeyed is incremented. `clock` stamps last_active; the
  /// table keeps its own monotonic high-water clock, so a backwards
  /// capture timestamp (reordered pcap, clock step on the capture
  /// host) can never reorder the LRU list relative to last_active or
  /// manufacture a huge idle delta — it is clamped to the high-water
  /// mark instead.
  Touched touch(const rtcc::net::FlowKey& key, double clock);

  /// Retires every live flow whose last touch is older than
  /// `idle_timeout_s` before `clock` (clamped to the high-water clock,
  /// like touch). No-op when the budget is 0.
  void expire_idle(double clock, const EvictFn& fn);

  /// Monotonic high-water mark over every clock passed to touch() /
  /// expire_idle(); -inf before the first call.
  [[nodiscard]] double high_water_clock() const { return max_clock_; }

  /// Retires least-recently-touched flows until at most `max_flows`
  /// remain live. No-op when the budget is 0.
  void enforce_capacity(const EvictFn& fn);

  /// Retires every remaining live flow (end of capture, oldest first).
  void drain(const EvictFn& fn);

  [[nodiscard]] std::size_t live_count() const { return live_count_; }
  [[nodiscard]] const std::deque<FlowRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::deque<FlowRecord>& records() { return records_; }
  [[nodiscard]] const rtcc::report::FlowStats& stats() const { return stats_; }
  [[nodiscard]] rtcc::report::FlowStats& stats() { return stats_; }
  [[nodiscard]] const Budgets& budgets() const { return budgets_; }

 private:
  void unlink(std::size_t i);
  void link_back(std::size_t i);
  void retire(std::size_t i, EvictReason reason, const EvictFn& fn);

  Budgets budgets_;
  std::deque<FlowRecord> records_;
  std::unordered_map<rtcc::net::FlowKey, std::size_t, rtcc::net::FlowKeyHash>
      index_;
  std::size_t lru_head_ = FlowRecord::kNil;
  std::size_t lru_tail_ = FlowRecord::kNil;
  std::size_t live_count_ = 0;
  double max_clock_ = -std::numeric_limits<double>::infinity();
  rtcc::report::FlowStats stats_;
};

}  // namespace rtcc::stream
