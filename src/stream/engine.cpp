#include "stream/engine.hpp"

#include <algorithm>
#include <utility>

#include "proto/tls/client_hello.hpp"
#include "report/shard.hpp"

namespace rtcc::stream {

using rtcc::filter::ThreeTuple;
using rtcc::net::Direction;
using rtcc::net::FlowKey;
using rtcc::net::IpAddr;
using rtcc::net::Transport;
using rtcc::report::CallAnalysis;

namespace {

/// Mirrors the private effective_shards in report/metrics.cpp: the
/// per-call override, else the global RTCC_SHARDS knob; forced to 1
/// when parallelism is off entirely.
std::size_t effective_shards(const rtcc::report::AnalysisOptions& opts) {
  if (!opts.parallel_streams) return 1;
  return opts.shards != 0 ? opts.shards : rtcc::report::shard_count();
}

bool is_device(const IpAddr& ip, const rtcc::filter::FilterConfig& cfg) {
  return std::find(cfg.device_ips.begin(), cfg.device_ips.end(), ip) !=
         cfg.device_ips.end();
}

/// Probe window mirroring filter::stream_sni: the ClientHello sits in
/// the first packets of a TCP stream.
constexpr std::uint8_t kSniProbePackets = 8;

}  // namespace

StreamingAnalyzer::StreamingAnalyzer(std::uint32_t linktype,
                                     const rtcc::filter::FilterConfig& fcfg,
                                     const rtcc::report::AnalysisOptions& opts,
                                     const StreamOptions& sopts)
    : fcfg_(fcfg),
      opts_(opts),
      sopts_(sopts),
      table_({sopts.max_flows, sopts.idle_timeout_s}),
      linktype_(linktype),
      decoder_(linktype),
      dpi_(opts.scan),
      in_flight_(std::make_shared<std::atomic<std::uint64_t>>(0)),
      nshards_(effective_shards(opts)) {}

StreamingAnalyzer::~StreamingAnalyzer() = default;

void StreamingAnalyzer::set_linktype(std::uint32_t linktype) {
  if (linktype == linktype_) return;  // keep decoder state across captures
  // A genuine linktype switch needs a fresh decoder; bank its ledger
  // first so finish()'s ingest totals still cover every capture.
  capture_.merge(decoder_.stats());
  linktype_ = linktype;
  decoder_ = rtcc::net::FrameDecoder(linktype);
}

rtcc::net::IngestStats StreamingAnalyzer::ingest_totals() const {
  rtcc::net::IngestStats totals = capture_;
  totals.merge(decoder_.stats());
  return totals;
}

std::uint64_t StreamingAnalyzer::live_bytes() const {
  return live_flow_bytes_ + in_flight_->load(std::memory_order_relaxed) +
         external_live_;
}

void StreamingAnalyzer::note_external_live(std::uint64_t bytes) {
  external_live_ = bytes;
  update_peak();
}

void StreamingAnalyzer::update_peak() {
  const std::uint64_t live = live_bytes();
  if (live > table_.stats().live_peak_bytes)
    table_.stats().live_peak_bytes = live;
}

void StreamingAnalyzer::condemn(FlowRecord& rec) {
  rec.condemned = true;
  if (rec.payload) {
    live_flow_bytes_ -= rec.payload->footprint();
    rec.payload.reset();
  }
}

void StreamingAnalyzer::push_frame(rtcc::util::BytesView wire, double ts,
                                   std::uint32_t orig_len) {
  raw_bytes_ += wire.size();
  clock_ = std::max(clock_, ts);
  // Epoch boundary: epochs partition the *arrival sequence* at
  // high-water clock crossings, so every pushed frame lands in exactly
  // one epoch (frame conservation holds even with non-monotonic
  // timestamps). The boundary fires before this frame touches the
  // table — the closing window covers strictly earlier arrivals.
  if (!epoch_open_) {
    epoch_open_ = true;
    epoch_anchor_ = clock_;
  } else if (epoch_s_ > 0 && clock_ >= epoch_anchor_ + epoch_s_) {
    emit_epoch(/*final_pass=*/false, nullptr);
    epoch_anchor_ = clock_;
  }
  ++epoch_frames_;
  epoch_bytes_ += wire.size();
  const bool clipped = orig_len > wire.size();
  auto decoded = decoder_.decode(wire, ts, clipped);
  if (!decoded) return;

  // Retire idle flows *before* the new packet claims its own — the
  // packet's flow must not be expired by the very frame that extends it.
  const auto evict_fn = [this](FlowRecord& r, EvictReason reason) {
    on_evict(r, reason);
  };
  table_.expire_idle(clock_, evict_fn);

  auto [key, dir] = rtcc::net::canonical_flow(*decoded);
  auto touched = table_.touch(key, clock_);
  FlowRecord& rec = touched.rec;
  if (touched.created) {
    rec.first_ts = ts;
    rec.last_ts = ts;
    // Stage 2d is static on the key: an excluded port on either side
    // means the flow can never be kept, so its payloads never buffer.
    if (fcfg_.excluded_ports.count(key.a_port) > 0 ||
        fcfg_.excluded_ports.count(key.b_port) > 0)
      rec.condemned = true;
    if (!rec.condemned && rec.udp())
      rec.payload = std::make_shared<FlowPayload>();
  } else {
    rec.first_ts = std::min(rec.first_ts, ts);
    rec.last_ts = std::max(rec.last_ts, ts);
  }
  ++rec.packet_count;

  // Stage 1 enclosure is monotone in the packet span: one timestamp
  // outside the expanded window condemns the flow for good.
  if (!rec.condemned && (ts < fcfg_.schedule.window_begin() ||
                         ts > fcfg_.schedule.window_end()))
    condemn(rec);

  if (!rec.condemned) {
    if (rec.udp()) {
      FlowPayload& p = *rec.payload;
      p.bytes.insert(p.bytes.end(), decoded->payload.begin(),
                     decoded->payload.end());
      FlowPacket fp;
      fp.ts = ts;
      fp.len = static_cast<std::uint32_t>(decoded->payload.size());
      fp.dir = dir == Direction::kAtoB ? 0 : 1;
      fp.reasm = decoded->reassembled;
      p.packets.push_back(fp);
      live_flow_bytes_ += decoded->payload.size() + sizeof(FlowPacket);
    } else if (rec.sni_probed < kSniProbePackets && !rec.sni) {
      // filter::stream_sni scans the first kMaxProbe packets (empty
      // payloads consume probe slots too) and keeps the first hit.
      ++rec.sni_probed;
      if (!decoded->payload.empty())
        rec.sni = rtcc::proto::tls::extract_sni(decoded->payload);
    }
  }

  table_.enforce_capacity(evict_fn);
  update_peak();
}

void StreamingAnalyzer::on_evict(FlowRecord& rec, EvictReason reason) {
  if (reason == EvictReason::kDrain) return;  // finish() analyzes kept flows
  // Mid-capture eviction drops the payload bytes, so the flow must be
  // analyzed *now*, speculatively: whether it is kept is only known at
  // finish(), which discards the partial if the flow ends up filtered.
  if (rec.udp() && !rec.condemned && rec.payload &&
      !rec.payload->packets.empty()) {
    auto payload = std::move(rec.payload);
    live_flow_bytes_ -= payload->footprint();
    analyze_record(rec, std::move(payload));
  } else if (rec.payload) {
    live_flow_bytes_ -= rec.payload->footprint();
    rec.payload.reset();
  }
}

void StreamingAnalyzer::analyze_record(FlowRecord& rec,
                                       std::shared_ptr<FlowPayload> payload) {
  rec.partial = std::make_unique<CallAnalysis>();
  CallAnalysis& part = *rec.partial;
  ++table_.stats().finalized;

  // Whole-flow batch over the buffered payloads, in arrival order —
  // exactly the batch the batch path's per-stream chunk loop builds.
  rtcc::net::PacketBatch batch;
  const std::size_t n = payload->packets.size();
  batch.reserve(n);
  std::size_t off = 0;
  for (const FlowPacket& fp : payload->packets) {
    batch.push({payload->bytes.data() + off, fp.len}, fp.ts, fp.dir);
    off += fp.len;
    if (fp.reasm) ++part.nodes.decode.suspended;
  }
  // Decode-node accounting replays decode_stream_chunk's bsz chunking,
  // so node counters stay knob-consistent with the batch path.
  const std::size_t bsz = rtcc::net::batch_size();
  for (std::size_t base = 0; base < n; base += bsz) {
    ++part.nodes.decode.vectors;
    part.nodes.decode.packets += std::min(n, base + bsz) - base;
  }

  if (nshards_ > 1) {
    if (!pipe_) {
      rtcc::report::ShardedPipeline::Options popts;
      popts.shards = nshards_;
      popts.scan = opts_.scan;
      popts.compliance = opts_.compliance;
      pipe_ = std::make_unique<rtcc::report::ShardedPipeline>(popts);
    }
    // The keepalive pins the flow's payload buffer until the shard
    // worker analyzed it; its deleter keeps the in-flight bytes in the
    // live peak until then, and publishes the partial as readable —
    // the worker stores *part before releasing the keepalive, so the
    // release/acquire pair orders the epoch emitter after the write.
    const std::uint64_t sz = payload->footprint();
    in_flight_->fetch_add(sz, std::memory_order_relaxed);
    rec.analysis_ready = std::make_shared<std::atomic<bool>>(false);
    auto counter = in_flight_;
    auto ready = rec.analysis_ready;
    std::shared_ptr<const void> keep(
        payload.get(), [payload, counter, sz, ready](const void*) mutable {
          counter->fetch_sub(sz, std::memory_order_relaxed);
          payload.reset();
          ready->store(true, std::memory_order_release);
        });
    pipe_->submit_batch(rec.key, batch, &part, std::move(keep));
  } else {
    report::detail::analyze_stream_batch(dpi_, opts_.compliance, batch, part);
  }
}

std::vector<rtcc::filter::Disposition> StreamingAnalyzer::compute_dispositions()
    const {
  using rtcc::filter::Disposition;
  const auto& records = table_.records();
  const std::size_t n = records.size();
  const double wb = fcfg_.schedule.window_begin();
  const double we = fcfg_.schedule.window_end();

  // ---- Stage 1: timespan enclosure (filter::enclosed_in_window) ----
  std::vector<bool> removed1(n, false);
  for (std::size_t i = 0; i < n; ++i)
    removed1[i] = !(records[i].first_ts >= wb && records[i].last_ts <= we);

  // ---- Stage 2 evidence (filter::run_pipeline, from retained
  // metadata instead of a stream table). Both witness sets only ever
  // grow as flows accumulate, which is what makes mid-capture
  // (epoch-boundary) dispositions provisional in one direction only:
  // kept can later flip to removed, removed never flips back. ----
  std::vector<ThreeTuple> outside_tuples;
  for (std::size_t i = 0; i < n; ++i) {
    if (!removed1[i]) continue;
    const FlowKey& k = records[i].key;
    if (!is_device(k.a, fcfg_))
      outside_tuples.push_back(ThreeTuple{k.a, k.a_port, k.transport});
    if (!is_device(k.b, fcfg_))
      outside_tuples.push_back(ThreeTuple{k.b, k.b_port, k.transport});
  }
  std::sort(outside_tuples.begin(), outside_tuples.end());
  outside_tuples.erase(
      std::unique(outside_tuples.begin(), outside_tuples.end()),
      outside_tuples.end());

  std::vector<std::pair<IpAddr, IpAddr>> precall_pairs;
  for (std::size_t i = 0; i < n; ++i)
    if (records[i].first_ts < wb)
      precall_pairs.emplace_back(records[i].key.a, records[i].key.b);
  std::sort(precall_pairs.begin(), precall_pairs.end());
  precall_pairs.erase(
      std::unique(precall_pairs.begin(), precall_pairs.end()),
      precall_pairs.end());

  const auto tuple_outside = [&](const IpAddr& ip, std::uint16_t port,
                                 Transport transport) {
    return std::binary_search(outside_tuples.begin(), outside_tuples.end(),
                              ThreeTuple{ip, port, transport});
  };

  std::vector<Disposition> disp(n, Disposition::kKept);
  for (std::size_t i = 0; i < n; ++i) {
    const FlowKey& k = records[i].key;
    if (removed1[i]) {
      disp[i] = Disposition::kStage1Timespan;
      continue;
    }
    const bool a_dev = is_device(k.a, fcfg_);
    const bool b_dev = is_device(k.b, fcfg_);
    // 2a — 3-tuple timing.
    if ((!a_dev && tuple_outside(k.a, k.a_port, k.transport)) ||
        (!b_dev && tuple_outside(k.b, k.b_port, k.transport))) {
      disp[i] = Disposition::kStage2ThreeTuple;
    } else if (k.transport == Transport::kTcp && records[i].sni &&
               rtcc::filter::sni_blocked(*records[i].sni,
                                         fcfg_.sni_blocklist)) {
      // 2b — TLS SNI blocklist (TCP only).
      disp[i] = Disposition::kStage2Sni;
    } else if (((!a_dev && k.a.is_local_scope()) ||
                (!b_dev && k.b.is_local_scope())) &&
               std::binary_search(precall_pairs.begin(), precall_pairs.end(),
                                  std::make_pair(k.a, k.b))) {
      // 2c — local-scope remote whose IP pair appeared pre-call.
      disp[i] = Disposition::kStage2LocalIp;
    } else if (fcfg_.excluded_ports.count(k.a_port) > 0 ||
               fcfg_.excluded_ports.count(k.b_port) > 0) {
      // 2d — port-based exclusion.
      disp[i] = Disposition::kStage2Port;
    }
  }
  return disp;
}

void StreamingAnalyzer::set_epoch(double epoch_s, EpochSink sink) {
  epoch_s_ = epoch_s;
  sink_ = std::move(sink);
}

void StreamingAnalyzer::finish_epoch() {
  if (!sink_) return;
  emit_epoch(/*final_pass=*/false, nullptr);
  epoch_anchor_ = clock_;
}

void StreamingAnalyzer::emit_epoch(
    bool final_pass, const std::vector<rtcc::filter::Disposition>* precomputed) {
  EpochReport ep;
  ep.epoch = epoch_index_++;
  ep.clock_end = clock_;
  ep.frames = epoch_frames_;
  ep.bytes = epoch_bytes_;
  ep.final_pass = final_pass;
  epoch_frames_ = 0;
  epoch_bytes_ = 0;
  if (!sink_) return;  // window counters still reset: epochs stay disjoint

  std::vector<rtcc::filter::Disposition> local;
  if (precomputed == nullptr) {
    local = compute_dispositions();
    precomputed = &local;
  }
  const auto& disp = *precomputed;
  const auto& records = table_.records();
  emitted_.resize(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const FlowRecord& rec = records[i];
    EmitState& st = emitted_[i];
    const bool ready =
        !rec.analysis_ready ||
        rec.analysis_ready->load(std::memory_order_acquire);
    const bool first = !st.emitted;
    if (first) {
      if (!final_pass) {
        // Provisional verdicts cover only retired flows (frozen span,
        // frozen metadata) whose speculative analysis — if any — has
        // drained out of the shard workers; anything else waits for a
        // later epoch.
        if (!rec.retired) continue;
        if (rec.partial != nullptr && !ready) continue;
      }
    } else if (st.disposition == disp[i]) {
      continue;  // verdict stands — emitted ordinals never repeat
    }
    st.emitted = true;
    st.disposition = disp[i];
    FlowVerdict v;
    v.ordinal = rec.ordinal;
    v.key = rec.key;
    v.first_ts = rec.first_ts;
    v.last_ts = rec.last_ts;
    v.packets = rec.packet_count;
    v.disposition = disp[i];
    v.final_pass = final_pass;
    v.amends = !first;
    if (disp[i] == rtcc::filter::Disposition::kKept && rec.udp() &&
        rec.partial != nullptr && ready)
      v.partial = rec.partial.get();
    ep.verdicts.push_back(std::move(v));
  }
  ep.flows = table_.stats();
  sink_(ep);
}

CallAnalysis StreamingAnalyzer::finish(std::vector<CallAnalysis>* per_stream) {
  finished_ = true;
  decoder_.finish();
  // Drain keeps payloads in place: dispositions are computed first so
  // end-of-capture flows are only analyzed when actually kept — the
  // same work the batch path does, in the same per-stream order.
  table_.drain([this](FlowRecord& r, EvictReason reason) {
    on_evict(r, reason);
  });

  auto& records = table_.records();
  const std::size_t n = records.size();
  const auto disp = compute_dispositions();

  // ---- Table 1 accounting, in stream-table order ----
  CallAnalysis out;
  out.raw_bytes = raw_bytes_;
  out.ingest = capture_;
  out.ingest.merge(decoder_.stats());

  std::vector<std::size_t> kept_udp;
  for (std::size_t i = 0; i < n; ++i) {
    const FlowRecord& rec = records[i];
    const bool udp = rec.udp();
    if (udp) {
      ++out.raw_udp_streams;
      out.raw_udp_datagrams += rec.packet_count;
    } else {
      ++out.raw_tcp_streams;
      out.raw_tcp_segments += rec.packet_count;
    }

    const bool removed1 = disp[i] == rtcc::filter::Disposition::kStage1Timespan;
    const bool removed2 = rtcc::filter::is_stage2(disp[i]);
    auto& stage = removed1 ? (udp ? out.stage1_udp : out.stage1_tcp)
                 : removed2 ? (udp ? out.stage2_udp : out.stage2_tcp)
                            : (udp ? out.rtc_udp : out.rtc_tcp);
    ++stage.streams;
    stage.packets += rec.packet_count;
    if (disp[i] == rtcc::filter::Disposition::kKept && udp)
      kept_udp.push_back(i);
  }

  // ---- Finalize kept flows not already analyzed at eviction ----
  for (std::size_t i : kept_udp) {
    FlowRecord& rec = records[i];
    if (rec.partial) continue;  // speculatively analyzed at eviction
    auto payload = std::move(rec.payload);
    live_flow_bytes_ -= payload->footprint();
    analyze_record(rec, std::move(payload));
  }
  if (pipe_) pipe_->finish();

  // ---- Final epoch: every shard has drained, every flow is retired,
  // the evidence is complete — emit first-time verdicts for everything
  // unemitted and amendments for any provisional verdict the complete
  // evidence overturned. Runs before the partials move out below so
  // kept verdicts can still point at their analyses. ----
  emit_epoch(/*final_pass=*/true, &disp);

  // ---- Merge in stream-table order (merge() is order-insensitive,
  // pinned by the merge-order oracle, so this matches the batch path's
  // stream- and shard-order merges byte for byte) ----
  std::vector<CallAnalysis> partials;
  partials.reserve(kept_udp.size());
  for (std::size_t i : kept_udp) {
    rtcc::report::merge(out, *records[i].partial);
    partials.push_back(std::move(*records[i].partial));
    records[i].partial.reset();
  }
  out.flows = table_.stats();
  if (per_stream != nullptr) *per_stream = std::move(partials);
  return out;
}

CallAnalysis analyze_trace_streaming(const rtcc::net::Trace& trace,
                                     const rtcc::filter::FilterConfig& fcfg,
                                     const rtcc::report::AnalysisOptions& opts,
                                     const StreamOptions& sopts,
                                     std::vector<CallAnalysis>* per_stream) {
  StreamingAnalyzer engine(trace.linktype(), fcfg, opts, sopts);
  engine.capture_stats() = trace.ingest();
  for (const auto& frame : trace.frames())
    engine.push_frame(trace.bytes(frame), frame.ts, frame.orig_len);
  return engine.finish(per_stream);
}

}  // namespace rtcc::stream
