#include "stream/flow_table.hpp"

namespace rtcc::stream {

namespace {
constexpr std::size_t kNil = FlowRecord::kNil;
}  // namespace

FlowTable::Touched FlowTable::touch(const rtcc::net::FlowKey& key,
                                    double clock) {
  // Clamp to the table's monotonic high-water mark: a backwards capture
  // timestamp must not produce a last_active below an earlier touch
  // (which would silently break the LRU-order == last_active-order
  // invariant expire_idle pops by) or a negative idle delta.
  if (clock > max_clock_) max_clock_ = clock;
  clock = max_clock_;
  auto [it, inserted] = index_.try_emplace(key, records_.size());
  if (!inserted) {
    FlowRecord& existing = records_[it->second];
    if (!existing.retired) {
      existing.last_active = clock;
      // Move to LRU back (most recently touched).
      unlink(it->second);
      link_back(it->second);
      return {existing, false};
    }
    // Split: the key was evicted mid-capture and came back. The frozen
    // record keeps its place in the log; a fresh record takes the key.
    ++stats_.flows_rekeyed;
    it->second = records_.size();
  }
  records_.emplace_back();
  FlowRecord& rec = records_.back();
  rec.key = key;
  rec.ordinal = records_.size() - 1;
  rec.last_active = clock;
  link_back(rec.ordinal);
  ++live_count_;
  ++stats_.flows_seen;
  if (live_count_ > stats_.flows_live) stats_.flows_live = live_count_;
  return {rec, true};
}

void FlowTable::expire_idle(double clock, const EvictFn& fn) {
  if (budgets_.idle_timeout_s <= 0) return;
  if (clock > max_clock_) max_clock_ = clock;
  clock = max_clock_;
  // The LRU list is ordered by last_active (the clamp above makes the
  // effective clock non-decreasing), so expiry only ever pops from the
  // front.
  while (lru_head_ != kNil &&
         records_[lru_head_].last_active + budgets_.idle_timeout_s < clock) {
    ++stats_.evictions;
    retire(lru_head_, EvictReason::kIdle, fn);
  }
}

void FlowTable::enforce_capacity(const EvictFn& fn) {
  if (budgets_.max_flows == 0) return;
  while (live_count_ > budgets_.max_flows && lru_head_ != kNil) {
    ++stats_.evictions;
    retire(lru_head_, EvictReason::kLru, fn);
  }
}

void FlowTable::drain(const EvictFn& fn) {
  while (lru_head_ != kNil) retire(lru_head_, EvictReason::kDrain, fn);
}

void FlowTable::unlink(std::size_t i) {
  FlowRecord& rec = records_[i];
  if (rec.lru_prev != kNil)
    records_[rec.lru_prev].lru_next = rec.lru_next;
  else
    lru_head_ = rec.lru_next;
  if (rec.lru_next != kNil)
    records_[rec.lru_next].lru_prev = rec.lru_prev;
  else
    lru_tail_ = rec.lru_prev;
  rec.lru_prev = kNil;
  rec.lru_next = kNil;
}

void FlowTable::link_back(std::size_t i) {
  FlowRecord& rec = records_[i];
  rec.lru_prev = lru_tail_;
  rec.lru_next = kNil;
  if (lru_tail_ != kNil)
    records_[lru_tail_].lru_next = i;
  else
    lru_head_ = i;
  lru_tail_ = i;
}

void FlowTable::retire(std::size_t i, EvictReason reason, const EvictFn& fn) {
  unlink(i);
  FlowRecord& rec = records_[i];
  rec.retired = true;
  --live_count_;
  if (fn) fn(rec, reason);
}

}  // namespace rtcc::stream
