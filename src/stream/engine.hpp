// One-pass streaming analysis engine (DESIGN.md §6c).
//
// Inverts the batch data flow: instead of materializing a whole Trace,
// grouping it, filtering it, then analyzing each surviving stream, the
// engine consumes frames one at a time and keeps memory proportional
// to the *active* flow set. Three pieces make the inversion exact:
//
//   * windowed online keep/drop — a flow is condemned the moment the
//     evidence is final regardless of what else arrives: any packet
//     timestamped outside the expanded call window (stage 1 enclosure
//     can no longer hold) or a statically excluded port (stage 2d).
//     Condemned flows drop their payload buffers immediately; only
//     lightweight metadata is retained. Every other disposition (3-tuple
//     timing, SNI, local-IP + precall) needs cross-flow evidence that
//     is only complete at end of capture, so finish() recomputes all
//     dispositions from retained metadata with the batch filter's exact
//     semantics.
//
//   * per-flow incremental state machine — surviving UDP flows buffer
//     payload copies until the flow is finalized (eviction or drain),
//     then run the exact batch per-stream core
//     (report::detail::analyze_stream_batch): the DPI's stream-level
//     validation and cover walk, and the two-phase compliance checker,
//     are whole-stream stateful, so the flow is the unit of
//     incrementality and byte-identity with batch holds by
//     construction. TCP flows never buffer payloads; they probe their
//     first packets for a TLS SNI online, mirroring filter::stream_sni.
//
//   * bounded flow table (stream/flow_table.hpp) — idle/LRU eviction
//     finalizes and emits per-stream results before end of capture,
//     bounding peak live bytes. With the default unbounded budgets no
//     flow is ever split and merged output is byte-identical to batch
//     at every knob combination ("flows" diagnostics aside); bounded
//     budgets trade exactness for memory, accounted in flows_rekeyed.
//
// Feed it from the chunked pcap reader (stream/chunk_reader.hpp) or
// push frames of an in-memory Trace (analyze_trace_streaming — the
// RTCC_STREAM=1 body of report::analyze_trace).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "dpi/scanning_dpi.hpp"
#include "filter/pipeline.hpp"
#include "net/headers.hpp"
#include "report/metrics.hpp"
#include "stream/flow_table.hpp"
#include "stream/stream_mode.hpp"

namespace rtcc::report {
class ShardedPipeline;
}  // namespace rtcc::report

namespace rtcc::stream {

/// One flow's keep/remove verdict as known at an epoch boundary.
///
/// Epochs control *emission cadence*, not flow retirement: a verdict is
/// first emitted (amends = false) once its flow has retired — its
/// packet span and metadata are frozen — with the disposition the
/// cross-flow evidence supports *so far*. Later evidence can only
/// tighten a verdict (the stage-2 witness sets grow monotonically, so
/// kept can flip to removed but never back); such a revision is emitted
/// as an amendment (amends = true) for the same ordinal. The final
/// epoch (finish()) emits first-time verdicts for every remaining flow
/// and amendments for any earlier verdict the complete evidence
/// overturned, all marked final_pass.
///
/// Conservation identities a sink can check: every ordinal is emitted
/// exactly once with amends = false across the whole run, and the sum
/// of EpochReport::frames equals the total frames pushed.
struct FlowVerdict {
  std::uint64_t ordinal = 0;  // stream-table order, stable across epochs
  rtcc::net::FlowKey key;
  double first_ts = 0.0;
  double last_ts = 0.0;
  std::uint64_t packets = 0;
  rtcc::filter::Disposition disposition = rtcc::filter::Disposition::kKept;
  bool final_pass = false;  // emitted by finish(): evidence is complete
  bool amends = false;      // revises this ordinal's earlier verdict
  /// Per-stream compliance analysis for kept UDP flows; null for
  /// removed/TCP flows. Valid only for the duration of the sink call.
  const rtcc::report::CallAnalysis* partial = nullptr;
};

/// Everything emitted at one epoch boundary.
struct EpochReport {
  std::uint64_t epoch = 0;    // 0-based epoch ordinal
  double clock_end = 0.0;     // high-water capture clock at emission
  std::uint64_t frames = 0;   // frames pushed during this window
  std::uint64_t bytes = 0;    // wire bytes pushed during this window
  bool final_pass = false;    // this is the finish() epoch
  rtcc::report::FlowStats flows;  // cumulative flow-ledger snapshot
  std::vector<FlowVerdict> verdicts;
};

using EpochSink = std::function<void(const EpochReport&)>;

class StreamingAnalyzer {
 public:
  StreamingAnalyzer(std::uint32_t linktype,
                    const rtcc::filter::FilterConfig& fcfg,
                    const rtcc::report::AnalysisOptions& opts = {},
                    const StreamOptions& sopts = stream_options_from_env());
  ~StreamingAnalyzer();
  StreamingAnalyzer(const StreamingAnalyzer&) = delete;
  StreamingAnalyzer& operator=(const StreamingAnalyzer&) = delete;

  /// The chunked reader learns the linktype from the pcap global
  /// header; must be called before the capture's first frame. A
  /// same-linktype call is a no-op (the service daemon streams many
  /// drop-files through one engine — decoder stats and reassembly
  /// state persist across them); a linktype switch folds the old
  /// decoder's stats into the ledger before replacing it.
  void set_linktype(std::uint32_t linktype);
  [[nodiscard]] std::uint32_t linktype() const { return linktype_; }

  /// Capture-layer ingestion counters (frames_seen, torn_tail, ...),
  /// filled by whoever walks the capture records — the chunked reader,
  /// or a copy of Trace::ingest() for in-memory traces. Decode-layer
  /// counters come from the engine's own FrameDecoder.
  [[nodiscard]] rtcc::net::IngestStats& capture_stats() { return capture_; }

  /// Consumes one captured frame (wire bytes + timestamp). `orig_len`
  /// is the pcap record's original on-the-wire length (0 = same as
  /// `wire`); larger than wire.size() marks the frame snaplen-clipped.
  /// The bytes need only stay valid for the duration of the call.
  void push_frame(rtcc::util::BytesView wire, double ts,
                  std::uint32_t orig_len = 0);

  /// Ends the capture: drains the flow table, computes every stream
  /// disposition with the batch filter's exact semantics, finalizes
  /// kept flows, and returns the merged analysis (byte-identical to
  /// the batch path when no flow was split; `flows` carries the
  /// streaming diagnostics either way). When `per_stream` is non-null
  /// it receives the kept per-stream partials in stream-table order,
  /// matching analyze_trace's out-param. Call at most once.
  [[nodiscard]] rtcc::report::CallAnalysis finish(
      std::vector<rtcc::report::CallAnalysis>* per_stream = nullptr);

  /// Windowed finalization for long-running (service) use. When
  /// `epoch_s` is positive and finite, an epoch closes whenever the
  /// high-water capture clock advances `epoch_s` past the epoch's
  /// opening clock: `sink` receives an EpochReport with provisional
  /// verdicts for newly-retired flows and amendments for earlier
  /// verdicts the grown evidence overturned (see FlowVerdict).
  /// `epoch_s` <= 0 or infinity disables automatic boundaries; the
  /// sink then only fires on explicit finish_epoch() calls and at
  /// finish(). Epochs never retire flows — retirement stays with the
  /// idle/LRU budgets — so analysis output is invariant under epoch
  /// length by construction.
  void set_epoch(double epoch_s, EpochSink sink);

  /// Closes the current epoch now (service drain timers, SIGTERM).
  /// No-op without a sink.
  void finish_epoch();

  /// Bytes currently buffered by the engine: live flow payloads plus
  /// submitted-but-unfinished sharded work plus the reader's declared
  /// buffer. The running peak lands in FlowStats::live_peak_bytes.
  [[nodiscard]] std::uint64_t live_bytes() const;

  /// The feeding reader declares its own buffer footprint so the peak
  /// accounts every live byte of the streaming path, not just flows.
  void note_external_live(std::uint64_t bytes);

  [[nodiscard]] const rtcc::report::FlowStats& flow_stats() const {
    return table_.stats();
  }

  /// Currently-live (not yet retired) flows — the service gauge, as
  /// opposed to flow_stats().flows_live which is the running peak.
  [[nodiscard]] std::size_t live_flow_count() const {
    return table_.live_count();
  }

  /// Capture + decode ledger combined, readable mid-run (the /metrics
  /// ingest totals). finish() reports the same totals in the merged
  /// analysis' `ingest`.
  [[nodiscard]] rtcc::net::IngestStats ingest_totals() const;

 private:
  void on_evict(FlowRecord& rec, EvictReason reason);
  void condemn(FlowRecord& rec);
  /// Builds the whole-flow batch from `payload`, books the decode-node
  /// counters exactly as the batch path's chunk loop would, and runs
  /// (or submits) the batch analysis core into rec.partial.
  void analyze_record(FlowRecord& rec, std::shared_ptr<FlowPayload> payload);
  void update_peak();
  /// Per-record dispositions under the evidence accumulated so far —
  /// the batch filter's exact stage semantics over retained metadata.
  /// At finish() (all flows retired) this is the batch pipeline's
  /// disposition vector.
  [[nodiscard]] std::vector<rtcc::filter::Disposition> compute_dispositions()
      const;
  /// Emits one epoch through the sink and resets the window counters.
  void emit_epoch(bool final_pass,
                  const std::vector<rtcc::filter::Disposition>* precomputed);

  rtcc::filter::FilterConfig fcfg_;
  rtcc::report::AnalysisOptions opts_;
  StreamOptions sopts_;
  FlowTable table_;
  std::uint32_t linktype_ = rtcc::net::kLinkEthernet;
  rtcc::net::FrameDecoder decoder_;
  rtcc::dpi::ScanningDpi dpi_;
  rtcc::net::IngestStats capture_;
  std::uint64_t raw_bytes_ = 0;
  double clock_ = 0.0;  // max frame ts seen (pcap ts are not monotonic)
  std::uint64_t live_flow_bytes_ = 0;
  std::uint64_t external_live_ = 0;
  std::shared_ptr<std::atomic<std::uint64_t>> in_flight_;  // sharded handoff
  std::size_t nshards_ = 1;
  std::unique_ptr<rtcc::report::ShardedPipeline> pipe_;
  bool finished_ = false;

  // ---- Epoch/window state (set_epoch) ----
  double epoch_s_ = 0.0;  // <= 0 or inf: no automatic boundaries
  EpochSink sink_;
  std::uint64_t epoch_index_ = 0;
  bool epoch_open_ = false;     // anchor valid (first frame seen)
  double epoch_anchor_ = 0.0;   // high-water clock when the epoch opened
  std::uint64_t epoch_frames_ = 0;
  std::uint64_t epoch_bytes_ = 0;
  struct EmitState {
    bool emitted = false;
    rtcc::filter::Disposition disposition = rtcc::filter::Disposition::kKept;
  };
  std::vector<EmitState> emitted_;  // indexed by record ordinal
};

/// The RTCC_STREAM=1 body of report::analyze_trace: pushes every frame
/// of an in-memory trace through a StreamingAnalyzer. Exposed directly
/// so oracles and tests can sweep StreamOptions budgets.
[[nodiscard]] rtcc::report::CallAnalysis analyze_trace_streaming(
    const rtcc::net::Trace& trace, const rtcc::filter::FilterConfig& fcfg,
    const rtcc::report::AnalysisOptions& opts = {},
    const StreamOptions& sopts = stream_options_from_env(),
    std::vector<rtcc::report::CallAnalysis>* per_stream = nullptr);

}  // namespace rtcc::stream
