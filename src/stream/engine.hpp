// One-pass streaming analysis engine (DESIGN.md §6c).
//
// Inverts the batch data flow: instead of materializing a whole Trace,
// grouping it, filtering it, then analyzing each surviving stream, the
// engine consumes frames one at a time and keeps memory proportional
// to the *active* flow set. Three pieces make the inversion exact:
//
//   * windowed online keep/drop — a flow is condemned the moment the
//     evidence is final regardless of what else arrives: any packet
//     timestamped outside the expanded call window (stage 1 enclosure
//     can no longer hold) or a statically excluded port (stage 2d).
//     Condemned flows drop their payload buffers immediately; only
//     lightweight metadata is retained. Every other disposition (3-tuple
//     timing, SNI, local-IP + precall) needs cross-flow evidence that
//     is only complete at end of capture, so finish() recomputes all
//     dispositions from retained metadata with the batch filter's exact
//     semantics.
//
//   * per-flow incremental state machine — surviving UDP flows buffer
//     payload copies until the flow is finalized (eviction or drain),
//     then run the exact batch per-stream core
//     (report::detail::analyze_stream_batch): the DPI's stream-level
//     validation and cover walk, and the two-phase compliance checker,
//     are whole-stream stateful, so the flow is the unit of
//     incrementality and byte-identity with batch holds by
//     construction. TCP flows never buffer payloads; they probe their
//     first packets for a TLS SNI online, mirroring filter::stream_sni.
//
//   * bounded flow table (stream/flow_table.hpp) — idle/LRU eviction
//     finalizes and emits per-stream results before end of capture,
//     bounding peak live bytes. With the default unbounded budgets no
//     flow is ever split and merged output is byte-identical to batch
//     at every knob combination ("flows" diagnostics aside); bounded
//     budgets trade exactness for memory, accounted in flows_rekeyed.
//
// Feed it from the chunked pcap reader (stream/chunk_reader.hpp) or
// push frames of an in-memory Trace (analyze_trace_streaming — the
// RTCC_STREAM=1 body of report::analyze_trace).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "dpi/scanning_dpi.hpp"
#include "filter/pipeline.hpp"
#include "net/headers.hpp"
#include "report/metrics.hpp"
#include "stream/flow_table.hpp"
#include "stream/stream_mode.hpp"

namespace rtcc::report {
class ShardedPipeline;
}  // namespace rtcc::report

namespace rtcc::stream {

class StreamingAnalyzer {
 public:
  StreamingAnalyzer(std::uint32_t linktype,
                    const rtcc::filter::FilterConfig& fcfg,
                    const rtcc::report::AnalysisOptions& opts = {},
                    const StreamOptions& sopts = stream_options_from_env());
  ~StreamingAnalyzer();
  StreamingAnalyzer(const StreamingAnalyzer&) = delete;
  StreamingAnalyzer& operator=(const StreamingAnalyzer&) = delete;

  /// The chunked reader learns the linktype from the pcap global
  /// header; must be called before the first frame.
  void set_linktype(std::uint32_t linktype);
  [[nodiscard]] std::uint32_t linktype() const { return linktype_; }

  /// Capture-layer ingestion counters (frames_seen, torn_tail, ...),
  /// filled by whoever walks the capture records — the chunked reader,
  /// or a copy of Trace::ingest() for in-memory traces. Decode-layer
  /// counters come from the engine's own FrameDecoder.
  [[nodiscard]] rtcc::net::IngestStats& capture_stats() { return capture_; }

  /// Consumes one captured frame (wire bytes + timestamp). `orig_len`
  /// is the pcap record's original on-the-wire length (0 = same as
  /// `wire`); larger than wire.size() marks the frame snaplen-clipped.
  /// The bytes need only stay valid for the duration of the call.
  void push_frame(rtcc::util::BytesView wire, double ts,
                  std::uint32_t orig_len = 0);

  /// Ends the capture: drains the flow table, computes every stream
  /// disposition with the batch filter's exact semantics, finalizes
  /// kept flows, and returns the merged analysis (byte-identical to
  /// the batch path when no flow was split; `flows` carries the
  /// streaming diagnostics either way). When `per_stream` is non-null
  /// it receives the kept per-stream partials in stream-table order,
  /// matching analyze_trace's out-param. Call at most once.
  [[nodiscard]] rtcc::report::CallAnalysis finish(
      std::vector<rtcc::report::CallAnalysis>* per_stream = nullptr);

  /// Bytes currently buffered by the engine: live flow payloads plus
  /// submitted-but-unfinished sharded work plus the reader's declared
  /// buffer. The running peak lands in FlowStats::live_peak_bytes.
  [[nodiscard]] std::uint64_t live_bytes() const;

  /// The feeding reader declares its own buffer footprint so the peak
  /// accounts every live byte of the streaming path, not just flows.
  void note_external_live(std::uint64_t bytes);

  [[nodiscard]] const rtcc::report::FlowStats& flow_stats() const {
    return table_.stats();
  }

 private:
  void on_evict(FlowRecord& rec, EvictReason reason);
  void condemn(FlowRecord& rec);
  /// Builds the whole-flow batch from `payload`, books the decode-node
  /// counters exactly as the batch path's chunk loop would, and runs
  /// (or submits) the batch analysis core into rec.partial.
  void analyze_record(FlowRecord& rec, std::shared_ptr<FlowPayload> payload);
  void update_peak();

  rtcc::filter::FilterConfig fcfg_;
  rtcc::report::AnalysisOptions opts_;
  StreamOptions sopts_;
  FlowTable table_;
  std::uint32_t linktype_ = rtcc::net::kLinkEthernet;
  rtcc::net::FrameDecoder decoder_;
  rtcc::dpi::ScanningDpi dpi_;
  rtcc::net::IngestStats capture_;
  std::uint64_t raw_bytes_ = 0;
  double clock_ = 0.0;  // max frame ts seen (pcap ts are not monotonic)
  std::uint64_t live_flow_bytes_ = 0;
  std::uint64_t external_live_ = 0;
  std::shared_ptr<std::atomic<std::uint64_t>> in_flight_;  // sharded handoff
  std::size_t nshards_ = 1;
  std::unique_ptr<rtcc::report::ShardedPipeline> pipe_;
  bool finished_ = false;
};

/// The RTCC_STREAM=1 body of report::analyze_trace: pushes every frame
/// of an in-memory trace through a StreamingAnalyzer. Exposed directly
/// so oracles and tests can sweep StreamOptions budgets.
[[nodiscard]] rtcc::report::CallAnalysis analyze_trace_streaming(
    const rtcc::net::Trace& trace, const rtcc::filter::FilterConfig& fcfg,
    const rtcc::report::AnalysisOptions& opts = {},
    const StreamOptions& sopts = stream_options_from_env(),
    std::vector<rtcc::report::CallAnalysis>* per_stream = nullptr);

}  // namespace rtcc::stream
