#include "stream/stream_mode.hpp"

#include <atomic>
#include <cstdlib>

namespace rtcc::stream {

namespace {

std::atomic<bool>& stream_flag() {
  static std::atomic<bool> enabled{[] {
    const char* env = std::getenv("RTCC_STREAM");
    return env != nullptr && std::atoi(env) != 0;
  }()};
  return enabled;
}

}  // namespace

bool stream_enabled() {
  return stream_flag().load(std::memory_order_relaxed);
}

void set_stream_enabled(bool enabled) {
  stream_flag().store(enabled, std::memory_order_relaxed);
}

StreamOptions stream_options_from_env() {
  StreamOptions opts;
  if (const char* env = std::getenv("RTCC_STREAM_FLOWS")) {
    const long v = std::atol(env);
    if (v > 0) opts.max_flows = static_cast<std::size_t>(v);
  }
  if (const char* env = std::getenv("RTCC_STREAM_IDLE")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0) opts.idle_timeout_s = v;
  }
  if (const char* env = std::getenv("RTCC_STREAM_CHUNK")) {
    const long v = std::atol(env);
    if (v > 0) opts.chunk_bytes = static_cast<std::size_t>(v);
  }
  return opts;
}

}  // namespace rtcc::stream
