#include "stream/stream_mode.hpp"

#include <atomic>
#include <cstdint>

#include "util/env_knob.hpp"

namespace rtcc::stream {

namespace {

std::atomic<bool>& stream_flag() {
  static std::atomic<bool> enabled{
      rtcc::util::env_knob_bool("RTCC_STREAM", false)};
  return enabled;
}

}  // namespace

bool stream_enabled() {
  return stream_flag().load(std::memory_order_relaxed);
}

void set_stream_enabled(bool enabled) {
  stream_flag().store(enabled, std::memory_order_relaxed);
}

StreamOptions stream_options_from_env() {
  StreamOptions opts;
  // Strict grammar + documented ranges; a bad value warns once and
  // keeps the default (util/env_knob.hpp). 0 stays meaningful where
  // the default itself is 0 ("unbounded"/"never"); RTCC_STREAM_CHUNK=0
  // would divide the reader into nothing, so its floor is 1.
  opts.max_flows = static_cast<std::size_t>(rtcc::util::env_knob_ll(
      "RTCC_STREAM_FLOWS", static_cast<long long>(opts.max_flows), 0,
      std::int64_t{1} << 40));
  opts.idle_timeout_s = rtcc::util::env_knob_double(
      "RTCC_STREAM_IDLE", opts.idle_timeout_s, 0.0, 1e12);
  opts.chunk_bytes = static_cast<std::size_t>(rtcc::util::env_knob_ll(
      "RTCC_STREAM_CHUNK", static_cast<long long>(opts.chunk_bytes), 1,
      std::int64_t{1} << 30));
  return opts;
}

}  // namespace rtcc::stream
