// RTCC_STREAM: the process-wide switch between the whole-trace batch
// analysis (default) and the one-pass streaming engine
// (stream/engine.hpp).
//
// The knob follows the RTCC_ARENA / RTCC_BATCH / RTCC_SHARDS pattern:
// =0 (the default) keeps the batch path alive as the live equivalence
// oracle, =1 routes analyze_trace through the streaming engine. Both
// paths must produce byte-identical merged reports (after stripping the
// knob-dependent "flows" diagnostic block, the same convention as
// "nodes" and "shards") — testkit's check_stream_parity oracle and the
// metamorphic driver enforce this at every knob combination.
#pragma once

#include <cstddef>

namespace rtcc::stream {

/// True when analyze_trace should run the one-pass streaming engine.
/// Initialised once from RTCC_STREAM (unset / "0" -> false).
[[nodiscard]] bool stream_enabled();
void set_stream_enabled(bool enabled);

/// RAII mode flip used by equivalence tests and A/B benchmarks,
/// mirroring net::ArenaModeGuard.
class StreamModeGuard {
 public:
  explicit StreamModeGuard(bool enabled) : prev_(stream_enabled()) {
    set_stream_enabled(enabled);
  }
  ~StreamModeGuard() { set_stream_enabled(prev_); }
  StreamModeGuard(const StreamModeGuard&) = delete;
  StreamModeGuard& operator=(const StreamModeGuard&) = delete;

 private:
  bool prev_;
};

/// Streaming-engine budgets. The defaults are deliberately unbounded:
/// with no mid-capture eviction a flow is never split, which is what
/// makes streaming output byte-identical to batch at every knob
/// combination (DESIGN.md §6c). Bounding either budget trades that
/// exactness for bounded memory — evicted-then-revived flows become
/// two stream results, accounted by FlowStats::flows_rekeyed.
struct StreamOptions {
  /// Max concurrently-live flows; 0 = unbounded. When exceeded the
  /// least-recently-touched flow is finalized and retired.
  std::size_t max_flows = 0;
  /// Idle expiry: a flow untouched for this many trace-clock seconds is
  /// finalized and retired; 0 = never.
  double idle_timeout_s = 0.0;
  /// Chunked pcap reader granularity (bytes per source read).
  std::size_t chunk_bytes = std::size_t{1} << 22;
};

/// StreamOptions with RTCC_STREAM_FLOWS / RTCC_STREAM_IDLE /
/// RTCC_STREAM_CHUNK env overrides applied (unset / unparseable keeps
/// the default).
[[nodiscard]] StreamOptions stream_options_from_env();

}  // namespace rtcc::stream
