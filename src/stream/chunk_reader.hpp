// Chunked pcap reader: feeds the streaming engine without ever
// materializing the full capture (DESIGN.md §6c).
//
// Where net::read_pcap mmaps (or slurps) the whole file and registers
// zero-copy frame views, this reader keeps exactly one recycled buffer:
// it pulls `chunk_bytes` at a time from a ChunkSource, parses every
// fully-contained record, pushes the frame into the engine, and slides
// the straddling tail to the buffer front before the next read. Peak
// reader memory is max(chunk_bytes, largest record) regardless of
// capture size; the buffer's footprint is reported to the engine so
// FlowStats::live_peak_bytes covers the whole streaming path.
//
// Record-walk semantics are bit-compatible with net/pcap.cpp's
// parse_pcap: same magics (us/ns, both endians), same fail-soft
// accounting (torn_tail ends the walk, bad sub-seconds clamp,
// incl < orig marks snaplen-clipped), same hard errors (short global
// header, unknown magic). A record whose length claims more bytes than
// the source delivers counts one torn_tail and stops — exactly what
// the whole-file walk concludes from the same bytes.
//
// ChunkSource is the live-reader seam: the file and in-memory sources
// here cover offline captures and tests; a socket/ring-buffer source
// can feed the same engine without touching the parser.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "stream/engine.hpp"

namespace rtcc::stream {

/// Pull-based byte source. read() fills up to `max` bytes and returns
/// the count; 0 means end of stream. Short reads are allowed anywhere
/// (the parser buffers until a record completes), so sources can hand
/// out bytes at whatever granularity they naturally produce.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;
  virtual std::size_t read(std::uint8_t* dst, std::size_t max) = 0;
};

/// Sequential stdio reader — never maps or slurps the file.
class FileChunkSource final : public ChunkSource {
 public:
  explicit FileChunkSource(const std::string& path)
      : fp_(std::fopen(path.c_str(), "rb")) {}
  ~FileChunkSource() override {
    if (fp_ != nullptr) std::fclose(fp_);
  }
  FileChunkSource(const FileChunkSource&) = delete;
  FileChunkSource& operator=(const FileChunkSource&) = delete;

  [[nodiscard]] bool ok() const { return fp_ != nullptr; }

  std::size_t read(std::uint8_t* dst, std::size_t max) override {
    return fp_ == nullptr ? 0 : std::fread(dst, 1, max, fp_);
  }

 private:
  std::FILE* fp_;
};

/// Borrowed-buffer source for tests and oracles; `data` must outlive
/// the source. Sweeping tiny chunk sizes over it exercises every
/// carry-over path (reads split mid record-header, mid payload).
class MemoryChunkSource final : public ChunkSource {
 public:
  explicit MemoryChunkSource(rtcc::util::BytesView data) : data_(data) {}

  std::size_t read(std::uint8_t* dst, std::size_t max) override {
    const std::size_t n = std::min(max, data_.size() - pos_);
    std::copy_n(data_.data() + pos_, n, dst);
    pos_ += n;
    return n;
  }

 private:
  rtcc::util::BytesView data_;
  std::size_t pos_ = 0;
};

/// Walks `source` as a pcap byte stream and pushes every record into
/// `engine` (set_linktype + capture_stats + push_frame). Returns false
/// only for hard errors (short global header, unknown magic) with
/// `*error` set; record-level defects are fail-soft and counted in
/// engine.capture_stats(). `chunk_bytes` is the read granularity
/// (clamped to >= 1); the working buffer grows past it only when a
/// single record is larger.
bool stream_pcap(ChunkSource& source, StreamingAnalyzer& engine,
                 std::size_t chunk_bytes, std::string* error = nullptr);

/// Whole streaming pipeline over a pcap file: chunked reader -> flow
/// table -> per-flow batch core. The counterpart of
/// read_pcap + analyze_trace with O(active flows) memory; per_stream
/// mirrors analyze_trace's out-param.
[[nodiscard]] std::optional<rtcc::report::CallAnalysis>
analyze_pcap_streaming(
    const std::string& path, const rtcc::filter::FilterConfig& fcfg,
    const rtcc::report::AnalysisOptions& opts = {},
    const StreamOptions& sopts = stream_options_from_env(),
    std::string* error = nullptr,
    std::vector<rtcc::report::CallAnalysis>* per_stream = nullptr);

}  // namespace rtcc::stream
