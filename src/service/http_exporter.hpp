// Minimal HTTP/1.0 exposition endpoint (service layer, DESIGN.md §7a).
//
// Raw POSIX sockets, no frameworks: binds 127.0.0.1 (port 0 = OS-
// assigned ephemeral, reported by port() — how tests avoid collisions)
// and serves exactly two routes from a background thread:
//
//   GET /metrics  -> MetricsRegistry::render() (Prometheus text 0.0.4)
//   GET /healthz  -> the health callback's string (200) or 503
//
// Shutdown uses the self-pipe idiom: stop() writes one byte into a
// pipe the accept loop polls alongside the listen socket, so the
// thread wakes immediately without signals or timeouts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "service/metrics_registry.hpp"

namespace rtcc::service {

class HttpExporter {
 public:
  /// `healthy` is sampled per /healthz request from the server thread;
  /// it must be thread-safe (e.g. read an atomic).
  HttpExporter(const MetricsRegistry& registry,
               std::function<bool()> healthy);
  ~HttpExporter();
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serving
  /// thread. False with `*error` set on bind/listen failure.
  bool start(std::uint16_t port, std::string* error = nullptr);
  void stop();

  /// The bound port (after start); 0 when not running.
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void serve();

  const MetricsRegistry& registry_;
  std::function<bool()> healthy_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace rtcc::service
