// Pcap drop-folder watcher (service layer, DESIGN.md §7a).
//
// Poll-based, dependency-free: each poll_stable() pass lists *.pcap
// files in the directory and returns only those whose size is
// unchanged since the previous pass — the two-scan stability gate that
// keeps a file still being copied in from being half-read. Processed
// files are renamed in place (".done" / ".err" suffix), so the folder
// doubles as its own ledger and a crashed daemon resumes exactly where
// it stopped.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rtcc::service {

class WatchDir {
 public:
  explicit WatchDir(std::string dir) : dir_(std::move(dir)) {}

  /// One scan pass; returns the .pcap paths that were present with the
  /// same size on the previous pass too, sorted for determinism.
  /// Unreadable directories return empty (the daemon keeps polling).
  [[nodiscard]] std::vector<std::string> poll_stable();

  /// True while any candidate is still waiting for its second scan.
  [[nodiscard]] bool pending() const { return !pending_.empty(); }

  /// Renames `path` to `path + suffix` (".done" / ".err").
  static bool mark(const std::string& path, const char* suffix);

 private:
  std::string dir_;
  std::map<std::string, std::uintmax_t> pending_;  // path -> size last seen
};

}  // namespace rtcc::service
