// Thread-safe named-counter registry with Prometheus text exposition
// (service layer, DESIGN.md §7a).
//
// The daemon thread updates counters after every processed capture and
// every epoch; the HTTP exporter thread renders them on demand. Names
// follow the Prometheus data model and may carry inline label sets
// ('rtcc_compliance_messages{protocol="rtp"}') — the registry treats
// the whole string as the series key, which keeps it a flat map and
// the exposition deterministic (std::map order).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace rtcc::service {

class MetricsRegistry {
 public:
  /// Sets a gauge/counter to an absolute value.
  void set(std::string_view name, double value);
  /// Adds to a counter (creates at delta if absent).
  void add(std::string_view name, double delta);
  [[nodiscard]] double get(std::string_view name) const;

  /// Prometheus text exposition format (version 0.0.4): one
  /// "# TYPE <base> gauge" line per base metric name (label sets
  /// share their base's TYPE line), then "name value" lines. Integral
  /// values render without a decimal point.
  [[nodiscard]] std::string render() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> values_;
};

}  // namespace rtcc::service
