// Incremental JSONL verdict stream (service layer, DESIGN.md §7a).
//
// One line per record, two record types:
//
//   {"type":"epoch", "epoch":N, "clock_end":t, "frames":n, "bytes":n,
//    "final":b, "verdicts":n, <flow-ledger counters>}
//   {"type":"verdict", "epoch":N, "ordinal":n, "flow":"a:p<->b:q",
//    "transport":"udp", "first_ts":t, "last_ts":t, "packets":n,
//    "disposition":"kept", "final":b, "amends":b
//    [, "messages":n, "compliant":n]}
//
// The verdict lines carry the engine's exactly-once/amendment
// semantics (stream/engine.hpp FlowVerdict): reconciling the stream —
// last line per ordinal wins — reproduces the batch report's
// per-stream dispositions, and the epoch lines' frame/byte sums equal
// the pushed totals. messages/compliant appear on kept verdicts whose
// per-stream analysis was attached.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "stream/engine.hpp"

namespace rtcc::service {

class VerdictWriter {
 public:
  /// `path` "-" writes to stdout; anything else is opened for append.
  explicit VerdictWriter(const std::string& path);
  ~VerdictWriter();
  VerdictWriter(const VerdictWriter&) = delete;
  VerdictWriter& operator=(const VerdictWriter&) = delete;

  [[nodiscard]] bool ok() const { return fp_ != nullptr; }

  /// Writes the epoch summary line followed by one line per verdict,
  /// then flushes — a consumer tailing the file sees complete epochs.
  void write_epoch(const rtcc::stream::EpochReport& ep);

  [[nodiscard]] std::uint64_t verdict_lines() const { return verdict_lines_; }
  [[nodiscard]] std::uint64_t epoch_lines() const { return epoch_lines_; }

 private:
  std::FILE* fp_ = nullptr;
  bool owned_ = false;
  std::uint64_t verdict_lines_ = 0;
  std::uint64_t epoch_lines_ = 0;
};

}  // namespace rtcc::service
