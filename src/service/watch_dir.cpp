#include "service/watch_dir.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>

namespace rtcc::service {

namespace fs = std::filesystem;

std::vector<std::string> WatchDir::poll_stable() {
  std::vector<std::string> ready;
  std::map<std::string, std::uintmax_t> seen;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec) || ec) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".pcap") continue;
    const std::uintmax_t size = entry.file_size(ec);
    if (ec) continue;
    seen.emplace(p.string(), size);
  }
  for (const auto& [path, size] : seen) {
    const auto it = pending_.find(path);
    if (it != pending_.end() && it->second == size) ready.push_back(path);
  }
  // Everything still growing (or new) waits for the next pass; files
  // returned as ready are expected to be renamed away by the caller,
  // but stay pending until they actually disappear so a failed rename
  // retries rather than silently dropping the capture.
  pending_ = std::move(seen);
  std::sort(ready.begin(), ready.end());
  return ready;
}

bool WatchDir::mark(const std::string& path, const char* suffix) {
  std::error_code ec;
  fs::rename(path, path + suffix, ec);
  return !ec;
}

}  // namespace rtcc::service
