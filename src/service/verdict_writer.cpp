#include "service/verdict_writer.hpp"

#include "filter/pipeline.hpp"
#include "net/headers.hpp"
#include "util/json.hpp"

namespace rtcc::service {

VerdictWriter::VerdictWriter(const std::string& path) {
  if (path == "-") {
    fp_ = stdout;
  } else {
    fp_ = std::fopen(path.c_str(), "ab");
    owned_ = true;
  }
}

VerdictWriter::~VerdictWriter() {
  if (fp_ != nullptr && owned_) std::fclose(fp_);
}

void VerdictWriter::write_epoch(const rtcc::stream::EpochReport& ep) {
  if (fp_ == nullptr) return;
  {
    rtcc::util::JsonWriter w;
    w.begin_object();
    w.key("type").value("epoch");
    w.key("epoch").value(ep.epoch);
    w.key("clock_end").value(ep.clock_end);
    w.key("frames").value(ep.frames);
    w.key("bytes").value(ep.bytes);
    w.key("final").value(ep.final_pass);
    w.key("verdicts").value(static_cast<std::uint64_t>(ep.verdicts.size()));
    w.key("flows_seen").value(ep.flows.flows_seen);
    w.key("flows_live_peak").value(ep.flows.flows_live);
    w.key("evictions").value(ep.flows.evictions);
    w.key("finalized").value(ep.flows.finalized);
    w.key("flows_rekeyed").value(ep.flows.flows_rekeyed);
    w.key("live_peak_bytes").value(ep.flows.live_peak_bytes);
    w.end_object();
    std::fputs(w.str().c_str(), fp_);
    std::fputc('\n', fp_);
    ++epoch_lines_;
  }
  for (const auto& v : ep.verdicts) {
    rtcc::util::JsonWriter w;
    w.begin_object();
    w.key("type").value("verdict");
    w.key("epoch").value(ep.epoch);
    w.key("ordinal").value(v.ordinal);
    w.key("flow").value(v.key.to_string());
    w.key("transport")
        .value(v.key.transport == rtcc::net::Transport::kUdp ? "udp" : "tcp");
    w.key("first_ts").value(v.first_ts);
    w.key("last_ts").value(v.last_ts);
    w.key("packets").value(v.packets);
    w.key("disposition").value(rtcc::filter::to_string(v.disposition));
    w.key("final").value(v.final_pass);
    w.key("amends").value(v.amends);
    if (v.partial != nullptr) {
      w.key("messages").value(v.partial->total_messages());
      w.key("compliant").value(v.partial->total_compliant());
    }
    w.end_object();
    std::fputs(w.str().c_str(), fp_);
    std::fputc('\n', fp_);
    ++verdict_lines_;
  }
  std::fflush(fp_);
}

}  // namespace rtcc::service
