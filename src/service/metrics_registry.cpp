#include "service/metrics_registry.hpp"

#include <cmath>
#include <cstdio>

namespace rtcc::service {

void MetricsRegistry::set(std::string_view name, double value) {
  std::lock_guard lock(mutex_);
  values_[std::string(name)] = value;
}

void MetricsRegistry::add(std::string_view name, double delta) {
  std::lock_guard lock(mutex_);
  values_[std::string(name)] += delta;
}

double MetricsRegistry::get(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = values_.find(std::string(name));
  return it == values_.end() ? 0.0 : it->second;
}

std::string MetricsRegistry::render() const {
  std::lock_guard lock(mutex_);
  std::string out;
  std::string last_base;
  for (const auto& [name, value] : values_) {
    const std::string base = name.substr(0, name.find('{'));
    if (base != last_base) {
      out += "# TYPE " + base + " gauge\n";
      last_base = base;
    }
    char buf[64];
    if (std::nearbyint(value) == value && std::fabs(value) < 1e15) {
      std::snprintf(buf, sizeof buf, "%.0f", value);
    } else {
      std::snprintf(buf, sizeof buf, "%.17g", value);
    }
    out += name;
    out += ' ';
    out += buf;
    out += '\n';
  }
  return out;
}

}  // namespace rtcc::service
