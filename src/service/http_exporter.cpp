#include "service/http_exporter.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rtcc::service {

namespace {

void close_if(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Full write with EINTR retry; best-effort (the peer may close early).
void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* reason,
                          const std::string& body,
                          const char* content_type) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpExporter::HttpExporter(const MetricsRegistry& registry,
                           std::function<bool()> healthy)
    : registry_(registry), healthy_(std::move(healthy)) {}

HttpExporter::~HttpExporter() { stop(); }

bool HttpExporter::start(std::uint16_t port, std::string* error) {
  const auto fail = [&](const char* what) {
    if (error != nullptr)
      *error = std::string(what) + ": " + std::strerror(errno);
    close_if(listen_fd_);
    close_if(stop_pipe_[0]);
    close_if(stop_pipe_[1]);
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    return fail("bind");
  if (::listen(listen_fd_, 16) != 0) return fail("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return fail("getsockname");
  port_ = ntohs(addr.sin_port);

  if (::pipe(stop_pipe_) != 0) return fail("pipe");

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void HttpExporter::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  close_if(listen_fd_);
  close_if(stop_pipe_[0]);
  close_if(stop_pipe_[1]);
  port_ = 0;
}

void HttpExporter::serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // One short read covers any sane "GET <path> HTTP/1.x" request
    // line; this endpoint serves scrapers, not browsers.
    char buf[2048];
    const ssize_t n = ::read(client, buf, sizeof buf - 1);
    if (n <= 0) {
      ::close(client);
      continue;
    }
    buf[n] = '\0';
    std::string path;
    if (std::strncmp(buf, "GET ", 4) == 0) {
      const char* start = buf + 4;
      const char* end = std::strchr(start, ' ');
      if (end != nullptr) path.assign(start, end);
    }

    std::string response;
    if (path == "/metrics") {
      response = http_response(200, "OK", registry_.render(),
                               "text/plain; version=0.0.4");
    } else if (path == "/healthz") {
      const bool up = !healthy_ || healthy_();
      response = up ? http_response(200, "OK", "ok\n", "text/plain")
                    : http_response(503, "Service Unavailable", "draining\n",
                                    "text/plain");
    } else {
      response = http_response(404, "Not Found", "not found\n", "text/plain");
    }
    write_all(client, response);
    ::close(client);
  }
}

}  // namespace rtcc::service
