// rtccd: resident compliance-analysis service (DESIGN.md §7a).
//
// Wraps one long-lived StreamingAnalyzer behind two ingest paths — a
// pcap drop folder (WatchDir) and an optional unix-domain stream
// socket, each accepted connection carrying one pcap byte stream — and
// three output surfaces: an incremental JSONL verdict stream
// (VerdictWriter, driven by the engine's epoch sink), a Prometheus
// /metrics endpoint, and /healthz. One engine spans every capture, so
// flows, cross-flow filter evidence, and the ingest ledger accumulate
// across drop-files exactly as they would in a single concatenated
// capture; the batch pipeline over the same frames is the equivalence
// oracle (tests/test_service.cpp).
//
// Lifecycle: start() binds sockets and the exporter; run() polls
// ingest sources until request_stop() (SIGTERM/SIGINT via
// install_signal_handlers, or programmatic), then drains — closes the
// final epoch through finish(), flushes the JSONL stream, publishes
// the final ledger to /metrics — and returns 0. `oneshot` processes
// whatever is (or lands) in the folder once and then drains, which is
// what the CI smoke test runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "report/metrics.hpp"
#include "service/http_exporter.hpp"
#include "service/metrics_registry.hpp"
#include "service/verdict_writer.hpp"
#include "service/watch_dir.hpp"
#include "stream/engine.hpp"

namespace rtcc::service {

/// FilterConfig for resident monitoring: no experiment schedule, so
/// the call window spans all representable capture time (stage 1
/// encloses every stream) and the stage-2 evidence sets stay empty
/// unless the caller configures blocklists/devices/ports. With it the
/// daemon reports on *all* traffic; pass an experiment config (e.g.
/// emul::group_filter_config) to reproduce batch-filter semantics.
[[nodiscard]] rtcc::filter::FilterConfig keep_all_filter_config();

struct DaemonOptions {
  std::string watch_dir;     // pcap drop folder; empty = socket-only
  std::string socket_path;   // unix ingest socket; empty = folder-only
  std::string jsonl_path = "-";  // verdict stream; "-" = stdout
  bool enable_metrics = true;
  std::uint16_t metrics_port = 0;  // 0 = OS-assigned (see Daemon::port())
  double epoch_s = 1.0;            // capture-clock epoch length; see
                                   // service_epoch_from_env()
  int poll_ms = 50;                // idle sleep between ingest polls
  bool oneshot = false;            // drain after the folder empties
  rtcc::filter::FilterConfig fcfg = keep_all_filter_config();
  rtcc::report::AnalysisOptions analysis;
  stream::StreamOptions stream;
};

/// RTCC_SERVICE_EPOCH (seconds, [0, 1e9]; 0 = per-capture epochs only,
/// default 1.0). Invalid values warn once and fall back, like every
/// other RTCC_* knob.
[[nodiscard]] double service_epoch_from_env();

class Daemon {
 public:
  explicit Daemon(DaemonOptions opts);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Opens the verdict stream, binds the ingest socket and metrics
  /// endpoint. False with `*error` set on any failure.
  bool start(std::string* error = nullptr);

  /// Ingest/emit loop; blocks until request_stop() (or oneshot drain),
  /// then finalizes. Returns the process exit code (0 = clean drain).
  int run();

  /// Async-signal-safe stop request; run() drains and returns.
  void request_stop() { stop_.store(true, std::memory_order_release); }

  /// Installs SIGTERM/SIGINT handlers that request_stop() this daemon
  /// (at most one daemon per process).
  static void install_signal_handlers(Daemon* daemon);

  [[nodiscard]] std::uint16_t metrics_port() const {
    return exporter_ ? exporter_->port() : 0;
  }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// The merged end-of-run analysis; set once run() returns.
  [[nodiscard]] const std::optional<rtcc::report::CallAnalysis>&
  final_report() const {
    return final_;
  }

 private:
  bool process_file(const std::string& path);
  bool poll_socket();  // accepts + ingests one connection; true if any
  void on_epoch(const stream::EpochReport& ep);
  void publish_engine_metrics();

  DaemonOptions opts_;
  MetricsRegistry metrics_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  stream::StreamingAnalyzer engine_;
  WatchDir watch_;
  std::unique_ptr<VerdictWriter> writer_;
  std::unique_ptr<HttpExporter> exporter_;
  int ingest_fd_ = -1;  // listening unix socket
  std::optional<rtcc::report::CallAnalysis> final_;
  /// Per-ordinal compliance contribution of kept verdicts, so an
  /// amendment (kept -> removed) retracts exactly what it once added.
  struct Contribution {
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> by_proto;
  };
  std::map<std::uint64_t, Contribution> contributions_;
};

}  // namespace rtcc::service
