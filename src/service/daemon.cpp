#include "service/daemon.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <set>
#include <thread>
#include <utility>

#include "proto/common.hpp"
#include "stream/chunk_reader.hpp"
#include "util/env_knob.hpp"

namespace rtcc::service {

namespace {

Daemon* g_signal_daemon = nullptr;

void handle_stop_signal(int /*signo*/) {
  if (g_signal_daemon != nullptr) g_signal_daemon->request_stop();
}

/// Prometheus label value for a protocol ("STUN/TURN" -> "stun_turn").
std::string proto_label(rtcc::proto::Protocol p) {
  std::string s = rtcc::proto::to_string(p);
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    } else if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))) {
      c = '_';
    }
  }
  return s;
}

std::string series(const char* base, const std::string& label) {
  return std::string(base) + "{protocol=\"" + label + "\"}";
}

constexpr rtcc::proto::Protocol kAllProtocols[] = {
    rtcc::proto::Protocol::kStunTurn, rtcc::proto::Protocol::kRtp,
    rtcc::proto::Protocol::kRtcp, rtcc::proto::Protocol::kQuic};

/// Byte source over one accepted ingest connection. Blocking reads;
/// a stop request (SIGTERM arriving mid-read, no SA_RESTART) ends the
/// stream early so the drain is never held hostage by a stalled peer.
class FdChunkSource final : public rtcc::stream::ChunkSource {
 public:
  FdChunkSource(int fd, const std::atomic<bool>* stop)
      : fd_(fd), stop_(stop) {}

  std::size_t read(std::uint8_t* dst, std::size_t max) override {
    for (;;) {
      const ssize_t n = ::read(fd_, dst, max);
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno != EINTR) return 0;
      if (stop_ != nullptr && stop_->load(std::memory_order_acquire)) return 0;
    }
  }

 private:
  int fd_;
  const std::atomic<bool>* stop_;
};

}  // namespace

rtcc::filter::FilterConfig keep_all_filter_config() {
  rtcc::filter::FilterConfig cfg;
  // Widen the call window to all representable capture time: stage 1
  // encloses every stream, nothing lands "outside the window", so the
  // stage-2 evidence sets (outside 3-tuples, pre-call pairs) stay
  // empty. Blocklist/devices/ports default empty too.
  cfg.schedule.capture_start = -1e18;
  cfg.schedule.call_start = -1e18;
  cfg.schedule.call_end = 1e18;
  cfg.schedule.capture_end = 1e18;
  cfg.schedule.slack = 0.0;
  return cfg;
}

double service_epoch_from_env() {
  return rtcc::util::env_knob_double("RTCC_SERVICE_EPOCH", 1.0, 0.0, 1e9);
}

Daemon::Daemon(DaemonOptions opts)
    : opts_(std::move(opts)),
      engine_(rtcc::net::kLinkEthernet, opts_.fcfg, opts_.analysis,
              opts_.stream),
      watch_(opts_.watch_dir) {}

Daemon::~Daemon() {
  if (exporter_) exporter_->stop();
  if (ingest_fd_ >= 0) {
    ::close(ingest_fd_);
    ::unlink(opts_.socket_path.c_str());
  }
  if (g_signal_daemon == this) g_signal_daemon = nullptr;
}

bool Daemon::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };

  writer_ = std::make_unique<VerdictWriter>(opts_.jsonl_path);
  if (!writer_->ok())
    return fail("cannot open verdict stream: " + opts_.jsonl_path);

  if (!opts_.socket_path.empty()) {
    sockaddr_un addr{};
    if (opts_.socket_path.size() >= sizeof addr.sun_path)
      return fail("ingest socket path too long: " + opts_.socket_path);
    ingest_fd_ =
        ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (ingest_fd_ < 0)
      return fail(std::string("ingest socket: ") + std::strerror(errno));
    ::unlink(opts_.socket_path.c_str());  // stale bind from a crash
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(ingest_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0)
      return fail("bind " + opts_.socket_path + ": " + std::strerror(errno));
    if (::listen(ingest_fd_, 8) != 0)
      return fail(std::string("listen: ") + std::strerror(errno));
  }

  if (opts_.enable_metrics) {
    exporter_ = std::make_unique<HttpExporter>(metrics_, [this] {
      return !draining_.load(std::memory_order_acquire);
    });
    std::string err;
    if (!exporter_->start(opts_.metrics_port, &err))
      return fail("metrics endpoint: " + err);
  }

  engine_.set_epoch(opts_.epoch_s, [this](const rtcc::stream::EpochReport& ep) {
    on_epoch(ep);
  });
  // Pre-seed the counter series so a scrape always sees the whole
  // service ledger, zeros included.
  for (const char* name :
       {"rtcc_service_files_processed", "rtcc_service_files_failed",
        "rtcc_service_socket_streams", "rtcc_service_socket_failed",
        "rtcc_service_epochs", "rtcc_verdicts_emitted",
        "rtcc_verdicts_amended"})
    metrics_.set(name, 0);
  publish_engine_metrics();
  return true;
}

int Daemon::run() {
  // Files already handed out by poll_stable() but whose rename failed
  // (e.g. read-only folder): never re-ingest them.
  std::set<std::string> handled;

  while (!stop_.load(std::memory_order_acquire)) {
    bool worked = false;
    if (!opts_.watch_dir.empty()) {
      for (const auto& path : watch_.poll_stable()) {
        if (!handled.insert(path).second) continue;
        process_file(path);
        worked = true;
        if (stop_.load(std::memory_order_acquire)) break;
      }
    }
    if (ingest_fd_ >= 0 && poll_socket()) worked = true;
    if (!worked) {
      if (opts_.oneshot && !watch_.pending()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(opts_.poll_ms));
    }
  }

  // Drain: flag /healthz 503, close the final epoch through the sink,
  // publish the authoritative end-of-run ledger.
  draining_.store(true, std::memory_order_release);
  final_ = engine_.finish();
  publish_engine_metrics();
  for (const auto proto : kAllProtocols) {
    const std::string label = proto_label(proto);
    const auto it = final_->protocols.find(proto);
    const std::uint64_t messages = it == final_->protocols.end()
                                       ? 0
                                       : it->second.messages;
    const std::uint64_t compliant = it == final_->protocols.end()
                                        ? 0
                                        : it->second.compliant;
    metrics_.set(series("rtcc_compliance_messages", label),
                 static_cast<double>(messages));
    metrics_.set(series("rtcc_compliance_compliant", label),
                 static_cast<double>(compliant));
    if (messages > 0)
      metrics_.set(series("rtcc_compliance_rate", label),
                   static_cast<double>(compliant) /
                       static_cast<double>(messages));
  }
  metrics_.set("rtcc_service_draining", 1);
  if (writer_) writer_.reset();  // flush + close the JSONL stream
  if (exporter_) exporter_->stop();
  return 0;
}

bool Daemon::process_file(const std::string& path) {
  rtcc::stream::FileChunkSource src(path);
  std::string err;
  bool ok = src.ok();
  if (!ok) err = "cannot open";
  if (ok) ok = rtcc::stream::stream_pcap(src, engine_, opts_.stream.chunk_bytes,
                                         &err);
  engine_.finish_epoch();  // flush this capture's retired verdicts
  publish_engine_metrics();
  // Completion counters last: once a scrape sees the file counted, the
  // ledger it contributed to is already published.
  if (ok) {
    WatchDir::mark(path, ".done");
    metrics_.add("rtcc_service_files_processed", 1);
  } else {
    std::fprintf(stderr, "rtccd: %s: %s\n", path.c_str(), err.c_str());
    WatchDir::mark(path, ".err");
    metrics_.add("rtcc_service_files_failed", 1);
  }
  return ok;
}

bool Daemon::poll_socket() {
  const int client = ::accept(ingest_fd_, nullptr, nullptr);
  if (client < 0) return false;  // EAGAIN and friends: nothing waiting
  FdChunkSource src(client, &stop_);
  std::string err;
  const bool ok = rtcc::stream::stream_pcap(src, engine_,
                                            opts_.stream.chunk_bytes, &err);
  ::close(client);
  engine_.finish_epoch();
  publish_engine_metrics();
  if (ok) {
    metrics_.add("rtcc_service_socket_streams", 1);
  } else {
    std::fprintf(stderr, "rtccd: socket ingest: %s\n", err.c_str());
    metrics_.add("rtcc_service_socket_failed", 1);
  }
  return true;
}

void Daemon::on_epoch(const rtcc::stream::EpochReport& ep) {
  if (writer_) writer_->write_epoch(ep);
  metrics_.add("rtcc_service_epochs", 1);
  for (const auto& v : ep.verdicts) {
    if (v.amends) {
      metrics_.add("rtcc_verdicts_amended", 1);
      // kept -> removed amendment: retract exactly what the earlier
      // kept verdict's attached analysis added to the running series.
      const auto it = contributions_.find(v.ordinal);
      if (it != contributions_.end()) {
        for (const auto& [label, mc] : it->second.by_proto) {
          metrics_.add(series("rtcc_compliance_messages", label),
                       -static_cast<double>(mc.first));
          metrics_.add(series("rtcc_compliance_compliant", label),
                       -static_cast<double>(mc.second));
        }
        contributions_.erase(it);
      }
    } else {
      metrics_.add("rtcc_verdicts_emitted", 1);
      if (v.partial != nullptr &&
          v.disposition == rtcc::filter::Disposition::kKept) {
        Contribution c;
        for (const auto& [proto, st] : v.partial->protocols) {
          const std::string label = proto_label(proto);
          c.by_proto[label] = {st.messages, st.compliant};
          metrics_.add(series("rtcc_compliance_messages", label),
                       static_cast<double>(st.messages));
          metrics_.add(series("rtcc_compliance_compliant", label),
                       static_cast<double>(st.compliant));
        }
        contributions_[v.ordinal] = std::move(c);
      }
    }
  }
  for (const auto proto : kAllProtocols) {
    const std::string label = proto_label(proto);
    const double messages = metrics_.get(series("rtcc_compliance_messages",
                                                label));
    if (messages > 0)
      metrics_.set(series("rtcc_compliance_rate", label),
                   metrics_.get(series("rtcc_compliance_compliant", label)) /
                       messages);
  }
}

void Daemon::publish_engine_metrics() {
  metrics_.set("rtcc_flows_live",
               static_cast<double>(engine_.live_flow_count()));
  const auto& fs = engine_.flow_stats();
  metrics_.set("rtcc_flows_seen", static_cast<double>(fs.flows_seen));
  metrics_.set("rtcc_flows_live_peak", static_cast<double>(fs.flows_live));
  metrics_.set("rtcc_flows_evicted", static_cast<double>(fs.evictions));
  metrics_.set("rtcc_flows_finalized", static_cast<double>(fs.finalized));
  metrics_.set("rtcc_flows_rekeyed", static_cast<double>(fs.flows_rekeyed));
  metrics_.set("rtcc_live_peak_bytes",
               static_cast<double>(fs.live_peak_bytes));

  const rtcc::net::IngestStats ing = engine_.ingest_totals();
  metrics_.set("rtcc_ingest_frames_seen",
               static_cast<double>(ing.frames_seen));
  metrics_.set("rtcc_ingest_torn_tail", static_cast<double>(ing.torn_tail));
  metrics_.set("rtcc_ingest_snaplen_clipped",
               static_cast<double>(ing.snaplen_clipped));
  metrics_.set("rtcc_ingest_bad_usec", static_cast<double>(ing.bad_usec));
  metrics_.set("rtcc_ingest_frames_decoded",
               static_cast<double>(ing.frames_decoded));
  metrics_.set("rtcc_ingest_vlan_stripped",
               static_cast<double>(ing.vlan_stripped));
  metrics_.set("rtcc_ingest_fragments_seen",
               static_cast<double>(ing.fragments_seen));
  metrics_.set("rtcc_ingest_fragments_reassembled",
               static_cast<double>(ing.fragments_reassembled));
  metrics_.set("rtcc_ingest_fragments_expired",
               static_cast<double>(ing.fragments_expired));
  metrics_.set("rtcc_ingest_non_ip", static_cast<double>(ing.non_ip));
  metrics_.set("rtcc_ingest_clipped_undecodable",
               static_cast<double>(ing.clipped_undecodable));
  metrics_.set("rtcc_ingest_undecodable",
               static_cast<double>(ing.undecodable));
  metrics_.set("rtcc_ingest_unsupported_linktype",
               static_cast<double>(ing.unsupported_linktype));
}

void Daemon::install_signal_handlers(Daemon* daemon) {
  g_signal_daemon = daemon;
  struct sigaction sa {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking ingest reads must wake
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

}  // namespace rtcc::service
