#include "util/bytes.hpp"

#include <algorithm>

namespace rtcc::util {

bool ByteReader::take(std::size_t n, const std::uint8_t** out) {
  if (failed_ || remaining() < n) {
    failed_ = true;
    *out = nullptr;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  const std::uint8_t* p = nullptr;
  return take(1, &p) ? p[0] : 0;
}

std::uint16_t ByteReader::u16() {
  const std::uint8_t* p = nullptr;
  return take(2, &p) ? load_be16(p) : 0;
}

std::uint32_t ByteReader::u24() {
  const std::uint8_t* p = nullptr;
  if (!take(3, &p)) return 0;
  return (std::uint32_t{p[0]} << 16) | (std::uint32_t{p[1]} << 8) | p[2];
}

std::uint32_t ByteReader::u32() {
  const std::uint8_t* p = nullptr;
  return take(4, &p) ? load_be32(p) : 0;
}

std::uint64_t ByteReader::u64() {
  const std::uint8_t* p = nullptr;
  return take(8, &p) ? load_be64(p) : 0;
}

BytesView ByteReader::bytes(std::size_t n) {
  const std::uint8_t* p = nullptr;
  return take(n, &p) ? BytesView{p, n} : BytesView{};
}

Bytes ByteReader::copy(std::size_t n) {
  BytesView v = bytes(n);
  return Bytes(v.begin(), v.end());
}

void ByteReader::skip(std::size_t n) {
  const std::uint8_t* p = nullptr;
  (void)take(n, &p);
}

void ByteReader::seek(std::size_t pos) {
  if (pos > data_.size()) {
    failed_ = true;
    return;
  }
  pos_ = pos;
}

std::uint8_t ByteReader::peek_u8(std::size_t ahead) const {
  return remaining() >= ahead + 1 ? data_[pos_ + ahead] : 0;
}

std::uint16_t ByteReader::peek_u16(std::size_t ahead) const {
  return remaining() >= ahead + 2 ? load_be16(data_.data() + pos_ + ahead) : 0;
}

std::uint32_t ByteReader::peek_u32(std::size_t ahead) const {
  return remaining() >= ahead + 4 ? load_be32(data_.data() + pos_ + ahead) : 0;
}

ByteWriter& ByteWriter::u8(std::uint8_t v) {
  buf_.push_back(v);
  return *this;
}

ByteWriter& ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
  return *this;
}

ByteWriter& ByteWriter::u24(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
  return *this;
}

ByteWriter& ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
  return *this;
}

ByteWriter& ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
  return *this;
}

ByteWriter& ByteWriter::raw(BytesView v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
  return *this;
}

ByteWriter& ByteWriter::str(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
  return *this;
}

ByteWriter& ByteWriter::fill(std::uint8_t value, std::size_t count) {
  buf_.insert(buf_.end(), count, value);
  return *this;
}

void ByteWriter::patch_u16(std::size_t at, std::uint16_t v) {
  if (at + 2 <= buf_.size()) store_be16(buf_.data() + at, v);
}

void ByteWriter::patch_u32(std::size_t at, std::uint32_t v) {
  if (at + 4 <= buf_.size()) store_be32(buf_.data() + at, v);
}

}  // namespace rtcc::util
