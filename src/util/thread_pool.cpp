#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/env_knob.hpp"

namespace rtcc::util {

struct ThreadPool::Batch {
  /// Next index to steal; may overshoot n (each overshooting thief just
  /// leaves). fetch_add here IS the steal operation.
  std::atomic<std::size_t> next{0};
  /// Indices whose fn() call has returned (or thrown).
  std::atomic<std::size_t> done{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(1u, threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    return static_cast<unsigned>(rtcc::util::env_knob_ll(
        "RTCC_THREADS", static_cast<long long>(hw), 1, 1024));
  }());
  return pool;
}

void ThreadPool::run_batch(Batch& b) {
  for (;;) {
    const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.n) return;
    try {
      (*b.fn)(i);
    } catch (...) {
      std::lock_guard lk(b.mutex);
      if (!b.error) b.error = std::current_exception();
    }
    if (b.done.fetch_add(1, std::memory_order_acq_rel) + 1 == b.n) {
      // Lock pairs with the waiter's predicate check so the notify
      // cannot slip between its test and its wait.
      std::lock_guard lk(b.mutex);
      b.done_cv.notify_all();
    }
  }
}

void ThreadPool::retire_if_exhausted(const std::shared_ptr<Batch>& b) {
  std::lock_guard lk(mutex_);
  if (b->next.load(std::memory_order_relaxed) < b->n) return;
  const auto it = std::find(queue_.begin(), queue_.end(), b);
  if (it != queue_.end()) queue_.erase(it);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lk(mutex_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to steal
      batch = queue_.front();
    }
    run_batch(*batch);
    retire_if_exhausted(batch);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {  // nothing to steal; skip the queue round-trip
    fn(0);
    return;
  }

  const auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  {
    std::lock_guard lk(mutex_);
    queue_.push_back(batch);
  }
  work_cv_.notify_all();

  // Caller participates: steal until the cursor runs out, then wait for
  // in-flight thieves to finish their last index.
  run_batch(*batch);
  retire_if_exhausted(batch);
  {
    std::unique_lock lk(batch->mutex);
    batch->done_cv.wait(
        lk, [&] { return batch->done.load(std::memory_order_acquire) >= n; });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace rtcc::util
