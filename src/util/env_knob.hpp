// Hardened RTCC_* environment-knob parsing.
//
// Every runtime knob in the tree (RTCC_BATCH, RTCC_SHARDS,
// RTCC_STREAM_*, ...) used to go through bare atoi/atol/strtoul, which
// silently accept garbage: "abc" parses as 0, "-3" flows into unsigned
// widths, "99999999999999999999" saturates without a word, and "12abc"
// drops its tail. A mistyped knob then runs the wrong configuration
// with no hint why. These helpers make every knob strict: the whole
// value must parse, it must sit inside the knob's documented range,
// and anything else produces a one-line stderr warning (once per knob
// per process) before falling back to the built-in default.
//
// The string-level parsers are pure so the bad-input table is unit
// testable without touching the process environment
// (tests/test_env_knob.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace rtcc::util {

/// Strict integer parse: optional sign, decimal digits, surrounding
/// ASCII whitespace allowed, nothing else. nullopt on empty input,
/// trailing junk, or overflow of long long.
[[nodiscard]] std::optional<long long> parse_knob_ll(std::string_view value);

/// Strict floating parse (strtod grammar), whole-string, finite.
[[nodiscard]] std::optional<double> parse_knob_double(std::string_view value);

/// Boolean knob: 0/1/true/false/on/off/yes/no (case-insensitive).
[[nodiscard]] std::optional<bool> parse_knob_bool(std::string_view value);

/// getenv + strict parse + range check. Unset returns `fallback`
/// silently; set-but-invalid (syntax or outside [min, max]) warns once
/// on stderr and returns `fallback`.
[[nodiscard]] long long env_knob_ll(const char* name, long long fallback,
                                    long long min, long long max);
[[nodiscard]] double env_knob_double(const char* name, double fallback,
                                     double min, double max);
[[nodiscard]] bool env_knob_bool(const char* name, bool fallback);

/// Emits the one-line "ignoring bad knob" warning for `name` (at most
/// once per process per knob) — for knobs with bespoke grammars
/// (RTCC_SHARDS' "auto", RTCC_SIMD's level names) that do their own
/// parsing but want the same reporting.
void warn_bad_knob(const char* name, std::string_view value,
                   const char* expected);

}  // namespace rtcc::util
