// Minimal JSON writer — enough to export analysis results for
// downstream tooling (no parsing, no DOM; strictly a serializer).
// Escapes strings per RFC 8259 and renders numbers with enough
// precision to round-trip doubles.
#pragma once

#include <string>
#include <vector>

namespace rtcc::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a key inside an object; follow with a value call.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view{s}); }
  JsonWriter& value(double d);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool b);
  JsonWriter& null();

  [[nodiscard]] const std::string& str() const& { return out_; }
  [[nodiscard]] std::string str() && { return std::move(out_); }

 private:
  void comma_if_needed();
  void push_scope(bool is_object);
  void pop_scope();

  std::string out_;
  // One bool per open scope: whether a value was already emitted.
  std::vector<bool> has_value_;
  bool after_key_ = false;
};

[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace rtcc::util
