// Big-endian byte stream reader/writer used by every protocol codec.
//
// Network protocols in this repo (STUN, RTP, RTCP, QUIC, TLS, IP/UDP/TCP)
// are all big-endian on the wire, so the reader/writer default to
// network byte order. Readers never throw: out-of-bounds reads flip a
// sticky error flag and return zeroes, so codecs can parse speculatively
// (the DPI scans arbitrary offsets) and check `ok()` once at the end.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rtcc::util {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Sequential big-endian reader over a non-owning byte view.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}
  ByteReader(const std::uint8_t* p, std::size_t n) : data_(p, n) {}

  [[nodiscard]] std::size_t offset() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const {
    return pos_ <= data_.size() ? data_.size() - pos_ : 0;
  }
  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }

  /// Reads fail silently after the first error; callers check ok().
  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u24();  // 3-byte big-endian (RTCP app data, TLS lengths)
  std::uint32_t u32();
  std::uint64_t u64();

  /// Returns a view of `n` bytes and advances; empty view + error on overrun.
  BytesView bytes(std::size_t n);
  /// Copies `n` bytes out; empty vector + error on overrun.
  Bytes copy(std::size_t n);

  void skip(std::size_t n);
  /// Absolute reposition; out-of-range positions set the error flag.
  void seek(std::size_t pos);

  /// Peek without advancing. Returns 0 and does NOT set error on overrun
  /// (peeks are used for speculative protocol sniffing).
  [[nodiscard]] std::uint8_t peek_u8(std::size_t ahead = 0) const;
  [[nodiscard]] std::uint16_t peek_u16(std::size_t ahead = 0) const;
  [[nodiscard]] std::uint32_t peek_u32(std::size_t ahead = 0) const;

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  BytesView data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Append-only big-endian writer building an owned byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  ByteWriter& u8(std::uint8_t v);
  ByteWriter& u16(std::uint16_t v);
  ByteWriter& u24(std::uint32_t v);
  ByteWriter& u32(std::uint32_t v);
  ByteWriter& u64(std::uint64_t v);
  ByteWriter& raw(BytesView v);
  ByteWriter& raw(const Bytes& v) { return raw(BytesView{v}); }
  ByteWriter& str(std::string_view s);
  ByteWriter& fill(std::uint8_t value, std::size_t count);

  /// Patch a previously written big-endian u16 at absolute offset.
  void patch_u16(std::size_t at, std::uint16_t v);
  void patch_u32(std::size_t at, std::uint32_t v);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] BytesView view() const { return BytesView{buf_}; }

 private:
  Bytes buf_;
};

/// Constant-free helpers for one-off loads (header sniffing). Inline:
/// the DPI anchor scanner runs these per candidate byte.
[[nodiscard]] inline std::uint16_t load_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}
[[nodiscard]] inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | p[3];
}
[[nodiscard]] inline std::uint64_t load_be64(const std::uint8_t* p) {
  return (std::uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}
inline void store_be16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}
inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace rtcc::util
