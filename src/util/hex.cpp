#include "util/hex.hpp"

#include <array>
#include <cctype>

namespace rtcc::util {
namespace {

constexpr char kLower[] = "0123456789abcdef";
constexpr char kUpper[] = "0123456789ABCDEF";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kLower[b >> 4]);
    out.push_back(kLower[b & 0xF]);
  }
  return out;
}

std::string hex_u16(std::uint16_t v) {
  std::string out = "0x";
  for (int shift = 12; shift >= 0; shift -= 4)
    out.push_back(kUpper[(v >> shift) & 0xF]);
  return out;
}

std::string hex_u32(std::uint32_t v) {
  std::string out = "0x";
  for (int shift = 28; shift >= 0; shift -= 4)
    out.push_back(kUpper[(v >> shift) & 0xF]);
  return out;
}

std::optional<Bytes> from_hex(std::string_view s) {
  if (s.starts_with("0x") || s.starts_with("0X")) s.remove_prefix(2);
  Bytes out;
  out.reserve(s.size() / 2);
  int hi = -1;
  for (char c : s) {
    if (c == ' ' || c == ':') {
      if (hi >= 0) return std::nullopt;  // separator mid-byte
      continue;
    }
    int n = nibble(c);
    if (n < 0) return std::nullopt;
    if (hi < 0) {
      hi = n;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | n));
      hi = -1;
    }
  }
  if (hi >= 0) return std::nullopt;  // odd nibble count
  return out;
}

std::string hexdump(BytesView data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = std::min(data.size(), max_bytes);
  for (std::size_t line = 0; line < n; line += 16) {
    // offset
    std::array<char, 9> off{};
    for (int i = 0; i < 8; ++i)
      off[static_cast<std::size_t>(i)] =
          kLower[(line >> ((7 - i) * 4)) & 0xF];
    out.append(off.data(), 8).append("  ");
    for (std::size_t i = 0; i < 16; ++i) {
      if (line + i < n) {
        std::uint8_t b = data[line + i];
        out.push_back(kLower[b >> 4]);
        out.push_back(kLower[b & 0xF]);
        out.push_back(' ');
      } else {
        out.append("   ");
      }
      if (i == 7) out.push_back(' ');
    }
    out.append(" |");
    for (std::size_t i = 0; i < 16 && line + i < n; ++i) {
      char c = static_cast<char>(data[line + i]);
      out.push_back(std::isprint(static_cast<unsigned char>(c)) ? c : '.');
    }
    out.append("|\n");
  }
  if (n < data.size()) out.append("... (truncated)\n");
  return out;
}

}  // namespace rtcc::util
