// Hex encode/decode and hexdump helpers for diagnostics and tests.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace rtcc::util {

/// "deadbeef" (lowercase, no separators).
[[nodiscard]] std::string to_hex(BytesView data);

/// Formats like `0x2112A442` with uppercase digits and fixed width
/// (width = number of hex digits, not counting the 0x prefix).
[[nodiscard]] std::string hex_u16(std::uint16_t v);
[[nodiscard]] std::string hex_u32(std::uint32_t v);

/// Parses hex with optional "0x" prefix and optional spaces/colons
/// between byte pairs. Returns nullopt on any invalid digit or odd
/// number of nibbles.
[[nodiscard]] std::optional<Bytes> from_hex(std::string_view s);

/// Classic 16-bytes-per-line hexdump with ASCII gutter, for debugging
/// proprietary payloads.
[[nodiscard]] std::string hexdump(BytesView data, std::size_t max_bytes = 256);

}  // namespace rtcc::util
