// Persistent work-stealing thread pool.
//
// Replaces the wave dispatch previously used by report::run_experiment,
// where one slow call (relay-mode Zoom with filler bursts) idled the
// whole wave at every barrier. Here workers pull indices from a shared
// atomic cursor, so a finished worker immediately steals the next
// undone index instead of waiting for its wave to drain.
//
// Determinism: parallel_for only decides *when* fn(i) runs, never what
// it computes; callers write results[i] and merge in a fixed order, so
// pooled and serial runs produce identical output (enforced by
// tests/test_determinism.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rtcc::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, created on first use and reused across calls /
  /// experiments. Sized from RTCC_THREADS when set (>0), otherwise
  /// hardware_concurrency.
  static ThreadPool& shared();

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs fn(0) .. fn(n-1) across the pool and returns when all have
  /// completed. The calling thread participates (steals indices), so
  /// nested parallel_for from inside a task cannot deadlock: the inner
  /// caller can always drain its own batch alone while idle workers
  /// join from the shared queue. Rethrows the first task exception
  /// after the batch drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Batch;

  void worker_loop();
  /// Pulls indices from `b` until its cursor passes n. Returns with the
  /// batch exhausted (but not necessarily completed by other thieves).
  static void run_batch(Batch& b);
  void retire_if_exhausted(const std::shared_ptr<Batch>& b);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  /// Batches with unstolen indices; workers steal from the front.
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stop_ = false;
};

}  // namespace rtcc::util
