// Small string/format helpers shared by report tables and diagnostics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rtcc::util {

[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Fixed-width column padding (left-aligned / right-aligned).
[[nodiscard]] std::string pad_right(std::string s, std::size_t width);
[[nodiscard]] std::string pad_left(std::string s, std::size_t width);

/// "12345678" -> "12,345,678" for table readability.
[[nodiscard]] std::string with_commas(std::uint64_t v);

/// Percent with fixed decimals, e.g. format_pct(0.9731, 1) == "97.3%".
[[nodiscard]] std::string format_pct(double fraction, int decimals = 1);

/// Compact count used by the paper's Table 1 ("3.2m", "72.4k", "601").
[[nodiscard]] std::string human_count(std::uint64_t v);

/// Bytes as "2975.9 MB" style used in Table 1.
[[nodiscard]] std::string human_megabytes(std::uint64_t bytes);

}  // namespace rtcc::util
