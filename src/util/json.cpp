#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace rtcc::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

void JsonWriter::push_scope(bool) { has_value_.push_back(false); }

void JsonWriter::pop_scope() {
  if (!has_value_.empty()) has_value_.pop_back();
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  push_scope(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  pop_scope();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  push_scope(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  pop_scope();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma_if_needed();
  if (!std::isfinite(d)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_if_needed();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

}  // namespace rtcc::util
