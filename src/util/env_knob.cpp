#include "util/env_knob.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

namespace rtcc::util {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0)
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0)
    s.remove_suffix(1);
  return s;
}

bool ieq(std::string_view a, const char* b) {
  const std::size_t n = std::strlen(b);
  if (a.size() != n) return false;
  for (std::size_t i = 0; i < n; ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) != b[i]) return false;
  return true;
}

/// Warn-once registry: stream_options_from_env and friends run once
/// per analysis, so an unguarded warning would flood stderr in corpus
/// runs and test sweeps.
bool first_warning_for(const char* name) {
  static std::mutex mu;
  static std::set<std::string> warned;
  const std::lock_guard<std::mutex> lock(mu);
  return warned.insert(name).second;
}

}  // namespace

std::optional<long long> parse_knob_ll(std::string_view value) {
  const std::string_view t = trim(value);
  if (t.empty()) return std::nullopt;
  // strtoll would accept "0x10", octal-looking strings pass through as
  // decimal, and a lone sign parses as 0 with endptr untouched — pin
  // the grammar to [sign] digits+ before handing over.
  std::size_t i = 0;
  if (t[i] == '+' || t[i] == '-') ++i;
  if (i == t.size()) return std::nullopt;
  for (std::size_t j = i; j < t.size(); ++j)
    if (std::isdigit(static_cast<unsigned char>(t[j])) == 0)
      return std::nullopt;
  const std::string buf(t);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_knob_double(std::string_view value) {
  const std::string_view t = trim(value);
  if (t.empty()) return std::nullopt;
  // Reject strtod's hex-float and infinity/nan spellings: knobs are
  // plain decimal (optionally scientific) numbers.
  for (const char c : t)
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 && c != 'e' &&
        c != 'E')
      return std::nullopt;
  const std::string buf(t);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size() ||
      !std::isfinite(v))
    return std::nullopt;
  return v;
}

std::optional<bool> parse_knob_bool(std::string_view value) {
  const std::string_view t = trim(value);
  if (ieq(t, "1") || ieq(t, "true") || ieq(t, "on") || ieq(t, "yes"))
    return true;
  if (ieq(t, "0") || ieq(t, "false") || ieq(t, "off") || ieq(t, "no"))
    return false;
  return std::nullopt;
}

void warn_bad_knob(const char* name, std::string_view value,
                   const char* expected) {
  if (!first_warning_for(name)) return;
  std::fprintf(stderr, "rtcc: ignoring %s='%.*s' (%s); using default\n", name,
               static_cast<int>(value.size()), value.data(), expected);
}

long long env_knob_ll(const char* name, long long fallback, long long min,
                      long long max) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const auto v = parse_knob_ll(env);
  if (v && *v >= min && *v <= max) return *v;
  char expected[96];
  std::snprintf(expected, sizeof expected, "want an integer in [%lld, %lld]",
                min, max);
  warn_bad_knob(name, env, expected);
  return fallback;
}

double env_knob_double(const char* name, double fallback, double min,
                       double max) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const auto v = parse_knob_double(env);
  if (v && *v >= min && *v <= max) return *v;
  char expected[96];
  std::snprintf(expected, sizeof expected, "want a number in [%g, %g]", min,
                max);
  warn_bad_knob(name, env, expected);
  return fallback;
}

bool env_knob_bool(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const auto v = parse_knob_bool(env);
  if (v) return *v;
  warn_bad_knob(name, env, "want 0/1/true/false/on/off/yes/no");
  return fallback;
}

}  // namespace rtcc::util
