// Bounded single-producer / single-consumer handoff ring.
//
// The flow-sharded pipeline (report/shard.hpp) moves whole PacketBatch
// vectors from one demux/producer thread to per-core shard workers.
// That handoff is the only cross-thread edge on the sharded hot path,
// so it must not take a lock or touch shared cache lines beyond the two
// ring indices: this ring is a classic Lamport queue with a power-of-
// two slot array, release/acquire index publication, and a cached copy
// of the remote index on each side so the steady state re-reads the
// other thread's counter only when the cached bound is exhausted
// (roughly once per capacity items instead of once per item).
//
// Exactly one thread may push (the producer) and exactly one may pop
// (the consumer); nothing here defends against a second producer.
// Capacity is fixed at construction — a full ring is backpressure, not
// an error, which is what bounds the sharded pipeline's memory.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace rtcc::util {

/// Spin-then-yield-then-sleep backoff for the blocking ring operations.
/// The pipeline's rings are normally non-empty/non-full, so the fast
/// path never gets here; when a side does stall (producer far ahead or
/// a shard starved), the progression keeps a waiting thread from
/// burning a core on an oversubscribed machine.
class SpinBackoff {
 public:
  void pause() {
    ++spins_;
    if (spins_ <= kSpinLimit) return;
    if (spins_ <= kSpinLimit + kYieldLimit) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  void reset() { spins_ = 0; }

 private:
  static constexpr std::uint32_t kSpinLimit = 64;
  static constexpr std::uint32_t kYieldLimit = 256;
  std::uint32_t spins_ = 0;
};

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2) so slot
  /// indexing is a mask, not a modulo.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full.
  [[nodiscard]] bool try_push(T&& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity()) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: blocks (backoff loop) until the slot frees. Must
  /// not be called after close().
  void push(T&& v) {
    SpinBackoff backoff;
    while (!try_push(std::move(v))) backoff.pause();
  }

  /// Consumer side. Returns false when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: blocks until an item arrives or the ring is closed
  /// *and* drained. Returns false only in the closed-and-drained case,
  /// so every pushed item is popped exactly once.
  [[nodiscard]] bool pop(T& out) {
    SpinBackoff backoff;
    for (;;) {
      if (try_pop(out)) return true;
      // Order matters: close() is published after the producer's final
      // push, so observing closed_ then finding the ring still empty
      // means drained (the acquire load pairs with close()'s release).
      if (closed_.load(std::memory_order_acquire)) {
        if (try_pop(out)) return true;
        return false;
      }
      backoff.pause();
    }
  }

  /// Producer side, after the final push. Idempotent.
  void close() { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Racy snapshot for stats/tests; exact only when both sides are
  /// quiescent.
  [[nodiscard]] std::size_t size_approx() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 1;
  // Indices are monotone u64 (never wrapped); the mask maps them onto
  // slots. Each index lives on its own cache line, as does each side's
  // cached copy of the remote index, so producer and consumer only
  // share lines when one actually needs the other's progress.
  alignas(64) std::atomic<std::uint64_t> head_{0};   // next pop
  alignas(64) std::atomic<std::uint64_t> tail_{0};   // next push
  alignas(64) std::uint64_t cached_head_ = 0;        // producer-owned
  alignas(64) std::uint64_t cached_tail_ = 0;        // consumer-owned
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace rtcc::util
