// Deterministic PRNG (xoshiro256**) used by the traffic emulator.
//
// Every experiment in this repo must be reproducible bit-for-bit from a
// seed, so no code uses std::random_device or system entropy; all
// randomness is threaded through explicit Rng instances.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace rtcc::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }
  std::uint16_t next_u16() { return static_cast<std::uint16_t>(next_u64() >> 48); }
  std::uint8_t next_u8() { return static_cast<std::uint8_t>(next_u64() >> 56); }

  /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling
  /// to avoid modulo bias (matters for attribute/port draws in tests).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed inter-arrival with the given mean.
  double exponential(double mean);

  Bytes bytes(std::size_t n);

  /// Derives an independent child stream (for per-stream generators) so
  /// adding packets to one stream never perturbs another.
  [[nodiscard]] Rng fork(std::uint64_t salt);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace rtcc::util
