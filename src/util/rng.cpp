#include "util/rng.hpp"

#include <cmath>

namespace rtcc::util {
namespace {

// splitmix64 — seeds the xoshiro state; also used for fork() salting.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo by contract
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 random mantissa bits → uniform double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u = uniform();
  // Guard against log(0); uniform() < 1 so 1-u > 0.
  return -mean * std::log(1.0 - u);
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = next_u8();
  return out;
}

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t x = next_u64() ^ (salt * 0x9E3779B97F4A7C15ULL);
  return Rng(splitmix64(x));
}

}  // namespace rtcc::util
