#include "util/strings.hpp"

#include <cmath>
#include <cstdio>

namespace rtcc::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string pad_left(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string format_pct(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string human_count(std::uint64_t v) {
  char buf[32];
  if (v >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fm", static_cast<double>(v) / 1e6);
  } else if (v >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(v) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
  }
  return buf;
}

std::string human_megabytes(std::uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f MB",
                static_cast<double>(bytes) / 1e6);
  return buf;
}

}  // namespace rtcc::util
