#include "compliance/rules.hpp"

namespace rtcc::compliance::rules {

namespace quic = rtcc::proto::quic;

void check_quic(const quic::Header& h, const StreamContext& ctx,
                const ComplianceConfig& cfg, std::vector<Violation>& out) {
  (void)ctx;
  (void)cfg;

  // --- Criterion 1: packet type definition -------------------------------
  // Long types 0-3 and the short form are all RFC 9000-defined; the
  // 2-bit type field cannot take other values, so nothing can fail here.

  // --- Criterion 2: header field validity --------------------------------
  if (!h.fixed_bit && h.version != quic::kVersionNegotiation) {
    out.push_back({Criterion::kHeaderFieldValidity,
                   "fixed bit is 0 (RFC 9000 §17: MUST be 1)"});
  }
  if (h.long_form && h.version != quic::kVersion1 &&
      h.version != quic::kVersionNegotiation) {
    out.push_back({Criterion::kHeaderFieldValidity,
                   "unknown QUIC version field"});
  }
  if (h.dcid.bytes.size() > 20 || h.scid.bytes.size() > 20) {
    out.push_back({Criterion::kHeaderFieldValidity,
                   "connection ID longer than 20 bytes (RFC 9000 §17.2)"});
  }

  // Criteria 3/4: QUIC payloads are always encrypted; there is no
  // attribute surface visible to a passive observer. Criterion 5
  // (DCID/SCID consistency) is enforced by the DPI validation stage —
  // an inconsistent candidate never reaches the checker.
}

}  // namespace rtcc::compliance::rules
