#include "compliance/rules.hpp"
#include "proto/srtp/srtcp.hpp"

namespace rtcc::compliance::rules {

namespace rtcp = rtcc::proto::rtcp;
namespace srtp = rtcc::proto::srtp;

namespace {

bool packet_type_defined(std::uint8_t pt) {
  // 200-204: RFC 3550; 205/206: RFC 4585; 207: RFC 3611.
  return pt >= 200 && pt <= 207;
}

/// RTPFB formats (RFC 4585 §6.2 + transport-cc registration).
bool rtpfb_fmt_defined(std::uint8_t fmt) {
  switch (fmt) {
    case 1:   // Generic NACK
    case 3:   // TMMBR
    case 4:   // TMMBN
    case 5:   // RTCP-SR-REQ (RFC 6051)
    case 15:  // transport-wide congestion control
      return true;
    default:
      return false;
  }
}

/// PSFB formats (RFC 4585 §6.3, RFC 5104).
bool psfb_fmt_defined(std::uint8_t fmt) {
  switch (fmt) {
    case 1:   // PLI
    case 2:   // SLI
    case 3:   // RPSI
    case 4:   // FIR
    case 5:   // TSTR
    case 6:   // TSTN
    case 7:   // VBCM
    case 15:  // Application layer feedback (REMB)
      return true;
    default:
      return false;
  }
}

std::size_t min_body_for_count(const rtcp::Packet& p) {
  switch (p.packet_type) {
    case rtcp::kSenderReport:
      return 24 + std::size_t{p.count} * 24;
    case rtcp::kReceiverReport:
      return 4 + std::size_t{p.count} * 24;
    case rtcp::kBye:
      return std::size_t{p.count} * 4;
    case rtcp::kApp:
      return 8;
    case rtcp::kRtpFeedback:
    case rtcp::kPayloadFeedback:
      return 8;
    default:
      return 0;
  }
}

}  // namespace

void check_rtcp_packet(const rtcp::Packet& pkt, const rtcp::Compound& compound,
                       std::size_t index, const StreamContext& ctx,
                       const ComplianceConfig& cfg, int dir,
                       std::vector<Violation>& out) {
  const std::size_t d = static_cast<std::size_t>(dir & 1);
  const bool encrypted = ctx.srtcp_stream[d];

  // --- Criterion 1: packet type definition -------------------------------
  if (!packet_type_defined(pkt.packet_type)) {
    out.push_back({Criterion::kMessageTypeDefinition,
                   "RTCP packet type " + std::to_string(pkt.packet_type) +
                       " is not assigned"});
  }

  // --- Criterion 2: header field validity --------------------------------
  if (pkt.version != 2) {
    out.push_back({Criterion::kHeaderFieldValidity,
                   "RTCP version " + std::to_string(pkt.version) + " != 2"});
  }
  if (pkt.padding && index + 1 != compound.packets.size()) {
    out.push_back({Criterion::kHeaderFieldValidity,
                   "padding bit set on a non-final packet of a compound "
                   "(RFC 3550 §6.4.1)"});
  }
  if (!encrypted && pkt.body.size() < min_body_for_count(pkt)) {
    out.push_back({Criterion::kHeaderFieldValidity,
                   "declared report/source count exceeds the packet body"});
  }

  // SRTCP bodies are opaque ciphertext: attribute-level decoding (SDES
  // items, feedback FCIs) would judge random bytes, so — like the
  // paper — we only assess header + trailer structure for such streams.
  if (!encrypted) {
    // --- Criterion 3: attribute type validity ---------------------------
    if (pkt.packet_type == rtcp::kSdes) {
      if (auto sdes = rtcp::decode_sdes(pkt)) {
        for (const auto& chunk : sdes->chunks) {
          for (const auto& item : chunk.items) {
            if (item.type == 0 || item.type > 8) {
              out.push_back({Criterion::kAttributeTypeValidity,
                             "SDES item type " + std::to_string(item.type) +
                                 " is not assigned (RFC 3550 §12.2)"});
            }
          }
        }
      }
    } else if (pkt.packet_type == rtcp::kRtpFeedback) {
      if (!rtpfb_fmt_defined(pkt.count)) {
        out.push_back({Criterion::kAttributeTypeValidity,
                       "RTPFB format " + std::to_string(pkt.count) +
                           " is not assigned (RFC 4585)"});
      }
    } else if (pkt.packet_type == rtcp::kPayloadFeedback) {
      if (!psfb_fmt_defined(pkt.count)) {
        out.push_back({Criterion::kAttributeTypeValidity,
                       "PSFB format " + std::to_string(pkt.count) +
                           " is not assigned (RFC 4585)"});
      }
    } else if (pkt.packet_type == rtcp::kExtendedReport) {
      if (auto xr = rtcp::decode_xr(pkt)) {
        for (const auto& block : xr->blocks) {
          if (!rtcp::xr_block_type_defined(block.block_type)) {
            out.push_back({Criterion::kAttributeTypeValidity,
                           "XR block type " +
                               std::to_string(block.block_type) +
                               " is not assigned (RFC 3611)"});
          }
        }
      } else {
        out.push_back({Criterion::kAttributeValueValidity,
                       "XR body is not a well-formed block sequence "
                       "(RFC 3611 §3)"});
      }
    }

    // --- Criterion 4: attribute value validity ---------------------------
    if (pkt.packet_type == rtcp::kApp) {
      if (auto app = rtcp::decode_app(pkt)) {
        for (char c : app->name) {
          if (c < 0x20 || c > 0x7E) {
            out.push_back({Criterion::kAttributeValueValidity,
                           "APP name is not four printable ASCII "
                           "characters (RFC 3550 §6.7)"});
            break;
          }
        }
      }
    }
    if (pkt.packet_type == rtcp::kRtpFeedback && pkt.count == 1) {
      // Generic NACK FCI is a sequence of 4-byte (PID, BLP) entries.
      if (auto fb = rtcp::decode_feedback(pkt)) {
        if (fb->fci.empty() || fb->fci.size() % 4 != 0) {
          out.push_back({Criterion::kAttributeValueValidity,
                         "Generic NACK FCI is not a sequence of 4-byte "
                         "entries (RFC 4585 §6.2.1)"});
        }
      }
    }
  }

  // --- Criterion 5: syntax & semantic integrity ---------------------------
  if (compound.packets.size() >= 2 && index == 0 &&
      pkt.packet_type != rtcp::kSenderReport &&
      pkt.packet_type != rtcp::kReceiverReport) {
    out.push_back({Criterion::kSyntaxSemanticIntegrity,
                   "compound RTCP datagram does not begin with SR or RR "
                   "(RFC 3550 §6.1)"});
  }

  if (!compound.trailing.empty()) {
    const auto& stats = ctx.rtcp_trailing[d];
    if (stats.looks_like_srtcp()) {
      // SRTCP stream: RFC 3711 §3.4 REQUIRES an authentication tag.
      const std::size_t tag_len = compound.trailing.size() >= 4
                                      ? compound.trailing.size() - 4
                                      : 0;
      if (tag_len < cfg.srtcp_auth_tag_len) {
        out.push_back({Criterion::kSyntaxSemanticIntegrity,
                       "SRTCP message carries no authentication tag "
                       "(trailer is only E-flag + index; RFC 3711 §3.4 "
                       "makes the tag mandatory)"});
      }
    } else {
      out.push_back({Criterion::kSyntaxSemanticIntegrity,
                     "datagram carries " +
                         std::to_string(compound.trailing.size()) +
                         " trailing byte(s) not attributable to any RTCP "
                         "or SRTCP structure"});
    }
  }
}

}  // namespace rtcc::compliance::rules
