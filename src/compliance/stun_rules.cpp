#include <algorithm>

#include "compliance/rules.hpp"
#include "crypto/crc32.hpp"
#include "proto/stun/stun_registry.hpp"
#include "util/hex.hpp"

namespace rtcc::compliance::rules {

namespace stun = rtcc::proto::stun;
using rtcc::proto::SpecSource;
using rtcc::util::hex_u16;

namespace {

bool source_defined(SpecSource s, const ComplianceConfig& cfg) {
  if (s == SpecSource::kUndefined) return false;
  if (s == SpecSource::kExtension)
    return cfg.treat_extension_types_as_compliant;
  return true;
}

/// Criterion 2 helper: a transaction ID that is clearly not "randomly
/// generated" (RFC 5389 §6) — long runs of one byte value. 96 random
/// bits produce such runs with negligible probability.
bool txid_low_entropy(const stun::TransactionId& id) {
  std::size_t longest = 1, run = 1;
  for (std::size_t i = 1; i < id.size(); ++i) {
    run = id[i] == id[i - 1] ? run + 1 : 1;
    longest = std::max(longest, run);
  }
  return longest >= 8;
}

/// Address attribute value: 1 reserved byte, 1 family, 2 port, then a
/// 4-byte (IPv4) or 16-byte (IPv6) address.
void check_address_value(const stun::Attribute& a,
                         const stun::AttributeInfo& info,
                         std::vector<Violation>& out) {
  if (a.value.size() < 4) {
    out.push_back({Criterion::kAttributeValueValidity,
                   info.name + " value shorter than the address header"});
    return;
  }
  const std::uint8_t family = a.value[1];
  if (family != 0x01 && family != 0x02) {
    out.push_back({Criterion::kAttributeValueValidity,
                   info.name + " has invalid address family " +
                       std::to_string(family) + " (must be 0x01 or 0x02)"});
    return;
  }
  const std::size_t want = family == 0x01 ? 8 : 20;
  if (a.value.size() != want) {
    out.push_back({Criterion::kAttributeValueValidity,
                   info.name + " length " + std::to_string(a.value.size()) +
                       " does not match family (want " +
                       std::to_string(want) + ")"});
  }
}

}  // namespace

void check_stun(const stun::Message& msg,
                const rtcc::dpi::ExtractedMessage& raw,
                const StreamContext& ctx, const ComplianceConfig& cfg,
                int dir, std::vector<Violation>& out) {
  (void)raw;
  (void)dir;

  // --- Criterion 1: message type definition -----------------------------
  const auto type_info = stun::lookup_message_type(msg.type);
  if (!source_defined(type_info.source, cfg)) {
    out.push_back({Criterion::kMessageTypeDefinition,
                   "message type " + hex_u16(msg.type) +
                       " is not defined in any STUN/TURN specification"});
  }

  // --- Criterion 2: header field validity --------------------------------
  if (msg.length % 4 != 0) {
    out.push_back({Criterion::kHeaderFieldValidity,
                   "message length " + std::to_string(msg.length) +
                       " is not a multiple of 4 (RFC 5389 §6)"});
  }
  if (!msg.has_magic_cookie()) {
    // Classic RFC 3489 framing is fine for RFC 3489-era methods (the
    // paper counts adherence to *any* published RFC); TURN methods
    // never existed without the cookie.
    const std::uint16_t method = msg.method();
    const bool rfc3489_method =
        method == stun::kMethodBinding || method == stun::kMethodSharedSecret;
    if (!rfc3489_method) {
      out.push_back({Criterion::kHeaderFieldValidity,
                     "missing magic cookie on a method that postdates "
                     "RFC 3489"});
    }
  }
  if (txid_low_entropy(msg.transaction_id)) {
    out.push_back({Criterion::kHeaderFieldValidity,
                   "transaction ID does not appear randomly generated"});
  }

  // --- Criterion 3: attribute type validity ------------------------------
  for (const auto& a : msg.attributes) {
    const auto info = stun::lookup_attribute(a.type);
    if (!source_defined(info.source, cfg)) {
      out.push_back({Criterion::kAttributeTypeValidity,
                     "attribute type " + hex_u16(a.type) +
                         " is not defined in any specification"});
    }
  }

  // --- Criterion 4: attribute value validity ------------------------------
  const auto closed_set = stun::closed_attribute_set(msg.type);
  for (const auto& a : msg.attributes) {
    const auto info = stun::lookup_attribute(a.type);
    if (!source_defined(info.source, cfg)) continue;  // judged above

    if (info.fixed_length >= 0 &&
        a.value.size() != static_cast<std::size_t>(info.fixed_length)) {
      out.push_back({Criterion::kAttributeValueValidity,
                     info.name + " length " + std::to_string(a.value.size()) +
                         " != required " +
                         std::to_string(info.fixed_length)});
    }
    if (info.min_length >= 0 &&
        a.value.size() < static_cast<std::size_t>(info.min_length)) {
      out.push_back({Criterion::kAttributeValueValidity,
                     info.name + " shorter than the specified minimum"});
    }
    if (info.max_length >= 0 &&
        a.value.size() > static_cast<std::size_t>(info.max_length)) {
      out.push_back({Criterion::kAttributeValueValidity,
                     info.name + " longer than the specified maximum"});
    }
    if (info.is_address) check_address_value(a, info, out);

    if (a.type == stun::attr::kErrorCode && a.value.size() >= 4) {
      const std::uint8_t cls = a.value[2] & 0x07;
      const std::uint8_t number = a.value[3];
      if (cls < 3 || cls > 6 || number > 99) {
        out.push_back({Criterion::kAttributeValueValidity,
                       "ERROR-CODE class/number out of range"});
      }
    }
    if (a.type == stun::attr::kChannelNumber && a.value.size() >= 2) {
      const std::uint16_t ch = rtcc::util::load_be16(a.value.data());
      if (ch < 0x4000 || ch > 0x4FFF) {
        out.push_back({Criterion::kAttributeValueValidity,
                       "CHANNEL-NUMBER value " + hex_u16(ch) +
                           " outside 0x4000-0x4FFF (RFC 8656 §12)"});
      }
    }

    // FINGERPRINT is fully verifiable without keys: it must be the last
    // attribute and carry CRC32(prefix) ^ 0x5354554e (RFC 5389 §15.5).
    if (a.type == stun::attr::kFingerprint && a.value.size() == 4) {
      if (&a != &msg.attributes.back()) {
        out.push_back({Criterion::kAttributeValueValidity,
                       "FINGERPRINT is not the last attribute "
                       "(RFC 5389 §15.5)"});
      } else if (raw.raw.size() >= msg.wire_size() &&
                 msg.wire_size() >= 8) {
        const std::size_t prefix_len = msg.wire_size() - 8;
        const std::uint32_t expected = rtcc::crypto::stun_fingerprint(
            rtcc::util::BytesView{raw.raw}.subspan(0, prefix_len));
        if (rtcc::util::load_be32(a.value.data()) != expected) {
          out.push_back({Criterion::kAttributeValueValidity,
                         "FINGERPRINT CRC does not match the message "
                         "contents"});
        }
      }
    }

    // Placement restrictions (e.g. PRIORITY only in Binding requests —
    // the paper's own criterion-4 example).
    if (const auto* rule = stun::lookup_usage_rule(a.type)) {
      const bool allowed =
          std::find(rule->allowed_in.begin(), rule->allowed_in.end(),
                    msg.type) != rule->allowed_in.end();
      if (!allowed) {
        out.push_back({Criterion::kAttributeValueValidity,
                       info.name + " is not permitted in " +
                           stun::describe_message_type(msg.type)});
      }
    }
    if (closed_set) {
      const bool in_set = std::find(closed_set->begin(), closed_set->end(),
                                    a.type) != closed_set->end();
      if (!in_set) {
        out.push_back({Criterion::kAttributeValueValidity,
                       info.name + " not in the allowed attribute set of " +
                           stun::describe_message_type(msg.type)});
      }
    }
  }

  // --- Criterion 5: syntax & semantic integrity ---------------------------
  // Mandatory-attribute rules: RFC 8489 §7.3.3 (a Binding success
  // response carries XOR-MAPPED-ADDRESS) and RFC 8656 §7.3 (an Allocate
  // success response carries XOR-RELAYED-ADDRESS and LIFETIME).
  if (msg.type == stun::kBindingSuccess && msg.has_magic_cookie() &&
      !msg.find(stun::attr::kXorMappedAddress) &&
      !msg.find(stun::attr::kMappedAddress)) {
    out.push_back({Criterion::kSyntaxSemanticIntegrity,
                   "Binding success response carries no (XOR-)MAPPED-"
                   "ADDRESS (RFC 8489 §7.3.3)"});
  }
  if (msg.type == stun::kAllocateSuccess) {
    if (!msg.find(stun::attr::kXorRelayedAddress)) {
      out.push_back({Criterion::kSyntaxSemanticIntegrity,
                     "Allocate success response carries no "
                     "XOR-RELAYED-ADDRESS (RFC 8656 §7.3)"});
    }
    if (!msg.find(stun::attr::kLifetime)) {
      out.push_back({Criterion::kSyntaxSemanticIntegrity,
                     "Allocate success response carries no LIFETIME "
                     "(RFC 8656 §7.3)"});
    }
  }
  // UNKNOWN-ATTRIBUTES holds a list of 16-bit types (RFC 8489 §14.10).
  if (const auto* unknown = msg.find(stun::attr::kUnknownAttributes)) {
    if (unknown->value.size() % 2 != 0) {
      out.push_back({Criterion::kSyntaxSemanticIntegrity,
                     "UNKNOWN-ATTRIBUTES is not a sequence of 16-bit "
                     "attribute types"});
    }
  }

  const TxidKey key{msg.transaction_id};
  if (msg.cls() == stun::Class::kRequest &&
      ctx.repeated_unanswered.count(key) > 0) {
    out.push_back(
        {Criterion::kSyntaxSemanticIntegrity,
         "request retransmitted with a constant transaction ID and never "
         "answered — inconsistent with STUN retransmission semantics"});
  }
  if (msg.type == stun::kAllocateRequest) {
    const bool keepalive = ctx.allocate_keepalive[0] ||
                           ctx.allocate_keepalive[1];
    if (keepalive) {
      out.push_back({Criterion::kSyntaxSemanticIntegrity,
                     "Allocate requests form a periodic ping-pong pattern; "
                     "Allocate is for session setup, not connectivity "
                     "checking"});
    }
  }
  if (msg.cls() == stun::Class::kSuccessResponse ||
      msg.cls() == stun::Class::kErrorResponse) {
    auto it = ctx.txids.find(key);
    // Only a *systematic* orphan-response pattern is a deviation; an
    // isolated unmatched response usually means the capture (or the
    // network) lost the request packet.
    if (ctx.systematic_orphan_responses && it != ctx.txids.end() &&
        it->second.requests == 0) {
      out.push_back({Criterion::kSyntaxSemanticIntegrity,
                     "response transaction ID matches no observed request "
                     "(systematic across the stream)"});
    }
  }
}

void check_channel_data(const stun::ChannelData& cd,
                        const rtcc::dpi::ExtractedMessage& raw,
                        const StreamContext& ctx,
                        const ComplianceConfig& cfg,
                        std::vector<Violation>& out) {
  (void)ctx;
  (void)cfg;
  // Criterion 1: ChannelData is defined (RFC 8656 §12.4); the parser
  // already guarantees the channel number range.
  // Criterion 2: header length consistency.
  // Criterion 5: RFC 8656 §12.5 — over UDP, ChannelData MUST NOT be
  // padded; extra bytes past the declared length are a violation (the
  // FaceTime pattern).
  if (raw.length > cd.wire_size()) {
    out.push_back({Criterion::kSyntaxSemanticIntegrity,
                   "ChannelData padded to a 4-byte boundary over UDP "
                   "(RFC 8656 §12.5 forbids padding on UDP)"});
  }
}

}  // namespace rtcc::compliance::rules
