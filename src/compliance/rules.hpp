// Per-protocol rulebooks behind the five-criterion checker. Each rule
// function appends violations in criterion order; the checker applies
// the sequential short-circuit on top.
#pragma once

#include "compliance/context.hpp"
#include "compliance/types.hpp"
#include "dpi/message.hpp"

namespace rtcc::compliance::rules {

void check_stun(const rtcc::proto::stun::Message& msg,
                const rtcc::dpi::ExtractedMessage& raw,
                const StreamContext& ctx, const ComplianceConfig& cfg,
                int dir, std::vector<Violation>& out);

void check_channel_data(const rtcc::proto::stun::ChannelData& cd,
                        const rtcc::dpi::ExtractedMessage& raw,
                        const StreamContext& ctx,
                        const ComplianceConfig& cfg,
                        std::vector<Violation>& out);

void check_rtp(const rtcc::proto::rtp::Packet& pkt, const StreamContext& ctx,
               const ComplianceConfig& cfg, std::vector<Violation>& out);

/// Checks one RTCP packet inside a compound. `index`/`total` locate it
/// within the compound (padding-bit and first-packet rules);
/// compound-level trailing-bytes verdicts apply to every packet.
void check_rtcp_packet(const rtcc::proto::rtcp::Packet& pkt,
                       const rtcc::proto::rtcp::Compound& compound,
                       std::size_t index, const StreamContext& ctx,
                       const ComplianceConfig& cfg, int dir,
                       std::vector<Violation>& out);

void check_quic(const rtcc::proto::quic::Header& h, const StreamContext& ctx,
                const ComplianceConfig& cfg, std::vector<Violation>& out);

}  // namespace rtcc::compliance::rules
