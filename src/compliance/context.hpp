// Stream-scoped context for criterion-5 (syntax & semantic integrity)
// checks, which need cross-message state: STUN transaction pairing,
// Allocate keep-alive detection, RTP SSRC inventory for RTCP
// cross-checks, and SRTCP trailer inference.
//
// Usage is two-phase: observe() every message of a stream, finalize(),
// then run the checker over the same messages with this context.
#pragma once

#include <array>
#include <map>
#include <set>
#include <vector>

#include "compliance/types.hpp"
#include "dpi/message.hpp"

namespace rtcc::compliance {

struct TxidKey {
  rtcc::proto::stun::TransactionId id{};
  bool operator<(const TxidKey& o) const { return id < o.id; }
};

struct TxidStats {
  int requests = 0;
  int responses = 0;
  int indications = 0;
};

/// Per-direction SRTCP trailing-bytes statistics.
struct RtcpTrailingStats {
  std::size_t observed = 0;       // RTCP messages in this direction
  std::size_t with_trailing = 0;  // ... that had trailing bytes
  std::map<std::size_t, std::size_t> size_histogram;
  bool e_flag_seen = false;      // any trailer parsed with E=1
  bool index_monotonic = true;   // SRTCP index strictly increases
  std::uint32_t last_index = 0;
  bool have_last_index = false;

  /// Most common trailing size (0 when none).
  [[nodiscard]] std::size_t modal_size() const;
  /// True when the trailing bytes look like SRTCP (E flag + monotonic
  /// 31-bit index), the signal the paper used for Google Meet (§5.2.3).
  [[nodiscard]] bool looks_like_srtcp() const {
    return e_flag_seen && index_monotonic && with_trailing >= 2;
  }
};

struct StreamContext {
  std::map<TxidKey, TxidStats> txids;
  /// Allocate-request timestamps per direction.
  std::array<std::vector<double>, 2> allocate_request_ts;
  /// SSRCs of RTP packets observed in the stream.
  std::set<std::uint32_t> rtp_ssrcs;
  std::array<RtcpTrailingStats, 2> rtcp_trailing;

  // ---- derived by finalize() ----
  /// txids of requests repeated >= threshold with zero responses.
  std::set<TxidKey> repeated_unanswered;
  /// True when most responses in the stream match no observed request —
  /// a systematic protocol deviation. (A handful of orphans is expected
  /// on real captures: the request packet may simply have been lost, so
  /// single orphans must not flip a verdict.)
  bool systematic_orphan_responses = false;
  /// Allocate keep-alive ping-pong detected (per direction).
  std::array<bool, 2> allocate_keepalive{false, false};
  /// Stream judged SRTCP-encrypted (bodies opaque) per direction.
  std::array<bool, 2> srtcp_stream{false, false};
};

class ContextBuilder {
 public:
  explicit ContextBuilder(const ComplianceConfig& cfg) : cfg_(cfg) {}

  void observe(const rtcc::dpi::ExtractedMessage& msg, int dir, double ts);
  /// Computes the derived fields; call once after all observe() calls.
  [[nodiscard]] StreamContext finalize();

 private:
  ComplianceConfig cfg_;
  StreamContext ctx_;
};

}  // namespace rtcc::compliance
