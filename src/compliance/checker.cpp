#include "compliance/checker.hpp"

#include "compliance/rules.hpp"
#include "util/hex.hpp"

namespace rtcc::compliance {

StreamComplianceChecker::StreamComplianceChecker(ComplianceConfig cfg)
    : cfg_(cfg), builder_(cfg) {}

void StreamComplianceChecker::observe(const rtcc::dpi::ExtractedMessage& msg,
                                      int dir, double ts) {
  builder_.observe(msg, dir, ts);
}

void StreamComplianceChecker::finalize() {
  ctx_ = builder_.finalize();
  finalized_ = true;
}

Verdict make_verdict(std::vector<Violation> violations,
                     const ComplianceConfig& cfg) {
  Verdict v;
  v.compliant = violations.empty();
  if (cfg.sequential && violations.size() > 1) {
    // rules append in criterion order, so the first entry is the first
    // failing criterion in the paper's sequential evaluation.
    violations.resize(1);
  }
  v.violations = std::move(violations);
  return v;
}

std::vector<CheckedMessage> StreamComplianceChecker::check(
    const rtcc::dpi::ExtractedMessage& msg, int dir, double ts) const {
  std::vector<CheckedMessage> out;
  check_into(msg, dir, ts, out);
  return out;
}

std::size_t StreamComplianceChecker::check_into(
    const rtcc::dpi::ExtractedMessage& msg, int dir, double ts,
    std::vector<CheckedMessage>& out) const {
  const std::size_t before = out.size();
  auto push = [&](proto::Protocol protocol, std::string label,
                  std::vector<Violation> violations) {
    CheckedMessage cm;
    cm.protocol = protocol;
    cm.type_label = std::move(label);
    cm.verdict = make_verdict(std::move(violations), cfg_);
    cm.ts = ts;
    cm.dir = dir;
    out.push_back(std::move(cm));
  };

  switch (msg.kind) {
    case rtcc::dpi::MessageKind::kStun: {
      if (!msg.stun) break;
      std::vector<Violation> v;
      rules::check_stun(*msg.stun, msg, ctx_, cfg_, dir, v);
      push(proto::Protocol::kStunTurn, rtcc::util::hex_u16(msg.stun->type),
           std::move(v));
      break;
    }
    case rtcc::dpi::MessageKind::kChannelData: {
      if (!msg.channel_data) break;
      std::vector<Violation> v;
      rules::check_channel_data(*msg.channel_data, msg, ctx_, cfg_, v);
      push(proto::Protocol::kStunTurn, "ChannelData", std::move(v));
      break;
    }
    case rtcc::dpi::MessageKind::kRtp: {
      if (!msg.rtp) break;
      std::vector<Violation> v;
      rules::check_rtp(*msg.rtp, ctx_, cfg_, v);
      push(proto::Protocol::kRtp, std::to_string(msg.rtp->payload_type),
           std::move(v));
      break;
    }
    case rtcc::dpi::MessageKind::kRtcp: {
      if (!msg.rtcp) break;
      for (std::size_t i = 0; i < msg.rtcp->packets.size(); ++i) {
        std::vector<Violation> v;
        rules::check_rtcp_packet(msg.rtcp->packets[i], *msg.rtcp, i, ctx_,
                                 cfg_, dir, v);
        push(proto::Protocol::kRtcp,
             std::to_string(msg.rtcp->packets[i].packet_type), std::move(v));
      }
      break;
    }
    case rtcc::dpi::MessageKind::kQuic: {
      if (!msg.quic) break;
      std::vector<Violation> v;
      rules::check_quic(*msg.quic, ctx_, cfg_, v);
      std::string label =
          msg.quic->long_form
              ? "long-" + std::to_string(static_cast<int>(msg.quic->long_type))
              : "short";
      push(proto::Protocol::kQuic, std::move(label), std::move(v));
      break;
    }
  }
  return out.size() - before;
}

std::string to_string(Criterion c) {
  switch (c) {
    case Criterion::kMessageTypeDefinition:
      return "1:message-type-definition";
    case Criterion::kHeaderFieldValidity:
      return "2:header-field-validity";
    case Criterion::kAttributeTypeValidity:
      return "3:attribute-type-validity";
    case Criterion::kAttributeValueValidity:
      return "4:attribute-value-validity";
    case Criterion::kSyntaxSemanticIntegrity:
      return "5:syntax-semantic-integrity";
  }
  return "?";
}

}  // namespace rtcc::compliance
