// Verdict model for the five-criterion compliance assessment (§4.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proto/common.hpp"

namespace rtcc::compliance {

/// The paper's five sequential criteria (§4.2). A message must pass all
/// five to be compliant; evaluation stops at the first failure.
enum class Criterion : std::uint8_t {
  kMessageTypeDefinition = 1,
  kHeaderFieldValidity = 2,
  kAttributeTypeValidity = 3,
  kAttributeValueValidity = 4,
  kSyntaxSemanticIntegrity = 5,
};

[[nodiscard]] std::string to_string(Criterion c);

struct Violation {
  Criterion criterion = Criterion::kMessageTypeDefinition;
  std::string detail;
};

struct Verdict {
  bool compliant = true;
  /// Violations in criterion order. In sequential mode (the paper's
  /// methodology) this holds at most one entry; exhaustive mode (used
  /// by tests to validate the short-circuit) records all of them.
  std::vector<Violation> violations;

  [[nodiscard]] const Violation* first() const {
    return violations.empty() ? nullptr : &violations.front();
  }
};

struct ComplianceConfig {
  /// Stop at the first failing criterion (§4.2's "strictly sequential").
  bool sequential = true;
  /// Count vendor-extension-defined types (SpecSource::kExtension) as
  /// defined. The paper's ground truth does (Google Meet 0x0200/0x0300).
  bool treat_extension_types_as_compliant = true;
  /// Criterion 5: same-txid requests repeated at least this many times
  /// with zero responses → "repurposed request" (FaceTime §5.2.1).
  std::size_t repeated_request_threshold = 5;
  /// Criterion 5: at least this many Allocate requests spread over at
  /// least `allocate_keepalive_min_span_s` → keepalive ping-pong.
  std::size_t allocate_keepalive_threshold = 6;
  double allocate_keepalive_min_span_s = 30.0;
  /// SRTCP: full trailer = 4-byte E+index + 10-byte auth tag.
  std::size_t srtcp_auth_tag_len = 10;
};

/// One judged message instance, the unit both metrics aggregate over.
struct CheckedMessage {
  proto::Protocol protocol = proto::Protocol::kStunTurn;
  /// Type label for the message-type-based metric: STUN "0x0001" /
  /// "ChannelData"; RTP payload type "100"; RTCP packet type "205";
  /// QUIC "long-0".."long-2"/"short".
  std::string type_label;
  Verdict verdict;
  double ts = 0.0;
  int dir = 0;
};

}  // namespace rtcc::compliance
