// The five-criterion compliance checker (§4.2), applied per stream.
//
// Two-phase protocol:
//   StreamComplianceChecker c(cfg);
//   for (msg : stream) c.observe(msg, dir, ts);   // build context
//   c.finalize();
//   for (msg : stream) results += c.check(msg, dir, ts);
//
// check() returns one CheckedMessage per judged unit: one per STUN /
// ChannelData / RTP / QUIC message, and one per RTCP packet inside a
// compound (the paper's tables treat each RTCP packet type separately).
#pragma once

#include <vector>

#include "compliance/context.hpp"
#include "compliance/types.hpp"
#include "dpi/message.hpp"

namespace rtcc::compliance {

class StreamComplianceChecker {
 public:
  explicit StreamComplianceChecker(ComplianceConfig cfg = {});

  void observe(const rtcc::dpi::ExtractedMessage& msg, int dir, double ts);
  void finalize();

  [[nodiscard]] std::vector<CheckedMessage> check(
      const rtcc::dpi::ExtractedMessage& msg, int dir, double ts) const;

  /// Allocation-hoisted form of check(): appends to `out` (not cleared)
  /// and returns the number of CheckedMessages appended. The pipeline's
  /// compliance node calls this with one reused buffer for the whole
  /// batch, so the per-message vector allocation disappears from the
  /// hot loop; check() above is a thin wrapper.
  std::size_t check_into(const rtcc::dpi::ExtractedMessage& msg, int dir,
                         double ts, std::vector<CheckedMessage>& out) const;

  [[nodiscard]] const StreamContext& context() const { return ctx_; }
  [[nodiscard]] const ComplianceConfig& config() const { return cfg_; }

 private:
  ComplianceConfig cfg_;
  ContextBuilder builder_;
  StreamContext ctx_;
  bool finalized_ = false;
};

/// Applies the sequential short-circuit: keeps only the first violation
/// when cfg.sequential is set; verdict.compliant reflects emptiness.
[[nodiscard]] Verdict make_verdict(std::vector<Violation> violations,
                                   const ComplianceConfig& cfg);

}  // namespace rtcc::compliance
