#include "compliance/context.hpp"

#include <algorithm>

#include "proto/srtp/srtcp.hpp"

namespace rtcc::compliance {

namespace stun = rtcc::proto::stun;

std::size_t RtcpTrailingStats::modal_size() const {
  std::size_t best = 0, best_count = 0;
  for (const auto& [size, count] : size_histogram) {
    if (count > best_count) {
      best = size;
      best_count = count;
    }
  }
  return best;
}

void ContextBuilder::observe(const rtcc::dpi::ExtractedMessage& msg, int dir,
                             double ts) {
  const int d = dir & 1;
  switch (msg.kind) {
    case rtcc::dpi::MessageKind::kStun: {
      if (!msg.stun) return;
      auto& stats = ctx_.txids[TxidKey{msg.stun->transaction_id}];
      switch (msg.stun->cls()) {
        case stun::Class::kRequest:
          ++stats.requests;
          break;
        case stun::Class::kIndication:
          ++stats.indications;
          break;
        case stun::Class::kSuccessResponse:
        case stun::Class::kErrorResponse:
          ++stats.responses;
          break;
      }
      if (msg.stun->type == stun::kAllocateRequest)
        ctx_.allocate_request_ts[static_cast<std::size_t>(d)].push_back(ts);
      break;
    }
    case rtcc::dpi::MessageKind::kRtp:
      if (msg.rtp) ctx_.rtp_ssrcs.insert(msg.rtp->ssrc);
      break;
    case rtcc::dpi::MessageKind::kRtcp: {
      if (!msg.rtcp) return;
      auto& t = ctx_.rtcp_trailing[static_cast<std::size_t>(d)];
      ++t.observed;
      if (!msg.rtcp->trailing.empty()) {
        ++t.with_trailing;
        ++t.size_histogram[msg.rtcp->trailing.size()];
        if (auto trailer = rtcc::proto::srtp::parse_trailer(
                rtcc::util::BytesView{msg.rtcp->trailing})) {
          if (trailer->encrypted_flag) t.e_flag_seen = true;
          if (t.have_last_index && trailer->index <= t.last_index)
            t.index_monotonic = false;
          t.last_index = trailer->index;
          t.have_last_index = true;
        }
      }
      break;
    }
    case rtcc::dpi::MessageKind::kChannelData:
    case rtcc::dpi::MessageKind::kQuic:
      break;
  }
}

StreamContext ContextBuilder::finalize() {
  int orphan_responses = 0, matched_responses = 0;
  for (const auto& [txid, stats] : ctx_.txids) {
    if (stats.requests >=
            static_cast<int>(cfg_.repeated_request_threshold) &&
        stats.responses == 0) {
      ctx_.repeated_unanswered.insert(txid);
    }
    if (stats.responses > 0) {
      if (stats.requests == 0) {
        orphan_responses += stats.responses;
      } else {
        matched_responses += stats.responses;
      }
    }
  }
  ctx_.systematic_orphan_responses =
      orphan_responses >= 3 && orphan_responses > matched_responses;
  for (std::size_t d = 0; d < 2; ++d) {
    auto& ts = ctx_.allocate_request_ts[d];
    if (ts.size() >= cfg_.allocate_keepalive_threshold) {
      const auto [min_it, max_it] = std::minmax_element(ts.begin(), ts.end());
      if (*max_it - *min_it >= cfg_.allocate_keepalive_min_span_s)
        ctx_.allocate_keepalive[d] = true;
    }
    ctx_.srtcp_stream[d] = ctx_.rtcp_trailing[d].looks_like_srtcp();
  }
  return ctx_;
}

}  // namespace rtcc::compliance
