#include "compliance/rules.hpp"
#include "util/hex.hpp"

namespace rtcc::compliance::rules {

namespace rtp = rtcc::proto::rtp;

void check_rtp(const rtp::Packet& pkt, const StreamContext& ctx,
               const ComplianceConfig& cfg, std::vector<Violation>& out) {
  (void)ctx;
  (void)cfg;

  // --- Criterion 1: message type definition -----------------------------
  // The RTP payload type is a 7-bit profile-defined field; RFC 3550
  // leaves its assignment to profiles and signaling, so any value
  // 0..127 is a "defined" type. (This matches the paper, which counts
  // e.g. Zoom's unassigned PTs 35/38/41/... as compliant; FaceTime's
  // PTs fail later criteria, not this one.)

  // --- Criterion 2: header field validity --------------------------------
  if (pkt.version != 2) {
    out.push_back({Criterion::kHeaderFieldValidity,
                   "RTP version " + std::to_string(pkt.version) + " != 2"});
  }
  if (pkt.padding && pkt.padding_len == 0) {
    out.push_back({Criterion::kHeaderFieldValidity,
                   "P bit set but padding count is zero"});
  }

  // --- Criterion 3: attribute (header-extension) type validity -----------
  if (pkt.extension) {
    const std::uint16_t profile = pkt.extension->profile;
    const bool defined_profile = profile == rtp::kOneByteProfile ||
                                 rtp::is_two_byte_profile(profile);
    if (!defined_profile) {
      out.push_back({Criterion::kAttributeTypeValidity,
                     "header extension profile " +
                         rtcc::util::hex_u16(profile) +
                         " is not defined in RFC 8285 (not 0xBEDE or "
                         "0x1000-0x100F)"});
    }
  }

  // --- Criterion 4: attribute value validity ------------------------------
  if (pkt.extension) {
    for (const auto& e : pkt.extension->elements) {
      if (e.malformed_padding) {
        out.push_back(
            {Criterion::kAttributeValueValidity,
             "extension element with ID 0 carries a non-zero length — "
             "RFC 8285 §4.2 reserves ID 0 for padding with length 0"});
      }
    }
  }

  // --- Criterion 5: syntax & semantic integrity ---------------------------
  // Multiple RTP messages per datagram are explicitly tolerated by
  // RFC 3550 ("several RTP packets may be contained if permitted by the
  // encapsulation"), so the Zoom pattern (§5.3) is *not* flagged here;
  // it is surfaced as a behavioural finding by the report layer.
}

}  // namespace rtcc::compliance::rules
