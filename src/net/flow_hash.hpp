// RSS-style symmetric 5-tuple flow hash (DESIGN.md "Flow sharding").
//
// The sharded pipeline assigns every datagram to a shard by hashing its
// 5-tuple, the same trick NICs use for receive-side scaling. Two
// properties matter and are both unit-tested (tests/test_flow_hash.cpp):
//
//   symmetry — both directions of a conversation must land on the same
//   shard, or a bidirectional stream's state would be split across two
//   cores. Like symmetric-key Toeplitz variants, the hash combines the
//   two (ip, port) endpoint digests with commutative operators (xor and
//   add) before the final mix, so swapping source and destination
//   cannot change the result.
//
//   balance — shard load tracks flow count, not flow-key structure.
//   Endpoint digests go through a full-avalanche 64-bit finalizer
//   (splitmix64), so sequential ports / adjacent addresses (exactly
//   what the emulator and real NAT'd captures produce) still spread
//   uniformly; a chi-squared test over emulated corpus flows guards
//   this.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/stream_table.hpp"

namespace rtcc::net {

/// Symmetric 64-bit flow digest of an (ip, port) endpoint pair plus
/// transport. rss_flow_hash(src, sp, dst, dp, t) ==
/// rss_flow_hash(dst, dp, src, sp, t) by construction.
[[nodiscard]] std::uint64_t rss_flow_hash(const IpAddr& src,
                                          std::uint16_t src_port,
                                          const IpAddr& dst,
                                          std::uint16_t dst_port,
                                          Transport transport);

/// Digest of a canonical bidirectional FlowKey (stream_table.hpp).
/// Equals the directed overload for either direction of the same flow.
[[nodiscard]] std::uint64_t rss_flow_hash(const FlowKey& key);

/// Shard index in [0, shards) for a flow. shards == 0 is treated as 1.
[[nodiscard]] std::size_t shard_of(const FlowKey& key, std::size_t shards);

}  // namespace rtcc::net
