// Transport-stream grouping (§3.2): packets are grouped into streams by
// their 5-tuple, treating the two directions of a conversation as one
// bidirectional stream (like Wireshark's "Follow UDP stream").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/headers.hpp"
#include "net/pcap.hpp"

namespace rtcc::net {

enum class Direction : std::uint8_t { kAtoB, kBtoA };

/// Canonical bidirectional 5-tuple: endpoint A is the lexicographically
/// smaller (ip, port) pair so both directions hash identically.
struct FlowKey {
  IpAddr a;
  std::uint16_t a_port = 0;
  IpAddr b;
  std::uint16_t b_port = 0;
  Transport transport = Transport::kUdp;

  bool operator==(const FlowKey&) const = default;

  [[nodiscard]] std::string to_string() const;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept;
};

/// Canonicalises a decoded packet into (key, direction-of-this-packet).
[[nodiscard]] std::pair<FlowKey, Direction> canonical_flow(const Decoded& d);

/// One packet's membership in a stream; indexes into the owning Trace.
/// `payload_off` is the transport payload's start within the frame
/// bytes, recorded at grouping time so packet_payload() is a pure
/// subspan into the trace arena — no per-access frame re-decode.
/// Packets reassembled from IPv4 fragments have no single home frame:
/// `reasm` >= 0 indexes StreamTable::reassembled instead, and
/// `frame_index` points at the completing fragment (for timestamps).
struct StreamPacket {
  std::uint32_t frame_index = 0;
  double ts = 0.0;
  Direction dir = Direction::kAtoB;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_off = 0;
  std::int32_t reasm = -1;
};

struct Stream {
  FlowKey key;
  std::vector<StreamPacket> packets;
  double first_ts = 0.0;
  double last_ts = 0.0;

  [[nodiscard]] std::uint64_t total_payload_bytes() const;
};

/// All streams of one trace plus decode bookkeeping.
struct StreamTable {
  std::vector<Stream> streams;
  std::size_t undecodable_frames = 0;  // frames that produced no packet
                                       // (non-IP / truncated / clipped /
                                       // unknown linktype)
  /// Capture-layer counters inherited from the trace, merged with the
  /// FrameDecoder's per-frame decode accounting.
  IngestStats ingest;
  /// Payloads of datagrams reassembled from IPv4 fragments (they span
  /// several frames, so the table owns their bytes).
  std::vector<rtcc::util::Bytes> reassembled;

  [[nodiscard]] std::size_t udp_stream_count() const;
  [[nodiscard]] std::size_t tcp_stream_count() const;
  [[nodiscard]] std::uint64_t udp_datagram_count() const;
  [[nodiscard]] std::uint64_t tcp_segment_count() const;
};

/// Single pass over a trace: decode every frame under the trace's
/// linktype (VLAN stripping + bounded IPv4 reassembly included), group
/// into streams.
[[nodiscard]] StreamTable group_streams(const Trace& trace);

/// Resolves a StreamPacket back to its transport payload bytes (view
/// into the trace's frame). Returns {} for reassembled packets — their
/// bytes live in the table; use the table-aware overload.
[[nodiscard]] rtcc::util::BytesView packet_payload(const Trace& trace,
                                                   const StreamPacket& pkt);

/// Table-aware variant that also resolves reassembled packets.
[[nodiscard]] rtcc::util::BytesView packet_payload(const Trace& trace,
                                                   const StreamTable& table,
                                                   const StreamPacket& pkt);

}  // namespace rtcc::net
