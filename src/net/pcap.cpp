#include "net/pcap.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>

namespace rtcc::net {

using rtcc::util::Bytes;
using rtcc::util::BytesView;

namespace {

constexpr std::uint32_t kMagicNative = 0xA1B2C3D4;
constexpr std::uint32_t kMagicSwapped = 0xD4C3B2A1;
constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::uint32_t kSnapLen = 262144;

std::uint32_t load32(const std::uint8_t* p, bool swap) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  if (swap) v = __builtin_bswap32(v);
  return v;
}

void push32(Bytes& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 4);
}

void push16(Bytes& out, std::uint16_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 2);
}

void set_error(std::string* error, const char* msg) {
  if (error) *error = msg;
}

}  // namespace

std::uint64_t Trace::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& f : frames) n += f.data.size();
  return n;
}

Bytes encode_pcap(const Trace& trace) {
  Bytes out;
  out.reserve(24 + trace.frames.size() * 16 + trace.total_bytes());
  push32(out, kMagicNative);
  push16(out, 2);  // version major
  push16(out, 4);  // version minor
  push32(out, 0);  // thiszone
  push32(out, 0);  // sigfigs
  push32(out, kSnapLen);
  push32(out, kLinkEthernet);

  for (const auto& f : trace.frames) {
    const double ts = f.ts < 0 ? 0.0 : f.ts;
    const auto sec = static_cast<std::uint32_t>(ts);
    const auto usec = static_cast<std::uint32_t>(
        std::llround((ts - static_cast<double>(sec)) * 1e6) % 1000000);
    push32(out, sec);
    push32(out, usec);
    push32(out, static_cast<std::uint32_t>(f.data.size()));
    push32(out, static_cast<std::uint32_t>(f.data.size()));
    out.insert(out.end(), f.data.begin(), f.data.end());
  }
  return out;
}

std::optional<Trace> decode_pcap(BytesView data, std::string* error) {
  if (data.size() < 24) {
    set_error(error, "pcap: file shorter than global header");
    return std::nullopt;
  }
  std::uint32_t magic;
  std::memcpy(&magic, data.data(), 4);
  bool swap;
  if (magic == kMagicNative) {
    swap = false;
  } else if (magic == kMagicSwapped) {
    swap = true;
  } else {
    set_error(error, "pcap: bad magic number");
    return std::nullopt;
  }
  const std::uint32_t linktype = load32(data.data() + 20, swap);
  if (linktype != kLinkEthernet) {
    set_error(error, "pcap: unsupported link type (want Ethernet)");
    return std::nullopt;
  }

  Trace trace;
  std::size_t pos = 24;
  while (pos < data.size()) {
    if (pos + 16 > data.size()) {
      set_error(error, "pcap: truncated record header");
      return std::nullopt;
    }
    const std::uint32_t sec = load32(data.data() + pos, swap);
    const std::uint32_t usec = load32(data.data() + pos + 4, swap);
    const std::uint32_t incl = load32(data.data() + pos + 8, swap);
    pos += 16;
    if (pos + incl > data.size()) {
      set_error(error, "pcap: truncated packet record");
      return std::nullopt;
    }
    Frame f;
    f.ts = static_cast<double>(sec) + static_cast<double>(usec) * 1e-6;
    f.data.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                  data.begin() + static_cast<std::ptrdiff_t>(pos + incl));
    trace.frames.push_back(std::move(f));
    pos += incl;
  }
  return trace;
}

std::optional<Trace> read_pcap(const std::string& path, std::string* error) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> fp(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!fp) {
    set_error(error, "pcap: cannot open file");
    return std::nullopt;
  }
  Bytes data;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), fp.get())) > 0)
    data.insert(data.end(), buf, buf + n);
  return decode_pcap(BytesView{data}, error);
}

bool write_pcap(const std::string& path, const Trace& trace,
                std::string* error) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> fp(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!fp) {
    set_error(error, "pcap: cannot open file for writing");
    return false;
  }
  Bytes data = encode_pcap(trace);
  if (std::fwrite(data.data(), 1, data.size(), fp.get()) != data.size()) {
    set_error(error, "pcap: short write");
    return false;
  }
  return true;
}

}  // namespace rtcc::net
