#include "net/pcap.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define RTCC_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace rtcc::net {

using rtcc::util::Bytes;
using rtcc::util::BytesView;

namespace {

constexpr std::uint32_t kMagicNative = 0xA1B2C3D4;    // microseconds
constexpr std::uint32_t kMagicSwapped = 0xD4C3B2A1;
constexpr std::uint32_t kMagicNativeNs = 0xA1B23C4D;  // nanoseconds
constexpr std::uint32_t kMagicSwappedNs = 0x4D3CB2A1;
constexpr std::uint32_t kSnapLen = 262144;

std::uint32_t load32(const std::uint8_t* p, bool swap) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  if (swap) v = __builtin_bswap32(v);
  return v;
}

void push32(Bytes& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 4);
}

void push16(Bytes& out, std::uint16_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 2);
}

void set_error(std::string* error, const char* msg) {
  if (error) *error = msg;
}

/// Shared record walk of both decode paths: validates the global header,
/// then hands (ts, payload offset, incl_len, orig_len) for every intact
/// record to the sink — which either copies the bytes or registers a
/// view. Fail-soft: a torn tail record ends the walk and increments
/// stats.torn_tail instead of failing the whole file; a sub-second
/// field >= its unit is clamped to the last representable tick and
/// counted; incl_len < orig_len counts as snaplen-clipped. Hard errors
/// remain only for files that cannot be a capture at all.
template <typename FrameSink>
bool parse_pcap(BytesView data, std::string* error, IngestStats& stats,
                std::uint32_t& linktype, FrameSink&& on_frame) {
  if (data.size() < 24) {
    set_error(error, "pcap: file shorter than global header");
    return false;
  }
  std::uint32_t magic;
  std::memcpy(&magic, data.data(), 4);
  bool swap = false;
  bool nanos = false;
  if (magic == kMagicNative) {
  } else if (magic == kMagicSwapped) {
    swap = true;
  } else if (magic == kMagicNativeNs) {
    nanos = true;
  } else if (magic == kMagicSwappedNs) {
    swap = true;
    nanos = true;
  } else {
    set_error(error, "pcap: bad magic number");
    return false;
  }
  // Any linktype is accepted here; frames under one the decoder does
  // not understand are counted per-frame (unsupported_linktype) at
  // decode time, so the capture-layer accounting still runs.
  linktype = load32(data.data() + 20, swap);

  const std::uint32_t unit = nanos ? 1000000000u : 1000000u;
  const double scale = nanos ? 1e-9 : 1e-6;
  std::size_t pos = 24;
  while (pos < data.size()) {
    if (pos + 16 > data.size()) {
      ++stats.torn_tail;  // record header cut mid-bytes
      break;
    }
    const std::uint32_t sec = load32(data.data() + pos, swap);
    std::uint32_t sub = load32(data.data() + pos + 4, swap);
    const std::uint32_t incl = load32(data.data() + pos + 8, swap);
    const std::uint32_t orig = load32(data.data() + pos + 12, swap);
    pos += 16;
    if (incl > data.size() || pos + incl > data.size()) {
      ++stats.torn_tail;  // record payload cut mid-bytes
      break;
    }
    ++stats.frames_seen;
    if (sub >= unit) {
      // A fractional-second value >= one second would reorder frames;
      // clamp to the last representable tick (deterministic) and count.
      sub = unit - 1;
      ++stats.bad_usec;
    }
    if (orig > incl) ++stats.snaplen_clipped;
    const double ts =
        static_cast<double>(sec) + static_cast<double>(sub) * scale;
    on_frame(ts, pos, incl, orig);
    pos += incl;
  }
  return true;
}

}  // namespace

Frame& Trace::add_frame(double ts, BytesView bytes) {
  Frame f;
  f.ts = ts;
  if (use_arena_) {
    f.len = static_cast<std::uint32_t>(bytes.size());
    f.off = bytes.empty() ? 0 : arena_.append(bytes);
  } else {
    f.data.assign(bytes.begin(), bytes.end());
  }
  return add_frame(std::move(f));
}

Frame& Trace::add_frame(Frame f) {
  total_bytes_ += f.size();
  frames_.push_back(std::move(f));
  return frames_.back();
}

void Trace::adopt_arena(FrameArena&& arena) {
  // Offsets of already-registered view frames would shift if slabs were
  // merged, so adoption is only defined onto an empty arena.
  if (!arena_.empty()) return;
  arena_ = std::move(arena);
}

Bytes encode_pcap(const Trace& trace) {
  return encode_pcap_ex(trace, PcapEncodeOptions{});
}

Bytes encode_pcap_ex(const Trace& trace, const PcapEncodeOptions& opts) {
  const auto emit32 = [&](Bytes& out, std::uint32_t v) {
    push32(out, opts.swapped ? __builtin_bswap32(v) : v);
  };
  const auto emit16 = [&](Bytes& out, std::uint16_t v) {
    push16(out, opts.swapped ? static_cast<std::uint16_t>(
                                   (v >> 8) | (v << 8))
                             : v);
  };
  const double sub_unit = opts.nanosecond ? 1e9 : 1e6;
  const auto sub_mod = opts.nanosecond ? 1000000000LL : 1000000LL;

  Bytes out;
  out.reserve(24 + trace.size() * 16 + trace.total_bytes());
  push32(out, opts.swapped
                  ? __builtin_bswap32(opts.nanosecond ? kMagicNativeNs
                                                      : kMagicNative)
                  : (opts.nanosecond ? kMagicNativeNs : kMagicNative));
  emit16(out, 2);  // version major
  emit16(out, 4);  // version minor
  emit32(out, 0);  // thiszone
  emit32(out, 0);  // sigfigs
  emit32(out, kSnapLen);
  emit32(out, trace.linktype());

  for (const auto& f : trace.frames()) {
    const double ts = f.ts < 0 ? 0.0 : f.ts;
    const auto sec = static_cast<std::uint32_t>(ts);
    const auto sub = static_cast<std::uint32_t>(
        std::llround((ts - static_cast<double>(sec)) * sub_unit) % sub_mod);
    const BytesView bytes = trace.bytes(f);
    const auto incl = static_cast<std::uint32_t>(bytes.size());
    emit32(out, sec);
    emit32(out, sub);
    emit32(out, incl);
    // Preserve the on-the-wire length of snaplen-clipped captures.
    emit32(out, f.orig_len != 0 ? f.orig_len : incl);
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  return out;
}

std::optional<Trace> decode_pcap(BytesView data, std::string* error) {
  Trace trace;
  std::uint32_t linktype = kLinkEthernet;
  if (!parse_pcap(data, error, trace.ingest(), linktype,
                  [&](double ts, std::size_t pos, std::uint32_t incl,
                      std::uint32_t orig) {
                    trace.add_frame(ts, data.subspan(pos, incl)).orig_len =
                        orig;
                  }))
    return std::nullopt;
  trace.set_linktype(linktype);
  return trace;
}

std::optional<Trace> decode_pcap_zero_copy(BytesView data,
                                           std::shared_ptr<void> keepalive,
                                           std::string* error) {
  Trace trace(/*use_arena=*/true);
  const std::uint64_t base = trace.adopt_buffer(data, std::move(keepalive));
  std::uint32_t linktype = kLinkEthernet;
  if (!parse_pcap(data, error, trace.ingest(), linktype,
                  [&](double ts, std::size_t pos, std::uint32_t incl,
                      std::uint32_t orig) {
                    trace.add_frame(Frame{ts, {}, base + pos, incl, orig});
                  }))
    return std::nullopt;
  trace.set_linktype(linktype);
  return trace;
}

std::optional<Trace> decode_pcap_owned(Bytes data, std::string* error) {
  auto owner = std::make_shared<Bytes>(std::move(data));
  return decode_pcap_zero_copy(BytesView{*owner}, owner, error);
}

namespace {

std::optional<Trace> read_pcap_buffered(std::FILE* fp, bool zero_copy,
                                        std::string* error) {
  Bytes data;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), fp)) > 0)
    data.insert(data.end(), buf, buf + n);
  if (zero_copy) return decode_pcap_owned(std::move(data), error);
  return decode_pcap(BytesView{data}, error);
}

}  // namespace

std::optional<Trace> read_pcap(const std::string& path, std::string* error) {
#ifdef RTCC_HAS_MMAP
  if (arena_enabled()) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      set_error(error, "pcap: cannot open file");
      return std::nullopt;
    }
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      const auto len = static_cast<std::size_t>(st.st_size);
      void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        ::close(fd);
        std::shared_ptr<void> unmapper(
            map, [len](void* p) { ::munmap(p, len); });
        return decode_pcap_zero_copy(
            BytesView{static_cast<const std::uint8_t*>(map), len},
            std::move(unmapper), error);
      }
    }
    // mmap unavailable (empty file, pipe, weird fs): single-buffer read.
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> fp(::fdopen(fd, "rb"),
                                                       &std::fclose);
    if (!fp) {
      ::close(fd);
      set_error(error, "pcap: cannot open file");
      return std::nullopt;
    }
    return read_pcap_buffered(fp.get(), /*zero_copy=*/true, error);
  }
#endif
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> fp(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!fp) {
    set_error(error, "pcap: cannot open file");
    return std::nullopt;
  }
  return read_pcap_buffered(fp.get(), arena_enabled(), error);
}

bool write_pcap(const std::string& path, const Trace& trace,
                std::string* error) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> fp(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!fp) {
    set_error(error, "pcap: cannot open file for writing");
    return false;
  }
  Bytes data = encode_pcap(trace);
  if (std::fwrite(data.data(), 1, data.size(), fp.get()) != data.size()) {
    set_error(error, "pcap: short write");
    return false;
  }
  return true;
}

}  // namespace rtcc::net
