#include "net/address.hpp"

#include <charconv>
#include <cstdio>

namespace rtcc::net {

IpAddr IpAddr::v4(std::uint32_t host_order) {
  IpAddr a;
  a.v4_ = true;
  a.bytes_[12] = static_cast<std::uint8_t>(host_order >> 24);
  a.bytes_[13] = static_cast<std::uint8_t>(host_order >> 16);
  a.bytes_[14] = static_cast<std::uint8_t>(host_order >> 8);
  a.bytes_[15] = static_cast<std::uint8_t>(host_order);
  return a;
}

IpAddr IpAddr::v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                  std::uint8_t d) {
  return v4((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
            (std::uint32_t{c} << 8) | d);
}

IpAddr IpAddr::v6(const std::array<std::uint8_t, 16>& bytes) {
  IpAddr a;
  a.v4_ = false;
  a.bytes_ = bytes;
  return a;
}

std::uint32_t IpAddr::v4_value() const {
  return (std::uint32_t{bytes_[12]} << 24) | (std::uint32_t{bytes_[13]} << 16) |
         (std::uint32_t{bytes_[14]} << 8) | bytes_[15];
}

namespace {

std::optional<IpAddr> parse_v4(std::string_view text) {
  std::array<std::uint8_t, 4> parts{};
  std::size_t idx = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (idx < 4) {
    unsigned value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255 || next == p) return std::nullopt;
    parts[idx++] = static_cast<std::uint8_t>(value);
    p = next;
    if (idx < 4) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return IpAddr::v4(parts[0], parts[1], parts[2], parts[3]);
}

std::optional<IpAddr> parse_v6(std::string_view text) {
  // Split on "::" into head and tail group lists.
  std::array<std::uint16_t, 8> groups{};
  std::size_t head_count = 0, tail_count = 0;
  std::array<std::uint16_t, 8> head{}, tail{};
  bool seen_gap = false;

  auto parse_groups = [](std::string_view part, std::array<std::uint16_t, 8>& out,
                         std::size_t& count) -> bool {
    if (part.empty()) {
      count = 0;
      return true;
    }
    std::size_t start = 0;
    while (true) {
      std::size_t colon = part.find(':', start);
      std::string_view g = colon == std::string_view::npos
                               ? part.substr(start)
                               : part.substr(start, colon - start);
      if (g.empty() || g.size() > 4 || count >= 8) return false;
      unsigned value = 0;
      auto [next, ec] =
          std::from_chars(g.data(), g.data() + g.size(), value, 16);
      if (ec != std::errc{} || next != g.data() + g.size() || value > 0xFFFF)
        return false;
      out[count++] = static_cast<std::uint16_t>(value);
      if (colon == std::string_view::npos) return true;
      start = colon + 1;
    }
  };

  std::size_t gap = text.find("::");
  if (gap != std::string_view::npos) {
    seen_gap = true;
    if (!parse_groups(text.substr(0, gap), head, head_count))
      return std::nullopt;
    if (!parse_groups(text.substr(gap + 2), tail, tail_count))
      return std::nullopt;
    if (head_count + tail_count > 7) return std::nullopt;
  } else {
    if (!parse_groups(text, head, head_count)) return std::nullopt;
    if (head_count != 8) return std::nullopt;
  }

  if (seen_gap) {
    for (std::size_t i = 0; i < head_count; ++i) groups[i] = head[i];
    for (std::size_t i = 0; i < tail_count; ++i)
      groups[8 - tail_count + i] = tail[i];
  } else {
    groups = head;
  }

  std::array<std::uint8_t, 16> bytes{};
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i * 2] = static_cast<std::uint8_t>(groups[i] >> 8);
    bytes[i * 2 + 1] = static_cast<std::uint8_t>(groups[i]);
  }
  return IpAddr::v6(bytes);
}

}  // namespace

std::optional<IpAddr> IpAddr::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

bool IpAddr::is_private_v4() const {
  if (!v4_) return false;
  const std::uint32_t v = v4_value();
  return (v >> 24) == 10 ||                      // 10/8
         (v >> 20) == (172u << 4 | 1) ||         // 172.16/12 => 0xAC1
         (v >> 16) == ((192u << 8) | 168);       // 192.168/16
}

bool IpAddr::is_link_local_v6() const {
  return !v4_ && bytes_[0] == 0xFE && (bytes_[1] & 0xC0) == 0x80;
}

bool IpAddr::is_unique_local_v6() const {
  return !v4_ && (bytes_[0] & 0xFE) == 0xFC;
}

bool IpAddr::is_local_scope() const {
  return is_private_v4() || is_link_local_v6() || is_unique_local_v6();
}

bool IpAddr::is_loopback() const {
  if (v4_) return (v4_value() >> 24) == 127;
  for (std::size_t i = 0; i < 15; ++i)
    if (bytes_[i] != 0) return false;
  return bytes_[15] == 1;
}

std::string IpAddr::to_string() const {
  char buf[64];
  if (v4_) {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bytes_[12], bytes_[13],
                  bytes_[14], bytes_[15]);
    return buf;
  }
  // Uncompressed but lowercase-hex IPv6 (sufficient for reports/tests).
  std::string out;
  for (std::size_t i = 0; i < 8; ++i) {
    std::uint16_t g = static_cast<std::uint16_t>(
        (std::uint16_t{bytes_[i * 2]} << 8) | bytes_[i * 2 + 1]);
    std::snprintf(buf, sizeof(buf), "%x", g);
    if (i) out.push_back(':');
    out.append(buf);
  }
  return out;
}

std::size_t IpAddrHash::operator()(const IpAddr& a) const noexcept {
  // FNV-1a over the 16 bytes plus the family flag.
  std::size_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ULL;
  };
  for (std::uint8_t b : a.v6_bytes()) mix(b);
  mix(a.is_v4() ? 1 : 0);
  return h;
}

}  // namespace rtcc::net
