#include "net/arena.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "util/env_knob.hpp"

namespace rtcc::net {

namespace {

std::atomic<bool>& arena_flag() {
  static std::atomic<bool> enabled{
      rtcc::util::env_knob_bool("RTCC_ARENA", true)};
  return enabled;
}

}  // namespace

bool arena_enabled() { return arena_flag().load(std::memory_order_relaxed); }

void set_arena_enabled(bool enabled) {
  arena_flag().store(enabled, std::memory_order_relaxed);
}

FrameArena::Slab& FrameArena::writable_tail(std::size_t n) {
  if (!slabs_.empty()) {
    Slab& tail = slabs_.back();
    if (tail.owned && tail.cap - tail.used >= n) return tail;
  }
  Slab slab;
  slab.cap = std::max(kSlabSize, n);
  // for_overwrite: a value-initialized slab would memset the whole
  // megabyte before the producer overwrites every byte anyway.
  slab.owned = std::make_unique_for_overwrite<std::uint8_t[]>(slab.cap);
  slab.data = slab.owned.get();
  slab.base = size_;
  slabs_.push_back(std::move(slab));
  return slabs_.back();
}

std::uint8_t* FrameArena::alloc(std::size_t n, std::uint64_t& off) {
  Slab& tail = writable_tail(n);
  off = tail.base + tail.used;
  std::uint8_t* p = tail.owned.get() + tail.used;
  tail.used += n;
  size_ = off + n;
  return p;
}

std::uint64_t FrameArena::append(rtcc::util::BytesView bytes) {
  if (bytes.empty()) return size_;
  std::uint64_t off = 0;
  std::uint8_t* p = alloc(bytes.size(), off);
  std::memcpy(p, bytes.data(), bytes.size());
  return off;
}

std::uint64_t FrameArena::adopt(rtcc::util::BytesView data,
                                std::shared_ptr<void> keepalive) {
  Slab slab;
  slab.keepalive = std::move(keepalive);
  slab.data = data.data();
  slab.used = data.size();
  slab.cap = data.size();
  slab.base = size_;
  slabs_.push_back(std::move(slab));
  size_ += data.size();
  return slabs_.back().base;
}

rtcc::util::BytesView FrameArena::view(std::uint64_t off,
                                       std::size_t len) const {
  if (len == 0) return {};
  // Last slab whose base <= off. Slab counts are tiny (size/1MiB), so a
  // binary search costs a handful of well-predicted branches.
  auto it = std::upper_bound(
      slabs_.begin(), slabs_.end(), off,
      [](std::uint64_t o, const Slab& s) { return o < s.base; });
  if (it == slabs_.begin()) return {};
  const Slab& slab = *std::prev(it);
  const std::uint64_t local = off - slab.base;
  if (local > slab.used || len > slab.used - local) return {};
  return {slab.data + local, len};
}

}  // namespace rtcc::net
