#include "net/headers.hpp"

#include <algorithm>

#include "util/bytes.hpp"

namespace rtcc::net {

using rtcc::util::ByteReader;
using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

namespace {

constexpr std::uint16_t kEtherIpv4 = 0x0800;
constexpr std::uint16_t kEtherIpv6 = 0x86DD;
constexpr std::size_t kEthHeader = 14;

std::uint32_t sum16(BytesView data, std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    acc += rtcc::util::load_be16(data.data() + i);
  if (i < data.size()) acc += std::uint32_t{data[i]} << 8;
  return acc;
}

std::uint16_t fold(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

}  // namespace

std::string to_string(Transport t) {
  switch (t) {
    case Transport::kUdp:
      return "UDP";
    case Transport::kTcp:
      return "TCP";
    case Transport::kOther:
      break;
  }
  return "OTHER";
}

std::uint16_t internet_checksum(BytesView data, std::uint32_t initial) {
  return fold(sum16(data, initial));
}

std::optional<Decoded> decode_frame(BytesView frame) {
  if (frame.size() < kEthHeader) return std::nullopt;
  const std::uint16_t ethertype = rtcc::util::load_be16(frame.data() + 12);
  BytesView ip = frame.subspan(kEthHeader);

  Decoded out;
  std::uint8_t proto = 0;
  BytesView l4;

  if (ethertype == kEtherIpv4) {
    if (ip.size() < 20) return std::nullopt;
    const std::uint8_t version = ip[0] >> 4;
    const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
    if (version != 4 || ihl < 20 || ip.size() < ihl) return std::nullopt;
    const std::uint16_t total_len = rtcc::util::load_be16(ip.data() + 2);
    if (total_len < ihl || total_len > ip.size()) return std::nullopt;
    proto = ip[9];
    out.src = IpAddr::v4(rtcc::util::load_be32(ip.data() + 12));
    out.dst = IpAddr::v4(rtcc::util::load_be32(ip.data() + 16));
    out.is_v6 = false;
    l4 = ip.subspan(ihl, total_len - ihl);
  } else if (ethertype == kEtherIpv6) {
    if (ip.size() < 40) return std::nullopt;
    if ((ip[0] >> 4) != 6) return std::nullopt;
    const std::uint16_t payload_len = rtcc::util::load_be16(ip.data() + 4);
    if (std::size_t{payload_len} + 40 > ip.size()) return std::nullopt;
    proto = ip[6];  // next header; extension headers unsupported on purpose
    std::array<std::uint8_t, 16> src{}, dst{};
    std::copy_n(ip.data() + 8, 16, src.begin());
    std::copy_n(ip.data() + 24, 16, dst.begin());
    out.src = IpAddr::v6(src);
    out.dst = IpAddr::v6(dst);
    out.is_v6 = true;
    l4 = ip.subspan(40, payload_len);
  } else {
    return std::nullopt;
  }

  if (proto == 17) {
    if (l4.size() < 8) return std::nullopt;
    out.transport = Transport::kUdp;
    out.src_port = rtcc::util::load_be16(l4.data());
    out.dst_port = rtcc::util::load_be16(l4.data() + 2);
    const std::uint16_t udp_len = rtcc::util::load_be16(l4.data() + 4);
    if (udp_len < 8 || udp_len > l4.size()) return std::nullopt;
    out.payload = l4.subspan(8, udp_len - 8);
  } else if (proto == 6) {
    if (l4.size() < 20) return std::nullopt;
    out.transport = Transport::kTcp;
    out.src_port = rtcc::util::load_be16(l4.data());
    out.dst_port = rtcc::util::load_be16(l4.data() + 2);
    const std::size_t data_off = static_cast<std::size_t>(l4[12] >> 4) * 4;
    if (data_off < 20 || data_off > l4.size()) return std::nullopt;
    out.payload = l4.subspan(data_off);
  } else {
    return std::nullopt;
  }
  return out;
}

Bytes build_frame(const FrameSpec& spec, BytesView payload) {
  ByteWriter w(kEthHeader + 40 + 20 + payload.size());

  // Ethernet header with fixed synthetic locally administered MACs.
  const std::array<std::uint8_t, 6> dst_mac{0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  const std::array<std::uint8_t, 6> src_mac{0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  w.raw(BytesView{dst_mac}).raw(BytesView{src_mac});
  w.u16(spec.src.is_v4() ? kEtherIpv4 : kEtherIpv6);

  const auto proto_num = static_cast<std::uint8_t>(spec.transport);

  // Transport header + payload assembled first so lengths are known.
  ByteWriter l4;
  if (spec.transport == Transport::kUdp) {
    l4.u16(spec.src_port).u16(spec.dst_port);
    l4.u16(static_cast<std::uint16_t>(8 + payload.size()));
    l4.u16(0);  // checksum patched below
    l4.raw(payload);
  } else {
    // Minimal TCP header: seq/ack zeroed, PSH+ACK, fixed window.
    l4.u16(spec.src_port).u16(spec.dst_port);
    l4.u32(0).u32(0);
    l4.u8(0x50);  // data offset = 5 words
    l4.u8(0x18);  // PSH|ACK
    l4.u16(65535);
    l4.u16(0).u16(0);  // checksum, urgent
    l4.raw(payload);
  }

  if (spec.src.is_v4()) {
    ByteWriter ip;
    ip.u8(0x45).u8(0);
    ip.u16(static_cast<std::uint16_t>(20 + l4.size()));
    ip.u16(0).u16(0x4000);  // id=0, DF
    ip.u8(spec.ttl).u8(proto_num);
    ip.u16(0);  // header checksum placeholder
    ip.u32(spec.src.v4_value());
    ip.u32(spec.dst.v4_value());
    Bytes ip_hdr = std::move(ip).take();
    rtcc::util::store_be16(ip_hdr.data() + 10,
                           internet_checksum(BytesView{ip_hdr}));

    // UDP checksum over IPv4 pseudo-header.
    if (spec.transport == Transport::kUdp) {
      ByteWriter pseudo;
      pseudo.u32(spec.src.v4_value()).u32(spec.dst.v4_value());
      pseudo.u8(0).u8(proto_num);
      pseudo.u16(static_cast<std::uint16_t>(l4.size()));
      std::uint32_t acc = sum16(pseudo.view(), 0);
      acc = sum16(l4.view(), acc);
      std::uint16_t csum = fold(acc);
      if (csum == 0) csum = 0xFFFF;
      Bytes l4_bytes = std::move(l4).take();
      rtcc::util::store_be16(l4_bytes.data() + 6, csum);
      w.raw(BytesView{ip_hdr}).raw(BytesView{l4_bytes});
    } else {
      w.raw(BytesView{ip_hdr}).raw(l4.view());
    }
  } else {
    ByteWriter ip;
    ip.u32(0x60000000u);  // version 6, tc 0, flow 0
    ip.u16(static_cast<std::uint16_t>(l4.size()));
    ip.u8(proto_num).u8(spec.ttl);
    ip.raw(BytesView{spec.src.v6_bytes()});
    ip.raw(BytesView{spec.dst.v6_bytes()});

    if (spec.transport == Transport::kUdp) {
      ByteWriter pseudo;
      pseudo.raw(BytesView{spec.src.v6_bytes()});
      pseudo.raw(BytesView{spec.dst.v6_bytes()});
      pseudo.u32(static_cast<std::uint32_t>(l4.size()));
      pseudo.u24(0).u8(proto_num);
      std::uint32_t acc = sum16(pseudo.view(), 0);
      acc = sum16(l4.view(), acc);
      std::uint16_t csum = fold(acc);
      if (csum == 0) csum = 0xFFFF;
      Bytes l4_bytes = std::move(l4).take();
      rtcc::util::store_be16(l4_bytes.data() + 6, csum);
      w.raw(ip.view()).raw(BytesView{l4_bytes});
    } else {
      w.raw(ip.view()).raw(l4.view());
    }
  }
  return std::move(w).take();
}

}  // namespace rtcc::net
