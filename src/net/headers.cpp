#include "net/headers.hpp"

#include <algorithm>
#include <cstring>

#include "util/bytes.hpp"

namespace rtcc::net {

using rtcc::util::ByteReader;
using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

namespace {

constexpr std::uint16_t kEtherIpv4 = 0x0800;
constexpr std::uint16_t kEtherIpv6 = 0x86DD;
constexpr std::size_t kEthHeader = 14;

std::uint32_t sum16(BytesView data, std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    acc += rtcc::util::load_be16(data.data() + i);
  if (i < data.size()) acc += std::uint32_t{data[i]} << 8;
  return acc;
}

std::uint16_t fold(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

}  // namespace

std::string to_string(Transport t) {
  switch (t) {
    case Transport::kUdp:
      return "UDP";
    case Transport::kTcp:
      return "TCP";
    case Transport::kOther:
      break;
  }
  return "OTHER";
}

std::uint16_t internet_checksum(BytesView data, std::uint32_t initial) {
  return fold(sum16(data, initial));
}

std::optional<Decoded> decode_frame(BytesView frame) {
  if (frame.size() < kEthHeader) return std::nullopt;
  const std::uint16_t ethertype = rtcc::util::load_be16(frame.data() + 12);
  BytesView ip = frame.subspan(kEthHeader);

  Decoded out;
  std::uint8_t proto = 0;
  BytesView l4;

  if (ethertype == kEtherIpv4) {
    if (ip.size() < 20) return std::nullopt;
    const std::uint8_t version = ip[0] >> 4;
    const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
    if (version != 4 || ihl < 20 || ip.size() < ihl) return std::nullopt;
    const std::uint16_t total_len = rtcc::util::load_be16(ip.data() + 2);
    if (total_len < ihl || total_len > ip.size()) return std::nullopt;
    proto = ip[9];
    out.src = IpAddr::v4(rtcc::util::load_be32(ip.data() + 12));
    out.dst = IpAddr::v4(rtcc::util::load_be32(ip.data() + 16));
    out.is_v6 = false;
    l4 = ip.subspan(ihl, total_len - ihl);
  } else if (ethertype == kEtherIpv6) {
    if (ip.size() < 40) return std::nullopt;
    if ((ip[0] >> 4) != 6) return std::nullopt;
    const std::uint16_t payload_len = rtcc::util::load_be16(ip.data() + 4);
    if (std::size_t{payload_len} + 40 > ip.size()) return std::nullopt;
    proto = ip[6];  // next header; extension headers unsupported on purpose
    std::array<std::uint8_t, 16> src{}, dst{};
    std::copy_n(ip.data() + 8, 16, src.begin());
    std::copy_n(ip.data() + 24, 16, dst.begin());
    out.src = IpAddr::v6(src);
    out.dst = IpAddr::v6(dst);
    out.is_v6 = true;
    l4 = ip.subspan(40, payload_len);
  } else {
    return std::nullopt;
  }

  if (proto == 17) {
    if (l4.size() < 8) return std::nullopt;
    out.transport = Transport::kUdp;
    out.src_port = rtcc::util::load_be16(l4.data());
    out.dst_port = rtcc::util::load_be16(l4.data() + 2);
    const std::uint16_t udp_len = rtcc::util::load_be16(l4.data() + 4);
    if (udp_len < 8 || udp_len > l4.size()) return std::nullopt;
    out.payload = l4.subspan(8, udp_len - 8);
  } else if (proto == 6) {
    if (l4.size() < 20) return std::nullopt;
    out.transport = Transport::kTcp;
    out.src_port = rtcc::util::load_be16(l4.data());
    out.dst_port = rtcc::util::load_be16(l4.data() + 2);
    const std::size_t data_off = static_cast<std::size_t>(l4[12] >> 4) * 4;
    if (data_off < 20 || data_off > l4.size()) return std::nullopt;
    out.payload = l4.subspan(data_off);
  } else {
    return std::nullopt;
  }
  return out;
}

namespace {

/// Writes the full frame into `out` (exactly frame_wire_size bytes).
/// Headers, payload and checksums are written in place — this is the
/// shared core of build_frame (owned buffer) and build_frame_arena
/// (slab), so both produce identical bytes by construction.
void write_frame(std::uint8_t* out, const FrameSpec& spec,
                 BytesView payload) {
  // Ethernet header with fixed synthetic locally administered MACs.
  constexpr std::uint8_t dst_mac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  constexpr std::uint8_t src_mac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  std::memcpy(out, dst_mac, 6);
  std::memcpy(out + 6, src_mac, 6);
  rtcc::util::store_be16(out + 12,
                         spec.src.is_v4() ? kEtherIpv4 : kEtherIpv6);

  const auto proto_num = static_cast<std::uint8_t>(spec.transport);
  const std::size_t ip_hdr = spec.src.is_v4() ? 20 : 40;
  const std::size_t l4_len =
      (spec.transport == Transport::kUdp ? 8 : 20) + payload.size();
  std::uint8_t* ip = out + kEthHeader;
  std::uint8_t* l4 = ip + ip_hdr;

  if (spec.transport == Transport::kUdp) {
    rtcc::util::store_be16(l4, spec.src_port);
    rtcc::util::store_be16(l4 + 2, spec.dst_port);
    rtcc::util::store_be16(l4 + 4,
                           static_cast<std::uint16_t>(8 + payload.size()));
    rtcc::util::store_be16(l4 + 6, 0);  // checksum patched below
    if (!payload.empty()) std::memcpy(l4 + 8, payload.data(), payload.size());
  } else {
    // Minimal TCP header: seq/ack zeroed, PSH+ACK, fixed window,
    // checksum left zero (the analysis pipeline never verifies it).
    rtcc::util::store_be16(l4, spec.src_port);
    rtcc::util::store_be16(l4 + 2, spec.dst_port);
    rtcc::util::store_be32(l4 + 4, 0);
    rtcc::util::store_be32(l4 + 8, 0);
    l4[12] = 0x50;  // data offset = 5 words
    l4[13] = 0x18;  // PSH|ACK
    rtcc::util::store_be16(l4 + 14, 65535);
    rtcc::util::store_be16(l4 + 16, 0);  // checksum
    rtcc::util::store_be16(l4 + 18, 0);  // urgent
    if (!payload.empty()) std::memcpy(l4 + 20, payload.data(), payload.size());
  }

  if (spec.src.is_v4()) {
    ip[0] = 0x45;
    ip[1] = 0;
    rtcc::util::store_be16(ip + 2, static_cast<std::uint16_t>(20 + l4_len));
    rtcc::util::store_be16(ip + 4, 0);       // id
    rtcc::util::store_be16(ip + 6, 0x4000);  // DF
    ip[8] = spec.ttl;
    ip[9] = proto_num;
    rtcc::util::store_be16(ip + 10, 0);  // header checksum placeholder
    rtcc::util::store_be32(ip + 12, spec.src.v4_value());
    rtcc::util::store_be32(ip + 16, spec.dst.v4_value());
    rtcc::util::store_be16(ip + 10, internet_checksum(BytesView{ip, 20}));

    if (spec.transport == Transport::kUdp) {
      // UDP checksum over the IPv4 pseudo-header.
      std::uint8_t pseudo[12];
      rtcc::util::store_be32(pseudo, spec.src.v4_value());
      rtcc::util::store_be32(pseudo + 4, spec.dst.v4_value());
      pseudo[8] = 0;
      pseudo[9] = proto_num;
      rtcc::util::store_be16(pseudo + 10, static_cast<std::uint16_t>(l4_len));
      std::uint32_t acc = sum16(BytesView{pseudo, sizeof pseudo}, 0);
      acc = sum16(BytesView{l4, l4_len}, acc);
      std::uint16_t csum = fold(acc);
      if (csum == 0) csum = 0xFFFF;
      rtcc::util::store_be16(l4 + 6, csum);
    }
  } else {
    rtcc::util::store_be32(ip, 0x60000000u);  // version 6, tc 0, flow 0
    rtcc::util::store_be16(ip + 4, static_cast<std::uint16_t>(l4_len));
    ip[6] = proto_num;
    ip[7] = spec.ttl;
    std::memcpy(ip + 8, spec.src.v6_bytes().data(), 16);
    std::memcpy(ip + 24, spec.dst.v6_bytes().data(), 16);

    if (spec.transport == Transport::kUdp) {
      std::uint8_t pseudo[40];
      std::memcpy(pseudo, spec.src.v6_bytes().data(), 16);
      std::memcpy(pseudo + 16, spec.dst.v6_bytes().data(), 16);
      rtcc::util::store_be32(pseudo + 32, static_cast<std::uint32_t>(l4_len));
      pseudo[36] = 0;
      pseudo[37] = 0;
      pseudo[38] = 0;
      pseudo[39] = proto_num;
      std::uint32_t acc = sum16(BytesView{pseudo, sizeof pseudo}, 0);
      acc = sum16(BytesView{l4, l4_len}, acc);
      std::uint16_t csum = fold(acc);
      if (csum == 0) csum = 0xFFFF;
      rtcc::util::store_be16(l4 + 6, csum);
    }
  }
}

}  // namespace

std::size_t frame_wire_size(const FrameSpec& spec, std::size_t payload_size) {
  return kEthHeader + (spec.src.is_v4() ? 20u : 40u) +
         (spec.transport == Transport::kUdp ? 8u : 20u) + payload_size;
}

Bytes build_frame(const FrameSpec& spec, BytesView payload) {
  Bytes out(frame_wire_size(spec, payload.size()));
  write_frame(out.data(), spec, payload);
  return out;
}

Frame build_frame_arena(FrameArena& arena, double ts, const FrameSpec& spec,
                        BytesView payload) {
  const std::size_t n = frame_wire_size(spec, payload.size());
  std::uint64_t off = 0;
  write_frame(arena.alloc(n, off), spec, payload);
  return Frame{ts, {}, off, static_cast<std::uint32_t>(n)};
}

}  // namespace rtcc::net
