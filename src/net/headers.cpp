#include "net/headers.hpp"

#include <algorithm>
#include <cstring>

#include "util/bytes.hpp"

namespace rtcc::net {

using rtcc::util::ByteReader;
using rtcc::util::Bytes;
using rtcc::util::BytesView;
using rtcc::util::ByteWriter;

namespace {

constexpr std::uint16_t kEtherIpv4 = 0x0800;
constexpr std::uint16_t kEtherIpv6 = 0x86DD;
constexpr std::size_t kEthHeader = 14;

std::uint32_t sum16(BytesView data, std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    acc += rtcc::util::load_be16(data.data() + i);
  if (i < data.size()) acc += std::uint32_t{data[i]} << 8;
  return acc;
}

std::uint16_t fold(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

}  // namespace

std::string to_string(Transport t) {
  switch (t) {
    case Transport::kUdp:
      return "UDP";
    case Transport::kTcp:
      return "TCP";
    case Transport::kOther:
      break;
  }
  return "OTHER";
}

std::uint16_t internet_checksum(BytesView data, std::uint32_t initial) {
  return fold(sum16(data, initial));
}

namespace {

constexpr std::uint16_t kTpidQ = 0x8100;           // 802.1Q
constexpr std::uint16_t kTpidQinQ = 0x88A8;        // 802.1ad service tag
constexpr std::uint16_t kTpidQinQLegacy = 0x9100;  // pre-standard QinQ

bool is_vlan_tpid(std::uint16_t et) {
  return et == kTpidQ || et == kTpidQinQ || et == kTpidQinQLegacy;
}

/// Decode outcome. Exactly one of these describes every frame; the
/// IngestStats accounting maps each to a single counter.
enum class Fail : std::uint8_t {
  kNone,
  kCorrupt,   // truncated / inconsistent headers
  kNonIp,     // non-IP ethertype or non-UDP/TCP protocol
  kFragment,  // IPv4 fragment (only FrameDecoder can deliver these)
  kUnsupportedLinktype,
};

/// IPv4 fragment geometry + reassembly key material.
struct FragInfo {
  bool is_fragment = false;
  bool more = false;            // MF bit
  std::uint32_t offset = 0;     // payload byte offset within the datagram
  std::uint16_t id = 0;         // IP identification field
  std::uint8_t proto = 0;
  rtcc::util::BytesView piece;  // this fragment's slice of the IP payload
};

/// L2 dispatch: resolve the ethertype and IP bytes for `linktype`,
/// stripping any 802.1Q/QinQ tag stack. kLinkNull/kLinkRaw carry no
/// ethertype; they synthesise the equivalent IP value.
Fail dispatch_l2(BytesView frame, std::uint32_t linktype,
                 std::uint16_t& ethertype, BytesView& ip, bool& vlan) {
  std::size_t l2 = 0;
  switch (linktype) {
    case kLinkEthernet:
      if (frame.size() < kEthHeader) return Fail::kCorrupt;
      ethertype = rtcc::util::load_be16(frame.data() + 12);
      l2 = kEthHeader;
      break;
    case kLinkLinuxSll:  // 16-byte cooked header, ethertype at the end
      if (frame.size() < 16) return Fail::kCorrupt;
      ethertype = rtcc::util::load_be16(frame.data() + 14);
      l2 = 16;
      break;
    case kLinkSll2:  // 20-byte cooked v2 header, ethertype first
      if (frame.size() < 20) return Fail::kCorrupt;
      ethertype = rtcc::util::load_be16(frame.data());
      l2 = 20;
      break;
    case kLinkNull: {
      // 4-byte address family in the *capturing* host's byte order; the
      // AF constants are < 256, so a value with high bytes set was
      // stored little-endian.
      if (frame.size() < 4) return Fail::kCorrupt;
      std::uint32_t af = rtcc::util::load_be32(frame.data());
      if (af >> 16) af >>= 24;
      if (af == 2) {
        ethertype = kEtherIpv4;  // AF_INET
      } else if (af == 10 || af == 24 || af == 28 || af == 30) {
        ethertype = kEtherIpv6;  // AF_INET6 across Linux/NetBSD/FreeBSD/Darwin
      } else {
        return Fail::kNonIp;
      }
      l2 = 4;
      break;
    }
    case kLinkRaw: {  // bare IP, version nibble selects the family
      if (frame.empty()) return Fail::kCorrupt;
      const std::uint8_t version = frame[0] >> 4;
      if (version == 4) {
        ethertype = kEtherIpv4;
      } else if (version == 6) {
        ethertype = kEtherIpv6;
      } else {
        return Fail::kNonIp;
      }
      break;
    }
    default:
      return Fail::kUnsupportedLinktype;
  }

  while (is_vlan_tpid(ethertype)) {
    if (l2 + 4 > frame.size()) return Fail::kCorrupt;
    ethertype = rtcc::util::load_be16(frame.data() + l2 + 2);
    l2 += 4;
    vlan = true;
  }
  ip = frame.subspan(l2);
  return Fail::kNone;
}

/// L2 + L3: fills addresses/family and the L4 slice + protocol, or the
/// fragment geometry when the frame is an IPv4 fragment.
Fail decode_l3(BytesView frame, std::uint32_t linktype, Decoded& out,
               std::uint8_t& proto, BytesView& l4, bool& vlan,
               FragInfo* frag) {
  std::uint16_t ethertype = 0;
  BytesView ip;
  if (Fail f = dispatch_l2(frame, linktype, ethertype, ip, vlan);
      f != Fail::kNone)
    return f;

  if (ethertype == kEtherIpv4) {
    if (ip.size() < 20) return Fail::kCorrupt;
    const std::uint8_t version = ip[0] >> 4;
    const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
    if (version != 4 || ihl < 20 || ip.size() < ihl) return Fail::kCorrupt;
    const std::uint16_t total_len = rtcc::util::load_be16(ip.data() + 2);
    if (total_len < ihl || total_len > ip.size()) return Fail::kCorrupt;
    proto = ip[9];
    out.src = IpAddr::v4(rtcc::util::load_be32(ip.data() + 12));
    out.dst = IpAddr::v4(rtcc::util::load_be32(ip.data() + 16));
    out.is_v6 = false;
    l4 = ip.subspan(ihl, total_len - ihl);
    // Fragment check BEFORE any L4 parse: a fragment's leading payload
    // bytes are datagram middle, not a UDP/TCP header. Only MF and the
    // 13-bit offset matter — DF (0x4000) is set on every synthetic
    // frame and does not make one.
    const std::uint16_t flags_frag = rtcc::util::load_be16(ip.data() + 6);
    const bool more = (flags_frag & 0x2000) != 0;
    const std::uint32_t frag_off = std::uint32_t{flags_frag & 0x1FFFu} * 8;
    if (more || frag_off != 0) {
      if (frag != nullptr) {
        frag->is_fragment = true;
        frag->more = more;
        frag->offset = frag_off;
        frag->id = rtcc::util::load_be16(ip.data() + 4);
        frag->proto = proto;
        frag->piece = l4;
      }
      return Fail::kFragment;
    }
  } else if (ethertype == kEtherIpv6) {
    if (ip.size() < 40) return Fail::kCorrupt;
    if ((ip[0] >> 4) != 6) return Fail::kCorrupt;
    const std::uint16_t payload_len = rtcc::util::load_be16(ip.data() + 4);
    if (std::size_t{payload_len} + 40 > ip.size()) return Fail::kCorrupt;
    proto = ip[6];  // next header; extension headers unsupported on purpose
    std::array<std::uint8_t, 16> src{}, dst{};
    std::copy_n(ip.data() + 8, 16, src.begin());
    std::copy_n(ip.data() + 24, 16, dst.begin());
    out.src = IpAddr::v6(src);
    out.dst = IpAddr::v6(dst);
    out.is_v6 = true;
    l4 = ip.subspan(40, payload_len);
  } else {
    return Fail::kNonIp;
  }
  return Fail::kNone;
}

/// UDP/TCP header parse over a complete L4 slice (frame-contained or
/// reassembled — same validation either way).
Fail parse_l4(std::uint8_t proto, BytesView l4, Decoded& out) {
  if (proto == 17) {
    if (l4.size() < 8) return Fail::kCorrupt;
    out.transport = Transport::kUdp;
    out.src_port = rtcc::util::load_be16(l4.data());
    out.dst_port = rtcc::util::load_be16(l4.data() + 2);
    const std::uint16_t udp_len = rtcc::util::load_be16(l4.data() + 4);
    if (udp_len < 8 || udp_len > l4.size()) return Fail::kCorrupt;
    out.payload = l4.subspan(8, udp_len - 8);
  } else if (proto == 6) {
    if (l4.size() < 20) return Fail::kCorrupt;
    out.transport = Transport::kTcp;
    out.src_port = rtcc::util::load_be16(l4.data());
    out.dst_port = rtcc::util::load_be16(l4.data() + 2);
    const std::size_t data_off = static_cast<std::size_t>(l4[12] >> 4) * 4;
    if (data_off < 20 || data_off > l4.size()) return Fail::kCorrupt;
    out.payload = l4.subspan(data_off);
  } else {
    return Fail::kNonIp;
  }
  return Fail::kNone;
}

}  // namespace

bool linktype_supported(std::uint32_t linktype) {
  switch (linktype) {
    case kLinkNull:
    case kLinkEthernet:
    case kLinkRaw:
    case kLinkLinuxSll:
    case kLinkSll2:
      return true;
    default:
      return false;
  }
}

std::string linktype_name(std::uint32_t linktype) {
  switch (linktype) {
    case kLinkNull:
      return "NULL";
    case kLinkEthernet:
      return "EN10MB";
    case kLinkRaw:
      return "RAW";
    case kLinkLinuxSll:
      return "LINUX_SLL";
    case kLinkSll2:
      return "LINUX_SLL2";
    default:
      return "LINKTYPE_" + std::to_string(linktype);
  }
}

std::optional<Decoded> decode_frame(BytesView frame, std::uint32_t linktype,
                                    IngestStats* stats) {
  Decoded out;
  std::uint8_t proto = 0;
  BytesView l4;
  bool vlan = false;
  Fail f = decode_l3(frame, linktype, out, proto, l4, vlan, nullptr);
  if (f == Fail::kNone) f = parse_l4(proto, l4, out);
  if (stats != nullptr) {
    if (vlan) ++stats->vlan_stripped;
    switch (f) {
      case Fail::kNone:
        ++stats->frames_decoded;
        break;
      case Fail::kCorrupt:
        ++stats->undecodable;
        break;
      case Fail::kNonIp:
        ++stats->non_ip;
        break;
      case Fail::kFragment:
        ++stats->fragments_seen;
        break;
      case Fail::kUnsupportedLinktype:
        ++stats->unsupported_linktype;
        break;
    }
  }
  if (f != Fail::kNone) return std::nullopt;
  return out;
}

std::optional<Decoded> decode_frame(BytesView frame) {
  return decode_frame(frame, kLinkEthernet, nullptr);
}

std::optional<Decoded> FrameDecoder::decode(BytesView frame, double ts,
                                            bool clipped) {
  clock_ = std::max(clock_, ts);
  expire_before(clock_ - kTimeoutS);

  Decoded out;
  std::uint8_t proto = 0;
  BytesView l4;
  bool vlan = false;
  FragInfo frag;
  Fail f = decode_l3(frame, linktype_, out, proto, l4, vlan, &frag);
  if (f == Fail::kNone) f = parse_l4(proto, l4, out);
  if (vlan) ++stats_.vlan_stripped;

  switch (f) {
    case Fail::kNone:
      ++stats_.frames_decoded;
      return out;
    case Fail::kCorrupt:
      ++(clipped ? stats_.clipped_undecodable : stats_.undecodable);
      return std::nullopt;
    case Fail::kNonIp:
      ++stats_.non_ip;
      return std::nullopt;
    case Fail::kUnsupportedLinktype:
      ++stats_.unsupported_linktype;
      return std::nullopt;
    case Fail::kFragment:
      break;
  }

  ++stats_.fragments_seen;
  // A clipped fragment's piece is not the full wire slice; splicing it
  // in would corrupt the datagram. Leave any partial state to expire.
  if (clipped) return std::nullopt;

  FragKey key{out.src, out.dst, frag.id, frag.proto};
  auto it = frags_.find(key);
  if (it == frags_.end()) {
    if (frags_.size() >= kMaxEntries) {
      // Evict the stalest datagram to stay bounded (deterministic:
      // oldest first_ts, map order breaking ties).
      auto oldest = frags_.begin();
      for (auto jt = frags_.begin(); jt != frags_.end(); ++jt)
        if (jt->second.first_ts < oldest->second.first_ts) oldest = jt;
      frags_.erase(oldest);
      ++stats_.fragments_expired;
    }
    it = frags_.emplace(key, Reassembly{}).first;
    it->second.first_ts = ts;
  }
  Reassembly& r = it->second;

  const std::uint64_t end = std::uint64_t{frag.offset} + frag.piece.size();
  if (end > kMaxDatagram ||                         // exceeds IPv4 max
      (r.total != 0 && end > r.total) ||            // beyond the known end
      (!frag.more && r.total != 0 && r.total != end)) {  // two distinct ends
    frags_.erase(it);
    ++stats_.fragments_expired;
    return std::nullopt;
  }
  if (!frag.more) r.total = static_cast<std::uint32_t>(end);
  if (r.data.size() < end) r.data.resize(end);
  std::copy(frag.piece.begin(), frag.piece.end(), r.data.begin() + frag.offset);

  // Merge [offset, end) into the sorted coverage list.
  r.have.emplace_back(frag.offset, static_cast<std::uint32_t>(end));
  std::sort(r.have.begin(), r.have.end());
  std::size_t w = 0;
  for (std::size_t i = 1; i < r.have.size(); ++i) {
    if (r.have[i].first <= r.have[w].second)
      r.have[w].second = std::max(r.have[w].second, r.have[i].second);
    else
      r.have[++w] = r.have[i];
  }
  r.have.resize(w + 1);

  const bool complete = r.total != 0 && r.have.size() == 1 &&
                        r.have[0].first == 0 && r.have[0].second >= r.total;
  if (!complete) return std::nullopt;

  completed_ = std::move(r.data);
  completed_.resize(r.total);
  frags_.erase(it);

  Decoded d;
  d.src = key.src;
  d.dst = key.dst;
  d.is_v6 = false;
  if (parse_l4(key.proto,
               BytesView{completed_.data(), completed_.size()},
               d) != Fail::kNone) {
    // Completed but unparseable (bad L4 header or non-UDP/TCP proto):
    // the datagram is never delivered, so it counts as a datagram loss.
    ++stats_.fragments_expired;
    return std::nullopt;
  }
  d.reassembled = true;
  ++stats_.frames_decoded;
  ++stats_.fragments_reassembled;
  return d;
}

void FrameDecoder::finish() {
  stats_.fragments_expired += frags_.size();
  frags_.clear();
}

void FrameDecoder::expire_before(double cutoff) {
  for (auto it = frags_.begin(); it != frags_.end();) {
    if (it->second.first_ts < cutoff) {
      it = frags_.erase(it);
      ++stats_.fragments_expired;
    } else {
      ++it;
    }
  }
}

namespace {

/// Writes the full frame into `out` (exactly frame_wire_size bytes).
/// Headers, payload and checksums are written in place — this is the
/// shared core of build_frame (owned buffer) and build_frame_arena
/// (slab), so both produce identical bytes by construction.
void write_frame(std::uint8_t* out, const FrameSpec& spec,
                 BytesView payload) {
  // Ethernet header with fixed synthetic locally administered MACs.
  constexpr std::uint8_t dst_mac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  constexpr std::uint8_t src_mac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  std::memcpy(out, dst_mac, 6);
  std::memcpy(out + 6, src_mac, 6);
  rtcc::util::store_be16(out + 12,
                         spec.src.is_v4() ? kEtherIpv4 : kEtherIpv6);

  const auto proto_num = static_cast<std::uint8_t>(spec.transport);
  const std::size_t ip_hdr = spec.src.is_v4() ? 20 : 40;
  const std::size_t l4_len =
      (spec.transport == Transport::kUdp ? 8 : 20) + payload.size();
  std::uint8_t* ip = out + kEthHeader;
  std::uint8_t* l4 = ip + ip_hdr;

  if (spec.transport == Transport::kUdp) {
    rtcc::util::store_be16(l4, spec.src_port);
    rtcc::util::store_be16(l4 + 2, spec.dst_port);
    rtcc::util::store_be16(l4 + 4,
                           static_cast<std::uint16_t>(8 + payload.size()));
    rtcc::util::store_be16(l4 + 6, 0);  // checksum patched below
    if (!payload.empty()) std::memcpy(l4 + 8, payload.data(), payload.size());
  } else {
    // Minimal TCP header: seq/ack zeroed, PSH+ACK, fixed window,
    // checksum left zero (the analysis pipeline never verifies it).
    rtcc::util::store_be16(l4, spec.src_port);
    rtcc::util::store_be16(l4 + 2, spec.dst_port);
    rtcc::util::store_be32(l4 + 4, 0);
    rtcc::util::store_be32(l4 + 8, 0);
    l4[12] = 0x50;  // data offset = 5 words
    l4[13] = 0x18;  // PSH|ACK
    rtcc::util::store_be16(l4 + 14, 65535);
    rtcc::util::store_be16(l4 + 16, 0);  // checksum
    rtcc::util::store_be16(l4 + 18, 0);  // urgent
    if (!payload.empty()) std::memcpy(l4 + 20, payload.data(), payload.size());
  }

  if (spec.src.is_v4()) {
    ip[0] = 0x45;
    ip[1] = 0;
    rtcc::util::store_be16(ip + 2, static_cast<std::uint16_t>(20 + l4_len));
    rtcc::util::store_be16(ip + 4, 0);       // id
    rtcc::util::store_be16(ip + 6, 0x4000);  // DF
    ip[8] = spec.ttl;
    ip[9] = proto_num;
    rtcc::util::store_be16(ip + 10, 0);  // header checksum placeholder
    rtcc::util::store_be32(ip + 12, spec.src.v4_value());
    rtcc::util::store_be32(ip + 16, spec.dst.v4_value());
    rtcc::util::store_be16(ip + 10, internet_checksum(BytesView{ip, 20}));

    if (spec.transport == Transport::kUdp) {
      // UDP checksum over the IPv4 pseudo-header.
      std::uint8_t pseudo[12];
      rtcc::util::store_be32(pseudo, spec.src.v4_value());
      rtcc::util::store_be32(pseudo + 4, spec.dst.v4_value());
      pseudo[8] = 0;
      pseudo[9] = proto_num;
      rtcc::util::store_be16(pseudo + 10, static_cast<std::uint16_t>(l4_len));
      std::uint32_t acc = sum16(BytesView{pseudo, sizeof pseudo}, 0);
      acc = sum16(BytesView{l4, l4_len}, acc);
      std::uint16_t csum = fold(acc);
      if (csum == 0) csum = 0xFFFF;
      rtcc::util::store_be16(l4 + 6, csum);
    }
  } else {
    rtcc::util::store_be32(ip, 0x60000000u);  // version 6, tc 0, flow 0
    rtcc::util::store_be16(ip + 4, static_cast<std::uint16_t>(l4_len));
    ip[6] = proto_num;
    ip[7] = spec.ttl;
    std::memcpy(ip + 8, spec.src.v6_bytes().data(), 16);
    std::memcpy(ip + 24, spec.dst.v6_bytes().data(), 16);

    if (spec.transport == Transport::kUdp) {
      std::uint8_t pseudo[40];
      std::memcpy(pseudo, spec.src.v6_bytes().data(), 16);
      std::memcpy(pseudo + 16, spec.dst.v6_bytes().data(), 16);
      rtcc::util::store_be32(pseudo + 32, static_cast<std::uint32_t>(l4_len));
      pseudo[36] = 0;
      pseudo[37] = 0;
      pseudo[38] = 0;
      pseudo[39] = proto_num;
      std::uint32_t acc = sum16(BytesView{pseudo, sizeof pseudo}, 0);
      acc = sum16(BytesView{l4, l4_len}, acc);
      std::uint16_t csum = fold(acc);
      if (csum == 0) csum = 0xFFFF;
      rtcc::util::store_be16(l4 + 6, csum);
    }
  }
}

}  // namespace

std::size_t frame_wire_size(const FrameSpec& spec, std::size_t payload_size) {
  return kEthHeader + (spec.src.is_v4() ? 20u : 40u) +
         (spec.transport == Transport::kUdp ? 8u : 20u) + payload_size;
}

Bytes build_frame(const FrameSpec& spec, BytesView payload) {
  Bytes out(frame_wire_size(spec, payload.size()));
  write_frame(out.data(), spec, payload);
  return out;
}

Frame build_frame_arena(FrameArena& arena, double ts, const FrameSpec& spec,
                        BytesView payload) {
  const std::size_t n = frame_wire_size(spec, payload.size());
  std::uint64_t off = 0;
  write_frame(arena.alloc(n, off), spec, payload);
  return Frame{ts, {}, off, static_cast<std::uint32_t>(n)};
}

}  // namespace rtcc::net
