// Fixed-size descriptor batches for the vector packet-processing path
// (DESIGN.md §6).
//
// The analysis hot loop historically advanced one datagram at a time
// through decode → demux → DPI → compliance. The VPP lesson is that the
// per-packet instruction stream then alternates between five different
// code/data working sets, evicting each other's branch and cache state
// every few hundred instructions. Instead, the pipeline moves whole
// *vectors* of packet descriptors through one node at a time: each node
// runs its loop over up to batch_size() packets before the next node
// starts, so its code, lookup tables and branch history stay hot for
// the whole vector.
//
// A PacketBatch is the descriptor array itself — SoA {payload pointer,
// length, timestamp, direction} — mirroring the arena's flat
// {offset,len} frame layout: descriptors are 16+8+1 bytes of metadata
// per packet, so a 256-packet vector's descriptors fit in a few cache
// lines per lane and never touch the payload slabs until a node needs
// the bytes. Nodes prefetch the payload head of packet i+kPrefetchAhead
// while processing packet i (software pipelining; the prefetch distance
// covers roughly the per-packet node work).
//
// batch_size() is the process-wide vector length: default 256 (the VPP
// frame size; big enough to amortize per-vector overhead, small enough
// that 256 descriptors + staged per-vector state stay L2-resident),
// overridable with the RTCC_BATCH env knob and at runtime with
// set_batch_size / BatchModeGuard. Size 1 selects the legacy
// one-datagram-at-a-time path, kept (like RTCC_ARENA=0) as the
// full-matrix equivalence oracle — both paths produce byte-identical
// analyses, enforced by testkit batch-parity oracles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace rtcc::net {

/// Process-wide pipeline vector length (>= 1). Initialised once from
/// RTCC_BATCH (unset / unparseable / < 1 -> 256).
[[nodiscard]] std::size_t batch_size();
/// Runtime override (tests, benches, oracles); values < 1 clamp to 1.
/// Returns the size actually applied.
std::size_t set_batch_size(std::size_t size);

constexpr std::size_t kDefaultBatchSize = 256;

/// RAII batch-size flip used by equivalence tests and A/B benchmarks.
class BatchModeGuard {
 public:
  explicit BatchModeGuard(std::size_t size) : prev_(batch_size()) {
    set_batch_size(size);
  }
  ~BatchModeGuard() { set_batch_size(prev_); }
  BatchModeGuard(const BatchModeGuard&) = delete;
  BatchModeGuard& operator=(const BatchModeGuard&) = delete;

 private:
  std::size_t prev_;
};

/// Hint-prefetch the cache line at `p` (read intent, moderate locality).
/// No-op where the builtin is unavailable; never faults on any address.
inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 2);
#else
  (void)p;
#endif
}

/// How many packets ahead node loops prefetch payload heads.
/// Compile-time tunable (-DRTCC_PREFETCH_AHEAD=n) for the ablation
/// sweep in EXPERIMENTS.md; the {2,4,8,16} x unroll sweep moved the
/// macro scan < +-6% (within box noise), so 4 stays as the default.
#ifndef RTCC_PREFETCH_AHEAD
#define RTCC_PREFETCH_AHEAD 4
#endif
constexpr std::size_t kPrefetchAhead = RTCC_PREFETCH_AHEAD;

/// SoA descriptor vector for one stream's datagrams: parallel arrays
/// indexed by packet position. Payload bytes are *borrowed* (arena slab
/// or legacy frame buffers) and must outlive the batch.
struct PacketBatch {
  std::vector<const std::uint8_t*> data;
  std::vector<std::uint32_t> len;
  std::vector<double> ts;
  std::vector<std::uint8_t> dir;  // 0 = A->B, 1 = B->A

  [[nodiscard]] std::size_t size() const { return data.size(); }
  [[nodiscard]] bool empty() const { return data.empty(); }

  void clear() {
    data.clear();
    len.clear();
    ts.clear();
    dir.clear();
  }

  void reserve(std::size_t n) {
    data.reserve(n);
    len.reserve(n);
    ts.reserve(n);
    dir.reserve(n);
  }

  void push(rtcc::util::BytesView payload, double timestamp, int direction) {
    data.push_back(payload.data());
    len.push_back(static_cast<std::uint32_t>(payload.size()));
    ts.push_back(timestamp);
    dir.push_back(static_cast<std::uint8_t>(direction));
  }

  [[nodiscard]] rtcc::util::BytesView payload(std::size_t i) const {
    return {data[i], len[i]};
  }
};

}  // namespace rtcc::net
