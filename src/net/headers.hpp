// Link/network/transport header encode + decode.
//
// The emulator synthesises full Ethernet/IPv4|IPv6/UDP|TCP frames and the
// analysis pipeline decodes them back — the same parsing path a real
// capture would take through our pcap reader. Decoding additionally
// understands what real captures contain: the non-Ethernet linktypes
// rvictl and `tcpdump -i any` emit, 802.1Q/QinQ VLAN tags, and IPv4
// fragmentation (stateless rejection in decode_frame, bounded
// reassembly in FrameDecoder).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "net/arena.hpp"
#include "net/ingest.hpp"
#include "util/bytes.hpp"

namespace rtcc::net {

enum class Transport : std::uint8_t { kUdp = 17, kTcp = 6, kOther = 0 };

[[nodiscard]] std::string to_string(Transport t);

// pcap LINKTYPE_* values the decoder dispatches on (per-linktype L2
// offset instead of a hard "want Ethernet" reject).
constexpr std::uint32_t kLinkNull = 0;        // BSD loopback: 4-byte AF header
constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::uint32_t kLinkRaw = 101;       // raw IP, no L2 (rvictl-style)
constexpr std::uint32_t kLinkLinuxSll = 113;  // Linux cooked v1 (`tcpdump -i any`)
constexpr std::uint32_t kLinkSll2 = 276;      // Linux cooked v2

[[nodiscard]] bool linktype_supported(std::uint32_t linktype);
[[nodiscard]] std::string linktype_name(std::uint32_t linktype);

/// One captured frame: timestamp (seconds since experiment epoch) plus
/// raw Ethernet bytes, exactly what a pcap record stores. The bytes
/// live either in `data` (legacy owned-buffer mode) or, when `data` is
/// empty, at [off, off+len) in the owning Trace's FrameArena — resolve
/// through Trace::bytes(), never through these fields directly.
struct Frame {
  double ts = 0.0;
  rtcc::util::Bytes data;  // legacy owned storage; empty when arena-backed
  std::uint64_t off = 0;   // arena offset (arena-backed frames)
  std::uint32_t len = 0;   // arena view length
  /// Original on-the-wire length (pcap orig_len); 0 means "same as the
  /// stored bytes". When larger than size(), the capture clipped the
  /// frame at its snaplen and decode rejects are clipping, not
  /// corruption.
  std::uint32_t orig_len = 0;

  [[nodiscard]] std::size_t size() const {
    return data.empty() ? len : data.size();
  }
  [[nodiscard]] bool snaplen_clipped() const { return orig_len > size(); }
};

/// Decoded view over one frame. `payload` aliases the frame's bytes —
/// valid only while the owning Frame is alive (Core Guidelines: views
/// don't own; the Trace owns).
struct Decoded {
  IpAddr src;
  IpAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Transport transport = Transport::kOther;
  rtcc::util::BytesView payload;  // UDP payload or TCP segment payload
  bool is_v6 = false;
  /// True when `payload` views a FrameDecoder-owned reassembly buffer
  /// (valid until that decoder's next decode()) instead of the frame.
  bool reassembled = false;
};

/// Decodes L2 (per `linktype`, 802.1Q/QinQ tags stripped) → IPv4/IPv6 →
/// UDP/TCP. Returns nullopt for non-IP ethertypes, truncated headers,
/// unsupported transports, and IPv4 fragments — a fragment's 8 leading
/// payload bytes are NOT a UDP header, so stateless decoding rejects
/// both first and non-first fragments instead of misreading garbage
/// ports (use FrameDecoder for reassembly). When `stats` is non-null,
/// every call increments exactly one outcome counter (plus
/// vlan_stripped when tags were removed).
[[nodiscard]] std::optional<Decoded> decode_frame(rtcc::util::BytesView frame,
                                                  std::uint32_t linktype,
                                                  IngestStats* stats = nullptr);

/// Ethernet convenience overload (the historical signature).
[[nodiscard]] std::optional<Decoded> decode_frame(rtcc::util::BytesView frame);

/// Stateful frame decoder: everything decode_frame does, plus a small
/// bounded IPv4 reassembly map keyed (src, dst, id, proto). Fragments
/// return nullopt until the datagram completes; the completing fragment
/// returns a Decoded whose payload views decoder-owned storage (valid
/// until the next decode() call — consume immediately). State is
/// bounded by kMaxEntries / kMaxDatagram / kTimeoutS; evicted datagrams
/// are counted as fragments_expired. Deterministic: identical frame
/// sequences produce identical packets and stats.
class FrameDecoder {
 public:
  static constexpr std::size_t kMaxEntries = 64;     // concurrent datagrams
  static constexpr std::size_t kMaxDatagram = 65535; // IPv4 total-length cap
  static constexpr double kTimeoutS = 30.0;          // RFC 791 reassembly TTL

  explicit FrameDecoder(std::uint32_t linktype = kLinkEthernet)
      : linktype_(linktype) {}

  /// `clipped` marks frames whose capture record lost bytes to the
  /// snaplen; their corrupt-rejects count as clipped_undecodable.
  [[nodiscard]] std::optional<Decoded> decode(rtcc::util::BytesView frame,
                                              double ts = 0.0,
                                              bool clipped = false);

  /// Counts still-pending reassembly state as expired. Call once after
  /// the last frame.
  void finish();

  [[nodiscard]] const IngestStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t linktype() const { return linktype_; }

 private:
  struct FragKey {
    IpAddr src;
    IpAddr dst;
    std::uint16_t id = 0;
    std::uint8_t proto = 0;
    auto operator<=>(const FragKey&) const = default;
  };
  struct Reassembly {
    rtcc::util::Bytes data;  // IP payload bytes as fragments land
    std::vector<std::pair<std::uint32_t, std::uint32_t>> have;  // merged [a,b)
    std::uint32_t total = 0;  // known once the MF=0 fragment arrives
    double first_ts = 0.0;
  };

  void expire_before(double ts);

  std::uint32_t linktype_;
  IngestStats stats_;
  std::map<FragKey, Reassembly> frags_;
  rtcc::util::Bytes completed_;  // last reassembled IP payload
  double clock_ = 0.0;
};

struct FrameSpec {
  IpAddr src;
  IpAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Transport transport = Transport::kUdp;
  std::uint8_t ttl = 64;
};

/// Exact wire size of the frame build_frame would synthesise.
[[nodiscard]] std::size_t frame_wire_size(const FrameSpec& spec,
                                          std::size_t payload_size);

/// Builds a full Ethernet frame (synthetic MACs) around `payload`.
/// IPv4/IPv6 selected by the address family of `spec.src` (both
/// endpoints must be the same family). UDP/IP checksums are computed.
[[nodiscard]] rtcc::util::Bytes build_frame(const FrameSpec& spec,
                                            rtcc::util::BytesView payload);

/// Arena variant: writes the frame straight into `arena` (headers,
/// checksums and payload in place — no temporary vectors) and returns
/// an arena-backed Frame. Byte-identical to build_frame.
[[nodiscard]] Frame build_frame_arena(FrameArena& arena, double ts,
                                      const FrameSpec& spec,
                                      rtcc::util::BytesView payload);

/// RFC 1071 internet checksum (IPv4 header / UDP pseudo-header sums).
[[nodiscard]] std::uint16_t internet_checksum(rtcc::util::BytesView data,
                                              std::uint32_t initial = 0);

}  // namespace rtcc::net
