// Link/network/transport header encode + decode.
//
// The emulator synthesises full Ethernet/IPv4|IPv6/UDP|TCP frames and the
// analysis pipeline decodes them back — the same parsing path a real
// capture would take through our pcap reader.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/address.hpp"
#include "net/arena.hpp"
#include "util/bytes.hpp"

namespace rtcc::net {

enum class Transport : std::uint8_t { kUdp = 17, kTcp = 6, kOther = 0 };

[[nodiscard]] std::string to_string(Transport t);

/// One captured frame: timestamp (seconds since experiment epoch) plus
/// raw Ethernet bytes, exactly what a pcap record stores. The bytes
/// live either in `data` (legacy owned-buffer mode) or, when `data` is
/// empty, at [off, off+len) in the owning Trace's FrameArena — resolve
/// through Trace::bytes(), never through these fields directly.
struct Frame {
  double ts = 0.0;
  rtcc::util::Bytes data;  // legacy owned storage; empty when arena-backed
  std::uint64_t off = 0;   // arena offset (arena-backed frames)
  std::uint32_t len = 0;   // arena view length

  [[nodiscard]] std::size_t size() const {
    return data.empty() ? len : data.size();
  }
};

/// Decoded view over one frame. `payload` aliases the frame's bytes —
/// valid only while the owning Frame is alive (Core Guidelines: views
/// don't own; the Trace owns).
struct Decoded {
  IpAddr src;
  IpAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Transport transport = Transport::kOther;
  rtcc::util::BytesView payload;  // UDP payload or TCP segment payload
  bool is_v6 = false;
};

/// Decodes Ethernet → IPv4/IPv6 → UDP/TCP. Returns nullopt for
/// non-IP ethertypes, truncated headers, or unsupported transports
/// (those frames are ignored upstream, matching Wireshark's behaviour
/// of our filters only ever seeing UDP/TCP).
[[nodiscard]] std::optional<Decoded> decode_frame(rtcc::util::BytesView frame);

struct FrameSpec {
  IpAddr src;
  IpAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Transport transport = Transport::kUdp;
  std::uint8_t ttl = 64;
};

/// Exact wire size of the frame build_frame would synthesise.
[[nodiscard]] std::size_t frame_wire_size(const FrameSpec& spec,
                                          std::size_t payload_size);

/// Builds a full Ethernet frame (synthetic MACs) around `payload`.
/// IPv4/IPv6 selected by the address family of `spec.src` (both
/// endpoints must be the same family). UDP/IP checksums are computed.
[[nodiscard]] rtcc::util::Bytes build_frame(const FrameSpec& spec,
                                            rtcc::util::BytesView payload);

/// Arena variant: writes the frame straight into `arena` (headers,
/// checksums and payload in place — no temporary vectors) and returns
/// an arena-backed Frame. Byte-identical to build_frame.
[[nodiscard]] Frame build_frame_arena(FrameArena& arena, double ts,
                                      const FrameSpec& spec,
                                      rtcc::util::BytesView payload);

/// RFC 1071 internet checksum (IPv4 header / UDP pseudo-header sums).
[[nodiscard]] std::uint16_t internet_checksum(rtcc::util::BytesView data,
                                              std::uint32_t initial = 0);

}  // namespace rtcc::net
