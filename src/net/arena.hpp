// Arena-backed trace storage: one or few large slabs per trace instead
// of one heap allocation per captured frame.
//
// The analysis pipeline only ever *reads* bytes-on-the-wire, so frames
// can be {offset, len} views into immutable contiguous slabs. The arena
// supports three producers:
//   * append()  — copy bytes onto the slab tail (pcap decode of a
//     borrowed buffer);
//   * alloc()   — reserve contiguous bytes for in-place frame building
//     (the emulator writes Ethernet/IP/UDP headers straight into the
//     slab, no temporary vectors);
//   * adopt()   — register an externally owned immutable buffer (an
//     mmap'ed pcap file or a whole-file read) as a slab, making decode
//     zero-copy: frames become views over the file bytes themselves.
//
// Offsets are global and monotonically increasing across slabs; a frame
// is always contiguous within a single slab (alloc/append never split).
// Slabs never move once created, so views and raw pointers into the
// arena are stable for the arena's lifetime. Arenas are move-only:
// copying would either share a mutable tail or silently deep-copy
// multi-megabyte traces — both are bugs we'd rather not compile.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/bytes.hpp"

namespace rtcc::net {

/// Process-wide switch between arena-backed traces (default) and the
/// legacy one-owned-buffer-per-frame representation, kept as the
/// equivalence oracle. Initialised once from RTCC_ARENA ("0" disables);
/// set_arena_enabled overrides it at runtime (tests, benches).
[[nodiscard]] bool arena_enabled();
void set_arena_enabled(bool enabled);

/// RAII mode flip used by equivalence tests and A/B benchmarks.
class ArenaModeGuard {
 public:
  explicit ArenaModeGuard(bool enabled) : prev_(arena_enabled()) {
    set_arena_enabled(enabled);
  }
  ~ArenaModeGuard() { set_arena_enabled(prev_); }
  ArenaModeGuard(const ArenaModeGuard&) = delete;
  ArenaModeGuard& operator=(const ArenaModeGuard&) = delete;

 private:
  bool prev_;
};

class FrameArena {
 public:
  /// Owned slabs grow in 1 MiB steps: large enough that a full-scale
  /// 5-minute call (tens of MB) needs tens of slabs, small enough that
  /// a short trace doesn't waste memory.
  static constexpr std::size_t kSlabSize = std::size_t{1} << 20;

  FrameArena() = default;
  FrameArena(FrameArena&&) noexcept = default;
  FrameArena& operator=(FrameArena&&) noexcept = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  /// Total bytes registered (logical size; also the next offset).
  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] std::size_t slab_count() const { return slabs_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Copies `bytes` onto the tail and returns its offset.
  std::uint64_t append(rtcc::util::BytesView bytes);

  /// Reserves `n` contiguous writable bytes and returns the pointer;
  /// `off` receives the global offset. The caller fills all `n` bytes.
  std::uint8_t* alloc(std::size_t n, std::uint64_t& off);

  /// Registers an externally owned immutable buffer as its own slab and
  /// returns its base offset. `keepalive` is held until the arena dies
  /// (pass the mmap unmapper or the owning vector; may be null when the
  /// caller guarantees `data` outlives the arena).
  std::uint64_t adopt(rtcc::util::BytesView data,
                      std::shared_ptr<void> keepalive);

  /// Resolves a view previously returned by append/alloc/adopt. Views
  /// that were never handed out (out of range or straddling a slab
  /// boundary) resolve to an empty view.
  [[nodiscard]] rtcc::util::BytesView view(std::uint64_t off,
                                           std::size_t len) const;

 private:
  struct Slab {
    std::unique_ptr<std::uint8_t[]> owned;  // null for adopted slabs
    std::shared_ptr<void> keepalive;        // adopted-buffer owner
    const std::uint8_t* data = nullptr;
    std::size_t used = 0;
    std::size_t cap = 0;  // == used for adopted slabs
    std::uint64_t base = 0;
  };

  /// Ensures the tail slab is owned with >= n free bytes.
  Slab& writable_tail(std::size_t n);

  std::vector<Slab> slabs_;
  std::uint64_t size_ = 0;
};

}  // namespace rtcc::net
