#include "net/packet_batch.hpp"

#include <atomic>
#include <cstdlib>

namespace rtcc::net {

namespace {

std::atomic<std::size_t>& batch_flag() {
  static std::atomic<std::size_t> size{[]() -> std::size_t {
    if (const char* env = std::getenv("RTCC_BATCH")) {
      const long v = std::atol(env);
      if (v >= 1) return static_cast<std::size_t>(v);
    }
    return kDefaultBatchSize;
  }()};
  return size;
}

}  // namespace

std::size_t batch_size() {
  return batch_flag().load(std::memory_order_relaxed);
}

std::size_t set_batch_size(std::size_t size) {
  const std::size_t applied = size < 1 ? std::size_t{1} : size;
  batch_flag().store(applied, std::memory_order_relaxed);
  return applied;
}

}  // namespace rtcc::net
