#include "net/packet_batch.hpp"

#include <atomic>
#include <cstdint>

#include "util/env_knob.hpp"

namespace rtcc::net {

namespace {

std::atomic<std::size_t>& batch_flag() {
  static std::atomic<std::size_t> size{
      static_cast<std::size_t>(rtcc::util::env_knob_ll(
          "RTCC_BATCH", static_cast<long long>(kDefaultBatchSize), 1,
          std::int64_t{1} << 20))};
  return size;
}

}  // namespace

std::size_t batch_size() {
  return batch_flag().load(std::memory_order_relaxed);
}

std::size_t set_batch_size(std::size_t size) {
  const std::size_t applied = size < 1 ? std::size_t{1} : size;
  batch_flag().store(applied, std::memory_order_relaxed);
  return applied;
}

}  // namespace rtcc::net
