#include "net/stream_table.hpp"

#include <algorithm>

namespace rtcc::net {

std::string FlowKey::to_string() const {
  return a.to_string() + ":" + std::to_string(a_port) + " <-> " +
         b.to_string() + ":" + std::to_string(b_port) + " " +
         rtcc::net::to_string(transport);
}

std::size_t FlowKeyHash::operator()(const FlowKey& k) const noexcept {
  IpAddrHash ih;
  std::size_t h = ih(k.a);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(k.a_port);
  mix(ih(k.b));
  mix(k.b_port);
  mix(static_cast<std::size_t>(k.transport));
  return h;
}

std::pair<FlowKey, Direction> canonical_flow(const Decoded& d) {
  const bool src_is_a =
      std::tie(d.src, d.src_port) <= std::tie(d.dst, d.dst_port);
  FlowKey key;
  key.transport = d.transport;
  if (src_is_a) {
    key.a = d.src;
    key.a_port = d.src_port;
    key.b = d.dst;
    key.b_port = d.dst_port;
    return {key, Direction::kAtoB};
  }
  key.a = d.dst;
  key.a_port = d.dst_port;
  key.b = d.src;
  key.b_port = d.src_port;
  return {key, Direction::kBtoA};
}

std::uint64_t Stream::total_payload_bytes() const {
  std::uint64_t n = 0;
  for (const auto& p : packets) n += p.payload_len;
  return n;
}

std::size_t StreamTable::udp_stream_count() const {
  return static_cast<std::size_t>(
      std::count_if(streams.begin(), streams.end(), [](const Stream& s) {
        return s.key.transport == Transport::kUdp;
      }));
}

std::size_t StreamTable::tcp_stream_count() const {
  return streams.size() - udp_stream_count();
}

std::uint64_t StreamTable::udp_datagram_count() const {
  std::uint64_t n = 0;
  for (const auto& s : streams)
    if (s.key.transport == Transport::kUdp) n += s.packets.size();
  return n;
}

std::uint64_t StreamTable::tcp_segment_count() const {
  std::uint64_t n = 0;
  for (const auto& s : streams)
    if (s.key.transport == Transport::kTcp) n += s.packets.size();
  return n;
}

StreamTable group_streams(const Trace& trace) {
  StreamTable table;
  std::unordered_map<FlowKey, std::size_t, FlowKeyHash> index;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Frame& frame = trace.frames()[i];
    const rtcc::util::BytesView wire = trace.bytes(frame);
    auto decoded = decode_frame(wire);
    if (!decoded) {
      ++table.undecodable_frames;
      continue;
    }
    auto [key, dir] = canonical_flow(*decoded);
    auto [it, inserted] = index.try_emplace(key, table.streams.size());
    if (inserted) {
      Stream s;
      s.key = key;
      s.first_ts = frame.ts;
      s.last_ts = frame.ts;
      table.streams.push_back(std::move(s));
    }
    Stream& stream = table.streams[it->second];
    stream.first_ts = std::min(stream.first_ts, frame.ts);
    stream.last_ts = std::max(stream.last_ts, frame.ts);
    // The decoded payload aliases `wire`, so its start offset within
    // the frame falls out of pointer arithmetic for free.
    stream.packets.push_back(StreamPacket{
        static_cast<std::uint32_t>(i), frame.ts, dir,
        static_cast<std::uint32_t>(decoded->payload.size()),
        static_cast<std::uint32_t>(decoded->payload.data() - wire.data())});
  }
  return table;
}

rtcc::util::BytesView packet_payload(const Trace& trace,
                                     const StreamPacket& pkt) {
  const rtcc::util::BytesView wire = trace.frame_bytes(pkt.frame_index);
  if (std::uint64_t{pkt.payload_off} + pkt.payload_len > wire.size())
    return {};
  return wire.subspan(pkt.payload_off, pkt.payload_len);
}

}  // namespace rtcc::net
