#include "net/stream_table.hpp"

#include <algorithm>

namespace rtcc::net {

std::string FlowKey::to_string() const {
  return a.to_string() + ":" + std::to_string(a_port) + " <-> " +
         b.to_string() + ":" + std::to_string(b_port) + " " +
         rtcc::net::to_string(transport);
}

std::size_t FlowKeyHash::operator()(const FlowKey& k) const noexcept {
  IpAddrHash ih;
  std::size_t h = ih(k.a);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(k.a_port);
  mix(ih(k.b));
  mix(k.b_port);
  mix(static_cast<std::size_t>(k.transport));
  return h;
}

std::pair<FlowKey, Direction> canonical_flow(const Decoded& d) {
  const bool src_is_a =
      std::tie(d.src, d.src_port) <= std::tie(d.dst, d.dst_port);
  FlowKey key;
  key.transport = d.transport;
  if (src_is_a) {
    key.a = d.src;
    key.a_port = d.src_port;
    key.b = d.dst;
    key.b_port = d.dst_port;
    return {key, Direction::kAtoB};
  }
  key.a = d.dst;
  key.a_port = d.dst_port;
  key.b = d.src;
  key.b_port = d.src_port;
  return {key, Direction::kBtoA};
}

std::uint64_t Stream::total_payload_bytes() const {
  std::uint64_t n = 0;
  for (const auto& p : packets) n += p.payload_len;
  return n;
}

std::size_t StreamTable::udp_stream_count() const {
  return static_cast<std::size_t>(
      std::count_if(streams.begin(), streams.end(), [](const Stream& s) {
        return s.key.transport == Transport::kUdp;
      }));
}

std::size_t StreamTable::tcp_stream_count() const {
  return streams.size() - udp_stream_count();
}

std::uint64_t StreamTable::udp_datagram_count() const {
  std::uint64_t n = 0;
  for (const auto& s : streams)
    if (s.key.transport == Transport::kUdp) n += s.packets.size();
  return n;
}

std::uint64_t StreamTable::tcp_segment_count() const {
  std::uint64_t n = 0;
  for (const auto& s : streams)
    if (s.key.transport == Transport::kTcp) n += s.packets.size();
  return n;
}

StreamTable group_streams(const Trace& trace) {
  StreamTable table;
  table.ingest = trace.ingest();  // capture-layer counters, if any
  std::unordered_map<FlowKey, std::size_t, FlowKeyHash> index;
  FrameDecoder decoder(trace.linktype());

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Frame& frame = trace.frames()[i];
    const rtcc::util::BytesView wire = trace.bytes(frame);
    auto decoded = decoder.decode(wire, frame.ts, frame.snaplen_clipped());
    if (!decoded) continue;
    auto [key, dir] = canonical_flow(*decoded);
    auto [it, inserted] = index.try_emplace(key, table.streams.size());
    if (inserted) {
      Stream s;
      s.key = key;
      s.first_ts = frame.ts;
      s.last_ts = frame.ts;
      table.streams.push_back(std::move(s));
    }
    Stream& stream = table.streams[it->second];
    stream.first_ts = std::min(stream.first_ts, frame.ts);
    stream.last_ts = std::max(stream.last_ts, frame.ts);
    StreamPacket pkt;
    pkt.frame_index = static_cast<std::uint32_t>(i);
    pkt.ts = frame.ts;
    pkt.dir = dir;
    pkt.payload_len = static_cast<std::uint32_t>(decoded->payload.size());
    if (decoded->reassembled) {
      // The payload views decoder-owned scratch that the next decode()
      // overwrites; the table takes a copy and the packet points at it.
      pkt.reasm = static_cast<std::int32_t>(table.reassembled.size());
      table.reassembled.emplace_back(decoded->payload.begin(),
                                     decoded->payload.end());
    } else {
      // The decoded payload aliases `wire`, so its start offset within
      // the frame falls out of pointer arithmetic for free.
      pkt.payload_off =
          static_cast<std::uint32_t>(decoded->payload.data() - wire.data());
    }
    stream.packets.push_back(pkt);
  }
  decoder.finish();
  table.ingest.merge(decoder.stats());
  table.undecodable_frames = static_cast<std::size_t>(
      table.ingest.non_ip + table.ingest.undecodable +
      table.ingest.clipped_undecodable + table.ingest.unsupported_linktype);
  return table;
}

rtcc::util::BytesView packet_payload(const Trace& trace,
                                     const StreamPacket& pkt) {
  if (pkt.reasm >= 0) return {};  // table-owned; need the 3-arg overload
  const rtcc::util::BytesView wire = trace.frame_bytes(pkt.frame_index);
  if (std::uint64_t{pkt.payload_off} + pkt.payload_len > wire.size())
    return {};
  return wire.subspan(pkt.payload_off, pkt.payload_len);
}

rtcc::util::BytesView packet_payload(const Trace& trace,
                                     const StreamTable& table,
                                     const StreamPacket& pkt) {
  if (pkt.reasm < 0) return packet_payload(trace, pkt);
  const auto idx = static_cast<std::size_t>(pkt.reasm);
  if (idx >= table.reassembled.size()) return {};
  return rtcc::util::BytesView{table.reassembled[idx]};
}

}  // namespace rtcc::net
