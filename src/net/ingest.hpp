// Per-trace ingestion diagnostics.
//
// Real captures (rvictl, `tcpdump -i any`, Wireshark defaults, kill-9
// mid-capture) contain artifacts the clean synthetic corpus never
// produces: nanosecond timestamp magic, non-Ethernet linktypes,
// 802.1Q tags, IPv4 fragments, snaplen-clipped records and torn tail
// records. The ingestion path is fail-soft — it decodes everything it
// can and *counts* everything it cannot — so any thinning of the
// packet stream is reported next to every compliance number instead of
// silently biasing the verdicts (a verdict must be attributable to the
// endpoint, not the harness).
//
// The counters split into two layers that are merged per trace:
//   * capture layer (net/pcap.cpp): record-walk accounting, and
//   * decode layer (net/headers.cpp FrameDecoder, via group_streams):
//     per-frame L2/L3/L4 accounting.
#pragma once

#include <cstdint>

namespace rtcc::net {

struct IngestStats {
  // --- capture layer (pcap record walk) ---
  std::uint64_t frames_seen = 0;      // pcap records walked (0 = not a capture)
  std::uint64_t torn_tail = 0;        // trailing record cut mid-bytes, dropped
  std::uint64_t snaplen_clipped = 0;  // records with incl_len < orig_len
  std::uint64_t bad_usec = 0;         // sub-second field >= unit, clamped

  // --- decode layer (FrameDecoder) ---
  std::uint64_t frames_decoded = 0;        // packets delivered (incl. reassembled)
  std::uint64_t vlan_stripped = 0;         // frames with >=1 802.1Q/QinQ tag removed
  std::uint64_t fragments_seen = 0;        // IPv4 fragment frames observed
  std::uint64_t fragments_reassembled = 0; // datagrams completed from fragments
  std::uint64_t fragments_expired = 0;     // datagrams evicted incomplete or
                                           // unparseable on completion
  std::uint64_t non_ip = 0;                // non-IP ethertype / non-UDP/TCP proto
  std::uint64_t clipped_undecodable = 0;   // rejects caused by snaplen clipping
  std::uint64_t undecodable = 0;           // other truncated / corrupt frames
  std::uint64_t unsupported_linktype = 0;  // frames under an unknown linktype

  bool operator==(const IngestStats&) const = default;

  /// True when the trace came through the pcap reader (synthetic
  /// emulator traces never set capture-layer counters).
  [[nodiscard]] bool from_capture() const { return frames_seen > 0; }

  /// Sum of every way a frame (or part of one) failed to reach the
  /// stream table — "how much the harness thinned the stream".
  [[nodiscard]] std::uint64_t loss_events() const {
    return torn_tail + snaplen_clipped + bad_usec + fragments_expired +
           non_ip + clipped_undecodable + undecodable + unsupported_linktype;
  }

  void merge(const IngestStats& o) {
    frames_seen += o.frames_seen;
    torn_tail += o.torn_tail;
    snaplen_clipped += o.snaplen_clipped;
    bad_usec += o.bad_usec;
    frames_decoded += o.frames_decoded;
    vlan_stripped += o.vlan_stripped;
    fragments_seen += o.fragments_seen;
    fragments_reassembled += o.fragments_reassembled;
    fragments_expired += o.fragments_expired;
    non_ip += o.non_ip;
    clipped_undecodable += o.clipped_undecodable;
    undecodable += o.undecodable;
    unsupported_linktype += o.unsupported_linktype;
  }
};

}  // namespace rtcc::net
