// IP address value type covering IPv4 and IPv6, with the scope
// predicates the stage-2 "local IP" filter needs (RFC 1918 private,
// IPv6 link-local fe80::/10, IPv6 unique-local fd00::/8).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rtcc::net {

class IpAddr {
 public:
  IpAddr() = default;

  static IpAddr v4(std::uint32_t host_order);
  static IpAddr v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                   std::uint8_t d);
  static IpAddr v6(const std::array<std::uint8_t, 16>& bytes);

  /// Parses dotted-quad IPv4 or (possibly ::-compressed) IPv6 text.
  static std::optional<IpAddr> parse(std::string_view text);

  [[nodiscard]] bool is_v4() const { return v4_; }
  [[nodiscard]] bool is_v6() const { return !v4_; }

  /// IPv4 value in host byte order; only valid when is_v4().
  [[nodiscard]] std::uint32_t v4_value() const;
  [[nodiscard]] const std::array<std::uint8_t, 16>& v6_bytes() const {
    return bytes_;
  }

  /// RFC 1918 10/8, 172.16/12, 192.168/16 (IPv4 only).
  [[nodiscard]] bool is_private_v4() const;
  /// fe80::/10.
  [[nodiscard]] bool is_link_local_v6() const;
  /// fc00::/7 (the paper names fd00::/8, the commonly used half).
  [[nodiscard]] bool is_unique_local_v6() const;
  /// Any of the above — "local scope" for the stage-2 filter.
  [[nodiscard]] bool is_local_scope() const;
  [[nodiscard]] bool is_loopback() const;

  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const IpAddr&) const = default;

 private:
  // IPv4 stored in the final 4 bytes (like an IPv4-mapped address) so a
  // single 16-byte array backs both families.
  std::array<std::uint8_t, 16> bytes_{};
  bool v4_ = true;
};

struct IpAddrHash {
  std::size_t operator()(const IpAddr& a) const noexcept;
};

}  // namespace rtcc::net
