// Classic libpcap (.pcap) file reader/writer — microsecond timestamps,
// LINKTYPE_ETHERNET. Both byte orders are accepted on read (magic
// 0xA1B2C3D4 vs 0xD4C3B2A1); files are written in native little-endian
// order like tcpdump does.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/headers.hpp"

namespace rtcc::net {

/// An ordered capture: what one Wireshark session on one device saw.
struct Trace {
  std::vector<Frame> frames;

  [[nodiscard]] std::size_t size() const { return frames.size(); }
  [[nodiscard]] std::uint64_t total_bytes() const;
};

struct PcapError {
  std::string message;
};

/// Reads an entire .pcap file. Returns an error message for bad magic,
/// truncated records, or non-Ethernet link types.
[[nodiscard]] std::optional<Trace> read_pcap(const std::string& path,
                                             std::string* error = nullptr);

/// Writes `trace` as a classic pcap file (snaplen 262144).
[[nodiscard]] bool write_pcap(const std::string& path, const Trace& trace,
                              std::string* error = nullptr);

/// In-memory round trip used heavily by tests.
[[nodiscard]] rtcc::util::Bytes encode_pcap(const Trace& trace);
[[nodiscard]] std::optional<Trace> decode_pcap(rtcc::util::BytesView data,
                                               std::string* error = nullptr);

}  // namespace rtcc::net
