// Classic libpcap (.pcap) file reader/writer.
//
// Reading accepts what real captures contain: microsecond magic
// (0xA1B2C3D4) and Wireshark's nanosecond magic (0xA1B23C4D), both byte
// orders, and any linktype — records are walked regardless and the
// linktype is stored on the Trace for per-frame L2 dispatch at decode
// time (see net/headers.hpp). The walk is fail-soft: a torn tail record
// (kill-9 mid-capture) ends the walk and is counted, a sub-second field
// >= its unit is clamped and counted, and incl_len < orig_len marks the
// frame snaplen-clipped — all in Trace::ingest() (net/ingest.hpp).
// Hard errors remain only for files that cannot be a capture at all
// (shorter than the global header, unknown magic). Files are written in
// native little-endian microsecond order like tcpdump does, preserving
// the trace's linktype and each frame's orig_len.
//
// Reading is zero-copy by default: read_pcap mmaps the file (read()
// with a single whole-file buffer as fallback), adopts the buffer into
// the trace's FrameArena, and registers each frame as an {offset, len}
// view over the file bytes — no per-packet allocation or copy. The
// legacy one-owned-buffer-per-frame path is kept behind RTCC_ARENA=0
// as the equivalence oracle (see net/arena.hpp).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/arena.hpp"
#include "net/headers.hpp"

namespace rtcc::net {

/// An ordered capture: what one Wireshark session on one device saw.
/// Frames are appended through add_frame (never by mutating a frames()
/// element), which keeps the byte total cached and routes storage into
/// the arena or per-frame owned buffers depending on the trace's mode.
class Trace {
 public:
  /// Mode follows the process-wide arena_enabled() switch.
  Trace() : use_arena_(arena_enabled()) {}
  explicit Trace(bool use_arena) : use_arena_(use_arena) {}

  Trace(Trace&&) noexcept = default;
  Trace& operator=(Trace&&) noexcept = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  [[nodiscard]] const std::vector<Frame>& frames() const { return frames_; }
  [[nodiscard]] std::size_t size() const { return frames_.size(); }
  [[nodiscard]] bool empty() const { return frames_.empty(); }
  /// Sum of all frame sizes — cached on append, O(1).
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] bool uses_arena() const { return use_arena_; }
  [[nodiscard]] const FrameArena& arena() const { return arena_; }
  [[nodiscard]] FrameArena& arena() { return arena_; }

  /// pcap linktype governing how frames() bytes are decoded. Synthetic
  /// traces are Ethernet; captures carry whatever their header said.
  [[nodiscard]] std::uint32_t linktype() const { return linktype_; }
  void set_linktype(std::uint32_t linktype) { linktype_ = linktype; }

  /// Capture-layer ingestion diagnostics (all-zero for synthetic
  /// traces; populated by the pcap reader). Decode-layer counters are
  /// added downstream by group_streams.
  [[nodiscard]] const IngestStats& ingest() const { return ingest_; }
  [[nodiscard]] IngestStats& ingest() { return ingest_; }

  /// Resolves a frame's wire bytes regardless of storage mode.
  [[nodiscard]] rtcc::util::BytesView bytes(const Frame& f) const {
    return f.data.empty() ? arena_.view(f.off, f.len)
                          : rtcc::util::BytesView{f.data};
  }
  [[nodiscard]] rtcc::util::BytesView frame_bytes(std::size_t i) const {
    return bytes(frames_[i]);
  }

  void reserve(std::size_t n) { frames_.reserve(n); }

  /// Copies `bytes` into this trace's storage (arena slab or per-frame
  /// owned buffer) and appends the frame.
  Frame& add_frame(double ts, rtcc::util::BytesView bytes);

  /// Adopts a prebuilt frame: either one owning its bytes, or an
  /// arena-backed view into this trace's arena (e.g. produced by
  /// build_frame_arena against arena() or an arena later passed to
  /// adopt_arena).
  Frame& add_frame(Frame f);

  /// Takes over an externally built arena (the emulator builds frames
  /// into a CallContext arena, sorts the descriptors, then hands the
  /// arena to the call's trace). Only valid while this arena is empty.
  void adopt_arena(FrameArena&& arena);

  /// Registers an externally owned immutable buffer (mmap'ed file,
  /// whole-file read) in the arena; returns its base offset for
  /// registering view frames over it.
  std::uint64_t adopt_buffer(rtcc::util::BytesView data,
                             std::shared_ptr<void> keepalive) {
    return arena_.adopt(data, std::move(keepalive));
  }

 private:
  FrameArena arena_;
  std::vector<Frame> frames_;
  std::uint64_t total_bytes_ = 0;
  std::uint32_t linktype_ = kLinkEthernet;
  IngestStats ingest_;
  bool use_arena_ = true;
};

struct PcapError {
  std::string message;
};

/// Reads an entire .pcap file. Returns an error message only for files
/// that cannot be a capture (short global header, unknown magic); every
/// record-level defect is fail-soft and counted in the trace's
/// ingest(). In arena mode the file is mmap'ed (or read once into a
/// single adopted buffer) and frames are zero-copy views into it.
[[nodiscard]] std::optional<Trace> read_pcap(const std::string& path,
                                             std::string* error = nullptr);

/// Writes `trace` as a classic pcap file (snaplen 262144).
[[nodiscard]] bool write_pcap(const std::string& path, const Trace& trace,
                              std::string* error = nullptr);

/// In-memory round trip used heavily by tests. decode_pcap copies frame
/// bytes out of `data` (into the arena, or per-frame in legacy mode).
[[nodiscard]] rtcc::util::Bytes encode_pcap(const Trace& trace);

/// Capture-artifact knobs for encode_pcap_ex. The default reproduces
/// encode_pcap (native little-endian, microsecond magic); the variants
/// produce the byte-level rewritings real tooling emits — Wireshark's
/// nanosecond magic and opposite-endian global/record headers — which
/// must decode back to the same capture (testkit::meta relies on this).
struct PcapEncodeOptions {
  bool nanosecond = false;  // write 0xA1B23C4D and ns sub-second fields
  bool swapped = false;     // byte-swap every header field (foreign endian)
};

[[nodiscard]] rtcc::util::Bytes encode_pcap_ex(const Trace& trace,
                                               const PcapEncodeOptions& opts);
[[nodiscard]] std::optional<Trace> decode_pcap(rtcc::util::BytesView data,
                                               std::string* error = nullptr);

/// Zero-copy decode: `data` is adopted into the trace's arena and every
/// frame becomes a view into it. `keepalive` is held for the life of
/// the trace (the mmap unmapper or owning buffer; may be null when the
/// caller guarantees `data` outlives the trace, as benches do).
[[nodiscard]] std::optional<Trace> decode_pcap_zero_copy(
    rtcc::util::BytesView data, std::shared_ptr<void> keepalive = nullptr,
    std::string* error = nullptr);

/// Zero-copy decode taking ownership of a whole-file buffer.
[[nodiscard]] std::optional<Trace> decode_pcap_owned(
    rtcc::util::Bytes data, std::string* error = nullptr);

}  // namespace rtcc::net
