#include "net/flow_hash.hpp"

namespace rtcc::net {

namespace {

/// splitmix64 finalizer: full avalanche in three multiply-xorshift
/// rounds, so structured inputs (sequential ports, adjacent addresses)
/// still produce uniformly distributed digests.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Digest of one (ip, port) endpoint. The 16-byte address backing array
/// holds IPv4 in its final 4 bytes, so hashing all 16 bytes covers both
/// families; the family flag is folded in so an IPv4 address and its
/// IPv4-mapped IPv6 twin stay distinct.
std::uint64_t endpoint_digest(const IpAddr& ip, std::uint16_t port) {
  const auto& b = ip.v6_bytes();
  std::uint64_t lo = 0, hi = 0;
  for (int i = 0; i < 8; ++i) lo = lo << 8 | b[static_cast<std::size_t>(i)];
  for (int i = 8; i < 16; ++i) hi = hi << 8 | b[static_cast<std::size_t>(i)];
  std::uint64_t h = mix64(lo ^ 0x8C9F3B1D5E7A2463ULL);
  h = mix64(h ^ hi);
  return mix64(h ^ (std::uint64_t{port} << 1) ^ (ip.is_v4() ? 1u : 0u));
}

}  // namespace

std::uint64_t rss_flow_hash(const IpAddr& src, std::uint16_t src_port,
                            const IpAddr& dst, std::uint16_t dst_port,
                            Transport transport) {
  const std::uint64_t a = endpoint_digest(src, src_port);
  const std::uint64_t b = endpoint_digest(dst, dst_port);
  // Commutative combination (xor + sum) makes the hash direction-
  // invariant; mixing both keeps the pair's joint entropy (xor alone
  // would collapse flows whose endpoint digests share bit patterns).
  return mix64((a ^ b) + 0x2545F4914F6CDD1DULL * (a + b) +
               static_cast<std::uint64_t>(transport));
}

std::uint64_t rss_flow_hash(const FlowKey& key) {
  return rss_flow_hash(key.a, key.a_port, key.b, key.b_port, key.transport);
}

std::size_t shard_of(const FlowKey& key, std::size_t shards) {
  if (shards <= 1) return 0;
  // Fixed-point multiply maps the digest onto [0, shards) with bias
  // 2^-64 — unlike modulo, it uses the high (best-mixed) bits.
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(rss_flow_hash(key)) *
      static_cast<unsigned __int128>(shards);
  return static_cast<std::size_t>(wide >> 64);
}

}  // namespace rtcc::net
