// Reproduces Table 3: protocol compliance ratio by message type.
#include "bench_util.hpp"

int main() {
  auto results = rtcc::bench::run_matrix(
      "=== Table 3: protocol compliance ratio by message type ===");
  std::printf("%s\n", rtcc::report::render_table3(results).c_str());
  std::printf(
      "paper shape: Zoom 0/2 STUN but full RTP/RTCP; FaceTime 0 compliant\n"
      "outside QUIC (4/4); WhatsApp 1/10 STUN; Messenger 11/18 STUN;\n"
      "Discord 0 everywhere; Google Meet compliant except Allocate and\n"
      "all RTCP types.\n");
  return 0;
}
