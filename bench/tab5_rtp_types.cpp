// Reproduces Table 5: observed RTP payload types per application.
#include "bench_util.hpp"

int main() {
  auto results = rtcc::bench::run_matrix(
      "=== Table 5: observed RTP message (payload) types ===");
  std::printf("%s\n", rtcc::report::render_table5(results).c_str());
  return 0;
}
