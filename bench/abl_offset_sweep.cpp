// Ablation for §4.1.1's offset-limit claim: sweeping the candidate-
// extraction limit k and reporting the validated-message count per
// application. The paper found k=200 reproduces full-payload
// extraction; with our workloads the knee sits at the deepest
// proprietary-header depth (Zoom's 24-39 bytes), after which the curve
// is flat — the same qualitative result.
#include <cstdio>
#include <vector>

#include "report/metrics.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rtcc;
  std::printf("=== Ablation: candidate-extraction offset limit k "
              "(Algorithm 1) ===\n\n");

  const std::vector<std::size_t> ks = {0, 4, 8, 16, 24, 32, 64, 128, 200,
                                       400};
  auto base = report::experiment_config_from_env();

  std::printf("%-13s", "Application");
  for (auto k : ks) std::printf("%10zu", k);
  std::printf("\n%s\n", std::string(13 + 10 * ks.size(), '-').c_str());

  for (auto app : emul::all_apps()) {
    std::printf("%-13s", emul::to_string(app).c_str());
    for (auto k : ks) {
      auto cfg = base;
      cfg.apps = {app};
      cfg.repeats = 1;
      cfg.analysis.scan.max_offset = k;
      auto results = report::run_experiment(cfg);
      std::printf("%10llu",
                  static_cast<unsigned long long>(
                      results.at(app).total_messages()));
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper shape: counts rise until k covers the deepest proprietary\n"
      "header (Zoom 24-39 B, FaceTime 8-19 B) and are flat beyond — the\n"
      "k=200 default equals full-payload extraction.\n");
  return 0;
}
