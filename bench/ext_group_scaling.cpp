// Extension (the paper's §2 future work): compliance analysis of
// N-party SFU group calls. Prints the per-participant-count scaling of
// streams, messages and compliance — a table the paper defers to future
// work, generated here from the group-call emulator.
#include <cstdio>
#include <cstdlib>

#include "emul/group_call.hpp"
#include "report/metrics.hpp"

int main() {
  double scale = 0.02;
  if (const char* env = std::getenv("RTCC_SCALE"))
    scale = std::strtod(env, nullptr);

  std::printf("=== Extension: group-call (SFU) compliance scaling ===\n");
  std::printf("(media_scale=%.3f, one participant churns per call)\n\n",
              scale);
  std::printf("%12s %12s %12s %12s %12s %10s\n", "participants",
              "RTC streams", "datagrams", "messages", "RTCP msgs",
              "compliant");
  std::printf("%s\n", std::string(76, '-').c_str());

  for (int n : {3, 4, 5, 6, 8}) {
    rtcc::emul::GroupCallConfig cfg;
    cfg.participants = n;
    cfg.media_scale = scale;
    cfg.seed = 99;
    const auto call = rtcc::emul::emulate_group_call(cfg);
    const auto a = rtcc::report::analyze_trace(
        call.trace, rtcc::emul::group_filter_config(call));
    std::uint64_t rtcp = 0;
    auto it = a.protocols.find(rtcc::proto::Protocol::kRtcp);
    if (it != a.protocols.end()) rtcp = it->second.messages;
    std::printf("%12d %12zu %12llu %12llu %12llu %9.1f%%\n", n,
                a.rtc_udp.streams,
                static_cast<unsigned long long>(a.rtc_udp.packets),
                static_cast<unsigned long long>(a.total_messages()),
                static_cast<unsigned long long>(rtcp),
                100.0 * static_cast<double>(a.total_compliant()) /
                    static_cast<double>(a.total_messages()));
  }
  std::printf(
      "\nexpected shape: streams grow with participants; RTCP grows\n"
      "super-linearly (every member reports on every other member's\n"
      "sources); the standards-compliant baseline stays at 100%%.\n");
  return 0;
}
