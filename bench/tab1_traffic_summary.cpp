// Reproduces Table 1: traffic traces and two-stage filtering progress
// across all applications.
#include "bench_util.hpp"

int main() {
  auto results = rtcc::bench::run_matrix(
      "=== Table 1: summary of traffic traces and filtering progress ===");
  std::printf("%s\n", rtcc::report::render_table1(results).c_str());
  std::printf(
      "paper shape: per app, raw traffic is GB-scale with thousands of\n"
      "streams; stage 1+2 remove the background streams while nearly all\n"
      "UDP datagrams (media) survive into the RTC columns.\n");
  return 0;
}
