// Ablation for §4.1's motivation: a conventional offset-zero strict
// DPI (Peafowl-style) vs the paper's scanning DPI, plus a no-validation
// mode showing how many raw candidates stage-2 validation discards.
#include <cstdio>

#include "dpi/strict_dpi.hpp"
#include "report/metrics.hpp"

using namespace rtcc;

namespace {

struct Counts {
  std::uint64_t datagrams = 0;
  std::uint64_t messages = 0;
  std::uint64_t candidates = 0;
  std::uint64_t fully_proprietary = 0;
};

template <typename Dpi>
Counts run_dpi(const Dpi& dpi, const emul::EmulatedCall& call) {
  Counts out;
  const auto table = net::group_streams(call.trace);
  const auto fr = filter::run_pipeline(call.trace, table,
                                       emul::filter_config_for(call));
  for (auto si : fr.rtc_udp_streams) {
    const auto& s = table.streams[si];
    std::vector<dpi::StreamDatagram> dgs;
    for (const auto& p : s.packets) {
      dpi::StreamDatagram d;
      d.payload = net::packet_payload(call.trace, p);
      d.ts = p.ts;
      d.dir = p.dir == net::Direction::kAtoB ? 0 : 1;
      dgs.push_back(d);
    }
    for (const auto& anal : dpi.analyze_stream(dgs)) {
      ++out.datagrams;
      out.messages += anal.messages.size();
      out.candidates += anal.candidates;
      if (anal.klass == dpi::DatagramClass::kFullyProprietary)
        ++out.fully_proprietary;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: strict (Peafowl-style) DPI vs scanning DPI "
              "===\n\n");
  auto base = report::experiment_config_from_env();

  std::printf("%-13s %12s | %10s | %10s %12s | %12s\n", "Application",
              "RTC dgrams", "strict", "scanning", "(candidates)",
              "recall ratio");
  std::printf("%s\n", std::string(86, '-').c_str());

  for (auto app : emul::all_apps()) {
    Counts strict_total, scan_total;
    for (auto network : emul::all_networks()) {
      emul::CallConfig cfg;
      cfg.app = app;
      cfg.network = network;
      cfg.media_scale = base.media_scale;
      cfg.seed = base.seed;
      const auto call = emul::emulate_call(cfg);

      const dpi::StrictDpi strict;
      const auto s = run_dpi(strict, call);
      strict_total.datagrams += s.datagrams;
      strict_total.messages += s.messages;

      const dpi::ScanningDpi scanning;
      const auto c = run_dpi(scanning, call);
      scan_total.datagrams += c.datagrams;
      scan_total.messages += c.messages;
      scan_total.candidates += c.candidates;
    }
    const double ratio =
        scan_total.messages
            ? static_cast<double>(strict_total.messages) /
                  static_cast<double>(scan_total.messages)
            : 0.0;
    std::printf("%-13s %12llu | %10llu | %10llu %12llu | %11.1f%%\n",
                emul::to_string(app).c_str(),
                static_cast<unsigned long long>(scan_total.datagrams),
                static_cast<unsigned long long>(strict_total.messages),
                static_cast<unsigned long long>(scan_total.messages),
                static_cast<unsigned long long>(scan_total.candidates),
                100.0 * ratio);
  }
  std::printf(
      "\npaper shape: the strict DPI recovers almost nothing from Zoom\n"
      "and FaceTime (proprietary headers defeat offset-zero matching and\n"
      "fixed payload-type lists) while the scanning DPI recovers all\n"
      "embedded messages; candidates >> messages shows how much stage-2\n"
      "validation filters.\n");
  return 0;
}
