// Diagnostic companion to §5.2: which of the five criteria fails, per
// application and protocol — the quantitative backbone behind the
// paper's case-study narratives (undefined types ⇒ criterion 1,
// undefined attributes ⇒ 3, bad values/placement ⇒ 4, behavioural
// deviations ⇒ 5).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  auto results = rtcc::bench::run_matrix(
      "=== First-failing-criterion breakdown (supports §5.2) ===");

  std::printf("%-13s %-10s %-13s %10s  %s\n", "Application", "Protocol",
              "Type", "failures", "first failing criterion");
  std::printf("%s\n", std::string(100, '-').c_str());
  for (const auto& [app, analysis] : results) {
    for (const auto& [proto_id, stats] : analysis.protocols) {
      for (const auto& [label, t] : stats.types) {
        if (t.type_compliant()) continue;
        for (const auto& [criterion, count] : t.criterion_failures) {
          std::printf("%-13s %-10s %-13s %10llu  %s\n",
                      rtcc::emul::to_string(app).c_str(),
                      rtcc::proto::to_string(proto_id).c_str(),
                      label.c_str(),
                      static_cast<unsigned long long>(count),
                      criterion.c_str());
        }
      }
    }
  }

  // Aggregate per criterion.
  std::map<std::string, std::uint64_t> totals;
  for (const auto& [app, analysis] : results)
    for (const auto& [proto_id, stats] : analysis.protocols)
      for (const auto& [label, t] : stats.types)
        for (const auto& [criterion, count] : t.criterion_failures)
          totals[criterion] += count;
  std::printf("\nper-criterion totals across all apps:\n");
  for (const auto& [criterion, count] : totals)
    std::printf("  %-32s %llu\n", criterion.c_str(),
                static_cast<unsigned long long>(count));
  std::printf(
      "\npaper shape: criterion 1 dominates (undefined STUN types from\n"
      "WhatsApp/Messenger), criterion 3 next (undefined attributes and\n"
      "RTP extension profiles), criterion 5 covers the behavioural\n"
      "cases (keep-alive Allocates, SRTCP tags, trailers).\n");
  return 0;
}
