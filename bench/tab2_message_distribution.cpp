// Reproduces Table 2: message distribution by protocol and application.
#include "bench_util.hpp"

int main() {
  auto results = rtcc::bench::run_matrix(
      "=== Table 2: message distribution by protocols and applications ===");
  std::printf("%s\n", rtcc::report::render_table2(results).c_str());
  std::printf(
      "paper shape: RTP dominates every app (71-98%%); Zoom ~20%% fully\n"
      "proprietary; FaceTime is the only QUIC user; Discord has no\n"
      "STUN/TURN at all; Google Meet has the largest STUN/TURN share.\n");
  return 0;
}
