// Reproduces Figure 5: compliance ratio by message type.
#include "bench_util.hpp"

int main() {
  auto results = rtcc::bench::run_matrix(
      "=== Figure 5: compliance ratio by message type ===");
  std::printf("%s\n", rtcc::report::render_figure5(results).c_str());
  std::printf(
      "paper shape: Zoom most compliant by type (52/54), Discord least\n"
      "(0/9); QUIC fully compliant; STUN/TURN and RTCP carry the highest\n"
      "shares of non-compliant types.\n");
  return 0;
}
