// Reproduces the paper's §5.2/§5.3 case studies as detector output: for
// every app × network configuration, runs the behavioural-findings
// detectors and prints what fires — the automated counterpart of the
// paper's manual case-study analysis, including the cross-call
// deterministic-SSRC check (§5.2.2).
#include <cstdio>

#include "report/findings.hpp"

int main() {
  using namespace rtcc;
  auto base = report::experiment_config_from_env();
  std::printf("=== §5.2/§5.3 case studies via behavioural detectors ===\n");
  std::printf("(media_scale=%.3f)\n\n", base.media_scale);

  for (auto app : emul::all_apps()) {
    std::printf("--- %s ---\n", emul::to_string(app).c_str());
    for (auto network : emul::all_networks()) {
      emul::CallConfig cfg;
      cfg.app = app;
      cfg.network = network;
      cfg.media_scale = base.media_scale;
      cfg.seed = base.seed;
      const auto call = emul::emulate_call(cfg);
      const auto findings = report::detect_findings(call);
      for (const auto& f : findings) {
        std::printf("  [%s] %-24s %s\n",
                    emul::to_string(network).c_str(), f.id.c_str(),
                    f.summary.c_str());
      }
    }
    // Cross-call SSRC determinism (§5.2.2) per network setting.
    for (auto network : emul::all_networks()) {
      std::vector<std::set<std::uint32_t>> per_call;
      for (int i = 0; i < 3; ++i) {
        emul::CallConfig cfg;
        cfg.app = app;
        cfg.network = network;
        cfg.media_scale = base.media_scale;
        cfg.seed = base.seed;
        cfg.call_index = i;
        per_call.push_back(
            report::call_rtp_ssrcs(emul::emulate_call(cfg)));
      }
      if (auto f = report::detect_ssrc_reuse(per_call)) {
        std::printf("  [%s] %-24s %s\n",
                    emul::to_string(network).c_str(), f->id.c_str(),
                    f->summary.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: Zoom fires filler-messages, double-rtp and\n"
      "deterministic-ssrc; FaceTime fires constant-prefix-probes\n"
      "(cellular) and repeated-unanswered-stun; Discord fires\n"
      "rtcp-zero-ssrc and rtcp-direction-byte; Google Meet fires\n"
      "srtcp-missing-auth-tag (relay Wi-Fi); WhatsApp/Messenger fire\n"
      "none of the proprietary-behaviour detectors.\n");
  return 0;
}
