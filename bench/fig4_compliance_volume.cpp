// Reproduces Figure 4: compliance ratio by traffic volume.
#include "bench_util.hpp"

int main() {
  auto results = rtcc::bench::run_matrix(
      "=== Figure 4: compliance ratio by traffic volume ===");
  std::printf("%s\n", rtcc::report::render_figure4(results).c_str());
  std::printf(
      "paper shape: Zoom/WhatsApp near-perfect; Messenger, Google Meet,\n"
      "Discord above 90%%; FaceTime lowest (all RTP non-compliant);\n"
      "protocol order QUIC(100%%) > STUN > RTP > RTCP.\n");
  return 0;
}
