// Reproduces Table 4: observed STUN/TURN message types per application.
#include "bench_util.hpp"

int main() {
  auto results = rtcc::bench::run_matrix(
      "=== Table 4: observed STUN/TURN message types ===");
  std::printf("%s\n", rtcc::report::render_table4(results).c_str());
  return 0;
}
