// Reproduces Table 6: observed RTCP message types per application.
#include "bench_util.hpp"

int main() {
  auto results = rtcc::bench::run_matrix(
      "=== Table 6: observed RTCP message types ===");
  std::printf("%s\n", rtcc::report::render_table6(results).c_str());
  return 0;
}
