// Reproduces Figure 3: standard vs proprietary datagram breakdown.
#include "bench_util.hpp"

int main() {
  auto results = rtcc::bench::run_matrix(
      "=== Figure 3: breakdown of datagrams — standard vs proprietary ===");
  std::printf("%s\n", rtcc::report::render_figure3(results).c_str());
  std::printf(
      "paper shape: Zoom 100%% proprietary-header or fully-proprietary;\n"
      "FaceTime ~72%% proprietary-header; the other four nearly all\n"
      "standard.\n");
  return 0;
}
