// Shared scaffolding for the table/figure reproduction benches.
//
// Every bench runs the same experiment matrix the paper used (6 apps ×
// 3 network configs × N repeats of 5-minute calls) on the emulator,
// then renders one table or figure. RTCC_SCALE / RTCC_REPEATS / RTCC_SEED
// environment variables trade fidelity for speed without recompiling.
#pragma once

#include <chrono>
#include <cstdio>

#include "report/figures.hpp"
#include "report/metrics.hpp"
#include "report/tables.hpp"

namespace rtcc::bench {

inline report::AppResults run_matrix(const char* banner) {
  auto cfg = report::experiment_config_from_env();
  std::printf("%s\n", banner);
  std::printf("experiment: %zu apps x %zu networks x %d repeats, "
              "media_scale=%.3f\n\n",
              cfg.apps.size(), cfg.networks.size(), cfg.repeats,
              cfg.media_scale);
  const auto start = std::chrono::steady_clock::now();
  auto results = report::run_experiment(cfg);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  std::uint64_t frames = 0;
  for (const auto& [app, a] : results)
    frames += a.raw_udp_datagrams + a.raw_tcp_segments;
  std::printf("[generated+analyzed %llu packets in %.2f s]\n\n",
              static_cast<unsigned long long>(frames), elapsed);
  return results;
}

}  // namespace rtcc::bench
